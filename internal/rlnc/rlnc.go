// Package rlnc implements random linear network coding over F_2, the
// coding layer of the paper's multi-message broadcast algorithms
// (Section 3.3.1, following Ho et al. [14] and Haeupler [12]).
//
// The k messages are bit vectors m_1..m_k in F_2^l. A coded packet
// carries a coefficient vector α in F_2^k together with the payload
// Σ α_i·m_i. A node stores the packets it receives and, when prompted
// to send, transmits a fresh uniformly random combination of its
// stored packets. A node that has accumulated k linearly independent
// coefficient vectors reconstructs all messages by Gaussian
// elimination.
//
// The package also implements the projection-analysis primitives of
// [12] used in the proofs (and in our tests): Definition 3.8's
// "infected by μ" predicate and Proposition 3.9's decode criterion.
package rlnc

import (
	"fmt"
	"math/rand"

	"radiocast/internal/bitvec"
)

// Message is an l-bit message payload.
type Message = bitvec.Vec

// Packet is an RLNC-coded packet: payload = Σ_{i: Coeff[i]=1} m_i.
// Gen identifies the generation (batch) the packet codes over; packets
// from different generations must not be combined.
type Packet struct {
	Gen     int
	Coeff   bitvec.Vec
	Payload bitvec.Vec
}

// Bits reports the on-air size: coefficient header + payload + a small
// generation tag. With generations of size Θ(log n) the header is
// Θ(log n) bits, as required by Section 3.4.
func (p Packet) Bits() int { return p.Coeff.Len() + p.Payload.Len() + 16 }

// IsZero reports whether the packet carries no information.
func (p Packet) IsZero() bool { return p.Coeff.IsZero() }

// Buffer is a node's RLNC state for a single generation of k messages
// with l-bit payloads: the stored subspace plus the paired solver used
// for decoding. The zero value is not usable; construct with NewBuffer
// or NewSourceBuffer.
type Buffer struct {
	k, l   int
	gen    int
	solver *bitvec.Solver
	// rows holds one (coeff, payload) pair per independent dimension,
	// in insertion order; random combinations are drawn from these.
	rows []Packet
}

// NewBuffer returns an empty buffer for generation gen with k messages
// of l bits each.
func NewBuffer(gen, k, l int) *Buffer {
	if k <= 0 || l <= 0 {
		panic(fmt.Sprintf("rlnc: invalid dimensions k=%d l=%d", k, l))
	}
	return &Buffer{k: k, l: l, gen: gen, solver: bitvec.NewSolver(k, l)}
}

// NewSourceBuffer returns a buffer preloaded with the original
// messages (the source node's state): unit coefficient vectors paired
// with the raw payloads.
func NewSourceBuffer(gen int, msgs []Message, l int) *Buffer {
	b := NewBuffer(gen, len(msgs), l)
	for i, m := range msgs {
		if m.Len() != l {
			panic(fmt.Sprintf("rlnc: message %d has %d bits, want %d", i, m.Len(), l))
		}
		b.Add(Packet{Gen: gen, Coeff: bitvec.Unit(len(msgs), i), Payload: m.Clone()})
	}
	return b
}

// K returns the generation size.
func (b *Buffer) K() int { return b.k }

// Gen returns the generation id.
func (b *Buffer) Gen() int { return b.gen }

// Rank returns the dimension of the stored coefficient subspace.
func (b *Buffer) Rank() int { return b.solver.Rank() }

// Add stores a received packet. It returns true iff the packet was
// innovative (increased the rank). Packets from other generations are
// rejected with a panic: the caller routes packets by generation.
func (b *Buffer) Add(p Packet) bool {
	if p.Gen != b.gen {
		panic(fmt.Sprintf("rlnc: packet for generation %d added to buffer %d", p.Gen, b.gen))
	}
	if !b.solver.Add(p.Coeff, p.Payload) {
		return false
	}
	b.rows = append(b.rows, Packet{Gen: p.Gen, Coeff: p.Coeff.Clone(), Payload: p.Payload.Clone()})
	return true
}

// CanDecode reports whether all k messages are reconstructible
// (Proposition 3.9: infected by all of F_2^k ⇔ full rank).
func (b *Buffer) CanDecode() bool { return b.solver.CanSolve() }

// Decode reconstructs the k original messages via Gaussian
// elimination. ok is false while rank < k.
func (b *Buffer) Decode() (msgs []Message, ok bool) { return b.solver.Solve() }

// RandomPacket returns a fresh uniformly random combination of the
// stored packets — the transmission rule of Section 3.3.1. ok is false
// when the buffer is empty (nothing to send). The combination is drawn
// over the stored independent rows, which induces the uniform
// distribution over the stored subspace; the zero combination is
// permitted (a node with data still sends "something", which carries
// no information — equivalent to noise for receivers).
func (b *Buffer) RandomPacket(r *rand.Rand) (Packet, bool) {
	if len(b.rows) == 0 {
		return Packet{}, false
	}
	coeff := bitvec.New(b.k)
	payload := bitvec.New(b.l)
	for _, row := range b.rows {
		if r.Intn(2) == 1 {
			coeff.XorInPlace(row.Coeff)
			payload.XorInPlace(row.Payload)
		}
	}
	return Packet{Gen: b.gen, Coeff: coeff, Payload: payload}, true
}

// InfectedBy implements Definition 3.8: the node is infected by μ iff
// it has received (stored) a packet whose coefficient vector is not
// orthogonal to μ. Equivalently, μ is non-orthogonal to the stored
// subspace.
func (b *Buffer) InfectedBy(mu bitvec.Vec) bool {
	for _, row := range b.rows {
		if bitvec.Dot(mu, row.Coeff) {
			return true
		}
	}
	return false
}

// EncodeAll computes the payload for an explicit coefficient vector
// over the full message set; used by tests and by centralized
// verification.
func EncodeAll(coeff bitvec.Vec, msgs []Message, l int) bitvec.Vec {
	payload := bitvec.New(l)
	for i := range msgs {
		if coeff.Get(i) {
			payload.XorInPlace(msgs[i])
		}
	}
	return payload
}

// VerifyPacket checks that a packet's payload is consistent with the
// ground-truth messages; used to assert end-to-end integrity in tests
// and failure-injection experiments.
func VerifyPacket(p Packet, msgs []Message, l int) bool {
	want := EncodeAll(p.Coeff, msgs, l)
	return bitvec.Equal(p.Payload, want)
}
