package exp

import (
	"fmt"
	"sync"
	"testing"
)

// TestRunAllIndexesByPlanAndCell pins the merge contract: results land
// at [plan][cell] regardless of the cost-ordered admission.
func TestRunAllIndexesByPlanAndCell(t *testing.T) {
	mk := func(id string, n int, cost func(int) int64) *Plan {
		p := &Plan{ID: id}
		for i := 0; i < n; i++ {
			i := i
			p.Cells = append(p.Cells, Cell{
				Key:  Key{Experiment: id, Config: fmt.Sprint(i)},
				Cost: cost(i),
				Run:  func(int64) Result { return Rounds(int64(i), true) },
			})
		}
		return p
	}
	plans := []*Plan{
		mk("A", 5, func(i int) int64 { return int64(i) }),
		mk("B", 3, func(i int) int64 { return int64(100 - i) }),
		mk("C", 4, func(int) int64 { return 0 }),
	}
	for _, workers := range []int{1, 4} {
		r := &Runner{Parallelism: workers}
		all := r.RunAll(plans)
		if len(all) != len(plans) {
			t.Fatalf("workers=%d: %d result slices, want %d", workers, len(all), len(plans))
		}
		for pi, p := range plans {
			if len(all[pi]) != len(p.Cells) {
				t.Fatalf("workers=%d: plan %s has %d results, want %d", workers, p.ID, len(all[pi]), len(p.Cells))
			}
			for ci, res := range all[pi] {
				if res.Rounds != int64(ci) || res.Key != p.Cells[ci].Key {
					t.Fatalf("workers=%d: plan %s cell %d got %+v", workers, p.ID, ci, res)
				}
			}
		}
	}
}

// TestRunAllLongestCellFirst verifies the admission order on one
// worker: strictly by descending Cost, with zero-cost cells last in
// plan order.
func TestRunAllLongestCellFirst(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	mk := func(id string, costs ...int64) *Plan {
		p := &Plan{ID: id}
		for i, c := range costs {
			c := c
			p.Cells = append(p.Cells, Cell{
				Key:  Key{Experiment: id, Config: fmt.Sprint(i)},
				Cost: c,
				Run: func(int64) Result {
					mu.Lock()
					order = append(order, c)
					mu.Unlock()
					return Rounds(0, true)
				},
			})
		}
		return p
	}
	r := &Runner{Parallelism: 1}
	r.RunAll([]*Plan{mk("A", 5, 1, 0), mk("B", 10, 3)})
	want := []int64{10, 5, 3, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("ran %d cells, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}
