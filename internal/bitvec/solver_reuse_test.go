package bitvec

import "testing"

// TestSolverDoesNotRetainInputs pins the scratch-based Add: mutating
// an input vector after Add must not affect the solver's rows.
func TestSolverDoesNotRetainInputs(t *testing.T) {
	s := NewSolver(3, 4)
	c := FromBits([]bool{true, false, false})
	p := FromBits([]bool{true, true, false, false})
	if !s.Add(c, p) {
		t.Fatal("independent equation rejected")
	}
	c.Flip(1)
	p.Flip(2)
	s.Add(FromBits([]bool{false, true, false}), New(4))
	s.Add(FromBits([]bool{false, false, true}), New(4))
	got, ok := s.Solve()
	if !ok {
		t.Fatal("solve failed")
	}
	want := FromBits([]bool{true, true, false, false})
	if !Equal(got[0], want) {
		t.Fatalf("x0 = %v, want %v — solver aliased caller memory", got[0], want)
	}
}

// TestSolverResetReuse verifies Reset rewinds the solver for an
// identical replay, recycling row storage.
func TestSolverResetReuse(t *testing.T) {
	const k, m = 6, 8
	next := func(seed uint64) func() uint64 {
		state := seed
		return func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state
		}
	}
	run := func(s *Solver, seed uint64) (adds, rank int) {
		gen := next(seed)
		for i := 0; i < 40; i++ {
			s.Add(RandomVec(k, gen), RandomVec(m, gen))
			adds++
		}
		return adds, s.Rank()
	}
	s := NewSolver(k, m)
	_, r1 := run(s, 77)
	s.Reset()
	if s.Rank() != 0 {
		t.Fatal("reset kept rank")
	}
	_, r2 := run(s, 77)
	if r1 != r2 {
		t.Fatalf("reset replay diverged: rank %d vs %d", r1, r2)
	}
}
