package radio

import (
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/rng"
)

// testNet builds a network over a path graph with Silent listeners on
// every node except those overridden afterwards.
func pathNet(n int, cd bool) (*Network, []*Silent) {
	g := graph.Path(n)
	nw := New(g, Config{CollisionDetection: cd})
	listeners := make([]*Silent, n)
	for v := 0; v < n; v++ {
		listeners[v] = &Silent{}
		nw.SetProtocol(graph.NodeID(v), listeners[v])
	}
	return nw, listeners
}

func TestSingleTransmitterDelivers(t *testing.T) {
	g := graph.Path(3)
	nw := New(g, Config{})
	mid := &FuncProtocol{ActFunc: func(r int64) Action {
		if r == 0 {
			return Transmit(RawPacket{Value: 42})
		}
		return Listen
	}}
	left, right := &Silent{}, &Silent{}
	nw.SetProtocol(0, left)
	nw.SetProtocol(1, mid)
	nw.SetProtocol(2, right)
	nw.Run(2)
	for name, s := range map[string]*Silent{"left": left, "right": right} {
		if s.Packets != 1 || s.Collisions != 0 {
			t.Fatalf("%s: packets=%d collisions=%d, want exactly one packet", name, s.Packets, s.Collisions)
		}
		if got := s.Heard[0].Packet.(RawPacket).Value; got != 42 {
			t.Fatalf("%s: payload %d, want 42", name, got)
		}
		if s.Heard[0].From != 1 {
			t.Fatalf("%s: from %d, want 1", name, s.Heard[0].From)
		}
	}
	st := nw.Stats()
	if st.Transmissions != 1 || st.Deliveries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCollisionWithCD(t *testing.T) {
	// Path 0-1-2: both ends transmit in round 0; middle observes ⊤.
	g := graph.Path(3)
	nw := New(g, Config{CollisionDetection: true})
	tx := func(r int64) Action {
		if r == 0 {
			return Transmit(RawPacket{Value: 1})
		}
		return Listen
	}
	nw.SetProtocol(0, &FuncProtocol{ActFunc: tx})
	nw.SetProtocol(2, &FuncProtocol{ActFunc: tx})
	mid := &Silent{}
	nw.SetProtocol(1, mid)
	nw.Run(2)
	if mid.Collisions != 1 || mid.Packets != 0 {
		t.Fatalf("mid: collisions=%d packets=%d, want 1,0", mid.Collisions, mid.Packets)
	}
	if nw.Stats().CollisionObs != 1 {
		t.Fatalf("stats: %+v", nw.Stats())
	}
}

func TestCollisionWithoutCDIsSilence(t *testing.T) {
	g := graph.Path(3)
	nw := New(g, Config{CollisionDetection: false})
	tx := func(r int64) Action {
		if r == 0 {
			return Transmit(RawPacket{Value: 1})
		}
		return Listen
	}
	nw.SetProtocol(0, &FuncProtocol{ActFunc: tx})
	nw.SetProtocol(2, &FuncProtocol{ActFunc: tx})
	mid := &Silent{}
	nw.SetProtocol(1, mid)
	nw.Run(2)
	if mid.Collisions != 0 || mid.Packets != 0 {
		t.Fatalf("mid observed something without CD: %+v", mid)
	}
}

func TestTransmitterHearsNothing(t *testing.T) {
	// 0 and 1 both transmit in round 0; neither should observe.
	g := graph.Path(2)
	nw := New(g, Config{CollisionDetection: true})
	observed := 0
	for v := 0; v < 2; v++ {
		nw.SetProtocol(graph.NodeID(v), &FuncProtocol{
			ActFunc: func(r int64) Action {
				if r == 0 {
					return Transmit(RawPacket{})
				}
				return Listen
			},
			ObserveFunc: func(int64, Outcome) { observed++ },
		})
	}
	nw.Run(2)
	if observed != 0 {
		t.Fatalf("transmitters observed %d events", observed)
	}
}

func TestSleepSkipsDelivery(t *testing.T) {
	// Node 1 sleeps through round 0; node 0 transmits; node 1 must not
	// observe, and the engine must not poll it again until round 5.
	g := graph.Path(2)
	nw := New(g, Config{})
	polls := []int64{}
	sleeper := &FuncProtocol{
		ActFunc: func(r int64) Action {
			polls = append(polls, r)
			if r == 0 {
				return Sleep(5)
			}
			return Listen
		},
		ObserveFunc: func(r int64, out Outcome) {
			if r < 5 {
				panic("sleeping node observed")
			}
		},
	}
	nw.SetProtocol(0, &FuncProtocol{ActFunc: func(r int64) Action {
		if r == 2 {
			return Transmit(RawPacket{})
		}
		return Listen
	}})
	nw.SetProtocol(1, sleeper)
	nw.Run(8)
	want := []int64{0, 5, 6, 7}
	if len(polls) != len(want) {
		t.Fatalf("polls = %v, want %v", polls, want)
	}
	for i := range want {
		if polls[i] != want[i] {
			t.Fatalf("polls = %v, want %v", polls, want)
		}
	}
}

func TestFastForwardCountsRounds(t *testing.T) {
	// Everyone sleeps to round 1000; Run(1000) must report 1000 rounds
	// but poll each node exactly twice (round 0 and nothing after).
	g := graph.Path(4)
	nw := New(g, Config{})
	for v := 0; v < 4; v++ {
		nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(r int64) Action {
			return Sleep(5000)
		}})
	}
	nw.Run(1000)
	st := nw.Stats()
	if st.Rounds != 1000 {
		t.Fatalf("rounds = %d, want 1000", st.Rounds)
	}
	if st.Polls != 4 {
		t.Fatalf("polls = %d, want 4 (one per node)", st.Polls)
	}
	if st.ActiveRounds != 1 {
		t.Fatalf("active rounds = %d, want 1", st.ActiveRounds)
	}
}

func TestRunUntilPredicate(t *testing.T) {
	g := graph.Path(2)
	nw := New(g, Config{})
	heard := false
	nw.SetProtocol(0, &FuncProtocol{ActFunc: func(r int64) Action {
		if r == 7 {
			return Transmit(RawPacket{})
		}
		return Listen
	}})
	nw.SetProtocol(1, &FuncProtocol{ObserveFunc: func(int64, Outcome) { heard = true }})
	rounds, ok := nw.RunUntil(100, func() bool { return heard })
	if !ok {
		t.Fatal("predicate never satisfied")
	}
	if rounds != 8 {
		t.Fatalf("stopped at round %d, want 8", rounds)
	}
}

func TestDegreeOneNeighborExactness(t *testing.T) {
	// Star: center transmits; all leaves hear exactly the packet.
	g := graph.Star(10)
	nw := New(g, Config{})
	nw.SetProtocol(0, &FuncProtocol{ActFunc: func(r int64) Action {
		if r == 0 {
			return Transmit(RawPacket{Value: 9})
		}
		return Listen
	}})
	leaves := make([]*Silent, 9)
	for v := 1; v < 10; v++ {
		leaves[v-1] = &Silent{}
		nw.SetProtocol(graph.NodeID(v), leaves[v-1])
	}
	nw.Run(1)
	for i, s := range leaves {
		if s.Packets != 1 {
			t.Fatalf("leaf %d heard %d packets", i+1, s.Packets)
		}
	}
}

func TestLeavesCollideAtCenter(t *testing.T) {
	// Star with every leaf transmitting: center observes one collision
	// (with CD); leaves hear nothing (their only neighbor, the center,
	// is silent).
	g := graph.Star(6)
	nw := New(g, Config{CollisionDetection: true})
	center := &Silent{}
	nw.SetProtocol(0, center)
	for v := 1; v < 6; v++ {
		nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(r int64) Action {
			if r == 0 {
				return Transmit(RawPacket{})
			}
			return Listen
		}})
	}
	nw.Run(1)
	if center.Collisions != 1 || center.Packets != 0 {
		t.Fatalf("center: %+v", center)
	}
}

func TestPacketBitsEnforced(t *testing.T) {
	g := graph.Path(2)
	nw := New(g, Config{MaxPacketBits: 8})
	nw.SetProtocol(0, &FuncProtocol{ActFunc: func(r int64) Action {
		return Transmit(RawPacket{Width: 64})
	}})
	nw.SetProtocol(1, &Silent{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized packet")
		}
	}()
	nw.Run(1)
}

func TestJammerJams(t *testing.T) {
	g := graph.Path(2)
	nw := New(g, Config{})
	nw.SetProtocol(0, &Jammer{P: 1.0, Rand: rng.New(1)})
	probe := &Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(50)
	if probe.Packets != 50 {
		t.Fatalf("jammer with P=1 delivered %d/50", probe.Packets)
	}
}

func TestDoubleSetProtocolPanics(t *testing.T) {
	g := graph.Path(2)
	nw := New(g, Config{})
	nw.SetProtocol(0, &Silent{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw.SetProtocol(0, &Silent{})
}

type countingTracer struct {
	rounds    int
	delivered int
}

func (c *countingTracer) OnRound(int64, []NodeID)          { c.rounds++ }
func (c *countingTracer) OnDeliver(int64, NodeID, Outcome) { c.delivered++ }

func TestTracerSeesEvents(t *testing.T) {
	g := graph.Path(2)
	tr := &countingTracer{}
	nw := New(g, Config{Tracer: tr})
	nw.SetProtocol(0, &FuncProtocol{ActFunc: func(r int64) Action {
		return Transmit(RawPacket{})
	}})
	nw.SetProtocol(1, &Silent{})
	nw.Run(10)
	if tr.rounds != 10 || tr.delivered != 10 {
		t.Fatalf("tracer: %+v", tr)
	}
}

func TestStatsAccounting(t *testing.T) {
	nw, _ := pathNet(5, true)
	nw.Run(10)
	st := nw.Stats()
	if st.Transmissions != 0 || st.Deliveries != 0 {
		t.Fatalf("silent network has traffic: %+v", st)
	}
	if st.Rounds != 10 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.Polls != 50 {
		t.Fatalf("polls = %d, want 50", st.Polls)
	}
}

func BenchmarkEngineGridFlood(b *testing.B) {
	// All nodes transmit with probability 1/8 each round.
	g := graph.Grid(32, 32)
	for i := 0; i < b.N; i++ {
		nw := New(g, Config{CollisionDetection: true})
		for v := 0; v < g.N(); v++ {
			r := rng.New(uint64(i), uint64(v))
			nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(int64) Action {
				if r.Float64() < 0.125 {
					return Transmit(RawPacket{})
				}
				return Listen
			}})
		}
		nw.Run(100)
	}
}
