package rlnc

import (
	"testing"

	"radiocast/internal/bitvec"
	"radiocast/internal/rng"
)

// TestBufferResetReuse pins the buffer half of the reuse contract: a
// Reset buffer replays a decode run identically, and the onFull hook
// fires exactly once per run at the rank-k transition.
func TestBufferResetReuse(t *testing.T) {
	const k, l = 6, 16
	r := rng.New(42)
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	src := NewSourceBuffer(0, msgs, l)
	dec := NewBuffer(0, k, l)
	fulls := 0
	dec.SetOnFull(func() { fulls++ })
	runOnce := func(seed uint64) int {
		dec.Reset()
		rr := rng.New(seed)
		steps := 0
		for !dec.CanDecode() {
			p, _ := src.RandomPacket(rr)
			dec.Add(p)
			steps++
		}
		got, ok := dec.Decode()
		if !ok {
			t.Fatal("decode failed at full rank")
		}
		for i := range msgs {
			if !bitvec.Equal(got[i], msgs[i]) {
				t.Fatalf("decoded message %d mismatches", i)
			}
		}
		return steps
	}
	a := runOnce(7)
	b := runOnce(8)
	c := runOnce(7)
	if a != c {
		t.Fatalf("same-seed reuse diverged: %d vs %d packets", a, c)
	}
	if fulls != 3 {
		t.Fatalf("onFull fired %d times over 3 runs, want 3", fulls)
	}
	_ = b
}

// TestResetSourceMatchesNewSourceBuffer verifies the preload path:
// ResetSource leaves the buffer equivalent to a fresh source buffer —
// same rank, same decode, same RandomPacket draws.
func TestResetSourceMatchesNewSourceBuffer(t *testing.T) {
	const k, l = 5, 24
	r := rng.New(9)
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	fresh := NewSourceBuffer(0, msgs, l)
	reused := NewBuffer(0, k, l)
	reused.ResetSource(msgs)
	if fresh.Rank() != reused.Rank() || !reused.CanDecode() {
		t.Fatalf("rank mismatch: fresh %d reused %d", fresh.Rank(), reused.Rank())
	}
	ra, rb := rng.New(3), rng.New(3)
	for i := 0; i < 50; i++ {
		pa, _ := fresh.RandomPacket(ra)
		pb, _ := reused.RandomPacket(rb)
		if !bitvec.Equal(pa.Coeff, pb.Coeff) || !bitvec.Equal(pa.Payload, pb.Payload) {
			t.Fatalf("draw %d mismatches", i)
		}
	}
}

// TestAirPacketMatchesRandomPacket pins the zero-allocation
// transmission path: AirPacket must consume the RNG and produce the
// bits of RandomPacket exactly, into a reused scratch.
func TestAirPacketMatchesRandomPacket(t *testing.T) {
	const k, l = 8, 32
	r := rng.New(5)
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	src := NewSourceBuffer(0, msgs, l)
	ra, rb := rng.New(11), rng.New(11)
	var prev *Packet
	for i := 0; i < 50; i++ {
		want, _ := src.RandomPacket(ra)
		got, ok := src.AirPacket(rb)
		if !ok {
			t.Fatal("air packet unavailable on a source buffer")
		}
		if got.Gen != want.Gen || !bitvec.Equal(got.Coeff, want.Coeff) || !bitvec.Equal(got.Payload, want.Payload) {
			t.Fatalf("draw %d mismatches RandomPacket", i)
		}
		if prev != nil && prev != got {
			t.Fatal("AirPacket did not reuse its scratch packet")
		}
		prev = got
	}
	// Add must copy, not retain, the scratch-backed packet.
	dec := NewBuffer(0, k, l)
	p, _ := src.AirPacket(rb)
	dec.Add(*p)
	before := dec.Rank()
	src.AirPacket(rb) // overwrite the scratch
	if dec.Rank() != before || len(dec.rows) == 0 {
		t.Fatal("stored row affected by scratch reuse")
	}
	if bitvec.Equal(dec.rows[0].Coeff, p.Coeff) && &dec.rows[0].Coeff == &p.Coeff {
		t.Fatal("row aliases scratch")
	}
}

// TestStoreResetAndDoneHook verifies Store.Reset/ResetSource and the
// all-generations-decodable hook.
func TestStoreResetAndDoneHook(t *testing.T) {
	const total, gen, l = 7, 3, 16
	r := rng.New(21)
	msgs := make([]Message, total)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	src := NewSourceStore(msgs, gen, l)
	if !src.CanDecodeAll() {
		t.Fatal("source store not decodable")
	}
	dst := NewStore(total, gen, l)
	done := 0
	dst.SetOnAllDecodable(func() { done++ })
	feed := func() int {
		dst.Reset()
		rr := rng.New(2)
		steps := 0
		for !dst.CanDecodeAll() {
			g := steps % src.Generations()
			p, _ := src.RandomPacket(g, rr)
			dst.Add(p)
			steps++
		}
		return steps
	}
	a := feed()
	b := feed()
	if a != b {
		t.Fatalf("same-seed store reuse diverged: %d vs %d", a, b)
	}
	if done != 2 {
		t.Fatalf("onAll fired %d times over 2 runs, want 2", done)
	}
	got, ok := dst.DecodeAll()
	if !ok {
		t.Fatal("decode failed")
	}
	for i := range msgs {
		if !bitvec.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d mismatches", i)
		}
	}
	// ResetSource on the reused source store keeps it decodable.
	src.ResetSource(msgs)
	if !src.CanDecodeAll() {
		t.Fatal("ResetSource lost decodability")
	}
}
