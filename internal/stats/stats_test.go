package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5}, 5, 5)
	if s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("std = %f", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0, 3)
	if s.N != 0 || s.AttemptedCount != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	if Percentile(sorted, 0.5) != 20 {
		t.Fatal("median wrong")
	}
	if Percentile(sorted, 0) != 0 || Percentile(sorted, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(sorted, 0.25); got != 10 {
		t.Fatalf("q25 = %f", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(x, y)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-3) > 1e-9 {
		t.Fatalf("%+v", f)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R2 = %f", f.R2)
	}
}

func TestLinearFitRecoversRandomLine(t *testing.T) {
	f := func(a, b int8) bool {
		slope, icept := float64(a), float64(b)
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = slope*x[i] + icept
		}
		fit := LinearFit(x, y)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-icept) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFit(t *testing.T) {
	// y = 3 x^2.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * x[i] * x[i]
	}
	exp, r2 := PowerFit(x, y)
	if math.Abs(exp-2) > 1e-9 || r2 < 0.999 {
		t.Fatalf("exp=%f r2=%f", exp, r2)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bbbb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Fatalf("bad render:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bbbb\n1,2\n") {
		t.Fatalf("bad csv:\n%s", csv)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bbbb |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("bad markdown:\n%s", md)
	}
}

func TestF(t *testing.T) {
	if F(math.NaN()) != "-" || F(12345) != "12345" || F(12.34) != "12.3" || F(1.2345) != "1.234" {
		t.Fatalf("%s %s %s %s", F(math.NaN()), F(12345.0), F(12.34), F(1.2345))
	}
}
