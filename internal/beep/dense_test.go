package beep_test

// Dense-vs-sparse twin identity for the SoA collision wave, on the
// shared radiotest substrate. The wave is deterministic (no RNG), so
// the twin comparison is exact: per-node levels from a DenseWave run
// must equal the per-node Wave levels from RunLayering on the sparse
// engine — on the ideal channel (where both equal BFS distance) and
// under per-link erasure with a shared seed (where drops are keyed by
// (round, link) and agree across engines).

import (
	"fmt"
	"testing"

	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
)

// denseWaveCase builds the radiotest case: state is the per-node wave
// level (-1 for untriggered nodes).
func denseWaveCase(g *graph.Graph, src graph.NodeID, horizon int64,
	cd bool, mk func() radio.Channel) radiotest.DenseCase {
	return radiotest.DenseCase{
		Graph:         g,
		CD:            cd,
		MaxPacketBits: 8,
		Channel:       mk,
		Limit:         horizon,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := beep.NewDenseWave(g, src, horizon)
			return pr, pr.Done, func(v graph.NodeID) int64 { return int64(pr.Level(v)) }
		},
	}
}

// sparseWave is the sparse closure for radiotest.Twin: RunLayering
// drives the per-node Wave protocols itself.
func sparseWave(src graph.NodeID, horizon int64) func(*radio.Network, int64) func(graph.NodeID) int64 {
	return func(nw *radio.Network, _ int64) func(graph.NodeID) int64 {
		levels := beep.RunLayering(nw, src, horizon)
		return func(v graph.NodeID) int64 { return int64(levels[v]) }
	}
}

// TestDenseWaveMatchesSparseIdeal: with CD on the ideal channel, the
// dense wave completes in exactly the source eccentricity and every
// level equals the BFS distance — and is identical to the sparse Wave.
func TestDenseWaveMatchesSparseIdeal(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
		graph.FromStream(graph.StreamPath(200)),
	}
	for _, g := range graphs {
		src := graph.NodeID(0)
		ecc := int64(graph.Eccentricity(g, src))
		fp := radiotest.Twin(t, g.Name(), denseWaveCase(g, src, ecc, true, nil), sparseWave(src, ecc))
		if fp.Rounds != ecc {
			t.Fatalf("%s: dense wave rounds = %d, want %d", g.Name(), fp.Rounds, ecc)
		}
		dist := graph.BFS(g, src).Dist
		for v := 0; v < g.N(); v++ {
			if fp.State[v] != int64(dist[v]) {
				t.Fatalf("%s: node %d level %d != bfs %d", g.Name(), v, fp.State[v], dist[v])
			}
		}
	}
}

// TestDenseWaveMatchesSparseErasure: under shared-seed per-link
// erasure the two engines' waves stay level-identical (levels need not
// be BFS distances anymore — losses delay layers).
func TestDenseWaveMatchesSparseErasure(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		for _, loss := range []float64{0.1, 0.3} {
			src := graph.NodeID(g.N() - 1)
			horizon := 4*int64(graph.Eccentricity(g, src)) + 64
			loss := loss
			mk := func() radio.Channel { return channel.NewErasure(loss, 99) }
			label := fmt.Sprintf("%s loss=%g", g.Name(), loss)
			radiotest.Twin(t, label, denseWaveCase(g, src, horizon, true, mk), sparseWave(src, horizon))
		}
	}
}

// TestDenseWaveMatchesSparseNoisyCD: unreliable collision detection —
// missed ⊤ symbols and spurious ones — flows through the dense
// engine's Observe sweep keyed by (round, listener), so dense and
// sparse waves stay level-identical under any (miss, spurious) mix.
// Missed symbols delay triggering (a ⊤ that never arrives is a lost
// layer pulse); spurious ones accelerate it along fake fronts; the
// twin holds either way.
func TestDenseWaveMatchesSparseNoisyCD(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
	}
	for _, g := range graphs {
		for _, rates := range [][2]float64{{0.1, 0}, {0, 0.1}, {0.15, 0.05}} {
			src := graph.NodeID(g.N() / 2)
			horizon := 4*int64(graph.Eccentricity(g, src)) + 64
			rates := rates
			mk := func() radio.Channel { return channel.NewNoisyCD(rates[0], rates[1], 7) }
			label := fmt.Sprintf("%s miss=%g spurious=%g", g.Name(), rates[0], rates[1])
			radiotest.Twin(t, label, denseWaveCase(g, src, horizon, true, mk), sparseWave(src, horizon))
		}
	}
}

// TestDenseWaveMatchesSparseJammer: the oblivious wide-band jammer
// draws its per-round jam decision from (seed, round) only — blind to
// traffic — so with an unlimited budget its decisions are identical on
// both engines and the twin is exact. (The adaptive busiest-slot
// policy is deliberately excluded: it reads the transmitter count,
// which makes its budget spend an engine-schedule artifact rather
// than a keyed draw.)
func TestDenseWaveMatchesSparseJammer(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		src := graph.NodeID(0)
		horizon := 4*int64(graph.Eccentricity(g, src)) + 64
		mk := func() radio.Channel { return channel.NewJammer(-1, 0.2, 13) }
		radiotest.Twin(t, g.Name()+" jam", denseWaveCase(g, src, horizon, true, mk), sparseWave(src, horizon))
	}
}

// TestDenseWaveMatchesSparseAdverseStack: the full adversity stack —
// per-link erasure under a noisy CD layer under an oblivious jammer —
// composed exactly as radiosim/radiocastd stack them. Every layer's
// draws are keyed (round, link) / (round, listener) / (round), so the
// stacked twin is still exact across engines.
func TestDenseWaveMatchesSparseAdverseStack(t *testing.T) {
	g := graph.FromStream(graph.StreamGrid(13, 17))
	src := graph.NodeID(g.N() - 1)
	horizon := 4*int64(graph.Eccentricity(g, src)) + 64
	mk := func() radio.Channel {
		return channel.Stack{
			channel.NewErasure(0.15, 21),
			channel.NewNoisyCD(0.1, 0.02, 22),
			channel.NewJammer(-1, 0.1, 23),
		}
	}
	radiotest.Twin(t, "grid adverse-stack", denseWaveCase(g, src, horizon, true, mk), sparseWave(src, horizon))
}

// TestDenseWaveNoCDOnPath: a path never produces collisions (each
// listener has at most one pulsing neighbor), so the wave works
// without CD there; dense and sparse must still agree. This is the
// "CD off where applicable" face of the twin contract — on dense
// layers the wave REQUIRES CD, which the ideal test exercises.
func TestDenseWaveNoCDOnPath(t *testing.T) {
	g := graph.FromStream(graph.StreamPath(300))
	ecc := int64(graph.Eccentricity(g, 0))
	fp := radiotest.Twin(t, "path-nocd", denseWaveCase(g, 0, ecc, false, nil), sparseWave(0, ecc))
	if fp.Rounds != ecc {
		t.Fatalf("dense wave without CD on path: rounds = %d, want %d", fp.Rounds, ecc)
	}
}

// TestDenseWaveStallsWithoutCD documents why the wave needs CD: on a
// grid swept from a corner, interior node (1,1) hears its two
// distance-1 neighbors collide every round; without the ⊤ symbol it
// never triggers and the wave cannot cover the grid.
func TestDenseWaveStallsWithoutCD(t *testing.T) {
	g := graph.FromStream(graph.StreamGrid(8, 8))
	horizon := 4 * int64(graph.Eccentricity(g, 0))
	fp := denseWaveCase(g, 0, horizon, false, nil).Run()
	if fp.Completed {
		t.Fatal("collision wave completed without CD on a grid; collision semantics look wrong")
	}
}

// TestDenseWavePostHorizonSilence pins the post-horizon contract: the
// wave neither transmits nor listens after the horizon, so extra
// rounds change nothing (mirroring the sparse Wave's Sleep).
func TestDenseWavePostHorizonSilence(t *testing.T) {
	g := graph.ClusterChain(4, 4)
	ecc := int64(graph.Eccentricity(g, 0))
	pr := beep.NewDenseWave(g, 0, ecc)
	eng := radio.NewDense(g, radio.Config{CollisionDetection: true}, pr)
	defer eng.Close()
	eng.Run(ecc + 16)
	st := eng.Stats()
	if !pr.Done() {
		t.Fatal("wave incomplete at horizon on ideal channel")
	}
	if st.ActiveRounds > ecc {
		t.Fatalf("transmissions in %d rounds, want none past horizon %d", st.ActiveRounds, ecc)
	}
	if eng.Round() != ecc+16 {
		t.Fatalf("engine round = %d, want %d", eng.Round(), ecc+16)
	}
}
