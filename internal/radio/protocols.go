package radio

// This file provides small building-block protocols used by tests and
// by failure-injection experiments.

// RawPacket is a minimal packet carrying an opaque integer payload.
// Its declared size is 1 + ⌈log2(n)⌉-ish bits; for simplicity it
// reports a fixed configurable width.
type RawPacket struct {
	Value int64
	Width int // reported bit width; 0 means 64
}

// Bits implements Packet.
func (p RawPacket) Bits() int {
	if p.Width > 0 {
		return p.Width
	}
	return 64
}

// NoisePacket is the "noise" transmission of the MMV framework
// (Definition 3.1): scheduled senders that do not have the message
// send noise instead of staying silent.
type NoisePacket struct{}

// Bits implements Packet.
func (NoisePacket) Bits() int { return 1 }

// FuncProtocol adapts two closures to the Protocol interface.
// A nil ActFunc listens forever; a nil ObserveFunc discards input.
type FuncProtocol struct {
	ActFunc     func(r int64) Action
	ObserveFunc func(r int64, out Outcome)
}

var _ Protocol = (*FuncProtocol)(nil)

// Act implements Protocol.
func (f *FuncProtocol) Act(r int64) Action {
	if f.ActFunc == nil {
		return Listen
	}
	return f.ActFunc(r)
}

// Observe implements Protocol.
func (f *FuncProtocol) Observe(r int64, out Outcome) {
	if f.ObserveFunc != nil {
		f.ObserveFunc(r, out)
	}
}

// Silent is a protocol that listens forever and records everything it
// hears; useful as a passive probe in tests.
type Silent struct {
	Heard      []Outcome
	LastRound  int64
	Collisions int
	Packets    int
}

var _ Protocol = (*Silent)(nil)

// Act implements Protocol.
func (s *Silent) Act(int64) Action { return Listen }

// Observe implements Protocol.
func (s *Silent) Observe(r int64, out Outcome) {
	s.Heard = append(s.Heard, out)
	s.LastRound = r
	if out.Collision {
		s.Collisions++
	} else {
		s.Packets++
	}
}

// Jammer transmits noise with probability P in every round, using the
// given float source. It is the failure-injection adversary for MMV
// experiments.
type Jammer struct {
	P    float64
	Rand interface{ Float64() float64 }
}

var _ Protocol = (*Jammer)(nil)

// Act implements Protocol.
func (j *Jammer) Act(int64) Action {
	if j.Rand.Float64() < j.P {
		return Transmit(NoisePacket{})
	}
	return Listen
}

// Observe implements Protocol.
func (j *Jammer) Observe(int64, Outcome) {}
