module radiocast

go 1.22
