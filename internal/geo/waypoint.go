package geo

import (
	"math"

	"radiocast/internal/rng"
)

// Waypoint is the random-waypoint mobility model: every node walks at
// a fixed speed toward a private target drawn uniformly from the unit
// square, draws a fresh target on arrival, and repeats. Stepping
// mutates the layout's coordinate slices in place, so every consumer
// aliasing them (a RangeErasure channel, a renderer) tracks the
// motion; the disk graph does NOT track it — re-derive topology with
// NewDisk + Retopo at the period boundary.
//
// The stepper is deterministic in (layout, speed, seed): target draws
// come off one sequential keyed stream, and the order of arrivals —
// which decides who draws next — is itself a deterministic function
// of positions and targets.
type Waypoint struct {
	l     *Layout
	tx    []float64
	ty    []float64
	speed float64
	src   *rng.Source
}

// NewWaypoint attaches a stepper to l with the given per-step speed
// (unit-square units per round). Initial targets are drawn
// immediately so the very first Step moves every node.
func NewWaypoint(l *Layout, speed float64, seed uint64) *Waypoint {
	n := l.N()
	w := &Waypoint{
		l:     l,
		tx:    make([]float64, n),
		ty:    make([]float64, n),
		speed: speed,
		src:   rng.NewSource(rng.Mix(seed, 0x3a7e)), // "waypoint"
	}
	for i := 0; i < n; i++ {
		w.tx[i] = uniform01(w.src)
		w.ty[i] = uniform01(w.src)
	}
	return w
}

// Step advances every node one movement step toward its target,
// drawing a fresh target on arrival.
func (w *Waypoint) Step() {
	n := w.l.N()
	for i := 0; i < n; i++ {
		dx := w.tx[i] - w.l.X[i]
		dy := w.ty[i] - w.l.Y[i]
		dist := math.Sqrt(dx*dx + dy*dy)
		if dist <= w.speed {
			w.l.X[i] = w.tx[i]
			w.l.Y[i] = w.ty[i]
			w.tx[i] = uniform01(w.src)
			w.ty[i] = uniform01(w.src)
			continue
		}
		w.l.X[i] += dx / dist * w.speed
		w.l.Y[i] += dy / dist * w.speed
	}
}

// Advance runs k movement steps.
func (w *Waypoint) Advance(k int) {
	for s := 0; s < k; s++ {
		w.Step()
	}
}
