package harness

// Robustness experiments E13-E15: the paper's protocols on the
// adversarial channels of internal/channel. The fixed-schedule theorem
// stacks (Thm 1.1/1.3) trade retries for round-optimal pipelines, so
// channel adversity is exactly where they should break before the
// retry-forever baselines do — these sweeps measure where.

import (
	"fmt"
	"math"

	"radiocast/internal/channel"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
	"radiocast/internal/stats"
)

// robustnessChain is the shared E13/E15 workload: moderate diameter,
// dense cliques — the regime where the CD machinery matters and runs
// stay fast enough for a per-loss-rate sweep.
func robustnessChain() *graph.Graph { return graph.ClusterChain(6, 6) }

// meanOrDash renders the mean of xs, or "-" when nothing completed.
func meanOrDash(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Summarize(xs, 0, 0).Mean
}

// e13Protocols orders the protocol columns of E13.
var e13Protocols = []string{"decay", "cr", "th11", "th13"}

// E13Plan sweeps a per-link erasure rate under all four broadcast
// stacks. Expected shape: Decay and CR retry forever, so they stay
// complete with a slowdown growing in 1/(1-p)-ish fashion; the fixed
// round budgets of Theorems 1.1/1.3 absorb small loss inside their
// Θ(·) slack, then fall off a completion cliff.
func E13Plan(seeds int, quick bool) *exp.Plan {
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if quick {
		losses = []float64{0, 0.1, 0.3}
	}
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	const k = 4
	costs := map[string]int64{
		"decay": 4 * baselineCost(g, d),
		"cr":    4 * baselineCost(g, d),
		"th11":  budgetCost(g.N(), rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds()),
		"th13":  budgetCost(g.N(), rings.DefaultConfig(g.N(), d, k, 1).TotalRounds()),
	}
	p := &exp.Plan{ID: "E13", Title: "Robustness: loss-rate sweep (Decay vs CR vs Thm 1.1 vs Thm 1.3)"}
	for _, loss := range losses {
		for _, proto := range e13Protocols {
			for s := 0; s < seeds; s++ {
				loss, proto, seed := loss, proto, uint64(s)
				p.Cells = append(p.Cells, exp.Cell{
					Key:        exp.Key{Experiment: "E13", Config: fmt.Sprintf("loss=%g/%s", loss, proto), Seed: seed},
					RoundLimit: broadcastLimit,
					Cost:       costs[proto],
					Run: func(limit int64) exp.Result {
						ch := lossChannel(loss, seed)
						switch proto {
						case "decay":
							r, ok, st := RunDecayOn(g, ch, seed, limit)
							return exp.RoundsOn(r, ok, st.Dropped, st.Jammed)
						case "cr":
							r, ok, st := RunCROn(g, d, ch, seed, limit)
							return exp.RoundsOn(r, ok, st.Dropped, st.Jammed)
						case "th11":
							res := RunTheorem11On(g, d, 1, ch, seed)
							return exp.RoundsOn(res.Rounds, res.Completed, res.Stats.Dropped, res.Stats.Jammed)
						default: // "th13"
							r, ok, _, st := RunTheorem13On(g, d, k, 1, ch, seed)
							return exp.RoundsOn(r, ok, st.Dropped, st.Jammed)
						}
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E13: broadcast under per-link packet loss (clusterchain-6x6)",
			Comment: "mean rounds over completed seeds; slowdown vs loss=0; retry-forever baselines degrade gracefully,\n" +
				"the fixed-budget theorem stacks (th11/th13) fall off a completion cliff",
			Header: []string{"loss", "protocol", "rounds", "slowdown", "dropped", "ok"},
		}
		base := map[string]float64{}
		for _, loss := range losses {
			for _, proto := range e13Protocols {
				var rs, dr []float64
				okCount := 0
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E13", Config: fmt.Sprintf("loss=%g/%s", loss, proto), Seed: uint64(s)}]
					dr = append(dr, float64(r.Dropped))
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
					}
				}
				mean := meanOrDash(rs)
				if loss == 0 {
					base[proto] = mean
				}
				t.AddRow(stats.F(loss), proto, stats.F(mean), stats.F(mean/base[proto]),
					stats.F(meanOrDash(dr)), fmt.Sprintf("%d/%d", okCount, seeds))
			}
		}
		return t
	}
	return p
}

// lossChannel returns a fresh per-run erasure channel; loss 0 is the
// ideal channel (nil), anchoring the sweep's baseline to the
// fast-path engine.
func lossChannel(loss float64, seed uint64) radio.Channel {
	if loss == 0 {
		return nil
	}
	return channel.NewErasure(loss, rng.Mix(seed, 0xe13))
}

// E13LossSweep runs E13 sequentially (compat wrapper).
func E13LossSweep(seeds int, quick bool) *stats.Table { return runPlan(E13Plan(seeds, quick)) }

// e14Variants orders the jammer policies of E14.
var e14Variants = []string{"oblivious", "adaptive"}

// E14Plan sweeps a jammer's round budget under both targeting
// policies. Expected shape: Decay absorbs any finite budget (it
// retries past the jam; completion time ≈ budget + base for the
// adaptive jammer, which wastes nothing on idle slots), while
// Theorem 1.1's one-shot schedule loses its wave/build phases to the
// jam and cannot recover within its budget.
func E14Plan(seeds int, quick bool) *exp.Plan {
	budgets := []int64{0, 64, 256, 1024}
	if quick {
		budgets = []int64{0, 256}
	}
	g := graph.Grid(8, 8)
	d := graph.Eccentricity(g, 0)
	protos := []string{"decay", "th11"}
	costs := map[string]int64{
		"decay": 4 * baselineCost(g, d),
		"th11":  budgetCost(g.N(), rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds()),
	}
	p := &exp.Plan{ID: "E14", Title: "Robustness: jammer-budget sweep (oblivious vs adaptive)"}
	for _, budget := range budgets {
		for _, variant := range e14Variants {
			for _, proto := range protos {
				for s := 0; s < seeds; s++ {
					budget, variant, proto, seed := budget, variant, proto, uint64(s)
					p.Cells = append(p.Cells, exp.Cell{
						Key:        exp.Key{Experiment: "E14", Config: fmt.Sprintf("jam=%d/%s/%s", budget, variant, proto), Seed: seed},
						RoundLimit: broadcastLimit,
						Cost:       costs[proto] + budget,
						Run: func(limit int64) exp.Result {
							ch := jamChannel(budget, variant == "adaptive", seed)
							if proto == "decay" {
								r, ok, st := RunDecayOn(g, ch, seed, limit)
								return exp.RoundsOn(r, ok, st.Dropped, st.Jammed)
							}
							res := RunTheorem11On(g, d, 1, ch, seed)
							return exp.RoundsOn(res.Rounds, res.Completed, res.Stats.Dropped, res.Stats.Jammed)
						},
					})
				}
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E14: broadcast under a budgeted jammer (grid-8x8)",
			Comment: "oblivious jams each round w.p. 1/2 until the budget is spent; adaptive jams every slot with\n" +
				"traffic (busiest-slot policy) — Decay retries past any finite budget, Thm 1.1's one-shot schedule cannot",
			Header: []string{"budget", "policy", "decay rounds", "decay ok", "th11 rounds", "th11 ok", "jammed obs"},
		}
		for _, budget := range budgets {
			for _, variant := range e14Variants {
				cell := func(proto string) ([]float64, int, float64) {
					var rs []float64
					okCount := 0
					jam := 0.0
					for s := 0; s < seeds; s++ {
						r := idx[exp.Key{Experiment: "E14", Config: fmt.Sprintf("jam=%d/%s/%s", budget, variant, proto), Seed: uint64(s)}]
						jam += float64(r.Jammed)
						if r.Completed {
							okCount++
							rs = append(rs, float64(r.Rounds))
						}
					}
					return rs, okCount, jam / float64(seeds)
				}
				dr, dok, djam := cell("decay")
				tr, tok, tjam := cell("th11")
				t.AddRow(fmt.Sprint(budget), variant,
					stats.F(meanOrDash(dr)), fmt.Sprintf("%d/%d", dok, seeds),
					stats.F(meanOrDash(tr)), fmt.Sprintf("%d/%d", tok, seeds),
					stats.F(djam+tjam))
			}
		}
		return t
	}
	return p
}

// jamChannel returns a fresh per-run jammer; budget 0 is the ideal
// channel (nil).
func jamChannel(budget int64, adaptive bool, seed uint64) radio.Channel {
	if budget == 0 {
		return nil
	}
	if adaptive {
		return channel.NewAdaptiveJammer(budget, 1, rng.Mix(seed, 0xe14))
	}
	return channel.NewJammer(budget, 0.5, rng.Mix(seed, 0xe14))
}

// E14JammerSweep runs E14 sequentially (compat wrapper).
func E14JammerSweep(seeds int, quick bool) *stats.Table { return runPlan(E14Plan(seeds, quick)) }

// E15Plan sweeps unreliable collision detection — the most
// paper-relevant adversity: Theorem 1.1's collision-wave layering *is*
// the CD signal, so missed ⊤ (a node joins the wave late) and spurious
// ⊤ (a node joins early) both corrupt the BFS layering the whole stack
// is built on. Decay never consumes the ⊤ symbol, so it rides the same
// noisy channel untouched — the control column demonstrating that the
// breakage is CD-specific, not channel overhead.
func E15Plan(seeds int, quick bool) *exp.Plan {
	qs := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if quick {
		qs = []float64{0, 0.1, 0.4}
	}
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	variants := []string{"decay", "th11miss", "th11spur"}
	th11Cost := budgetCost(g.N(), rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds())
	p := &exp.Plan{ID: "E15", Title: "Robustness: unreliable collision detection sweep"}
	for _, q := range qs {
		for _, variant := range variants {
			for s := 0; s < seeds; s++ {
				q, variant, seed := q, variant, uint64(s)
				cost := th11Cost
				if variant == "decay" {
					cost = 4 * baselineCost(g, d)
				}
				p.Cells = append(p.Cells, exp.Cell{
					Key:        exp.Key{Experiment: "E15", Config: fmt.Sprintf("q=%g/%s", q, variant), Seed: seed},
					RoundLimit: broadcastLimit,
					Cost:       cost,
					Run: func(limit int64) exp.Result {
						switch variant {
						case "decay":
							// Same noisy channel; Decay never reads ⊤, so this
							// column must match q=0 exactly.
							r, ok, st := RunDecayOn(g, cdChannel(q, q, seed), seed, limit)
							return exp.RoundsOn(r, ok, st.Dropped, st.Jammed)
						case "th11miss":
							res := RunTheorem11On(g, d, 1, cdChannel(q, 0, seed), seed)
							return exp.RoundsOn(res.Rounds, res.Completed, res.Stats.Dropped, res.Stats.Jammed)
						default: // "th11spur"
							res := RunTheorem11On(g, d, 1, cdChannel(0, q, seed), seed)
							return exp.RoundsOn(res.Rounds, res.Completed, res.Stats.Dropped, res.Stats.Jammed)
						}
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E15: broadcast under unreliable collision detection (clusterchain-6x6)",
			Comment: "miss: true ⊤ observed as silence w.p. q; spur: silence observed as ⊤ w.p. q; Decay ignores ⊤\n" +
				"entirely (identical rounds at every q) while Thm 1.1's collision-wave layering degrades",
			Header: []string{"q", "decay rounds", "miss rounds", "miss ok", "spur rounds", "spur ok", "jammed obs"},
		}
		for _, q := range qs {
			collect := func(variant string) ([]float64, int, float64) {
				var rs []float64
				okCount := 0
				jam := 0.0
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E15", Config: fmt.Sprintf("q=%g/%s", q, variant), Seed: uint64(s)}]
					jam += float64(r.Jammed)
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
					}
				}
				return rs, okCount, jam / float64(seeds)
			}
			dr, _, _ := collect("decay")
			mr, mok, mjam := collect("th11miss")
			sr, sok, sjam := collect("th11spur")
			t.AddRow(stats.F(q), stats.F(meanOrDash(dr)),
				stats.F(meanOrDash(mr)), fmt.Sprintf("%d/%d", mok, seeds),
				stats.F(meanOrDash(sr)), fmt.Sprintf("%d/%d", sok, seeds),
				stats.F(mjam+sjam))
		}
		return t
	}
	return p
}

// cdChannel returns a fresh per-run unreliable-CD channel; q=0 on both
// axes is the ideal channel (nil).
func cdChannel(miss, spurious float64, seed uint64) radio.Channel {
	if miss == 0 && spurious == 0 {
		return nil
	}
	return channel.NewNoisyCD(miss, spurious, rng.Mix(seed, 0xe15))
}

// E15NoisyCDSweep runs E15 sequentially (compat wrapper).
func E15NoisyCDSweep(seeds int, quick bool) *stats.Table { return runPlan(E15Plan(seeds, quick)) }
