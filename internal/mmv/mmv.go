// Package mmv implements the transmission schedules atop a GST:
//
//   - the fast/slow schedule of Section 3.2, which is multi-message
//     viable (Definition 3.1): it broadcasts in O(D + log^2 n)-shaped
//     time even when scheduled nodes lacking content jam their slots;
//   - its single-message instantiation (the [7]-style broadcast used
//     as a black box by Theorem 1.1), and
//   - its RLNC instantiation (Section 3.3.2), which yields the optimal
//     k-message broadcast of Theorem 1.2 in the known-topology setting.
//
// Schedule (Section 3.2). In round t, a node u at BFS level l with
// rank r and virtual distance d:
//
//	(a) fast slot:  t ≡ 2(l + 3r) (mod M), M = 6(⌈log n⌉ + 2):
//	    u transmits — a stretch start sends fresh content, an interior
//	    stretch node relays the packet received from its parent in the
//	    previous fast round. Only nodes with a same-rank child
//	    transmit (see DESIGN.md: this makes Lemma 3.5 exact).
//	(b) slow slot:  t ≡ 1 + 2d (mod 6): u transmits fresh content with
//	    probability 2^-((t-1-2d)/6 mod ⌈log n⌉).
//
// Fast slots fall on even rounds and slow slots on odd rounds, so the
// two kinds never collide with each other. The slow slots are keyed by
// virtual distance — not by level as in [7, 19] — which is what makes
// the schedule MMV (the crucial change enabling the backwards
// analysis).
package mmv

import (
	"math/rand"

	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
	"radiocast/internal/sched"
)

// NodeInfo is the GST knowledge a node needs to run the schedule —
// exactly what the distributed construction (Theorem 2.1 + Lemma 3.10)
// provides.
type NodeInfo struct {
	Level         int32
	Rank          int32
	Vdist         int32
	Parent        radio.NodeID // -1 for roots
	ParentRank    int32
	SameRankChild bool
	IsRoot        bool
}

// IsStretchStart reports whether the node begins a fast stretch.
func (ni NodeInfo) IsStretchStart() bool {
	return ni.IsRoot || ni.ParentRank != ni.Rank
}

// InfoFromTree extracts NodeInfo for every node from a centralized GST
// (the known-topology setting of Theorem 1.2).
func InfoFromTree(t *gst.Tree) []NodeInfo {
	vdist := gst.VirtualDistances(t)
	children := t.Children()
	isRoot := make(map[radio.NodeID]bool, len(t.Roots))
	for _, r := range t.Roots {
		isRoot[r] = true
	}
	infos := make([]NodeInfo, t.G.N())
	for v := 0; v < t.G.N(); v++ {
		pr := int32(0)
		if p := t.Parent[v]; p >= 0 {
			pr = t.Rank[p]
		}
		infos[v] = NodeInfo{
			Level:         t.Level[v],
			Rank:          t.Rank[v],
			Vdist:         vdist[v],
			Parent:        t.Parent[v],
			ParentRank:    pr,
			SameRankChild: gst.SameRankChild(t, children, radio.NodeID(v)) >= 0,
			IsRoot:        isRoot[radio.NodeID(v)],
		}
	}
	return infos
}

// InfoFromResult converts a distributed construction result.
func InfoFromResult(res gstdist.Result, isRoot bool) NodeInfo {
	return NodeInfo{
		Level:         res.Level,
		Rank:          res.Rank,
		Vdist:         res.Vdist,
		Parent:        res.Parent,
		ParentRank:    res.ParentRank,
		SameRankChild: res.SameRankChild,
		IsRoot:        isRoot,
	}
}

// Schedule fixes the timing parameters.
type Schedule struct {
	// L is ⌈log2 n⌉.
	L int
	// M is the fast-slot period, 6(L+2): large enough that two
	// distinct ranks never share a (level, slot) pair.
	M int64
}

// NewSchedule derives the schedule for network-size parameter n.
func NewSchedule(n int) Schedule {
	l := sched.LogN(n)
	return Schedule{L: l, M: 6 * int64(l+2)}
}

// FastSlot reports whether t is the fast slot of (level, rank).
func (s Schedule) FastSlot(t int64, level, rank int32) bool {
	want := (2 * (int64(level) + 3*int64(rank))) % s.M
	return t%s.M == want
}

// SlowProb returns the transmission probability of the slow slot at
// round t for virtual distance d, or 0 if t is not a slow slot of d.
func (s Schedule) SlowProb(t int64, d int32) float64 {
	base := 1 + 2*int64(d)
	if t < base || (t-base)%6 != 0 {
		return 0
	}
	exp := ((t - base) / 6) % int64(s.L)
	return 1 / float64(int64(1)<<uint(exp))
}

// Content is the pluggable payload layer of the schedule.
type Content interface {
	// Fresh produces new content for a stretch-start fast slot or a
	// slow slot; nil means the node has nothing to send.
	Fresh() radio.Packet
	// OnReceive consumes a received content packet.
	OnReceive(pkt radio.Packet, from radio.NodeID)
	// Done reports completion for this node (harness predicate).
	Done() bool
}

// Protocol runs the schedule for one node.
type Protocol struct {
	sched   Schedule
	info    NodeInfo
	content Content
	rng     *rand.Rand
	// Noising makes the node jam scheduled slots when content is nil —
	// the MMV adversary of Definition 3.1.
	noising bool
	// levelKeyedSlow keys slow slots by BFS level instead of virtual
	// distance — the [7,19]-style schedule. It is NOT multi-message
	// viable; it exists as the ablation of experiment A1.
	levelKeyedSlow bool

	relay radio.Packet // packet received from the parent's last fast slot
	// relayBuf is the scratch behind relay for coded packets: an
	// incoming *rlnc.Packet aliases the sender's air scratch, which is
	// only valid within its round, so the relay copy lives here (one
	// backing per node, reused across relays — no steady-state
	// allocation).
	relayBuf rlnc.Packet
}

var _ radio.Protocol = (*Protocol)(nil)

// New creates the schedule protocol for a node.
func New(s Schedule, info NodeInfo, content Content, noising bool, rng *rand.Rand) *Protocol {
	return &Protocol{sched: s, info: info, content: content, rng: rng, noising: noising}
}

// NewLevelKeyed creates the ablation variant whose slow slots are
// keyed by level, as in the pre-MMV schedules of [7, 19].
func NewLevelKeyed(s Schedule, info NodeInfo, content Content, noising bool, rng *rand.Rand) *Protocol {
	p := New(s, info, content, noising, rng)
	p.levelKeyedSlow = true
	return p
}

// Content returns the node's content layer.
func (p *Protocol) Content() Content { return p.content }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (p *Protocol) Rng() *rand.Rand { return p.rng }

// Rebind reconfigures the protocol in place for a new run (or a new
// epoch of a ring pipeline): fresh GST knowledge and content layer,
// relay state cleared, no allocation. The schedule, noising flag, and
// RNG binding are unchanged; reseeding the RNG is the caller's job.
func (p *Protocol) Rebind(info NodeInfo, content Content) {
	p.info = info
	p.content = content
	p.relay = nil
}

// retain converts a just-received packet into a form safe to hold
// across rounds: coded packets alias the sender's per-round air
// scratch and are copied into relayBuf; every other packet type is an
// immutable boxed value and is returned as-is.
func (p *Protocol) retain(pkt radio.Packet) radio.Packet {
	rp, ok := pkt.(*rlnc.Packet)
	if !ok {
		return pkt
	}
	if p.relayBuf.Coeff.Len() != rp.Coeff.Len() || p.relayBuf.Payload.Len() != rp.Payload.Len() {
		p.relayBuf = rlnc.Packet{Gen: rp.Gen, Coeff: rp.Coeff.Clone(), Payload: rp.Payload.Clone()}
		return &p.relayBuf
	}
	p.relayBuf.Gen = rp.Gen
	p.relayBuf.Coeff.CopyFrom(rp.Coeff)
	p.relayBuf.Payload.CopyFrom(rp.Payload)
	return &p.relayBuf
}

// Act implements radio.Protocol.
func (p *Protocol) Act(t int64) radio.Action {
	if p.info.Level < 0 || p.info.Vdist < 0 {
		return radio.Listen // not part of the structure (failed setup)
	}
	if t%2 == 0 {
		if !p.sched.FastSlot(t, p.info.Level, p.info.Rank) || !p.info.SameRankChild {
			return radio.Listen
		}
		var pkt radio.Packet
		if p.info.IsStretchStart() {
			pkt = p.content.Fresh()
		} else {
			pkt = p.relay
			p.relay = nil // one relay per received wave
		}
		switch {
		case pkt != nil:
			return radio.Transmit(pkt)
		case p.noising:
			return radio.Transmit(radio.NoisePacket{})
		default:
			return radio.Listen
		}
	}
	slowKey := p.info.Vdist
	if p.levelKeyedSlow {
		slowKey = p.info.Level
	}
	prob := p.sched.SlowProb(t, slowKey)
	if prob == 0 || p.rng.Float64() >= prob {
		return radio.Listen
	}
	if pkt := p.content.Fresh(); pkt != nil {
		return radio.Transmit(pkt)
	}
	if p.noising {
		return radio.Transmit(radio.NoisePacket{})
	}
	return radio.Listen
}

// Observe implements radio.Protocol.
func (p *Protocol) Observe(t int64, out radio.Outcome) {
	if out.Packet == nil {
		return
	}
	if _, isNoise := out.Packet.(radio.NoisePacket); isNoise {
		return
	}
	p.content.OnReceive(out.Packet, out.From)
	// Buffer the parent's fast wave for relaying two rounds later.
	if p.info.Parent == out.From && p.info.ParentRank == p.info.Rank &&
		p.sched.FastSlot(t, p.info.Level-1, p.info.Rank) {
		p.relay = p.retain(out.Packet)
	}
}
