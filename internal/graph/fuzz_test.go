package graph

// Native fuzz targets for the streaming-CSR contract: FromStream must
// be byte-identical to the legacy Builder on ARBITRARY edge sequences
// (duplicates, self-loops, skewed degree sequences — whatever the
// fuzzer invents), and BuildConnected must always hand back a valid,
// connected, deterministically reproducible graph. The corpus seeds
// cover the interesting shapes (empty, single-edge, dense duplicate
// blocks); the fuzzer mutates from there.

import (
	"testing"
)

// fuzzStream decodes an arbitrary byte string into an edge stream on n
// nodes: consecutive byte pairs are an edge (u, v) = (data[i] mod n,
// data[i+1] mod n). Deterministic and re-iterable, as EdgeStream
// requires; self-loops and duplicates are legal stream emissions.
type fuzzStream struct {
	n    int
	data []byte
}

func (s fuzzStream) N() int       { return s.n }
func (s fuzzStream) Name() string { return "fuzz" }

func (s fuzzStream) Edges(emit func(u, v NodeID)) {
	for i := 0; i+1 < len(s.data); i += 2 {
		emit(NodeID(int(s.data[i])%s.n), NodeID(int(s.data[i+1])%s.n))
	}
}

// FuzzFromStream: streamed CSR assembly vs the Builder twin on the
// same emission sequence — offsets, edges, and name must match
// byte-for-byte, and the result must pass structural validation.
func FuzzFromStream(f *testing.F) {
	f.Add(uint8(1), []byte{})
	f.Add(uint8(2), []byte{0, 1})
	f.Add(uint8(5), []byte{0, 0, 1, 1, 2, 2}) // self-loops only
	f.Add(uint8(7), []byte{0, 1, 0, 1, 1, 0, 3, 4, 4, 3, 3, 4})
	f.Add(uint8(200), []byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%200 + 1
		s := fuzzStream{n: n, data: data}
		got := FromStream(s)
		if err := got.Validate(); err != nil {
			t.Fatalf("FromStream produced invalid graph: %v", err)
		}
		sameGraph(t, got, buildViaBuilder(s), "fuzz stream")
	})
}

// FuzzBuildConnected: the stitched graph must validate, be connected,
// contain the sampled edges, and rebuild byte-identically from the
// same (stream, seed) pair.
func FuzzBuildConnected(f *testing.F) {
	f.Add(uint8(1), uint64(0), []byte{})
	f.Add(uint8(50), uint64(7), []byte{})            // all-isolated: n-1 stitch edges
	f.Add(uint8(10), uint64(3), []byte{0, 1, 2, 3})  // two islands + isolated rest
	f.Add(uint8(90), uint64(9), []byte{9, 8, 7, 6})  // stitch order vs component order
	f.Fuzz(func(t *testing.T, nRaw uint8, seed uint64, data []byte) {
		n := int(nRaw)%120 + 1
		s := fuzzStream{n: n, data: data}
		g := BuildConnected(s, seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("BuildConnected produced invalid graph: %v", err)
		}
		if !IsConnected(g) {
			t.Fatalf("BuildConnected produced a disconnected graph (n=%d)", n)
		}
		// Every sampled (non-loop) edge must survive stitching.
		s.Edges(func(u, v NodeID) {
			if u != v && !g.HasEdge(u, v) {
				t.Fatalf("sampled edge (%d,%d) missing from stitched graph", u, v)
			}
		})
		sameGraph(t, BuildConnected(s, seed), g, "rebuild")
	})
}
