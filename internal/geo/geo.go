// Package geo grounds workloads in geometry: deterministic seeded
// point layouts in the unit square, a grid-bucketed (quasi-)unit-disk
// graph builder that streams straight into graph.FromStream, and a
// random-waypoint mobility stepper that re-derives the layout over
// time. The paper's model targets wireless devices whose connectivity
// comes from positions and radio range, not from an abstract edge
// list; this package is the bridge between that physical picture and
// the engines' CSR topology.
//
// Everything is deterministic in (parameters, seed): layouts draw from
// a keyed xoshiro stream, the disk builder emits an identical edge
// sequence on every pass (the graph.EdgeStream contract), and the
// waypoint stepper's target draws ride one sequential stream, so a
// mobile run is an exact function of its seed like every other run in
// this repository.
package geo

import (
	"fmt"
	"math"

	"radiocast/internal/rng"
)

// Layout is a set of 2-D node positions in the unit square [0,1)^2.
// The coordinate slices are exposed so position-aware consumers (the
// range-erasure channel, the waypoint stepper, position-true
// rendering) can alias them: mutating a layout in place flows through
// to every consumer holding the slices.
type Layout struct {
	X, Y []float64
	name string
}

// N returns the number of points.
func (l *Layout) N() int { return len(l.X) }

// Name returns the layout's workload name.
func (l *Layout) Name() string { return l.name }

// uniform01 draws the next float64 in [0,1) from src.
func uniform01(src *rng.Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Uniform returns n points drawn i.i.d. uniformly from the unit
// square — the classical random geometric graph layout.
func Uniform(n int, seed uint64) *Layout {
	l := &Layout{
		X:    make([]float64, n),
		Y:    make([]float64, n),
		name: fmt.Sprintf("uniform(n=%d,s=%d)", n, seed),
	}
	src := rng.NewSource(rng.Mix(seed, 0x67e0)) // "geo"
	for i := 0; i < n; i++ {
		l.X[i] = uniform01(src)
		l.Y[i] = uniform01(src)
	}
	return l
}

// Clustered returns n points grouped around `clusters` uniformly
// placed centers: node i belongs to cluster i mod clusters (so cluster
// sizes stay balanced at any n) and is offset uniformly within a
// spread x spread box around its center, clamped to the unit square.
// With spread well below the typical center separation the disk graph
// on a clustered layout decomposes into per-cluster components — the
// churn regime E23 starts from.
func Clustered(n, clusters int, spread float64, seed uint64) *Layout {
	if clusters < 1 {
		clusters = 1
	}
	l := &Layout{
		X:    make([]float64, n),
		Y:    make([]float64, n),
		name: fmt.Sprintf("clustered(n=%d,c=%d,s=%d)", n, clusters, seed),
	}
	src := rng.NewSource(rng.Mix(seed, 0x67e1))
	cx := make([]float64, clusters)
	cy := make([]float64, clusters)
	for c := 0; c < clusters; c++ {
		cx[c] = uniform01(src)
		cy[c] = uniform01(src)
	}
	for i := 0; i < n; i++ {
		c := i % clusters
		l.X[i] = clamp01(cx[c] + (uniform01(src)-0.5)*spread)
		l.Y[i] = clamp01(cy[c] + (uniform01(src)-0.5)*spread)
	}
	return l
}

// clamp01 clamps v into [0, 1).
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// ConnectivityRadius is the classical random-geometric-graph
// connectivity threshold sqrt(2 ln n / n) with a 1.2x safety factor —
// the radius at which a Uniform layout's unit-disk graph is connected
// w.h.p. (mirrors graph.ConnectivityRadius, restated here so geometric
// workloads need no graph-package import for parameter selection).
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return 1.2 * math.Sqrt(2*math.Log(float64(n))/float64(n))
}
