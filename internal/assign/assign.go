// Package assign implements the distributed Bipartite Assignment
// algorithm of Section 2.2.3 — the core of the distributed GST
// construction (Theorem 2.1). It assigns every blue node (BFS level l)
// a red parent (level l-1) such that the resulting parent-child pairs
// satisfy the six properties of the Bipartite Assignment Problem: all
// blues assigned, red ranks follow the ranking rule, the assignment is
// collision-free, and both endpoints know ids and ranks.
//
// Schedule for one boundary (all lengths are fixed functions of n, so
// every node derives its position from the round offset alone):
//
//	for rank i = ⌈log n⌉ .. 1:
//	  identification  Θ(log^2 n): unassigned rank-i blues run Decay
//	                  phases; reds that hear anything activate.
//	  for epoch e = 1 .. Θ(log n):
//	    stage I       1 round: active reds ping (a blue hearing a
//	                  clean message has exactly one active red — a
//	                  loner); then Θ(log^2 n) rounds of Decay where
//	                  loners announce themselves (reds that hear one
//	                  become loner-parents).
//	    stage II      three Recruiting runs (Lemma 2.3):
//	                  part 1: loner-parents recruit; assignments are
//	                          permanent.
//	                  part 2: brisk reds (coin flip) recruit; a blue
//	                          that is not an only child binds
//	                          permanently, an only child temporarily.
//	                  part 3: as part 2 with lazy reds.
//	    stage III     marking: loner-parents and reds that recruited
//	                  zero or ≥2 become inactive; those with children
//	                  take rank i (one child) or i+1 (≥2) and
//	                  broadcast (id, rank) in Θ(log^2 n) Decay rounds;
//	                  unassigned blues of lower rank adopt the first
//	                  such red heard (mop-up).
//
// Collision detection is not required (Theorem 2.1 holds without it):
// in stage I silence unambiguously means "two or more active reds",
// because an unassigned blue always has at least one active red
// neighbor.
package assign

import (
	"fmt"

	"radiocast/internal/radio"
	"radiocast/internal/recruit"
	"radiocast/internal/sched"
)

// NodeID aliases radio.NodeID.
type NodeID = radio.NodeID

// Params fixes the boundary schedule. All Θ(·) constants are explicit.
type Params struct {
	// L is ⌈log2 n⌉.
	L int
	// CIdent scales identification phases: CIdent·L Decay phases.
	CIdent int
	// CLoner scales loner-announcement phases: CLoner·L Decay phases.
	CLoner int
	// CEpochs scales epochs per rank: CEpochs·L epochs.
	CEpochs int
	// EpochsOverride, when positive, fixes the absolute number of
	// epochs per rank regardless of CEpochs. Used by the Lemma 2.4
	// shrinkage experiment (E5) to starve the schedule deliberately.
	EpochsOverride int
	// CMop scales stage III broadcast phases: CMop·L Decay phases.
	CMop int
	// Rec is the recruiting sub-protocol schedule.
	Rec recruit.Params
}

// DefaultParams returns the schedule for network size n with a global
// Θ-constant c applied to every phase count.
func DefaultParams(n, c int) Params {
	if c < 1 {
		c = 1
	}
	return Params{
		L:       sched.LogN(n),
		CIdent:  c,
		CLoner:  c,
		CEpochs: c,
		CMop:    c,
		Rec:     recruit.DefaultParams(n, c),
	}
}

// Window identifies a schedule segment within a rank's processing.
type Window uint8

// Windows of the per-rank schedule.
const (
	WinIdent Window = iota + 1
	WinPing
	WinLoner
	WinPart1
	WinPart2
	WinPart3
	WinMop
)

// Pos is a located schedule position.
type Pos struct {
	Rank  int // processing rank i (MaxRank() down to 1)
	Epoch int // epoch index within the rank (-1 during WinIdent)
	Win   Window
	Off   int64 // offset within the window
}

// IdentLen returns the identification segment length.
func (p Params) IdentLen() int64 { return int64(p.CIdent) * int64(p.L) * int64(p.L) }

// LonerLen returns the loner-announcement segment length.
func (p Params) LonerLen() int64 { return int64(p.CLoner) * int64(p.L) * int64(p.L) }

// MopLen returns the stage III broadcast segment length.
func (p Params) MopLen() int64 { return int64(p.CMop) * int64(p.L) * int64(p.L) }

// EpochLen returns the rounds per epoch.
func (p Params) EpochLen() int64 {
	return 1 + p.LonerLen() + 3*p.Rec.Rounds() + p.MopLen()
}

// Epochs returns the epochs per rank.
func (p Params) Epochs() int {
	if p.EpochsOverride > 0 {
		return p.EpochsOverride
	}
	return p.CEpochs * p.L
}

// MaxRank returns the largest processed rank, ⌈log n⌉ (+1 slack for
// the i+1 promotions at the top rank).
func (p Params) MaxRank() int { return p.L + 1 }

// RankLen returns the rounds spent per rank.
func (p Params) RankLen() int64 { return p.IdentLen() + int64(p.Epochs())*p.EpochLen() }

// BoundaryRounds returns the total rounds for one boundary.
func (p Params) BoundaryRounds() int64 { return int64(p.MaxRank()) * p.RankLen() }

// layout is the precomputed form of a Params' schedule arithmetic.
// Locate runs for every boundary node in every round (Act and
// Observe), and recomputing the length chain — RankLen → EpochLen →
// Rec.Rounds → ... — dominated full-sweep CPU profiles
// (assign.Params.RankLen alone was ~27% of flat samples); nodes cache
// a layout at construction instead.
type layout struct {
	identLen int64
	lonerLen int64
	epochLen int64
	recLen   int64
	rankLen  int64
	boundary int64
	maxRank  int
}

// layout precomputes the Params' schedule lengths.
func (p Params) layout() layout {
	ly := layout{
		identLen: p.IdentLen(),
		lonerLen: p.LonerLen(),
		epochLen: p.EpochLen(),
		recLen:   p.Rec.Rounds(),
		rankLen:  p.RankLen(),
		maxRank:  p.MaxRank(),
	}
	ly.boundary = int64(ly.maxRank) * ly.rankLen
	return ly
}

// locate maps a boundary-local offset to its schedule position using
// the cached lengths.
func (ly layout) locate(off int64) Pos {
	if off < 0 || off >= ly.boundary {
		panic(fmt.Sprintf("assign: offset %d outside boundary [0,%d)", off, ly.boundary))
	}
	rankIdx := off / ly.rankLen
	rank := ly.maxRank - int(rankIdx)
	rem := off % ly.rankLen
	if rem < ly.identLen {
		return Pos{Rank: rank, Epoch: -1, Win: WinIdent, Off: rem}
	}
	rem -= ly.identLen
	epoch := int(rem / ly.epochLen)
	rem %= ly.epochLen
	if rem < 1 {
		return Pos{Rank: rank, Epoch: epoch, Win: WinPing, Off: rem}
	}
	rem--
	if rem < ly.lonerLen {
		return Pos{Rank: rank, Epoch: epoch, Win: WinLoner, Off: rem}
	}
	rem -= ly.lonerLen
	for part := 0; part < 3; part++ {
		if rem < ly.recLen {
			return Pos{Rank: rank, Epoch: epoch, Win: WinPart1 + Window(part), Off: rem}
		}
		rem -= ly.recLen
	}
	return Pos{Rank: rank, Epoch: epoch, Win: WinMop, Off: rem}
}

// Locate maps a boundary-local offset to its schedule position. Hot
// paths (Node) cache the layout instead of re-deriving it per call.
func (p Params) Locate(off int64) Pos { return p.layout().locate(off) }

// Packets.
//
// Every boundary packet carries a 2-bit Tag: the transmitter's BFS
// level mod 4. With sequential boundaries only one boundary is ever
// audible and the tags are all zero (byte-identical to the untagged
// protocol). Under the pipelined construction of Section 2.2.4,
// same-parity boundaries run concurrently and a node can overhear the
// boundary two levels away; levels within hearing distance differ by
// exactly 2, so a mod-4 level tag is necessary and sufficient for a
// receiver to discard cross-boundary packets (it expects its
// counterpart level's tag). Collisions across boundaries remain — they
// only cost probabilistic progress, which the Θ(·) constants absorb —
// but tagged filtering makes cross-boundary *bindings* impossible.

// IdentPacket is a rank-identification transmission by a blue node.
type IdentPacket struct {
	Blue NodeID
	Tag  int32
}

// Bits implements radio.Packet.
func (IdentPacket) Bits() int { return 34 }

// PingPacket is the stage I transmission of every active red.
type PingPacket struct{ Tag int32 }

// Bits implements radio.Packet.
func (PingPacket) Bits() int { return 3 }

// LonerPacket is a loner blue's announcement.
type LonerPacket struct {
	Blue NodeID
	Tag  int32
}

// Bits implements radio.Packet.
func (LonerPacket) Bits() int { return 34 }

// MopPacket is the stage III (id, rank) broadcast of a marked red.
type MopPacket struct {
	Red  NodeID
	Rank int32
	Tag  int32
}

// Bits implements radio.Packet.
func (MopPacket) Bits() int { return 42 }
