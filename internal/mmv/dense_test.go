package mmv_test

// Dense-vs-sparse twin identity for the SoA GST broadcast. The dense
// port's keyed slow-slot draws make runs incomparable with the
// rand.Rand-driven Protocol, so the twin is a sparse radio.Protocol
// replaying the IDENTICAL schedule — same FastSlot residues, same
// relay-arming rule, same Mix3(key, node, round) slow coins — on the
// per-node engine. Frontier pruning aside (which provably cannot
// change per-node dynamics, see dense.go), the two engines must then
// produce the same broadcast: same reception round for every node.
// Checked on the ideal channel and under per-link erasure (drops are
// keyed by (round, link) and agree across engines), CD on and off,
// noising on and off.

import (
	"fmt"
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
	"radiocast/internal/rng"
)

// keyedTwin is the sparse twin: mmv.Protocol's exact Act/Observe
// logic with the dense engine's keyed coins in place of rand.Rand.
type keyedTwin struct {
	s       mmv.Schedule
	info    mmv.NodeInfo
	key     uint64
	id      graph.NodeID
	noising bool

	has   bool
	pkt   radio.Packet
	recv  int64
	relay radio.Packet
}

var _ radio.Protocol = (*keyedTwin)(nil)

func (p *keyedTwin) Act(t int64) radio.Action {
	if p.info.Level < 0 || p.info.Vdist < 0 {
		return radio.Listen // not part of the structure
	}
	if t%2 == 0 {
		if !p.s.FastSlot(t, p.info.Level, p.info.Rank) || !p.info.SameRankChild {
			return radio.Listen
		}
		var pkt radio.Packet
		if p.info.IsStretchStart() {
			if p.has {
				pkt = p.pkt
			}
		} else {
			pkt = p.relay
			p.relay = nil // one relay per received wave
		}
		switch {
		case pkt != nil:
			return radio.Transmit(pkt)
		case p.noising:
			return radio.Transmit(radio.NoisePacket{})
		default:
			return radio.Listen
		}
	}
	base := 1 + 2*int64(p.info.Vdist)
	if t < base || (t-base)%6 != 0 {
		return radio.Listen
	}
	if exp := ((t - base) / 6) % int64(p.s.L); exp > 0 &&
		rng.Mix3(p.key, uint64(p.id), uint64(t)) >= uint64(1)<<(64-uint(exp)) {
		return radio.Listen
	}
	switch {
	case p.has:
		return radio.Transmit(p.pkt)
	case p.noising:
		return radio.Transmit(radio.NoisePacket{})
	default:
		return radio.Listen
	}
}

func (p *keyedTwin) Observe(t int64, out radio.Outcome) {
	if out.Packet == nil {
		return
	}
	if _, isNoise := out.Packet.(radio.NoisePacket); isNoise {
		return
	}
	if !p.has {
		p.has = true
		p.pkt = out.Packet
		p.recv = t
	}
	// Buffer the parent's fast wave for relaying two rounds later.
	if p.info.Parent == out.From && p.info.ParentRank == p.info.Rank &&
		p.s.FastSlot(t, p.info.Level-1, p.info.Rank) {
		p.relay = out.Packet
	}
}

// denseGSTCase builds the radiotest case for one workload: state is
// the reception round for informed nodes, -2 for uninformed ones.
func denseGSTCase(g *graph.Graph, f *gst.Flat, seed uint64, src graph.NodeID,
	cd, noising bool, mk func() radio.Channel) radiotest.DenseCase {
	s := mmv.NewSchedule(g.N())
	return radiotest.DenseCase{
		Graph:         g,
		CD:            cd,
		MaxPacketBits: 64,
		Channel:       mk,
		Limit:         1 << 18,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := mmv.NewDense(g, f, s, seed, src, noising)
			return pr, pr.Done, func(v graph.NodeID) int64 {
				if !pr.Informed(v) {
					return -2
				}
				return pr.RecvRound(v)
			}
		},
	}
}

func twinGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
}

// TestDenseMatchesKeyedSparseTwin is the byte-identity acceptance
// property: on shared seeds the dense run and the keyed sparse twin
// agree on every node's reception round — ideal and under erasure, CD
// on and off, noising on and off.
func TestDenseMatchesKeyedSparseTwin(t *testing.T) {
	for _, g := range twinGraphs() {
		tr := gst.Construct(g, 0)
		f := gst.Flatten(tr)
		infos := mmv.InfoFromTree(tr)
		s := mmv.NewSchedule(g.N())
		for _, cd := range []bool{false, true} {
			for _, loss := range []float64{0, 0.15} {
				for _, noising := range []bool{false, true} {
					var mk func() radio.Channel
					if loss > 0 {
						loss := loss
						mk = func() radio.Channel { return channel.NewErasure(loss, 77) }
					}
					label := fmt.Sprintf("%s cd=%v loss=%g noising=%v", g.Name(), cd, loss, noising)
					c := denseGSTCase(g, f, 42, 0, cd, noising, mk)
					radiotest.Twin(t, label, c, func(nw *radio.Network, rounds int64) func(graph.NodeID) int64 {
						twins := make([]*keyedTwin, g.N())
						for v := 0; v < g.N(); v++ {
							tw := &keyedTwin{
								s: s, info: infos[v], key: mmv.DenseKey(42),
								id: graph.NodeID(v), noising: noising, recv: -1,
							}
							if graph.NodeID(v) == 0 {
								tw.has = true
								tw.pkt = decay.Message{Data: 0}
							}
							twins[v] = tw
							nw.SetProtocol(graph.NodeID(v), tw)
						}
						nw.Run(rounds)
						return func(v graph.NodeID) int64 {
							if !twins[v].has {
								return -2
							}
							return twins[v].recv
						}
					})
				}
			}
		}
	}
}

// TestDenseSeedSensitivity guards against the keyed draws collapsing:
// different seeds must produce different schedules on a workload with
// real slow-slot contention.
func TestDenseSeedSensitivity(t *testing.T) {
	g := graph.ClusterChain(8, 8)
	f := gst.Flatten(gst.Construct(g, 0))
	run := func(seed uint64) radiotest.Fingerprint {
		return denseGSTCase(g, f, seed, 0, false, false, nil).Run()
	}
	a, b := run(1), run(2)
	if a.Rounds == b.Rounds && a.Stats == b.Stats {
		t.Fatal("seeds 1 and 2 produced identical runs; keyed draws look degenerate")
	}
}

// TestDenseCompletes sanity-checks the semantics on the ideal channel
// from a non-zero source: every node informed, the source never
// "receives", and the fast waves keep the round count near the
// O(D + log^2 n) shape rather than the slow-only bound.
func TestDenseCompletes(t *testing.T) {
	g := graph.FromStream(graph.StreamClusterChain(10, 8))
	src := graph.NodeID(g.N() - 1)
	f := gst.Flatten(gst.Construct(g, src))
	fp := denseGSTCase(g, f, 3, src, false, false, nil).Run()
	if !fp.Completed {
		t.Fatalf("dense GST broadcast incomplete after %d rounds", fp.Rounds)
	}
	for v := 0; v < g.N(); v++ {
		if graph.NodeID(v) == src {
			if fp.State[v] != -1 {
				t.Fatalf("source state = %d, want -1", fp.State[v])
			}
		} else if fp.State[v] < 0 {
			t.Fatalf("node %d state = %d at completion", v, fp.State[v])
		}
	}
}

// TestDenseNonSpanningFlat pins the non-member guard: flattening a
// tree that covers only part of the graph must leave the uncovered
// nodes silent but still able to receive.
func TestDenseNonSpanningFlat(t *testing.T) {
	// Path 0..29 with the tree constructed over the whole graph but
	// rooted mid-path: all nodes are members here, so instead build a
	// two-component graph where one component has no root.
	b := graph.NewBuilder(40)
	for v := 0; v < 19; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	for v := 20; v < 39; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	g := b.Build()
	f := gst.Flatten(gst.Construct(g, 0)) // second component: non-members
	s := mmv.NewSchedule(g.N())
	pr := mmv.NewDense(g, f, s, 7, 0, false)
	eng := radio.NewDense(g, radio.Config{MaxPacketBits: 64}, pr)
	defer eng.Close()
	eng.RunUntil(1<<14, pr.Done)
	for v := 0; v < 20; v++ {
		if !pr.Informed(graph.NodeID(v)) {
			t.Fatalf("member %d uninformed", v)
		}
	}
	for v := 20; v < 40; v++ {
		if pr.Informed(graph.NodeID(v)) {
			t.Fatalf("non-member %d informed across a disconnected component", v)
		}
	}
}
