package harness

// Source-plumbing tests: every runner must broadcast from the source
// its constructor was given, not from node 0. Two complementary
// checks:
//
//   - Wave origin: in the synchronous radio model information travels
//     at most one hop per round, so after L rounds the informed set is
//     contained in the radius-L ball around the true origin. Running
//     with a small limit on a long path and inspecting the informed
//     set therefore pins down where the wave started.
//   - Completion: with Source at the far end of an asymmetric graph,
//     every protocol still informs all nodes within its schedule.

import (
	"testing"

	"radiocast/internal/adapt"
	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// informedSet runs one of the reusable stacks for at most limit rounds
// and harvests the informed set via the runner's mark.
type marker interface {
	mark(dst []bool)
}

// checkWaveOrigin asserts that after a limit-capped run on g the
// informed set sits inside the radius-rounds ball around src — and
// that src itself is informed.
func checkWaveOrigin(t *testing.T, label string, g *graph.Graph, src graph.NodeID, rounds int64, m marker) {
	t.Helper()
	informed := make([]bool, g.N())
	m.mark(informed)
	if !informed[src] {
		t.Fatalf("%s: source %d not informed after its own run", label, src)
	}
	dist := graph.BFS(g, src).Dist
	for v, in := range informed {
		if in && int64(dist[v]) > rounds {
			t.Fatalf("%s: node %d (distance %d from source %d) informed after only %d rounds — wave did not originate at the source",
				label, v, dist[v], src, rounds)
		}
	}
}

// TestDecaySourceWaveOrigin pins the Decay wave to the configured
// source on a long path: nodes far from it must still be uninformed
// after a handful of rounds, and a node-0 origin would be caught
// immediately.
func TestDecaySourceWaveOrigin(t *testing.T) {
	g := graph.Path(201)
	src := graph.NodeID(100)
	r := NewDecayRun(g, src)
	const limit = 12
	if _, ok, _ := r.Run(nil, 1, limit); ok {
		t.Fatal("path-201 decay completed in 12 rounds; limit too loose")
	}
	checkWaveOrigin(t, "decay", g, src, limit, r)
}

// TestCRSourceWaveOrigin is the same pin for the CR baseline.
func TestCRSourceWaveOrigin(t *testing.T) {
	g := graph.Path(201)
	src := graph.NodeID(100)
	r := NewCRRun(g, graph.Eccentricity(g, src), src)
	const limit = 12
	if _, ok, _ := r.Run(nil, 1, limit); ok {
		t.Fatal("path-201 CR completed in 12 rounds; limit too loose")
	}
	checkWaveOrigin(t, "cr", g, src, limit, r)
}

// TestGSTSingleSourceWaveOrigin pins the known-topology GST broadcast:
// the tree is rooted at the source and the message starts there.
func TestGSTSingleSourceWaveOrigin(t *testing.T) {
	g := graph.Path(129)
	src := graph.NodeID(64)
	r := NewGSTSingleRun(g, false, src)
	const limit = 10
	if _, ok, _ := r.Run(nil, 1, limit); ok {
		t.Fatal("path-129 GST single completed in 10 rounds; limit too loose")
	}
	checkWaveOrigin(t, "gst-single", g, src, limit, r)
}

// TestTheorem11SourceWaveOrigin pins the full Theorem 1.1 pipeline.
func TestTheorem11SourceWaveOrigin(t *testing.T) {
	g := graph.Path(129)
	src := graph.NodeID(64)
	r := NewTheorem11Run(g, graph.Eccentricity(g, src), 1, src)
	const limit = 10
	if _, ok, _ := r.RunFrom(nil, nil, 1, limit); ok {
		t.Fatal("path-129 theorem 1.1 completed in 10 rounds; limit too loose")
	}
	checkWaveOrigin(t, "th11", g, src, limit, r)
}

// TestTheorem13SourceWaveOrigin pins the Theorem 1.3 pipeline (k = 2
// messages, decode-complete as "informed").
func TestTheorem13SourceWaveOrigin(t *testing.T) {
	g := graph.Path(65)
	src := graph.NodeID(32)
	r := NewTheorem13Run(g, graph.Eccentricity(g, src), 2, 1, src)
	const limit = 10
	if _, ok, _ := r.RunFrom(nil, nil, 1, limit); ok {
		t.Fatal("path-65 theorem 1.3 completed in 10 rounds; limit too loose")
	}
	checkWaveOrigin(t, "th13", g, src, limit, r)
}

// TestSourceCompletionMatrix runs every protocol from a far-end source
// on an asymmetric workload and requires full completion. The
// lollipop's tail end is the worst-placed source: the wave must cross
// the whole tail before flooding the clique.
func TestSourceCompletionMatrix(t *testing.T) {
	g := graph.Lollipop(12, 20)
	src := graph.NodeID(g.N() - 1) // far tail end
	d := graph.Eccentricity(g, src)
	const limit = 1 << 20

	if _, ok, _ := NewDecayRun(g, src).Run(nil, 7, limit); !ok {
		t.Error("decay from tail-end source did not complete")
	}
	if _, ok, _ := NewCRRun(g, d, src).Run(nil, 7, limit); !ok {
		t.Error("cr from tail-end source did not complete")
	}
	if _, ok, _ := NewGSTSingleRun(g, false, src).Run(nil, 7, limit); !ok {
		t.Error("gst-single from tail-end source did not complete")
	}
	if res := NewTheorem11Run(g, d, 1, src).Run(nil, 7); !res.Completed {
		t.Error("theorem 1.1 from tail-end source did not complete")
	}
	if _, ok, _ := NewGSTMultiRun(g, 3, src).Run(nil, 7, limit); !ok {
		t.Error("gst-multi from tail-end source did not complete (decode verified)")
	}
	if rounds, ok, _ := NewTheorem13Run(g, d, 2, 1, src).Run(nil, 7); !ok {
		t.Errorf("theorem 1.3 from tail-end source did not complete (rounds=%d)", rounds)
	}
}

// TestAdaptiveSource pins the retry layer: adaptive runs carry the
// constructor's source into epoch 0, and re-layering epochs under loss
// still finish a tail-end broadcast. Epoch 0 of the ideal run must
// respect the one-hop-per-round ball around the source like every
// other runner.
func TestAdaptiveSource(t *testing.T) {
	g := graph.Lollipop(12, 20)
	src := graph.NodeID(g.N() - 1)
	chf := func(int, int64) radio.Channel { return nil }

	a := NewAdaptiveDecay(g, chf, 7, src)
	out := adapt.Run(a, adapt.Policy{})
	if !out.Completed {
		t.Fatal("adaptive decay from tail-end source did not complete")
	}

	lossy := EpochChannel(channel.NewErasure(0.3, 11))
	for _, mk := range []func() *AdaptiveRunner{
		func() *AdaptiveRunner { return NewAdaptiveDecay(g, lossy, 7, src) },
		func() *AdaptiveRunner { return NewAdaptiveCR(g, graph.Eccentricity(g, src), lossy, 7, src) },
		func() *AdaptiveRunner { return NewAdaptiveGSTSingle(g, false, lossy, 7, src) },
	} {
		if out := adapt.Run(mk(), adapt.Policy{}); !out.Completed {
			t.Fatal("adaptive run from tail-end source under 30% loss did not complete")
		}
	}
}

// TestGSTMultiSourcePayloads pins that the k messages really originate
// at the configured source: with a limit too small for the wave to
// reach the far end, nodes outside the ball cannot decode.
func TestGSTMultiSourcePayloads(t *testing.T) {
	g := graph.Path(129)
	src := graph.NodeID(64)
	r := NewGSTMultiRun(g, 2, src)
	const limit = 10
	if _, ok, _ := r.Run(nil, 1, limit); ok {
		t.Fatal("path-129 gst-multi completed in 10 rounds; limit too loose")
	}
	dist := graph.BFS(g, src).Dist
	for v, c := range r.contents {
		if c.Done() && int64(dist[v]) > limit {
			t.Fatalf("node %d (distance %d) decoded all messages after %d rounds", v, dist[v], limit)
		}
	}
}
