// k6 load script for the radiocastd job API: submit a mix of small
// broadcast jobs, poll each to a terminal state, and assert the
// status/latency contract. Run manually (or from a nightly pipeline)
// against a local daemon — this is NOT part of CI, which only smokes
// the daemon once; k6 is not vendored and must be installed from
// https://k6.io.
//
//   radiocastd -addr :8080 -opsaddr :9090 &
//   k6 run scripts/load/k6-jobs.js
//   k6 run -e BASE=http://localhost:8080 -e VUS=20 -e DURATION=2m \
//       scripts/load/k6-jobs.js
//
// While it runs, watch the daemon's own view of the load:
//
//   curl -s localhost:9090/metrics | grep radiocastd_
//
// The job mix mirrors the pooling fingerprint design: most iterations
// reuse one of a few fixed (protocol, graph) shapes with a fresh seed,
// so the daemon's per-worker reuse contexts should show a high
// radiocastd_pool_hits_total : misses ratio under load.

import http from "k6/http";
import { check, sleep } from "k6";
import { Trend, Counter } from "k6/metrics";

const BASE = __ENV.BASE || "http://localhost:8080";
const VUS = Number(__ENV.VUS || 10);
const DURATION = __ENV.DURATION || "30s";

export const options = {
  vus: VUS,
  duration: DURATION,
  thresholds: {
    // Submission is admission control only; it must stay fast even
    // while workers grind. 503s (full queue) are backpressure, not
    // failures — they are counted separately below.
    "http_req_duration{endpoint:submit}": ["p(95)<100"],
    checks: ["rate>0.95"],
  },
};

const jobWall = new Trend("radiocast_job_wall_ms", true);
const backpressure = new Counter("radiocast_submit_backpressure");
const failedJobs = new Counter("radiocast_jobs_failed");

// Small, fast specs spanning the sparse engine, the channel/adaptive
// stack, and the dense engine. Seeds vary per iteration; shapes do
// not (pool-friendly).
const SPECS = [
  {
    protocol: "decay",
    graph: { kind: "cluster", chain: 6, clique: 6 },
  },
  {
    protocol: "cd",
    graph: { kind: "grid", rows: 8, cols: 8 },
  },
  {
    protocol: "decay",
    graph: { kind: "gnp", n: 256, p: 0.05, seed: 7 },
    channel: [{ kind: "erasure", p: 0.2 }],
    adaptive: { max_epochs: 8 },
  },
  {
    protocol: "dense-decay",
    graph: { kind: "grid", rows: 32, cols: 32 },
    workers: 2,
  },
];

export default function () {
  const spec = Object.assign({}, SPECS[__ITER % SPECS.length], {
    seed: 1 + __VU * 100000 + __ITER,
  });

  const res = http.post(`${BASE}/v1/jobs`, JSON.stringify(spec), {
    headers: { "Content-Type": "application/json" },
    tags: { endpoint: "submit" },
  });
  if (res.status === 503) {
    // Full queue: the daemon is shedding load as designed. Back off.
    backpressure.add(1);
    sleep(0.5);
    return;
  }
  check(res, {
    "submit accepted": (r) => r.status === 202,
    "submit returns id": (r) => !!r.json("id"),
  });
  if (res.status !== 202) return;

  const id = res.json("id");
  const t0 = Date.now();
  let state = "queued";
  // Poll to a terminal state; every spec above finishes in well under
  // the budget on an idle machine.
  for (let i = 0; i < 120 && state !== "done" && state !== "failed"; i++) {
    sleep(0.25);
    const st = http.get(`${BASE}/v1/jobs/${id}`, {
      tags: { endpoint: "status" },
    });
    if (st.status !== 200) continue;
    state = st.json("state");
  }
  jobWall.add(Date.now() - t0);
  if (state === "failed") failedJobs.add(1);
  check(null, { "job reached done": () => state === "done" });
}
