package sched

import (
	"testing"
	"testing/quick"
)

func TestLayoutLocate(t *testing.T) {
	l := NewLayout(
		Segment{Name: "a", Len: 3},
		Segment{Name: "b", Len: 1},
		Segment{Name: "c", Len: 5},
	)
	if l.Total() != 9 {
		t.Fatalf("Total = %d", l.Total())
	}
	cases := []struct {
		off  int64
		seg  int
		rem  int64
		name string
	}{
		{0, 0, 0, "a"}, {2, 0, 2, "a"},
		{3, 1, 0, "b"},
		{4, 2, 0, "c"}, {8, 2, 4, "c"},
	}
	for _, c := range cases {
		seg, rem := l.Locate(c.off)
		if seg != c.seg || rem != c.rem {
			t.Errorf("Locate(%d) = (%d,%d), want (%d,%d)", c.off, seg, rem, c.seg, c.rem)
		}
		if l.Segment(seg).Name != c.name {
			t.Errorf("Locate(%d) segment name %q, want %q", c.off, l.Segment(seg).Name, c.name)
		}
	}
}

func TestLayoutLocateRoundTrip(t *testing.T) {
	l := NewLayout(
		Segment{Name: "x", Len: 7},
		Segment{Name: "y", Len: 13},
		Segment{Name: "z", Len: 2},
	)
	f := func(raw int64) bool {
		off := raw % l.Total()
		if off < 0 {
			off += l.Total()
		}
		seg, rem := l.Locate(off)
		return l.Start(seg)+rem == off && rem >= 0 && rem < l.Segment(seg).Len
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutPanicsOutOfRange(t *testing.T) {
	l := NewLayout(Segment{Name: "a", Len: 2})
	for _, off := range []int64{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Locate(%d) did not panic", off)
				}
			}()
			l.Locate(off)
		}()
	}
}

func TestLayoutRejectsEmptySegment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-length segment")
		}
	}()
	NewLayout(Segment{Name: "bad", Len: 0})
}

func TestCycle(t *testing.T) {
	iter, off := Cycle(17, 5)
	if iter != 3 || off != 2 {
		t.Fatalf("Cycle(17,5) = (%d,%d)", iter, off)
	}
	iter, off = Cycle(0, 5)
	if iter != 0 || off != 0 {
		t.Fatalf("Cycle(0,5) = (%d,%d)", iter, off)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLogNClamped(t *testing.T) {
	if LogN(1) < 1 || LogN(2) < 1 {
		t.Fatal("LogN must be >= 1")
	}
	if LogN(1024) != 10 {
		t.Fatalf("LogN(1024) = %d", LogN(1024))
	}
}
