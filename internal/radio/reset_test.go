package radio

import (
	"testing"

	"radiocast/internal/graph"
)

// countingProto transmits every k-th round and records receptions.
type countingProto struct {
	id       NodeID
	every    int64
	received int
	sleepy   bool
}

func (p *countingProto) Act(r int64) Action {
	if p.sleepy && r%7 == 3 {
		return Sleep(r + 100) // exercise the far queue
	}
	if r%p.every == int64(p.id)%p.every {
		return Transmit(RawPacket{Value: r})
	}
	return Listen
}

func (p *countingProto) Observe(int64, Outcome) { p.received++ }

// TestNetworkResetReplaysIdentically pins the engine half of the
// reuse contract: Reset + reinstall must reproduce a fresh network's
// run exactly — same stats, same receptions — without reallocating.
func TestNetworkResetReplaysIdentically(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func(nw *Network, protos []*countingProto) (Stats, int) {
		for v, p := range protos {
			p.received = 0
			nw.SetProtocol(NodeID(v), p)
		}
		nw.Run(300)
		total := 0
		for _, p := range protos {
			total += p.received
		}
		return nw.Stats(), total
	}
	protos := make([]*countingProto, g.N())
	for v := range protos {
		protos[v] = &countingProto{id: NodeID(v), every: 3 + int64(v%4), sleepy: v%2 == 0}
	}
	nw := New(g, Config{CollisionDetection: true})
	st1, rec1 := run(nw, protos)
	nw.Reset()
	st2, rec2 := run(nw, protos)
	if st1 != st2 || rec1 != rec2 {
		t.Fatalf("reset run diverged:\nfresh %+v rec=%d\nreset %+v rec=%d", st1, rec1, st2, rec2)
	}
	if st1.Rounds != 300 || rec1 == 0 {
		t.Fatalf("implausible run: %+v rec=%d", st1, rec1)
	}
}

// TestNetworkResetAllowsReinstall verifies Reset clears the
// double-install guard and the channel.
func TestNetworkResetAllowsReinstall(t *testing.T) {
	g := graph.Path(2)
	nw := New(g, Config{})
	p := &countingProto{id: 0, every: 2}
	nw.SetProtocol(0, p)
	nw.Reset()
	nw.SetProtocol(0, p) // must not panic
}

// TestDoneSet covers the counter contract, including nil ticking.
func TestDoneSet(t *testing.T) {
	var nilSet *DoneSet
	nilSet.Tick() // must not panic
	ds := NewDoneSet(2)
	if ds.Done() {
		t.Fatal("empty set done")
	}
	ds.Tick()
	ds.Tick()
	if !ds.Done() || ds.Count() != 2 || ds.Target() != 2 {
		t.Fatalf("unexpected state: %+v", ds)
	}
	ds.Reset(1)
	if ds.Done() || ds.Count() != 0 {
		t.Fatal("reset did not rewind")
	}
	ds.Tick()
	if !ds.Done() {
		t.Fatal("tick after reset not counted")
	}
}
