package harness

import (
	"strings"
	"testing"

	"radiocast/internal/exp"
)

// TestE19QuickCompletes runs the quick scale sweep (n up to 10^4,
// decay/cr/wave) and requires every cell to finish its broadcast and
// carry the capacity metrics.
func TestE19QuickCompletes(t *testing.T) {
	p := E19Plan(DefaultScaleConfig(), 1, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
		if !r.Completed {
			t.Errorf("%s: broadcast incomplete after %d rounds", r.Key, r.Rounds)
		}
		if r.MemBytes < 0 || r.Value <= 0 {
			t.Errorf("%s: implausible metrics mem=%d deliveries=%g", r.Key, r.MemBytes, r.Value)
		}
	}
	tb := p.Assemble(results)
	if len(tb.Rows) == 0 {
		t.Fatal("E19 produced no rows")
	}
	for _, proto := range e19Protocols {
		found := false
		for _, h := range tb.Header {
			found = found || h == proto
		}
		if !found {
			t.Errorf("E19 header %v missing protocol column %q", tb.Header, proto)
		}
	}
}

// TestE20QuickCompletes runs the quick erasure sweep (n = 10^4, full
// loss grid) and requires every cell of every protocol to reach full
// coverage: decay and CR retry until done, and at these loss rates the
// wave's slacked horizon is ample on the gnp workload.
func TestE20QuickCompletes(t *testing.T) {
	p := E20Plan(DefaultScaleConfig(), 1, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
		if !r.Completed {
			t.Errorf("%s: incomplete after %d rounds", r.Key, r.Rounds)
		}
		if r.Value != 1 {
			t.Errorf("%s: coverage = %g, want 1", r.Key, r.Value)
		}
	}
	tb := p.Assemble(results)
	if len(tb.Rows) != len(e20Rates)*len(e19Protocols) {
		t.Fatalf("E20 rows = %d, want %d", len(tb.Rows), len(e20Rates)*len(e19Protocols))
	}
}

// TestE21QuickCompletes runs the quick structured-broadcast sweep
// (n up to 10^4, quiet and noised) and requires every cell to finish
// on the fixed MMV schedule and carry the capacity metrics.
func TestE21QuickCompletes(t *testing.T) {
	p := E21Plan(DefaultScaleConfig(), 1, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
		if !r.Completed {
			t.Errorf("%s: broadcast incomplete after %d rounds", r.Key, r.Rounds)
		}
		if r.MemBytes < 0 || r.Value <= 0 {
			t.Errorf("%s: implausible metrics mem=%d deliveries=%g", r.Key, r.MemBytes, r.Value)
		}
	}
	tb := p.Assemble(results)
	if len(tb.Rows) == 0 {
		t.Fatal("E21 produced no rows")
	}
	for _, mode := range e21Modes {
		found := false
		for _, h := range tb.Header {
			found = found || h == mode
		}
		if !found {
			t.Errorf("E21 header %v missing mode column %q", tb.Header, mode)
		}
	}
}

// TestScaleWorkerInvariance pins the sweep-level face of the dense
// engine's determinism contract: the E19, E20, and E21 tables (and the
// canonical artifact) are byte-identical whether the engine runs
// sequentially or with the parallel delivery pass — threaded through
// ScaleConfig, no package state.
func TestScaleWorkerInvariance(t *testing.T) {
	for _, plan := range []struct {
		id string
		fn func(sc ScaleConfig, seeds int, quick bool) *exp.Plan
	}{
		{"E19", E19Plan},
		{"E20", E20Plan},
		{"E21", E21Plan},
	} {
		run := func(workers int) string {
			p := plan.fn(ScaleConfig{Workers: workers}, 1, true)
			tb, _ := (&exp.Runner{Parallelism: 1}).RunTable(p)
			return tb.String()
		}
		seq := run(1)
		par := run(4)
		if seq != par {
			t.Fatalf("%s tables diverge across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				plan.id, seq, par)
		}
	}
}

// TestScaleMaxNCapsSweep pins that ScaleConfig.MaxN actually trims the
// cell plans (the acceptance run relies on raising it to reach 10^6).
func TestScaleMaxNCapsSweep(t *testing.T) {
	small := E19Plan(ScaleConfig{MaxN: 1_000}, 1, false)
	big := E19Plan(ScaleConfig{MaxN: 100_000}, 1, false)
	if len(small.Cells) >= len(big.Cells) {
		t.Fatalf("MaxN=1000 plan has %d cells, MaxN=100000 has %d; cap not applied",
			len(small.Cells), len(big.Cells))
	}
	for _, c := range small.Cells {
		if strings.Contains(c.Key.Config, "n=10000") {
			t.Fatalf("MaxN=1000 plan contains oversized cell %s", c.Key)
		}
	}
}
