package rng

import "testing"

// TestMix3MatchesMix pins the contract the dense engine relies on: the
// fixed-arity mixer is bit-identical to the variadic one, so keyed
// draws can move to the allocation-free form without perturbing any
// stream.
func TestMix3MatchesMix(t *testing.T) {
	cases := [][3]uint64{
		{0, 0, 0},
		{1, 2, 3},
		{^uint64(0), 0x9e3779b97f4a7c15, 42},
		{7, ^uint64(0), ^uint64(0)},
	}
	for i := uint64(0); i < 64; i++ {
		cases = append(cases, [3]uint64{i * 0x9e3779b97f4a7c15, i << 32, ^i})
	}
	for _, c := range cases {
		if got, want := Mix3(c[0], c[1], c[2]), Mix(c[0], c[1], c[2]); got != want {
			t.Fatalf("Mix3(%d,%d,%d) = %#x, Mix = %#x", c[0], c[1], c[2], got, want)
		}
	}
}
