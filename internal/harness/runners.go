// Package harness defines every reproduction experiment (E1..E16, plus
// the ablations A1..A3 of DESIGN.md) as a reusable runner producing a
// stats.Table. The same runners back `go test -bench`, cmd/radiobench,
// and the examples, so every number in EXPERIMENTS.md can be
// regenerated three ways.
//
// Every protocol stack has two entry points:
//
//   - the one-shot Run* functions (construct, run once, discard) —
//     what experiment cells use, since cells must share no mutable
//     state across workers;
//   - a reusable *Run context (NewDecayRun, NewTheorem13Run, ...) that
//     executes N seeds on one configuration with zero per-seed
//     construction: radio.Network.Reset rewinds the engine, every
//     protocol Reset rewinds in place, and rng.Reseed rewinds the held
//     RNG streams. A context-run is bit-identical to a fresh run with
//     the same seed — same RNG streams, same draws, same rounds.
//
// Completion predicates are O(1): each protocol/content layer ticks a
// radio.DoneSet exactly once on first completion, replacing the
// historical all-nodes scan after every executed round (an O(n·R)
// cost that dominated long runs).
package harness

import (
	"math/rand"

	"radiocast/internal/bitvec"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/obs"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
)

// DoneSet is the O(1) completion counter protocols tick on first
// completion (alias of radio.DoneSet, which lives in the engine
// package so every protocol layer can hold one without import cycles).
type DoneSet = radio.DoneSet

// epochSource resolves node v's source flag for a run with carryover:
// a fresh run (informed == nil) broadcasts from the configured source
// node; a re-layering epoch broadcasts from every informed radio. All
// five RunFrom implementations share this so carryover semantics
// cannot drift between stacks.
func epochSource(informed []bool, v int, source graph.NodeID) bool {
	if informed == nil {
		return graph.NodeID(v) == source
	}
	return informed[v]
}

// initDone applies the DoneSet contract after a stack is constructed
// or reset: rewind the counter LAST (wiping any stray ticks fired
// while preloading source stores), then perform the single O(n) scan
// ticking every node that starts completed. done reports node v's
// initial completion. From here on, protocols tick only on their
// not-done -> done transition, so RunUntil predicates are one integer
// compare.
func initDone(ds *DoneSet, n int, done func(v int) bool) {
	ds.Reset(n)
	for v := 0; v < n; v++ {
		if done(v) {
			ds.Tick()
		}
	}
}

// ---------------------------------------------------------------------
// Decay (BGI baseline).

// DecayRun is a reusable Decay broadcast harness over one graph:
// construct once, run any number of seeds with zero per-seed
// construction.
type DecayRun struct {
	nw     *radio.Network
	protos []*decay.Broadcast
	src    graph.NodeID
	ds     DoneSet
}

// NewDecayRun builds the reusable stack broadcasting from source.
func NewDecayRun(g *graph.Graph, source graph.NodeID) *DecayRun {
	n := g.N()
	r := &DecayRun{nw: radio.New(g, radio.Config{}), protos: make([]*decay.Broadcast, n), src: source}
	for v := 0; v < n; v++ {
		r.protos[v] = decay.NewBroadcast(n, graph.NodeID(v) == source, decay.Message{Data: 1}, rng.New())
		r.protos[v].DoneSet = &r.ds
	}
	return r
}

// Run executes one seeded run over ch (nil = ideal; stateful channels
// are rewound via radio.ResetChannel, so one instance may serve many
// seeds).
func (r *DecayRun) Run(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return r.RunFrom(nil, ch, seed, limit)
}

// RunFrom is Run with per-node carryover: when informed is non-nil,
// node v starts holding the message iff informed[v] — the adaptive
// retry layer's re-layering epoch, where every radio informed by
// earlier epochs broadcasts as an additional source. informed == nil
// is a fresh run (broadcasting from the constructor's source) and
// rewinds the channel's per-run
// state; carryover epochs deliberately keep it (an adversary's budget
// spans the whole retried broadcast).
func (r *DecayRun) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	if informed == nil {
		radio.ResetChannel(ch)
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		src := epochSource(informed, v, r.src)
		p.Reset(src, decay.Message{Data: 1})
		rng.Reseed(p.Rng(), seed, 0xd0, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Has() })
	rounds, ok := r.nw.RunUntil(limit, r.ds.Done)
	return rounds, ok, r.nw.Stats()
}

// mark records each node's informed state into dst (the adaptive
// carryover harvest).
func (r *DecayRun) mark(dst []bool) {
	for v, p := range r.protos {
		dst[v] = p.Has()
	}
}

// Retopo swaps the engine's topology in place (radio.Network.Retopo);
// Decay protocols depend on nothing but n, so the stack runs
// unchanged on the new adjacency. The mobility driver's hook.
func (r *DecayRun) Retopo(offsets []int32, edges []radio.NodeID) {
	r.nw.Retopo(offsets, edges)
}

// Coverage returns how many nodes held the message when the last run
// stopped (== n on completed runs).
func (r *DecayRun) Coverage() int { return r.ds.Count() }

// RunDecay measures the classic Decay broadcast (BGI baseline) from
// node 0. Returns rounds and completion.
func RunDecay(g *graph.Graph, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunDecayOn(g, nil, seed, limit)
	return rounds, ok
}

// RunDecayOn is RunDecay over an adversarial channel (nil = ideal),
// additionally returning the engine counters.
func RunDecayOn(g *graph.Graph, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return NewDecayRun(g, 0).Run(ch, seed, limit)
}

// ---------------------------------------------------------------------
// CR (Czumaj–Rytter-shaped baseline).

// CRRun is the reusable Czumaj–Rytter-shaped harness.
type CRRun struct {
	nw     *radio.Network
	protos []*cr.Broadcast
	src    graph.NodeID
	ds     DoneSet
}

// NewCRRun builds the reusable stack for diameter bound d,
// broadcasting from source.
func NewCRRun(g *graph.Graph, d int, source graph.NodeID) *CRRun {
	n := g.N()
	p := cr.NewParams(n, d)
	r := &CRRun{nw: radio.New(g, radio.Config{}), protos: make([]*cr.Broadcast, n), src: source}
	for v := 0; v < n; v++ {
		r.protos[v] = cr.NewBroadcast(p, graph.NodeID(v) == source, decay.Message{Data: 1}, rng.New())
		r.protos[v].DoneSet = &r.ds
	}
	return r
}

// Run executes one seeded run over ch (nil = ideal).
func (r *CRRun) Run(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return r.RunFrom(nil, ch, seed, limit)
}

// RunFrom is Run with per-node carryover (see DecayRun.RunFrom).
func (r *CRRun) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	if informed == nil {
		radio.ResetChannel(ch)
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		src := epochSource(informed, v, r.src)
		p.Reset(src, decay.Message{Data: 1})
		rng.Reseed(p.Rng(), seed, 0xc0, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Has() })
	rounds, ok := r.nw.RunUntil(limit, r.ds.Done)
	return rounds, ok, r.nw.Stats()
}

// mark records each node's informed state into dst.
func (r *CRRun) mark(dst []bool) {
	for v, p := range r.protos {
		dst[v] = p.Has()
	}
}

// Coverage returns how many nodes held the message when the last run
// stopped (== n on completed runs).
func (r *CRRun) Coverage() int { return r.ds.Count() }

// RunCR measures the Czumaj–Rytter-shaped baseline.
func RunCR(g *graph.Graph, d int, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunCROn(g, d, nil, seed, limit)
	return rounds, ok
}

// RunCROn is RunCR over an adversarial channel (nil = ideal).
func RunCROn(g *graph.Graph, d int, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return NewCRRun(g, d, 0).Run(ch, seed, limit)
}

// ---------------------------------------------------------------------
// GST single-message broadcast (known topology).

// GSTSingleRun is the reusable single-message GST harness: the
// centralized GST, schedule infos, and protocol objects are built once
// (they depend only on the graph).
type GSTSingleRun struct {
	nw       *radio.Network
	infos    []mmv.NodeInfo
	protos   []*mmv.Protocol
	contents []*mmv.SingleMessage
	src      graph.NodeID
	ds       DoneSet
}

// NewGSTSingleRun builds the reusable stack (noising enables the MMV
// jamming adversary). The GST is rooted at source, which also holds
// the message.
func NewGSTSingleRun(g *graph.Graph, noising bool, source graph.NodeID) *GSTSingleRun {
	n := g.N()
	tree := gst.Construct(g, source)
	s := mmv.NewSchedule(n)
	r := &GSTSingleRun{
		nw:       radio.New(g, radio.Config{}),
		infos:    mmv.InfoFromTree(tree),
		protos:   make([]*mmv.Protocol, n),
		contents: make([]*mmv.SingleMessage, n),
		src:      source,
	}
	for v := 0; v < n; v++ {
		r.contents[v] = mmv.NewSingleMessage(graph.NodeID(v) == source, decay.Message{Data: 1})
		r.contents[v].DoneSet = &r.ds
		r.protos[v] = mmv.New(s, r.infos[v], r.contents[v], noising, rng.New())
	}
	return r
}

// Run executes one seeded run over ch (nil = ideal).
func (r *GSTSingleRun) Run(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return r.RunFrom(nil, ch, seed, limit)
}

// RunFrom is Run with per-node carryover (see DecayRun.RunFrom): the
// GST schedule is unchanged, but every informed node starts holding
// the message, so the re-layered broadcast fills in the radios the
// previous pass missed.
func (r *GSTSingleRun) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	if informed == nil {
		radio.ResetChannel(ch)
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		src := epochSource(informed, v, r.src)
		r.contents[v].Reset(src, decay.Message{Data: 1})
		p.Rebind(r.infos[v], r.contents[v])
		rng.Reseed(p.Rng(), seed, 0xe0, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.contents[v].Done() })
	rounds, ok := r.nw.RunUntil(limit, r.ds.Done)
	return rounds, ok, r.nw.Stats()
}

// Coverage returns how many nodes held the message when the last run
// stopped (== n on completed runs).
func (r *GSTSingleRun) Coverage() int { return r.ds.Count() }

// mark records each node's informed state into dst.
func (r *GSTSingleRun) mark(dst []bool) {
	for v, c := range r.contents {
		dst[v] = c.Done()
	}
}

// RunGSTSingle measures the single-message GST broadcast atop a
// centralized GST (the amortized / known-structure regime), optionally
// with the MMV noise adversary.
func RunGSTSingle(g *graph.Graph, noising bool, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunGSTSingleOn(g, noising, nil, seed, limit)
	return rounds, ok
}

// RunGSTSingleOn is RunGSTSingle over an adversarial channel
// (nil = ideal).
func RunGSTSingleOn(g *graph.Graph, noising bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return NewGSTSingleRun(g, noising, 0).Run(ch, seed, limit)
}

// ---------------------------------------------------------------------
// Theorem 1.1 (single message, unknown topology, CD).

// Theorem11Result decomposes a full Theorem 1.1 run.
type Theorem11Result struct {
	Completed                 bool
	Rounds                    int64
	WaveRounds, BuildRounds   int64
	SpreadBudget, TotalBudget int64
	Rings, Width              int
	// Covered is how many nodes held the message when the run stopped
	// (== n when Completed).
	Covered int
	Stats   radio.Stats
}

// Theorem11Run is the reusable full-pipeline harness of Theorem 1.1.
type Theorem11Run struct {
	cfg    rings.Config
	nw     *radio.Network
	protos []*rings.Protocol
	src    graph.NodeID
	ds     DoneSet
}

// NewTheorem11Run builds the reusable stack broadcasting from source.
func NewTheorem11Run(g *graph.Graph, d, c int, source graph.NodeID) *Theorem11Run {
	return NewTheorem11RunCfg(g, rings.DefaultConfig(g.N(), d, 0, c), source)
}

// Run executes one seeded run over ch (nil = ideal).
func (r *Theorem11Run) Run(ch radio.Channel, seed uint64) Theorem11Result {
	rounds, ok, st := r.RunFrom(nil, ch, seed, 0)
	return Theorem11Result{
		Completed:    ok,
		Rounds:       rounds,
		WaveRounds:   r.cfg.WaveRounds(),
		BuildRounds:  r.cfg.BuildRounds(),
		SpreadBudget: r.cfg.SpreadRounds(),
		TotalBudget:  r.cfg.TotalRounds(),
		Rings:        r.cfg.Rings(),
		Width:        r.cfg.W,
		Covered:      r.ds.Count(),
		Stats:        st,
	}
}

// RunFrom is one full pipeline execution with per-node carryover (see
// DecayRun.RunFrom): informed nodes re-run the whole schedule as
// additional sources, so the collision wave — and therefore the
// layering, ring decomposition, and spread — restarts from the entire
// informed frontier. limit caps the rounds when positive and below the
// schedule budget.
func (r *Theorem11Run) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	if informed == nil {
		radio.ResetChannel(ch)
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		src := epochSource(informed, v, r.src)
		p.Reset(src, nil)
		rng.Reseed(p.Rng(), seed, 0x11, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Has() })
	budget := r.cfg.TotalRounds()
	if limit > 0 && limit < budget {
		budget = limit
	}
	rounds, ok := r.nw.RunUntil(budget, r.ds.Done)
	return rounds, ok, r.nw.Stats()
}

// Coverage returns how many nodes held the message when the last run
// stopped.
func (r *Theorem11Run) Coverage() int { return r.ds.Count() }

// mark records each node's informed state into dst.
func (r *Theorem11Run) mark(dst []bool) {
	for v, p := range r.protos {
		dst[v] = p.Has()
	}
}

// RunTheorem11 executes the full unknown-topology CD pipeline.
func RunTheorem11(g *graph.Graph, d, c int, seed uint64) Theorem11Result {
	return RunTheorem11On(g, d, c, nil, seed)
}

// RunTheorem11On is RunTheorem11 over an adversarial channel
// (nil = ideal).
func RunTheorem11On(g *graph.Graph, d, c int, ch radio.Channel, seed uint64) Theorem11Result {
	return NewTheorem11Run(g, d, c, 0).Run(ch, seed)
}

// ---------------------------------------------------------------------
// Theorem 1.2 (k messages, known topology, RLNC).

// gstMultiPayloadBits is the Theorem 1.2 payload size.
const gstMultiPayloadBits = 32

// GSTMultiRun is the reusable Theorem 1.2 harness.
type GSTMultiRun struct {
	nw       *radio.Network
	infos    []mmv.NodeInfo
	protos   []*mmv.Protocol
	contents []*mmv.RLNC
	bufs     []*rlnc.Buffer
	msgRng   *rand.Rand
	msgs     []rlnc.Message
	src      graph.NodeID
	ds       DoneSet
}

// NewGSTMultiRun builds the reusable stack for k messages. The GST is
// rooted at source, which holds all k messages.
func NewGSTMultiRun(g *graph.Graph, k int, source graph.NodeID) *GSTMultiRun {
	n := g.N()
	tree := gst.Construct(g, source)
	s := mmv.NewSchedule(n)
	r := &GSTMultiRun{
		nw:       radio.New(g, radio.Config{}),
		infos:    mmv.InfoFromTree(tree),
		protos:   make([]*mmv.Protocol, n),
		contents: make([]*mmv.RLNC, n),
		bufs:     make([]*rlnc.Buffer, n),
		msgRng:   rng.New(),
		msgs:     make([]rlnc.Message, k),
		src:      source,
	}
	for i := range r.msgs {
		r.msgs[i] = bitvec.New(gstMultiPayloadBits)
	}
	for v := 0; v < n; v++ {
		r.bufs[v] = rlnc.NewBuffer(0, k, gstMultiPayloadBits)
		r.bufs[v].SetOnFull(r.ds.Tick)
		r.contents[v] = mmv.NewRLNC(r.bufs[v], rng.New())
		r.protos[v] = mmv.New(s, r.infos[v], r.contents[v], false, rng.New())
	}
	return r
}

// Run executes one seeded run over ch (nil = ideal), verifying decoded
// payloads on completion.
func (r *GSTMultiRun) Run(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	radio.ResetChannel(ch)
	r.nw.Reset()
	r.nw.SetChannel(ch)
	rng.Reseed(r.msgRng, seed, 0x12)
	for i := range r.msgs {
		r.msgs[i].Randomize(r.msgRng.Uint64)
	}
	for v, p := range r.protos {
		if graph.NodeID(v) == r.src {
			r.bufs[v].ResetSource(r.msgs)
		} else {
			r.bufs[v].Reset()
		}
		rng.Reseed(r.contents[v].Rng(), seed, 0x13, uint64(v))
		p.Rebind(r.infos[v], r.contents[v])
		rng.Reseed(p.Rng(), seed, 0x14, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.contents[v].Done() })
	rounds, ok := r.nw.RunUntil(limit, r.ds.Done)
	st := r.nw.Stats()
	if !ok {
		return rounds, false, st
	}
	for _, c := range r.contents {
		got, dok := c.Buffer().Decode()
		if !dok {
			return rounds, false, st
		}
		for i := range r.msgs {
			if !bitvec.Equal(got[i], r.msgs[i]) {
				return rounds, false, st
			}
		}
	}
	return rounds, true, st
}

// RunGSTMulti measures the Theorem 1.2 k-message broadcast (known
// topology, RLNC atop the MMV schedule). Verifies decoded payloads.
func RunGSTMulti(g *graph.Graph, k int, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunGSTMultiOn(g, k, nil, seed, limit)
	return rounds, ok
}

// RunGSTMultiOn is RunGSTMulti over an adversarial channel
// (nil = ideal).
func RunGSTMultiOn(g *graph.Graph, k int, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return NewGSTMultiRun(g, k, 0).Run(ch, seed, limit)
}

// ---------------------------------------------------------------------
// Theorem 1.3 (k messages, unknown topology, CD).

// Theorem13Run is the reusable full-pipeline harness of Theorem 1.3 —
// the allocation-heaviest stack (per-ring RLNC stores), and therefore
// the one the Reset-reuse benchmarks guard.
type Theorem13Run struct {
	cfg    rings.Config
	nw     *radio.Network
	protos []*rings.Protocol
	msgRng *rand.Rand
	msgs   []rlnc.Message
	src    graph.NodeID
	ds     DoneSet
}

// NewTheorem13Run builds the reusable stack broadcasting from source.
func NewTheorem13Run(g *graph.Graph, d, k, c int, source graph.NodeID) *Theorem13Run {
	return NewTheorem13RunCfg(g, rings.DefaultConfig(g.N(), d, k, c), source)
}

// Config returns the compiled ring configuration.
func (r *Theorem13Run) Config() rings.Config { return r.cfg }

// Run executes one seeded run over ch (nil = ideal).
func (r *Theorem13Run) Run(ch radio.Channel, seed uint64) (rounds int64, completed bool, st radio.Stats) {
	return r.RunFrom(nil, ch, seed, 0)
}

// RunFrom is one full pipeline execution with per-node carryover (see
// DecayRun.RunFrom): a node that decoded every message in an earlier
// epoch re-runs as an additional source, preloading the identical
// message set (decode-complete stores hold exactly the source
// payloads), so every ring's RLNC spread draws from the whole informed
// frontier. Fresh runs (informed == nil) randomize the payloads from
// the seed; carryover epochs keep them.
func (r *Theorem13Run) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	if informed == nil {
		radio.ResetChannel(ch)
		rng.Reseed(r.msgRng, seed, 0x15)
		for i := range r.msgs {
			r.msgs[i].Randomize(r.msgRng.Uint64)
		}
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		src := epochSource(informed, v, r.src)
		var m []rlnc.Message
		if src {
			m = r.msgs
		}
		p.Reset(src, m)
		rng.Reseed(p.Rng(), seed, 0x16, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Store().CanDecodeAll() })
	budget := r.cfg.TotalRounds()
	if limit > 0 && limit < budget {
		budget = limit
	}
	rounds, completed := r.nw.RunUntil(budget, r.ds.Done)
	return rounds, completed, r.nw.Stats()
}

// Coverage returns how many nodes could decode every message when the
// last run stopped.
func (r *Theorem13Run) Coverage() int { return r.ds.Count() }

// mark records each node's informed (decode-complete) state into dst.
func (r *Theorem13Run) mark(dst []bool) {
	for v, p := range r.protos {
		dst[v] = p.Store().CanDecodeAll()
	}
}

// RunTheorem13 executes the full Theorem 1.3 pipeline.
func RunTheorem13(g *graph.Graph, d, k, c int, seed uint64) (rounds int64, completed bool, cfg rings.Config) {
	rounds, completed, cfg, _ = RunTheorem13On(g, d, k, c, nil, seed)
	return rounds, completed, cfg
}

// RunTheorem13On is RunTheorem13 over an adversarial channel
// (nil = ideal).
func RunTheorem13On(g *graph.Graph, d, k, c int, ch radio.Channel, seed uint64) (rounds int64, completed bool, cfg rings.Config, st radio.Stats) {
	r := NewTheorem13Run(g, d, k, c, 0)
	rounds, completed, st = r.Run(ch, seed)
	return rounds, completed, r.cfg, st
}

// ---------------------------------------------------------------------
// A2 routing baseline.

// PlainPacket is an uncoded message for the routing baseline of A2.
type PlainPacket struct {
	Index   int32
	Payload int64
}

// Bits implements radio.Packet.
func (PlainPacket) Bits() int { return 96 }

// PlainStore is the store-and-forward content layer (no coding): when
// prompted, the node sends a uniformly random message it holds. Held
// messages live in an insertion-ordered slice — never a map — so the
// random pick consumes the RNG deterministically (map iteration order
// would make reruns diverge).
type PlainStore struct {
	K   int
	Rng interface{ Intn(int) int }
	// DoneSet, when non-nil, is ticked when the K-th distinct message
	// arrives.
	DoneSet *radio.DoneSet

	order   []int32
	payload map[int32]int64
}

// NewPlainStore creates a store for k messages; source nodes call Put
// to seed their initial inventory.
func NewPlainStore(k int, rng interface{ Intn(int) int }) *PlainStore {
	return &PlainStore{K: k, Rng: rng, payload: make(map[int32]int64)}
}

// Reset empties the store for a new run, keeping its allocations.
func (ps *PlainStore) Reset() {
	ps.order = ps.order[:0]
	for k := range ps.payload {
		delete(ps.payload, k)
	}
}

// Put records a message if it is new.
func (ps *PlainStore) Put(index int32, payload int64) {
	if ps.payload == nil {
		ps.payload = make(map[int32]int64)
	}
	if _, ok := ps.payload[index]; ok {
		return
	}
	ps.payload[index] = payload
	ps.order = append(ps.order, index)
	if len(ps.order) == ps.K {
		ps.DoneSet.Tick()
	}
}

var _ mmv.Content = (*PlainStore)(nil)

// Fresh implements mmv.Content.
func (ps *PlainStore) Fresh() radio.Packet {
	if len(ps.order) == 0 {
		return nil
	}
	idx := ps.order[ps.Rng.Intn(len(ps.order))]
	return PlainPacket{Index: idx, Payload: ps.payload[idx]}
}

// OnReceive implements mmv.Content.
func (ps *PlainStore) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if p, ok := pkt.(PlainPacket); ok {
		ps.Put(p.Index, p.Payload)
	}
}

// Done implements mmv.Content.
func (ps *PlainStore) Done() bool { return len(ps.order) == ps.K }

// RunGSTMultiRouting is the A2 baseline: k messages with plain
// store-and-forward routing on the same schedule.
func RunGSTMultiRouting(g *graph.Graph, k int, seed uint64, limit int64) (int64, bool) {
	tree := gst.Construct(g, 0)
	infos := mmv.InfoFromTree(tree)
	s := mmv.NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	var ds DoneSet
	contents := make([]*PlainStore, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = NewPlainStore(k, rng.New(seed, 0x17, uint64(v)))
		contents[v].DoneSet = &ds
		if v == 0 {
			for i := 0; i < k; i++ {
				contents[v].Put(int32(i), int64(1000+i))
			}
		}
		nw.SetProtocol(graph.NodeID(v),
			mmv.New(s, infos[v], contents[v], false, rng.New(seed, 0x18, uint64(v))))
	}
	initDone(&ds, g.N(), func(v int) bool { return contents[v].Done() })
	return nw.RunUntil(limit, ds.Done)
}

// ---------------------------------------------------------------------
// Observability plumbing. Every reusable run context exposes the
// engine's round observer so callers (the daemon's job workers, the
// experiment runner) can attach per-run progress without touching the
// stacks. Observers survive the engine's Reset — one SetObserver call
// covers every subsequent seed — and nil detaches.

// SetObserver attaches o at the given round stride (see
// radio.Config.ObserverStride); nil detaches.
func (r *DecayRun) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *CRRun) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *GSTSingleRun) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *Theorem11Run) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *GSTMultiRun) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *Theorem13Run) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// Coverage returns how many nodes had decoded all k messages when the
// last run stopped (== n on completed runs).
func (r *GSTMultiRun) Coverage() int { return r.ds.Count() }
