package harness

// Adaptive wrappers: every reusable protocol context gains an
// adapt.Runner that re-executes the stack in epochs with per-node
// carryover — radios informed by earlier epochs become additional
// sources, so one-shot schedules (Theorem 1.1/1.3) recover the
// loss-starved and late-waking radios their fixed budgets abandon
// (the E13 completion cliff and the E16 coverage collapse). The
// wrappers ride the PR-3 reuse layer: each epoch is a Reset-reused
// run on the already-built stack, so steady-state epochs stay on the
// zero-rebuild path.

import (
	"radiocast/internal/adapt"
	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/obs"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

// ChannelFactory supplies the channel for each epoch of an adaptive
// run. epoch is the 0-based epoch index; startRound is the total
// simulated rounds consumed by earlier epochs. nil factories (and nil
// returns) mean the ideal channel.
type ChannelFactory func(epoch int, startRound int64) radio.Channel

// EpochChannel adapts one channel instance to a ChannelFactory with
// the retry layer's adversary semantics: epoch 0 rewinds the
// instance's per-run state (radio.ResetChannel) and uses it bare;
// later epochs wrap it in a channel.Offset at the elapsed round count,
// so the model sees one continuous timeline — fault wake clocks stay
// expired once passed, budgets keep draining, and round-keyed
// randomness draws fresh values instead of replaying epoch 0's
// pattern.
func EpochChannel(ch radio.Channel) ChannelFactory {
	if ch == nil {
		return nil
	}
	return func(epoch int, startRound int64) radio.Channel {
		if epoch == 0 {
			radio.ResetChannel(ch)
			return ch
		}
		return channel.NewOffset(ch, startRound)
	}
}

// AdaptiveRunner adapts a reusable harness context to adapt.Runner.
// Epoch 0 is byte-identical to the context's plain Run with the same
// seed (original sources, base seed); epoch e > 0 re-runs the stack
// with the carried informed set as sources under (seed, e)-derived
// randomness. One AdaptiveRunner serves many adaptive runs: epoch 0
// rewinds the carryover, and Reseed switches the base seed.
type AdaptiveRunner struct {
	informed   []bool
	baseSeed   uint64
	chf        ChannelFactory
	epochLimit int64 // default per-epoch cap when the policy passes 0
	elapsed    int64

	exec        func(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats)
	covered     func() int
	mark        func(dst []bool)
	setObserver func(o obs.RoundObserver, stride int64)
	retopo      func(offsets []int32, edges []radio.NodeID)
	relayout    func(epoch int)
}

var _ adapt.Runner = (*AdaptiveRunner)(nil)

// Reseed switches the base seed for the next adaptive run (effective
// from its epoch 0).
func (a *AdaptiveRunner) Reseed(seed uint64) { a.baseSeed = seed }

// SetChannelFactory switches the channel supplier for the next
// adaptive run (a reused runner needs a per-seed channel, exactly like
// the underlying contexts take a fresh channel per Run).
func (a *AdaptiveRunner) SetChannelFactory(chf ChannelFactory) { a.chf = chf }

// SetObserver forwards to the wrapped context's engine observer (see
// radio.Network.SetObserver); the observer spans every epoch of every
// subsequent adaptive run until replaced or detached with nil.
func (a *AdaptiveRunner) SetObserver(o obs.RoundObserver, stride int64) {
	a.setObserver(o, stride)
}

// Retopo swaps the wrapped engine's topology in place
// (radio.Network.Retopo). Only the topology-agnostic stacks support
// it — Decay and the collision wave, whose per-node protocols depend
// on nothing but n; the schedule-compiled stacks (CR, GST, the
// Theorem pipelines) bake eccentricity or per-node transmission plans
// out of the construction graph, so a swap would silently run a stale
// schedule. Those panic here instead.
func (a *AdaptiveRunner) Retopo(offsets []int32, edges []radio.NodeID) {
	if a.retopo == nil {
		panic("harness: this adaptive stack compiles its schedule from the construction graph and cannot Retopo")
	}
	a.retopo(offsets, edges)
}

// SetRelayout installs the mobility hook: before every carryover
// epoch (epoch > 0) of every subsequent adaptive run, f runs with the
// epoch index — the place to advance a waypoint stepper, rebuild the
// disk graph, and Retopo the engine, so epoch e executes on the
// topology as of e re-layout periods. Epoch 0 always runs on the
// construction topology. nil detaches.
func (a *AdaptiveRunner) SetRelayout(f func(epoch int)) { a.relayout = f }

// RunEpoch implements adapt.Runner.
func (a *AdaptiveRunner) RunEpoch(epoch int, limit int64) (int64, bool, radio.Stats) {
	// The runner's own per-epoch budget is a ceiling, not just a
	// default: even when the policy hands down a larger limit (e.g. the
	// MaxRounds remainder), one epoch of an open-ended baseline must
	// not consume the whole retry budget without re-layering.
	if a.epochLimit > 0 && (limit <= 0 || a.epochLimit < limit) {
		limit = a.epochLimit
	}
	seed := a.baseSeed
	var carry []bool
	if epoch == 0 {
		a.elapsed = 0
	} else {
		seed = rng.Mix(a.baseSeed, 0xada9, uint64(epoch))
		carry = a.informed
		if a.relayout != nil {
			a.relayout(epoch)
		}
	}
	var ch radio.Channel
	if a.chf != nil {
		ch = a.chf(epoch, a.elapsed)
	}
	rounds, done, st := a.exec(carry, ch, seed, limit)
	a.mark(a.informed)
	a.elapsed += rounds
	return rounds, done, st
}

// Covered implements adapt.Runner.
func (a *AdaptiveRunner) Covered() int { return a.covered() }

// baselineEpochBudget is the per-epoch round ceiling for the
// open-ended baseline stacks (Decay, CR, GST-single), which carry no
// schedule budget of their own: four times the O(D log n + log^2 n)
// w.h.p. completion bound leaves room for channel-adversity slowdown
// while keeping a stalled epoch from consuming the whole retry budget
// (RunEpoch clamps any larger policy limit down to it).
func baselineEpochBudget(g *graph.Graph, d int) int64 {
	l := int64(sched.LogN(g.N()))
	return 4 * (int64(d)*l + l*l)
}

// NewAdaptiveDecay wraps a Decay broadcast stack in the retry layer,
// broadcasting from source.
func NewAdaptiveDecay(g *graph.Graph, chf ChannelFactory, seed uint64, source graph.NodeID) *AdaptiveRunner {
	r := NewDecayRun(g, source)
	d := graph.Eccentricity(g, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		epochLimit:  baselineEpochBudget(g, d),
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
		retopo:      r.Retopo,
	}
}

// NewAdaptiveDecayDynamic is NewAdaptiveDecay with an explicit
// per-epoch round budget instead of the eccentricity-derived default —
// for dynamic topologies, where the construction graph may be
// disconnected (its eccentricity undefined) and is swapped between
// epochs anyway.
func NewAdaptiveDecayDynamic(g *graph.Graph, chf ChannelFactory, seed uint64, source graph.NodeID, epochLimit int64) *AdaptiveRunner {
	r := NewDecayRun(g, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		epochLimit:  epochLimit,
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
		retopo:      r.Retopo,
	}
}

// NewAdaptiveCR wraps the Czumaj–Rytter-shaped stack in the retry
// layer.
func NewAdaptiveCR(g *graph.Graph, d int, chf ChannelFactory, seed uint64, source graph.NodeID) *AdaptiveRunner {
	r := NewCRRun(g, d, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		epochLimit:  baselineEpochBudget(g, d),
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
	}
}

// NewAdaptiveGSTSingle wraps the known-topology single-message stack
// in the retry layer.
func NewAdaptiveGSTSingle(g *graph.Graph, noising bool, chf ChannelFactory, seed uint64, source graph.NodeID) *AdaptiveRunner {
	r := NewGSTSingleRun(g, noising, source)
	d := graph.Eccentricity(g, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		epochLimit:  baselineEpochBudget(g, d),
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
	}
}

// NewAdaptiveTheorem11 wraps the full Theorem 1.1 pipeline in the
// retry layer: each epoch re-runs wave + build + spread with the
// informed frontier as sources. The per-epoch cap defaults to the
// compiled schedule budget.
func NewAdaptiveTheorem11(g *graph.Graph, cfg rings.Config, chf ChannelFactory, seed uint64, source graph.NodeID) *AdaptiveRunner {
	r := NewTheorem11RunCfg(g, cfg, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
	}
}

// NewAdaptiveTheorem13 wraps the full Theorem 1.3 pipeline in the
// retry layer: a node that decoded all k messages re-runs as an
// additional source with the identical payload set.
func NewAdaptiveTheorem13(g *graph.Graph, cfg rings.Config, chf ChannelFactory, seed uint64, source graph.NodeID) *AdaptiveRunner {
	r := NewTheorem13RunCfg(g, cfg, source)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
	}
}
