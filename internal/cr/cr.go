// Package cr provides the prior-art baseline the paper compares
// against: the O(D log(n/D) + log^2 n) single-message broadcast of
// Czumaj–Rytter [6] and Kowalski–Pelc [16] for unknown topology
// without collision detection.
//
// Substitution note (DESIGN.md): the published algorithms are built
// from intricate selector sequences; what the paper uses is only their
// round complexity. We implement the standard simplification that
// achieves the same shape on the evaluated workloads: a Decay variant
// whose phases interleave short sweeps of length ⌈log(n/D)⌉+2 (the
// expected per-layer contention when n nodes spread over D layers is
// n/D) with occasional full-length sweeps of ⌈log n⌉ rounds (so dense
// neighborhoods still resolve, preserving the additive log^2 n term).
// One in every SparseEvery phases is full-length.
package cr

import (
	"math/rand"

	"radiocast/internal/decay"
	"radiocast/internal/radio"
	"radiocast/internal/sched"
)

// Params fixes the FastDecay schedule.
type Params struct {
	// ShortLen is the short-phase length, ⌈log(n/D)⌉+2.
	ShortLen int
	// FullLen is the full-phase length, ⌈log n⌉.
	FullLen int
	// SparseEvery makes every SparseEvery-th phase full-length.
	SparseEvery int
}

// NewParams derives the schedule from n and a diameter bound d.
func NewParams(n, d int) Params {
	if d < 1 {
		d = 1
	}
	ratio := n / d
	if ratio < 2 {
		ratio = 2
	}
	return Params{
		ShortLen:    sched.CeilLog2(ratio) + 2,
		FullLen:     sched.LogN(n),
		SparseEvery: 4,
	}
}

// cycleLen returns the length of one short+...+full phase cycle.
func (p Params) cycleLen() int64 {
	return int64(p.SparseEvery-1)*int64(p.ShortLen) + int64(p.FullLen)
}

// slot maps a round to the Decay slot of its current phase.
func (p Params) slot(r int64) int {
	off := r % p.cycleLen()
	for i := 0; i < p.SparseEvery-1; i++ {
		if off < int64(p.ShortLen) {
			return int(off)
		}
		off -= int64(p.ShortLen)
	}
	return int(off)
}

// Broadcast is the FastDecay single-message broadcast protocol.
type Broadcast struct {
	params Params
	rng    *rand.Rand

	has       bool
	msg       decay.Message
	pkt       radio.Packet // msg boxed once, reused every transmission
	RecvRound int64

	// DoneSet, when non-nil, is ticked on the first reception.
	DoneSet *radio.DoneSet
}

var _ radio.Protocol = (*Broadcast)(nil)

// NewBroadcast creates the protocol for one node.
func NewBroadcast(p Params, source bool, msg decay.Message, rng *rand.Rand) *Broadcast {
	b := &Broadcast{params: p, rng: rng}
	b.Reset(source, msg)
	return b
}

// Reset rewinds the protocol for a new run with the same schedule.
// The RNG binding is unchanged; reseeding it is the caller's job.
func (b *Broadcast) Reset(source bool, msg decay.Message) {
	b.has = source
	b.msg = msg
	b.RecvRound = -1
	if source {
		b.pkt = msg
	} else {
		b.pkt = nil
	}
}

// Has reports whether the node holds the message.
func (b *Broadcast) Has() bool { return b.has }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (b *Broadcast) Rng() *rand.Rand { return b.rng }

// Act implements radio.Protocol.
func (b *Broadcast) Act(r int64) radio.Action {
	if !b.has {
		return radio.Listen
	}
	if b.rng.Float64() < decay.TransmitProb(b.params.slot(r)) {
		return radio.Transmit(b.pkt)
	}
	return radio.Listen
}

// Observe implements radio.Protocol.
func (b *Broadcast) Observe(r int64, out radio.Outcome) {
	if b.has || out.Packet == nil {
		return
	}
	if m, ok := out.Packet.(decay.Message); ok {
		b.has = true
		b.msg = m
		b.pkt = out.Packet
		b.RecvRound = r
		b.DoneSet.Tick()
	}
}
