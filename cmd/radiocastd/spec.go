package main

// Job specs: the JSON surface of POST /v1/jobs. A spec pins everything
// a run depends on — protocol, workload graph, channel stack, adaptive
// policy, seed — so a job is exactly as reproducible as the library
// call it maps onto. Specs also carry the pooling fingerprint: two
// jobs that differ only in seed, channel, or observability settings
// share one reuse context (the PR-3 zero-rebuild layer).

import (
	"fmt"
	"math"
	"strings"

	"radiocast/internal/channel"
	"radiocast/internal/geo"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// Protocols the daemon can run. The names match the radiosim CLI.
var protocols = map[string]bool{
	"decay":       true, // BGI Decay baseline (sparse engine)
	"cr":          true, // Czumaj–Rytter-shaped baseline
	"gst":         true, // known-topology single message ([7]-style)
	"k-known":     true, // Theorem 1.2: k messages, known topology, RLNC
	"cd":          true, // Theorem 1.1: unknown topology + CD
	"k-cd":        true, // Theorem 1.3: k messages, unknown topology + CD
	"dense-decay": true, // SoA Decay on the dense engine (million-node scale)
	"dense-cr":    true, // SoA CR (FastDecay schedule) on the dense engine
	"dense-wave":  true, // SoA collision wave on the dense engine (CD forced on)
	"dense-gst":   true, // structured GST broadcast (flat tree + MMV schedule)
}

// denseProtocol reports whether name runs on the dense engine (and so
// accepts Workers but not the sparse-only adaptive layer).
func denseProtocol(name string) bool { return strings.HasPrefix(name, "dense-") }

// GraphSpec describes the workload graph.
type GraphSpec struct {
	// Kind is one of path, grid, cluster, gnp, unitdisk, geo-uniform,
	// geo-cluster. The geo-* kinds build unit-disk graphs over seeded
	// internal/geo point sets and keep the layout around for
	// position-aware features (mobility).
	Kind string `json:"kind"`
	// N is the node count (path, gnp, unitdisk, geo-*).
	N int `json:"n,omitempty"`
	// Rows and Cols size the grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Chain and Clique size the cluster chain.
	Chain  int `json:"chain,omitempty"`
	Clique int `json:"clique,omitempty"`
	// P is the G(n,p) edge probability; Radius the unit-disk range
	// (geo-* default: the connectivity radius for N).
	P      float64 `json:"p,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Clusters and Spread shape the geo-cluster layout (defaults:
	// sqrt(N) clusters at one connectivity radius of spread).
	Clusters int     `json:"clusters,omitempty"`
	Spread   float64 `json:"spread,omitempty"`
	// Seed drives the randomized generators (gnp, unitdisk, geo-*).
	Seed uint64 `json:"seed,omitempty"`
}

// geoKind reports whether kind is a position-aware layout workload.
func geoKind(kind string) bool { return kind == "geo-uniform" || kind == "geo-cluster" }

// geoRadius resolves the disk radius for a geo-* kind.
func (g GraphSpec) geoRadius() float64 {
	if g.Radius > 0 {
		return g.Radius
	}
	return geo.ConnectivityRadius(g.N)
}

// geoLayout regenerates the deterministic point set for a geo-* kind.
// Callers own the returned layout: mobility walks mutate it in place
// without affecting other jobs on the same spec.
func (g GraphSpec) geoLayout() *geo.Layout {
	if g.Kind == "geo-cluster" {
		clusters := g.Clusters
		if clusters < 1 {
			clusters = int(math.Sqrt(float64(g.N)))
			if clusters < 2 {
				clusters = 2
			}
		}
		spread := g.Spread
		if spread <= 0 {
			spread = g.geoRadius()
		}
		return geo.Clustered(g.N, clusters, spread, g.Seed)
	}
	return geo.Uniform(g.N, g.Seed)
}

// check validates the spec without paying for construction (admission
// control runs on the HTTP handler; build runs on a worker).
func (g GraphSpec) check() error {
	switch g.Kind {
	case "path":
		if g.N < 2 {
			return fmt.Errorf("path: n must be >= 2, got %d", g.N)
		}
	case "grid":
		if g.Rows < 1 || g.Cols < 1 {
			return fmt.Errorf("grid: rows/cols must be positive, got %dx%d", g.Rows, g.Cols)
		}
	case "cluster":
		if g.Chain < 1 || g.Clique < 1 {
			return fmt.Errorf("cluster: chain/clique must be positive, got %d/%d", g.Chain, g.Clique)
		}
	case "gnp":
		if g.N < 2 || g.P <= 0 || g.P > 1 {
			return fmt.Errorf("gnp: need n >= 2 and p in (0,1], got n=%d p=%g", g.N, g.P)
		}
	case "unitdisk":
		if g.N < 2 || g.Radius <= 0 {
			return fmt.Errorf("unitdisk: need n >= 2 and radius > 0, got n=%d r=%g", g.N, g.Radius)
		}
	case "geo-uniform", "geo-cluster":
		if g.N < 2 {
			return fmt.Errorf("%s: n must be >= 2, got %d", g.Kind, g.N)
		}
		if g.Radius < 0 {
			return fmt.Errorf("%s: radius must be >= 0 (0 = connectivity radius), got %g", g.Kind, g.Radius)
		}
		if g.Kind == "geo-uniform" && (g.Clusters != 0 || g.Spread != 0) {
			return fmt.Errorf("geo-uniform: clusters/spread apply only to geo-cluster")
		}
		if g.Clusters < 0 || g.Spread < 0 {
			return fmt.Errorf("geo-cluster: clusters/spread must be >= 0, got %d/%g", g.Clusters, g.Spread)
		}
	default:
		return fmt.Errorf("unknown graph kind %q (path, grid, cluster, gnp, unitdisk, geo-uniform, geo-cluster)", g.Kind)
	}
	return nil
}

// specN returns the node count the spec will build — computable at
// admission time, without paying for construction.
func (g GraphSpec) specN() int {
	switch g.Kind {
	case "grid":
		return g.Rows * g.Cols
	case "cluster":
		return g.Chain * g.Clique
	default:
		return g.N
	}
}

// build constructs the graph (all generators return connected graphs).
func (g GraphSpec) build() (*graph.Graph, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	switch g.Kind {
	case "path":
		return graph.Path(g.N), nil
	case "grid":
		return graph.Grid(g.Rows, g.Cols), nil
	case "cluster":
		return graph.ClusterChain(g.Chain, g.Clique), nil
	case "gnp":
		return graph.GNP(g.N, g.P, g.Seed), nil
	case "geo-uniform", "geo-cluster":
		return graph.BuildConnected(geo.NewDisk(g.geoLayout(), g.geoRadius()), g.Seed), nil
	default: // unitdisk; check() rejected everything else
		return graph.UnitDisk(g.N, g.Radius, g.Seed), nil
	}
}

// key is the graph's contribution to the pooling fingerprint.
func (g GraphSpec) key() string {
	return fmt.Sprintf("%s/n=%d/r=%d/c=%d/ch=%d/cl=%d/p=%g/rad=%g/gc=%d/gsp=%g/gs=%d",
		g.Kind, g.N, g.Rows, g.Cols, g.Chain, g.Clique, g.P, g.Radius, g.Clusters, g.Spread, g.Seed)
}

// ChannelSpec describes one layer of the channel-adversity stack.
type ChannelSpec struct {
	// Kind is one of erasure, noisycd, jammer, adaptive-jammer, faults.
	Kind string `json:"kind"`
	// P is the erasure probability.
	P float64 `json:"p,omitempty"`
	// Miss and Spurious are the unreliable-CD rates.
	Miss     float64 `json:"miss,omitempty"`
	Spurious float64 `json:"spurious,omitempty"`
	// Budget and Rate configure the jammers (budget < 0 = unlimited).
	Budget int64   `json:"budget,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	// LateFrac/MaxDelay/CrashFrac/Horizon configure radio faults.
	LateFrac  float64 `json:"late_frac,omitempty"`
	MaxDelay  int64   `json:"max_delay,omitempty"`
	CrashFrac float64 `json:"crash_frac,omitempty"`
	Horizon   int64   `json:"horizon,omitempty"`
	// N optionally pins the node count the layer was sized for. The
	// faults table is indexed by node ID and panics on shorter tables
	// (Faults.Reset is a no-op precisely because the table is pure
	// per-node configuration), so a mismatch with the graph spec is
	// rejected at admission instead of surfacing as a worker panic.
	N int `json:"n,omitempty"`
	// Seed keys the layer's randomness (defaults to the job seed).
	Seed uint64 `json:"seed,omitempty"`
}

// check validates the layer without constructing it.
func (c ChannelSpec) check() error {
	switch c.Kind {
	case "erasure":
		if c.P <= 0 || c.P >= 1 {
			return fmt.Errorf("erasure: p must be in (0,1), got %g", c.P)
		}
	case "noisycd", "jammer", "adaptive-jammer", "faults":
	default:
		return fmt.Errorf("unknown channel kind %q (erasure, noisycd, jammer, adaptive-jammer, faults)", c.Kind)
	}
	return nil
}

// build constructs one channel layer for an n-node run from source.
func (c ChannelSpec) build(n int, source graph.NodeID, jobSeed uint64) (radio.Channel, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	seed := c.Seed
	if seed == 0 {
		seed = jobSeed
	}
	switch c.Kind {
	case "erasure":
		return channel.NewErasure(c.P, seed), nil
	case "noisycd":
		return channel.NewNoisyCD(c.Miss, c.Spurious, seed), nil
	case "jammer":
		return channel.NewJammer(c.Budget, c.Rate, seed), nil
	case "adaptive-jammer":
		return channel.NewAdaptiveJammer(c.Budget, 1, seed), nil
	case "faults":
		return channel.RandomFaults(n, source, c.LateFrac, c.MaxDelay, c.CrashFrac, c.Horizon, seed), nil
	default:
		return nil, fmt.Errorf("unknown channel kind %q (erasure, noisycd, jammer, adaptive-jammer, faults)", c.Kind)
	}
}

// AdaptiveSpec enables the loss-adaptive retry layer.
type AdaptiveSpec struct {
	// MaxEpochs caps retry epochs; 0 retries until done (bounded by
	// adapt.UntilDoneCap).
	MaxEpochs int `json:"max_epochs,omitempty"`
}

// MobilitySpec puts a geometric workload's nodes on a random-waypoint
// walk: between adaptive epochs the layout advances Period steps of
// Speed and the unit-disk graph is rebuilt in place (engine Retopo).
// Requires a geo-* graph kind, the adaptive layer, and a
// topology-agnostic protocol (decay).
type MobilitySpec struct {
	// Period is the epoch length in rounds (== waypoint steps between
	// re-layouts).
	Period int64 `json:"period"`
	// Speed is the per-round step length in unit-square coordinates.
	Speed float64 `json:"speed"`
}

// JobSpec is the POST /v1/jobs request body.
type JobSpec struct {
	// Protocol selects the stack (see the protocols map).
	Protocol string    `json:"protocol"`
	Graph    GraphSpec `json:"graph"`
	// K is the message count for the k-message protocols (default 1).
	K int `json:"k,omitempty"`
	// Seed drives all protocol randomness.
	Seed uint64 `json:"seed,omitempty"`
	// Source is the broadcasting node (default 0).
	Source int64 `json:"source,omitempty"`
	// RoundLimit caps simulated rounds (0 = the protocol's own budget).
	RoundLimit int64 `json:"round_limit,omitempty"`
	// Workers is the dense engine's worker count (dense-* protocols only).
	Workers int `json:"workers,omitempty"`
	// Channel stacks adversity layers (empty = ideal channel).
	Channel []ChannelSpec `json:"channel,omitempty"`
	// Adaptive wraps the run in the retry layer (sparse protocols only).
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// Mobility re-layouts a geo-* workload between adaptive epochs.
	Mobility *MobilitySpec `json:"mobility,omitempty"`
	// ObserveEvery is the round stride for progress events (default
	// 1024; lower = finer-grained SSE at more event volume).
	ObserveEvery int64 `json:"observe_every,omitempty"`
}

// validate checks everything that can fail before graph construction.
func (s *JobSpec) validate() error {
	if !protocols[s.Protocol] {
		names := make([]string, 0, len(protocols))
		for p := range protocols {
			names = append(names, p)
		}
		return fmt.Errorf("unknown protocol %q (one of %s)", s.Protocol, strings.Join(names, ", "))
	}
	if s.K < 0 {
		return fmt.Errorf("k must be >= 0, got %d", s.K)
	}
	if s.K > 0 && s.Protocol != "k-known" && s.Protocol != "k-cd" {
		return fmt.Errorf("k applies only to k-known and k-cd, not %q", s.Protocol)
	}
	if s.Adaptive != nil && (s.Protocol == "k-known" || denseProtocol(s.Protocol)) {
		return fmt.Errorf("adaptive retry is not supported by %q", s.Protocol)
	}
	if s.Workers != 0 && !denseProtocol(s.Protocol) {
		return fmt.Errorf("workers applies only to the dense-* protocols")
	}
	if s.Source < 0 {
		return fmt.Errorf("source must be >= 0, got %d", s.Source)
	}
	if s.RoundLimit < 0 {
		return fmt.Errorf("round_limit must be >= 0, got %d", s.RoundLimit)
	}
	if err := s.Graph.check(); err != nil {
		return err
	}
	if s.Mobility != nil {
		if !geoKind(s.Graph.Kind) {
			return fmt.Errorf("mobility needs a position-aware workload (geo-uniform, geo-cluster), not %q", s.Graph.Kind)
		}
		if s.Adaptive == nil {
			return fmt.Errorf("mobility requires the adaptive retry layer (it re-executes per re-layout epoch)")
		}
		if s.Protocol != "decay" {
			return fmt.Errorf("mobility is only supported by the topology-agnostic decay protocol, not %q", s.Protocol)
		}
		if s.Mobility.Period < 1 {
			return fmt.Errorf("mobility: period must be >= 1 round, got %d", s.Mobility.Period)
		}
		if s.Mobility.Speed <= 0 {
			return fmt.Errorf("mobility: speed must be > 0, got %g", s.Mobility.Speed)
		}
	}
	for i, cs := range s.Channel {
		if err := cs.check(); err != nil {
			return fmt.Errorf("channel[%d]: %w", i, err)
		}
		if cs.N != 0 && cs.N != s.Graph.specN() {
			return fmt.Errorf("channel[%d]: layer sized for n=%d but the graph spec builds n=%d", i, cs.N, s.Graph.specN())
		}
	}
	return nil
}

// k returns the effective message count.
func (s *JobSpec) k() int {
	if s.K < 1 {
		return 1
	}
	return s.K
}

// stride returns the effective observer stride.
func (s *JobSpec) stride() int64 {
	if s.ObserveEvery < 1 {
		return 1024
	}
	return s.ObserveEvery
}

// fingerprint identifies the reuse context a job needs: everything
// that forces a rebuild (protocol, graph, k, source, adaptivity) and
// nothing that doesn't (seed, channel, limits, observability).
func (s *JobSpec) fingerprint() string {
	adaptive := ""
	if s.Adaptive != nil {
		adaptive = "/adaptive"
	}
	if s.Mobility != nil {
		adaptive += fmt.Sprintf("/mob=%d:%g", s.Mobility.Period, s.Mobility.Speed)
	}
	return fmt.Sprintf("%s/k=%d/src=%d%s|%s", s.Protocol, s.k(), s.Source, adaptive, s.Graph.key())
}

// buildChannel assembles the job's channel stack (nil = ideal).
func (s *JobSpec) buildChannel(n int) (radio.Channel, error) {
	if len(s.Channel) == 0 {
		return nil, nil
	}
	if len(s.Channel) == 1 {
		return s.Channel[0].build(n, graph.NodeID(s.Source), s.Seed)
	}
	stack := make(channel.Stack, len(s.Channel))
	for i, cs := range s.Channel {
		ch, err := cs.build(n, graph.NodeID(s.Source), s.Seed)
		if err != nil {
			return nil, err
		}
		stack[i] = ch
	}
	return stack, nil
}
