package harness

// E16: the fault-rate sweep that completes the robustness catalog —
// the Faults channel (crash / late wakeup) had engine and CLI support
// since the adversarial-channel subsystem landed, but no experiment
// exercised it.

import (
	"fmt"

	"radiocast/internal/channel"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
	"radiocast/internal/stats"
)

// e16Variants orders the two fault modes: late wakeup (radios dead
// until a random round, then healthy forever) and crash (radios die
// at a random round, permanently).
var e16Variants = []string{"late", "crash"}

// e16Protocols orders the protocol columns.
var e16Protocols = []string{"decay", "cr", "th11"}

// E16 fault-model horizons: late radios wake uniformly in
// [1, e16MaxDelay]; crashed radios die uniformly in [1, e16Horizon].
// Both are on the order of the fault-free Decay completion time
// (~80 rounds on the E16 workload), so faults actually intersect the
// broadcast — a crash horizon far past completion would be invisible.
const (
	e16MaxDelay = 256
	e16Horizon  = 128
)

// E16Plan sweeps a per-node fault probability under both fault modes.
// Every protocol runs under the SAME round budget (Theorem 1.1's total
// schedule), so the coverage columns compare equal air time. Expected
// shape: under late wakeups the retry-forever baselines stay complete
// (slower), while Theorem 1.1's collision wave has passed before late
// radios wake — they miss their BFS layer and the stack's coverage
// decays with the rate. Under crashes no protocol can finish (a
// crashed radio that never received is unreachable), so the metric is
// coverage: the baselines degrade with the crashed fraction, the
// fixed pipeline collapses faster because a crash also severs the
// relay structure it built.
func E16Plan(seeds int, quick bool) *exp.Plan {
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if quick {
		rates = []float64{0, 0.1, 0.4}
	}
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	budget := rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds()
	costs := map[string]int64{
		"decay": 4 * baselineCost(g, d),
		"cr":    4 * baselineCost(g, d),
		"th11":  budgetCost(g.N(), budget),
	}
	p := &exp.Plan{ID: "E16", Title: "Robustness: radio-fault sweep (late wakeup / crash)"}
	for _, rate := range rates {
		for _, variant := range e16Variants {
			for _, proto := range e16Protocols {
				for s := 0; s < seeds; s++ {
					rate, variant, proto, seed := rate, variant, proto, uint64(s)
					p.Cells = append(p.Cells, exp.Cell{
						Key:        exp.Key{Experiment: "E16", Config: fmt.Sprintf("fault=%g/%s/%s", rate, variant, proto), Seed: seed},
						RoundLimit: budget,
						Cost:       costs[proto],
						Run: func(limit int64) exp.Result {
							return e16Cell(g, d, proto, variant, rate, seed, limit)
						},
					})
				}
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E16: broadcast under radio faults (clusterchain-6x6, shared round budget)",
			Comment: fmt.Sprintf("late: radios dead until uniform wake in [1,%d]; crash: radios die at uniform round in [1,%d];\n"+
				"cov = mean fraction of nodes holding the message when the run stops (budget %d rounds for every protocol);\n"+
				"baselines retry past late wakeups, Thm 1.1's one-shot wave+build cannot; crashes cap everyone's coverage",
				e16MaxDelay, e16Horizon, budget),
			Header: []string{"fault", "rate", "decay cov", "decay rounds", "cr cov", "th11 cov", "th11 ok"},
		}
		for _, variant := range e16Variants {
			for _, rate := range rates {
				collect := func(proto string) (cov float64, rounds []float64, okCount int) {
					var covs []float64
					for s := 0; s < seeds; s++ {
						r := idx[exp.Key{Experiment: "E16", Config: fmt.Sprintf("fault=%g/%s/%s", rate, variant, proto), Seed: uint64(s)}]
						covs = append(covs, r.Value)
						if r.Completed {
							okCount++
							rounds = append(rounds, float64(r.Rounds))
						}
					}
					return stats.Summarize(covs, 0, 0).Mean, rounds, okCount
				}
				dcov, drounds, _ := collect("decay")
				ccov, _, _ := collect("cr")
				tcov, _, tok := collect("th11")
				t.AddRow(variant, stats.F(rate),
					stats.F(dcov), stats.F(meanOrDash(drounds)),
					stats.F(ccov), stats.F(tcov),
					fmt.Sprintf("%d/%d", tok, seeds))
			}
		}
		return t
	}
	return p
}

// e16Cell executes one fault cell: proto under the variant's fault
// table at the given rate, capped at the shared budget. Value is the
// coverage fraction.
func e16Cell(g *graph.Graph, d int, proto, variant string, rate float64, seed uint64, limit int64) exp.Result {
	ch := faultChannel(g.N(), variant, rate, seed)
	n := float64(g.N())
	switch proto {
	case "decay":
		r := NewDecayRun(g, 0)
		rounds, ok, st := r.Run(ch, seed, limit)
		res := exp.RoundsOn(rounds, ok, st.Dropped, st.Jammed)
		res.Value = float64(r.Coverage()) / n
		return res
	case "cr":
		r := NewCRRun(g, d, 0)
		rounds, ok, st := r.Run(ch, seed, limit)
		res := exp.RoundsOn(rounds, ok, st.Dropped, st.Jammed)
		res.Value = float64(r.Coverage()) / n
		return res
	default: // "th11"
		r := RunTheorem11On(g, d, 1, ch, seed)
		res := exp.RoundsOn(r.Rounds, r.Completed, r.Stats.Dropped, r.Stats.Jammed)
		res.Value = float64(r.Covered) / n
		return res
	}
}

// faultChannel returns a fresh per-run fault table; rate 0 is the
// ideal channel (nil), anchoring the sweep's baseline.
func faultChannel(n int, variant string, rate float64, seed uint64) radio.Channel {
	if rate == 0 {
		return nil
	}
	if variant == "late" {
		return channel.RandomFaults(n, 0, rate, e16MaxDelay, 0, 0, rng.Mix(seed, 0xe16))
	}
	return channel.RandomFaults(n, 0, 0, 0, rate, e16Horizon, rng.Mix(seed, 0xe16))
}

// E16FaultSweep runs E16 sequentially (compat wrapper).
func E16FaultSweep(seeds int, quick bool) *stats.Table { return runPlan(E16Plan(seeds, quick)) }
