package graph

import (
	"fmt"
	"math"
	"math/rand"

	"radiocast/internal/rng"
)

// The generators below produce the workload families used throughout
// the experiments:
//
//   - Path / Cycle / Grid: high-diameter sparse topologies where the
//     additive-in-D bound of Theorem 1.1 dominates the multiplicative
//     D·log(n/D) baselines.
//   - Star / Complete: degenerate low-diameter, high-contention
//     topologies exercising the polylog terms and the Decay analysis.
//   - GNP / RandomRegular: low-diameter expanders.
//   - UnitDisk: the geometric model most practical radio deployments
//     resemble (sensor fields).
//   - ClusterChain ("caterpillar of cliques"): the canonical hard case
//     for Decay-style protocols — large diameter AND large degree, so
//     D·log n is maximally worse than D + polylog.
//   - BinaryTree / Hypercube: structured topologies for GST sanity.

// Path returns the path 0-1-2-...-n-1 (diameter n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("path-%d", n))
	for v := 0; v+1 < n; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Cycle returns the n-cycle (diameter floor(n/2)).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("cycle-%d", n))
	for v := 0; v+1 < n; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	if n > 2 {
		b.AddEdge(NodeID(n-1), 0)
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 leaves (diameter 2).
func Star(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("star-%d", n))
	for v := 1; v < n; v++ {
		b.AddEdge(0, NodeID(v))
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("complete-%d", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// Grid returns the rows x cols 2D grid (diameter rows+cols-2).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("grid-%dx%d", rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols 2D torus (wraparound grid).
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("torus-%dx%d", rows, cols))
	id := func(r, c int) NodeID { return NodeID(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, c+1))
			b.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree on n nodes (heap order).
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("bintree-%d", n))
	for v := 1; v < n; v++ {
		b.AddEdge(NodeID(v), NodeID((v-1)/2))
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("hypercube-%d", d))
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			b.AddEdge(NodeID(v), NodeID(v^(1<<bit)))
		}
	}
	return b.Build()
}

// GNP returns a connected Erdős–Rényi G(n, p) sample: edges are drawn
// independently with probability p and, if the sample is disconnected,
// each non-root component is stitched to the giant component with one
// random edge (so the workload stays a single broadcast domain while
// remaining statistically close to G(n,p) for p above the connectivity
// threshold).
func GNP(n int, p float64, seed uint64) *Graph {
	r := rng.New(seed, 0x6e70) // "np"
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("gnp-%d-p%.3f", n, p))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	stitchConnected(b, r)
	return b.Build()
}

// RandomRegular returns an (approximately) d-regular random graph via
// the pairing model with retry-free collision dropping: some nodes may
// end with degree slightly below d. Stitched to be connected.
func RandomRegular(n, d int, seed uint64) *Graph {
	r := rng.New(seed, 0x7272) // "rr"
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("regular-%d-d%d", n, d))
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1])
	}
	stitchConnected(b, r)
	return b.Build()
}

// UnitDisk places n points uniformly in the unit square and connects
// pairs within Euclidean distance radius — the standard model of a
// wireless sensor field. Stitched to be connected.
func UnitDisk(n int, radius float64, seed uint64) *Graph {
	r := rng.New(seed, 0x7564) // "ud"
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("udg-%d-r%.3f", n, radius))
	// Grid hashing: only compare points in neighboring cells.
	cell := radius
	if cell <= 0 {
		panic("graph: UnitDisk radius must be positive")
	}
	cols := int(1/cell) + 1
	buckets := make(map[int][]int)
	key := func(x, y float64) (int, int) { return int(x / cell), int(y / cell) }
	for i := 0; i < n; i++ {
		cx, cy := key(xs[i], ys[i])
		buckets[cx*cols*4+cy] = append(buckets[cx*cols*4+cy], i)
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := key(xs[i], ys[i])
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[(cx+dx)*cols*4+(cy+dy)] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(NodeID(i), NodeID(j))
					}
				}
			}
		}
	}
	stitchConnected(b, r)
	return b.Build()
}

// ClusterChain returns a chain of `chain` cliques of size `clique`,
// where consecutive cliques are joined by a single bridge edge. With
// n = chain*clique nodes it has diameter Θ(chain) and max degree
// Θ(clique): the workload on which D·log n style bounds are maximally
// worse than D + polylog (the headline gap of Theorem 1.1).
func ClusterChain(chain, clique int) *Graph {
	n := chain * clique
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("clusterchain-%dx%d", chain, clique))
	id := func(c, i int) NodeID { return NodeID(c*clique + i) }
	for c := 0; c < chain; c++ {
		for i := 0; i < clique; i++ {
			for j := i + 1; j < clique; j++ {
				b.AddEdge(id(c, i), id(c, j))
			}
		}
		if c+1 < chain {
			b.AddEdge(id(c, clique-1), id(c+1, 0))
		}
	}
	return b.Build()
}

// Lollipop returns a clique of size `clique` attached to a path of
// length `tail` — the classical worst case separating eccentricities.
func Lollipop(clique, tail int) *Graph {
	n := clique + tail
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("lollipop-%d+%d", clique, tail))
	for u := 0; u < clique; u++ {
		for v := u + 1; v < clique; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	for v := clique - 1; v+1 < n; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Caterpillar returns a path of length spineLen where each spine node
// has legs pendant leaves: a tree with both large diameter and
// nontrivial per-layer contention.
func Caterpillar(spineLen, legs int) *Graph {
	n := spineLen * (1 + legs)
	b := NewBuilder(n)
	b.SetName(fmt.Sprintf("caterpillar-%dx%d", spineLen, legs))
	for v := 0; v+1 < spineLen; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	next := spineLen
	for v := 0; v < spineLen; v++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(NodeID(v), NodeID(next))
			next++
		}
	}
	return b.Build()
}

// stitchConnected adds random edges from each secondary component to
// the component of node 0 until the builder's graph is connected.
func stitchConnected(b *Builder, r *rand.Rand) {
	if b.n == 0 {
		return
	}
	for {
		g := b.Build()
		res := BFS(g, 0)
		if res.Reached == g.n {
			return
		}
		// Pick a random reached node and a random unreached node.
		var reached, unreached []NodeID
		for v := 0; v < g.n; v++ {
			if res.Dist[v] >= 0 {
				reached = append(reached, NodeID(v))
			} else {
				unreached = append(unreached, NodeID(v))
			}
		}
		b.AddEdge(reached[r.Intn(len(reached))], unreached[r.Intn(len(unreached))])
	}
}

// ConnectivityRadius returns a radius at which a UnitDisk graph on n
// nodes is connected w.h.p.: sqrt(2 ln n / n), with a safety factor.
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return 1.2 * math.Sqrt(2*math.Log(float64(n))/float64(n))
}
