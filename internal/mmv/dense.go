package mmv

// Dense is the structure-of-arrays GST broadcast for the radio.Dense
// engine: the single-message MMV schedule (fast/slow slots over a
// gathering spanning tree) with every node's state held in bitsets and
// flat arrays — the structured counterpart of decay.Dense and
// cr.Dense.
//
// Differences from the per-node Protocol (same schedule, same delivery
// semantics, different randomness plumbing):
//
//   - Slow-slot coin flips are keyed draws Mix3(key, node, round)
//     instead of per-node RNG streams, so AppendTransmitters needs no
//     mutable state and partitions can draw concurrently. Runs are NOT
//     byte-comparable with Protocol runs driven by rand.Rand — the
//     determinism claim is Dense(Workers=a) == Dense(Workers=b) at any
//     a, b, plus byte-identity with a keyed sparse twin replaying the
//     same draws (see the package tests).
//   - Fast slots are fully deterministic: the residue classes
//     2(l+3r) mod M are precomputed into per-residue ascending node
//     lists, so a fast round costs O(|class| log) instead of O(n).
//   - Slow-slot transmitters are frontier-pruned: an informed node
//     with no uninformed neighbor transmits into an audience of
//     already-informed listeners, and on odd rounds an informed
//     listener's observation is a no-op (relay arming is confined to
//     even rounds — fast residues are even, M is even), so dropping
//     the transmission provably cannot change any node's state. Fast
//     slots are never pruned: the relay wave must keep propagating
//     through informed stretches. The argument needs the channel to be
//     round-local and link-keyed (ideal, erasure); stateful channels
//     (jammer budgets) may observe the pruned transmitter set, which
//     keeps Workers-invariance but voids sparse-twin byte-identity.
//   - The relay buffer of the sparse protocol (one packet per node)
//     collapses to one bit per node: single-message content means a
//     relay either holds the message or nothing.

import (
	"math/bits"

	"radiocast/internal/bitvec"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// DenseKey derives the keyed-draw seed for the dense GST broadcast's
// slow slots; exported so twin tests can replay the exact coins.
func DenseKey(seed uint64) uint64 { return rng.Mix(seed, 0x67) }

// Dense implements radio.DenseProtocol for the single-message MMV
// schedule over a flattened GST.
type Dense struct {
	g       *graph.Graph
	f       *gst.Flat
	s       Schedule
	key     uint64
	noising bool
	src     graph.NodeID

	informed bitvec.Vec // has the message
	newly    bitvec.Vec // received this round; promoted in EndRound
	armed    bitvec.Vec // relay bit: parent's fast wave buffered
	listen   bitvec.Vec // uninformed ∪ fastListen (maintained incrementally)
	frontier bitvec.Vec // informed members with >= 1 uninformed neighbor
	uninf    bitvec.Vec // uninformed members (noising slow candidates)
	noiseTx  bitvec.Vec // this round's transmitters that send noise, stamped at collect

	// fastListen marks interior stretch nodes with a same-rank child —
	// the nodes whose relay bit matters; they listen forever (static).
	fastListen bitvec.Vec
	// slowBucket partitions members by Vdist mod 3: the odd round t
	// is a slow slot of exactly the bucket ((t-1)/2) mod 3.
	slowBucket [3]bitvec.Vec
	// fastList[res] lists members with a same-rank child whose fast
	// slot 2(l+3r) mod M equals res, ascending (odd residues empty).
	fastList [][]graph.NodeID
	// armSlot is the residue of the parent's fast slot for interior
	// stretch nodes (the only nodes that buffer a relay), else -1.
	armSlot []int32

	uninformedDeg []int32 // per-node count of uninformed neighbors
	recvRound     []int64 // round of first reception (-1 for the source)
	informedCount int

	pkt   radio.Packet // the message, boxed once
	noise radio.Packet // NoisePacket, boxed once
}

var _ radio.DenseProtocol = (*Dense)(nil)

// NewDense creates the SoA GST broadcast on g over the flattened tree
// f (normally gst.Flatten(gst.Construct(g, source))), with slow-slot
// coins keyed on seed. noising makes scheduled nodes without content
// jam their slots — the MMV adversary of Definition 3.1.
func NewDense(g *graph.Graph, f *gst.Flat, s Schedule, seed uint64, source graph.NodeID, noising bool) *Dense {
	n := g.N()
	d := &Dense{
		g:             g,
		f:             f,
		s:             s,
		key:           DenseKey(seed),
		noising:       noising,
		src:           source,
		informed:      bitvec.New(n),
		newly:         bitvec.New(n),
		armed:         bitvec.New(n),
		listen:        bitvec.New(n),
		frontier:      bitvec.New(n),
		uninf:         bitvec.New(n),
		noiseTx:       bitvec.New(n),
		fastListen:    bitvec.New(n),
		fastList:      make([][]graph.NodeID, s.M),
		armSlot:       make([]int32, n),
		uninformedDeg: make([]int32, n),
		recvRound:     make([]int64, n),
		pkt:           decay.Message{Data: int64(source)},
		noise:         radio.NoisePacket{},
	}
	for i := range d.slowBucket {
		d.slowBucket[i] = bitvec.New(n)
	}
	d.listen.Ones()
	for v := 0; v < n; v++ {
		d.uninformedDeg[v] = int32(g.Degree(graph.NodeID(v)))
		d.recvRound[v] = -1
		d.armSlot[v] = -1
		if !f.Member(graph.NodeID(v)) {
			continue
		}
		d.uninf.Set(v)
		d.slowBucket[int(f.Vdist[v])%3].Set(v)
		if f.SameRankChild[v] {
			res := (2 * (int64(f.Level[v]) + 3*int64(f.Rank[v]))) % s.M
			d.fastList[res] = append(d.fastList[res], graph.NodeID(v))
			if !f.StretchStart[v] {
				d.fastListen.Set(v)
			}
		}
		if !f.StretchStart[v] {
			// Interior stretch node: buffers the parent's wave, sent at
			// the parent's fast slot 2((l-1)+3r) mod M.
			d.armSlot[v] = int32((2 * (int64(f.Level[v]) - 1 + 3*int64(f.Rank[v]))) % s.M)
		}
	}
	if n > 0 {
		d.inform(source, -1)
	}
	return d
}

// inform flips v to informed (received in round r; -1 for the source),
// maintaining the listen set, the noising candidates, the neighbors'
// uninformed-degree counts, and the frontier on both sides.
func (d *Dense) inform(v graph.NodeID, r int64) {
	d.informed.Set(int(v))
	d.uninf.Clear(int(v))
	if !d.fastListen.Get(int(v)) {
		d.listen.Clear(int(v))
	}
	d.recvRound[v] = r
	d.informedCount++
	for _, u := range d.g.Neighbors(v) {
		d.uninformedDeg[u]--
		if d.uninformedDeg[u] == 0 {
			d.frontier.Clear(int(u)) // no-op for uninformed u
		}
	}
	if d.uninformedDeg[v] > 0 && d.f.Member(v) {
		d.frontier.Set(int(v))
	}
}

// fastContent reports whether fast transmitter v holds content this
// round: stretch starts send fresh content, interior nodes relay.
func (d *Dense) fastContent(v graph.NodeID) bool {
	if d.f.StretchStart[v] {
		return d.informed.Get(int(v))
	}
	return d.armed.Get(int(v))
}

// AppendTransmitters implements radio.DenseProtocol. Even rounds walk
// the round's fast residue class; odd rounds walk the round's slow
// bucket masked by the frontier (plus, when noising, the uninformed
// members). The per-transmitter payload kind (content vs noise) is
// stamped into noiseTx here — at collect time — so Packet reads a
// round-stable bit even while deliveries arm relays concurrently.
func (d *Dense) AppendTransmitters(r int64, lo, hi graph.NodeID, dst []radio.NodeID) []radio.NodeID {
	if r%2 == 0 {
		lst := d.fastList[r%d.s.M]
		i, j := 0, len(lst)
		for i < j {
			h := int(uint(i+j) >> 1)
			if lst[h] < lo {
				i = h + 1
			} else {
				j = h
			}
		}
		for ; i < len(lst) && lst[i] < hi; i++ {
			v := lst[i]
			switch {
			case d.fastContent(v):
				d.noiseTx.Clear(int(v))
			case d.noising:
				d.noiseTx.Set(int(v))
			default:
				continue
			}
			dst = append(dst, v)
		}
		return dst
	}
	bw := d.slowBucket[((r-1)/2)%3].Words()
	fw := d.frontier.Words()
	var uw []uint64
	if d.noising {
		uw = d.uninf.Words()
	}
	for wi := int(lo) >> 6; wi<<6 < int(hi); wi++ {
		w := bw[wi] & fw[wi]
		if uw != nil {
			w = bw[wi] & (fw[wi] | uw[wi])
		}
		for w != 0 {
			v := graph.NodeID(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			base := 1 + 2*int64(d.f.Vdist[v])
			if r < base {
				continue
			}
			if exp := ((r - base) / 6) % int64(d.s.L); exp > 0 &&
				rng.Mix3(d.key, uint64(v), uint64(r)) >= uint64(1)<<(64-uint(exp)) {
				continue
			}
			if d.informed.Get(int(v)) {
				d.noiseTx.Clear(int(v))
			} else {
				d.noiseTx.Set(int(v)) // noising: jam the won slot
			}
			dst = append(dst, v)
		}
	}
	return dst
}

// ListenWords implements radio.DenseProtocol: every uninformed node
// listens (to get the message), and every interior stretch node with a
// same-rank child listens forever (to keep the relay wave alive).
func (d *Dense) ListenWords(int64) []uint64 { return d.listen.Words() }

// Packet implements radio.DenseProtocol.
func (d *Dense) Packet(_ int64, v graph.NodeID) radio.Packet {
	if d.noiseTx.Get(int(v)) {
		return d.noise
	}
	return d.pkt
}

// Deliver implements radio.DenseProtocol. Both effects — marking the
// newly set and arming the relay bit — are v-local bitset writes, and
// the engine calls Deliver from v's owner partition, so same-word
// writes never race.
func (d *Dense) Deliver(r int64, v graph.NodeID, out radio.Outcome) {
	if out.Packet == nil {
		return // ⊤: the schedule ignores collisions
	}
	if _, ok := out.Packet.(decay.Message); !ok {
		return // channel noise / jamming
	}
	if !d.informed.Get(int(v)) {
		d.newly.Set(int(v))
	}
	// Buffer the parent's fast wave for relaying two rounds later.
	if s := d.armSlot[v]; s >= 0 && int64(s) == r%d.s.M && out.From == d.f.Parent[v] {
		d.armed.Set(int(v))
	}
}

// EndRound implements radio.DenseProtocol: on a fast round, clear the
// relay bits of the round's interior transmitters (the sparse
// protocol's relay = nil on its own fast slot — one relay per received
// wave; a same-round arm cannot be erased, because a node's own
// residue and its parent's differ by 2 mod M); then promote this
// round's receivers in ascending node order.
func (d *Dense) EndRound(r int64) {
	if r%2 == 0 {
		for _, v := range d.fastList[r%d.s.M] {
			if !d.f.StretchStart[v] {
				d.armed.Clear(int(v))
			}
		}
	}
	words := d.newly.Words()
	for wi, w := range words {
		for w != 0 {
			v := graph.NodeID(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			d.inform(v, r)
		}
		words[wi] = 0
	}
}

// Done reports whether every node is informed.
func (d *Dense) Done() bool { return d.informedCount == d.g.N() }

// InformedCount returns the number of informed nodes.
func (d *Dense) InformedCount() int { return d.informedCount }

// Informed reports whether v has the message.
func (d *Dense) Informed(v graph.NodeID) bool { return d.informed.Get(int(v)) }

// RecvRound returns the round v first received the message (-1 for
// the source or a still-uninformed node).
func (d *Dense) RecvRound(v graph.NodeID) int64 { return d.recvRound[v] }
