package decay

import (
	"math/rand"

	"radiocast/internal/radio"
	"radiocast/internal/sched"
)

// Layering is the Decay-based BFS layering of Section 2.2.2, which
// works without collision detection in O(D log^2 n) rounds:
//
//	Rounds are divided into D epochs, each consisting of Θ(log n)
//	phases of the Decay protocol. In each epoch, a node participates
//	iff it is the source or it received the message by the end of the
//	previous epoch. The epoch of first reception determines the BFS
//	level.
//
// After the run, Level() returns the node's BFS level (0 for the
// source, -1 if the wave never arrived — a failure the caller detects).
type Layering struct {
	rng      *rand.Rand
	l        int   // Decay phase length ⌈log n⌉
	epochLen int64 // rounds per epoch = phases * L
	isSource bool

	has       bool
	recvEpoch int64 // epoch of first reception
}

var _ radio.Protocol = (*Layering)(nil)

// LayeringRounds returns the total schedule length for the layering:
// D+1 epochs of phasesPerEpoch*⌈log n⌉ rounds. phasesPerEpoch is the
// Θ(log n) constant; EpochPhases(n, c) provides the default.
func LayeringRounds(n, d, phasesPerEpoch int) int64 {
	l := sched.LogN(n)
	return int64(d+1) * int64(phasesPerEpoch) * int64(l)
}

// EpochPhases returns the number of Decay phases per epoch: c·⌈log n⌉,
// the paper's Θ(log n) with explicit constant c.
func EpochPhases(n, c int) int {
	if c < 1 {
		c = 1
	}
	return c * sched.LogN(n)
}

// NewLayering creates the layering protocol for one node.
func NewLayering(n int, source bool, phasesPerEpoch int, rng *rand.Rand) *Layering {
	l := sched.LogN(n)
	return &Layering{
		rng:       rng,
		l:         l,
		epochLen:  int64(phasesPerEpoch) * int64(l),
		isSource:  source,
		has:       source,
		recvEpoch: -1,
	}
}

// Reset rewinds the layering for a new run, allocation-free.
func (ly *Layering) Reset(source bool) {
	ly.isSource = source
	ly.has = source
	ly.recvEpoch = -1
}

// layerMsg is the boxed empty layering message, shared by every
// transmission (the payload carries no information — only the packet's
// presence matters).
var layerMsg radio.Packet = Message{}

// Level returns the learned BFS level: 0 for the source, the 1-based
// epoch of first reception otherwise, and -1 if the node was never
// reached.
func (ly *Layering) Level() int {
	switch {
	case ly.isSource:
		return 0
	case ly.recvEpoch < 0:
		return -1
	default:
		return int(ly.recvEpoch) + 1
	}
}

// Has reports whether the node has been reached by the wave.
func (ly *Layering) Has() bool { return ly.has }

// Act implements radio.Protocol.
func (ly *Layering) Act(r int64) radio.Action {
	if !ly.has {
		return radio.Listen
	}
	epoch := r / ly.epochLen
	if !ly.isSource && ly.recvEpoch >= epoch {
		// Received during this epoch: participate from the next one.
		return radio.Listen
	}
	_, slot := sched.Cycle(r, int64(ly.l))
	if ly.rng.Float64() < TransmitProb(int(slot)) {
		return radio.Transmit(layerMsg)
	}
	return radio.Listen
}

// Observe implements radio.Protocol.
func (ly *Layering) Observe(r int64, out radio.Outcome) {
	if ly.has || out.Packet == nil {
		return
	}
	if _, ok := out.Packet.(Message); ok {
		ly.has = true
		ly.recvEpoch = r / ly.epochLen
	}
}
