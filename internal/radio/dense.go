package radio

// The dense engine: the million-node counterpart of Network.
//
// Network drives one Protocol object per node through interface calls —
// ~100 bytes and several indirections per node, which is the right
// shape for the heterogeneous multi-message stacks (GST rings, coding
// buffers) but caps practical scale around 10^4..10^5 nodes. Dense
// inverts the ownership: a single DenseProtocol owns ALL node state in
// structure-of-arrays form (bitsets for membership, flat arrays for
// per-node scalars) and the engine talks to it in word-granular bulk
// operations. One round costs O(frontier + deliveries) with zero
// steady-state allocations, and the delivery pass parallelizes across
// cores while staying byte-identical to sequential execution.
//
// Semantics match Network's round structure — a listener receives iff
// exactly one neighbor's transmission survives the channel, CD turns
// >=2 survivors into the ⊤ symbol, transmitters never receive — with
// the deviations documented on Dense (polling, Polls/ActiveRounds
// accounting, packet-size checks at delivery).
//
// Determinism at any worker count. Every pass either partitions
// disjoint state or accumulates commutative effects that are merged in
// a fixed order:
//
//   - Collect: partitions are word-aligned node ranges; each writes
//     only its own transmitter-bitset words and its own list.
//   - The round's transmitter list is the in-order concatenation of the
//     per-partition lists — ascending node order regardless of the
//     partition count — and source suppression walks it sequentially.
//   - Scatter: workers take contiguous chunks of that list and route
//     each surviving (transmitter, listener) hit into a bucket indexed
//     by (scatter worker, listener's owner partition). Channel DropLink
//     draws are keyed by (round, link), so evaluation order is
//     irrelevant (see Config.Workers for the concurrency contract).
//   - Merge: each owner folds its buckets in scatter-worker order,
//     which reconstructs ascending transmitter order. Per-listener
//     counts are sums; the recorded sender is only consulted when the
//     final count is 1, in which case it is the unique contributor.
//   - Deliver/Observe touch disjoint per-listener state by contract,
//     and per-partition stats are summed in partition order.
//
// The parallel gate (previous round's transmitter count >= denseParGate)
// depends only on deterministic state, so the sequential fallback — the
// exact same partition loops, run inline — kicks in at the same rounds
// for every worker count.

import (
	"fmt"
	"math/bits"
	"sync"

	"radiocast/internal/graph"
	"radiocast/internal/obs"
)

// DenseProtocol is the bulk, structure-of-arrays counterpart of
// Protocol: one value owns the state of every node. The engine calls,
// per round r:
//
//  1. ListenWords(r) once, then AppendTransmitters(r, lo, hi, dst) for
//     each partition — concurrently when Config.Workers > 1, so it must
//     not touch shared mutable state beyond the [lo, hi) range's.
//  2. Packet(r, v) for transmitters whose packet is actually delivered
//     (unlike Network, undelivered packets are never materialized).
//  3. Deliver(r, v, out) for every listener with an observation —
//     possibly concurrently for different v, in no particular order.
//  4. EndRound(r) once, sequentially: apply the round's accumulated
//     effects (promote newly informed nodes, advance schedules).
type DenseProtocol interface {
	// AppendTransmitters appends the transmitting nodes in [lo, hi) for
	// round r to dst in ascending order and returns the extended slice.
	// lo is word-aligned (multiple of 64); hi is word-aligned or n.
	AppendTransmitters(r int64, lo, hi NodeID, dst []NodeID) []NodeID
	// ListenWords returns the listener bitset for round r as 64-bit
	// words (bit j of word i = node 64i+j), ⌈n/64⌉ words with zero tail
	// bits. The engine reads it throughout the round and additionally
	// masks out transmitters, so the protocol may report "every
	// non-informed node" style supersets cheaply.
	ListenWords(r int64) []uint64
	// Packet returns what node v transmits in round r. Called only for
	// v that AppendTransmitters reported this round; must be stable
	// within the round and is called concurrently.
	Packet(r int64, v NodeID) Packet
	// Deliver hands listener v its observation for round r (a packet,
	// or ⊤ under collision detection). Calls for distinct v may be
	// concurrent and in any order; the effect must be confined to
	// v-local state (per-node array slots, v's own bitset bit) and be
	// independent of delivery order within the round. Cross-node
	// effects belong in EndRound.
	Deliver(r int64, v NodeID, out Outcome)
	// EndRound runs sequentially after all deliveries of round r.
	EndRound(r int64)
}

// denseParGate is the minimum previous-round transmitter count at
// which a multi-worker Dense actually fans out; below it the partition
// loops run inline (identical results, no synchronization cost).
const denseParGate = 64

// hearEvt is one surviving transmission reaching one listener.
type hearEvt struct {
	to, from NodeID
}

// partStats accumulates one partition's (or scatter worker's) counter
// deltas for the current round; summed into Stats in index order.
type partStats struct {
	deliveries int64
	collisions int64
	dropped    int64
	jammed     int64
}

// Dense runs a DenseProtocol over a graph. Create with NewDense, drive
// with Step/Run/RunUntil, and Close when done (Close stops the worker
// pool; it is a no-op for Workers <= 1).
//
// Documented deviations from Network: every node is polled every round
// (no sleeping — the SoA passes make polling O(words), so ActiveRounds
// counts rounds with at least one transmitter and Polls stays 0);
// Config.Tracer is ignored; MaxPacketBits is enforced on delivered
// packets rather than at transmission.
type Dense struct {
	g     *graph.Graph
	cfg   Config
	proto DenseProtocol

	offsets []int32
	edges   []NodeID
	n       int
	nWords  int

	parts        int // partition/worker count (>= 1)
	wordsPerPart int // words per partition (last may be short)

	round  int64
	stats  Stats
	lastTx int // previous round's transmitter count (parallel gate)

	txWords   []uint64   // current round's transmitter bitset
	txLists   [][]NodeID // per-partition transmitter lists (ascending)
	allTx     []NodeID   // concatenation, ascending node order
	keptTx    []NodeID   // channel path: survivors of source suppression
	listenW   []uint64   // this round's listener words (protocol-owned)
	effTx     []NodeID   // scatter input: allTx or keptTx
	hearStamp []int64    // round-stamped per-listener scratch
	hearCount []int32
	hearFrom  []NodeID
	buckets   [][]hearEvt // [scatterWorker*parts + ownerPartition]
	touched   [][]NodeID  // per-owner listeners first heard this round
	perPart   []partStats

	// Worker pool: spawned lazily on the first parallel round. Phase
	// dispatch is one channel send per worker per phase and one
	// WaitGroup wait — no per-round allocations.
	curRound int64
	phase    int
	work     []chan struct{}
	wg       sync.WaitGroup
	started  bool
	closed   bool
}

const (
	phaseCollect = iota
	phaseScatter
	phaseMerge   // ideal path: merge buckets + deliver
	phaseCount   // adverse path: merge buckets only
	phaseObserve // adverse path: channel-mediated sweep of all listeners
)

// NewDense creates a dense engine for proto over g. cfg.Workers > 1
// enables the partitioned parallel passes (byte-identical results at
// any count); cfg.Tracer is ignored.
func NewDense(g *graph.Graph, cfg Config, proto DenseProtocol) *Dense {
	n := g.N()
	nWords := (n + 63) / 64
	parts := cfg.Workers
	if parts < 1 {
		parts = 1
	}
	if parts > nWords && nWords > 0 {
		parts = nWords // a partition needs at least one word
	}
	if nWords == 0 {
		parts = 1
	}
	offsets, edges := g.CSR()
	d := &Dense{
		g:            g,
		cfg:          cfg,
		proto:        proto,
		offsets:      offsets,
		edges:        edges,
		n:            n,
		nWords:       nWords,
		parts:        parts,
		wordsPerPart: (nWords + parts - 1) / parts,
		txWords:      make([]uint64, nWords),
		txLists:      make([][]NodeID, parts),
		hearStamp:    make([]int64, n),
		hearCount:    make([]int32, n),
		hearFrom:     make([]NodeID, n),
		buckets:      make([][]hearEvt, parts*parts),
		touched:      make([][]NodeID, parts),
		perPart:      make([]partStats, parts),
	}
	for i := range d.hearStamp {
		d.hearStamp[i] = -1
	}
	return d
}

// Close stops the worker pool. The engine must not be stepped after
// Close. Safe to call multiple times and on never-parallel engines.
func (d *Dense) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.started {
		for _, c := range d.work {
			if c != nil { // slot 0 runs on the stepping goroutine
				close(c)
			}
		}
	}
}

// Graph returns the underlying graph.
func (d *Dense) Graph() *graph.Graph { return d.g }

// Reset rewinds the engine to its post-NewDense state — round counter,
// statistics, transmitter bitset and lists, stamps, the parallel gate —
// and installs proto for the next run, without reallocating any scratch
// or restarting the worker pool. A Reset-reused run is byte-identical
// to a freshly constructed engine with the same configuration. The
// protocol is taken fresh because dense protocols own all node state
// in SoA form; rewinding that state is the protocol's own business.
func (d *Dense) Reset(proto DenseProtocol) {
	d.proto = proto
	d.round = 0
	d.stats = Stats{}
	d.lastTx = 0
	for i := range d.txWords {
		d.txWords[i] = 0
	}
	for p := range d.txLists {
		d.txLists[p] = d.txLists[p][:0]
	}
	d.allTx = d.allTx[:0]
	d.keptTx = d.keptTx[:0]
	d.effTx = nil
	d.listenW = nil
	for i := range d.hearStamp {
		d.hearStamp[i] = -1
	}
}

// Retopo swaps the engine's topology in place: the scatter pass
// immediately follows the new CSR while partitioning, buckets, stamps,
// the worker pool, and the bound protocol are untouched. The node
// count must be unchanged (len(offsets) == n+1) — that is what keeps
// the word partitioning and per-node scratch valid; pass the arrays of
// graph.Graph.CSR on a same-n graph.
//
// Retopo composes with Reset in either order (Reset rewinds run state,
// Retopo swaps adjacency) and is legal mid-run. Note that dense
// protocols typically hold their own adjacency-derived state (degrees,
// trees); a topology swap usually pairs with Reset and a protocol
// built on the new graph. Graph() keeps returning the construction-
// time graph.
func (d *Dense) Retopo(offsets []int32, edges []NodeID) {
	if len(offsets) != len(d.offsets) {
		panic(fmt.Sprintf("radio: Retopo with %d offsets, want %d (node count must be unchanged)",
			len(offsets), len(d.offsets)))
	}
	d.offsets = offsets
	d.edges = edges
}

// Round returns the current round number (the next round to execute).
func (d *Dense) Round() int64 { return d.round }

// Stats returns a copy of the run counters.
func (d *Dense) Stats() Stats { return d.stats }

// partNodeRange returns partition p's node range [lo, hi).
func (d *Dense) partNodeRange(p int) (NodeID, NodeID) {
	lo := p * d.wordsPerPart * 64
	hi := (p + 1) * d.wordsPerPart * 64
	if lo > d.n {
		lo = d.n
	}
	if hi > d.n {
		hi = d.n
	}
	return NodeID(lo), NodeID(hi)
}

// owner returns the partition owning node u's word.
func (d *Dense) owner(u NodeID) int { return int(u>>6) / d.wordsPerPart }

// evenChunk returns chunk w of total split into parts contiguous
// near-equal pieces.
func evenChunk(total, parts, w int) (int, int) {
	lo := total * w / parts
	hi := total * (w + 1) / parts
	return lo, hi
}

// ensureWorkers lazily spawns the pool (parts-1 goroutines; chunk 0 of
// every phase runs on the stepping goroutine).
func (d *Dense) ensureWorkers() {
	if d.started {
		return
	}
	d.started = true
	d.work = make([]chan struct{}, d.parts)
	for w := 1; w < d.parts; w++ {
		c := make(chan struct{}, 1)
		d.work[w] = c
		go func(w int, c chan struct{}) {
			for range c {
				d.exec(d.phase, d.curRound, w)
				d.wg.Done()
			}
		}(w, c)
	}
}

// runPhase executes one phase across all partitions — fanned out when
// parallel, inline otherwise. The same per-partition code runs either
// way, which is what makes the gate invisible in the results.
func (d *Dense) runPhase(phase int, r int64, parallel bool) {
	if parallel && d.parts > 1 {
		d.ensureWorkers()
		d.phase = phase
		d.curRound = r
		d.wg.Add(d.parts - 1)
		for w := 1; w < d.parts; w++ {
			d.work[w] <- struct{}{}
		}
		d.exec(phase, r, 0)
		d.wg.Wait()
		return
	}
	for w := 0; w < d.parts; w++ {
		d.exec(phase, r, w)
	}
}

func (d *Dense) exec(phase int, r int64, w int) {
	switch phase {
	case phaseCollect:
		d.execCollect(r, w)
	case phaseScatter:
		d.execScatter(r, w)
	case phaseMerge:
		d.execMerge(r, w, true)
	case phaseCount:
		d.execMerge(r, w, false)
	case phaseObserve:
		d.execObserve(r, w)
	}
}

// execCollect clears partition w's previous transmitter bits and
// gathers this round's transmitters for its node range.
func (d *Dense) execCollect(r int64, w int) {
	lst := d.txLists[w]
	for _, v := range lst {
		d.txWords[v>>6] &^= 1 << (uint(v) & 63)
	}
	lo, hi := d.partNodeRange(w)
	lst = d.proto.AppendTransmitters(r, lo, hi, lst[:0])
	prev := lo - 1
	for _, v := range lst {
		if v <= prev || v >= hi {
			panic(fmt.Sprintf("radio: AppendTransmitters violated order/range: %d after %d in [%d,%d)",
				v, prev, lo, hi))
		}
		prev = v
		d.txWords[v>>6] |= 1 << (uint(v) & 63)
	}
	d.txLists[w] = lst
}

// execScatter routes chunk w of the surviving transmitter list's
// neighborhood hits into per-owner buckets.
func (d *Dense) execScatter(r int64, w int) {
	ch := d.cfg.Channel
	st := &d.perPart[w]
	lo, hi := evenChunk(len(d.effTx), d.parts, w)
	base := w * d.parts
	for _, t := range d.effTx[lo:hi] {
		for _, u := range d.edges[d.offsets[t]:d.offsets[t+1]] {
			if (d.listenW[u>>6]&^d.txWords[u>>6])&(1<<(uint(u)&63)) == 0 {
				continue // transmitting or not listening
			}
			if ch != nil && ch.DropLink(r, t, u) {
				st.dropped++
				continue
			}
			o := d.owner(u)
			d.buckets[base+o] = append(d.buckets[base+o], hearEvt{to: u, from: t})
		}
	}
}

// execMerge folds owner partition w's buckets (in scatter-worker
// order, reconstructing ascending transmitter order) into the stamped
// per-listener count/sender scratch. On the ideal path (deliver=true)
// it then resolves each first-touched listener: unique sender →
// packet, >=2 with CD → ⊤.
func (d *Dense) execMerge(r int64, w int, deliver bool) {
	touched := d.touched[w][:0]
	for sw := 0; sw < d.parts; sw++ {
		b := d.buckets[sw*d.parts+w]
		for _, e := range b {
			if d.hearStamp[e.to] != r {
				d.hearStamp[e.to] = r
				d.hearCount[e.to] = 0
				touched = append(touched, e.to)
			}
			d.hearCount[e.to]++
			if d.hearCount[e.to] == 1 {
				d.hearFrom[e.to] = e.from
			}
		}
		d.buckets[sw*d.parts+w] = b[:0]
	}
	d.touched[w] = touched
	if !deliver {
		return
	}
	st := &d.perPart[w]
	for _, u := range touched {
		switch {
		case d.hearCount[u] == 1:
			from := d.hearFrom[u]
			pkt := d.proto.Packet(r, from)
			d.checkBits(u, pkt)
			d.proto.Deliver(r, u, Outcome{Packet: pkt, From: from})
			st.deliveries++
		case d.cfg.CollisionDetection:
			d.proto.Deliver(r, u, Outcome{Collision: true})
			st.collisions++
		}
	}
}

// execObserve is the channel-mediated finalization for owner partition
// w: every listener in its word range — not only neighbors of
// transmitters — is swept in ascending node order so the channel can
// inject observations into silent receptions, mirroring
// Network.deliverAdverse (over all listeners rather than awake ones:
// dense nodes are always awake).
func (d *Dense) execObserve(r int64, w int) {
	ch := d.cfg.Channel
	st := &d.perPart[w]
	wLo := w * d.wordsPerPart
	wHi := wLo + d.wordsPerPart
	if wHi > d.nWords {
		wHi = d.nWords
	}
	for wi := wLo; wi < wHi; wi++ {
		wordBits := d.listenW[wi] &^ d.txWords[wi]
		for wordBits != 0 {
			u := NodeID(wi<<6 + bits.TrailingZeros64(wordBits))
			wordBits &= wordBits - 1
			count := 0
			if d.hearStamp[u] == r {
				count = int(d.hearCount[u])
			}
			var out Outcome
			ok := false
			switch {
			case count == 1:
				from := d.hearFrom[u]
				out = Outcome{Packet: d.proto.Packet(r, from), From: from}
				ok = true
			case count >= 2 && d.cfg.CollisionDetection:
				out = Outcome{Collision: true}
				ok = true
			}
			ideal := outcomeClass(out, ok)
			fin, fok := ch.Observe(r, u, count, out, ok)
			if fok && fin.Collision && !d.cfg.CollisionDetection {
				fin, fok = Outcome{}, false // ⊤ is unobservable without CD
			}
			if fok && !fin.Collision && fin.Packet == nil {
				fin, fok = Outcome{}, false // no payload and no symbol: silence
			}
			if outcomeClass(fin, fok) != ideal {
				st.jammed++
			}
			if !fok {
				continue
			}
			if fin.Collision {
				st.collisions++
			} else {
				d.checkBits(u, fin.Packet)
				st.deliveries++
			}
			d.proto.Deliver(r, u, fin)
		}
	}
}

func (d *Dense) checkBits(u NodeID, pkt Packet) {
	if d.cfg.MaxPacketBits > 0 && pkt.Bits() > d.cfg.MaxPacketBits {
		panic(fmt.Sprintf("radio: packet %T of %d bits delivered to node %d exceeds budget %d",
			pkt, pkt.Bits(), u, d.cfg.MaxPacketBits))
	}
}

// Step executes exactly one round.
func (d *Dense) Step() {
	if d.closed {
		panic("radio: Step on closed Dense")
	}
	r := d.round
	// The gate reads last round's transmitter count — deterministic
	// state — so sequential and parallel execution agree on which
	// rounds fan out (and produce identical results either way).
	par := d.parts > 1 && d.lastTx >= denseParGate

	d.listenW = d.proto.ListenWords(r)
	if len(d.listenW) != d.nWords {
		panic(fmt.Sprintf("radio: ListenWords returned %d words, want %d", len(d.listenW), d.nWords))
	}
	d.runPhase(phaseCollect, r, par)

	totalTx := 0
	for _, lst := range d.txLists {
		totalTx += len(lst)
	}
	d.allTx = d.allTx[:0]
	for _, lst := range d.txLists {
		d.allTx = append(d.allTx, lst...)
	}
	d.stats.Transmissions += int64(totalTx)
	if totalTx > 0 {
		d.stats.ActiveRounds++
	}

	d.effTx = d.allTx
	ch := d.cfg.Channel
	if ch != nil {
		// Source suppression first, THEN RoundStart with the surviving
		// set, exactly as in Network.deliverAdverse. Both run
		// sequentially in ascending node order at any worker count.
		kept := d.keptTx[:0]
		for _, t := range d.allTx {
			if ch.SuppressTransmit(r, t) {
				d.stats.Dropped++
				continue
			}
			kept = append(kept, t)
		}
		d.keptTx = kept
		ch.RoundStart(r, kept)
		d.effTx = kept
	}

	d.runPhase(phaseScatter, r, par)
	if ch == nil {
		d.runPhase(phaseMerge, r, par)
	} else {
		d.runPhase(phaseCount, r, par)
		d.runPhase(phaseObserve, r, par)
	}

	for p := range d.perPart {
		st := &d.perPart[p]
		d.stats.Deliveries += st.deliveries
		d.stats.CollisionObs += st.collisions
		d.stats.Dropped += st.dropped
		d.stats.Jammed += st.jammed
		*st = partStats{}
	}

	d.proto.EndRound(r)
	d.lastTx = totalTx
	d.round = r + 1
	d.stats.Rounds = d.round
	// Frontier accounting mirrors Network.finishRound and runs on the
	// stepping goroutine from the already-merged global survivor list,
	// so it is deterministic at any worker count.
	surv := int64(len(d.effTx))
	if surv > 0 {
		d.stats.BusyRounds++
		if surv > d.stats.MaxFrontier {
			d.stats.MaxFrontier = surv
		}
	} else {
		d.stats.SilentRounds++
	}
	if o := d.cfg.Observer; o != nil {
		stride := d.cfg.ObserverStride
		if stride < 1 || r%stride == 0 {
			o.OnRound(d.stats.snapshot(r))
		}
	}
}

// SetObserver installs (or clears) the round observer and its stride;
// the same contract as Network.SetObserver.
func (d *Dense) SetObserver(o obs.RoundObserver, stride int64) {
	d.cfg.Observer = o
	d.cfg.ObserverStride = stride
}

// Run executes rounds until the round counter reaches limit.
func (d *Dense) Run(limit int64) {
	for d.round < limit {
		d.Step()
	}
}

// RunUntil executes rounds until pred returns true (checked after
// every round) or the counter reaches limit; it reports the round
// count at stop and whether pred was satisfied.
func (d *Dense) RunUntil(limit int64, pred func() bool) (int64, bool) {
	if pred() {
		return d.round, true
	}
	for d.round < limit {
		d.Step()
		if pred() {
			return d.round, true
		}
	}
	return d.round, false
}
