// Package radiotest is the shared twin-testing substrate for dense
// protocol ports: one place for the three correctness properties every
// port must carry, instead of per-package copies of the same loops.
//
//   - Run/Fingerprint: execute a dense run and capture everything
//     observable about it (rounds, completion, every Stats counter,
//     one int64 of per-node state — reception round, level, ...).
//   - WorkerInvariant: the Workers=k run must be byte-identical to the
//     Workers=1 run for every k — the dense engine's core determinism
//     contract.
//   - Twin: a sparse-engine run on the same seed/graph/channel stack
//     must agree with the dense run on every node's state. Stats are
//     deliberately NOT compared: dense ports may prune provably
//     inconsequential transmitters, which changes traffic counters but
//     never per-node dynamics.
//
// The sparse side of Twin is a closure driving a radio.Network itself
// (installing per-node protocols and running, or calling a layered
// runner like beep.RunLayering), so heterogeneous sparse stacks fit
// without the harness growing per-protocol knowledge.
package radiotest

import (
	"strconv"
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// DenseCase describes one dense run: the workload, the engine
// configuration, and how to build the protocol under test.
type DenseCase struct {
	Graph *graph.Graph
	// CD enables collision detection.
	CD bool
	// MaxPacketBits is the engine's packet-size budget (0 = unchecked).
	MaxPacketBits int
	// Workers is the dense worker count (0 and 1 are sequential).
	Workers int
	// Channel builds a fresh channel stack per run (nil = ideal).
	// Fresh-per-run matters: stacks may carry per-run state (jammer
	// budgets), and Run may be called many times per case.
	Channel func() radio.Channel
	// Limit caps the simulated rounds (0 = 1<<20).
	Limit int64
	// Build constructs the protocol and returns it with its completion
	// predicate and a per-node state extractor (the value compared by
	// WorkerInvariant and Twin — e.g. reception round or wave level).
	Build func() (proto radio.DenseProtocol, done func() bool, state func(graph.NodeID) int64)
}

// Fingerprint is everything observable about a finished dense run.
type Fingerprint struct {
	Rounds    int64
	Completed bool
	Stats     radio.Stats
	State     []int64
}

// Run executes the case once and fingerprints it.
func (c DenseCase) Run() Fingerprint {
	cfg := radio.Config{
		CollisionDetection: c.CD,
		MaxPacketBits:      c.MaxPacketBits,
		Workers:            c.Workers,
	}
	if c.Channel != nil {
		cfg.Channel = c.Channel()
	}
	limit := c.Limit
	if limit == 0 {
		limit = 1 << 20
	}
	proto, done, state := c.Build()
	eng := radio.NewDense(c.Graph, cfg, proto)
	defer eng.Close()
	rounds, completed := eng.RunUntil(limit, done)
	fp := Fingerprint{
		Rounds:    rounds,
		Completed: completed,
		Stats:     eng.Stats(),
		State:     make([]int64, c.Graph.N()),
	}
	for v := 0; v < c.Graph.N(); v++ {
		fp.State[v] = state(graph.NodeID(v))
	}
	return fp
}

// Equal fails the test unless got and want are byte-identical.
func Equal(t *testing.T, label string, got, want Fingerprint) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Completed != want.Completed {
		t.Fatalf("%s: rounds/completed = %d/%v, want %d/%v",
			label, got.Rounds, got.Completed, want.Rounds, want.Completed)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats = %+v, want %+v", label, got.Stats, want.Stats)
	}
	for v := range got.State {
		if got.State[v] != want.State[v] {
			t.Fatalf("%s: node %d state = %d, want %d", label, v, got.State[v], want.State[v])
		}
	}
}

// WorkerInvariant runs the case at Workers=1 as the baseline and
// asserts byte-identity at every count in workers. Returns the
// baseline so callers can layer further assertions on it.
func WorkerInvariant(t *testing.T, label string, c DenseCase, workers ...int) Fingerprint {
	t.Helper()
	c.Workers = 1
	base := c.Run()
	for _, w := range workers {
		c.Workers = w
		Equal(t, label+" workers="+strconv.Itoa(w), c.Run(), base)
	}
	return base
}

// Twin runs the dense case to completion, then hands a sparse
// radio.Network (same graph, CD, packet budget, and a fresh channel
// stack) plus the dense round count to the sparse closure, which
// drives the network and returns its own per-node state extractor.
// Per-node states must then agree everywhere. Returns the dense
// fingerprint.
func Twin(t *testing.T, label string, dense DenseCase,
	sparse func(nw *radio.Network, rounds int64) func(graph.NodeID) int64) Fingerprint {
	t.Helper()
	fp := dense.Run()
	if !fp.Completed {
		t.Fatalf("%s: dense run incomplete after %d rounds", label, fp.Rounds)
	}
	cfg := radio.Config{
		CollisionDetection: dense.CD,
		MaxPacketBits:      dense.MaxPacketBits,
	}
	if dense.Channel != nil {
		cfg.Channel = dense.Channel()
	}
	nw := radio.New(dense.Graph, cfg)
	state := sparse(nw, fp.Rounds)
	for v := 0; v < dense.Graph.N(); v++ {
		if got, want := state(graph.NodeID(v)), fp.State[v]; got != want {
			t.Fatalf("%s: node %d sparse state = %d, dense = %d (T=%d)",
				label, v, got, want, fp.Rounds)
		}
	}
	return fp
}
