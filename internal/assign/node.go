package assign

import (
	"math/rand"

	"radiocast/internal/decay"
	"radiocast/internal/radio"
	"radiocast/internal/recruit"
)

// Role distinguishes the two sides of a boundary.
type Role uint8

// Roles.
const (
	Red Role = iota + 1
	Blue
)

// Node is the per-node state machine for one boundary. Drive it with
// Act/Observe at boundary-local offsets in [0, Params.BoundaryRounds()).
//
// A node acting as Blue must know its own rank (computed from its red
// role at the boundary below, or 1 for leaves). A node acting as Red
// learns its rank during the run; ranks are final once the boundary
// completes (RedRanked/RedRank), with unranked reds becoming rank-1
// leaves unless a deeper boundary already ranked them.
type Node struct {
	p    Params
	ly   layout // cached schedule arithmetic (hot: every Act/Observe)
	id   NodeID
	role Role
	rng  *rand.Rand

	// Shared window tracking for lazy transitions.
	curRank  int
	curEpoch int

	// Blue state.
	blueRank   int32
	assigned   bool
	parent     NodeID
	parentRank int32
	tempBound  bool // temporarily matched for the remainder of the epoch
	isLoner    bool
	recB       *recruit.Blue
	recBWin    Window

	// Red state.
	ranked        bool
	redRank       int32
	sameRankChild bool // ranked via ClassOne: unique child shares the rank
	active        bool // activated by identification for the current rank
	markedAt      int  // epoch at which the red was marked (-1 = unmarked)
	lonerParent   bool
	brisk         bool
	recR          *recruit.Red
	recRWin       Window

	// ownTag tags this node's transmissions; peerTag is the expected
	// tag on counterpart packets (level mod 4 of the other side). Both
	// zero by default — the sequential construction never sets them.
	ownTag  int32
	peerTag int32

	// Boxed packets reused across transmissions: ident/loner/ping are
	// constant per node, mop re-boxes only when the rank changes.
	identPkt radio.Packet
	lonerPkt radio.Packet
	pingPkt  radio.Packet
	mopPkt   radio.Packet
	mopRank  int32
}

// NewNode creates a boundary state machine.
//
// For Blue, blueRank is the node's (already known) rank. For Red,
// preRanked/preRank carry a rank assigned by a deeper boundary — the
// GST construction processes boundaries bottom-up, so a level-l node
// first acts as Red for boundary (l, l+1) and later as Blue for
// (l-1, l); here red ranks are always learned fresh, so preRanked is
// false in the composed construction and exists for testing.
func NewNode(p Params, id NodeID, role Role, blueRank int32, rng *rand.Rand) *Node {
	return NewTaggedNode(p, id, role, blueRank, rng, 0, 0)
}

// NewTaggedNode creates a boundary state machine scoped to (own, peer)
// level-mod-4 tags: own stamps every transmission, peer filters every
// counterpart reception. The pipelined construction (Section 2.2.4)
// uses tags to keep concurrently audible boundaries from
// cross-binding; the sequential construction creates nodes through
// NewNode with both tags zero, which reproduces the untagged protocol
// exactly.
func NewTaggedNode(p Params, id NodeID, role Role, blueRank int32, rng *rand.Rand, own, peer int32) *Node {
	nd := &Node{
		p:        p,
		ly:       p.layout(),
		id:       id,
		role:     role,
		rng:      rng,
		curRank:  -1,
		curEpoch: -1,
		blueRank: blueRank,
		parent:   -1,
		markedAt: -1,
		ownTag:   own,
		peerTag:  peer,
	}
	switch {
	case role == Blue:
		nd.identPkt = IdentPacket{Blue: id, Tag: own}
		nd.lonerPkt = LonerPacket{Blue: id, Tag: own}
	case own == 0:
		nd.pingPkt = untaggedPing
	default:
		nd.pingPkt = PingPacket{Tag: own}
	}
	return nd
}

// untaggedPing is the shared boxed zero-tag ping: ping contents don't
// depend on the node, so untagged boundaries never pay a per-node
// boxing for it.
var untaggedPing radio.Packet = PingPacket{}

// SetBlueRank updates the blue node's rank. The pipelined construction
// calls this at every rank-window start: a blue's rank is learned
// incrementally by its red role at the boundary below, and the
// schedule skew guarantees any rank >= the window's rank is already
// final when the window opens.
func (nd *Node) SetBlueRank(r int32) { nd.blueRank = r }

// Blue results.

// Assigned reports whether the blue node has a permanent parent.
func (nd *Node) Assigned() bool { return nd.assigned }

// Parent returns the blue node's parent (-1 if unassigned).
func (nd *Node) Parent() NodeID { return nd.parent }

// ParentRank returns the learned rank of the parent.
func (nd *Node) ParentRank() int32 { return nd.parentRank }

// Red results.

// RedRanked reports whether the red node received a rank.
func (nd *Node) RedRanked() bool { return nd.ranked }

// RedRank returns the red node's rank (valid when RedRanked).
func (nd *Node) RedRank() int32 { return nd.redRank }

// RedHasSameRankChild reports whether the red's unique maximal child
// shares its rank — exactly when the red was ranked with a single
// recruit (rank i via one rank-i child). This identifies non-terminal
// fast-stretch nodes for the schedules of Section 3.2 and Lemma 3.10.
func (nd *Node) RedHasSameRankChild() bool { return nd.sameRankChild }

// sync processes window transitions: finalizing recruiting runs that
// ended and resetting per-epoch / per-rank state.
func (nd *Node) sync(pos Pos) {
	if pos.Rank != nd.curRank {
		nd.finishRecruits(pos)
		nd.curRank = pos.Rank
		nd.curEpoch = -2 // force epoch reset below
		nd.active = false
		nd.markedAt = -1
	}
	if pos.Epoch != nd.curEpoch {
		nd.finishRecruits(pos)
		nd.curEpoch = pos.Epoch
		// Epoch start: dissolve temporary matches, reset stage I state,
		// flip the brisk/lazy coin.
		nd.tempBound = false
		nd.isLoner = false
		nd.lonerParent = false
		nd.brisk = nd.rng.Intn(2) == 0
	}
	// Finalize a recruiting run when its window has passed.
	if nd.recB != nil && pos.Win != nd.recBWin {
		nd.finishBlueRecruit()
	}
	if nd.recR != nil && pos.Win != nd.recRWin {
		nd.finishRedRecruit()
	}
}

// finishRecruits force-finalizes any outstanding run (rank or epoch
// boundary crossed, including jumps over windows).
func (nd *Node) finishRecruits(Pos) {
	if nd.recB != nil {
		nd.finishBlueRecruit()
	}
	if nd.recR != nil {
		nd.finishRedRecruit()
	}
}

func (nd *Node) finishBlueRecruit() {
	b, win := nd.recB, nd.recBWin
	nd.recB = nil
	if !b.Recruited() {
		return
	}
	i := int32(nd.curRank)
	switch {
	case win == WinPart1:
		// Loner-parent assignments are always permanent.
		nd.assigned = true
		nd.parent = b.Parent()
		if b.ParentClass() == recruit.ClassMany {
			nd.parentRank = i + 1
		} else {
			nd.parentRank = i
		}
	case b.ParentClass() == recruit.ClassMany:
		// Not an only child: permanent, parent rank i+1.
		nd.assigned = true
		nd.parent = b.Parent()
		nd.parentRank = i + 1
	default:
		// Only child: temporarily matched for this epoch.
		nd.tempBound = true
	}
}

func (nd *Node) finishRedRecruit() {
	r, win := nd.recR, nd.recRWin
	nd.recR = nil
	i := int32(nd.curRank)
	switch {
	case win == WinPart1:
		// Loner-parents are always marked; rank by recruit count.
		nd.markedAt = nd.curEpoch
		nd.ranked = true
		if r.Class() == recruit.ClassMany {
			nd.redRank = i + 1
		} else {
			nd.redRank = i
			nd.sameRankChild = true
		}
	case r.Class() == recruit.ClassMany:
		nd.markedAt = nd.curEpoch
		nd.ranked = true
		nd.redRank = i + 1
	case r.Class() == recruit.ClassZero:
		// Recruited nothing: marked and inactive, but unranked.
		nd.markedAt = nd.curEpoch
	default:
		// Exactly one recruit: temporary match; stay active.
	}
}

// blueActive reports whether the blue participates in the current
// rank's epochs.
func (nd *Node) blueActive(pos Pos) bool {
	return !nd.assigned && int32(pos.Rank) == nd.blueRank && !nd.tempBound
}

// redActive reports whether the red participates in the current epoch.
func (nd *Node) redActive() bool {
	return nd.active && !nd.ranked && nd.markedAt < 0
}

// Act drives the node at boundary-local offset off.
func (nd *Node) Act(off int64) radio.Action {
	pos := nd.ly.locate(off)
	nd.sync(pos)
	if nd.role == Blue {
		return nd.blueAct(pos)
	}
	return nd.redAct(pos)
}

// Observe drives the node with the outcome at offset off.
func (nd *Node) Observe(off int64, out radio.Outcome) {
	pos := nd.ly.locate(off)
	nd.sync(pos)
	if nd.role == Blue {
		nd.blueObserve(pos, out)
	} else {
		nd.redObserve(pos, out)
	}
}

func (nd *Node) blueAct(pos Pos) radio.Action {
	switch pos.Win {
	case WinIdent:
		if !nd.assigned && int32(pos.Rank) == nd.blueRank {
			slot := int(pos.Off) % nd.p.L
			if nd.rng.Float64() < decay.TransmitProb(slot) {
				return radio.Transmit(nd.identPkt)
			}
		}
	case WinLoner:
		if nd.blueActive(pos) && nd.isLoner {
			slot := int(pos.Off) % nd.p.L
			if nd.rng.Float64() < decay.TransmitProb(slot) {
				return radio.Transmit(nd.lonerPkt)
			}
		}
	case WinPart1, WinPart2, WinPart3:
		if nd.recB == nil && pos.Off == 0 && nd.blueActive(pos) {
			nd.recB = recruit.NewBlue(nd.p.Rec, nd.id, nd.rng)
			nd.recB.SetWantTag(nd.peerTag)
			nd.recBWin = pos.Win
		}
		if nd.recB != nil && nd.recBWin == pos.Win {
			return nd.recB.Act(pos.Off)
		}
	}
	return radio.Listen
}

func (nd *Node) blueObserve(pos Pos, out radio.Outcome) {
	switch pos.Win {
	case WinPing:
		// A clean message means exactly one active red: a loner.
		if nd.blueActive(pos) && out.Packet != nil {
			if ping, ok := out.Packet.(PingPacket); ok && ping.Tag == nd.peerTag {
				nd.isLoner = true
			}
		}
	case WinPart1, WinPart2, WinPart3:
		if nd.recB != nil && nd.recBWin == pos.Win {
			nd.recB.Observe(pos.Off, out)
		}
	case WinMop:
		if nd.assigned || nd.tempBound {
			return
		}
		if mop, ok := out.Packet.(MopPacket); ok && mop.Tag == nd.peerTag && mop.Rank > nd.blueRank {
			nd.assigned = true
			nd.parent = mop.Red
			nd.parentRank = mop.Rank
		}
	}
}

func (nd *Node) redAct(pos Pos) radio.Action {
	switch pos.Win {
	case WinPing:
		if nd.redActive() && pos.Off == 0 {
			return radio.Transmit(nd.pingPkt)
		}
	case WinPart1:
		if nd.recR == nil && pos.Off == 0 && nd.redActive() && nd.lonerParent {
			nd.recR = recruit.NewRed(nd.p.Rec, nd.id, nd.rng)
			nd.recR.SetTag(nd.ownTag)
			nd.recRWin = pos.Win
		}
		if nd.recR != nil && nd.recRWin == pos.Win {
			return nd.recR.Act(pos.Off)
		}
	case WinPart2, WinPart3:
		wantBrisk := pos.Win == WinPart2
		if nd.recR == nil && pos.Off == 0 && nd.redActive() && !nd.lonerParent && nd.brisk == wantBrisk {
			nd.recR = recruit.NewRed(nd.p.Rec, nd.id, nd.rng)
			nd.recR.SetTag(nd.ownTag)
			nd.recRWin = pos.Win
		}
		if nd.recR != nil && nd.recRWin == pos.Win {
			return nd.recR.Act(pos.Off)
		}
	case WinMop:
		if nd.mopEligible(pos) {
			slot := int(pos.Off) % nd.p.L
			if nd.rng.Float64() < decay.TransmitProb(slot) {
				if nd.mopPkt == nil || nd.mopRank != nd.redRank {
					nd.mopPkt = MopPacket{Red: nd.id, Rank: nd.redRank, Tag: nd.ownTag}
					nd.mopRank = nd.redRank
				}
				return radio.Transmit(nd.mopPkt)
			}
		}
	}
	return radio.Listen
}

// mopEligible reports whether the red broadcasts in the current mop
// window: it was marked-with-rank in this very epoch (rank i or i+1).
func (nd *Node) mopEligible(pos Pos) bool {
	return nd.markedAt == pos.Epoch && nd.ranked &&
		(nd.redRank == int32(pos.Rank) || nd.redRank == int32(pos.Rank)+1)
}

func (nd *Node) redObserve(pos Pos, out radio.Outcome) {
	switch pos.Win {
	case WinIdent:
		if nd.ranked {
			return
		}
		if ident, ok := out.Packet.(IdentPacket); ok && ident.Tag == nd.peerTag {
			nd.active = true
		}
	case WinLoner:
		if !nd.redActive() {
			return
		}
		if loner, ok := out.Packet.(LonerPacket); ok && loner.Tag == nd.peerTag {
			nd.lonerParent = true
		}
	case WinPart1, WinPart2, WinPart3:
		if nd.recR != nil && nd.recRWin == pos.Win {
			nd.recR.Observe(pos.Off, out)
		}
	}
}
