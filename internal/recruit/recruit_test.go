package recruit

import (
	"fmt"
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// bipartite builds a random bipartite graph: nodes 0..nRed-1 are red,
// nRed..nRed+nBlue-1 are blue. Every blue gets at least one red
// neighbor; extra edges appear with probability p.
func bipartite(nRed, nBlue int, p float64, seed uint64) *graph.Graph {
	r := rng.New(seed, 0xb1)
	b := graph.NewBuilder(nRed + nBlue)
	for u := 0; u < nBlue; u++ {
		blue := graph.NodeID(nRed + u)
		b.AddEdge(graph.NodeID(r.Intn(nRed)), blue)
		for v := 0; v < nRed; v++ {
			if r.Float64() < p {
				b.AddEdge(graph.NodeID(v), blue)
			}
		}
	}
	return b.Build()
}

// runRecruiting executes one full recruiting run and returns the
// machines for inspection.
func runRecruiting(t *testing.T, g *graph.Graph, nRed int, params Params, seed uint64) ([]*Red, []*Blue) {
	t.Helper()
	nw := radio.New(g, radio.Config{})
	reds := make([]*Red, nRed)
	blues := make([]*Blue, g.N()-nRed)
	for v := 0; v < nRed; v++ {
		reds[v] = NewRed(params, graph.NodeID(v), rng.New(seed, 0xed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &RedProtocol{R: reds[v]})
	}
	for u := nRed; u < g.N(); u++ {
		blues[u-nRed] = NewBlue(params, graph.NodeID(u), rng.New(seed, 0xb1e, uint64(u)))
		nw.SetProtocol(graph.NodeID(u), &BlueProtocol{B: blues[u-nRed]})
	}
	nw.Run(params.Rounds())
	return reds, blues
}

// verifyProperties checks Lemma 2.3 (a), (b), (c) exactly.
func verifyProperties(t *testing.T, g *graph.Graph, nRed int, reds []*Red, blues []*Blue) {
	t.Helper()
	children := make(map[radio.NodeID][]radio.NodeID)
	for i, b := range blues {
		blueID := graph.NodeID(nRed + i)
		if !b.Recruited() {
			t.Fatalf("property (a) violated: blue %d not recruited", blueID)
		}
		if !g.HasEdge(blueID, b.Parent()) {
			t.Fatalf("blue %d recruited by non-neighbor %d", blueID, b.Parent())
		}
		children[b.Parent()] = append(children[b.Parent()], blueID)
	}
	for v, red := range reds {
		got := red.Class()
		var want Class
		switch len(children[graph.NodeID(v)]) {
		case 0:
			want = ClassZero
		case 1:
			want = ClassOne
		default:
			want = ClassMany
		}
		if got != want {
			t.Fatalf("property (b) violated: red %d class %v, want %v (%d children)",
				v, got, want, len(children[graph.NodeID(v)]))
		}
		if want == ClassOne && red.OnlyChild() != children[graph.NodeID(v)][0] {
			t.Fatalf("red %d only-child %d, want %d", v, red.OnlyChild(), children[graph.NodeID(v)][0])
		}
	}
	for i, b := range blues {
		blueID := graph.NodeID(nRed + i)
		actual := len(children[b.Parent()])
		var want Class
		if actual == 1 {
			want = ClassOne
		} else {
			want = ClassMany
		}
		if b.ParentClass() != want {
			t.Fatalf("property (c) violated: blue %d sees parent class %v, parent has %d children",
				blueID, b.ParentClass(), actual)
		}
	}
}

func TestRecruitingOnRandomBipartite(t *testing.T) {
	cases := []struct {
		nRed, nBlue int
		p           float64
	}{
		{5, 5, 0.2},
		{10, 20, 0.15},
		{20, 10, 0.1},
		{30, 30, 0.05},
		{8, 40, 0.3},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("r%d-b%d", c.nRed, c.nBlue), func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				g := bipartite(c.nRed, c.nBlue, c.p, seed)
				params := DefaultParams(c.nRed+c.nBlue, 2)
				reds, blues := runRecruiting(t, g, c.nRed, params, seed)
				verifyProperties(t, g, c.nRed, reds, blues)
			}
		})
	}
}

func TestRecruitingSingleRedManyBlues(t *testing.T) {
	// One red adjacent to many blues: red must classify MANY and all
	// blues must know it.
	const nBlue = 25
	g := bipartite(1, nBlue, 1.0, 7)
	params := DefaultParams(nBlue+1, 2)
	reds, blues := runRecruiting(t, g, 1, params, 7)
	verifyProperties(t, g, 1, reds, blues)
	if reds[0].Class() != ClassMany {
		t.Fatalf("red class %v, want many", reds[0].Class())
	}
	for _, b := range blues {
		if b.ParentClass() != ClassMany {
			t.Fatal("blue does not know parent recruited many")
		}
	}
}

func TestRecruitingPerfectMatching(t *testing.T) {
	// Disjoint red-blue pairs: every red must classify ONE and every
	// blue must know it is the only child.
	const pairs = 12
	b := graph.NewBuilder(2 * pairs)
	for i := 0; i < pairs; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(pairs+i))
	}
	g := b.Build()
	params := DefaultParams(2*pairs, 2)
	reds, blues := runRecruiting(t, g, pairs, params, 3)
	verifyProperties(t, g, pairs, reds, blues)
	for i, r := range reds {
		if r.Class() != ClassOne {
			t.Fatalf("pair red %d class %v, want one", i, r.Class())
		}
	}
	for i, bl := range blues {
		if bl.ParentClass() != ClassOne {
			t.Fatalf("pair blue %d parent class %v, want one", i, bl.ParentClass())
		}
	}
}

func TestRecruitingIsolatedRed(t *testing.T) {
	// A red with no blue neighbors must classify ZERO.
	b := graph.NewBuilder(3)
	b.AddEdge(1, 2) // red 1 - blue 2; red 0 isolated
	g := b.Build()
	// n=3 gives L=2: the schedule is so short that the w.h.p. guarantee
	// needs a larger Θ-constant, as the paper's asymptotics only bite
	// for non-degenerate n.
	params := DefaultParams(3, 8)
	reds, blues := runRecruiting(t, g, 2, params, 5)
	if reds[0].Class() != ClassZero {
		t.Fatalf("isolated red class %v", reds[0].Class())
	}
	if reds[1].Class() != ClassOne || !blues[0].Recruited() {
		t.Fatal("pair not formed")
	}
}

func TestParamsSchedule(t *testing.T) {
	p := DefaultParams(256, 2)
	if p.L != 8 {
		t.Fatalf("L = %d", p.L)
	}
	if p.Iterations() != 2*8*8 {
		t.Fatalf("iterations = %d", p.Iterations())
	}
	wantRounds := int64(p.Iterations())*int64(p.L+2) + int64(p.Iterations())
	if p.Rounds() != wantRounds {
		t.Fatalf("Rounds = %d, want %d", p.Rounds(), wantRounds)
	}
	// Schedule is Θ(log^3 n): for n=256, well under (log n)^3 * 32.
	if p.Rounds() > 32*8*8*8 {
		t.Fatalf("rounds %d exceed Θ(log^3 n) envelope", p.Rounds())
	}
}

func TestLocateRoundTrip(t *testing.T) {
	p := DefaultParams(64, 1)
	seenReplay := false
	for off := int64(0); off < p.Rounds(); off++ {
		pos := p.locate(off)
		if pos.replay {
			seenReplay = true
			if pos.iter < 0 || pos.iter >= p.Iterations() {
				t.Fatalf("replay iter %d out of range", pos.iter)
			}
		} else {
			if seenReplay {
				t.Fatal("iteration phase after replay phase")
			}
			if pos.slot < 0 || pos.slot > p.L+1 {
				t.Fatalf("slot %d out of range", pos.slot)
			}
		}
	}
	if !seenReplay {
		t.Fatal("no replay phase")
	}
}

func TestOfferProbSweep(t *testing.T) {
	p := DefaultParams(64, 1)
	if p.offerProb(0) != 0.5 {
		t.Fatalf("first density %f", p.offerProb(0))
	}
	last := p.offerProb(p.Iterations() - 1)
	want := 1 / float64(int64(1)<<uint(p.Densities))
	if last != want {
		t.Fatalf("last density %g, want %g", last, want)
	}
}

func BenchmarkRecruiting30x30(b *testing.B) {
	g := bipartite(30, 30, 0.1, 1)
	params := DefaultParams(60, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := radio.New(g, radio.Config{})
		for v := 0; v < 30; v++ {
			nw.SetProtocol(graph.NodeID(v), &RedProtocol{R: NewRed(params, graph.NodeID(v), rng.New(uint64(i), uint64(v)))})
		}
		for u := 30; u < 60; u++ {
			nw.SetProtocol(graph.NodeID(u), &BlueProtocol{B: NewBlue(params, graph.NodeID(u), rng.New(uint64(i), 999, uint64(u)))})
		}
		nw.Run(params.Rounds())
	}
}
