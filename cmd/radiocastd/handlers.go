package main

// The HTTP surface. Two muxes: the API mux (jobs, SSE, metrics,
// health) and the ops mux (same metrics/health plus net/http/pprof),
// so profiling endpoints never ride the job-facing port.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"

	"radiocast/internal/obs"
)

// server bundles the handler dependencies.
type server struct {
	mgr     *Manager
	metrics *obs.Registry
	ready   atomic.Bool
}

// newServer wires the process gauges and returns the handler bundle.
func newServer(mgr *Manager, reg *obs.Registry) *server {
	s := &server{mgr: mgr, metrics: reg}
	reg.GaugeFunc("radiocastd_heap_alloc_bytes", "live heap bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("radiocastd_goroutines", "goroutine count", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	s.ready.Store(true)
	return s
}

// apiMux is the job-facing mux.
func (s *server) apiMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.addOps(mux)
	return mux
}

// opsMux carries metrics/health plus pprof.
func (s *server) opsMux() *http.ServeMux {
	mux := http.NewServeMux()
	s.addOps(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) addOps(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.mgr.Submit(spec)
	if err != nil {
		var se *specError
		if errors.As(err, &se) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "state": StateQueued})
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.Jobs()})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.mgr.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents streams the job's progress as Server-Sent Events:
// replayed history first, then live events until the job finishes or
// the client hangs up. Event types ride the SSE `event:` field
// (state, round, epoch, done, failed); data is the Event JSON.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.mgr.Get(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := job.subscribe()
	defer cancel()
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	fl.Flush()
	if live == nil { // job already terminal: history is complete
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // job finished; history already carried the done event
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	return err
}
