package bitvec

import "testing"

// TestWordsAliasing pins the word-level seam: Words aliases the backing
// storage (writes through it are visible to Get) with the documented
// bit layout (bit j of word i is bit 64·i+j).
func TestWordsAliasing(t *testing.T) {
	v := New(130)
	w := v.Words()
	if len(w) != 3 {
		t.Fatalf("Words() length = %d, want 3", len(w))
	}
	w[1] = 1 << 5
	if !v.Get(64 + 5) {
		t.Fatal("word write not visible through Get")
	}
	v.Set(129)
	if w[2] != 1<<1 {
		t.Fatalf("bit 129 not at word 2 bit 1: words[2] = %#x", w[2])
	}
}

// TestOnes pins the all-set fill and its tail-zero invariant: every bit
// below Len is set, none above it, so PopCount and word-level scans
// agree.
func TestOnes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 256} {
		v := New(n)
		v.Ones()
		if got := v.PopCount(); got != n {
			t.Fatalf("n=%d: PopCount after Ones = %d", n, got)
		}
		if n%64 != 0 && n > 0 {
			last := v.Words()[len(v.Words())-1]
			if last != (1<<(uint(n)%64))-1 {
				t.Fatalf("n=%d: tail bits not trimmed: %#x", n, last)
			}
		}
		for i := 0; i < n; i++ {
			if !v.Get(i) {
				t.Fatalf("n=%d: bit %d not set", n, i)
			}
		}
	}
}
