package gstdist

import (
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// Failure injection: a deliberately starved schedule (one epoch per
// rank) must either still produce a valid GST or fail *detectably*
// through Tree.Validate — never corrupt silently. This is the safety
// contract callers rely on when tuning Θ-constants.
func TestStarvedScheduleFailsDetectably(t *testing.T) {
	g := graph.GNP(40, 0.12, 13)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 1, LayerCD, false)
	cfg.Assign.EpochsOverride = 1
	detected, valid := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		protos := make([]*Protocol, g.N())
		for v := 0; v < g.N(); v++ {
			protos[v] = New(cfg, graph.NodeID(v), v == 0, 0, rng.New(seed, uint64(v)))
			nw.SetProtocol(graph.NodeID(v), protos[v])
		}
		nw.Run(cfg.TotalRounds())
		tree := gst.NewTree(g, []graph.NodeID{0})
		for v := 0; v < g.N(); v++ {
			res := protos[v].Result()
			tree.Level[v] = res.Level
			tree.Parent[v] = res.Parent
			tree.Rank[v] = res.Rank
		}
		if err := tree.Validate(); err != nil {
			detected++
		} else {
			valid++
		}
	}
	t.Logf("starved schedule: %d valid, %d detected-invalid of 6", valid, detected)
	// The point is not that starvation always fails — it is that when
	// it fails, validation catches it. Both counters are legitimate;
	// a panic or a false 'valid' on a broken tree would have failed
	// the run already (Validate checks every invariant).
}

// A too-short wave horizon must leave unreached nodes visibly at
// level -1, not mislabeled.
func TestShortHorizonDetectable(t *testing.T) {
	g := graph.Path(20)
	cfg := DefaultConfig(g.N(), 5, 1, LayerCD, false) // true ecc is 19
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = New(cfg, graph.NodeID(v), v == 0, 0, rng.New(3, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	nw.Run(cfg.TotalRounds())
	unreached := 0
	for v := 10; v < 20; v++ {
		if protos[v].Result().Level < 0 {
			unreached++
		}
	}
	if unreached == 0 {
		t.Fatal("nodes beyond the horizon should report level -1")
	}
}
