package assign

import "radiocast/internal/radio"

// BoundaryProtocol runs a single boundary assignment standalone,
// starting at round Start. Nodes outside the boundary must be silent
// for the duration. Used by tests and experiment E5/E6; the full GST
// construction (internal/gstdist) drives Node machines directly.
type BoundaryProtocol struct {
	Start int64
	N     *Node
}

var _ radio.Protocol = (*BoundaryProtocol)(nil)

// Act implements radio.Protocol.
func (bp *BoundaryProtocol) Act(r int64) radio.Action {
	switch off := r - bp.Start; {
	case off < 0:
		return radio.Sleep(bp.Start)
	case off >= bp.N.p.BoundaryRounds():
		return radio.Sleep(1 << 62)
	default:
		return bp.N.Act(off)
	}
}

// Observe implements radio.Protocol.
func (bp *BoundaryProtocol) Observe(r int64, out radio.Outcome) {
	if off := r - bp.Start; off >= 0 && off < bp.N.p.BoundaryRounds() {
		bp.N.Observe(off, out)
	}
}
