// Command radiocastd is the simulation-as-a-service daemon: submit
// broadcast jobs over HTTP, watch their progress over SSE, scrape
// Prometheus metrics.
//
//	radiocastd -addr :8080 -opsaddr :9090 -workers 4
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "protocol": "decay",
//	  "graph": {"kind": "cluster", "chain": 8, "clique": 8},
//	  "seed": 1
//	}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -N localhost:8080/v1/jobs/j000001/events
//	curl -s localhost:8080/metrics
//
// The ops port additionally serves net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"radiocast/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "job API listen address")
		opsAddr   = flag.String("opsaddr", ":9090", "ops listen address (metrics, health, pprof); empty disables")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "job worker pool size")
		queue     = flag.Int("queue", 64, "job queue depth (full queue returns 503)")
		logFormat = flag.String("logformat", "json", "log format: text or json")
		logLevel  = flag.String("loglevel", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radiocastd:", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	mgr := NewManager(*workers, *queue, lg, reg)
	srv := newServer(mgr, reg)

	api := &http.Server{Addr: *addr, Handler: srv.apiMux()}
	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{Addr: *opsAddr, Handler: srv.opsMux()}
		go func() {
			if err := ops.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				lg.Error("ops listener failed", "err", err.Error())
			}
		}()
	}
	go func() {
		lg.Info("radiocastd up", "addr", *addr, "opsaddr", *opsAddr, "workers", *workers)
		if err := api.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Error("api listener failed", "err", err.Error())
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Drain: stop admitting (readyz flips), finish in-flight jobs, then
	// close the listeners.
	lg.Info("radiocastd draining")
	srv.ready.Store(false)
	mgr.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = api.Shutdown(ctx)
	if ops != nil {
		_ = ops.Shutdown(ctx)
	}
	lg.Info("radiocastd stopped")
}
