package radiocast

import (
	"testing"
)

func TestFacadeBroadcastKnownTopology(t *testing.T) {
	g := NewGrid(6, 6)
	res, err := BroadcastKnownTopology(g, Options{Seed: 1})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestFacadeBroadcastCD(t *testing.T) {
	g := NewClusterChain(4, 4)
	res, err := BroadcastCD(g, Options{Seed: 2})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFacadeBroadcastK(t *testing.T) {
	g := NewGrid(5, 5)
	res, err := BroadcastK(g, 6, Options{Seed: 3})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if _, err := BroadcastK(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFacadeBroadcastKCD(t *testing.T) {
	g := NewGNP(30, 0.2, 5)
	res, err := BroadcastKCD(g, 4, Options{Seed: 4})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := NewPath(40)
	d, err := DecayBroadcast(g, Options{Seed: 5})
	if err != nil || !d.Completed {
		t.Fatalf("decay: %+v %v", d, err)
	}
	c, err := CRBroadcast(g, Options{Seed: 5})
	if err != nil || !c.Completed {
		t.Fatalf("cr: %+v %v", c, err)
	}
}

func TestFacadeBuildGST(t *testing.T) {
	g := NewGrid(5, 7)
	tree, err := BuildGST(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.VirtualDistance) != g.N() {
		t.Fatal("vdist missing")
	}
	if len(tree.ScheduleInfo()) != g.N() {
		t.Fatal("schedule info missing")
	}
}

func TestFacadeBuildGSTDistributed(t *testing.T) {
	g := NewGNP(20, 0.25, 7)
	tree, err := BuildGSTDistributed(g, Options{Seed: 6, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.ConstructionRounds <= 0 {
		t.Fatal("construction rounds not reported")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := BroadcastCD(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := NewPath(5)
	if _, err := BroadcastCD(g, Options{Source: 99}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestRandomMessagesReproducible(t *testing.T) {
	a := RandomMessages(4, 16, 9)
	b := RandomMessages(4, 16, 9)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("messages not reproducible")
		}
	}
}
