package radio_test

// Twin tests for the topology-swap half of the reuse contract: a run
// on a Reset + Retopo'd engine must be byte-identical to a run on an
// engine freshly constructed over the new graph — same rounds, same
// stats, same per-node state — on both engines, at every dense worker
// count. Retopo swaps only the CSR; everything else (scratch, stamps,
// worker pool) is the reused allocation, which is exactly what the
// identity proves safe.

import (
	"fmt"
	"testing"

	"radiocast/internal/beep"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// retopoGraphs returns same-n graph pairs (swap source, swap target):
// a grid into a G(n,p), a cluster chain into itself (the pure
// Reset-reuse degenerate case), and a G(n,p) into a cluster chain.
func retopoGraphs() [][2]*graph.Graph {
	grid := graph.Grid(5, 5)
	gnp25 := graph.BuildConnected(graph.StreamGNP(25, 0.15, 3), 3)
	chain := graph.ClusterChain(12, 8)
	gnp96 := graph.BuildConnected(graph.StreamGNP(96, 0.08, 5), 5)
	return [][2]*graph.Graph{
		{grid, gnp25},
		{chain, chain},
		{gnp96, chain},
	}
}

// runSparseDecay drives one seeded decay broadcast on nw (which must
// be freshly constructed or Reset) and returns the per-node informed
// flags and engine stats.
func runSparseDecay(nw *radio.Network, n int, seed uint64, limit int64) (int64, []bool, radio.Stats) {
	protos := make([]*decay.Broadcast, n)
	var ds radio.DoneSet
	ds.Reset(n)
	for v := 0; v < n; v++ {
		protos[v] = decay.NewBroadcast(n, v == 0, decay.Message{Data: 1}, rng.New())
		rng.Reseed(protos[v].Rng(), seed, 0xd0, uint64(v))
		protos[v].DoneSet = &ds
		nw.SetProtocol(radio.NodeID(v), protos[v])
	}
	ds.Tick() // the source starts informed
	rounds, _ := nw.RunUntil(limit, ds.Done)
	informed := make([]bool, n)
	for v, p := range protos {
		informed[v] = p.Has()
	}
	return rounds, informed, nw.Stats()
}

// TestNetworkRetopoMatchesFresh is the sparse half: run on g1, Reset,
// Retopo to g2, run again — byte-identical to a fresh network on g2,
// for both the deterministic collision wave and the randomized decay
// broadcast.
func TestNetworkRetopoMatchesFresh(t *testing.T) {
	for _, pair := range retopoGraphs() {
		g1, g2 := pair[0], pair[1]
		n := g1.N()
		label := fmt.Sprintf("%s->%s", g1.Name(), g2.Name())
		horizon := int64(n)

		// Collision wave (deterministic).
		fresh := radio.New(g2, radio.Config{CollisionDetection: true})
		wantLevels := beep.RunLayering(fresh, 0, horizon)
		wantStats := fresh.Stats()

		nw := radio.New(g1, radio.Config{CollisionDetection: true})
		beep.RunLayering(nw, 0, horizon)
		nw.Reset()
		off, edges := g2.CSR()
		nw.Retopo(off, edges)
		gotLevels := beep.RunLayering(nw, 0, horizon)
		if nw.Stats() != wantStats {
			t.Fatalf("%s wave: swapped stats %+v, fresh %+v", label, nw.Stats(), wantStats)
		}
		for v := range wantLevels {
			if gotLevels[v] != wantLevels[v] {
				t.Fatalf("%s wave: node %d level %d after swap, fresh %d", label, v, gotLevels[v], wantLevels[v])
			}
		}

		// Decay (randomized — the swap must preserve RNG alignment too).
		fresh2 := radio.New(g2, radio.Config{})
		wr, wi, ws := runSparseDecay(fresh2, n, 77, 1<<20)

		nw2 := radio.New(g1, radio.Config{})
		runSparseDecay(nw2, n, 13, 1<<20)
		nw2.Reset()
		nw2.Retopo(off, edges)
		gr, gi, gs := runSparseDecay(nw2, n, 77, 1<<20)
		if gr != wr || gs != ws {
			t.Fatalf("%s decay: swapped rounds/stats %d/%+v, fresh %d/%+v", label, gr, gs, wr, ws)
		}
		for v := range wi {
			if gi[v] != wi[v] {
				t.Fatalf("%s decay: node %d informed=%v after swap, fresh %v", label, v, gi[v], wi[v])
			}
		}
	}
}

// TestNetworkRetopoMidRun pins that a swap is legal mid-run and takes
// effect immediately: on an edgeless topology a transmission reaches
// nobody; after Retopo to a path the very next round delivers.
func TestNetworkRetopoMidRun(t *testing.T) {
	empty := graph.FromStream(emptyStream{n: 2})
	path := graph.Path(2)
	nw := radio.New(empty, radio.Config{})
	protos := [2]*decay.Broadcast{}
	for v := 0; v < 2; v++ {
		protos[v] = decay.NewBroadcast(2, v == 0, decay.Message{Data: 1}, rng.New(1, uint64(v)))
		nw.SetProtocol(radio.NodeID(v), protos[v])
	}
	nw.Run(64)
	if protos[1].Has() {
		t.Fatal("message crossed an edgeless topology")
	}
	off, edges := path.CSR()
	nw.Retopo(off, edges)
	nw.RunUntil(1<<16, protos[1].Has)
	if !protos[1].Has() {
		t.Fatal("message never crossed after mid-run Retopo to a path")
	}
}

type emptyStream struct{ n int }

func (s emptyStream) N() int                        { return s.n }
func (s emptyStream) Name() string                  { return fmt.Sprintf("empty(%d)", s.n) }
func (s emptyStream) Edges(func(u, v graph.NodeID)) {}

// TestDenseRetopoMatchesFresh is the dense half: construct on g1, run,
// Reset with a fresh protocol, Retopo to g2, run — byte-identical to
// a freshly constructed engine on g2, at Workers ∈ {1, 2, 4, 8}
// (including stats: same protocol, same graph, so even traffic
// counters must agree).
func TestDenseRetopoMatchesFresh(t *testing.T) {
	for _, pair := range retopoGraphs() {
		g1, g2 := pair[0], pair[1]
		for _, workers := range []int{1, 2, 4, 8} {
			label := fmt.Sprintf("%s->%s workers=%d", g1.Name(), g2.Name(), workers)
			cfg := radio.Config{MaxPacketBits: 64, Workers: workers}

			prFresh := decay.NewDense(g2, 42, 0)
			engFresh := radio.NewDense(g2, cfg, prFresh)
			wantRounds, wantOK := engFresh.RunUntil(1<<20, prFresh.Done)
			wantStats := engFresh.Stats()
			engFresh.Close()

			pr1 := decay.NewDense(g1, 9, 0)
			eng := radio.NewDense(g1, cfg, pr1)
			eng.RunUntil(1<<20, pr1.Done)
			pr2 := decay.NewDense(g2, 42, 0)
			eng.Reset(pr2)
			off, edges := g2.CSR()
			eng.Retopo(off, edges)
			gotRounds, gotOK := eng.RunUntil(1<<20, pr2.Done)
			gotStats := eng.Stats()
			eng.Close()

			if gotRounds != wantRounds || gotOK != wantOK || gotStats != wantStats {
				t.Fatalf("%s: swapped %d/%v/%+v, fresh %d/%v/%+v",
					label, gotRounds, gotOK, gotStats, wantRounds, wantOK, wantStats)
			}
			for v := 0; v < g2.N(); v++ {
				id := graph.NodeID(v)
				if pr2.Informed(id) != prFresh.Informed(id) || pr2.RecvRound(id) != prFresh.RecvRound(id) {
					t.Fatalf("%s: node %d state (%v, %d) after swap, fresh (%v, %d)", label, v,
						pr2.Informed(id), pr2.RecvRound(id), prFresh.Informed(id), prFresh.RecvRound(id))
				}
			}
		}
	}
}

// TestRetopoRejectsResize pins the same-n guard on both engines: the
// per-node scratch is only valid at an unchanged node count.
func TestRetopoRejectsResize(t *testing.T) {
	small := graph.Path(4)
	big := graph.Path(5)
	off, edges := big.CSR()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Network.Retopo accepted a different node count")
			}
		}()
		radio.New(small, radio.Config{}).Retopo(off, edges)
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dense.Retopo accepted a different node count")
			}
		}()
		pr := decay.NewDense(small, 1, 0)
		eng := radio.NewDense(small, radio.Config{}, pr)
		defer eng.Close()
		eng.Retopo(off, edges)
	}()
}
