package rings

import (
	"math/rand"

	"radiocast/internal/beep"
	"radiocast/internal/decay"
	"radiocast/internal/gstdist"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
)

// Protocol is the per-node Theorem 1.1 (K == 0) / Theorem 1.3 (K > 0)
// state machine.
type Protocol struct {
	cfg      Config
	loc      Locator // cached schedule arithmetic (hot: every Act/Observe)
	id       radio.NodeID
	isSource bool
	rng      *rand.Rand

	// Segment A.
	wave  *beep.Wave
	layer int32
	ring  int
	local int32

	// Segment B.
	gp      *gstdist.Protocol
	gpRing  int  // ring gp was built for (its config bakes in the tag)
	gpFresh bool // gp is reset/new for the current run
	info    mmv.NodeInfo
	done    bool // info harvested

	sched mmv.Schedule

	// Segment C (single message).
	single *mmv.SingleMessage

	// Segment C (multi message).
	store *rlnc.Store

	bc      *mmv.Protocol
	bcEpoch int
	curGen  int
	curRLNC *mmv.RLNC
}

var _ radio.Protocol = (*Protocol)(nil)

// New creates the protocol for one node. For Theorem 1.3 runs
// (cfg.K > 0), msgs supplies the source's messages and must be nil on
// every other node.
func New(cfg Config, id radio.NodeID, isSource bool, msgs []rlnc.Message, rng *rand.Rand) *Protocol {
	p := &Protocol{
		cfg:      cfg,
		loc:      cfg.Locator(),
		id:       id,
		isSource: isSource,
		rng:      rng,
		wave:     beep.NewWave(isSource, cfg.WaveRounds()),
		layer:    -1,
		sched:    mmv.NewSchedule(cfg.N),
		bcEpoch:  -1,
		curGen:   -1,
	}
	if cfg.K > 0 {
		if isSource {
			p.store = rlnc.NewSourceStore(msgs, cfg.Batch, cfg.PayloadBits)
		} else {
			p.store = rlnc.NewStore(cfg.K, cfg.Batch, cfg.PayloadBits)
		}
	} else {
		p.single = mmv.NewSingleMessage(isSource, decay.Message{Data: 1})
	}
	return p
}

// Reset rewinds the protocol for a new run on the same Config,
// reusing every sub-structure: the wave, the GST construction
// protocol (reset lazily when segment B starts), the broadcast
// schedule protocol, and the RLNC store with all its row and solver
// storage. For Theorem 1.3 runs msgs supplies the source's fresh
// messages (copied, not retained) and must be nil elsewhere. The RNG
// binding is unchanged; reseeding it is the caller's job.
func (p *Protocol) Reset(isSource bool, msgs []rlnc.Message) {
	p.isSource = isSource
	p.wave.Reset(isSource, p.cfg.WaveRounds())
	p.layer = -1
	p.ring = 0
	p.local = 0
	p.gpFresh = false
	p.done = false
	p.info = mmv.NodeInfo{}
	p.bcEpoch = -1
	p.curGen = -1
	if p.cfg.K > 0 {
		if isSource {
			p.store.ResetSource(msgs)
		} else {
			p.store.Reset()
		}
	} else {
		p.single.Reset(isSource, decay.Message{Data: 1})
	}
}

// Has reports single-message completion for this node.
func (p *Protocol) Has() bool { return p.single != nil && p.single.Done() }

// Store returns the multi-message store (nil in single mode).
func (p *Protocol) Store() *rlnc.Store { return p.store }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (p *Protocol) Rng() *rand.Rand { return p.rng }

// SingleContent returns the single-message content layer (nil in
// multi-message mode); harness runners hook its DoneSet here.
func (p *Protocol) SingleContent() *mmv.SingleMessage { return p.single }

// Layer returns the global BFS layer learned by the wave.
func (p *Protocol) Layer() int32 { return p.layer }

// Info returns the node's GST knowledge (valid after segment B).
func (p *Protocol) Info() mmv.NodeInfo { return p.info }

// finishWave harvests segment A.
func (p *Protocol) finishWave() {
	if p.layer >= 0 || p.wave == nil {
		return
	}
	p.layer = int32(p.wave.Level())
	if p.layer >= 0 {
		p.ring = p.cfg.RingOf(p.layer)
		p.local = p.cfg.LocalLevel(p.layer)
	}
}

// finishBuild harvests segment B.
func (p *Protocol) finishBuild() {
	if p.done || p.gp == nil {
		return
	}
	p.done = true
	p.info = mmv.InfoFromResult(p.gp.Result(), p.local == 0)
}

// isOuter reports whether the node sits on its ring's outer border.
func (p *Protocol) isOuter() bool {
	return int(p.layer) == (p.ring+1)*p.cfg.W-1
}

// activeBatch returns the batch this node's ring handles in epoch e,
// or -1 (stride-2 pipeline: ring j is active in epochs j + 2b).
func (p *Protocol) activeBatch(e int) int {
	if p.cfg.Batch <= 0 {
		return -1
	}
	if (e-p.ring)%2 != 0 {
		return -1
	}
	b := (e - p.ring) / 2
	if b < 0 || b >= p.cfg.Batches() {
		return -1
	}
	return b
}

// spreadStart returns the global round at which segment C begins.
func (p *Protocol) spreadStart() int64 { return p.loc.wave + p.loc.build }

// Act implements radio.Protocol.
func (p *Protocol) Act(r int64) radio.Action {
	pos := p.loc.Locate(r)
	switch pos.Seg {
	case SegWave:
		act := p.wave.Act(r)
		if act.SleepUntil > p.loc.wave {
			act.SleepUntil = p.loc.wave
		}
		return act
	case SegBuild:
		p.finishWave()
		if p.layer < 0 {
			return radio.Sleep(1 << 62) // unreachable node
		}
		if p.gp == nil || (!p.gpFresh && p.gpRing != p.ring) {
			gcfg := p.cfg.GST
			gcfg.Tag = int32(p.ring % 2)
			// Boundary-packet tags are level mod 4 in GLOBAL layers:
			// anchoring each ring's local levels at (ring·W) mod 4 keeps
			// pipelined same-parity boundaries distinguishable across ring
			// borders, where they can come within one layer of each other.
			gcfg.TagBase = int32(p.ring * p.cfg.W % 4)
			p.gp = gstdist.New(gcfg, p.id, p.local == 0, p.local, p.rng)
			p.gpRing = p.ring
			p.gpFresh = true
		} else if !p.gpFresh {
			// Reset-reused run on the same ring: the baked-in tag still
			// matches, so the construction protocol rewinds in place.
			p.gp.Reset(p.local == 0, p.local)
			p.gpFresh = true
		}
		act := p.gp.Act(pos.Off)
		// Translate the sub-protocol's sleep into the global frame and
		// clamp it to segment C.
		if act.SleepUntil > 0 {
			act.SleepUntil += p.loc.wave
			if act.SleepUntil > p.spreadStart() {
				act.SleepUntil = p.spreadStart()
			}
		}
		return act
	case SegSpread:
		if p.layer < 0 {
			return radio.Sleep(1 << 62)
		}
		p.finishBuild()
		return p.spreadAct(r, pos)
	default:
		p.finishBuild()
		return radio.Sleep(1 << 62)
	}
}

// Observe implements radio.Protocol.
func (p *Protocol) Observe(r int64, out radio.Outcome) {
	pos := p.loc.Locate(r)
	switch pos.Seg {
	case SegWave:
		p.wave.Observe(r, out)
	case SegBuild:
		if p.gp != nil {
			p.gp.Observe(pos.Off, out)
		}
	case SegSpread:
		p.spreadObserve(pos, out)
	}
}

// epochStart returns the global round at which epoch e begins.
func (p *Protocol) epochStart(e int) int64 {
	return p.spreadStart() + int64(e)*p.loc.epochLen
}

func (p *Protocol) spreadAct(r int64, pos Pos) radio.Action {
	if p.cfg.Batch <= 0 {
		return p.singleSpreadAct(r, pos)
	}
	return p.multiSpreadAct(r, pos)
}

func (p *Protocol) spreadObserve(pos Pos, out radio.Outcome) {
	if out.Packet == nil {
		return
	}
	if p.cfg.Batch <= 0 {
		p.singleSpreadObserve(pos, out)
		return
	}
	p.multiSpreadObserve(pos, out)
}

// Single-message segment C (Theorem 1.1): epoch e is ring e's
// broadcast window followed by the e -> e+1 border handoff.

func (p *Protocol) singleSpreadAct(r int64, pos Pos) radio.Action {
	switch {
	case !pos.Handoff && pos.Epoch == p.ring:
		if p.bcEpoch != pos.Epoch {
			if p.bc == nil {
				p.bc = mmv.New(p.sched, p.info, p.single, false, p.rng)
			} else {
				p.bc.Rebind(p.info, p.single)
			}
			p.bcEpoch = pos.Epoch
		}
		return p.bc.Act(pos.EpochOff)
	case pos.Handoff && pos.Epoch == p.ring && p.isOuter() && p.single.Done():
		slot := int(pos.EpochOff) % p.cfg.L()
		if p.rng.Float64() < decay.TransmitProb(slot) {
			return radio.Transmit(p.single.Fresh())
		}
		return radio.Listen
	case pos.Handoff && pos.Epoch == p.ring-1 && p.local == 0:
		return radio.Listen // roots receive the incoming handoff
	case pos.Epoch == p.ring-1 || pos.Epoch == p.ring:
		return radio.Listen // stay awake around our epochs
	default:
		return radio.Sleep(p.epochStart(p.nextRelevantEpoch(pos.Epoch)))
	}
}

// nextRelevantEpoch returns the first epoch >= e in which this node
// participates (its ring's epoch, or the preceding handoff for roots).
func (p *Protocol) nextRelevantEpoch(e int) int {
	if p.cfg.Batch <= 0 {
		if e >= p.ring {
			return p.cfg.Epochs() // nothing left: park at segment end
		}
		return p.ring - 1
	}
	for cand := e + 1; cand < p.cfg.Epochs(); cand++ {
		if p.activeBatch(cand) >= 0 || p.activeBatch(cand+1) >= 0 {
			return cand
		}
	}
	return p.cfg.Epochs()
}

func (p *Protocol) singleSpreadObserve(pos Pos, out radio.Outcome) {
	if _, ok := out.Packet.(radio.NoisePacket); ok {
		return
	}
	switch {
	case !pos.Handoff && pos.Epoch == p.ring && p.bc != nil && p.bcEpoch == pos.Epoch:
		p.bc.Observe(pos.EpochOff, out)
	default:
		// Handoff or opportunistic reception: a Message packet always
		// helps.
		p.single.OnReceive(out.Packet, out.From)
	}
}

// Multi-message segment C (Theorem 1.3): stride-2 pipeline of batches.

func (p *Protocol) multiSpreadAct(r int64, pos Pos) radio.Action {
	b := p.activeBatch(pos.Epoch)
	switch {
	case !pos.Handoff && b >= 0:
		if p.bcEpoch != pos.Epoch {
			p.curGen = b
			if p.curRLNC == nil {
				p.curRLNC = mmv.NewRLNC(p.store.Buffer(b), p.rng)
			} else {
				p.curRLNC.SetBuffer(p.store.Buffer(b))
			}
			if p.bc == nil {
				p.bc = mmv.New(p.sched, p.info, p.curRLNC, false, p.rng)
			} else {
				p.bc.Rebind(p.info, p.curRLNC)
			}
			p.bcEpoch = pos.Epoch
		}
		return p.bc.Act(pos.EpochOff)
	case pos.Handoff && b >= 0 && p.isOuter() && p.store.CanDecodeGen(b):
		// Fountain handoff: fresh random combinations of the decoded
		// batch, Decay-paced, drawn into the generation's scratch air
		// packet (zero allocation; receivers copy before retaining).
		slot := int(pos.EpochOff) % p.cfg.L()
		if p.rng.Float64() < decay.TransmitProb(slot) {
			if pkt, ok := p.store.AirPacket(b, p.rng); ok {
				return radio.Transmit(pkt)
			}
		}
		return radio.Listen
	case pos.Handoff && p.local == 0 && p.activeBatch(pos.Epoch+1) >= 0:
		return radio.Listen // roots receive the incoming batch
	case b >= 0:
		return radio.Listen
	case !pos.Handoff && p.local == 0 && p.activeBatch(pos.Epoch+1) >= 0:
		// Inactive broadcast sub-window, but the preceding ring hands
		// over to us at the end of this epoch: sleep only to the
		// handoff sub-window.
		return radio.Sleep(p.epochStart(pos.Epoch) + p.loc.bcastWin)
	default:
		return radio.Sleep(p.epochStart(p.nextRelevantEpoch(pos.Epoch)))
	}
}

func (p *Protocol) multiSpreadObserve(pos Pos, out radio.Outcome) {
	pkt, ok := out.Packet.(*rlnc.Packet)
	if !ok {
		return
	}
	if !pos.Handoff && p.bc != nil && p.bcEpoch == pos.Epoch {
		p.bc.Observe(pos.EpochOff, out)
		return
	}
	// Handoff reception (and any opportunistic reception): feed the
	// store directly (Add copies; the packet aliases sender scratch).
	p.store.Add(*pkt)
}
