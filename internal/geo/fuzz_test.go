package geo

import (
	"testing"

	"radiocast/internal/graph"
)

// FuzzUnitDiskTwin drives the grid-bucketed Disk builder against the
// brute-force pair scan on fuzzer-chosen layouts and radii. Any
// divergence in the resulting CSR (FromStream sorts and dedups rows,
// so emission order is immaterial) is a bucketing bug — typically a
// cell neighborhood that fails to cover the disk.
func FuzzUnitDiskTwin(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(250), false)
	f.Add(uint64(2), uint16(90), uint16(30), true)
	f.Add(uint64(3), uint16(7), uint16(999), false)
	f.Add(uint64(4), uint16(64), uint16(1), true)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, rRaw uint16, clustered bool) {
		n := 2 + int(nRaw)%120
		radius := 0.005 + float64(rRaw%1000)/1000
		var l *Layout
		if clustered {
			l = Clustered(n, 1+n/16, 0.05, seed)
		} else {
			l = Uniform(n, seed)
		}
		fast := graph.FromStream(NewDisk(l, radius))
		brute := graph.FromStream(&bruteDisk{l: l, radius: radius})
		if fast.N() != brute.N() {
			t.Fatalf("node count: fast %d brute %d", fast.N(), brute.N())
		}
		fOff, fEdges := fast.CSR()
		bOff, bEdges := brute.CSR()
		if len(fEdges) != len(bEdges) {
			t.Fatalf("edge count: fast %d brute %d (n=%d r=%g)", len(fEdges), len(bEdges), n, radius)
		}
		for i := range fOff {
			if fOff[i] != bOff[i] {
				t.Fatalf("offset[%d]: fast %d brute %d (n=%d r=%g)", i, fOff[i], bOff[i], n, radius)
			}
		}
		for i := range fEdges {
			if fEdges[i] != bEdges[i] {
				t.Fatalf("edge[%d]: fast %d brute %d (n=%d r=%g)", i, fEdges[i], bEdges[i], n, radius)
			}
		}
	})
}
