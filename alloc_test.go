package radiocast

// Allocation-regression guards for the run-reuse layer. These pin the
// two properties the perf work established:
//
//  1. the steady-state round loop — wake queue, CSR delivery, cached
//     boxed packets — allocates NOTHING per round;
//  2. a Reset-reused Theorem 1.3 run (the allocation-heaviest stack)
//     stays under a fixed per-run allocation budget, two orders of
//     magnitude below the construct-per-run historical cost (~33k).
//
// CI runs these on every push; the benchmarks in bench_test.go track
// the same numbers with -benchmem for humans.

import (
	"runtime"
	"testing"

	"radiocast/internal/adapt"
	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/harness"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// TestSteadyStateRoundLoopAllocsZero drives a warmed-up Decay network
// one round at a time: after the first few rounds have sized the
// scratch buffers and boxed the message packets, stepping must be
// allocation-free — the engine's ring wake buckets, stamp arrays, and
// reused pop buffer do all per-round work in place.
func TestSteadyStateRoundLoopAllocsZero(t *testing.T) {
	g := graph.ClusterChain(4, 6)
	nw := radio.New(g, radio.Config{})
	for v := 0; v < g.N(); v++ {
		nw.SetProtocol(graph.NodeID(v),
			decay.NewBroadcast(g.N(), v == 0, decay.Message{Data: 1}, rng.New(7, uint64(v))))
	}
	nw.Run(64) // warm: scratch sized, packets boxed, message spread
	allocs := testing.AllocsPerRun(100, func() { nw.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state round loop allocates %.1f objects/round, want 0", allocs)
	}
}

// TestSteadyStateRoundLoopAllocsZeroCD repeats the guard with
// collision detection enabled and all nodes transmitting (dense ⊤
// deliveries) — the CD delivery branch must be in-place too.
func TestSteadyStateRoundLoopAllocsZeroCD(t *testing.T) {
	g := graph.ClusterChain(4, 6)
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	for v := 0; v < g.N(); v++ {
		// Every node holds the message: the clique interiors collide
		// every phase, exercising ⊤ delivery.
		nw.SetProtocol(graph.NodeID(v),
			decay.NewBroadcast(g.N(), true, decay.Message{Data: 1}, rng.New(7, uint64(v))))
	}
	nw.Run(64)
	allocs := testing.AllocsPerRun(100, func() { nw.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state CD round loop allocates %.1f objects/round, want 0", allocs)
	}
}

// TestSteadyStateRoundLoopAllocsZeroPipelined repeats the guard on the
// pipelined boundary construction (E6): with several same-parity
// boundaries driving concurrently, the steady-state round loop — phase
// arithmetic, boundary-machine windows, tagged boxed packets — must
// still allocate nothing. The warm-up lands mid-identification-window
// of a mid-schedule phase (window length CIdent·L² = 128 rounds at
// N=256, c=2), so the measured steps never cross a window start (the
// only points that construct recruiting machines).
func TestSteadyStateRoundLoopAllocsZeroPipelined(t *testing.T) {
	g := graph.Grid(4, 8)
	d := graph.Eccentricity(g, 0)
	cfg := gstdist.DefaultConfig(256, d, 2, gstdist.LayerPreset, false)
	cfg.PipelinedBoundaries = true
	levels := graph.BFS(g, 0).Dist
	nw := radio.New(g, radio.Config{})
	for v := 0; v < g.N(); v++ {
		nw.SetProtocol(graph.NodeID(v),
			gstdist.New(cfg, graph.NodeID(v), v == 0, levels[v], rng.New(7, uint64(v))))
	}
	// Phase 6 drives boundaries 0 and 2 concurrently; step inside its
	// identification window.
	warm := 6*cfg.Assign.RankLen() + 4
	nw.Run(warm)
	allocs := testing.AllocsPerRun(100, func() { nw.Step() })
	if allocs != 0 {
		t.Fatalf("pipelined steady-state round loop allocates %.1f objects/round, want 0", allocs)
	}
}

// TestDenseSteadyStateAllocsZero pins the dense engine's core scale
// property: after warm-up has sized the transmitter lists, scatter
// buckets, and touched-listener scratch, stepping allocates nothing —
// sequentially and with the parallel delivery pass engaged (the
// clusterchain's clique floods push the transmitter count past the
// parallel gate, so the fan-out path is genuinely exercised).
func TestDenseSteadyStateAllocsZero(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		workers int
		warm    int64
	}{
		// The 192x192 grid keeps a ~200-node frontier alive for thousands
		// of rounds, so its low-slot rounds exceed the parallel gate and
		// the measured window genuinely runs the fan-out path.
		{"sequential-path2048", graph.FromStream(graph.StreamPath(2048)), 1, 512},
		{"parallel-grid192x192", graph.FromStream(graph.StreamGrid(192, 192)), 4, 2000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pr := decay.NewDense(tc.g, 7, 0)
			eng := radio.NewDense(tc.g, radio.Config{Workers: tc.workers}, pr)
			defer eng.Close()
			eng.Run(tc.warm)
			if pr.Done() {
				t.Fatal("warm-up completed the broadcast; nothing left to measure")
			}
			allocs := testing.AllocsPerRun(64, func() { eng.Step() })
			if allocs != 0 {
				t.Fatalf("dense steady-state round loop allocates %.2f objects/round, want 0", allocs)
			}
		})
	}
}

// TestDenseCatalogSteadyStateAllocsZero extends the 0-alloc guard to
// the rest of the SoA catalog — cr.Dense (keyed FastDecay draws) and
// beep.DenseWave (deterministic frontier pulses) — sequentially, with
// the parallel delivery pass, and on the channel-adverse engine path
// (per-link erasure forces the per-listener hear-count sweep, which
// must be in-place too). Warm-ups are sized so the measured window
// never crosses completion.
func TestDenseCatalogSteadyStateAllocsZero(t *testing.T) {
	grid := func() *graph.Graph { return graph.FromStream(graph.StreamGrid(192, 192)) }
	path := func() *graph.Graph { return graph.FromStream(graph.StreamPath(2048)) }
	mkCR := func(g *graph.Graph) (radio.DenseProtocol, func() bool) {
		p := cr.NewDense(g, cr.NewParams(g.N(), graph.Eccentricity(g, 0)), 7, 0)
		return p, p.Done
	}
	mkWave := func(g *graph.Graph) (radio.DenseProtocol, func() bool) {
		// Horizon far past the measured window: the wave must not finish
		// (or fall silent) while we measure.
		w := beep.NewDenseWave(g, 0, 1<<20)
		return w, w.Done
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		mk      func(*graph.Graph) (radio.DenseProtocol, func() bool)
		workers int
		cd      bool
		erasure bool
		warm    int64
	}{
		{"cr-sequential-path2048", path(), mkCR, 1, false, false, 512},
		{"cr-parallel-grid192x192", grid(), mkCR, 4, false, false, 1000},
		{"cr-erasure-grid192x192", grid(), mkCR, 4, false, true, 1000},
		{"wave-sequential-path2048", path(), mkWave, 1, true, false, 512},
		{"wave-parallel-grid192x192", grid(), mkWave, 4, true, false, 128},
		{"wave-erasure-grid192x192", grid(), mkWave, 4, true, true, 128},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := radio.Config{Workers: tc.workers, CollisionDetection: tc.cd}
			if tc.erasure {
				cfg.Channel = channel.NewErasure(0.1, 99)
			}
			pr, done := tc.mk(tc.g)
			eng := radio.NewDense(tc.g, cfg, pr)
			defer eng.Close()
			eng.Run(tc.warm)
			if done() {
				t.Fatal("warm-up completed the run; nothing left to measure")
			}
			allocs := testing.AllocsPerRun(64, func() { eng.Step() })
			if allocs != 0 {
				t.Fatalf("dense steady-state round loop allocates %.2f objects/round, want 0", allocs)
			}
			if done() {
				t.Fatal("measured window crossed completion; shrink the warm-up")
			}
		})
	}
}

// TestDenseGSTSteadyStateAllocsZero extends the 0-alloc guard to the
// structured GST broadcast (mmv.Dense over gst.Flat): the fast-slot
// residue walk, the bucketed keyed slow draws, frontier pruning, and
// the relay arming/clearing must all run in place — sequentially, with
// the parallel delivery pass (the 192x192 grid keeps hundreds of
// fast-slot transmitters per even round, past the parallel gate), and
// on the channel-adverse erasure path. Warm-ups stop well short of the
// deepest tree level (a fast wave moves at most one level per two
// rounds), so the measured window stays mid-broadcast.
func TestDenseGSTSteadyStateAllocsZero(t *testing.T) {
	build := func(g *graph.Graph) (radio.DenseProtocol, func() bool) {
		f := gst.Flatten(gst.Construct(g, 0))
		p := mmv.NewDense(g, f, mmv.NewSchedule(g.N()), 7, 0, false)
		return p, p.Done
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		workers int
		erasure bool
		warm    int64
	}{
		{"sequential-path2048", graph.FromStream(graph.StreamPath(2048)), 1, false, 512},
		{"parallel-grid192x192", graph.FromStream(graph.StreamGrid(192, 192)), 4, false, 512},
		{"erasure-grid192x192", graph.FromStream(graph.StreamGrid(192, 192)), 4, true, 512},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := radio.Config{Workers: tc.workers}
			if tc.erasure {
				cfg.Channel = channel.NewErasure(0.1, 99)
			}
			pr, done := build(tc.g)
			eng := radio.NewDense(tc.g, cfg, pr)
			defer eng.Close()
			eng.Run(tc.warm)
			if done() {
				t.Fatal("warm-up completed the run; nothing left to measure")
			}
			allocs := testing.AllocsPerRun(64, func() { eng.Step() })
			if allocs != 0 {
				t.Fatalf("dense GST steady-state round loop allocates %.2f objects/round, want 0", allocs)
			}
			if done() {
				t.Fatal("measured window crossed completion; shrink the warm-up")
			}
		})
	}

	// Post-completion steady state: once every member is informed, the
	// stretch starts keep pulsing their fast slots forever (the schedule
	// never stops) while pruning silences the slow slots — that
	// perpetual-wave regime must be allocation-free too.
	t.Run("post-completion-cluster12x16", func(t *testing.T) {
		g := graph.ClusterChain(12, 16)
		pr, done := build(g)
		eng := radio.NewDense(g, radio.Config{}, pr)
		defer eng.Close()
		if _, ok := eng.RunUntil(1<<18, done); !ok {
			t.Fatal("GST broadcast incomplete; cannot measure post-completion steady state")
		}
		eng.Run(64) // settle into the perpetual fast-wave cycle
		allocs := testing.AllocsPerRun(64, func() { eng.Step() })
		if allocs != 0 {
			t.Fatalf("post-completion GST round loop allocates %.2f objects/round, want 0", allocs)
		}
	})
}

// TestRetopoSteadyStateAllocsZero pins the topology-swap half of the
// reuse contract on both engines: after a same-n Retopo (grid CSR
// swapped in for a path CSR), the warmed round loop must still
// allocate nothing — the swap replaces only the two CSR slice
// headers, never the per-node scratch. The swap itself must also be
// allocation-free (two slice-header stores).
func TestRetopoSteadyStateAllocsZero(t *testing.T) {
	const side = 48 // 2304 nodes: path(2304) and grid(48x48) share n
	pathG := graph.FromStream(graph.StreamPath(side * side))
	gridG := graph.FromStream(graph.StreamGrid(side, side))
	off, edges := gridG.CSR()

	t.Run("sparse", func(t *testing.T) {
		nw := radio.New(pathG, radio.Config{})
		protos := make([]*decay.Broadcast, pathG.N())
		for v := range protos {
			protos[v] = decay.NewBroadcast(pathG.N(), v == 0, decay.Message{Data: 1}, rng.New(7, uint64(v)))
			nw.SetProtocol(graph.NodeID(v), protos[v])
		}
		nw.Run(64) // warm on the path topology
		if swapAllocs := testing.AllocsPerRun(8, func() {
			nw.Retopo(off, edges)
		}); swapAllocs != 0 {
			t.Fatalf("Network.Retopo allocates %.1f objects/swap, want 0", swapAllocs)
		}
		nw.Run(64) // settle on the grid topology
		if allocs := testing.AllocsPerRun(100, func() { nw.Step() }); allocs != 0 {
			t.Fatalf("post-Retopo round loop allocates %.1f objects/round, want 0", allocs)
		}
	})

	t.Run("dense", func(t *testing.T) {
		pr := decay.NewDense(pathG, 7, 0)
		eng := radio.NewDense(pathG, radio.Config{Workers: 4}, pr)
		defer eng.Close()
		eng.Run(256) // warm on the path topology
		if swapAllocs := testing.AllocsPerRun(8, func() {
			eng.Retopo(off, edges)
		}); swapAllocs != 0 {
			t.Fatalf("Dense.Retopo allocates %.1f objects/swap, want 0", swapAllocs)
		}
		eng.Run(64) // settle on the grid topology
		if pr.Done() {
			t.Fatal("warm-up completed the broadcast; nothing left to measure")
		}
		if allocs := testing.AllocsPerRun(64, func() { eng.Step() }); allocs != 0 {
			t.Fatalf("post-Retopo dense round loop allocates %.2f objects/round, want 0", allocs)
		}
	})
}

// denseScaleMemBudget caps the live-heap growth of a full n = 10^5
// dense GNP cell: streaming CSR graph (~16n int32 edge entries), the
// engine's word bitsets and stamp arrays, and the SoA protocol state.
// Decay measured ~9 MB (CR and the wave carry the same per-node
// footprint: bitsets + one int32/int64 array); the 16 MB budget leaves
// headroom while still failing loudly if anyone reintroduces per-node
// objects (the AoS stack costs >100 bytes/node before protocol state).
const denseScaleMemBudget = 16 << 20

// TestDenseScaleMemoryBudget pins the bytes/node story at n = 10^5 for
// every protocol of the dense catalog: building and running the stack
// must fit the budget.
func TestDenseScaleMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-node runs")
	}
	const n = 100_000
	for _, proto := range []string{"decay", "cr", "wave"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)

			g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
			cfg := radio.Config{Workers: 4}
			var pr radio.DenseProtocol
			var done func() bool
			switch proto {
			case "cr":
				p := cr.NewDense(g, cr.NewParams(g.N(), graph.Eccentricity(g, 0)), 7, 0)
				pr, done = p, p.Done
			case "wave":
				cfg.CollisionDetection = true
				w := beep.NewDenseWave(g, 0, int64(graph.Eccentricity(g, 0)))
				pr, done = w, w.Done
			default:
				p := decay.NewDense(g, 7, 0)
				pr, done = p, p.Done
			}
			eng := radio.NewDense(g, cfg, pr)
			defer eng.Close()
			rounds, ok := eng.RunUntil(1<<20, done)
			if !ok {
				t.Fatalf("dense %s GNP-%d run incomplete after %d rounds", proto, n, rounds)
			}

			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
			t.Logf("%s n=%d: %d rounds, live-heap growth %.1f MB (%.0f bytes/node)",
				proto, n, rounds, float64(grew)/(1<<20), float64(grew)/n)
			if grew > denseScaleMemBudget {
				t.Fatalf("dense %s stack grew live heap by %d bytes, budget %d", proto, grew, denseScaleMemBudget)
			}
		})
	}
}

// adaptiveWrapperAllocOverhead is the allocation headroom the retry
// layer may add on top of a bare Reset-reused run: the epoch loop's
// bookkeeping (outcome accumulation, carryover harvest into a
// preallocated slice) plus a little toolchain slack. Anything per
// round or per node-round would blow through it immediately.
const adaptiveWrapperAllocOverhead = 64

// TestAdaptiveWrapperAllocOverhead pins the retry layer's steady-state
// contract: a single-epoch adaptive run on a reused context allocates
// at most a small constant more than the bare reused run. The epochs
// themselves ride the PR-3 zero-rebuild path, so the wrapper must not
// reintroduce per-round allocation.
func TestAdaptiveWrapperAllocOverhead(t *testing.T) {
	g := graph.ClusterChain(4, 6)
	plainRun := harness.NewDecayRun(g, 0)
	plainRun.Run(nil, 3, 1<<20) // warm both paths' scratch
	plain := testing.AllocsPerRun(5, func() { plainRun.Run(nil, 3, 1<<20) })

	ar := harness.NewAdaptiveDecay(g, nil, 3, 0)
	adapt.Run(ar, adapt.Policy{})
	adaptive := testing.AllocsPerRun(5, func() { adapt.Run(ar, adapt.Policy{}) })
	if adaptive > plain+adaptiveWrapperAllocOverhead {
		t.Fatalf("adaptive wrapper allocates %.0f objects/run vs %.0f bare (+%d budget)",
			adaptive, plain, adaptiveWrapperAllocOverhead)
	}
}

// theorem13ReuseAllocBudget is the per-run allocation ceiling for a
// Reset-reused Theorem 1.3 run on grid-4x12/k=8. The measured
// steady-state cost is ~1.5k objects (per-boundary assign/recruit
// machines built mid-run, per-epoch RNG reseeds); the budget leaves
// headroom for toolchain drift while still failing loudly if per-round
// or per-packet allocation creeps back in (the construct-per-run cost
// this layer replaced was ~33k, and even one allocation per round
// would add ~95k).
const theorem13ReuseAllocBudget = 4000

// TestTheorem13ResetReuseAllocBudget pins the Reset-reuse contract on
// the heaviest stack: after a warm-up run, each reused run must stay
// under the fixed budget, with round counts identical to fresh runs.
func TestTheorem13ResetReuseAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full Theorem 1.3 runs are slow")
	}
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	run := harness.NewTheorem13Run(g, d, 8, 1, 0)
	wantRounds, wantOK, _ := harness.RunTheorem13(g, d, 8, 1, 3)
	if !wantOK {
		t.Fatal("fresh reference run incomplete")
	}
	var rounds int64
	var ok bool
	allocs := testing.AllocsPerRun(2, func() {
		rounds, ok, _ = run.Run(nil, 3)
	})
	if !ok || rounds != wantRounds {
		t.Fatalf("reused run diverged: rounds=%d ok=%v, fresh rounds=%d", rounds, ok, wantRounds)
	}
	if allocs > theorem13ReuseAllocBudget {
		t.Fatalf("Reset-reused Theorem 1.3 run allocates %.0f objects, budget %d",
			allocs, theorem13ReuseAllocBudget)
	}
}
