package main

// The E19/E20/E21/E22 trajectory ratchet: diff a radiobench -json scale
// artifact (BENCH_scale.json) against a committed per-cell-config
// baseline. Two capacity trajectories are guarded per config:
//
//   - bytes/node: per-cell live-heap growth (mem_bytes) over the
//     workload's nominal node count. Heap growth is near-deterministic
//     for the dense engine's SoA layout, so the band is tight — a
//     breach means the engine or the CSR build started keeping more
//     state per node.
//   - rounds/sec: simulated rounds over wall time. Wall time is a
//     machine measurement, so the band is wide; the ratchet catches
//     order-of-magnitude throughput collapses (an accidental
//     serialization, a hot-path allocation), not scheduler noise.
//
// As with the alloc gate, a guarded workload missing from the artifact
// is a failure: a silently-skipped guard is a disabled guard.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ScaleRow pins one workload's guarded trajectory values.
type ScaleRow struct {
	// BytesPerNode is mean live-heap growth per nominal node.
	BytesPerNode float64 `json:"bytes_per_node"`
	// RoundsPerSec is mean simulated rounds per wall-clock second.
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// ScaleBaseline is the committed scale-trajectory contract
// (bench/scale_baseline.json).
type ScaleBaseline struct {
	// BytesTolerancePct is the allowed relative increase in bytes/node.
	BytesTolerancePct float64 `json:"bytes_tolerance_pct"`
	// ThroughputTolerancePct is the allowed relative decrease in
	// rounds/sec (wide: wall time is machine-dependent).
	ThroughputTolerancePct float64 `json:"throughput_tolerance_pct"`
	// Workloads maps scale-sweep cell configs — E19's
	// "decay/gnp/n=100000", E20's "loss=0.1/cr/n=100000", E21's
	// "gst/gnp/n=100000", or E22's "wave/udg/n=100000" — to their rows.
	// Config strings are globally unique across the four experiments, so
	// one flat map guards all.
	Workloads map[string]ScaleRow `json:"workloads"`
}

// scaleArtifact is the slice of the radiobench -json artifact the
// ratchet reads.
type scaleArtifact struct {
	Experiments []struct {
		ID    string `json:"id"`
		Cells []struct {
			Config    string `json:"config"`
			Rounds    int64  `json:"rounds"`
			Completed bool   `json:"completed"`
			MemBytes  int64  `json:"mem_bytes"`
			WallUS    int64  `json:"wall_us"`
		} `json:"cells"`
	} `json:"experiments"`
}

// configN extracts the nominal node count from a scale cell config
// like "decay/gnp/n=100000".
func configN(config string) (int64, bool) {
	i := strings.LastIndex(config, "n=")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(config[i+2:], 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// scaleMetrics aggregates an artifact's scale-sweep cells into per-config
// trajectory rows (means over seeds; incomplete cells are dropped, so
// a config that stopped finishing vanishes and trips the
// missing-guard failure).
func scaleMetrics(blob []byte) (map[string]ScaleRow, error) {
	var art scaleArtifact
	if err := json.Unmarshal(blob, &art); err != nil {
		return nil, fmt.Errorf("parse artifact: %w", err)
	}
	type acc struct {
		bytesPerNode, roundsPerSec float64
		cells                      int
	}
	sums := map[string]*acc{}
	for _, e := range art.Experiments {
		if e.ID != "E19" && e.ID != "E20" && e.ID != "E21" && e.ID != "E22" {
			continue
		}
		for _, c := range e.Cells {
			if !c.Completed {
				continue
			}
			n, ok := configN(c.Config)
			if !ok || c.MemBytes <= 0 || c.WallUS <= 0 {
				continue
			}
			a := sums[c.Config]
			if a == nil {
				a = &acc{}
				sums[c.Config] = a
			}
			a.bytesPerNode += float64(c.MemBytes) / float64(n)
			a.roundsPerSec += float64(c.Rounds) / (float64(c.WallUS) / 1e6)
			a.cells++
		}
	}
	out := make(map[string]ScaleRow, len(sums))
	for cfg, a := range sums {
		out[cfg] = ScaleRow{
			BytesPerNode: a.bytesPerNode / float64(a.cells),
			RoundsPerSec: a.roundsPerSec / float64(a.cells),
		}
	}
	return out, nil
}

// checkScale compares measured trajectories against the baseline,
// logging one line per guarded workload, and reports whether any guard
// failed. Improvements print a note — commit the better number to
// ratchet the baseline.
func checkScale(base ScaleBaseline, got map[string]ScaleRow, out io.Writer) bool {
	names := make([]string, 0, len(base.Workloads))
	for name := range base.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Workloads[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(out, "benchguard: FAIL %s: guarded workload missing from artifact\n", name)
			failed = true
			continue
		}
		byteLimit := want.BytesPerNode * (1 + base.BytesTolerancePct/100)
		tputFloor := want.RoundsPerSec * (1 - base.ThroughputTolerancePct/100)
		bad := false
		if have.BytesPerNode > byteLimit {
			fmt.Fprintf(out, "benchguard: FAIL %s: %.1f bytes/node, baseline %.1f (+%.0f%% tolerance = %.1f)\n",
				name, have.BytesPerNode, want.BytesPerNode, base.BytesTolerancePct, byteLimit)
			bad = true
		}
		if have.RoundsPerSec < tputFloor {
			fmt.Fprintf(out, "benchguard: FAIL %s: %.0f rounds/sec, baseline %.0f (-%.0f%% tolerance = %.0f)\n",
				name, have.RoundsPerSec, want.RoundsPerSec, base.ThroughputTolerancePct, tputFloor)
			bad = true
		}
		switch {
		case bad:
			failed = true
		case have.BytesPerNode < want.BytesPerNode || have.RoundsPerSec > want.RoundsPerSec:
			fmt.Fprintf(out, "benchguard: note %s improved: %.1f bytes/node (baseline %.1f), %.0f rounds/sec (baseline %.0f) — consider ratcheting\n",
				name, have.BytesPerNode, want.BytesPerNode, have.RoundsPerSec, want.RoundsPerSec)
		default:
			fmt.Fprintf(out, "benchguard: ok %s: %.1f bytes/node (baseline %.1f), %.0f rounds/sec (baseline %.0f)\n",
				name, have.BytesPerNode, want.BytesPerNode, have.RoundsPerSec, want.RoundsPerSec)
		}
	}
	return failed
}
