package graph

import (
	"fmt"
	"io"
)

// DOT writes the graph in Graphviz DOT format. labels and highlights
// are optional: labels[v] annotates node v, and edges present in
// highlight (as parent[v] = u pairs, -1 meaning none) are drawn bold.
// It is used by cmd/gstviz to regenerate Figure 1 of the paper.
func DOT(w io.Writer, g *Graph, labels []string, highlightParent []NodeID) error {
	return dot(w, g, labels, highlightParent, nil, nil)
}

// DOTLayout is DOT with position-true coordinates: node v is pinned at
// (x[v], y[v]) via pos="…!" attributes, so geometric workloads render
// at their actual layout (use `neato -n` or `fdp -n`; plain `dot`
// ignores pins). Coordinates are scaled to a 10-inch canvas.
func DOTLayout(w io.Writer, g *Graph, labels []string, highlightParent []NodeID, x, y []float64) error {
	if len(x) != g.N() || len(y) != g.N() {
		return fmt.Errorf("graph: DOTLayout got %d/%d coordinates for %d nodes", len(x), len(y), g.N())
	}
	return dot(w, g, labels, highlightParent, x, y)
}

func dot(w io.Writer, g *Graph, labels []string, highlightParent []NodeID, x, y []float64) error {
	if _, err := fmt.Fprintln(w, "graph G {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=circle fontsize=10];"); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("%d", v)
		if labels != nil && labels[v] != "" {
			label = labels[v]
		}
		pos := ""
		if x != nil {
			pos = fmt.Sprintf(" pos=\"%.3f,%.3f!\"", 10*x[v], 10*y[v])
		}
		if _, err := fmt.Fprintf(w, "  %d [label=\"%s\"%s];\n", v, label, pos); err != nil {
			return err
		}
	}
	inTree := func(u, v NodeID) bool {
		if highlightParent == nil {
			return false
		}
		return highlightParent[u] == v || highlightParent[v] == u
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			if u < NodeID(v) {
				continue // emit each undirected edge once
			}
			attr := ""
			if inTree(NodeID(v), u) {
				attr = " [penwidth=3 color=forestgreen]"
			}
			if _, err := fmt.Fprintf(w, "  %d -- %d%s;\n", v, u, attr); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
