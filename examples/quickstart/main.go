// Quickstart: broadcast one message over an unknown-topology radio
// network using collision detection (Theorem 1.1) and compare it with
// the classic Decay protocol on the same workload.
package main

import (
	"fmt"
	"log"

	"radiocast"
)

func main() {
	// A chain of 16 dense clusters: large diameter AND large degree —
	// the workload where collision detection pays off most.
	g := radiocast.NewClusterChain(16, 8)
	opts := radiocast.Options{Seed: 42}

	decay, err := radiocast.DecayBroadcast(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	gst, err := radiocast.BroadcastKnownTopology(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	full, err := radiocast.BroadcastCD(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (n=%d)\n", g.Name(), g.N())
	fmt.Printf("Decay baseline              : %6d rounds\n", decay.Rounds)
	fmt.Printf("GST broadcast (structure up): %6d rounds\n", gst.Rounds)
	fmt.Printf("Theorem 1.1 (from scratch)  : %6d rounds (incl. distributed setup)\n", full.Rounds)
	fmt.Println("\nThe second line is the steady-state story of the paper: once the")
	fmt.Println("collision-detection machinery has built its gathering spanning")
	fmt.Println("trees, every subsequent broadcast runs in ~2 rounds per hop plus a")
	fmt.Println("polylog tail — the additive O(D + polylog n) bound of Theorem 1.1.")
}
