package beep_test

// Dense-vs-sparse twin identity for the SoA collision wave. The wave
// is deterministic (no RNG), so the twin comparison is exact: per-node
// levels from a DenseWave run must equal the per-node Wave levels from
// RunLayering on the sparse engine — on the ideal channel (where both
// equal BFS distance) and under per-link erasure with a shared seed
// (where drops are keyed by (round, link) and agree across engines).

import (
	"testing"

	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// runDense executes one dense wave and returns per-node levels plus
// the completion round (or horizon if incomplete).
func runDense(g *graph.Graph, src graph.NodeID, horizon int64, cd bool, ch radio.Channel) ([]int, int64, bool) {
	pr := beep.NewDenseWave(g, src, horizon)
	eng := radio.NewDense(g, radio.Config{CollisionDetection: cd, Channel: ch, MaxPacketBits: 8}, pr)
	defer eng.Close()
	rounds, ok := eng.RunUntil(horizon, pr.Done)
	levels := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		levels[v] = pr.Level(graph.NodeID(v))
	}
	return levels, rounds, ok
}

// runSparse executes the per-node Wave via RunLayering.
func runSparse(g *graph.Graph, src graph.NodeID, horizon int64, cd bool, ch radio.Channel) []int {
	nw := radio.New(g, radio.Config{CollisionDetection: cd, Channel: ch, MaxPacketBits: 8})
	return beep.RunLayering(nw, src, horizon)
}

// TestDenseWaveMatchesSparseIdeal: with CD on the ideal channel, the
// dense wave completes in exactly the source eccentricity and every
// level equals the BFS distance — and is identical to the sparse Wave.
func TestDenseWaveMatchesSparseIdeal(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
		graph.FromStream(graph.StreamPath(200)),
	}
	for _, g := range graphs {
		src := graph.NodeID(0)
		ecc := int64(graph.Eccentricity(g, src))
		dense, rounds, ok := runDense(g, src, ecc, true, nil)
		if !ok || rounds != ecc {
			t.Fatalf("%s: dense wave rounds/ok = %d/%v, want %d/true", g.Name(), rounds, ok, ecc)
		}
		sparse := runSparse(g, src, ecc, true, nil)
		dist := graph.BFS(g, src).Dist
		for v := 0; v < g.N(); v++ {
			if dense[v] != sparse[v] || dense[v] != int(dist[v]) {
				t.Fatalf("%s: node %d dense/sparse/bfs = %d/%d/%d",
					g.Name(), v, dense[v], sparse[v], dist[v])
			}
		}
	}
}

// TestDenseWaveMatchesSparseErasure: under shared-seed per-link
// erasure the two engines' waves stay level-identical (levels need not
// be BFS distances anymore — losses delay layers).
func TestDenseWaveMatchesSparseErasure(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		for _, loss := range []float64{0.1, 0.3} {
			src := graph.NodeID(g.N() - 1)
			horizon := 4*int64(graph.Eccentricity(g, src)) + 64
			dense, _, ok := runDense(g, src, horizon, true, channel.NewErasure(loss, 99))
			if !ok {
				t.Fatalf("%s loss=%g: dense wave incomplete within horizon %d", g.Name(), loss, horizon)
			}
			sparse := runSparse(g, src, horizon, true, channel.NewErasure(loss, 99))
			for v := 0; v < g.N(); v++ {
				if dense[v] != sparse[v] {
					t.Fatalf("%s loss=%g: node %d dense level %d != sparse %d",
						g.Name(), loss, v, dense[v], sparse[v])
				}
			}
		}
	}
}

// TestDenseWaveNoCDOnPath: a path never produces collisions (each
// listener has at most one pulsing neighbor), so the wave works
// without CD there; dense and sparse must still agree. This is the
// "CD off where applicable" face of the twin contract — on dense
// layers the wave REQUIRES CD, which the ideal test exercises.
func TestDenseWaveNoCDOnPath(t *testing.T) {
	g := graph.FromStream(graph.StreamPath(300))
	ecc := int64(graph.Eccentricity(g, 0))
	dense, rounds, ok := runDense(g, 0, ecc, false, nil)
	if !ok || rounds != ecc {
		t.Fatalf("dense wave without CD on path: rounds/ok = %d/%v, want %d/true", rounds, ok, ecc)
	}
	sparse := runSparse(g, 0, ecc, false, nil)
	for v := range dense {
		if dense[v] != sparse[v] {
			t.Fatalf("node %d dense level %d != sparse %d", v, dense[v], sparse[v])
		}
	}
}

// TestDenseWaveStallsWithoutCD documents why the wave needs CD: on a
// grid swept from a corner, interior node (1,1) hears its two
// distance-1 neighbors collide every round; without the ⊤ symbol it
// never triggers and the wave cannot cover the grid.
func TestDenseWaveStallsWithoutCD(t *testing.T) {
	g := graph.FromStream(graph.StreamGrid(8, 8))
	horizon := 4 * int64(graph.Eccentricity(g, 0))
	_, _, ok := runDense(g, 0, horizon, false, nil)
	if ok {
		t.Fatal("collision wave completed without CD on a grid; collision semantics look wrong")
	}
}

// TestDenseWavePostHorizonSilence pins the post-horizon contract: the
// wave neither transmits nor listens after the horizon, so extra
// rounds change nothing (mirroring the sparse Wave's Sleep).
func TestDenseWavePostHorizonSilence(t *testing.T) {
	g := graph.ClusterChain(4, 4)
	ecc := int64(graph.Eccentricity(g, 0))
	pr := beep.NewDenseWave(g, 0, ecc)
	eng := radio.NewDense(g, radio.Config{CollisionDetection: true}, pr)
	defer eng.Close()
	eng.Run(ecc + 16)
	st := eng.Stats()
	if !pr.Done() {
		t.Fatal("wave incomplete at horizon on ideal channel")
	}
	if st.ActiveRounds > ecc {
		t.Fatalf("transmissions in %d rounds, want none past horizon %d", st.ActiveRounds, ecc)
	}
	if eng.Round() != ecc+16 {
		t.Fatalf("engine round = %d, want %d", eng.Round(), ecc+16)
	}
}
