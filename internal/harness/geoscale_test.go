package harness

import (
	"strings"
	"testing"

	"radiocast/internal/exp"
)

// TestE22QuickCompletes runs the quick geometric sweep (n up to 10^4,
// all three unit-disk workloads) and requires every cell to finish its
// broadcast and carry the capacity metrics. The qudg rows complete
// under the distance-ramped band erasure: decay and CR retry, the
// wave gets the 4x-eccentricity slacked horizon.
func TestE22QuickCompletes(t *testing.T) {
	p := E22Plan(DefaultScaleConfig(), 1, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
		if !r.Completed {
			t.Errorf("%s: broadcast incomplete after %d rounds", r.Key, r.Rounds)
		}
		if r.MemBytes < 0 || r.Value <= 0 {
			t.Errorf("%s: implausible metrics mem=%d deliveries=%g", r.Key, r.MemBytes, r.Value)
		}
	}
	tb := p.Assemble(results)
	if len(tb.Rows) == 0 {
		t.Fatal("E22 produced no rows")
	}
	workloads := map[string]bool{}
	for _, row := range tb.Rows {
		workloads[row[0]] = true
	}
	for _, w := range e22Workloads {
		if !workloads[w] {
			t.Errorf("E22 table missing workload row %q", w)
		}
	}
}

// TestE22WorkerInvariance pins the geometric sweep onto the dense
// engine's determinism contract: the E22 table is byte-identical
// sequentially and with the parallel delivery pass — including the
// qudg rows, whose RangeErasure DropLink runs concurrently.
func TestE22WorkerInvariance(t *testing.T) {
	run := func(workers int) string {
		p := E22Plan(ScaleConfig{Workers: workers}, 1, true)
		tb, _ := (&exp.Runner{Parallelism: 1}).RunTable(p)
		return tb.String()
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("E22 tables diverge across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

// TestE22MaxNCapsSweep pins ScaleConfig.MaxN threading and the
// per-workload geometry cap: only the plain udg workload scales past
// 10^5.
func TestE22MaxNCapsSweep(t *testing.T) {
	small := E22Plan(ScaleConfig{MaxN: 1_000}, 1, false)
	big := E22Plan(ScaleConfig{MaxN: 1_000_000}, 1, false)
	if len(small.Cells) >= len(big.Cells) {
		t.Fatalf("MaxN=1000 plan has %d cells, MaxN=10^6 has %d; cap not applied",
			len(small.Cells), len(big.Cells))
	}
	for _, c := range small.Cells {
		if strings.Contains(c.Key.Config, "n=10000") {
			t.Fatalf("MaxN=1000 plan contains oversized cell %s", c.Key)
		}
	}
	for _, c := range big.Cells {
		if strings.Contains(c.Key.Config, "n=1000000") && !strings.Contains(c.Key.Config, "/udg/") {
			t.Fatalf("geometry cap violated: 10^6 cell on a capped workload: %s", c.Key)
		}
	}
}

// TestE23AdaptiveBeatsOneshot is the dynamics layer's acceptance
// check: under mobility with per-period re-layout, adaptive
// informed-set carryover must strictly beat the one-shot schedule's
// coverage (which is frozen at the source's blob once its single wave
// expires). Compared per (period, seed) pair; the adaptive arm is
// also sanity-checked to never cover less than its own epoch 0 (==
// the oneshot run).
func TestE23AdaptiveBeatsOneshot(t *testing.T) {
	p := E23Plan(2, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	idx := exp.Index(results)
	anyStrict := false
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
	}
	for _, key := range []string{"T=64", "T=256"} {
		for s := uint64(0); s < 2; s++ {
			one := idx[exp.Key{Experiment: "E23", Config: "oneshot/" + key, Seed: s}]
			ada := idx[exp.Key{Experiment: "E23", Config: "adaptive/" + key, Seed: s}]
			if ada.Value < one.Value {
				t.Errorf("%s seed %d: adaptive coverage %g below oneshot %g — carryover lost ground",
					key, s, ada.Value, one.Value)
			}
			if ada.Value > one.Value {
				anyStrict = true
			}
			if one.Value <= 0 || one.Value >= 1 {
				t.Errorf("%s seed %d: oneshot coverage %g — expected a strict fraction (source blob only)",
					key, s, one.Value)
			}
			if ada.Epochs < 2 {
				t.Errorf("%s seed %d: adaptive ran %d epochs — the retry layer never re-executed", key, s, ada.Epochs)
			}
		}
	}
	if !anyStrict {
		t.Error("adaptive never strictly beat oneshot on any (period, seed) cell")
	}
}

// TestE23Deterministic pins that a mobility cell — layout, waypoint
// walk, per-period Retopo, adaptive epochs — is an exact function of
// its seed.
func TestE23Deterministic(t *testing.T) {
	a := runE23Cell("adaptive", 64, 512, 3, 512)
	b := runE23Cell("adaptive", 64, 512, 3, 512)
	if a != b {
		t.Fatalf("same-seed mobility cells diverge:\n%+v\n%+v", a, b)
	}
	c := runE23Cell("adaptive", 64, 512, 4, 512)
	if a.Value == c.Value && a.Rounds == c.Rounds {
		t.Fatalf("different-seed mobility cells identical: %+v", a)
	}
}
