package gstdist_test

// Property tests for the boundary-separation invariant of the
// pipelined even/odd construction (Section 2.2.4), across both
// theorem stacks that run it: the standalone distributed GST build
// (internal/gstdist) and the per-ring builds of Theorems 1.1/1.3
// (internal/rings).
//
// The invariant has three parts:
//
//  1. parity separation: every phase drives only boundaries of one
//     parity, so simultaneously-active boundaries are >= 2 indices
//     apart and never share a node level;
//  2. tag disambiguation: when two simultaneously-active boundaries
//     come within conflict (hearing) distance — levels at most one
//     apart, which parity separation allows both within a
//     construction and across a ring border — their level-mod-4
//     packet tags must differ from every tag a cross-boundary
//     listener accepts;
//  3. dependency skew: boundary b's rank-i window opens strictly
//     after boundary b-1's rank-i AND rank-(i-1) windows close, so a
//     red ranked i (directly or by promotion from the rank-(i-1)
//     window) always knows its rank before its blue role needs it.
//
// The tests are table-driven with a testing/quick-style randomized
// generator on top: random (n, D, c) tuples and random graphs × seeds
// exercise the arithmetic far from the hand-picked cases.

import (
	"testing"

	"radiocast/internal/assign"
	"radiocast/internal/graph"
	"radiocast/internal/gstdist"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
)

// pipeCfg builds a pipelined construction schedule.
func pipeCfg(n, d, c int) gstdist.Config {
	cfg := gstdist.DefaultConfig(n, d, c, gstdist.LayerPreset, false)
	cfg.PipelinedBoundaries = true
	return cfg
}

// role is a node-level's activity in one phase.
type role struct {
	boundary int
	blue     bool
}

// activeRole replicates the protocol's per-phase role resolution from
// the exported schedule arithmetic: a node at the given construction
// level serves its red boundary or its blue boundary (never both — the
// test asserts that separately).
func activeRole(cfg gstdist.Config, level, phase int) (role, bool) {
	bBlue := cfg.DBound - level
	if cfg.BoundaryActiveInPhase(bBlue-1, phase) {
		return role{boundary: bBlue - 1}, true
	}
	if cfg.BoundaryActiveInPhase(bBlue, phase) {
		return role{boundary: bBlue, blue: true}, true
	}
	return role{}, false
}

// ownTag is the tag a node at level l stamps on its transmissions;
// wantTag is the only tag its boundary machine accepts.
func ownTag(cfg gstdist.Config, level int) int32 { return cfg.LevelTag(int32(level)) }

func wantTag(cfg gstdist.Config, level int, blue bool) int32 {
	if blue {
		return cfg.LevelTag(int32(level - 1))
	}
	return cfg.LevelTag(int32(level + 1))
}

// checkPhaseArithmetic asserts parts 1 and 3 plus the schedule-length
// identities for one configuration.
func checkPhaseArithmetic(t *testing.T, cfg gstdist.Config) {
	t.Helper()
	maxRank := cfg.Assign.MaxRank()
	phases := cfg.PipelinedPhases()
	if want := 3*cfg.DBound + 2*maxRank - 4; cfg.DBound >= 1 && phases != want {
		t.Fatalf("D=%d: %d phases, want %d", cfg.DBound, phases, want)
	}
	if got, want := cfg.BoundariesRounds(), int64(phases)*cfg.Assign.RankLen(); got != want {
		t.Fatalf("D=%d: segment B %d rounds, want phases×rankLen = %d", cfg.DBound, got, want)
	}
	seq := cfg
	seq.PipelinedBoundaries = false
	if cfg.DBound >= 3 && cfg.BoundariesRounds() > seq.BoundariesRounds() {
		t.Fatalf("D=%d: pipelined %d > sequential %d", cfg.DBound, cfg.BoundariesRounds(), seq.BoundariesRounds())
	}
	if cfg.DBound >= 4 && cfg.BoundariesRounds() >= seq.BoundariesRounds() {
		t.Fatalf("D=%d: pipelined %d not strictly below sequential %d", cfg.DBound, cfg.BoundariesRounds(), seq.BoundariesRounds())
	}
	for p := 0; p < phases; p++ {
		var active []int
		for b := 0; b < cfg.DBound; b++ {
			if cfg.BoundaryActiveInPhase(b, p) {
				active = append(active, b)
			}
		}
		for _, b := range active {
			if b%2 != p%2 {
				t.Fatalf("phase %d drives boundary %d of the wrong parity", p, b)
			}
		}
		for i := 1; i < len(active); i++ {
			if active[i]-active[i-1] < 2 {
				t.Fatalf("phase %d drives adjacent boundaries %d and %d (shared level %d)",
					p, active[i-1], active[i], cfg.BlueLevel(active[i]))
			}
		}
	}
	// Dependency skew (part 3): every rank window at boundary b opens
	// after the windows at b-1 that can produce that rank — rank i
	// directly, and rank i via promotion at the rank-(i-1) window.
	for b := 1; b < cfg.DBound; b++ {
		for i := 1; i <= maxRank; i++ {
			if cfg.PhaseOfRank(b, i) <= cfg.PhaseOfRank(b-1, i) {
				t.Fatalf("boundary %d rank %d opens at phase %d, not after boundary %d's phase %d",
					b, i, cfg.PhaseOfRank(b, i), b-1, cfg.PhaseOfRank(b-1, i))
			}
			if i >= 2 && cfg.PhaseOfRank(b, i) <= cfg.PhaseOfRank(b-1, i-1) {
				t.Fatalf("boundary %d rank %d opens before boundary %d's promoting rank-%d window",
					b, i, b-1, i-1)
			}
		}
	}
}

func TestPipelinedPhaseArithmetic(t *testing.T) {
	for _, c := range []struct{ n, d, c int }{
		{16, 1, 1}, {16, 2, 1}, {24, 3, 2}, {32, 10, 1}, {64, 9, 2}, {1 << 10, 23, 1},
	} {
		checkPhaseArithmetic(t, pipeCfg(c.n, c.d, c.c))
	}
	// Randomized sweep (testing/quick-style): the arithmetic must hold
	// for arbitrary (n, D, c).
	r := rng.New(0x1517)
	for trial := 0; trial < 200; trial++ {
		n := 8 + r.Intn(1<<12)
		d := 1 + r.Intn(40)
		checkPhaseArithmetic(t, pipeCfg(n, d, 1+r.Intn(3)))
	}
}

// checkGraphConflicts asserts part 2 on a concrete graph: whenever two
// neighbors are simultaneously driven by different boundaries, neither
// can accept the other's packets. levels[v] is v's construction-local
// level; reject is called for violations.
func checkGraphConflicts(t *testing.T, g *graph.Graph, cfg gstdist.Config, levels []int32) {
	t.Helper()
	phases := cfg.PipelinedPhases()
	for p := 0; p < phases; p++ {
		for v := 0; v < g.N(); v++ {
			lv := int(levels[v])
			bBlue := cfg.DBound - lv
			if cfg.BoundaryActiveInPhase(bBlue, p) && cfg.BoundaryActiveInPhase(bBlue-1, p) {
				t.Fatalf("phase %d: node %d (level %d) active in both roles", p, v, lv)
			}
			rv, okv := activeRole(cfg, lv, p)
			if !okv {
				continue
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				lu := int(levels[u])
				ru, oku := activeRole(cfg, lu, p)
				if !oku || ru.boundary == rv.boundary {
					continue
				}
				// v listens with wantTag; u transmits with ownTag. A
				// cross-boundary packet must never carry an accepted tag.
				if wantTag(cfg, lv, rv.blue) == ownTag(cfg, lu) {
					t.Fatalf("phase %d: node %d (level %d, boundary %d) would accept packets from "+
						"node %d (level %d, boundary %d): tag %d",
						p, v, lv, rv.boundary, u, lu, ru.boundary, ownTag(cfg, lu))
				}
			}
		}
	}
}

func TestPipelinedBoundarySeparationOnGraphs(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(24),
		graph.Grid(4, 8),
		graph.ClusterChain(5, 4),
		graph.BinaryTree(31),
	}
	// Randomized graphs × seeds on top of the table.
	r := rng.New(0x1518)
	for trial := 0; trial < 12; trial++ {
		n := 12 + r.Intn(48)
		cases = append(cases, graph.GNP(n, 0.05+r.Float64()*0.2, uint64(r.Intn(1<<16))))
	}
	for _, g := range cases {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			if d < 1 {
				t.Skip("diameter 0")
			}
			levels := graph.BFS(g, 0).Dist
			checkGraphConflicts(t, g, pipeCfg(g.N(), d, 1), levels)
		})
	}
}

// ringNode is a (ring, local level) pair with its global level.
type ringNode struct {
	ring   int
	local  int
	global int
}

// TestRingsPipelinedParitySeparation asserts the invariant across ring
// borders: the lockstep W>=3 distance argument relaxes to parity
// separation under pipelining, so active boundaries of adjacent rings
// can come within one layer of each other — and must then be
// distinguished by the (ring·W mod 4)-anchored level tags, exactly as
// rings.Protocol configures them.
func TestRingsPipelinedParitySeparation(t *testing.T) {
	type cse struct{ n, d, w int }
	cases := []cse{{64, 15, 4}, {64, 19, 5}, {128, 23, 6}, {96, 27, 7}}
	r := rng.New(0x1519)
	for trial := 0; trial < 24; trial++ {
		w := 4 + r.Intn(6)
		cases = append(cases, cse{16 + r.Intn(240), w + r.Intn(40), w})
	}
	for _, c := range cases {
		rcfg := rings.DefaultConfig(c.n, c.d, 0, 1)
		rcfg.W = c.w
		rcfg.GST.DBound = c.w - 1
		rcfg.SetPipelined(true)
		if !rcfg.Pipelined() {
			t.Fatalf("n=%d d=%d w=%d: pipelining did not engage", c.n, c.d, c.w)
		}
		// Per-ring construction configs exactly as rings.Protocol builds
		// them: local levels, tag base anchored at the ring's global
		// offset mod 4.
		gcfg := make([]gstdist.Config, rcfg.Rings())
		for ring := range gcfg {
			gcfg[ring] = rcfg.GST
			gcfg[ring].TagBase = int32(ring * c.w % 4)
		}
		// Every populated (ring, local level) slot.
		var nodes []ringNode
		for g := 0; g <= c.d; g++ {
			nodes = append(nodes, ringNode{ring: rcfg.RingOf(int32(g)), local: int(rcfg.LocalLevel(int32(g))), global: g})
		}
		phases := rcfg.GST.PipelinedPhases()
		for p := 0; p < phases; p++ {
			for _, a := range nodes {
				ra, oka := activeRole(gcfg[a.ring], a.local, p)
				if !oka {
					continue
				}
				for _, b := range nodes {
					// Hearing distance: same or adjacent global layer.
					if b.global < a.global-1 || b.global > a.global+1 {
						continue
					}
					rb, okb := activeRole(gcfg[b.ring], b.local, p)
					if !okb || (a.ring == b.ring && ra.boundary == rb.boundary) {
						continue
					}
					if wantTag(gcfg[a.ring], a.local, ra.blue) == ownTag(gcfg[b.ring], b.local) {
						t.Fatalf("n=%d d=%d w=%d phase %d: layer %d (ring %d, boundary %d) accepts "+
							"packets from layer %d (ring %d, boundary %d)",
							c.n, c.d, c.w, p, a.global, a.ring, ra.boundary, b.global, b.ring, rb.boundary)
					}
				}
			}
		}
	}
}

// TestSequentialTagsStayZero pins the compatibility contract: the
// sequential construction never sets tags, so every packet the
// untagged protocol exchanged is byte-identical under the tagged
// packet layout (all-zero tags accept all-zero tags).
func TestSequentialTagsStayZero(t *testing.T) {
	var nd assign.Node
	_ = nd // the zero Node carries zero tags by construction
	cfg := gstdist.DefaultConfig(64, 8, 1, gstdist.LayerPreset, false)
	if cfg.LevelTag(0) != 0 || cfg.TagBase != 0 {
		t.Fatal("sequential default config must keep a zero tag base")
	}
	if (assign.IdentPacket{}).Tag != 0 || (assign.PingPacket{}).Tag != 0 {
		t.Fatal("zero-value packets must carry zero tags")
	}
}
