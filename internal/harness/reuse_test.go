package harness

import (
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
)

// TestReuseContextsMatchFreshRuns pins the harness half of the reuse
// contract across every stack: executing N seeds through one reusable
// context must produce exactly the rounds, completion, and engine
// stats of N construct-per-run executions — including over an
// adversarial channel.
func TestReuseContextsMatchFreshRuns(t *testing.T) {
	g := graph.ClusterChain(4, 5)
	d := graph.Eccentricity(g, 0)
	const limit = 1 << 20
	seeds := []uint64{0, 1, 2, 5}

	t.Run("decay", func(t *testing.T) {
		run := NewDecayRun(g, 0)
		for _, s := range seeds {
			fr, fok, fst := RunDecayOn(g, nil, s, limit)
			rr, rok, rst := run.Run(nil, s, limit)
			if fr != rr || fok != rok || fst != rst {
				t.Fatalf("seed %d: fresh (%d,%v,%+v) vs reused (%d,%v,%+v)", s, fr, fok, fst, rr, rok, rst)
			}
		}
	})
	t.Run("decay-lossy", func(t *testing.T) {
		run := NewDecayRun(g, 0)
		for _, s := range seeds {
			fr, fok, fst := RunDecayOn(g, channel.NewErasure(0.2, rng.Mix(s, 1)), s, limit)
			rr, rok, rst := run.Run(channel.NewErasure(0.2, rng.Mix(s, 1)), s, limit)
			if fr != rr || fok != rok || fst != rst {
				t.Fatalf("seed %d: fresh (%d,%v,%+v) vs reused (%d,%v,%+v)", s, fr, fok, fst, rr, rok, rst)
			}
		}
	})
	t.Run("cr", func(t *testing.T) {
		run := NewCRRun(g, d, 0)
		for _, s := range seeds {
			fr, fok, _ := RunCROn(g, d, nil, s, limit)
			rr, rok, _ := run.Run(nil, s, limit)
			if fr != rr || fok != rok {
				t.Fatalf("seed %d: fresh (%d,%v) vs reused (%d,%v)", s, fr, fok, rr, rok)
			}
		}
	})
	t.Run("gst-single", func(t *testing.T) {
		run := NewGSTSingleRun(g, false, 0)
		for _, s := range seeds {
			fr, fok, _ := RunGSTSingleOn(g, false, nil, s, limit)
			rr, rok, _ := run.Run(nil, s, limit)
			if fr != rr || fok != rok {
				t.Fatalf("seed %d: fresh (%d,%v) vs reused (%d,%v)", s, fr, fok, rr, rok)
			}
		}
	})
	t.Run("gst-multi", func(t *testing.T) {
		run := NewGSTMultiRun(g, 4, 0)
		for _, s := range seeds {
			fr, fok, _ := RunGSTMultiOn(g, 4, nil, s, limit)
			rr, rok, _ := run.Run(nil, s, limit)
			if fr != rr || fok != rok {
				t.Fatalf("seed %d: fresh (%d,%v) vs reused (%d,%v)", s, fr, fok, rr, rok)
			}
		}
	})
	t.Run("theorem11", func(t *testing.T) {
		run := NewTheorem11Run(g, d, 1, 0)
		for _, s := range seeds {
			fresh := RunTheorem11(g, d, 1, s)
			reused := run.Run(nil, s)
			if fresh != reused {
				t.Fatalf("seed %d:\nfresh  %+v\nreused %+v", s, fresh, reused)
			}
		}
	})
	t.Run("gst-build", func(t *testing.T) {
		// E6's two modes: N-seed runs through one reusable context must
		// match one-shot construct-per-run executions bit for bit —
		// completion round, completion, validity, and budget.
		for _, pipelined := range []bool{false, true} {
			run := NewGSTPipelinedRun(g, g.N(), d, 1, pipelined)
			for _, s := range seeds {
				fresh := RunGSTBuild(g, g.N(), d, 1, pipelined, s)
				reused := run.Run(s)
				if fresh != reused {
					t.Fatalf("pipelined=%v seed %d:\nfresh  %+v\nreused %+v", pipelined, s, fresh, reused)
				}
			}
		}
	})
	t.Run("gst-build-nbound", func(t *testing.T) {
		// The large-schedule-bound regime E6 reports (N = 2^10) must
		// reuse identically too.
		run := NewGSTPipelinedRun(g, 1<<10, d, 1, true)
		for _, s := range seeds[:2] {
			fresh := RunGSTBuild(g, 1<<10, d, 1, true, s)
			reused := run.Run(s)
			if fresh != reused {
				t.Fatalf("seed %d:\nfresh  %+v\nreused %+v", s, fresh, reused)
			}
		}
	})
	t.Run("theorem11-pipelined", func(t *testing.T) {
		// Wide rings engage the pipelined per-ring builds; the reuse
		// path must stay bit-identical there as well.
		cfg := rings.DefaultConfig(g.N(), d, 0, 1)
		cfg.W = 5
		cfg.GST.DBound = cfg.W - 1
		cfg.SetPipelined(true)
		if !cfg.Pipelined() {
			t.Fatal("pipelining did not engage at W=5")
		}
		run := NewTheorem11RunCfg(g, cfg, 0)
		for _, s := range seeds {
			fresh := RunTheorem11OnCfg(g, cfg, nil, s, 0)
			reused := run.Run(nil, s)
			if fresh != reused {
				t.Fatalf("seed %d:\nfresh  %+v\nreused %+v", s, fresh, reused)
			}
		}
	})
	t.Run("theorem13", func(t *testing.T) {
		run := NewTheorem13Run(g, d, 4, 1, 0)
		for _, s := range seeds {
			fr, fok, _, fst := RunTheorem13On(g, d, 4, 1, nil, s)
			rr, rok, rst := run.Run(nil, s)
			if fr != rr || fok != rok || fst != rst {
				t.Fatalf("seed %d: fresh (%d,%v,%+v) vs reused (%d,%v,%+v)", s, fr, fok, fst, rr, rok, rst)
			}
		}
	})
}
