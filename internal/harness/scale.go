package harness

// E19: the million-node scale sweep. Every cell drives the dense
// engine (radio.Dense + decay.Dense — structure-of-arrays node state,
// bitset frontiers) over a streaming-generated CSR workload
// (graph.FromStream / graph.BuildConnected: no Builder maps, the edge
// stream lands directly in the final arrays), optionally with the
// deterministic intra-run parallel delivery pass (radio.Config.Workers
// — byte-identical output at any worker count, so the table below is
// CI-comparable across worker settings).
//
// The rendered table holds only reproducible outputs (rounds,
// deliveries, completion). The capacity metrics — live-heap growth of
// graph + engine + protocol state, process peak RSS, and per-cell wall
// time for rounds/sec — ride the JSON artifact (mem_bytes,
// peak_rss_bytes, wall_us per cell; radiobench -json, the CI
// BENCH_scale.json artifact) and are zeroed by exp.Artifact.Canonical.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"radiocast/internal/decay"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// E19MaxN caps the sweep's largest workload size. The default keeps
// test-suite and CI runs to n = 10^5; the acceptance run raises it to
// 10^6 (cmd/radiobench -scalemaxn).
var E19MaxN = 100_000

// E19Workers is the dense engine's worker count for every E19 cell;
// 0 resolves to min(8, GOMAXPROCS). Results are byte-identical at any
// setting (cmd/radiobench -scaleworkers).
var E19Workers = 0

// e19Seed keys the GNP workload's edge stream; fixed so every cell of
// a sweep measures the same graph.
const e19Seed = 0xe19

// e19Workloads orders the workload columns.
var e19Workloads = []string{"path", "grid", "gnp", "cluster"}

// e19PathCap bounds the path workload: a 10^6-node path needs ~10^7
// Decay rounds (D log n), which is a different experiment. The other
// workloads have sublinear diameter and scale to 10^6.
const e19PathCap = 10_000

func e19Workers() int {
	if E19Workers > 0 {
		return E19Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// e19Graph builds one workload at size ~n through the streaming
// generators. Actual node counts are the generator's (grid and cluster
// round n to their factor shapes).
func e19Graph(workload string, n int) *graph.Graph {
	switch workload {
	case "path":
		return graph.FromStream(graph.StreamPath(n))
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.FromStream(graph.StreamGrid(side, side))
	case "gnp":
		return graph.BuildConnected(graph.StreamGNP(n, 16/float64(n), e19Seed), e19Seed)
	default: // "cluster"
		size := int(math.Sqrt(float64(n)))
		return graph.FromStream(graph.StreamClusterChain(n/size, size))
	}
}

// e19Rounds estimates a workload's Decay completion rounds (cost
// model only): D log n + log^2 n on the generator's diameter shape.
func e19Rounds(workload string, n int) int64 {
	l := int64(sched.LogN(n))
	var d int64
	switch workload {
	case "path":
		d = int64(n)
	case "grid", "cluster":
		d = 2 * int64(math.Sqrt(float64(n)))
	default: // gnp, p = 16/n
		d = l
	}
	return d*l + l*l
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// liveHeap returns the collected live-heap size.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// E19Plan is the scale sweep: n = 10^3 .. E19MaxN per workload (path
// capped at 10^4), one dense Decay broadcast per (workload, n, seed).
func E19Plan(seeds int, quick bool) *exp.Plan {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{1_000, 10_000}
	}
	maxN := E19MaxN
	workers := e19Workers()
	p := &exp.Plan{ID: "E19", Title: "Million-node engine: dense-engine scale sweep (SoA Decay)"}
	type cfg struct {
		workload string
		n        int
	}
	var cfgs []cfg
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		for _, w := range e19Workloads {
			if w == "path" && n > e19PathCap {
				continue
			}
			cfgs = append(cfgs, cfg{w, n})
		}
	}
	for _, c := range cfgs {
		for s := 0; s < seeds; s++ {
			c, seed := c, uint64(s)
			p.Cells = append(p.Cells, exp.Cell{
				Key:        exp.Key{Experiment: "E19", Config: fmt.Sprintf("%s/n=%d", c.workload, c.n), Seed: seed},
				RoundLimit: broadcastLimit,
				Cost:       budgetCost(c.n, e19Rounds(c.workload, c.n)),
				Run: func(limit int64) exp.Result {
					// The heap delta brackets everything the cell allocates
					// and keeps live: CSR graph, engine buffers, SoA protocol
					// state. Concurrent cells can perturb it — it is a
					// capacity figure, not a reproducible output.
					before := liveHeap()
					g := e19Graph(c.workload, c.n)
					pr := decay.NewDense(g, seed, 0)
					eng := radio.NewDense(g, radio.Config{Workers: workers}, pr)
					defer eng.Close()
					rounds, ok := eng.RunUntil(limit, pr.Done)
					st := eng.Stats()
					after := liveHeap()
					res := exp.Rounds(rounds, ok)
					res.Value = float64(st.Deliveries)
					res.BusyRounds = st.BusyRounds
					res.SilentRounds = st.SilentRounds
					res.MaxFrontier = st.MaxFrontier
					if d := after - before; d > 0 {
						res.MemBytes = d
					}
					res.PeakRSS = peakRSSBytes()
					return res
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			// The worker count stays out of the title: the rendered table
			// must be byte-identical at any -scaleworkers setting (CI
			// compares the sequential and parallel sweeps with cmp).
			Title: "E19: dense-engine scale sweep (SoA Decay, streaming CSR)",
			Comment: "one dense Decay broadcast per cell; rounds and deliveries are byte-identical at any worker\n" +
				"count (the deterministic parallel delivery pass); bytes/node, peak RSS, and rounds/sec ride the\n" +
				"JSON artifact only (mem_bytes, peak_rss_bytes, wall_us) — they are machine measurements",
			Header: []string{"workload", "n", "ok", "rounds", "deliveries"},
		}
		for _, c := range cfgs {
			var rs, ds []float64
			okCount := 0
			for s := 0; s < seeds; s++ {
				r := idx[exp.Key{Experiment: "E19", Config: fmt.Sprintf("%s/n=%d", c.workload, c.n), Seed: uint64(s)}]
				if r.Completed {
					okCount++
					rs = append(rs, float64(r.Rounds))
					ds = append(ds, r.Value)
				}
			}
			t.AddRow(c.workload, fmt.Sprintf("%d", c.n),
				fmt.Sprintf("%d/%d", okCount, seeds),
				stats.F(meanOrDash(rs)), stats.F(meanOrDash(ds)))
		}
		return t
	}
	return p
}

// E19ScaleSweep runs E19 sequentially (compat wrapper).
func E19ScaleSweep(seeds int, quick bool) *stats.Table { return runPlan(E19Plan(seeds, quick)) }
