// Package rng provides deterministic, splittable randomness for the
// simulator and the protocols running on it.
//
// Every protocol run is driven by a single 64-bit seed. Per-node,
// per-purpose streams are derived with SplitMix64 so that
//   - runs are exactly reproducible given (seed, graph, parameters),
//   - each node's coin flips are independent of every other node's, and
//   - adding a new consumer of randomness does not perturb existing
//     streams (streams are keyed, not drawn from a shared sequence).
package rng

import "math/rand"

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the recommended seeder for the
// xoshiro family; we use it both as a mixer and as a stream generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix combines an arbitrary list of 64-bit keys into a single
// well-distributed 64-bit value. It is used to derive stream seeds from
// (seed, node, purpose) tuples.
func Mix(keys ...uint64) uint64 {
	state := uint64(0x243f6a8885a308d3) // pi, nothing up the sleeve
	for _, k := range keys {
		state ^= splitmix64(&state) ^ k
		_ = splitmix64(&state)
	}
	return splitmix64(&state)
}

// Mix3 is Mix for exactly three keys, avoiding the variadic slice.
// The dense engine draws one keyed value per (seed, node, round) on its
// hottest path, where even a stack-promoted slice header is measurable;
// Mix3(a, b, c) == Mix(a, b, c) bit-for-bit.
func Mix3(a, b, c uint64) uint64 {
	state := uint64(0x243f6a8885a308d3)
	state ^= splitmix64(&state) ^ a
	_ = splitmix64(&state)
	state ^= splitmix64(&state) ^ b
	_ = splitmix64(&state)
	state ^= splitmix64(&state) ^ c
	_ = splitmix64(&state)
	return splitmix64(&state)
}

// Source is a deterministic rand.Source64 backed by xoshiro256**.
type Source struct {
	s [4]uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a Source seeded from the given 64-bit seed via
// SplitMix64, per the xoshiro authors' recommendation.
func NewSource(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = splitmix64(&state)
	}
	// xoshiro must not start at the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits of the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source. It reseeds the stream in place.
func (s *Source) Seed(seed int64) { *s = *NewSource(uint64(seed)) }

// New returns a *rand.Rand over a fresh xoshiro256** stream derived
// from the given keys.
func New(keys ...uint64) *rand.Rand {
	return rand.New(NewSource(Mix(keys...)))
}

// Reseed rewinds a Rand created by New to the stream derived from the
// given keys, in place and allocation-free: Reseed(r, k...) leaves r
// bit-identical to New(k...). This is the run-reuse path — a harness
// that executes many seeds on one protocol stack reseeds the held
// Rands instead of constructing new ones.
func Reseed(r *rand.Rand, keys ...uint64) {
	r.Seed(int64(Mix(keys...)))
}

// Stream identifies a derived randomness stream. The zero value is a
// valid (if boring) stream.
type Stream struct {
	seed uint64
}

// NewStream creates a root stream from a run seed.
func NewStream(seed uint64) Stream { return Stream{seed: seed} }

// Derive returns a child stream keyed by the given values. Deriving is
// cheap and purely functional: the parent stream is unaffected.
func (st Stream) Derive(keys ...uint64) Stream {
	all := make([]uint64, 0, len(keys)+1)
	all = append(all, st.seed)
	all = append(all, keys...)
	return Stream{seed: Mix(all...)}
}

// Rand materializes the stream as a *rand.Rand.
func (st Stream) Rand() *rand.Rand { return rand.New(NewSource(st.seed)) }

// Seed exposes the stream's derived seed (for logging/reproduction).
func (st Stream) Seed() uint64 { return st.seed }
