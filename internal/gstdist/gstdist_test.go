package gstdist

import (
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// runConstruction executes the full distributed construction and
// returns per-node results plus the elapsed rounds.
func runConstruction(t *testing.T, g *graph.Graph, cfg Config, cd bool, seed uint64) ([]Result, int64) {
	t.Helper()
	nw := radio.New(g, radio.Config{CollisionDetection: cd})
	protos := make([]*Protocol, g.N())
	var preset []int32
	if cfg.Mode == LayerPreset {
		bfs := graph.BFS(g, 0)
		preset = bfs.Dist
	}
	for v := 0; v < g.N(); v++ {
		lvl := int32(0)
		if preset != nil {
			lvl = preset[v]
		}
		protos[v] = New(cfg, graph.NodeID(v), v == 0, lvl, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	nw.Run(cfg.TotalRounds())
	results := make([]Result, g.N())
	for v := range protos {
		results[v] = protos[v].Result()
	}
	return results, nw.Stats().Rounds
}

// toTree converts distributed results into a gst.Tree for validation.
func toTree(g *graph.Graph, results []Result, roots ...graph.NodeID) *gst.Tree {
	tree := gst.NewTree(g, roots)
	for v, res := range results {
		tree.Level[v] = res.Level
		tree.Parent[v] = res.Parent
		tree.Rank[v] = res.Rank
	}
	return tree
}

// verifyConstruction validates the full GST contract of the
// distributed output.
func verifyConstruction(t *testing.T, g *graph.Graph, results []Result) {
	t.Helper()
	bfs := graph.BFS(g, 0)
	for v := 0; v < g.N(); v++ {
		if results[v].Level != bfs.Dist[v] {
			t.Fatalf("node %d level %d, want %d", v, results[v].Level, bfs.Dist[v])
		}
		if v != 0 && results[v].Parent < 0 {
			t.Fatalf("node %d has no parent", v)
		}
	}
	tree := toTree(g, results, 0)
	if err := tree.Validate(); err != nil {
		t.Fatalf("distributed GST invalid: %v", err)
	}
	// Knowledge checks: each node's believed parent rank must match the
	// parent's actual rank, and SameRankChild must reflect the tree.
	children := tree.Children()
	for v := 0; v < g.N(); v++ {
		if p := results[v].Parent; p >= 0 {
			if results[v].ParentRank != results[p].Rank {
				t.Fatalf("node %d believes parent rank %d, parent has %d",
					v, results[v].ParentRank, results[p].Rank)
			}
		}
		want := gst.SameRankChild(tree, children, graph.NodeID(v)) >= 0
		if results[v].SameRankChild != want {
			t.Fatalf("node %d same-rank-child belief %v, want %v",
				v, results[v].SameRankChild, want)
		}
	}
}

func constructionCases() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(12),
		graph.Star(16),
		graph.Grid(4, 5),
		graph.Complete(10),
		graph.BinaryTree(15),
		graph.GNP(24, 0.2, 5),
		graph.ClusterChain(3, 5),
	}
}

func TestConstructionWithCDWave(t *testing.T) {
	for _, g := range constructionCases() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			cfg := DefaultConfig(g.N(), d, 2, LayerCD, false)
			results, rounds := runConstruction(t, g, cfg, true, 1)
			verifyConstruction(t, g, results)
			if rounds != cfg.TotalRounds() {
				t.Fatalf("rounds %d != schedule %d", rounds, cfg.TotalRounds())
			}
		})
	}
}

func TestConstructionWithDecayLayeringNoCD(t *testing.T) {
	// Theorem 2.1 works without collision detection.
	for _, g := range []*graph.Graph{graph.Path(10), graph.Grid(3, 5), graph.GNP(20, 0.25, 9)} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			cfg := DefaultConfig(g.N(), d, 2, LayerDecay, false)
			results, _ := runConstruction(t, g, cfg, false, 3)
			verifyConstruction(t, g, results)
		})
	}
}

func TestConstructionPresetLevels(t *testing.T) {
	g := graph.Grid(4, 4)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 2, LayerPreset, false)
	results, _ := runConstruction(t, g, cfg, false, 4)
	verifyConstruction(t, g, results)
}

func TestConstructionPipelined(t *testing.T) {
	for _, g := range constructionCases() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			cfg := DefaultConfig(g.N(), d, 2, LayerCD, false)
			cfg.PipelinedBoundaries = true
			results, rounds := runConstruction(t, g, cfg, true, 1)
			verifyConstruction(t, g, results)
			if rounds != cfg.TotalRounds() {
				t.Fatalf("rounds %d != schedule %d", rounds, cfg.TotalRounds())
			}
			// Strict win exactly when 3D + 2·MaxRank - 4 < D·MaxRank; at
			// D >= 3 the pipelined schedule is never longer, and from
			// D >= 4 (or deeper rank stacks) it is strictly shorter.
			seq := DefaultConfig(g.N(), d, 2, LayerCD, false)
			if d >= 3 && cfg.BoundariesRounds() > seq.BoundariesRounds() {
				t.Fatalf("pipelined segment B %d rounds, sequential %d — regression at D=%d",
					cfg.BoundariesRounds(), seq.BoundariesRounds(), d)
			}
			if d >= 4 && cfg.BoundariesRounds() >= seq.BoundariesRounds() {
				t.Fatalf("pipelined segment B %d rounds, sequential %d — no strict speedup at D=%d",
					cfg.BoundariesRounds(), seq.BoundariesRounds(), d)
			}
		})
	}
}

func TestConstructionPipelinedMultiSeed(t *testing.T) {
	g := graph.GNP(24, 0.18, 8)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 2, LayerCD, false)
	cfg.PipelinedBoundaries = true
	for seed := uint64(0); seed < 4; seed++ {
		results, _ := runConstruction(t, g, cfg, true, seed)
		verifyConstruction(t, g, results)
	}
}

func TestPipelinedVirtualDistances(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(10), graph.Grid(3, 4), graph.BinaryTree(15)} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			cfg := DefaultConfig(g.N(), d, 2, LayerCD, true)
			cfg.PipelinedBoundaries = true
			results, _ := runConstruction(t, g, cfg, true, 6)
			verifyConstruction(t, g, results)
			tree := toTree(g, results, 0)
			want := gst.VirtualDistances(tree)
			for v := 0; v < g.N(); v++ {
				if results[v].Vdist != want[v] {
					t.Fatalf("node %d vdist %d, want %d", v, results[v].Vdist, want[v])
				}
			}
		})
	}
}

func TestConstructionMultiSeedStability(t *testing.T) {
	g := graph.GNP(24, 0.18, 8)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 2, LayerCD, false)
	for seed := uint64(0); seed < 4; seed++ {
		results, _ := runConstruction(t, g, cfg, true, seed)
		verifyConstruction(t, g, results)
	}
}

func TestVirtualDistancesMatchCentralized(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(10), graph.Grid(3, 4), graph.BinaryTree(15), graph.GNP(18, 0.3, 2)} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := graph.Eccentricity(g, 0)
			cfg := DefaultConfig(g.N(), d, 2, LayerCD, true)
			results, _ := runConstruction(t, g, cfg, true, 6)
			verifyConstruction(t, g, results)
			// Reconstruct the tree and compare vdist to the exact BFS
			// over G'.
			tree := toTree(g, results, 0)
			want := gst.VirtualDistances(tree)
			for v := 0; v < g.N(); v++ {
				if results[v].Vdist != want[v] {
					t.Fatalf("node %d vdist %d, want %d", v, results[v].Vdist, want[v])
				}
			}
		})
	}
}

func TestScheduleShape(t *testing.T) {
	cfg := DefaultConfig(256, 20, 1, LayerCD, true)
	if cfg.LayerRounds() != 21 {
		t.Fatalf("layer rounds %d", cfg.LayerRounds())
	}
	if cfg.BoundariesRounds() != 20*cfg.Assign.BoundaryRounds() {
		t.Fatal("boundary rounds wrong")
	}
	// Locate round-trips across segment edges.
	edges := []int64{0, cfg.LayerRounds() - 1, cfg.LayerRounds(),
		cfg.LayerRounds() + cfg.BoundariesRounds() - 1,
		cfg.LayerRounds() + cfg.BoundariesRounds(),
		cfg.TotalRounds() - 1, cfg.TotalRounds()}
	want := []Segment{SegLayer, SegLayer, SegBoundary, SegBoundary, SegVdist, SegVdist, SegDone}
	for i, r := range edges {
		if got := cfg.Locate(r).Seg; got != want[i] {
			t.Fatalf("Locate(%d).Seg = %d, want %d", r, got, want[i])
		}
	}
}

func TestBlueLevelMapping(t *testing.T) {
	cfg := DefaultConfig(64, 10, 1, LayerCD, false)
	for b := 0; b < 10; b++ {
		l := cfg.BlueLevel(b)
		if cfg.BoundaryIndexForBlueLevel(l) != b {
			t.Fatal("boundary/level mapping not inverse")
		}
	}
	if cfg.BlueLevel(0) != 10 {
		t.Fatal("deepest boundary must be processed first")
	}
}

func BenchmarkConstructionGrid4x5(b *testing.B) {
	g := graph.Grid(4, 5)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 2, LayerCD, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		for v := 0; v < g.N(); v++ {
			nw.SetProtocol(graph.NodeID(v), New(cfg, graph.NodeID(v), v == 0, 0, rng.New(uint64(i), uint64(v))))
		}
		nw.Run(cfg.TotalRounds())
	}
}
