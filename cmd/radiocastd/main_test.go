package main

// End-to-end tests over httptest: submit → poll → SSE → metrics, spec
// validation, queue back-pressure, and determinism of job results
// across the reuse-context pool (two identical specs must report
// identical counters even when one hits the pooled context).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radiocast/internal/obs"
)

func newTestServer(t *testing.T, workers, queue int) (*httptest.Server, *Manager) {
	t.Helper()
	lg, err := obs.NewLogger(io.Discard, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr := NewManager(workers, queue, lg, reg)
	t.Cleanup(mgr.Shutdown)
	srv := newServer(mgr, reg)
	ts := httptest.NewServer(srv.apiMux())
	t.Cleanup(ts.Close)
	return ts, mgr
}

func submit(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
		t.Fatalf("submit: bad response %s (%v)", body, err)
	}
	return out.ID
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

const decaySpec = `{
	"protocol": "decay",
	"graph": {"kind": "cluster", "chain": 6, "clique": 6},
	"seed": %d,
	"observe_every": 16
}`

func TestJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, 2, 16)
	id := submit(t, ts, fmt.Sprintf(decaySpec, 1))
	st := waitDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Completed || st.Result.Rounds <= 0 {
		t.Fatalf("implausible result: %+v", st.Result)
	}
	if st.Result.Covered != 36 {
		t.Fatalf("covered = %d, want 36", st.Result.Covered)
	}
	if st.Result.BusyRounds+st.Result.SilentRounds != st.Result.Rounds {
		t.Fatalf("busy+silent != rounds: %+v", st.Result)
	}
}

func TestPooledDeterminism(t *testing.T) {
	// One worker → the second identical job MUST hit the pooled context;
	// its result must be byte-identical to the first (fresh-build) run.
	ts, _ := newTestServer(t, 1, 16)
	a := waitDone(t, ts, submit(t, ts, fmt.Sprintf(decaySpec, 7)))
	b := waitDone(t, ts, submit(t, ts, fmt.Sprintf(decaySpec, 7)))
	ra, rb := *a.Result, *b.Result
	ra.WallMicros, rb.WallMicros = 0, 0
	if ra != rb {
		t.Fatalf("pooled rerun diverged:\nfresh  %+v\npooled %+v", ra, rb)
	}
}

func TestSSEEvents(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	id := submit(t, ts, fmt.Sprintf(decaySpec, 3))
	waitDone(t, ts, id)
	// Terminal job: the stream replays the full history and closes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	var types []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			types = append(types, ev)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = data
		}
	}
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "state") || !strings.Contains(joined, "round") || !strings.Contains(joined, "done") {
		t.Fatalf("event stream missing milestones: %s", joined)
	}
	// The final event is the terminal state transition; the done event
	// (with the result payload) precedes it.
	if types[len(types)-1] != "state" || types[len(types)-2] != "done" {
		t.Fatalf("stream tail = %v", types[len(types)-4:])
	}
	var last Event
	if err := json.Unmarshal([]byte(lastData), &last); err != nil {
		t.Fatalf("last SSE data is not JSON: %v\n%s", err, lastData)
	}
}

func TestAdaptiveJobEmitsEpochs(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	spec := `{
		"protocol": "decay",
		"graph": {"kind": "cluster", "chain": 4, "clique": 4},
		"seed": 2,
		"channel": [{"kind": "erasure", "p": 0.3, "seed": 9}],
		"adaptive": {"max_epochs": 8},
		"observe_every": 64
	}`
	id := submit(t, ts, spec)
	st := waitDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if st.Result.Epochs < 1 {
		t.Fatalf("epochs = %d, want >= 1", st.Result.Epochs)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("event: epoch")) {
		t.Fatalf("no epoch events in stream:\n%s", body)
	}
}

// TestMobilityJob runs the dynamics layer end-to-end: a clustered
// sub-connectivity layout on a random-waypoint walk, re-built between
// adaptive epochs via engine Retopo. The job reports per-epoch events,
// and — because the walk mutates the pooled layout in place — the
// pooled rerun must still be byte-identical to the fresh-build run.
func TestMobilityJob(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	spec := `{
		"protocol": "decay",
		"graph": {"kind": "geo-cluster", "n": 150, "clusters": 5, "spread": 0.03, "radius": 0.08, "seed": 4},
		"seed": 11,
		"adaptive": {"max_epochs": 12},
		"mobility": {"period": 64, "speed": 0.005},
		"observe_every": 64,
		"round_limit": 4096
	}`
	a := waitDone(t, ts, submit(t, ts, spec))
	if a.State != StateDone {
		t.Fatalf("state = %s (err %q)", a.State, a.Error)
	}
	if a.Result.Epochs < 2 {
		t.Fatalf("epochs = %d, want >= 2 (the re-layout path never ran)", a.Result.Epochs)
	}
	if a.Result.Covered < 2 || a.Result.Covered > 150 {
		t.Fatalf("covered = %d, want a plausible node count", a.Result.Covered)
	}
	b := waitDone(t, ts, submit(t, ts, spec))
	ra, rb := *a.Result, *b.Result
	ra.WallMicros, rb.WallMicros = 0, 0
	if ra != rb {
		t.Fatalf("pooled mobility rerun diverged:\nfresh  %+v\npooled %+v", ra, rb)
	}
}

// TestGeoJob pins the static geometric workloads end-to-end: stitched
// unit-disk graphs, full coverage on any protocol.
func TestGeoJob(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	spec := `{
		"protocol": "dense-wave",
		"graph": {"kind": "geo-uniform", "n": 300, "seed": 2},
		"seed": 3,
		"workers": 2,
		"observe_every": 32
	}`
	st := waitDone(t, ts, submit(t, ts, spec))
	if st.State != StateDone || !st.Result.Completed {
		t.Fatalf("geo job failed: %+v (err %q)", st.Result, st.Error)
	}
	if st.Result.Covered != 300 {
		t.Fatalf("covered = %d, want 300", st.Result.Covered)
	}
}

func TestDenseJob(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	spec := `{
		"protocol": "dense-decay",
		"graph": {"kind": "grid", "rows": 48, "cols": 48},
		"seed": 5,
		"workers": 4,
		"observe_every": 32
	}`
	st := waitDone(t, ts, submit(t, ts, spec))
	if st.State != StateDone || !st.Result.Completed {
		t.Fatalf("dense job failed: %+v (err %q)", st.Result, st.Error)
	}
	if st.Result.Covered != 48*48 {
		t.Fatalf("covered = %d, want %d", st.Result.Covered, 48*48)
	}
	if st.Result.MaxFrontier < 1 {
		t.Fatalf("max frontier = %d", st.Result.MaxFrontier)
	}
}

// TestDenseCatalogJobs runs each new dense port end-to-end: full
// coverage, and (one worker, two identical submits) pooled reruns
// byte-identical to the fresh-build run — the pooled-determinism
// contract extended to the whole dense-* catalog.
func TestDenseCatalogJobs(t *testing.T) {
	for name, spec := range map[string]string{
		"dense-cr": `{
			"protocol": "dense-cr",
			"graph": {"kind": "grid", "rows": 24, "cols": 24},
			"seed": 5,
			"workers": 2,
			"observe_every": 32
		}`,
		"dense-wave": `{
			"protocol": "dense-wave",
			"graph": {"kind": "cluster", "chain": 12, "clique": 8},
			"seed": 5,
			"workers": 2,
			"observe_every": 32
		}`,
		"dense-gst": `{
			"protocol": "dense-gst",
			"graph": {"kind": "grid", "rows": 24, "cols": 24},
			"seed": 5,
			"workers": 2,
			"observe_every": 32
		}`,
	} {
		t.Run(name, func(t *testing.T) {
			ts, _ := newTestServer(t, 1, 16)
			a := waitDone(t, ts, submit(t, ts, spec))
			if a.State != StateDone || !a.Result.Completed {
				t.Fatalf("%s job failed: %+v (err %q)", name, a.Result, a.Error)
			}
			wantCovered := 24 * 24
			if name == "dense-wave" {
				wantCovered = 12 * 8
			}
			if a.Result.Covered != wantCovered {
				t.Fatalf("covered = %d, want %d", a.Result.Covered, wantCovered)
			}
			b := waitDone(t, ts, submit(t, ts, spec))
			ra, rb := *a.Result, *b.Result
			ra.WallMicros, rb.WallMicros = 0, 0
			if ra != rb {
				t.Fatalf("pooled rerun diverged:\nfresh  %+v\npooled %+v", ra, rb)
			}
		})
	}
}

func TestSpecValidation(t *testing.T) {
	ts, _ := newTestServer(t, 1, 4)
	for name, spec := range map[string]string{
		"unknown protocol": `{"protocol": "gossip", "graph": {"kind": "path", "n": 8}}`,
		"bad graph":        `{"protocol": "decay", "graph": {"kind": "torus", "n": 8}}`,
		"bad channel":      `{"protocol": "decay", "graph": {"kind": "path", "n": 8}, "channel": [{"kind": "noise"}]}`,
		"unknown field":    `{"protocol": "decay", "graph": {"kind": "path", "n": 8}, "frobnicate": 1}`,
		"k on decay":       `{"protocol": "decay", "k": 3, "graph": {"kind": "path", "n": 8}}`,
		"adaptive k-known": `{"protocol": "k-known", "adaptive": {}, "graph": {"kind": "path", "n": 8}}`,
		"adaptive dense":   `{"protocol": "dense-cr", "adaptive": {}, "graph": {"kind": "path", "n": 8}}`,
		"workers sparse":   `{"protocol": "cr", "workers": 4, "graph": {"kind": "path", "n": 8}}`,
		"mobility non-geo": `{"protocol": "decay", "adaptive": {}, "mobility": {"period": 8, "speed": 0.01}, "graph": {"kind": "path", "n": 8}}`,
		"mobility no adaptive": `{"protocol": "decay", "mobility": {"period": 8, "speed": 0.01},
			"graph": {"kind": "geo-uniform", "n": 8}}`,
		"mobility wrong protocol": `{"protocol": "cr", "adaptive": {}, "mobility": {"period": 8, "speed": 0.01},
			"graph": {"kind": "geo-uniform", "n": 8}}`,
		"mobility zero speed": `{"protocol": "decay", "adaptive": {}, "mobility": {"period": 8},
			"graph": {"kind": "geo-uniform", "n": 8}}`,
		"geo-uniform clusters": `{"protocol": "decay", "graph": {"kind": "geo-uniform", "n": 8, "clusters": 3}}`,
		"channel n mismatch": `{"protocol": "decay", "graph": {"kind": "grid", "rows": 3, "cols": 3},
			"channel": [{"kind": "faults", "n": 8, "late_frac": 0.1, "max_delay": 4, "horizon": 64}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
	}
}

func TestBadGraphFailsJob(t *testing.T) {
	ts, _ := newTestServer(t, 1, 4)
	// Source out of range passes validate() but fails context build.
	spec := `{"protocol": "decay", "graph": {"kind": "path", "n": 8}, "source": 99}`
	st := waitDone(t, ts, submit(t, ts, spec))
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("state = %s err = %q, want failed", st.State, st.Error)
	}
}

func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	waitDone(t, ts, submit(t, ts, fmt.Sprintf(decaySpec, 11)))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`radiocastd_jobs_submitted_total{protocol="decay"} 1`,
		`radiocastd_jobs_completed_total{status="done"} 1`,
		`radiocastd_engine_rounds_total{protocol="decay"}`,
		`radiocastd_engine_deliveries_total{protocol="decay"}`,
		"radiocastd_job_wall_seconds_bucket",
		"radiocastd_heap_alloc_bytes",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
}

func TestHealthEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, 1, 4)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func TestQueueBackpressure(t *testing.T) {
	// Zero-worker manager would block forever; instead use 1 worker and
	// a tiny queue, then overfill it with slow-ish jobs.
	lg, _ := obs.NewLogger(io.Discard, "json", "error")
	reg := obs.NewRegistry()
	mgr := NewManager(1, 1, lg, reg)
	defer mgr.Shutdown()
	srv := newServer(mgr, reg)
	ts := httptest.NewServer(srv.apiMux())
	defer ts.Close()

	spec := `{"protocol": "decay", "graph": {"kind": "gnp", "n": 3000, "p": 0.004, "seed": 1}, "seed": 1}`
	saw503 := false
	for i := 0; i < 20 && !saw503; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw503 {
		t.Skip("queue never filled (machine too fast); back-pressure path not exercised")
	}
}
