package harness

import (
	"radiocast/internal/bitvec"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
)

// GSTBuildResult reports one segment-B construction run of experiment
// E6 (sequential vs pipelined boundary construction).
type GSTBuildResult struct {
	// Rounds is the round at which every node knew its parent (the
	// DoneSet completion round); equals Budget when Done is false.
	Rounds int64
	// Done reports whether every node was informed within the budget.
	Done bool
	// Valid reports whether the full GST contract held at schedule end
	// (gst.Tree.Validate over the harvested results).
	Valid bool
	// Budget is the fixed schedule length (segment B only: preset
	// levels, no virtual distances).
	Budget int64
}

// GSTPipelinedRun is the reusable E6 harness: one distributed
// segment-B construction (sequential or pipelined boundaries) over one
// graph, executing any number of seeds with zero per-seed construction
// under the reuse/reset contract. Levels are preset from a BFS so the
// measured rounds isolate the boundary-construction segment the
// pipelining changes.
type GSTPipelinedRun struct {
	cfg    gstdist.Config
	g      *graph.Graph
	nw     *radio.Network
	protos []*gstdist.Protocol
	levels []int32
	ds     DoneSet
}

// NewGSTPipelinedRun builds the reusable stack. nBound is the schedule
// size bound (>= g.N(); the paper's schedules are functions of the
// bound, so E6 uses it to reach the n = 2^10 regime on tractable
// graphs), d bounds the eccentricity, c is the Θ-constant, and
// pipelined selects the Section 2.2.4 even/odd schedule.
func NewGSTPipelinedRun(g *graph.Graph, nBound, d, c int, pipelined bool) *GSTPipelinedRun {
	if nBound < g.N() {
		nBound = g.N()
	}
	cfg := gstdist.DefaultConfig(nBound, d, c, gstdist.LayerPreset, false)
	cfg.PipelinedBoundaries = pipelined
	bfs := graph.BFS(g, 0)
	r := &GSTPipelinedRun{
		cfg:    cfg,
		g:      g,
		nw:     radio.New(g, radio.Config{}),
		protos: make([]*gstdist.Protocol, g.N()),
		levels: bfs.Dist,
	}
	for v := 0; v < g.N(); v++ {
		r.protos[v] = gstdist.New(cfg, graph.NodeID(v), v == 0, r.levels[v], rng.New())
		r.protos[v].DoneSet = &r.ds
	}
	return r
}

// Config returns the compiled construction schedule.
func (r *GSTPipelinedRun) Config() gstdist.Config { return r.cfg }

// Run executes one seeded construction: it measures the round at which
// every node knows its parent, then finishes the fixed schedule and
// validates the full GST contract.
func (r *GSTPipelinedRun) Run(seed uint64) GSTBuildResult {
	r.nw.Reset()
	for v, p := range r.protos {
		p.Reset(v == 0, r.levels[v])
		rng.Reseed(p.Rng(), seed, 0x60, uint64(v))
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Informed() })
	budget := r.cfg.TotalRounds()
	rounds, done := r.nw.RunUntil(budget, r.ds.Done)
	// Ranks and mop-up broadcasts continue past the completion round;
	// validation needs the full schedule.
	r.nw.Run(budget)
	tree := gst.NewTree(r.g, []graph.NodeID{0})
	for v := 0; v < r.g.N(); v++ {
		res := r.protos[v].Result()
		tree.Level[v] = res.Level
		tree.Parent[v] = res.Parent
		tree.Rank[v] = res.Rank
	}
	return GSTBuildResult{
		Rounds: rounds,
		Done:   done,
		Valid:  tree.Validate() == nil,
		Budget: budget,
	}
}

// RunGSTBuild is the one-shot E6 runner (construct, run once,
// discard) — what experiment cells use, since cells must share no
// mutable state across workers.
func RunGSTBuild(g *graph.Graph, nBound, d, c int, pipelined bool, seed uint64) GSTBuildResult {
	return NewGSTPipelinedRun(g, nBound, d, c, pipelined).Run(seed)
}

// ---------------------------------------------------------------------
// Config-parameterized theorem runners: the facade and E6 build a
// rings.Config (optionally pipelined via rings.Config.SetPipelined)
// and run the standard stacks on it.

// NewTheorem11RunCfg builds the reusable Theorem 1.1 stack on an
// explicit ring configuration, broadcasting from source.
func NewTheorem11RunCfg(g *graph.Graph, cfg rings.Config, source graph.NodeID) *Theorem11Run {
	n := g.N()
	r := &Theorem11Run{
		cfg:    cfg,
		nw:     radio.New(g, radio.Config{CollisionDetection: true}),
		protos: make([]*rings.Protocol, n),
		src:    source,
	}
	for v := 0; v < n; v++ {
		r.protos[v] = rings.New(cfg, graph.NodeID(v), graph.NodeID(v) == source, nil, rng.New())
		r.protos[v].SingleContent().DoneSet = &r.ds
	}
	return r
}

// RunTheorem11OnCfg executes the Theorem 1.1 pipeline on an explicit
// ring configuration over an adversarial channel (nil = ideal),
// broadcasting from source.
func RunTheorem11OnCfg(g *graph.Graph, cfg rings.Config, ch radio.Channel, seed uint64, source graph.NodeID) Theorem11Result {
	return NewTheorem11RunCfg(g, cfg, source).Run(ch, seed)
}

// NewTheorem13RunCfg builds the reusable Theorem 1.3 stack on an
// explicit ring configuration (cfg.K must be positive), with source
// holding the k messages.
func NewTheorem13RunCfg(g *graph.Graph, cfg rings.Config, source graph.NodeID) *Theorem13Run {
	n := g.N()
	r := &Theorem13Run{
		cfg:    cfg,
		nw:     radio.New(g, radio.Config{CollisionDetection: true}),
		protos: make([]*rings.Protocol, n),
		msgRng: rng.New(),
		msgs:   make([]rlnc.Message, cfg.K),
		src:    source,
	}
	for i := range r.msgs {
		r.msgs[i] = bitvec.New(cfg.PayloadBits)
	}
	for v := 0; v < n; v++ {
		var m []rlnc.Message
		if graph.NodeID(v) == source {
			m = r.msgs
		}
		r.protos[v] = rings.New(cfg, graph.NodeID(v), graph.NodeID(v) == source, m, rng.New())
		r.protos[v].Store().SetOnAllDecodable(r.ds.Tick)
	}
	return r
}

// RunTheorem13OnCfg executes the Theorem 1.3 pipeline on an explicit
// ring configuration over an adversarial channel (nil = ideal), with
// source holding the k messages.
func RunTheorem13OnCfg(g *graph.Graph, cfg rings.Config, ch radio.Channel, seed uint64, source graph.NodeID) (rounds int64, completed bool, st radio.Stats) {
	return NewTheorem13RunCfg(g, cfg, source).Run(ch, seed)
}
