package channel

import (
	"testing"

	"radiocast/internal/radio"
)

func TestRangeErasureZones(t *testing.T) {
	// Three nodes on a line: node 1 at distance 0.05 from node 0
	// (inside Inner), node 2 at distance 0.5 (beyond Outer).
	x := []float64{0, 0.05, 0.5}
	y := []float64{0, 0, 0}
	c := NewRangeErasure(x, y, 0.1, 0.3, 7)
	for r := int64(0); r < 64; r++ {
		if c.DropLink(r, 0, 1) {
			t.Fatalf("round %d: link inside reliable radius dropped", r)
		}
		if !c.DropLink(r, 0, 2) {
			t.Fatalf("round %d: link beyond Outer delivered", r)
		}
	}
}

func TestRangeErasureBandRamp(t *testing.T) {
	// Band links drop with probability (d-Inner)/(Outer-Inner): a link
	// just past Inner should drop rarely, one just short of Outer
	// almost always. Count over many round keys.
	x := []float64{0, 0.12, 0.28}
	y := []float64{0, 0, 0}
	c := NewRangeErasure(x, y, 0.1, 0.3, 11)
	const rounds = 4000
	nearDrops, farDrops := 0, 0
	for r := int64(0); r < rounds; r++ {
		if c.DropLink(r, 0, 1) { // p = 0.1
			nearDrops++
		}
		if c.DropLink(r, 0, 2) { // p = 0.9
			farDrops++
		}
	}
	if nearDrops < rounds/20 || nearDrops > rounds/5 {
		t.Fatalf("near-band drops %d/%d, want ~%d", nearDrops, rounds, rounds/10)
	}
	if farDrops < rounds*8/10 || farDrops > rounds*97/100 {
		t.Fatalf("far-band drops %d/%d, want ~%d", farDrops, rounds, rounds*9/10)
	}
}

func TestRangeErasureDeterministicAndDirectional(t *testing.T) {
	x := []float64{0, 0.2}
	y := []float64{0, 0}
	a := NewRangeErasure(x, y, 0.1, 0.3, 3)
	b := NewRangeErasure(x, y, 0.1, 0.3, 3)
	for r := int64(0); r < 256; r++ {
		if a.DropLink(r, 0, 1) != b.DropLink(r, 0, 1) {
			t.Fatalf("round %d: same-seed channels disagree", r)
		}
	}
	// Directions are independent draws (linkKey is directed), but both
	// must see the same ramp probability; just check both directions
	// drop at a plausible band rate rather than degenerating.
	fwd, rev := 0, 0
	for r := int64(0); r < 2000; r++ {
		if a.DropLink(r, 0, 1) {
			fwd++
		}
		if a.DropLink(r, 1, 0) {
			rev++
		}
	}
	for _, drops := range []int{fwd, rev} {
		if drops < 600 || drops > 1400 { // p = 0.5
			t.Fatalf("band drops %d/2000, want ~1000 (fwd=%d rev=%d)", drops, fwd, rev)
		}
	}
}

func TestRangeErasureAliasesPositions(t *testing.T) {
	// Moving a node (as the waypoint stepper does, in place) must flow
	// through to the channel without rebuilding it.
	x := []float64{0, 0.05}
	y := []float64{0, 0}
	c := NewRangeErasure(x, y, 0.1, 0.3, 5)
	if c.DropLink(1, 0, 1) {
		t.Fatal("in-range link dropped")
	}
	x[1] = 0.9
	if !c.DropLink(1, 0, 1) {
		t.Fatal("node moved out of range but link still delivers")
	}
}

func TestRangeErasureValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRangeErasure(inner >= outer) did not panic")
		}
	}()
	NewRangeErasure([]float64{0}, []float64{0}, 0.3, 0.3, 1)
}

func TestFaultsResetNoopAndN(t *testing.T) {
	f := NewFaults(8)
	f.SetWake(3, 10)
	f.SetCrash(5, 20)
	if f.N() != 8 {
		t.Fatalf("N() = %d, want 8", f.N())
	}
	// Reset is a documented no-op: the programmed schedule survives,
	// and the table still satisfies the resettable contract so blanket
	// channel resets treat it uniformly.
	radio.ResetChannel(f)
	if !f.dead(5, 3) {
		t.Fatal("Reset cleared a programmed wake schedule")
	}
	if !f.dead(25, 5) {
		t.Fatal("Reset cleared a programmed crash schedule")
	}
	if f.dead(15, 3) || f.dead(15, 5) {
		t.Fatal("healthy windows misreported after Reset")
	}
}
