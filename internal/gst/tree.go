// Package gst implements Gathering Spanning Trees (Section 2.1,
// following Gasieniec, Peleg and Xin [7]):
//
// A ranked BFS tree assigns each node a rank by the inductive rule:
// leaves get rank 1; an internal node whose children have maximum rank
// r gets rank r if exactly one child attains r, and rank r+1 if two or
// more do. The largest rank is at most ⌈log2 n⌉.
//
// A ranked BFS tree T is a GST iff it satisfies collision-freeness:
// whenever u1 ≠ u2 at level l both have rank r and their parents
// v1 ≠ v2 at level l−1 also both have rank r, the graph has no edge
// v1–u2 or v2–u1 — i.e. the set of same-rank parent-child pairs at
// each level boundary is an induced matching.
//
// The package provides the tree representation, rank computation,
// validation of all GST invariants, a centralized construction (the
// known-topology setting of Theorem 1.2), fast stretches, and the
// virtual graph G' with its virtual distances (Section 3.2).
//
// Trees may have multiple roots (a forest): Theorem 1.1/1.3 build one
// GST per ring, rooted at the ring's entire inner boundary.
package gst

import (
	"fmt"

	"radiocast/internal/graph"
	"radiocast/internal/sched"
)

// NodeID aliases graph.NodeID.
type NodeID = graph.NodeID

// Tree is a ranked BFS forest over a graph. All slices are indexed by
// node id; nodes outside the forest (unreachable from the roots) have
// Level -1.
type Tree struct {
	G      *graph.Graph
	Roots  []NodeID
	Parent []NodeID // -1 for roots and non-members
	Level  []int32  // BFS level; roots are 0; -1 for non-members
	Rank   []int32  // computed rank; 0 for non-members
}

// NewTree allocates an empty tree skeleton for g.
func NewTree(g *graph.Graph, roots []NodeID) *Tree {
	n := g.N()
	t := &Tree{
		G:      g,
		Roots:  append([]NodeID(nil), roots...),
		Parent: make([]NodeID, n),
		Level:  make([]int32, n),
		Rank:   make([]int32, n),
	}
	for v := range t.Parent {
		t.Parent[v] = -1
		t.Level[v] = -1
	}
	return t
}

// InTree reports whether v belongs to the forest.
func (t *Tree) InTree(v NodeID) bool { return t.Level[v] >= 0 }

// Children returns the children lists of every node.
func (t *Tree) Children() [][]NodeID {
	ch := make([][]NodeID, t.G.N())
	for v := 0; v < t.G.N(); v++ {
		if p := t.Parent[v]; p >= 0 {
			ch[p] = append(ch[p], NodeID(v))
		}
	}
	return ch
}

// MaxLevel returns the deepest level in the forest.
func (t *Tree) MaxLevel() int32 {
	var max int32
	for _, l := range t.Level {
		if l > max {
			max = l
		}
	}
	return max
}

// MaxRank returns the largest rank in the forest.
func (t *Tree) MaxRank() int32 {
	var max int32
	for _, r := range t.Rank {
		if r > max {
			max = r
		}
	}
	return max
}

// ComputeRanks fills Rank from Parent using the inductive ranking rule
// of Section 2.1. It processes levels bottom-up.
func (t *Tree) ComputeRanks() {
	children := t.Children()
	// Order nodes by decreasing level.
	maxLevel := t.MaxLevel()
	byLevel := make([][]NodeID, maxLevel+1)
	for v := 0; v < t.G.N(); v++ {
		if l := t.Level[v]; l >= 0 {
			byLevel[l] = append(byLevel[l], NodeID(v))
		}
	}
	for l := maxLevel; l >= 0; l-- {
		for _, v := range byLevel[l] {
			t.Rank[v] = rankFromChildren(t.Rank, children[v])
		}
	}
}

// rankFromChildren applies the ranking rule given children's ranks.
func rankFromChildren(rank []int32, children []NodeID) int32 {
	if len(children) == 0 {
		return 1
	}
	var best int32
	count := 0
	for _, c := range children {
		switch {
		case rank[c] > best:
			best = rank[c]
			count = 1
		case rank[c] == best:
			count++
		}
	}
	if count >= 2 {
		return best + 1
	}
	return best
}

// Validate checks every GST invariant and returns a descriptive error
// for the first violation:
//
//  1. structure: parents are graph neighbors one level up; roots have
//     level 0; every member except roots has a parent;
//  2. BFS property: Level equals the true BFS distance from the roots
//     (restricted to the member subgraph);
//  3. ranking rule: Rank follows the inductive rule;
//  4. rank bound: MaxRank ≤ ⌈log2 n⌉ (+1 slack for n<4 degeneracy);
//  5. collision-freeness: the same-rank parent-child pairs at each
//     level boundary form an induced matching.
func (t *Tree) Validate() error {
	if err := t.validateStructure(); err != nil {
		return err
	}
	if err := t.validateBFS(); err != nil {
		return err
	}
	if err := t.validateRanks(); err != nil {
		return err
	}
	return t.ValidateCollisionFreeness()
}

func (t *Tree) validateStructure() error {
	isRoot := make(map[NodeID]bool, len(t.Roots))
	for _, r := range t.Roots {
		isRoot[r] = true
		if t.Level[r] != 0 {
			return fmt.Errorf("gst: root %d has level %d", r, t.Level[r])
		}
		if t.Parent[r] != -1 {
			return fmt.Errorf("gst: root %d has parent %d", r, t.Parent[r])
		}
	}
	for v := 0; v < t.G.N(); v++ {
		if !t.InTree(NodeID(v)) {
			continue
		}
		p := t.Parent[v]
		if isRoot[NodeID(v)] {
			continue
		}
		if p < 0 {
			return fmt.Errorf("gst: member %d (level %d) has no parent", v, t.Level[v])
		}
		if !t.G.HasEdge(NodeID(v), p) {
			return fmt.Errorf("gst: parent edge (%d,%d) not in graph", v, p)
		}
		if t.Level[p] != t.Level[v]-1 {
			return fmt.Errorf("gst: node %d level %d but parent %d level %d", v, t.Level[v], p, t.Level[p])
		}
	}
	return nil
}

func (t *Tree) validateBFS() error {
	// BFS over the member-induced subgraph from the roots.
	dist := make([]int32, t.G.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, t.G.N())
	for _, r := range t.Roots {
		dist[r] = 0
		queue = append(queue, r)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range t.G.Neighbors(v) {
			if !t.InTree(u) || dist[u] >= 0 {
				continue
			}
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	for v := 0; v < t.G.N(); v++ {
		if t.InTree(NodeID(v)) && dist[v] != t.Level[v] {
			return fmt.Errorf("gst: node %d level %d but BFS distance %d", v, t.Level[v], dist[v])
		}
	}
	return nil
}

func (t *Tree) validateRanks() error {
	children := t.Children()
	for v := 0; v < t.G.N(); v++ {
		if !t.InTree(NodeID(v)) {
			continue
		}
		want := rankFromChildren(t.Rank, children[v])
		if t.Rank[v] != want {
			return fmt.Errorf("gst: node %d rank %d violates ranking rule (want %d)", v, t.Rank[v], want)
		}
	}
	bound := int32(sched.LogN(t.G.N())) + 1
	if mr := t.MaxRank(); mr > bound {
		return fmt.Errorf("gst: max rank %d exceeds ⌈log n⌉+1 = %d", mr, bound)
	}
	return nil
}

// ValidateCollisionFreeness checks only invariant 5 (used to show
// naive ranked BFS trees fail it, Figure 1).
func (t *Tree) ValidateCollisionFreeness() error {
	// For each level boundary and rank r, M = {(u, parent(u)) :
	// rank(u) = rank(parent(u)) = r}. Mark parents appearing in M;
	// then for each M-edge (u,v), any other same-rank same-level
	// neighbor w of u that is also an M-parent violates the induced
	// matching.
	inM := make([]bool, t.G.N()) // node is a parent in some M-pair
	for v := 0; v < t.G.N(); v++ {
		p := t.Parent[v]
		if p >= 0 && t.Rank[v] == t.Rank[p] {
			inM[p] = true
		}
	}
	for v := 0; v < t.G.N(); v++ {
		p := t.Parent[v]
		if p < 0 || t.Rank[v] != t.Rank[p] {
			continue
		}
		for _, w := range t.G.Neighbors(NodeID(v)) {
			if w == p || !t.InTree(w) {
				continue
			}
			if t.Level[w] == t.Level[v]-1 && t.Rank[w] == t.Rank[v] && inM[w] {
				return fmt.Errorf(
					"gst: collision-freeness violated: node %d (level %d rank %d, parent %d) adjacent to M-parent %d",
					v, t.Level[v], t.Rank[v], p, w)
			}
		}
	}
	return nil
}
