package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerJSONSchema(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info(EventJobDone, "protocol", "decay", "rounds", int64(42), "completed", true)
	var ev map[string]any
	if err := json.Unmarshal(b.Bytes(), &ev); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, b.String())
	}
	if ev["msg"] != EventJobDone || ev["protocol"] != "decay" || ev["rounds"] != float64(42) {
		t.Fatalf("unexpected event shape: %v", ev)
	}
}

func TestNewLoggerTextAndLevels(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("suppressed")
	lg.Warn("kept")
	out := b.String()
	if strings.Contains(out, "suppressed") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken:\n%s", out)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", ""); err == nil {
		t.Fatal("format xml accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Fatal("level loud accepted")
	}
}

func TestObserverFunc(t *testing.T) {
	var got RoundSnapshot
	var o RoundObserver = ObserverFunc(func(s RoundSnapshot) { got = s })
	o.OnRound(RoundSnapshot{Round: 9, Deliveries: 3})
	if got.Round != 9 || got.Deliveries != 3 {
		t.Fatalf("snapshot not delivered: %+v", got)
	}
}
