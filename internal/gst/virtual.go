package gst

import "radiocast/internal/graph"

// Fast stretches and the virtual graph G' (Section 3.2).
//
// A fast stretch is a maximal root-ward path in T on which every node
// has the same rank. Because a node of rank r has at most one child of
// rank r (two would force rank r+1), stretches are simple paths. The
// virtual graph G' adds, for every stretch start u, a directed fast
// edge from u to every node of the stretch; the virtual distance d(v)
// is the directed distance from the roots in G' (graph edges usable in
// both directions). Lemma 3.4: d(v) ≤ 2⌈log2 n⌉.

// StretchInfo describes a node's position within its fast stretch.
type StretchInfo struct {
	// Start is the first (shallowest) node of the stretch containing
	// the node; a node whose parent has a different rank (or a root)
	// starts its own stretch.
	Start NodeID
	// Pos is the node's distance from Start along the stretch.
	Pos int32
}

// Stretches computes per-node stretch membership for the forest.
func Stretches(t *Tree) []StretchInfo {
	n := t.G.N()
	info := make([]StretchInfo, n)
	for v := range info {
		info[v] = StretchInfo{Start: -1}
	}
	// Process by increasing level so parents are resolved first.
	maxLevel := t.MaxLevel()
	byLevel := make([][]NodeID, maxLevel+1)
	for v := 0; v < n; v++ {
		if l := t.Level[v]; l >= 0 {
			byLevel[l] = append(byLevel[l], NodeID(v))
		}
	}
	for l := int32(0); l <= maxLevel; l++ {
		for _, v := range byLevel[l] {
			p := t.Parent[v]
			if p < 0 || t.Rank[p] != t.Rank[v] {
				info[v] = StretchInfo{Start: v, Pos: 0}
				continue
			}
			info[v] = StretchInfo{Start: info[p].Start, Pos: info[p].Pos + 1}
		}
	}
	return info
}

// IsStretchStart reports whether v begins a fast stretch (is a root or
// has a parent of different rank).
func IsStretchStart(t *Tree, v NodeID) bool {
	p := t.Parent[v]
	return t.InTree(v) && (p < 0 || t.Rank[p] != t.Rank[v])
}

// SameRankChild returns v's unique child of equal rank, or -1. The
// ranking rule guarantees uniqueness.
func SameRankChild(t *Tree, children [][]NodeID, v NodeID) NodeID {
	for _, c := range children[v] {
		if t.Rank[c] == t.Rank[v] {
			return c
		}
	}
	return -1
}

// VirtualDistances computes d(v) for every forest member: BFS from the
// roots over G' = (member-induced G, both directions) ∪ (fast edges
// from each stretch start to every node of its stretch). Non-members
// get -1.
func VirtualDistances(t *Tree) []int32 {
	n := t.G.N()
	info := Stretches(t)
	// Fast edge targets per stretch start.
	fast := make(map[NodeID][]NodeID)
	for v := 0; v < n; v++ {
		if !t.InTree(NodeID(v)) {
			continue
		}
		s := info[v].Start
		if s != NodeID(v) {
			fast[s] = append(fast[s], NodeID(v))
		}
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, n)
	for _, r := range t.Roots {
		if dist[r] < 0 {
			dist[r] = 0
			queue = append(queue, r)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		push := func(u NodeID) {
			if t.InTree(u) && dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
		for _, u := range t.G.Neighbors(v) {
			push(u)
		}
		for _, u := range fast[v] {
			push(u)
		}
	}
	return dist
}

// Heights computes the potential h(v) = d(v)·⌈log2 n⌉ + level(v) used
// by the backwards analysis (proof of Lemma 3.3) and by the strip
// decomposition of Section 3.4. logN is ⌈log2 n⌉.
func Heights(t *Tree, vdist []int32, logN int32) []int32 {
	h := make([]int32, t.G.N())
	for v := range h {
		if !t.InTree(NodeID(v)) || vdist[v] < 0 {
			h[v] = -1
			continue
		}
		h[v] = vdist[v]*logN + t.Level[v]
	}
	return h
}

// FastEdgesCollisionFree verifies the implementation invariant behind
// Lemma 3.5 for a given tree: for every node u with a same-rank parent
// (a fast-wave receiver), u has exactly one neighbor w at level-1 with
// rank(w) = rank(u) that has a same-rank child — its parent. Returns
// the number of (receiver, interferer) violations (0 for a valid GST
// with the fast-slot rule of DESIGN.md).
func FastEdgesCollisionFree(t *Tree) int {
	children := t.Children()
	transmitsFast := make([]bool, t.G.N()) // has a same-rank child
	for v := 0; v < t.G.N(); v++ {
		if t.InTree(NodeID(v)) && SameRankChild(t, children, NodeID(v)) >= 0 {
			transmitsFast[v] = true
		}
	}
	violations := 0
	for u := 0; u < t.G.N(); u++ {
		p := t.Parent[u]
		if p < 0 || t.Rank[u] != t.Rank[p] {
			continue // not a fast-wave receiver
		}
		for _, w := range t.G.Neighbors(NodeID(u)) {
			if w == p || !t.InTree(w) {
				continue
			}
			if t.Level[w] == t.Level[u]-1 && t.Rank[w] == t.Rank[u] && transmitsFast[w] {
				violations++
			}
		}
	}
	return violations
}

// Ring extracts the subgraph induced by the nodes whose global BFS
// layer lies in [lo, hi), re-indexed as a standalone graph, together
// with the mapping back to global ids and the list of local roots
// (nodes at layer lo). Used by the ring decomposition of Theorems 1.1
// and 1.3.
func Ring(g *graph.Graph, layer []int32, lo, hi int32) (sub *graph.Graph, local2global []NodeID, roots []NodeID) {
	global2local := make(map[NodeID]NodeID)
	for v := 0; v < g.N(); v++ {
		if layer[v] >= lo && layer[v] < hi {
			global2local[NodeID(v)] = NodeID(len(local2global))
			local2global = append(local2global, NodeID(v))
		}
	}
	b := graph.NewBuilder(len(local2global))
	for _, gv := range local2global {
		lv := global2local[gv]
		for _, gu := range g.Neighbors(gv) {
			if lu, ok := global2local[gu]; ok {
				b.AddEdge(lv, lu)
			}
		}
		if layer[gv] == lo {
			roots = append(roots, lv)
		}
	}
	return b.Build(), local2global, roots
}
