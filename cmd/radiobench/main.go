// Command radiobench regenerates every experiment table of
// EXPERIMENTS.md.
//
// Usage:
//
//	radiobench [-seeds N] [-quick] [-format text|csv|markdown]
//	           [-only E1,E7] [-experiments E13,E14,E15] [-parallel]
//	           [-workers N] [-timeout 30s] [-roundlimit N] [-json FILE]
//	           [-scalemaxn N] [-scaleworkers N]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-logformat text|json] [-loglevel debug|info|warn|error]
//
// Each experiment reproduces one theorem/lemma of the paper as a
// measured round-complexity table — plus the E13-E16 robustness sweeps
// over the adversarial channels of internal/channel; see
// EXPERIMENTS.md for the mapping and the expected shapes.
//
// Experiments are compiled to cell plans (internal/exp) and executed
// by ONE global worker pool (exp.Runner.RunAll): the (configuration ×
// seed) cells of every selected experiment feed the pool together,
// longest-cell-first, so a sweep is never serialized behind its
// slowest experiment. -parallel fans the pool across GOMAXPROCS
// goroutines (-workers overrides the count). Results merge in
// per-plan cell-key order, so the table output on stdout is
// byte-identical to a sequential run; timing diagnostics go to stderr
// (per-experiment figures are summed cell wall times — under the
// global pool an experiment has no wall-clock of its own). -timeout
// and -roundlimit bound each cell's wall clock and simulated rounds.
// -json writes a machine-readable bench artifact with per-cell rounds
// and wall times ("-" for stdout). -scalemaxn raises the E19/E20 scale
// sweeps' largest workload (the acceptance run is
// "-only E19,E20 -scalemaxn 1000000 -seeds 1 -json BENCH_scale.json")
// and -scaleworkers pins their dense-engine worker count — scale
// output is byte-identical at any worker setting, only wall times
// move; both land in a harness.ScaleConfig threaded through
// harness.AllWithScale. -cpuprofile/-memprofile write
// runtime/pprof profiles of the sweep so perf work can show profiles
// instead of guesses. Stderr diagnostics ride the shared internal/obs
// logger: -logformat json makes them machine-parseable, -loglevel
// debug adds a per-cell "cell.done" event stream. Tables on stdout are
// untouched by either flag (CI compares them byte-for-byte).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"radiocast/internal/exp"
	"radiocast/internal/harness"
	"radiocast/internal/obs"
)

func main() {
	seeds := flag.Int("seeds", 3, "independent seeds per configuration")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	format := flag.String("format", "text", "output format: text, csv, or markdown")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	experiments := flag.String("experiments", "", "alias for -only")
	parallel := flag.Bool("parallel", false, "fan experiment cells across GOMAXPROCS workers")
	workers := flag.Int("workers", 0, "worker count; setting it implies -parallel (0 with -parallel = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock guard (0 = none)")
	roundLimit := flag.Int64("roundlimit", 0, "per-cell simulated-round cap (0 = experiment defaults)")
	jsonPath := flag.String("json", "", "write a JSON bench artifact to this file (\"-\" = stdout)")
	scaleMaxN := flag.Int("scalemaxn", 100_000, "largest workload size of the E19/E20 scale sweeps (acceptance: 1000000)")
	scaleWorkers := flag.Int("scaleworkers", 0, "dense-engine workers for E19/E20 cells (0 = min(8, GOMAXPROCS); output is identical at any setting)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the sweep) to this file")
	logFormat := flag.String("logformat", "text", "stderr diagnostics format: text or json")
	logLevel := flag.String("loglevel", "info", "stderr diagnostics level: debug (per-cell events), info, warn, error")
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "radiobench: %v\n", err)
		os.Exit(2)
	}

	if *only == "" {
		*only = *experiments
	}
	scale := harness.ScaleConfig{MaxN: *scaleMaxN, Workers: *scaleWorkers}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	// The CPU profile is stopped (and flushed) explicitly right after
	// the sweep rather than via defer: later os.Exit error paths
	// (artifact write failures) must not leave a truncated profile of
	// the very sweep the flag exists to diagnose.
	var cpuFile *os.File
	stopCPU := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	runner := &exp.Runner{Parallelism: 1, Timeout: *timeout, RoundLimit: *roundLimit, Log: lg}
	if *parallel || *workers > 0 {
		runner.Parallelism = *workers // 0 = GOMAXPROCS
	}
	resolved := runner.Parallelism
	if resolved == 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	artifact := exp.NewArtifact(*seeds, *quick, resolved)

	// Compile every selected plan, then execute ALL their cells through
	// one pool: the global scheduler keeps every worker busy until the
	// whole sweep drains.
	var selected []harness.Experiment
	var plans []*exp.Plan
	for _, e := range harness.AllWithScale(scale) {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		selected = append(selected, e)
		plans = append(plans, e.Plan(*seeds, *quick))
	}
	if len(selected) == 0 {
		stopCPU()
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
	start := time.Now()
	allResults := runner.RunAll(plans)
	total := time.Since(start)
	stopCPU() // the profile covers compile + sweep, not output rendering

	for i, e := range selected {
		plan, results := plans[i], allResults[i]
		tb := plan.Assemble(results)
		// An experiment has no private wall clock under the global pool;
		// report its summed cell time (its single-core execution cost).
		cellWall := time.Duration(0)
		for _, r := range results {
			cellWall += r.Wall
		}
		artifact.Add(plan, tb, results, cellWall)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tb.CSV())
		case "markdown":
			fmt.Printf("### %s: %s\n\n%s\n", e.ID, e.Title, tb.Markdown())
		default:
			fmt.Printf("%s\n", tb.String())
		}
		lg.Info(obs.EventExpDone,
			"experiment", e.ID,
			"cells", len(plan.Cells),
			"seeds", *seeds,
			"cell_wall_ms", cellWall.Milliseconds())
		for _, r := range results {
			if r.Err != "" {
				lg.Warn("cell failed",
					"experiment", e.ID,
					"config", r.Key.Config,
					"seed", r.Key.Seed,
					"err", r.Err)
			}
		}
	}
	lg.Info("sweep done",
		"experiments", len(selected),
		"wall_ms", total.Milliseconds(),
		"workers", resolved)

	// The allocation profile is written before the JSON artifact so a
	// failed artifact write cannot discard the profile of a sweep that
	// already ran (mirroring the cpuprofile early-flush above).
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // materialize the final heap state
		err = pprof.Lookup("allocs").WriteTo(f, 0)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		blob, err := artifact.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal artifact: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write artifact: %v\n", err)
			os.Exit(1)
		}
	}
}
