package cr

import (
	"testing"

	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

func runCR(g *graph.Graph, seed uint64, limit int64) (int64, bool) {
	d := graph.Eccentricity(g, 0)
	p := NewParams(g.N(), d)
	nw := radio.New(g, radio.Config{})
	protos := make([]*Broadcast, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = NewBroadcast(p, v == 0, decay.Message{Data: 5}, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	return nw.RunUntil(limit, func() bool {
		for _, pr := range protos {
			if !pr.Has() {
				return false
			}
		}
		return true
	})
}

func TestCRBroadcastCompletes(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(128),
		graph.Grid(8, 16),
		graph.Star(64),
		graph.ClusterChain(10, 6),
		graph.GNP(100, 0.07, 2),
	} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rounds, ok := runCR(g, 1, 1<<21)
			if !ok {
				t.Fatal("incomplete")
			}
			t.Logf("%s: rounds=%d", g.Name(), rounds)
		})
	}
}

func TestCRBeatsDecayOnSparseHighDiameter(t *testing.T) {
	// On a path (contention 1 per layer), short phases should make CR
	// clearly faster than classic Decay.
	g := graph.Path(256)
	crRounds, ok := runCR(g, 3, 1<<22)
	if !ok {
		t.Fatal("CR incomplete")
	}
	nw := radio.New(g, radio.Config{})
	protos := make([]*decay.Broadcast, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = decay.NewBroadcast(g.N(), v == 0, decay.Message{}, rng.New(3, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	decayRounds, ok := nw.RunUntil(1<<22, func() bool {
		for _, pr := range protos {
			if !pr.Has() {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("Decay incomplete")
	}
	if float64(crRounds) > 0.9*float64(decayRounds) {
		t.Fatalf("CR (%d) not faster than Decay (%d) on path-256", crRounds, decayRounds)
	}
	t.Logf("path-256: CR=%d Decay=%d", crRounds, decayRounds)
}

func TestParamsShape(t *testing.T) {
	p := NewParams(1024, 256)
	// n/D = 4 -> short phases of ceil(log 4)+2 = 4 rounds.
	if p.ShortLen != 4 {
		t.Fatalf("ShortLen = %d", p.ShortLen)
	}
	if p.FullLen != sched.LogN(1024) {
		t.Fatalf("FullLen = %d", p.FullLen)
	}
	// Slots sweep 0..ShortLen-1 then eventually 0..FullLen-1.
	seen := map[int]bool{}
	for r := int64(0); r < p.cycleLen(); r++ {
		seen[p.slot(r)] = true
	}
	for i := 0; i < p.FullLen; i++ {
		if !seen[i] {
			t.Fatalf("slot %d never used in a cycle", i)
		}
	}
}

func TestParamsDegenerate(t *testing.T) {
	p := NewParams(16, 0) // d clamped to 1
	if p.ShortLen < 2 {
		t.Fatalf("ShortLen = %d", p.ShortLen)
	}
}
