package harness

// WaveRun is the reusable collision-wave harness — the Theorem 1.1
// layering primitive promoted to a standalone broadcast stack so the
// mobility dynamics layer has a one-shot schedule to retry: a wave
// floods for exactly `horizon` rounds and then the network goes
// silent, which is precisely the regime where a node that drifts into
// range after the horizon is abandoned (the spatial analog of E16's
// late-waking radio). Wired through the adaptive retry layer with
// informed-set carryover, each re-layout period re-launches the wave
// from every already-triggered radio.

import (
	"radiocast/internal/beep"
	"radiocast/internal/graph"
	"radiocast/internal/obs"
	"radiocast/internal/radio"
)

// WaveRun is a reusable collision-wave broadcast over one engine:
// construct once, run any number of epochs or seeds with zero
// per-run construction. The wave protocol itself is deterministic
// (its randomness budget is zero — collisions ARE the signal), so the
// seed parameter of RunFrom exists only to satisfy the shared exec
// signature.
type WaveRun struct {
	nw      *radio.Network
	protos  []*beep.Wave
	src     graph.NodeID
	horizon int64
	ds      DoneSet
}

// NewWaveRun builds the reusable wave stack from source with the
// given default per-run horizon. The engine is created with collision
// detection on — the wave is meaningless without the ⊤ symbol.
func NewWaveRun(g *graph.Graph, source graph.NodeID, horizon int64) *WaveRun {
	n := g.N()
	r := &WaveRun{
		nw:      radio.New(g, radio.Config{CollisionDetection: true}),
		protos:  make([]*beep.Wave, n),
		src:     source,
		horizon: horizon,
	}
	for v := 0; v < n; v++ {
		r.protos[v] = beep.NewWave(graph.NodeID(v) == source, horizon)
		r.protos[v].DoneSet = &r.ds
	}
	return r
}

// Retopo swaps the engine's topology in place (radio.Network.Retopo):
// the node count must be unchanged. The mobility driver calls this at
// every re-layout period boundary, between epochs.
func (r *WaveRun) Retopo(offsets []int32, edges []radio.NodeID) {
	r.nw.Retopo(offsets, edges)
}

// Run executes one seeded run over ch (nil = ideal).
func (r *WaveRun) Run(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	return r.RunFrom(nil, ch, seed, limit)
}

// RunFrom is Run with per-node carryover: when informed is non-nil,
// node v starts triggered iff informed[v], so every radio reached by
// earlier epochs re-launches the wave. The effective horizon is the
// smaller of the construction horizon and a positive limit — each
// epoch's wave transmits for its own full window and then stops.
func (r *WaveRun) RunFrom(informed []bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	_ = seed // the wave draws no randomness
	if informed == nil {
		radio.ResetChannel(ch)
	}
	hor := r.horizon
	if limit > 0 && limit < hor {
		hor = limit
	}
	r.nw.Reset()
	r.nw.SetChannel(ch)
	for v, p := range r.protos {
		p.Reset(epochSource(informed, v, r.src), hor)
		r.nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&r.ds, len(r.protos), func(v int) bool { return r.protos[v].Level() >= 0 })
	rounds, ok := r.nw.RunUntil(hor, r.ds.Done)
	return rounds, ok, r.nw.Stats()
}

// mark records each node's triggered state into dst (the adaptive
// carryover harvest).
func (r *WaveRun) mark(dst []bool) {
	for v, p := range r.protos {
		dst[v] = p.Level() >= 0
	}
}

// Coverage returns how many nodes the wave had reached when the last
// run stopped (== n on completed runs).
func (r *WaveRun) Coverage() int { return r.ds.Count() }

// SetObserver attaches o at the given round stride; nil detaches.
func (r *WaveRun) SetObserver(o obs.RoundObserver, stride int64) { r.nw.SetObserver(o, stride) }

// NewAdaptiveWave wraps the collision-wave stack in the retry layer
// with a per-epoch horizon: each epoch floods for up to epochHorizon
// rounds from the carried frontier. Pair with SetRelayout to swap
// topology between epochs — the mobility/churn driver of E23.
func NewAdaptiveWave(g *graph.Graph, chf ChannelFactory, seed uint64, source graph.NodeID, epochHorizon int64) *AdaptiveRunner {
	r := NewWaveRun(g, source, epochHorizon)
	return &AdaptiveRunner{
		informed:    make([]bool, g.N()),
		baseSeed:    seed,
		chf:         chf,
		epochLimit:  epochHorizon,
		exec:        r.RunFrom,
		covered:     r.Coverage,
		mark:        r.mark,
		setObserver: r.SetObserver,
		retopo:      r.Retopo,
	}
}
