// Package beep implements the collision-wave primitives of the proof
// of Theorem 1.1, which require collision detection:
//
//	"We first use a wave of collisions to get a BFS layering in time D.
//	 That is, the source transmits in all rounds [1, D], and each node v
//	 transmits in all rounds [r, D] where r is such that v receives a
//	 message or a collision in round r−1. For each node v, the round
//	 r−1 in which v receives the first message or collision determines
//	 the distance of v from the source."
//
// The wave gives every node its exact BFS level in exactly `horizon`
// rounds, where horizon is any upper bound on the source eccentricity.
package beep

import (
	"radiocast/internal/radio"
)

// Pulse is the 1-bit wave packet.
type Pulse struct{}

// Bits implements radio.Packet.
func (Pulse) Bits() int { return 1 }

// Wave is the collision-wave layering protocol for one node.
type Wave struct {
	// DoneSet, when non-nil, is ticked when the wave first reaches
	// this node. Already-triggered nodes after a Reset (sources,
	// carryover seeds) are accounted by the harness's post-reset scan,
	// per the DoneSet contract.
	DoneSet *radio.DoneSet

	isSource bool
	horizon  int64 // transmit until this round, then stop

	level int64 // -1 until the wave arrives
}

var _ radio.Protocol = (*Wave)(nil)

// NewWave creates the protocol. horizon must be at least the
// eccentricity of the source; the wave stops at that round.
func NewWave(source bool, horizon int64) *Wave {
	w := &Wave{}
	w.Reset(source, horizon)
	return w
}

// Reset rewinds the protocol for a new run, allocation-free.
func (w *Wave) Reset(source bool, horizon int64) {
	w.isSource = source
	w.horizon = horizon
	w.level = -1
	if source {
		w.level = 0
	}
}

// Level returns the learned BFS level, or -1 if the wave has not
// arrived (yet, or ever — callers validate against horizon).
func (w *Wave) Level() int { return int(w.level) }

// Act implements radio.Protocol. The source transmits in rounds
// [0, horizon); a node first hearing a signal (message or collision)
// in round t transmits in rounds [t+1, horizon).
func (w *Wave) Act(r int64) radio.Action {
	if r >= w.horizon {
		return radio.Sleep(1 << 62) // wave over; never act again
	}
	if w.level >= 0 {
		return radio.Transmit(Pulse{})
	}
	return radio.Listen
}

// Observe implements radio.Protocol: any signal — packet or collision
// — triggers the node.
func (w *Wave) Observe(r int64, out radio.Outcome) {
	if w.level >= 0 {
		return
	}
	if out.Collision || out.Packet != nil {
		w.level = r + 1
		w.DoneSet.Tick()
	}
}

// RunLayering is a convenience harness: it runs the wave on the given
// network (which must have collision detection enabled) and returns
// per-node levels. Nodes without protocols installed elsewhere get
// Wave protocols; the network must be fresh.
func RunLayering(nw *radio.Network, source radio.NodeID, horizon int64) []int {
	g := nw.Graph()
	waves := make([]*Wave, g.N())
	for v := 0; v < g.N(); v++ {
		waves[v] = NewWave(radio.NodeID(v) == source, horizon)
		nw.SetProtocol(radio.NodeID(v), waves[v])
	}
	nw.Run(horizon)
	levels := make([]int, g.N())
	for v := range waves {
		levels[v] = waves[v].Level()
	}
	return levels
}
