package beep

// DenseWave is the structure-of-arrays collision wave for the
// radio.Dense engine: Theorem 1.1's BFS layering primitive at
// million-node scale. Per-node state is one int32 level plus bitset
// membership — no RNG at all, the wave is deterministic.
//
// Semantics match Wave exactly: the source (level 0) transmits the
// 1-bit Pulse in rounds [0, horizon); a node first hearing a signal —
// a delivered packet or, under collision detection, the ⊤ symbol — in
// round r sets level r+1 and transmits in rounds [r+1, horizon).
// Correctness of the layering (level == BFS distance on the ideal
// channel) REQUIRES CollisionDetection: without CD a listener with two
// or more pulsing neighbors hears silence and the wave stalls wherever
// layers are dense.
//
// One deviation from the per-node Wave, invisible in the levels: only
// frontier nodes (triggered, with at least one untriggered neighbor)
// transmit. A retired triggered node is adjacent to no listener — its
// neighbors are all triggered, and triggered nodes never listen — so
// every listener's per-round hear count is identical to the
// "all triggered transmit" schedule, including under per-link erasure
// (drops are keyed by (round, link), independent of other links).
// Transmissions and collision counts are lower; levels, trigger
// rounds, and completion are byte-identical to sparse Wave runs, and
// byte-identical across any Config.Workers setting.
//
// After the horizon the wave is over: nobody transmits and nobody
// listens (the dense mirror of Wave's post-horizon Sleep), so channel
// models cannot inject post-horizon observations.

import (
	"math/bits"

	"radiocast/internal/bitvec"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// DenseWave implements radio.DenseProtocol for the collision-wave
// layering.
type DenseWave struct {
	g       *graph.Graph
	horizon int64

	triggered bitvec.Vec // wave arrived (level >= 0)
	frontier  bitvec.Vec // triggered with >= 1 untriggered neighbor
	newly     bitvec.Vec // heard a signal this round; promoted in EndRound
	listen    bitvec.Vec // complement of triggered (maintained incrementally)
	silent    bitvec.Vec // all-zero listener words for rounds >= horizon

	untriggeredDeg []int32 // per-node count of untriggered neighbors
	level          []int32 // BFS level; -1 until the wave arrives
	triggeredCount int

	pkt radio.Packet // Pulse{}, boxed once
	src graph.NodeID
}

var _ radio.DenseProtocol = (*DenseWave)(nil)

// NewDenseWave creates the SoA collision wave on g from source.
// horizon must be at least the source eccentricity for full coverage
// on the ideal channel (the wave then completes in exactly that many
// rounds); lossy channels need slack on top.
func NewDenseWave(g *graph.Graph, source graph.NodeID, horizon int64) *DenseWave {
	n := g.N()
	w := &DenseWave{
		g:              g,
		horizon:        horizon,
		triggered:      bitvec.New(n),
		frontier:       bitvec.New(n),
		newly:          bitvec.New(n),
		listen:         bitvec.New(n),
		silent:         bitvec.New(n),
		untriggeredDeg: make([]int32, n),
		level:          make([]int32, n),
		pkt:            Pulse{},
		src:            source,
	}
	w.listen.Ones()
	for v := 0; v < n; v++ {
		w.untriggeredDeg[v] = int32(g.Degree(graph.NodeID(v)))
		w.level[v] = -1
	}
	if n > 0 {
		w.trigger(source, 0)
	}
	return w
}

// trigger flips v to triggered at BFS level lvl, maintaining the
// listen complement, the neighbors' untriggered-degree counts, and the
// frontier on both sides.
func (w *DenseWave) trigger(v graph.NodeID, lvl int32) {
	w.triggered.Set(int(v))
	w.listen.Clear(int(v))
	w.level[v] = lvl
	w.triggeredCount++
	for _, u := range w.g.Neighbors(v) {
		w.untriggeredDeg[u]--
		if w.untriggeredDeg[u] == 0 {
			w.frontier.Clear(int(u)) // no-op for untriggered u
		}
	}
	if w.untriggeredDeg[v] > 0 {
		w.frontier.Set(int(v))
	}
}

// AppendTransmitters implements radio.DenseProtocol: every frontier
// node pulses deterministically until the horizon.
func (w *DenseWave) AppendTransmitters(r int64, lo, hi graph.NodeID, dst []radio.NodeID) []radio.NodeID {
	if r >= w.horizon {
		return dst
	}
	words := w.frontier.Words()
	for wi := int(lo) >> 6; wi<<6 < int(hi); wi++ {
		word := words[wi]
		for word != 0 {
			dst = append(dst, graph.NodeID(wi<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// ListenWords implements radio.DenseProtocol: every untriggered node
// listens until the horizon; afterwards the wave sleeps.
func (w *DenseWave) ListenWords(r int64) []uint64 {
	if r >= w.horizon {
		return w.silent.Words()
	}
	return w.listen.Words()
}

// Packet implements radio.DenseProtocol: every pulse is the 1-bit
// Pulse.
func (w *DenseWave) Packet(int64, graph.NodeID) radio.Packet { return w.pkt }

// Deliver implements radio.DenseProtocol: any signal — packet or ⊤ —
// triggers the listener. Marking the newly bit is v-local; promotion
// (which touches neighbors) waits for EndRound.
func (w *DenseWave) Deliver(_ int64, v graph.NodeID, out radio.Outcome) {
	if out.Collision || out.Packet != nil {
		w.newly.Set(int(v))
	}
}

// EndRound implements radio.DenseProtocol: promote this round's
// receivers to level r+1 in ascending node order.
func (w *DenseWave) EndRound(r int64) {
	words := w.newly.Words()
	for wi, word := range words {
		for word != 0 {
			v := graph.NodeID(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			w.trigger(v, int32(r+1))
		}
		words[wi] = 0
	}
}

// Done reports whether the wave has reached every node.
func (w *DenseWave) Done() bool { return w.triggeredCount == w.g.N() }

// TriggeredCount returns the number of nodes the wave has reached.
func (w *DenseWave) TriggeredCount() int { return w.triggeredCount }

// Level returns v's learned BFS level, or -1 if the wave has not
// arrived (matching Wave.Level).
func (w *DenseWave) Level(v graph.NodeID) int { return int(w.level[v]) }

// Horizon returns the configured wave horizon.
func (w *DenseWave) Horizon() int64 { return w.horizon }
