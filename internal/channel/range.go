package channel

import (
	"math"

	"radiocast/internal/radio"
)

// RangeErasure is the position-aware quasi-unit-disk loss model: a
// link is reliable when the endpoints are within Inner, impossible
// beyond Outer, and erased with a probability that ramps linearly
// across the band in between —
//
//	p(d) = (d − Inner) / (Outer − Inner)   for Inner < d < Outer.
//
// This is the bnet-style physical layer: a hard reliable radius
// surrounded by a probabilistic fringe. Pair it with a graph built at
// the Outer radius (geo.NewDisk(layout, Outer)) so every band link
// exists in the topology and this model decides, per round, whether
// the fringe delivery happens.
//
// The coordinate slices alias the layout that built the graph: a
// mobility stepper that moves nodes between re-layouts shifts these
// distances immediately, while the CSR only catches up at the next
// Retopo. Draws are keyed by (seed, round, link) exactly like
// Erasure, so the model is deterministic, engine-invariant, and safe
// under the dense engine's concurrent DropLink calls — it holds no
// mutable state at all (Reset is inherited from Nop semantics: there
// is nothing to rewind, so none is implemented).
type RangeErasure struct {
	Nop
	// X, Y are the node positions, aliased from the geo layout.
	X, Y []float64
	// Inner is the reliable radius; Outer the maximum range.
	Inner, Outer float64
	seed         uint64
}

// NewRangeErasure returns a quasi-unit-disk erasure channel over the
// given positions. Requires 0 <= inner < outer.
func NewRangeErasure(x, y []float64, inner, outer float64, seed uint64) *RangeErasure {
	if !(inner >= 0 && outer > inner) {
		panic("channel: NewRangeErasure requires 0 <= inner < outer")
	}
	return &RangeErasure{X: x, Y: y, Inner: inner, Outer: outer, seed: seed}
}

// DropLink implements radio.Channel. Squared distances settle the
// common cases (inside the reliable radius, beyond range) without a
// square root; only band links pay for the sqrt that the linear ramp
// needs.
func (c *RangeErasure) DropLink(r int64, from, to radio.NodeID) bool {
	dx := c.X[to] - c.X[from]
	dy := c.Y[to] - c.Y[from]
	d2 := dx*dx + dy*dy
	if d2 <= c.Inner*c.Inner {
		return false
	}
	if d2 >= c.Outer*c.Outer {
		return true
	}
	p := (math.Sqrt(d2) - c.Inner) / (c.Outer - c.Inner)
	return chance(p, c.seed, 0xd157, uint64(r), linkKey(from, to))
}
