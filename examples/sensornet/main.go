// Sensornet: an emergency-alert flood across a simulated unit-disk
// sensor field — the practical scenario the paper's introduction
// motivates. Compares the three unknown-topology protocols across
// field sizes and prints a small table.
package main

import (
	"fmt"
	"log"

	"radiocast"
	"radiocast/internal/graph"
)

func main() {
	fmt.Println("emergency alert dissemination over unit-disk sensor fields")
	fmt.Println("(radius at the connectivity threshold; source at node 0)")
	fmt.Printf("\n%8s %6s %6s %10s %10s %12s\n", "sensors", "D", "deg", "decay", "cr", "gst-bcast")
	for _, n := range []int{100, 200, 400} {
		g := radiocast.NewUnitDisk(n, graph.ConnectivityRadius(n), 7)
		d := graph.Eccentricity(g, 0)
		opts := radiocast.Options{Seed: 11}

		decay, err := radiocast.DecayBroadcast(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		cr, err := radiocast.CRBroadcast(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		gst, err := radiocast.BroadcastKnownTopology(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %6d %6d %10d %10d %12d\n",
			n, d, g.MaxDegree(), decay.Rounds, cr.Rounds, gst.Rounds)
	}
	fmt.Println("\nrounds = synchronous slots until every sensor holds the alert")
	fmt.Println("note: dense fields have tiny diameters, so the GST schedule's")
	fmt.Println("polylog tail dominates and plain Decay wins — the crossover the")
	fmt.Println("paper predicts appears once D outgrows the polylog terms (see")
	fmt.Println("the quickstart example and experiment E2).")
}
