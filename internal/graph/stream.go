package graph

// Streaming graph generation: the million-node path. The legacy
// Builder keeps one map per node (hundreds of bytes of overhead per
// edge), which is fine at experiment scale (n <= 2^10) and hopeless at
// n = 10^6. An EdgeStream instead re-emits its edge sequence on
// demand, and FromStream materializes CSR directly with two counting
// passes over the stream — no edge list, no maps, no per-node
// allocation beyond the final arrays.
//
// The streaming-CSR contract: for any EdgeStream, FromStream(s) is
// byte-identical (offsets, edges, name) to feeding the same emissions
// through a Builder — duplicates dropped, self-loops dropped, rows
// sorted. Property tests enforce this on randomized small/medium
// streams, which is what validates the big-n path: the assembly is the
// same code at every n.

import (
	"fmt"
	"math"
	"slices"

	"radiocast/internal/rng"
)

// EdgeStream is a deterministic edge generator: Edges must emit the
// identical sequence on every invocation (FromStream iterates it
// twice — once to count degrees, once to fill). Emitting a self-loop
// or a duplicate edge is allowed; both are dropped during assembly,
// exactly like Builder.AddEdge.
type EdgeStream interface {
	// N returns the node count of the generated graph.
	N() int
	// Name returns the workload name carried by the built graph.
	Name() string
	// Edges calls emit for every (possibly duplicate) undirected edge.
	Edges(emit func(u, v NodeID))
}

// FromStream materializes a stream into CSR form: pass one counts
// degrees, pass two fills the edge array in place, then each row is
// sorted and deduplicated with forward compaction. Peak memory is the
// final CSR plus one int32 per node.
func FromStream(s EdgeStream) *Graph {
	n := s.N()
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{n: n, name: s.Name(), offsets: make([]int32, n+1)}
	deg := make([]int32, n)
	s.Edges(func(u, v NodeID) {
		if u == v {
			return
		}
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		deg[u]++
		deg[v]++
	})
	total := int32(0)
	for v := 0; v < n; v++ {
		g.offsets[v] = total
		total += deg[v]
		deg[v] = 0 // reuse as the pass-two fill cursor
	}
	g.offsets[n] = total
	g.edges = make([]NodeID, total)
	s.Edges(func(u, v NodeID) {
		if u == v {
			return
		}
		g.edges[g.offsets[u]+deg[u]] = v
		deg[u]++
		g.edges[g.offsets[v]+deg[v]] = u
		deg[v]++
	})
	// Sort + dedup each row, compacting forward. The write cursor never
	// passes the current row's start (compaction only shrinks), so rows
	// are read before they are overwritten.
	w := int32(0)
	for v := 0; v < n; v++ {
		start, end := g.offsets[v], g.offsets[v+1]
		row := g.edges[start:end]
		slices.Sort(row)
		g.offsets[v] = w
		prev := NodeID(-1)
		for _, u := range row {
			if u == prev {
				continue
			}
			prev = u
			g.edges[w] = u
			w++
		}
	}
	g.offsets[n] = w
	g.edges = g.edges[:w]
	return g
}

// BuildConnected materializes a stream and stitches connectivity: if
// the sample is disconnected, each secondary component (in ascending
// min-node order) is joined to node 0's component by one random edge,
// mirroring the legacy stitchConnected semantics at streaming scale
// (one component scan instead of a BFS per added edge).
func BuildConnected(s EdgeStream, seed uint64) *Graph {
	g := FromStream(s)
	if g.n == 0 {
		return g
	}
	res := BFS(g, 0)
	if res.Reached == g.n {
		return g
	}
	r := rng.New(seed, 0x737469) // "sti"
	reached := make([]NodeID, 0, res.Reached)
	for v := 0; v < g.n; v++ {
		if res.Dist[v] >= 0 {
			reached = append(reached, NodeID(v))
		}
	}
	visited := res.Dist // -1 = not yet in node 0's component
	var queue, extraU, extraV []NodeID
	for v := 0; v < g.n; v++ {
		if visited[v] >= 0 {
			continue
		}
		// Collect this component, pick a random member, stitch it to a
		// random node of the main component.
		comp := queue[:0]
		visited[v] = 0
		comp = append(comp, NodeID(v))
		for head := 0; head < len(comp); head++ {
			for _, u := range g.Neighbors(comp[head]) {
				if visited[u] < 0 {
					visited[u] = 0
					comp = append(comp, u)
				}
			}
		}
		queue = comp
		extraU = append(extraU, reached[r.Intn(len(reached))])
		extraV = append(extraV, comp[r.Intn(len(comp))])
	}
	return FromStream(&augmentedStream{g: g, extraU: extraU, extraV: extraV})
}

// augmentedStream re-emits a built graph's edges plus stitch edges.
type augmentedStream struct {
	g              *Graph
	extraU, extraV []NodeID
}

func (a *augmentedStream) N() int       { return a.g.n }
func (a *augmentedStream) Name() string { return a.g.name }

func (a *augmentedStream) Edges(emit func(u, v NodeID)) {
	for v := 0; v < a.g.n; v++ {
		for _, u := range a.g.Neighbors(NodeID(v)) {
			if u > NodeID(v) {
				emit(NodeID(v), u)
			}
		}
	}
	for i := range a.extraU {
		emit(a.extraU[i], a.extraV[i])
	}
}

// ---------------------------------------------------------------------
// Streaming generators. Grid/Path/ClusterChain emit exactly the edge
// sets of their Builder-based counterparts, so their streamed CSR is
// byte-identical to the legacy graphs. GNP and RandomRegular sample
// the same distributions but CANNOT replay the legacy draws (GNP
// consumes Θ(n²) uniforms where the stream skips geometrically), so
// they are distinct named families.

// pathStream emits the path 0-1-...-n-1.
type pathStream struct{ n int }

// StreamPath is the streaming counterpart of Path.
func StreamPath(n int) EdgeStream { return pathStream{n} }

func (s pathStream) N() int       { return s.n }
func (s pathStream) Name() string { return fmt.Sprintf("path-%d", s.n) }

func (s pathStream) Edges(emit func(u, v NodeID)) {
	for v := 0; v+1 < s.n; v++ {
		emit(NodeID(v), NodeID(v+1))
	}
}

// gridStream emits the rows x cols grid.
type gridStream struct{ rows, cols int }

// StreamGrid is the streaming counterpart of Grid.
func StreamGrid(rows, cols int) EdgeStream { return gridStream{rows, cols} }

func (s gridStream) N() int       { return s.rows * s.cols }
func (s gridStream) Name() string { return fmt.Sprintf("grid-%dx%d", s.rows, s.cols) }

func (s gridStream) Edges(emit func(u, v NodeID)) {
	id := func(r, c int) NodeID { return NodeID(r*s.cols + c) }
	for r := 0; r < s.rows; r++ {
		for c := 0; c < s.cols; c++ {
			if c+1 < s.cols {
				emit(id(r, c), id(r, c+1))
			}
			if r+1 < s.rows {
				emit(id(r, c), id(r+1, c))
			}
		}
	}
}

// clusterChainStream emits the chain-of-cliques workload.
type clusterChainStream struct{ chain, clique int }

// StreamClusterChain is the streaming counterpart of ClusterChain.
func StreamClusterChain(chain, clique int) EdgeStream {
	return clusterChainStream{chain, clique}
}

func (s clusterChainStream) N() int { return s.chain * s.clique }
func (s clusterChainStream) Name() string {
	return fmt.Sprintf("clusterchain-%dx%d", s.chain, s.clique)
}

func (s clusterChainStream) Edges(emit func(u, v NodeID)) {
	id := func(c, i int) NodeID { return NodeID(c*s.clique + i) }
	for c := 0; c < s.chain; c++ {
		for i := 0; i < s.clique; i++ {
			for j := i + 1; j < s.clique; j++ {
				emit(id(c, i), id(c, j))
			}
		}
		if c+1 < s.chain {
			emit(id(c, s.clique-1), id(c+1, 0))
		}
	}
}

// gnpStream samples G(n, p) by geometric skipping over the linear
// index of the u<v pair sequence: instead of one Bernoulli draw per
// pair (Θ(n²) draws), each uniform draw jumps Geometric(p) pairs ahead
// to the next edge, so generation is O(m) draws. Identical
// distribution to GNP, different draw sequence.
type gnpStream struct {
	n    int
	p    float64
	seed uint64
}

// StreamGNP is the streaming G(n, p) sampler; wrap it in
// BuildConnected for a single broadcast domain.
func StreamGNP(n int, p float64, seed uint64) EdgeStream {
	return gnpStream{n: n, p: p, seed: seed}
}

func (s gnpStream) N() int       { return s.n }
func (s gnpStream) Name() string { return fmt.Sprintf("gnp-%d-p%.4g", s.n, s.p) }

func (s gnpStream) Edges(emit func(u, v NodeID)) {
	n := int64(s.n)
	total := n * (n - 1) / 2
	if total <= 0 || s.p <= 0 {
		return
	}
	if s.p >= 1 {
		for u := int64(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				emit(NodeID(u), NodeID(v))
			}
		}
		return
	}
	r := rng.New(s.seed, 0x6e7073) // "nps"
	logq := math.Log1p(-s.p)       // ln(1-p) < 0
	k := int64(-1)                 // linear index of the last emitted pair
	u := int64(0)
	base := int64(0) // linear index of pair (u, u+1)
	for {
		// skip ~ Geometric(p): non-edges before the next edge. 1-F is
		// uniform on (0, 1], so Log1p(-F) is finite.
		skipF := math.Log1p(-r.Float64()) / logq
		if skipF >= float64(total) {
			return
		}
		k += 1 + int64(skipF)
		if k >= total {
			return
		}
		for k >= base+(n-1-u) {
			base += n - 1 - u
			u++
		}
		emit(NodeID(u), NodeID(u+1+(k-base)))
	}
}

// regularStream samples the pairing model of RandomRegular without the
// Builder: n·d stubs, one shuffle, consecutive pairs become edges
// (self-pairs dropped here, duplicate pairs deduplicated by the CSR
// assembly). Peak extra memory is the 4·n·d-byte stub array per pass.
// Identical distribution to RandomRegular, different draw sequence.
type regularStream struct {
	n, d int
	seed uint64
}

// StreamRandomRegular is the streaming (approximately) d-regular
// sampler; wrap it in BuildConnected for a single broadcast domain.
func StreamRandomRegular(n, d int, seed uint64) EdgeStream {
	return regularStream{n: n, d: d, seed: seed}
}

func (s regularStream) N() int       { return s.n }
func (s regularStream) Name() string { return fmt.Sprintf("regular-%d-d%d", s.n, s.d) }

func (s regularStream) Edges(emit func(u, v NodeID)) {
	r := rng.New(s.seed, 0x727273) // "rrs"
	stubs := make([]NodeID, 0, s.n*s.d)
	for v := 0; v < s.n; v++ {
		for i := 0; i < s.d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		emit(stubs[i], stubs[i+1])
	}
}
