// Command benchguard gates CI on allocation regressions: it parses
// `go test -bench -benchmem` output from stdin, compares each
// benchmark's allocs/op against a committed baseline, and exits
// non-zero when any guarded benchmark regresses past the tolerance.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngine' -benchmem -benchtime 3x . \
//	    | go run ./cmd/benchguard -baseline bench/baseline.json
//
// The baseline file pins allocs/op per benchmark (see bench/
// baseline.json). Allocation counts — unlike ns/op — are deterministic
// for this codebase's deterministic workloads, so a small tolerance
// only absorbs Go-toolchain drift, not noise. A guarded benchmark
// missing from the input is an error too: a silently-skipped guard is
// a disabled guard. Improvements (fewer allocs) print a note — commit
// the lower number to ratchet the baseline down.
//
// A second mode guards the E19 scale-sweep trajectory (see scale.go):
//
//	go run ./cmd/benchguard -scale BENCH_scale.json \
//	    -scalebaseline bench/scale_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Baseline is the committed allocation contract.
type Baseline struct {
	// TolerancePct is the allowed relative increase in allocs/op.
	TolerancePct float64 `json:"tolerance_pct"`
	// AllocsPerOp maps benchmark name (without the -GOMAXPROCS suffix)
	// to its pinned allocs/op.
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
}

// benchLine matches one -benchmem result line, e.g.
// "BenchmarkX-4   5   123 ns/op   77 rounds/op   456 B/op   7 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.json", "committed baseline JSON")
	scalePath := flag.String("scale", "", "radiobench -json scale artifact (BENCH_scale.json); enables the E19 trajectory ratchet instead of the stdin alloc gate")
	scaleBaselinePath := flag.String("scalebaseline", "bench/scale_baseline.json", "committed scale-trajectory baseline JSON")
	flag.Parse()

	if *scalePath != "" {
		runScaleGuard(*scalePath, *scaleBaselinePath)
		return
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	got := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so CI logs keep the full output
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		got[m[1]] = allocs
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for name, want := range base.AllocsPerOp {
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: guarded benchmark did not run\n", name)
			failed = true
			continue
		}
		limit := float64(want) * (1 + base.TolerancePct/100)
		switch {
		case float64(have) > limit:
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %d allocs/op, baseline %d (+%.0f%% tolerance = %.0f)\n",
				name, have, want, base.TolerancePct, limit)
			failed = true
		case have < want:
			fmt.Fprintf(os.Stderr, "benchguard: note %s improved: %d allocs/op vs baseline %d — consider ratcheting the baseline down\n",
				name, have, want)
		default:
			fmt.Fprintf(os.Stderr, "benchguard: ok %s: %d allocs/op (baseline %d)\n", name, have, want)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runScaleGuard runs the E19 trajectory ratchet (-scale mode).
func runScaleGuard(artifactPath, baselinePath string) {
	baseBlob, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base ScaleBaseline
	if err := json.Unmarshal(baseBlob, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", baselinePath, err)
		os.Exit(2)
	}
	artBlob, err := os.ReadFile(artifactPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	got, err := scaleMetrics(artBlob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", artifactPath, err)
		os.Exit(2)
	}
	if checkScale(base, got, os.Stderr) {
		os.Exit(1)
	}
}
