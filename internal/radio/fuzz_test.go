package radio

import (
	"testing"
	"testing/quick"

	"radiocast/internal/graph"
	"radiocast/internal/rng"
)

// Fuzz-style stress: random graphs with random transmit/sleep behavior
// must never panic, and the engine counters must stay consistent.
func TestEngineFuzzConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.1, seed)
		nw := New(g, Config{CollisionDetection: seed%2 == 0})
		for v := 0; v < g.N(); v++ {
			r := rng.New(seed, uint64(v))
			nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(round int64) Action {
				switch r.Intn(5) {
				case 0:
					return Transmit(RawPacket{Value: round})
				case 1:
					return Sleep(round + int64(r.Intn(20)))
				default:
					return Listen
				}
			}})
		}
		nw.Run(300)
		st := nw.Stats()
		if st.Rounds != 300 {
			return false
		}
		// Every delivery requires a transmission; every collision
		// observation requires at least two.
		if st.Deliveries+2*st.CollisionObs > st.Transmissions*int64(g.MaxDegree()) {
			return false
		}
		// Polls can't exceed nodes x rounds.
		return st.Polls <= int64(g.N())*300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// lossyChannel is a minimal in-package erasure channel (the stock
// models live in internal/channel, which imports this package): it
// drops each (link, round) delivery with probability P via a keyed
// hash, so evaluation order is irrelevant.
type lossyChannel struct{ P float64 }

func (lossyChannel) RoundStart(int64, []NodeID)          {}
func (lossyChannel) SuppressTransmit(int64, NodeID) bool { return false }
func (c lossyChannel) DropLink(r int64, from, to NodeID) bool {
	return float64(rng.Mix(uint64(r), uint64(from)<<32|uint64(to))>>11)/(1<<53) < c.P
}
func (lossyChannel) Observe(_ int64, _ NodeID, _ int, out Outcome, ok bool) (Outcome, bool) {
	return out, ok
}

// conservationTracer cross-checks every delivery against the round's
// transmitter set and the graph: an Observe must go to a non-transmitting
// listener, and a delivered packet must come from a transmitting
// neighbor.
type conservationTracer struct {
	t  *testing.T
	g  *graph.Graph
	tx map[NodeID]bool
}

func (c *conservationTracer) OnRound(_ int64, transmitters []NodeID) {
	c.tx = make(map[NodeID]bool, len(transmitters))
	for _, v := range transmitters {
		c.tx[v] = true
	}
}

func (c *conservationTracer) OnDeliver(r int64, to NodeID, out Outcome) {
	if c.tx[to] {
		c.t.Errorf("round %d: Observe delivered to transmitter %d", r, to)
	}
	if out.Packet != nil {
		if !c.tx[out.From] {
			c.t.Errorf("round %d: node %d received from non-transmitter %d", r, to, out.From)
		}
		if !c.g.HasEdge(out.From, to) {
			c.t.Errorf("round %d: node %d received from non-neighbor %d", r, to, out.From)
		}
	}
}

// Fuzz-style stress under a lossy channel: conservation invariants
// must hold, and — because the random actors never adapt to what they
// hear — the transmission schedule must match the ideal channel's,
// with every delivery accounted against a real transmitting neighbor.
func TestEngineFuzzLossyConservation(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.1, seed)
		loss := float64(seed%10) / 10
		run := func(ch Channel) Stats {
			tr := &conservationTracer{t: t, g: g}
			nw := New(g, Config{CollisionDetection: seed%2 == 0, Channel: ch, Tracer: tr})
			for v := 0; v < g.N(); v++ {
				r := rng.New(seed, uint64(v))
				nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(round int64) Action {
					switch r.Intn(5) {
					case 0:
						return Transmit(RawPacket{Value: round})
					case 1:
						return Sleep(round + int64(r.Intn(20)))
					default:
						return Listen
					}
				}})
			}
			nw.Run(300)
			return nw.Stats()
		}
		ideal := run(nil)
		lossy := run(lossyChannel{P: loss})
		// The channel cannot create traffic: same transmission schedule,
		// and every (listener, round) yields at most one observation.
		if lossy.Transmissions != ideal.Transmissions {
			return false
		}
		if lossy.Deliveries+lossy.CollisionObs > lossy.Polls {
			return false
		}
		if lossy.Deliveries > lossy.Transmissions*int64(g.MaxDegree()) {
			return false
		}
		// Drops are bounded by link opportunities: each transmission can
		// be erased on at most deg(t) links (plus once at the source).
		if lossy.Dropped > lossy.Transmissions*int64(g.MaxDegree()+1) {
			return false
		}
		if loss == 0 && (lossy.Dropped != 0 || lossy.Deliveries != ideal.Deliveries) {
			return false
		}
		return lossy.Rounds == 300 && lossy.Jammed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Total loss is total silence: with every link erased, nothing is ever
// observed, and every potential delivery is accounted as dropped.
func TestEngineFullLossSilence(t *testing.T) {
	g := graph.Grid(6, 6)
	nw := New(g, Config{CollisionDetection: true, Channel: lossyChannel{P: 1}})
	for v := 0; v < g.N(); v++ {
		r := rng.New(3, uint64(v))
		nw.SetProtocol(graph.NodeID(v), &FuncProtocol{
			ActFunc: func(round int64) Action {
				if r.Intn(3) == 0 {
					return Transmit(RawPacket{Value: round})
				}
				return Listen
			},
			ObserveFunc: func(int64, Outcome) { t.Error("observation leaked through full loss") },
		})
	}
	nw.Run(200)
	st := nw.Stats()
	if st.Deliveries != 0 || st.CollisionObs != 0 {
		t.Fatalf("full loss delivered: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("full loss dropped nothing")
	}
}

// The sleep/fast-forward path must agree with an always-awake run on
// what listeners observe: a sleeping node is by contract discarding,
// so runs that never sleep see a superset of events but identical
// transmission schedules for identical RNG streams.
func TestSleepDoesNotPerturbTransmitters(t *testing.T) {
	g := graph.Path(10)
	schedule := func(withSleep bool) []int64 {
		nw := New(g, Config{})
		var txRounds []int64
		for v := 0; v < g.N(); v++ {
			v := v
			r := rng.New(7, uint64(v))
			nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(round int64) Action {
				// Node v transmits deterministically on its own beat.
				if round%int64(v+2) == 0 {
					if v == 3 {
						txRounds = append(txRounds, round)
					}
					return Transmit(RawPacket{})
				}
				if withSleep && r.Intn(3) == 0 && v != 3 {
					return Sleep(round + 2)
				}
				return Listen
			}})
		}
		nw.Run(100)
		return txRounds
	}
	a := schedule(false)
	b := schedule(true)
	if len(a) != len(b) {
		t.Fatalf("sleeping peers changed node 3's transmission count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("transmission schedule perturbed by other nodes' sleeping")
		}
	}
}
