// Package rings implements the ring-decomposition protocol stacks of
// Theorem 1.1 (single-message broadcast, unknown topology, collision
// detection, O(D + polylog n)) and Theorem 1.3 (k-message broadcast,
// same setting, O(D + k log n + polylog n)).
//
// Pipeline (proofs of Theorems 1.1 and 1.3):
//
//	segment A  global collision-wave BFS layering in DBound+1 rounds.
//	segment B  decompose layers into rings of width W and build one
//	           GST per ring — all rings in parallel. With sequential
//	           boundaries, rings process them in lockstep,
//	           deepest-first, so concurrently active boundaries stay
//	           exactly W ≥ 3 layers apart and never interfere. With
//	           pipelined boundaries (SetPipelined, Section 2.2.4) the
//	           lockstep separation invariant relaxes to parity
//	           separation: same-parity boundaries run concurrently both
//	           within and across rings, active boundaries can come
//	           within one layer of each other across a ring border, and
//	           level-mod-4 packet tags (anchored per ring at
//	           (ring·W) mod 4) replace distance as the
//	           non-interference mechanism — shrinking the build segment
//	           from (W-1)·MaxRank to 3(W-1) + 2·MaxRank - 4
//	           rank-lengths. Segment-C vdist floods are scoped by a
//	           ring-parity tag.
//	segment C  single message (Theorem 1.1): ring-by-ring broadcast
//	           with the GST schedule, then a Decay handoff of
//	           Θ(log^2 n) rounds across each ring border.
//	           k messages (Theorem 1.3): batches of Θ(log n) messages
//	           pipelined across rings with stride 2 (adjacent rings
//	           are never simultaneously active, which substitutes for
//	           the paper's strip-level interleaving at twice the epoch
//	           count), RLNC inside rings, fountain FEC across borders.
//
// Fidelity note (DESIGN.md/EXPERIMENTS.md): with the sequential
// boundary construction, the polylog additive term is log^7-shaped
// rather than the paper's log^6, and the asymptotic regime D ≫ log^4 n
// where the ring machinery pays off is unreachable at simulation
// scale; the experiments therefore report the setup/broadcast phase
// decomposition explicitly.
package rings

import (
	"radiocast/internal/assign"
	"radiocast/internal/gstdist"
	"radiocast/internal/sched"
)

// Config fixes the schedule of a rings run.
type Config struct {
	// N is the network-size parameter.
	N int
	// DBound bounds the source eccentricity (wave horizon, ring count).
	DBound int
	// W is the ring width in layers; at least 3 (adjacent-ring
	// non-interference) — the paper's W is D/log^4 n.
	W int
	// CBroadcast scales the per-ring broadcast window:
	// CBroadcast·(2W + 6·L^2) rounds.
	CBroadcast int
	// CHandoff scales the border handoff window: CHandoff·L Decay
	// phases (single message) or CHandoff·L + 2·Batch fountain phases
	// (multi-message).
	CHandoff int
	// Batch is the messages per RLNC generation for Theorem 1.3
	// (default Θ(log n)); 0 disables multi-message fields.
	Batch int
	// K is the total message count (Theorem 1.3).
	K int
	// PayloadBits is the message payload size for RLNC/FEC.
	PayloadBits int
	// GST is the per-ring construction schedule (preset levels,
	// DBound = W-1, vdist enabled).
	GST gstdist.Config
}

// L returns ⌈log2 n⌉.
func (c Config) L() int { return sched.LogN(c.N) }

// DefaultWidth returns the ring width used by the harness: the
// paper's D/log^4 n clamped to [3, D+1].
func DefaultWidth(n, d int) int {
	l := sched.LogN(n)
	w := d / (l * l * l * l)
	if w < 3 {
		w = 3
	}
	if w > d+1 {
		w = d + 1
	}
	return w
}

// DefaultConfig builds a Theorem 1.1 configuration (k = 0) or a
// Theorem 1.3 configuration (k > 0) with Θ-constant c.
func DefaultConfig(n, d, k, c int) Config {
	if c < 1 {
		c = 1
	}
	w := DefaultWidth(n, d)
	l := sched.LogN(n)
	cfg := Config{
		N:           n,
		DBound:      d,
		W:           w,
		CBroadcast:  c,
		CHandoff:    c,
		K:           k,
		PayloadBits: 32,
	}
	if k > 0 {
		cfg.Batch = l
		if cfg.Batch > k {
			cfg.Batch = k
		}
	}
	cfg.GST = gstdist.Config{
		N:         n,
		DBound:    w - 1,
		Mode:      gstdist.LayerPreset,
		Assign:    assign.DefaultParams(n, c),
		WithVdist: true,
		CVdist:    c,
	}
	return cfg
}

// SetPipelined toggles the Section 2.2.4 pipelined boundary
// construction inside every ring's GST build. Enabling applies only
// when the pipelined schedule actually shortens the build: per-ring
// diameter bound is W-1, and at the minimum width W=3 the sequential
// lockstep is already as short as the pipeline's skew-3 wavefront
// (the pipeline wins from DBound >= 3, strictly from DBound >= 4 or
// deeper rank stacks) — narrow rings therefore keep the sequential
// schedule rather than paying the wavefront fill.
func (c *Config) SetPipelined(on bool) {
	c.GST.PipelinedBoundaries = false
	if !on {
		return
	}
	pip := c.GST
	pip.PipelinedBoundaries = true
	if pip.BoundariesRounds() < c.GST.BoundariesRounds() {
		c.GST.PipelinedBoundaries = true
	}
}

// Pipelined reports whether the ring GST builds use the pipelined
// boundary schedule.
func (c Config) Pipelined() bool { return c.GST.PipelinedBoundaries }

// Rings returns the number of rings covering layers [0, DBound].
func (c Config) Rings() int { return (c.DBound + c.W) / c.W }

// RingOf returns the ring index of a BFS layer.
func (c Config) RingOf(layer int32) int { return int(layer) / c.W }

// LocalLevel returns the in-ring level of a layer.
func (c Config) LocalLevel(layer int32) int32 { return layer % int32(c.W) }

// Batches returns the number of RLNC generations (Theorem 1.3).
func (c Config) Batches() int {
	if c.Batch <= 0 {
		return 0
	}
	return (c.K + c.Batch - 1) / c.Batch
}

// WaveRounds returns segment A's length.
func (c Config) WaveRounds() int64 { return int64(c.DBound) + 1 }

// BuildRounds returns segment B's length (identical for every ring —
// they run in lockstep).
func (c Config) BuildRounds() int64 { return c.GST.TotalRounds() }

// BroadcastWindow returns the per-ring GST broadcast window length:
// Θ(W + Batch·log n + log^2 n) with empirically calibrated constants
// (a fast wave advances one hop per two rounds; each extra message
// costs ~4-6 slow-slot deliveries of ⌈log n⌉ rounds each).
func (c Config) BroadcastWindow() int64 {
	l := int64(c.L())
	return int64(c.CBroadcast) * (2*int64(c.W) + 10*int64(c.Batch)*l + 8*l*l + 20*l)
}

// HandoffWindow returns the border handoff window length: enough Decay
// phases for Batch innovative fountain receptions plus slack.
func (c Config) HandoffWindow() int64 {
	l := int64(c.L())
	phases := int64(c.CHandoff)*l + 3*int64(c.Batch) + 8
	return phases * l
}

// EpochLen returns one broadcast+handoff epoch.
func (c Config) EpochLen() int64 { return c.BroadcastWindow() + c.HandoffWindow() }

// Epochs returns the number of segment-C epochs: one per ring for the
// single message; R + 2·Batches for the stride-2 pipeline.
func (c Config) Epochs() int {
	if c.Batch <= 0 {
		return c.Rings()
	}
	return c.Rings() + 2*c.Batches()
}

// SpreadRounds returns segment C's length.
func (c Config) SpreadRounds() int64 { return int64(c.Epochs()) * c.EpochLen() }

// TotalRounds returns the full protocol length.
func (c Config) TotalRounds() int64 {
	return c.WaveRounds() + c.BuildRounds() + c.SpreadRounds()
}

// Segment identifies the top-level position.
type Segment uint8

// Segments.
const (
	SegWave Segment = iota + 1
	SegBuild
	SegSpread
	SegDone
)

// Pos locates a round.
type Pos struct {
	Seg   Segment
	Off   int64 // segment-local offset
	Epoch int   // segment C epoch
	// Handoff marks the handoff sub-window of the epoch; EpochOff is
	// the offset within the sub-window.
	Handoff  bool
	EpochOff int64
}

// Locator is the precomputed form of a Config's schedule arithmetic.
// Locate runs for every node in every round (Act and Observe), and
// its length chain — BuildRounds → gstdist.TotalRounds →
// assign.BoundaryRounds → ... — dominated full-sweep CPU profiles;
// protocols cache a Locator once instead.
type Locator struct {
	wave     int64
	build    int64
	spread   int64
	epochLen int64
	bcastWin int64
}

// Locator precomputes the Config's schedule lengths.
func (c Config) Locator() Locator {
	return Locator{
		wave:     c.WaveRounds(),
		build:    c.BuildRounds(),
		spread:   c.SpreadRounds(),
		epochLen: c.EpochLen(),
		bcastWin: c.BroadcastWindow(),
	}
}

// Locate maps a global round to a position.
func (l Locator) Locate(r int64) Pos {
	if r < l.wave {
		return Pos{Seg: SegWave, Off: r}
	}
	r -= l.wave
	if r < l.build {
		return Pos{Seg: SegBuild, Off: r}
	}
	r -= l.build
	if r < l.spread {
		epoch := int(r / l.epochLen)
		rem := r % l.epochLen
		if rem < l.bcastWin {
			return Pos{Seg: SegSpread, Epoch: epoch, EpochOff: rem}
		}
		return Pos{Seg: SegSpread, Epoch: epoch, Handoff: true, EpochOff: rem - l.bcastWin}
	}
	return Pos{Seg: SegDone}
}

// Locate maps a global round to a position. Hot paths (Protocol)
// cache a Locator instead of re-deriving it per call.
func (c Config) Locate(r int64) Pos { return c.Locator().Locate(r) }
