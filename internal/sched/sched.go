// Package sched provides hierarchical round-clock arithmetic.
//
// Every protocol in the paper is globally clocked: all schedule lengths
// are fixed functions of n and D, so each node can derive its current
// (phase, epoch, stage, slot, ...) position purely from the round
// number. This package centralizes that arithmetic so protocols stay
// readable and the decompositions are tested once.
package sched

import "fmt"

// Segment is a named contiguous block of rounds inside a Layout.
type Segment struct {
	Name string
	Len  int64
}

// Layout is a fixed sequence of segments. Locate maps an offset within
// the layout to (segment index, offset within segment).
type Layout struct {
	segs   []Segment
	starts []int64
	total  int64
}

// NewLayout builds a layout from segments. Every segment must have a
// positive length.
func NewLayout(segs ...Segment) Layout {
	l := Layout{segs: segs, starts: make([]int64, len(segs))}
	for i, s := range segs {
		if s.Len <= 0 {
			panic(fmt.Sprintf("sched: segment %q has non-positive length %d", s.Name, s.Len))
		}
		l.starts[i] = l.total
		l.total += s.Len
	}
	return l
}

// Total returns the layout's total length in rounds.
func (l Layout) Total() int64 { return l.total }

// NumSegments returns the number of segments.
func (l Layout) NumSegments() int { return len(l.segs) }

// Segment returns the i-th segment.
func (l Layout) Segment(i int) Segment { return l.segs[i] }

// Start returns the offset at which segment i begins.
func (l Layout) Start(i int) int64 { return l.starts[i] }

// Locate maps an offset in [0, Total()) to its segment and in-segment
// offset. Panics if off is out of range.
func (l Layout) Locate(off int64) (seg int, rem int64) {
	if off < 0 || off >= l.total {
		panic(fmt.Sprintf("sched: offset %d out of layout range [0,%d)", off, l.total))
	}
	// Binary search over starts.
	lo, hi := 0, len(l.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.starts[mid] <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, off - l.starts[lo]
}

// Cycle decomposes a round into (iteration, offset) for an infinitely
// repeating block of the given period.
func Cycle(r, period int64) (iter, off int64) {
	if period <= 0 {
		panic("sched: non-positive period")
	}
	if r < 0 {
		panic("sched: negative round")
	}
	return r / period, r % period
}

// CeilLog2 returns ceil(log2(n)) for n >= 1; CeilLog2(1) == 0.
func CeilLog2(n int) int {
	if n < 1 {
		panic("sched: CeilLog2 of non-positive value")
	}
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// LogN returns the schedule parameter ⌈log2 n⌉ used throughout the
// paper, clamped below at 1 so degenerate graphs (n ≤ 2) still get
// non-empty phases.
func LogN(n int) int {
	l := CeilLog2(max(n, 2))
	if l < 1 {
		return 1
	}
	return l
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
