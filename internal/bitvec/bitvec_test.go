package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewIsZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if !v.IsZero() {
			t.Errorf("New(%d) not zero", n)
		}
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if v.PopCount() != 0 {
			t.Errorf("New(%d).PopCount() = %d", n, v.PopCount())
		}
	}
}

func TestSetGetClearFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Flip", i)
		}
		v.Flip(i)
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestUnit(t *testing.T) {
	u := Unit(70, 69)
	if u.PopCount() != 1 || !u.Get(69) {
		t.Fatalf("Unit(70,69) wrong: %s", u)
	}
	if u.LowestSetBit() != 69 {
		t.Fatalf("LowestSetBit = %d", u.LowestSetBit())
	}
}

func TestXorSelfInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := testRand(seed)
		n := 1 + r.Intn(200)
		v := RandomVec(n, r.Uint64)
		u := RandomVec(n, r.Uint64)
		w := Xor(Xor(v, u), u)
		return Equal(w, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXorCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := testRand(seed)
		n := 1 + r.Intn(200)
		v := RandomVec(n, r.Uint64)
		u := RandomVec(n, r.Uint64)
		return Equal(Xor(v, u), Xor(u, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotBilinear(t *testing.T) {
	// <a+b, c> == <a,c> xor <b,c>
	f := func(seed int64) bool {
		r := testRand(seed)
		n := 1 + r.Intn(150)
		a := RandomVec(n, r.Uint64)
		b := RandomVec(n, r.Uint64)
		c := RandomVec(n, r.Uint64)
		return Dot(Xor(a, b), c) == (Dot(a, c) != Dot(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDotUnitExtractsBit(t *testing.T) {
	r := testRand(7)
	v := RandomVec(99, r.Uint64)
	for i := 0; i < 99; i++ {
		if Dot(v, Unit(99, i)) != v.Get(i) {
			t.Fatalf("Dot(v, e_%d) != v[%d]", i, i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(64)
	v.Set(3)
	w := v.Clone()
	w.Set(5)
	if v.Get(5) {
		t.Fatal("Clone shares storage")
	}
}

func TestRandomVecTrimsTail(t *testing.T) {
	// Bits beyond n must stay zero so PopCount and Equal work.
	r := testRand(3)
	for _, n := range []int{1, 5, 63, 65, 100} {
		v := RandomVec(n, r.Uint64)
		count := 0
		for i := 0; i < n; i++ {
			if v.Get(i) {
				count++
			}
		}
		if count != v.PopCount() {
			t.Fatalf("n=%d: PopCount %d != visible bits %d (tail not trimmed)", n, v.PopCount(), count)
		}
	}
}

func TestRandomNonZero(t *testing.T) {
	r := testRand(11)
	for i := 0; i < 100; i++ {
		if RandomNonZeroVec(3, r.Uint64).IsZero() {
			t.Fatal("RandomNonZeroVec returned zero")
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	v := FromBits([]bool{true, false, true, true, false})
	if v.String() != "10110" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(New(3), New(4))
}

func BenchmarkXor1024(b *testing.B) {
	r := testRand(1)
	v := RandomVec(1024, r.Uint64)
	u := RandomVec(1024, r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.XorInPlace(u)
	}
}

func BenchmarkDot1024(b *testing.B) {
	r := testRand(1)
	v := RandomVec(1024, r.Uint64)
	u := RandomVec(1024, r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(v, u)
	}
}
