// Package graph provides the undirected-graph substrate for the radio
// network simulator: a compact adjacency representation, traversals
// (BFS layerings, diameter), and the workload generators used by the
// paper's experiments (paths, grids, random graphs, unit-disk graphs,
// cluster chains, ...).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are always 0..N-1.
type NodeID = int32

// Graph is a simple undirected graph with nodes 0..N-1 stored in CSR
// (compressed sparse row) form for cache-friendly neighbor iteration.
// Graphs are immutable after construction; build them with a Builder
// or a generator.
type Graph struct {
	n       int
	offsets []int32  // len n+1
	edges   []NodeID // concatenated sorted adjacency lists
	name    string
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) / 2 }

// Name returns the generator-assigned workload name (may be empty).
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the raw compressed-sparse-row arrays: offsets has length
// N()+1 and edges[offsets[v]:offsets[v+1]] is the sorted adjacency
// list of v. Both slices alias internal storage and must not be
// modified; they let hot loops (the simulator's delivery pass) iterate
// adjacency without per-node accessor calls.
func (g *Graph) CSR() (offsets []int32, edges []NodeID) {
	return g.offsets, g.edges
}

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns the maximum degree Δ.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// Builder accumulates edges and produces an immutable Graph.
// Duplicate edges and self-loops are silently dropped.
type Builder struct {
	n    int
	adj  []map[NodeID]struct{}
	name string
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, adj: make([]map[NodeID]struct{}, n)}
}

// SetName records the workload name carried by the built graph.
func (b *Builder) SetName(name string) { b.name = name }

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[NodeID]struct{})
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[NodeID]struct{})
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
}

// HasEdge reports whether the builder already contains {u, v}.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if b.adj[u] == nil {
		return false
	}
	_, ok := b.adj[u][v]
	return ok
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, offsets: make([]int32, b.n+1), name: b.name}
	total := 0
	for _, m := range b.adj {
		total += len(m)
	}
	g.edges = make([]NodeID, 0, total)
	for v := 0; v < b.n; v++ {
		g.offsets[v] = int32(len(g.edges))
		if b.adj[v] == nil {
			continue
		}
		start := len(g.edges)
		for u := range b.adj[v] {
			g.edges = append(g.edges, u)
		}
		row := g.edges[start:]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	g.offsets[b.n] = int32(len(g.edges))
	return g
}

// BFSResult holds a breadth-first layering from a set of sources.
type BFSResult struct {
	// Dist[v] is the hop distance from the nearest source, or -1 if
	// unreachable.
	Dist []int32
	// Parent[v] is a BFS-tree parent of v (-1 for sources/unreachable).
	Parent []NodeID
	// MaxDist is the largest finite distance (the eccentricity of the
	// source set within its reachable component).
	MaxDist int32
	// Reached is the number of reachable nodes (including sources).
	Reached int
}

// BFS runs a breadth-first search from one or more sources.
func BFS(g *Graph, sources ...NodeID) *BFSResult {
	if len(sources) == 0 {
		panic("graph: BFS needs at least one source")
	}
	res := &BFSResult{
		Dist:   make([]int32, g.n),
		Parent: make([]NodeID, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	queue := make([]NodeID, 0, g.n)
	for _, s := range sources {
		if res.Dist[s] == 0 && len(queue) > 0 {
			continue // duplicate source
		}
		res.Dist[s] = 0
		queue = append(queue, s)
	}
	res.Reached = len(queue)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := res.Dist[v]
		for _, u := range g.Neighbors(v) {
			if res.Dist[u] >= 0 {
				continue
			}
			res.Dist[u] = dv + 1
			res.Parent[u] = v
			res.Reached++
			if dv+1 > res.MaxDist {
				res.MaxDist = dv + 1
			}
			queue = append(queue, u)
		}
	}
	return res
}

// IsConnected reports whether g is connected (true for the empty and
// single-node graph).
func IsConnected(g *Graph) bool {
	if g.n <= 1 {
		return true
	}
	return BFS(g, 0).Reached == g.n
}

// Eccentricity returns the maximum distance from v to any node.
// Panics if the graph is disconnected from v.
func Eccentricity(g *Graph, v NodeID) int {
	res := BFS(g, v)
	if res.Reached != g.n {
		panic("graph: Eccentricity on disconnected graph")
	}
	return int(res.MaxDist)
}

// Diameter computes the exact diameter with n BFS traversals. Intended
// for test-scale graphs; use DiameterApprox for large inputs.
func Diameter(g *Graph) int {
	if g.n == 0 {
		return 0
	}
	max := 0
	for v := 0; v < g.n; v++ {
		if e := Eccentricity(g, NodeID(v)); e > max {
			max = e
		}
	}
	return max
}

// DiameterApprox returns a 2-approximation of the diameter (the double
// sweep lower bound, which is exact on trees and very tight in
// practice): ecc(u) for u the farthest node from node 0.
func DiameterApprox(g *Graph) int {
	if g.n == 0 {
		return 0
	}
	first := BFS(g, 0)
	far := NodeID(0)
	for v := 0; v < g.n; v++ {
		if first.Dist[v] > first.Dist[far] {
			far = NodeID(v)
		}
	}
	return Eccentricity(g, far)
}

// Validate checks internal consistency (sorted unique adjacency,
// symmetry) and returns a descriptive error on violation. Used by
// tests and the fuzzing harness.
func (g *Graph) Validate() error {
	for v := 0; v < g.n; v++ {
		adj := g.Neighbors(NodeID(v))
		for i, u := range adj {
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("node %d: adjacency not sorted/unique at %d", v, i)
			}
			if u == NodeID(v) {
				return fmt.Errorf("node %d: self-loop", v)
			}
			if !g.HasEdge(u, NodeID(v)) {
				return fmt.Errorf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}
