package radiocast

import (
	"testing"
)

func TestFacadeBroadcastKnownTopology(t *testing.T) {
	g := NewGrid(6, 6)
	res, err := BroadcastKnownTopology(g, Options{Seed: 1})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestFacadeBroadcastCD(t *testing.T) {
	g := NewClusterChain(4, 4)
	res, err := BroadcastCD(g, Options{Seed: 2})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFacadeBroadcastK(t *testing.T) {
	g := NewGrid(5, 5)
	res, err := BroadcastK(g, 6, Options{Seed: 3})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if _, err := BroadcastK(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFacadeBroadcastKCD(t *testing.T) {
	g := NewGNP(30, 0.2, 5)
	res, err := BroadcastKCD(g, 4, Options{Seed: 4})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := NewPath(40)
	d, err := DecayBroadcast(g, Options{Seed: 5})
	if err != nil || !d.Completed {
		t.Fatalf("decay: %+v %v", d, err)
	}
	c, err := CRBroadcast(g, Options{Seed: 5})
	if err != nil || !c.Completed {
		t.Fatalf("cr: %+v %v", c, err)
	}
}

func TestFacadeBuildGST(t *testing.T) {
	g := NewGrid(5, 7)
	tree, err := BuildGST(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.VirtualDistance) != g.N() {
		t.Fatal("vdist missing")
	}
	if len(tree.ScheduleInfo()) != g.N() {
		t.Fatal("schedule info missing")
	}
}

func TestFacadeBuildGSTDistributed(t *testing.T) {
	g := NewGNP(20, 0.25, 7)
	tree, err := BuildGSTDistributed(g, Options{Seed: 6, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.ConstructionRounds <= 0 {
		t.Fatal("construction rounds not reported")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := BroadcastCD(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := NewPath(5)
	if _, err := BroadcastCD(g, Options{Source: 99}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// Options.Adaptive on the ideal channel completes in one epoch with
// the exact round count of the non-adaptive run; under heavy loss it
// re-layers past the one-shot completion cliff. BroadcastK rejects the
// flag explicitly rather than ignoring it.
func TestFacadeAdaptive(t *testing.T) {
	g := NewClusterChain(6, 6)

	plain, err := BroadcastCD(g, Options{Seed: 9})
	if err != nil || !plain.Completed {
		t.Fatalf("plain run: %+v %v", plain, err)
	}
	ideal, err := BroadcastCD(g, Options{Seed: 9, Adaptive: true})
	if err != nil || !ideal.Completed || ideal.Epochs != 1 || ideal.Rounds != plain.Rounds {
		t.Fatalf("ideal-channel adaptive run should be one epoch at the plain round count:\nplain    %+v\nadaptive %+v (%v)",
			plain, ideal, err)
	}

	lossy := Options{Seed: 9, Channel: ErasureChannel(0.3, 77)}
	oneShot, err := BroadcastCD(g, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Completed {
		t.Skip("this seed survived loss 0.3 one-shot; the retry assertion needs a failing base run")
	}
	lossy.Adaptive = true
	lossy.Channel = ErasureChannel(0.3, 77)
	retried, err := BroadcastCD(g, lossy)
	if err != nil || !retried.Completed || retried.Epochs < 2 {
		t.Fatalf("adaptive run did not close the loss cliff: %+v (%v)", retried, err)
	}

	for _, fn := range []func() (Result, error){
		func() (Result, error) {
			return BroadcastKCD(g, 4, Options{Seed: 9, Adaptive: true, Channel: ErasureChannel(0.2, 8)})
		},
		func() (Result, error) {
			return DecayBroadcast(g, Options{Seed: 9, Adaptive: true, Channel: ErasureChannel(0.2, 8)})
		},
		func() (Result, error) {
			return CRBroadcast(g, Options{Seed: 9, Adaptive: true, Channel: ErasureChannel(0.2, 8)})
		},
		func() (Result, error) {
			return BroadcastKnownTopology(g, Options{Seed: 9, Adaptive: true, Channel: ErasureChannel(0.2, 8)})
		},
	} {
		res, err := fn()
		if err != nil || !res.Completed || res.Epochs < 1 {
			t.Fatalf("adaptive run failed: %+v (%v)", res, err)
		}
	}

	if _, err := BroadcastK(g, 4, Options{Adaptive: true}); err == nil {
		t.Fatal("BroadcastK silently accepted Options.Adaptive")
	}
}

// Adaptive runs obey the reproducibility contract end to end.
func TestFacadeAdaptiveDeterminism(t *testing.T) {
	g := NewClusterChain(6, 6)
	run := func() Result {
		res, err := BroadcastCD(g, Options{Seed: 3, Adaptive: true, Channel: ErasureChannel(0.3, 41)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("adaptive facade run nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestRandomMessagesReproducible(t *testing.T) {
	a := RandomMessages(4, 16, 9)
	b := RandomMessages(4, 16, 9)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("messages not reproducible")
		}
	}
}
