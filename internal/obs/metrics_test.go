package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("radiocastd_jobs_submitted_total", "jobs accepted", L("protocol", "decay"))
	c.Inc()
	c.Add(2)
	r.Counter("radiocastd_jobs_submitted_total", "jobs accepted", L("protocol", "cd")).Inc()
	g := r.Gauge("radiocastd_jobs_running", "jobs executing now")
	g.Set(2)
	g.Dec()
	r.GaugeFunc("radiocastd_heap_alloc_bytes", "live heap", func() float64 { return 4096 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE radiocastd_jobs_submitted_total counter",
		`radiocastd_jobs_submitted_total{protocol="decay"} 3`,
		`radiocastd_jobs_submitted_total{protocol="cd"} 1`,
		"# TYPE radiocastd_jobs_running gauge",
		"radiocastd_jobs_running 1",
		"radiocastd_heap_alloc_bytes 4096",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesHandleCaching(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("job", "j1"))
	b := r.Counter("x_total", "", L("job", "j1"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("x_total", "", L("job", "j2")); c == a {
		t.Fatal("distinct labels share a counter")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering y_total as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("y_total", "")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("job_wall_seconds", "job wall time", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`job_wall_seconds_bucket{le="0.1"} 1`,
		`job_wall_seconds_bucket{le="1"} 3`,
		`job_wall_seconds_bucket{le="10"} 4`,
		`job_wall_seconds_bucket{le="+Inf"} 5`,
		"job_wall_seconds_sum 56.05",
		"job_wall_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramWithLabelsSplicesLe(t *testing.T) {
	r := NewRegistry()
	r.Histogram("w_seconds", "", []float64{1}, L("protocol", "decay")).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `w_seconds_bucket{protocol="decay",le="1"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("missing %q:\n%s", want, b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DefTimeBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// TestConcurrentResolution races the FIRST resolution of one series
// from many goroutines: all must receive the same handle (counts
// land in one counter) — the daemon's workers resolve labelled series
// lazily on the hot path.
func TestConcurrentResolution(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("lazy_total", "", L("p", "x")).Inc()
				r.Gauge("lazy_g", "").Inc()
				r.Histogram("lazy_seconds", "", DefTimeBuckets).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("lazy_total", "", L("p", "x")).Value(); v != 1600 {
		t.Fatalf("counter = %d, want 1600 (split handles?)", v)
	}
	if v := r.Gauge("lazy_g", "").Value(); v != 1600 {
		t.Fatalf("gauge = %g, want 1600 (split handles?)", v)
	}
	if n := r.Histogram("lazy_seconds", "", DefTimeBuckets).Count(); n != 1600 {
		t.Fatalf("histogram count = %d, want 1600 (split handles?)", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "", L("cfg", `a"b\c`)).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `e_total{cfg="a\"b\\c"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("missing escaped series %q:\n%s", want, b.String())
	}
}
