package harness

import (
	"testing"

	"radiocast/internal/adapt"
	"radiocast/internal/channel"
	"radiocast/internal/graph"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
)

// On the ideal channel an adaptive run completes in its first epoch,
// and that epoch is byte-identical to the non-adaptive run: same
// rounds, same stats. This is the "zero-cost when trivially enabled"
// invariant the facade's Options.Adaptive relies on.
func TestAdaptiveEpochZeroMatchesOneShot(t *testing.T) {
	g := graph.ClusterChain(4, 6)
	d := graph.Eccentricity(g, 0)
	cfg := rings.DefaultConfig(g.N(), d, 0, 1)

	want := RunTheorem11OnCfg(g, cfg, nil, 5, 0)
	a := NewAdaptiveTheorem11(g, cfg, nil, 5, 0)
	out := adapt.Run(a, adapt.Policy{})
	if !out.Completed || out.Epochs != 1 {
		t.Fatalf("ideal-channel adaptive run: %+v, want completion in one epoch", out)
	}
	if out.Rounds != want.Rounds || out.Stats != want.Stats {
		t.Fatalf("epoch 0 diverged from the one-shot run:\nadaptive %d rounds %+v\noneshot  %d rounds %+v",
			out.Rounds, out.Stats, want.Rounds, want.Stats)
	}

	rounds, ok, st := RunDecayOn(g, nil, 5, 1<<20)
	ad := NewAdaptiveDecay(g, nil, 5, 0)
	dout := adapt.Run(ad, adapt.Policy{})
	if !dout.Completed || dout.Epochs != 1 || dout.Rounds != rounds || dout.Stats != st || !ok {
		t.Fatalf("adaptive decay epoch 0 diverged: %+v vs %d rounds %+v", dout, rounds, st)
	}
}

// Adaptive runs are exact functions of (graph, config, seed): the same
// multi-epoch lossy run twice must agree in every Outcome field, and a
// different seed must change something.
func TestAdaptiveDeterminism(t *testing.T) {
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	run := func(seed uint64) adapt.Outcome {
		chf := EpochChannel(channel.NewErasure(0.3, rng.Mix(seed, 0xe13)))
		a := NewAdaptiveTheorem11(g, rings.DefaultConfig(g.N(), d, 0, 1), chf, seed, 0)
		return adapt.Run(a, adapt.Policy{MaxEpochs: adaptMaxEpochs})
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("adaptive run nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.Epochs < 2 {
		t.Fatalf("loss 0.3 run completed in %d epoch(s); the test needs a multi-epoch run", a.Epochs)
	}
	if !a.Completed {
		t.Fatalf("adaptive run failed to complete: %+v", a)
	}
	if c := run(2); c == a {
		t.Fatal("two seeds produced identical adaptive outcomes; randomness is suspect")
	}
}

// One AdaptiveRunner serves many adaptive runs: epoch 0 rewinds the
// carryover and Reseed switches seeds, so a reused runner's outcomes
// match fresh constructions run-for-run (the reuse contract extended
// to the retry layer).
func TestAdaptiveRunnerReuse(t *testing.T) {
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	cfg := rings.DefaultConfig(g.N(), d, 0, 1)
	fresh := func(seed uint64) adapt.Outcome {
		chf := EpochChannel(channel.NewErasure(0.3, rng.Mix(seed, 0xe13)))
		return adapt.Run(NewAdaptiveTheorem11(g, cfg, chf, seed, 0), adapt.Policy{MaxEpochs: adaptMaxEpochs})
	}
	// The reused runner needs a per-seed channel too: rebuild the
	// factory by pointing the runner at a fresh erasure instance.
	reused := NewAdaptiveTheorem11(g, cfg, nil, 0, 0)
	runReused := func(seed uint64) adapt.Outcome {
		reused.Reseed(seed)
		reused.SetChannelFactory(EpochChannel(channel.NewErasure(0.3, rng.Mix(seed, 0xe13))))
		return adapt.Run(reused, adapt.Policy{MaxEpochs: adaptMaxEpochs})
	}
	for seed := uint64(0); seed < 3; seed++ {
		want := fresh(seed)
		if got := runReused(seed); got != want {
			t.Fatalf("seed %d: reused adaptive runner diverged:\nreused %+v\nfresh  %+v", seed, got, want)
		}
	}
}

// Carryover must actually carry: under late-wakeup faults the one-shot
// Theorem 1.1 wave strands the late radios, and the second epoch —
// channel clock offset past every wake round, frontier as sources —
// recovers all of them. This is E18's collapse row as a unit test.
func TestAdaptiveRecoversLateWakers(t *testing.T) {
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	cfg := rings.DefaultConfig(g.N(), d, 0, 1)
	ch := channel.RandomFaults(g.N(), 0, 0.4, 256, 0, 0, rng.Mix(0, 0xe16))

	oneShot := NewTheorem11RunCfg(g, cfg, 0)
	_, ok, _ := oneShot.RunFrom(nil, ch, 0, 0)
	if ok || oneShot.Coverage() == g.N() {
		t.Fatalf("one-shot run under 40%% late wakeups covered %d/%d; expected a coverage collapse",
			oneShot.Coverage(), g.N())
	}

	a := NewAdaptiveTheorem11(g, cfg, EpochChannel(ch), 0, 0)
	out := adapt.Run(a, adapt.Policy{MaxEpochs: adaptMaxEpochs})
	if !out.Completed || out.Covered != g.N() {
		t.Fatalf("adaptive run did not recover the late wakers: %+v", out)
	}
	if out.Epochs != 2 {
		t.Fatalf("recovery took %d epochs, want 2 (one re-layering pass)", out.Epochs)
	}
}

// The doubling-horizon policy hands open-ended stacks geometrically
// growing epoch budgets: a Decay run whose first epochs are too short
// to finish still completes once the horizon doubles past its needs.
func TestAdaptiveDoublingHorizonDecay(t *testing.T) {
	g := graph.ClusterChain(4, 6)
	a := NewAdaptiveDecay(g, nil, 3, 0)
	// Start with a horizon far too small for any progress to finish
	// (ideal-channel Decay needs ~60-100 rounds here).
	out := adapt.Run(a, adapt.Policy{MaxEpochs: 10, EpochLimit: 8, Doubling: true})
	if !out.Completed {
		t.Fatalf("doubling horizon never completed: %+v", out)
	}
	if out.Epochs < 2 {
		t.Fatalf("completed in %d epoch(s); the 8-round initial horizon should have been too short", out.Epochs)
	}
}
