package gst

// Flat is the structure-of-arrays snapshot of a Tree for the dense
// engine: everything a node needs to run the MMV schedule (level, rank,
// virtual distance, parent linkage, stretch role), in per-node flat
// arrays with no per-node structs and no maps. Derived once from a
// centralized Tree by Flatten; read-only afterwards.
//
// Non-members (Level < 0) and members unreachable in the virtual graph
// (Vdist < 0) carry the same sentinels as the sparse representation, so
// a dense port can apply the exact "not part of the structure" guard of
// mmv.Protocol.Act.
type Flat struct {
	// Parent is the tree parent (-1 for roots and non-members).
	Parent []NodeID
	// Level, Rank, Vdist mirror Tree.Level, Tree.Rank and
	// VirtualDistances (-1 / 0 / -1 sentinels for non-members).
	Level []int32
	Rank  []int32
	Vdist []int32
	// ParentRank is Rank[Parent[v]], 0 when v has no parent.
	ParentRank []int32
	// SameRankChild marks nodes with a child of equal rank — the fast
	// transmitters of the DESIGN.md fast-slot rule.
	SameRankChild []bool
	// StretchStart marks roots and nodes whose parent has a different
	// rank (IsStretchStart of the sparse NodeInfo).
	StretchStart []bool
	// Root marks the forest roots.
	Root []bool
}

// N returns the node count.
func (f *Flat) N() int { return len(f.Parent) }

// Member reports whether v participates in the schedule (the guard of
// mmv.Protocol.Act: in the forest and reachable in G').
func (f *Flat) Member(v NodeID) bool { return f.Level[v] >= 0 && f.Vdist[v] >= 0 }

// Flatten extracts the flat arrays from a centralized Tree. It is
// map-free: the virtual-distance BFS replaces VirtualDistances' fast
// edge map with a two-pass CSR over stretch starts, so flattening a
// million-node tree costs O(n + m) with a handful of flat allocations.
func Flatten(t *Tree) *Flat {
	n := t.G.N()
	f := &Flat{
		Parent:        make([]NodeID, n),
		Level:         make([]int32, n),
		Rank:          make([]int32, n),
		Vdist:         make([]int32, n),
		ParentRank:    make([]int32, n),
		SameRankChild: make([]bool, n),
		StretchStart:  make([]bool, n),
		Root:          make([]bool, n),
	}
	copy(f.Parent, t.Parent)
	copy(f.Level, t.Level)
	copy(f.Rank, t.Rank)
	for _, r := range t.Roots {
		f.Root[r] = true
	}
	for v := 0; v < n; v++ {
		if p := t.Parent[v]; p >= 0 {
			f.ParentRank[v] = t.Rank[p]
			if t.Rank[p] == t.Rank[v] {
				f.SameRankChild[p] = true
			}
		}
		if t.InTree(NodeID(v)) {
			p := t.Parent[v]
			f.StretchStart[v] = p < 0 || t.Rank[p] != t.Rank[v]
		}
	}
	f.virtualDistances(t)
	return f
}

// virtualDistances fills Vdist: BFS from the roots over G' = (member
// graph, both directions) ∪ (fast edges from each stretch start to
// every node of its stretch). The fast edges live in a CSR built by
// counting stretch members per start — no map.
func (f *Flat) virtualDistances(t *Tree) {
	n := t.G.N()
	info := Stretches(t)
	// Pass 1: count fast-edge targets per stretch start.
	fastOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if t.InTree(NodeID(v)) && info[v].Start != NodeID(v) {
			fastOff[info[v].Start+1]++
		}
	}
	for i := 0; i < n; i++ {
		fastOff[i+1] += fastOff[i]
	}
	// Pass 2: fill.
	fastEdges := make([]NodeID, fastOff[n])
	fill := make([]int32, n)
	for v := 0; v < n; v++ {
		if t.InTree(NodeID(v)) && info[v].Start != NodeID(v) {
			s := info[v].Start
			fastEdges[fastOff[s]+fill[s]] = NodeID(v)
			fill[s]++
		}
	}
	dist := f.Vdist
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, n)
	for _, r := range t.Roots {
		if dist[r] < 0 {
			dist[r] = 0
			queue = append(queue, r)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range t.G.Neighbors(v) {
			if t.InTree(u) && dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
		for _, u := range fastEdges[fastOff[v]:fastOff[v+1]] {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
}
