package radio_test

// Seq-vs-par byte-identity for the dense engine (the determinism
// satellite), on the shared radiotest substrate: the exact same run —
// rounds, every Stats counter, the final informed set, and every
// node's reception round — must come out byte-identical at every
// worker count, for every dense port in the catalog (Decay, CR, the
// collision wave, and the structured GST broadcast), on the ideal
// channel and under a stacked adversity model, with and without
// collision detection.

import (
	"fmt"
	"testing"

	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
)

// adverseStack builds the erasure+jammer+faults stack used by the
// channel-adversity identity cases. A fresh stack per run: Jammer
// carries per-run budget state.
func adverseStack(n int, seed uint64) radio.Channel {
	return channel.Stack{
		channel.RandomFaults(n, 0, 0.1, 40, 0.05, 1<<16, seed),
		channel.NewErasure(0.1, seed),
		channel.NewJammer(25, 0.05, seed),
	}
}

// workerGraphs are the worker-identity workloads: a clique chain, a
// streamed grid, and an augmented-stream G(n,p).
func workerGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.ClusterChain(12, 16),
		graph.FromStream(graph.StreamGrid(17, 23)),
		graph.BuildConnected(graph.StreamGNP(400, 0.02, 7), 7),
	}
}

// recvState adapts the informed/recvRound pair every single-message
// port exposes into radiotest's one-int64 state (-2 = uninformed).
func recvState(informed func(graph.NodeID) bool, recv func(graph.NodeID) int64) func(graph.NodeID) int64 {
	return func(v graph.NodeID) int64 {
		if !informed(v) {
			return -2
		}
		return recv(v)
	}
}

// decayCase builds the worker-identity case for the dense Decay port.
func decayCase(g *graph.Graph, cd bool, mk func() radio.Channel) radiotest.DenseCase {
	return radiotest.DenseCase{
		Graph: g, CD: cd, MaxPacketBits: 64, Channel: mk,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := decay.NewDense(g, 42, 0)
			return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
		},
	}
}

// TestDenseParallelByteIdentical is the core determinism property: for
// every workload x channel x CD combination, Workers ∈ {2, 4, 8} runs
// are byte-identical to the Workers = 1 run.
func TestDenseParallelByteIdentical(t *testing.T) {
	for _, g := range workerGraphs() {
		for _, cd := range []bool{false, true} {
			for _, adverse := range []bool{false, true} {
				var mk func() radio.Channel
				if adverse {
					mk = func() radio.Channel { return adverseStack(g.N(), 99) }
				}
				label := fmt.Sprintf("%s cd=%v adverse=%v", g.Name(), cd, adverse)
				base := radiotest.WorkerInvariant(t, label, decayCase(g, cd, mk), 2, 4, 8)
				if !adverse && !base.Completed {
					t.Fatalf("%s: ideal run did not complete", g.Name())
				}
			}
		}
	}
}

// TestDenseCRParallelByteIdentical extends the worker-count
// determinism property to the CR port.
func TestDenseCRParallelByteIdentical(t *testing.T) {
	for _, g := range workerGraphs() {
		p := cr.NewParams(g.N(), graph.Eccentricity(g, 0))
		for _, cd := range []bool{false, true} {
			for _, adverse := range []bool{false, true} {
				var mk func() radio.Channel
				if adverse {
					mk = func() radio.Channel { return adverseStack(g.N(), 99) }
				}
				c := radiotest.DenseCase{
					Graph: g, CD: cd, MaxPacketBits: 64, Channel: mk,
					Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
						pr := cr.NewDense(g, p, 42, 0)
						return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
					},
				}
				label := fmt.Sprintf("cr %s cd=%v adverse=%v", g.Name(), cd, adverse)
				base := radiotest.WorkerInvariant(t, label, c, 2, 4, 8)
				if !adverse && !base.Completed {
					t.Fatalf("%s: ideal CR run did not complete", g.Name())
				}
			}
		}
	}
}

// TestDenseWaveParallelByteIdentical extends the worker-count
// determinism property to the collision wave (CD always on — the
// wave's correctness assumption).
func TestDenseWaveParallelByteIdentical(t *testing.T) {
	for _, g := range workerGraphs() {
		ecc := int64(graph.Eccentricity(g, 0))
		for _, adverse := range []bool{false, true} {
			horizon := ecc
			var mk func() radio.Channel
			if adverse {
				horizon = 4*ecc + 64
				mk = func() radio.Channel { return adverseStack(g.N(), 99) }
			}
			c := radiotest.DenseCase{
				Graph: g, CD: true, MaxPacketBits: 8, Channel: mk, Limit: horizon,
				Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
					pr := beep.NewDenseWave(g, 0, horizon)
					return pr, pr.Done, func(v graph.NodeID) int64 { return int64(pr.Level(v)) }
				},
			}
			label := fmt.Sprintf("wave %s adverse=%v", g.Name(), adverse)
			base := radiotest.WorkerInvariant(t, label, c, 2, 4, 8)
			if !adverse && (!base.Completed || base.Rounds != ecc) {
				t.Fatalf("%s: ideal wave rounds/ok = %d/%v, want %d/true",
					g.Name(), base.Rounds, base.Completed, ecc)
			}
		}
	}
}

// TestDenseGSTParallelByteIdentical extends the worker-count
// determinism property to the structured GST broadcast: the fast-slot
// residue walk, the bucketed slow-slot draws, and the relay-bit
// arming/clearing must all reconstruct the sequential schedule at
// Workers ∈ {1, 2, 4, 8} — ideal and channel-adverse, CD on and off,
// noising on and off.
func TestDenseGSTParallelByteIdentical(t *testing.T) {
	for _, g := range workerGraphs() {
		f := gst.Flatten(gst.Construct(g, 0))
		s := mmv.NewSchedule(g.N())
		for _, cd := range []bool{false, true} {
			for _, adverse := range []bool{false, true} {
				for _, noising := range []bool{false, true} {
					var mk func() radio.Channel
					if adverse {
						mk = func() radio.Channel { return adverseStack(g.N(), 99) }
					}
					noising := noising
					c := radiotest.DenseCase{
						Graph: g, CD: cd, MaxPacketBits: 64, Channel: mk, Limit: 1 << 18,
						Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
							pr := mmv.NewDense(g, f, s, 42, 0, noising)
							return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
						},
					}
					label := fmt.Sprintf("gst %s cd=%v adverse=%v noising=%v", g.Name(), cd, adverse, noising)
					base := radiotest.WorkerInvariant(t, label, c, 2, 4, 8)
					if !adverse && !base.Completed {
						t.Fatalf("%s: ideal GST run did not complete", g.Name())
					}
				}
			}
		}
	}
}

// TestDenseDecayCompletes sanity-checks the protocol semantics on the
// ideal channel: every node gets informed, reception rounds are
// positive and bounded by the BFS structure only loosely (Decay is
// randomized), and the source never "receives".
func TestDenseDecayCompletes(t *testing.T) {
	g := graph.FromStream(graph.StreamClusterChain(10, 8))
	src := graph.NodeID(g.N() - 1)
	c := radiotest.DenseCase{
		Graph: g, MaxPacketBits: 64, Workers: 4,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := decay.NewDense(g, 3, src)
			return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
		},
	}
	fp := c.Run()
	if !fp.Completed {
		t.Fatal("dense decay did not complete")
	}
	for v := 0; v < g.N(); v++ {
		switch {
		case fp.State[v] == -2:
			t.Fatalf("node %d uninformed at completion", v)
		case graph.NodeID(v) == src && fp.State[v] != -1:
			t.Fatalf("source recvRound = %d, want -1", fp.State[v])
		case graph.NodeID(v) != src && fp.State[v] < 0:
			t.Fatalf("node %d informed but recvRound = %d", v, fp.State[v])
		}
	}
	if fp.Stats.Deliveries < int64(g.N()-1) {
		t.Fatalf("deliveries %d < n-1 = %d", fp.Stats.Deliveries, g.N()-1)
	}
}

// TestDenseDecaySeedSensitivity guards against the keyed draws
// collapsing (e.g. ignoring the round or node): different seeds must
// produce different schedules on a workload with real contention.
func TestDenseDecaySeedSensitivity(t *testing.T) {
	g := graph.ClusterChain(8, 8)
	run := func(seed uint64) radiotest.Fingerprint {
		return radiotest.DenseCase{
			Graph: g, MaxPacketBits: 64,
			Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
				pr := decay.NewDense(g, seed, 0)
				return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
			},
		}.Run()
	}
	a, b := run(1), run(2)
	if a.Rounds == b.Rounds && a.Stats == b.Stats {
		t.Fatal("seeds 1 and 2 produced identical runs; keyed draws look degenerate")
	}
}

// TestDenseReclosable pins that Close is idempotent and that a
// never-parallel engine closes cleanly.
func TestDenseReclosable(t *testing.T) {
	g := graph.Path(64)
	pr := decay.NewDense(g, 1, 0)
	eng := radio.NewDense(g, radio.Config{Workers: 4}, pr)
	eng.RunUntil(1<<16, pr.Done)
	eng.Close()
	eng.Close()

	pr2 := decay.NewDense(g, 1, 0)
	eng2 := radio.NewDense(g, radio.Config{}, pr2)
	eng2.RunUntil(1<<16, pr2.Done)
	eng2.Close()
}
