package cr

// Dense-vs-sparse twin identity for the SoA CR port, on the shared
// radiotest substrate. decay.Dense's keyed draws make dense runs
// incomparable with the per-node-RNG Broadcast, so the twin here is a
// sparse radio.Protocol that replays the IDENTICAL keyed coins (same
// DenseKey, same Mix3(key, node, round) draw, same FastDecay slot) on
// the per-node engine. Frontier pruning aside — which provably cannot
// change informed-set dynamics, see dense.go — the two engines must
// then produce the same broadcast: same reception round for every
// node, same completion round. Checked on the ideal channel and under
// per-link erasure (whose drops are keyed by (round, link) and
// therefore agree across engines), with CD on and off.

import (
	"fmt"
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
	"radiocast/internal/rng"
)

// keyedSparse is the sparse twin: a per-node radio.Protocol drawing
// the dense engine's keyed coins.
type keyedSparse struct {
	params Params
	key    uint64
	id     graph.NodeID

	has  bool
	pkt  radio.Packet
	recv int64
}

var _ radio.Protocol = (*keyedSparse)(nil)

func (b *keyedSparse) Act(r int64) radio.Action {
	if !b.has {
		return radio.Listen
	}
	threshold := uint64(1) << (63 - uint(b.params.slot(r)))
	if rng.Mix3(b.key, uint64(b.id), uint64(r)) < threshold {
		return radio.Transmit(b.pkt)
	}
	return radio.Listen
}

func (b *keyedSparse) Observe(r int64, out radio.Outcome) {
	if b.has || out.Packet == nil {
		return
	}
	if _, ok := out.Packet.(decay.Message); ok {
		b.has = true
		b.pkt = out.Packet
		b.recv = r
	}
}

// denseCRCase builds the radiotest case: state is the reception round
// for informed nodes, -2 for uninformed ones.
func denseCRCase(g *graph.Graph, p Params, seed uint64, src graph.NodeID,
	cd bool, mk func() radio.Channel) radiotest.DenseCase {
	return radiotest.DenseCase{
		Graph:         g,
		CD:            cd,
		MaxPacketBits: 64,
		Channel:       mk,
		Limit:         1 << 18,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := NewDense(g, p, seed, src)
			return pr, pr.Done, func(v graph.NodeID) int64 {
				if !pr.Informed(v) {
					return -2
				}
				return pr.RecvRound(v)
			}
		},
	}
}

// TestDenseMatchesKeyedSparseTwin is the byte-identity acceptance
// property: on shared seeds the dense run and the keyed sparse twin
// agree on every node's reception round, ideal and under erasure, CD
// on and off.
func TestDenseMatchesKeyedSparseTwin(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		p := NewParams(g.N(), graph.Eccentricity(g, 0))
		for _, cd := range []bool{false, true} {
			for _, loss := range []float64{0, 0.15} {
				var mk func() radio.Channel
				if loss > 0 {
					loss := loss
					mk = func() radio.Channel { return channel.NewErasure(loss, 77) }
				}
				label := fmt.Sprintf("%s cd=%v loss=%g", g.Name(), cd, loss)
				c := denseCRCase(g, p, 42, 0, cd, mk)
				radiotest.Twin(t, label, c, func(nw *radio.Network, rounds int64) func(graph.NodeID) int64 {
					twins := make([]*keyedSparse, g.N())
					for v := 0; v < g.N(); v++ {
						tw := &keyedSparse{params: p, key: DenseKey(42), id: graph.NodeID(v), recv: -1}
						if v == 0 {
							tw.has = true
							tw.pkt = decay.Message{Data: 0}
						}
						twins[v] = tw
						nw.SetProtocol(graph.NodeID(v), tw)
					}
					nw.Run(rounds)
					return func(v graph.NodeID) int64 {
						if !twins[v].has {
							return -2
						}
						return twins[v].recv
					}
				})
			}
		}
	}
}

// TestDenseSeedSensitivity guards against the keyed draws collapsing:
// different seeds must produce different schedules on a workload with
// real contention.
func TestDenseSeedSensitivity(t *testing.T) {
	g := graph.ClusterChain(8, 8)
	p := NewParams(g.N(), graph.Eccentricity(g, 0))
	run := func(seed uint64) radiotest.Fingerprint {
		return denseCRCase(g, p, seed, 0, false, nil).Run()
	}
	a, b := run(1), run(2)
	if a.Rounds == b.Rounds && a.Stats == b.Stats {
		t.Fatal("seeds 1 and 2 produced identical runs; keyed draws look degenerate")
	}
}

// TestDenseSlotSchedule pins that the dense port follows the FastDecay
// schedule, not plain Decay: a full-length phase must appear once per
// cycle (slots past ShortLen only occur there).
func TestDenseSlotSchedule(t *testing.T) {
	p := NewParams(4096, 64) // ShortLen = log2(64)+2 = 8, FullLen = 12
	if p.FullLen <= p.ShortLen {
		t.Fatalf("degenerate schedule: full %d <= short %d", p.FullLen, p.ShortLen)
	}
	deep := 0
	for r := int64(0); r < p.cycleLen(); r++ {
		if p.slot(r) >= p.ShortLen {
			deep++
		}
	}
	if deep != p.FullLen-p.ShortLen {
		t.Fatalf("deep slots per cycle = %d, want %d", deep, p.FullLen-p.ShortLen)
	}
}
