package beep

import "radiocast/internal/radio"

// Diameter estimation (footnote 2 of the paper): the assumption that
// nodes know a constant-factor upper bound on D "can be removed
// without any change in our time-bounds, by finding a 2-approximation
// of D in time O(D), using the beep waves tool of [10]".
//
// Estimate implements that tool as a deterministic doubling protocol
// with collision detection. For guesses H = 2^j, block j has three
// sub-blocks of H+1 rounds each:
//
//	forward   a collision wave from the source; nodes within distance
//	          H learn their level.
//	echo      nodes at distance exactly H beep; a node at level l
//	          relays the echo at offset H-l if it heard a signal at
//	          offset H-l-1. The source hears an echo iff some node is
//	          at distance exactly H, i.e. iff ecc(source) >= H (BFS
//	          levels are contiguous).
//	announce  if no echo arrived, the source launches a final wave;
//	          every node that hears it learns D̂ = 2^j (which satisfies
//	          ecc <= D̂ < 2·ecc for ecc >= 2) and its exact BFS level
//	          (the arrival offset), and the protocol terminates.
//
// Total time sum_j 3(2^j + 1) = O(D). The protocol is deterministic:
// collisions carry information, so no randomness is needed.
type Estimate struct {
	isSource bool

	// Per-block state.
	block    int
	level    int64 // level within the current block's wave; -1 unknown
	echoPrev bool  // heard a signal in the previous echo round
	echoSelf bool  // beeped already in this echo sub-block

	// Results.
	done      bool
	dhat      int64
	finalLvl  int64
	echoAtSrc bool
}

var _ radio.Protocol = (*Estimate)(nil)

// NewEstimate creates the estimator for one node.
func NewEstimate(source bool) *Estimate {
	return &Estimate{isSource: source, block: -1, level: -1, finalLvl: -1}
}

// Done reports whether the estimate has been learned.
func (e *Estimate) Done() bool { return e.done }

// Diameter returns D̂ (valid when Done).
func (e *Estimate) Diameter() int64 { return e.dhat }

// Level returns the node's exact BFS level (valid when Done).
func (e *Estimate) Level() int64 {
	if e.isSource {
		return 0
	}
	return e.finalLvl
}

// blockStart returns the first round of block j: sum of 3(2^i+1).
func blockStart(j int) int64 {
	return 3*((int64(1)<<uint(j))-1) + 3*int64(j)
}

// locate finds (block, sub-block, offset) for round r.
func locate(r int64) (j int, sub int, off int64) {
	for j = 0; blockStart(j+1) <= r; j++ {
	}
	h := int64(1) << uint(j)
	rem := r - blockStart(j)
	return j, int(rem / (h + 1)), rem % (h + 1)
}

// Act implements radio.Protocol.
func (e *Estimate) Act(r int64) radio.Action {
	if e.done {
		return radio.Sleep(1 << 62)
	}
	j, sub, off := locate(r)
	h := int64(1) << uint(j)
	if j != e.block {
		// A node that received the announce wave in the previous
		// block's final round finishes here (safety net; cannot occur
		// for in-range levels, see the arrival-offset argument below).
		if e.block >= 0 && e.finalLvl >= 0 {
			e.finish(e.block, e.finalLvl)
			return radio.Sleep(1 << 62)
		}
		e.block = j
		e.level = -1
		e.echoPrev = false
		e.echoSelf = false
		e.echoAtSrc = false
		if e.isSource {
			e.level = 0
		}
	}
	switch sub {
	case 0: // forward wave
		if e.level >= 0 && off >= e.level {
			return radio.Transmit(Pulse{})
		}
	case 1: // echo
		if e.level < 0 || e.echoSelf {
			return radio.Listen
		}
		myOff := h - e.level
		if off == myOff && !e.isSource && (e.level == h || e.echoPrev) {
			e.echoSelf = true
			return radio.Transmit(Pulse{})
		}
	case 2: // announce
		if e.isSource && !e.echoAtSrc {
			// Final block: launch the announce wave and finish.
			if off >= 0 {
				if off == h {
					e.finish(j, 0)
				}
				return radio.Transmit(Pulse{})
			}
		}
		if e.finalLvl >= 0 && !e.done {
			// Relay the announce wave; finish at sub-block end.
			if off == h {
				e.finish(j, e.finalLvl)
				return radio.Listen
			}
			if off >= e.finalLvl {
				return radio.Transmit(Pulse{})
			}
		}
	}
	return radio.Listen
}

func (e *Estimate) finish(j int, lvl int64) {
	e.done = true
	e.dhat = int64(1) << uint(j)
	e.finalLvl = lvl
}

// Observe implements radio.Protocol: any packet or collision is a
// signal.
func (e *Estimate) Observe(r int64, out radio.Outcome) {
	if e.done || (!out.Collision && out.Packet == nil) {
		return
	}
	j, sub, off := locate(r)
	h := int64(1) << uint(j)
	switch sub {
	case 0:
		if e.level < 0 {
			e.level = off + 1
		}
	case 1:
		// A signal at offset (h - l - 1) primes a level-l node to
		// relay at (h - l); the source records echo arrival at h-1.
		if e.isSource {
			if off == h-1 {
				e.echoAtSrc = true
			}
			return
		}
		if e.level >= 0 && off == h-e.level-1 {
			e.echoPrev = true
		}
	case 2:
		if e.finalLvl < 0 {
			e.finalLvl = off + 1
		}
	}
}

// EstimateRounds bounds the protocol length for eccentricity at most
// maxEcc: blocks run until 2^j > maxEcc.
func EstimateRounds(maxEcc int) int64 {
	j := 0
	for int64(1)<<uint(j) <= int64(maxEcc) {
		j++
	}
	return blockStart(j + 1)
}
