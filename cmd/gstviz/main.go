// Command gstviz regenerates Figure 1 of the paper: it constructs a
// naive ranked BFS tree and a proper GST on the same graph, reports
// the collision-freeness violation of the former, and emits both as
// Graphviz DOT (render with `dot -Tpng`).
//
// Usage:
//
//	gstviz                       # the built-in Figure-1 graph
//	gstviz -gadget               # the minimal 5-node violation gadget
//	gstviz -n 40                 # a random connected graph instead
//	gstviz -n 40 -layout uniform # a geometric unit-disk graph; nodes are
//	                             # pinned at their layout coordinates
//	                             # (render with `neato -n -Tpng`)
package main

import (
	"flag"
	"fmt"
	"os"

	"radiocast/internal/geo"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
)

func main() {
	gadget := flag.Bool("gadget", false, "use the minimal violation gadget")
	n := flag.Int("n", 0, "use a random GNP graph of this size instead")
	layout := flag.String("layout", "",
		"geometric layout for -n: uniform or cluster (unit-disk graph, position-true DOT output)")
	seed := flag.Uint64("seed", 1, "random graph seed")
	flag.Parse()

	var g *graph.Graph
	var l *geo.Layout
	switch {
	case *gadget:
		g = gst.FigureOneGadget()
	case *n > 0 && *layout != "":
		rc := geo.ConnectivityRadius(*n)
		switch *layout {
		case "uniform":
			l = geo.Uniform(*n, *seed)
		case "cluster":
			clusters := 2
			for clusters*clusters < *n {
				clusters++
			}
			l = geo.Clustered(*n, clusters, rc, *seed)
		default:
			fmt.Fprintf(os.Stderr, "gstviz: unknown -layout %q (uniform, cluster)\n", *layout)
			os.Exit(2)
		}
		g = graph.BuildConnected(geo.NewDisk(l, rc), *seed)
	case *n > 0:
		g = graph.GNP(*n, 0.12, *seed)
	default:
		g = gst.FigureOneGraph()
	}
	if *layout != "" && *n <= 0 {
		fmt.Fprintln(os.Stderr, "gstviz: -layout needs -n")
		os.Exit(2)
	}

	naive := gst.NaiveRankedBFS(g, 0)
	proper := gst.Construct(g, 0)

	fmt.Printf("graph %s: n=%d m=%d\n", g.Name(), g.N(), g.M())
	if err := naive.ValidateCollisionFreeness(); err != nil {
		fmt.Printf("naive ranked BFS: VIOLATES collision-freeness: %v\n", err)
	} else {
		fmt.Println("naive ranked BFS: happens to be collision-free on this graph")
	}
	if err := proper.Validate(); err != nil {
		fmt.Printf("GST construction: INVALID: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("GST construction: valid (max rank %d)\n", proper.MaxRank())

	labels := func(t *gst.Tree) []string {
		out := make([]string, g.N())
		for v := 0; v < g.N(); v++ {
			out[v] = fmt.Sprintf("%d\\nl%d r%d", v, t.Level[v], t.Rank[v])
		}
		return out
	}
	emit := func(t *gst.Tree) error {
		if l != nil {
			return graph.DOTLayout(os.Stdout, g, labels(t), t.Parent, l.X, l.Y)
		}
		return graph.DOT(os.Stdout, g, labels(t), t.Parent)
	}
	fmt.Println("\n// ---- naive ranked BFS (left side of Figure 1) ----")
	if err := emit(naive); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\n// ---- GST (right side of Figure 1) ----")
	if err := emit(proper); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
