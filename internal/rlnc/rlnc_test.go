package rlnc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiocast/internal/bitvec"
)

func randMessages(r *rand.Rand, k, l int) []Message {
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	return msgs
}

func TestSourceBufferDecodesImmediately(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	msgs := randMessages(r, 8, 32)
	src := NewSourceBuffer(0, msgs, 32)
	if !src.CanDecode() {
		t.Fatal("source cannot decode its own messages")
	}
	got, ok := src.Decode()
	if !ok {
		t.Fatal("Decode failed")
	}
	for i := range msgs {
		if !bitvec.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestRelayChainDecodes(t *testing.T) {
	// Source -> relay -> sink, each hop forwarding random combinations,
	// must converge to full rank at the sink. This is the smallest
	// end-to-end RLNC pipeline.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k, l := 1+r.Intn(12), 16
		msgs := randMessages(r, k, l)
		src := NewSourceBuffer(0, msgs, l)
		relay := NewBuffer(0, k, l)
		sink := NewBuffer(0, k, l)
		for i := 0; i < 30*k+60 && !sink.CanDecode(); i++ {
			if p, ok := src.RandomPacket(r); ok {
				relay.Add(p)
			}
			if p, ok := relay.RandomPacket(r); ok {
				sink.Add(p)
			}
		}
		if !sink.CanDecode() {
			return false
		}
		got, ok := sink.Decode()
		if !ok {
			return false
		}
		for i := range msgs {
			if !bitvec.Equal(got[i], msgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddInnovativeAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	msgs := randMessages(r, 5, 8)
	src := NewSourceBuffer(0, msgs, 8)
	buf := NewBuffer(0, 5, 8)
	innovative := 0
	for i := 0; i < 200 && !buf.CanDecode(); i++ {
		p, _ := src.RandomPacket(r)
		if buf.Add(p) {
			innovative++
		}
	}
	if innovative != 5 {
		t.Fatalf("innovative packets = %d, want exactly k=5", innovative)
	}
}

func TestPacketsAreConsistent(t *testing.T) {
	// Every packet emitted anywhere in a random relay network must
	// satisfy payload = coeff · messages (integrity invariant).
	r := rand.New(rand.NewSource(9))
	const k, l = 6, 24
	msgs := randMessages(r, k, l)
	src := NewSourceBuffer(0, msgs, l)
	bufs := []*Buffer{NewBuffer(0, k, l), NewBuffer(0, k, l), NewBuffer(0, k, l)}
	for i := 0; i < 500; i++ {
		from := src
		if j := r.Intn(4); j > 0 {
			from = bufs[j-1]
		}
		p, ok := from.RandomPacket(r)
		if !ok {
			continue
		}
		if !VerifyPacket(p, msgs, l) {
			t.Fatalf("iteration %d: inconsistent packet", i)
		}
		bufs[r.Intn(3)].Add(p)
	}
}

func TestInfectionDefinition(t *testing.T) {
	// Def 3.8: infected by μ iff some stored coeff has <μ,c> ≠ 0.
	buf := NewBuffer(0, 4, 4)
	mu := bitvec.FromBits([]bool{true, false, true, false})
	if buf.InfectedBy(mu) {
		t.Fatal("empty buffer infected")
	}
	// Orthogonal packet: coeff = e1 ⊕ e3 has <μ,c> = 1⊕1 = 0.
	orth := bitvec.FromBits([]bool{true, false, true, false})
	buf.Add(Packet{Coeff: orth, Payload: bitvec.New(4)})
	if buf.InfectedBy(mu) {
		t.Fatal("orthogonal packet caused infection")
	}
	nonOrth := bitvec.Unit(4, 0)
	buf.Add(Packet{Coeff: nonOrth, Payload: bitvec.New(4)})
	if !buf.InfectedBy(mu) {
		t.Fatal("non-orthogonal packet did not infect")
	}
}

func TestInfectionTransferProbability(t *testing.T) {
	// Prop 3.9: if v is infected by μ and u receives a random packet
	// from v, then u becomes infected with probability >= 1/2.
	r := rand.New(rand.NewSource(17))
	const k, l, trials = 8, 8, 4000
	msgs := randMessages(r, k, l)
	mu := bitvec.RandomNonZeroVec(k, r.Uint64)
	// Build an infected sender with a few random dimensions plus one
	// guaranteed non-orthogonal row.
	sender := NewBuffer(0, k, l)
	src := NewSourceBuffer(0, msgs, l)
	for sender.Rank() < 4 {
		p, _ := src.RandomPacket(r)
		sender.Add(p)
	}
	for !sender.InfectedBy(mu) {
		p, _ := src.RandomPacket(r)
		sender.Add(p)
	}
	infected := 0
	for i := 0; i < trials; i++ {
		p, _ := sender.RandomPacket(r)
		if bitvec.Dot(mu, p.Coeff) {
			infected++
		}
	}
	// Expected exactly 1/2 (uniform over subspace, half non-orthogonal);
	// allow generous slack.
	if infected < trials*2/5 {
		t.Fatalf("infection transfer rate %d/%d < 0.4 (want ~0.5)", infected, trials)
	}
}

func TestDecodeMatchesFullInfection(t *testing.T) {
	// Prop 3.9 second half: infected by all 2^k vectors ⇔ can decode.
	r := rand.New(rand.NewSource(23))
	const k, l = 5, 8
	msgs := randMessages(r, k, l)
	src := NewSourceBuffer(0, msgs, l)
	buf := NewBuffer(0, k, l)
	for !buf.CanDecode() {
		p, _ := src.RandomPacket(r)
		buf.Add(p)
	}
	// Now check all non-zero μ.
	for m := 1; m < 1<<k; m++ {
		mu := bitvec.New(k)
		for i := 0; i < k; i++ {
			if m&(1<<i) != 0 {
				mu.Set(i)
			}
		}
		if !buf.InfectedBy(mu) {
			t.Fatalf("decodable buffer not infected by %s", mu)
		}
	}
}

func TestGenerationMismatchPanics(t *testing.T) {
	buf := NewBuffer(1, 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buf.Add(Packet{Gen: 2, Coeff: bitvec.Unit(3, 0), Payload: bitvec.New(4)})
}

func TestStoreGenerationRouting(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const total, genSize, l = 10, 4, 8
	msgs := randMessages(r, total, l)
	src := NewSourceStore(msgs, genSize, l)
	if src.Generations() != 3 {
		t.Fatalf("generations = %d, want 3", src.Generations())
	}
	sink := NewStore(total, genSize, l)
	for i := 0; i < 2000 && !sink.CanDecodeAll(); i++ {
		g := r.Intn(src.Generations())
		p, ok := src.RandomPacket(g, r)
		if !ok {
			continue
		}
		sink.Add(p)
	}
	got, ok := sink.DecodeAll()
	if !ok {
		t.Fatal("sink cannot decode after 2000 packets")
	}
	if len(got) != total {
		t.Fatalf("decoded %d messages, want %d", len(got), total)
	}
	for i := range msgs {
		if !bitvec.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestGenBounds(t *testing.T) {
	cases := []struct {
		total, size, gen, lo, hi int
	}{
		{10, 4, 0, 0, 4}, {10, 4, 1, 4, 8}, {10, 4, 2, 8, 10},
		{4, 4, 0, 0, 4}, {1, 8, 0, 0, 1},
	}
	for _, c := range cases {
		lo, hi := GenBounds(c.total, c.size, c.gen)
		if lo != c.lo || hi != c.hi {
			t.Errorf("GenBounds(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.total, c.size, c.gen, lo, hi, c.lo, c.hi)
		}
	}
	if NumGenerations(10, 4) != 3 || NumGenerations(8, 4) != 2 {
		t.Fatal("NumGenerations wrong")
	}
}

func TestPacketBitsIncludesHeader(t *testing.T) {
	p := Packet{Coeff: bitvec.New(10), Payload: bitvec.New(32)}
	if p.Bits() != 10+32+16 {
		t.Fatalf("Bits = %d", p.Bits())
	}
}

func BenchmarkRandomPacketK64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	msgs := randMessages(r, 64, 64)
	src := NewSourceBuffer(0, msgs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = src.RandomPacket(r)
	}
}

func BenchmarkDecodeK64(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	msgs := randMessages(r, 64, 64)
	src := NewSourceBuffer(0, msgs, 64)
	packets := make([]Packet, 0, 200)
	for len(packets) < 200 {
		p, _ := src.RandomPacket(r)
		packets = append(packets, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := NewBuffer(0, 64, 64)
		for _, p := range packets {
			if buf.CanDecode() {
				break
			}
			buf.Add(p)
		}
		if _, ok := buf.Decode(); !ok {
			b.Fatal("decode failed")
		}
	}
}
