package radio

import (
	"testing"
	"testing/quick"

	"radiocast/internal/graph"
	"radiocast/internal/rng"
)

// Fuzz-style stress: random graphs with random transmit/sleep behavior
// must never panic, and the engine counters must stay consistent.
func TestEngineFuzzConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.1, seed)
		nw := New(g, Config{CollisionDetection: seed%2 == 0})
		for v := 0; v < g.N(); v++ {
			r := rng.New(seed, uint64(v))
			nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(round int64) Action {
				switch r.Intn(5) {
				case 0:
					return Transmit(RawPacket{Value: round})
				case 1:
					return Sleep(round + int64(r.Intn(20)))
				default:
					return Listen
				}
			}})
		}
		nw.Run(300)
		st := nw.Stats()
		if st.Rounds != 300 {
			return false
		}
		// Every delivery requires a transmission; every collision
		// observation requires at least two.
		if st.Deliveries+2*st.CollisionObs > st.Transmissions*int64(g.MaxDegree()) {
			return false
		}
		// Polls can't exceed nodes x rounds.
		return st.Polls <= int64(g.N())*300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The sleep/fast-forward path must agree with an always-awake run on
// what listeners observe: a sleeping node is by contract discarding,
// so runs that never sleep see a superset of events but identical
// transmission schedules for identical RNG streams.
func TestSleepDoesNotPerturbTransmitters(t *testing.T) {
	g := graph.Path(10)
	schedule := func(withSleep bool) []int64 {
		nw := New(g, Config{})
		var txRounds []int64
		for v := 0; v < g.N(); v++ {
			v := v
			r := rng.New(7, uint64(v))
			nw.SetProtocol(graph.NodeID(v), &FuncProtocol{ActFunc: func(round int64) Action {
				// Node v transmits deterministically on its own beat.
				if round%int64(v+2) == 0 {
					if v == 3 {
						txRounds = append(txRounds, round)
					}
					return Transmit(RawPacket{})
				}
				if withSleep && r.Intn(3) == 0 && v != 3 {
					return Sleep(round + 2)
				}
				return Listen
			}})
		}
		nw.Run(100)
		return txRounds
	}
	a := schedule(false)
	b := schedule(true)
	if len(a) != len(b) {
		t.Fatalf("sleeping peers changed node 3's transmission count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("transmission schedule perturbed by other nodes' sleeping")
		}
	}
}
