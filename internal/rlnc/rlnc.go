// Package rlnc implements random linear network coding over F_2, the
// coding layer of the paper's multi-message broadcast algorithms
// (Section 3.3.1, following Ho et al. [14] and Haeupler [12]).
//
// The k messages are bit vectors m_1..m_k in F_2^l. A coded packet
// carries a coefficient vector α in F_2^k together with the payload
// Σ α_i·m_i. A node stores the packets it receives and, when prompted
// to send, transmits a fresh uniformly random combination of its
// stored packets. A node that has accumulated k linearly independent
// coefficient vectors reconstructs all messages by Gaussian
// elimination.
//
// The package also implements the projection-analysis primitives of
// [12] used in the proofs (and in our tests): Definition 3.8's
// "infected by μ" predicate and Proposition 3.9's decode criterion.
package rlnc

import (
	"fmt"
	"math/rand"

	"radiocast/internal/bitvec"
)

// Message is an l-bit message payload.
type Message = bitvec.Vec

// Packet is an RLNC-coded packet: payload = Σ_{i: Coeff[i]=1} m_i.
// Gen identifies the generation (batch) the packet codes over; packets
// from different generations must not be combined.
type Packet struct {
	Gen     int
	Coeff   bitvec.Vec
	Payload bitvec.Vec
}

// Bits reports the on-air size: coefficient header + payload + a small
// generation tag. With generations of size Θ(log n) the header is
// Θ(log n) bits, as required by Section 3.4.
func (p Packet) Bits() int { return p.Coeff.Len() + p.Payload.Len() + 16 }

// IsZero reports whether the packet carries no information.
func (p Packet) IsZero() bool { return p.Coeff.IsZero() }

// Buffer is a node's RLNC state for a single generation of k messages
// with l-bit payloads: the stored subspace plus the paired solver used
// for decoding. The zero value is not usable; construct with NewBuffer
// or NewSourceBuffer.
type Buffer struct {
	k, l   int
	gen    int
	solver *bitvec.Solver
	// rows holds one (coeff, payload) pair per independent dimension,
	// in insertion order; random combinations are drawn from these.
	rows []Packet
	// spare recycles row storage released by Reset, so a reset-reused
	// buffer stores its next run's rows without allocating.
	spare []Packet
	// air is the scratch packet returned by AirPacket: one struct and
	// one coefficient/payload backing reused across every transmission
	// this buffer makes.
	air Packet
	// unit is the preload scratch coefficient vector of ResetSource.
	unit bitvec.Vec
	// onFull, when non-nil, fires exactly once per run: on the Add
	// that makes the buffer decodable (rank reaches k).
	onFull func()
}

// NewBuffer returns an empty buffer for generation gen with k messages
// of l bits each.
func NewBuffer(gen, k, l int) *Buffer {
	if k <= 0 || l <= 0 {
		panic(fmt.Sprintf("rlnc: invalid dimensions k=%d l=%d", k, l))
	}
	return &Buffer{k: k, l: l, gen: gen, solver: bitvec.NewSolver(k, l)}
}

// NewSourceBuffer returns a buffer preloaded with the original
// messages (the source node's state): unit coefficient vectors paired
// with the raw payloads.
func NewSourceBuffer(gen int, msgs []Message, l int) *Buffer {
	b := NewBuffer(gen, len(msgs), l)
	for i, m := range msgs {
		if m.Len() != l {
			panic(fmt.Sprintf("rlnc: message %d has %d bits, want %d", i, m.Len(), l))
		}
		b.Add(Packet{Gen: gen, Coeff: bitvec.Unit(len(msgs), i), Payload: m.Clone()})
	}
	return b
}

// SetOnFull installs a hook fired by the Add that makes the buffer
// decodable (the rank-k transition). It fires at most once per run —
// subsequent packets are necessarily dependent. Harness runners point
// it at an O(1) completion counter (radio.DoneSet) so run predicates
// need not scan nodes.
func (b *Buffer) SetOnFull(fn func()) { b.onFull = fn }

// Reset empties the buffer for a new run with the same (gen, k, l).
// Row storage and the solver's internal rows are recycled, so the
// next run's insertions allocate nothing.
func (b *Buffer) Reset() {
	b.solver.Reset()
	b.spare = append(b.spare, b.rows...)
	b.rows = b.rows[:0]
}

// ResetSource resets the buffer and preloads it with the original
// messages (the source node's per-run state) — the reuse counterpart
// of NewSourceBuffer. The messages are copied, not retained.
func (b *Buffer) ResetSource(msgs []Message) {
	if len(msgs) != b.k {
		panic(fmt.Sprintf("rlnc: ResetSource with %d messages, want %d", len(msgs), b.k))
	}
	b.Reset()
	if b.unit.Len() != b.k {
		b.unit = bitvec.New(b.k)
	}
	for i, m := range msgs {
		if m.Len() != b.l {
			panic(fmt.Sprintf("rlnc: message %d has %d bits, want %d", i, m.Len(), b.l))
		}
		b.unit.Set(i)
		b.Add(Packet{Gen: b.gen, Coeff: b.unit, Payload: m})
		b.unit.Clear(i)
	}
}

// K returns the generation size.
func (b *Buffer) K() int { return b.k }

// Gen returns the generation id.
func (b *Buffer) Gen() int { return b.gen }

// Rank returns the dimension of the stored coefficient subspace.
func (b *Buffer) Rank() int { return b.solver.Rank() }

// Add stores a received packet. It returns true iff the packet was
// innovative (increased the rank). Packets from other generations are
// rejected with a panic: the caller routes packets by generation. The
// packet's vectors are copied, never retained, so callers may pass
// scratch-backed packets (AirPacket output).
func (b *Buffer) Add(p Packet) bool {
	if p.Gen != b.gen {
		panic(fmt.Sprintf("rlnc: packet for generation %d added to buffer %d", p.Gen, b.gen))
	}
	if !b.solver.Add(p.Coeff, p.Payload) {
		return false
	}
	var row Packet
	if n := len(b.spare); n > 0 {
		row = b.spare[n-1]
		b.spare = b.spare[:n-1]
		row.Gen = p.Gen
		row.Coeff.CopyFrom(p.Coeff)
		row.Payload.CopyFrom(p.Payload)
	} else {
		row = Packet{Gen: p.Gen, Coeff: p.Coeff.Clone(), Payload: p.Payload.Clone()}
	}
	b.rows = append(b.rows, row)
	if b.onFull != nil && b.solver.CanSolve() {
		b.onFull()
	}
	return true
}

// CanDecode reports whether all k messages are reconstructible
// (Proposition 3.9: infected by all of F_2^k ⇔ full rank).
func (b *Buffer) CanDecode() bool { return b.solver.CanSolve() }

// Decode reconstructs the k original messages via Gaussian
// elimination. ok is false while rank < k.
func (b *Buffer) Decode() (msgs []Message, ok bool) { return b.solver.Solve() }

// RandomPacket returns a fresh uniformly random combination of the
// stored packets — the transmission rule of Section 3.3.1. ok is false
// when the buffer is empty (nothing to send). The combination is drawn
// over the stored independent rows, which induces the uniform
// distribution over the stored subspace; the zero combination is
// permitted (a node with data still sends "something", which carries
// no information — equivalent to noise for receivers).
func (b *Buffer) RandomPacket(r *rand.Rand) (Packet, bool) {
	if len(b.rows) == 0 {
		return Packet{}, false
	}
	coeff := bitvec.New(b.k)
	payload := bitvec.New(b.l)
	b.randomInto(coeff, payload, r)
	return Packet{Gen: b.gen, Coeff: coeff, Payload: payload}, true
}

// AirPacket is RandomPacket for the transmission hot path: the same
// draw (identical RNG consumption), but written into a buffer-owned
// scratch packet and returned as a pointer, so a steady-state
// transmission performs zero allocations (pointers box for free).
//
// The returned packet is valid only until this buffer's next
// AirPacket call: receivers must copy what they keep — Buffer.Add
// already does — and any relay layer must clone before holding a
// packet across rounds (mmv.Protocol does).
func (b *Buffer) AirPacket(r *rand.Rand) (*Packet, bool) {
	if len(b.rows) == 0 {
		return nil, false
	}
	if b.air.Coeff.Len() != b.k {
		b.air = Packet{Gen: b.gen, Coeff: bitvec.New(b.k), Payload: bitvec.New(b.l)}
	}
	b.air.Coeff.Zero()
	b.air.Payload.Zero()
	b.randomInto(b.air.Coeff, b.air.Payload, r)
	return &b.air, true
}

// randomInto XORs a uniformly random subset of the stored rows into
// (coeff, payload) — the shared draw of RandomPacket and AirPacket.
func (b *Buffer) randomInto(coeff, payload bitvec.Vec, r *rand.Rand) {
	for _, row := range b.rows {
		if r.Intn(2) == 1 {
			coeff.XorInPlace(row.Coeff)
			payload.XorInPlace(row.Payload)
		}
	}
}

// InfectedBy implements Definition 3.8: the node is infected by μ iff
// it has received (stored) a packet whose coefficient vector is not
// orthogonal to μ. Equivalently, μ is non-orthogonal to the stored
// subspace.
func (b *Buffer) InfectedBy(mu bitvec.Vec) bool {
	for _, row := range b.rows {
		if bitvec.Dot(mu, row.Coeff) {
			return true
		}
	}
	return false
}

// EncodeAll computes the payload for an explicit coefficient vector
// over the full message set; used by tests and by centralized
// verification.
func EncodeAll(coeff bitvec.Vec, msgs []Message, l int) bitvec.Vec {
	payload := bitvec.New(l)
	for i := range msgs {
		if coeff.Get(i) {
			payload.XorInPlace(msgs[i])
		}
	}
	return payload
}

// VerifyPacket checks that a packet's payload is consistent with the
// ground-truth messages; used to assert end-to-end integrity in tests
// and failure-injection experiments.
func VerifyPacket(p Packet, msgs []Message, l int) bool {
	want := EncodeAll(p.Coeff, msgs, l)
	return bitvec.Equal(p.Payload, want)
}
