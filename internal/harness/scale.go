package harness

// E19/E20: the million-node scale sweeps. Every cell drives the dense
// engine (radio.Dense — structure-of-arrays node state, bitset
// frontiers) over a streaming-generated CSR workload (graph.FromStream
// / graph.BuildConnected: no Builder maps, the edge stream lands
// directly in the final arrays), optionally with the deterministic
// intra-run parallel delivery pass (radio.Config.Workers —
// byte-identical output at any worker count, so the tables below are
// CI-comparable across worker settings).
//
// E19 sweeps the dense protocol catalog — decay.Dense, cr.Dense, and
// beep.DenseWave — on the ideal channel up to n = 10^6. E20 reruns the
// catalog on the gnp workload under per-link erasure (the
// channel-adverse engine path: per-listener hear counts instead of the
// collect/scatter fast path) across a loss grid. E21 runs the
// structured GST broadcast (mmv.Dense over gst.Flat) through the same
// workload grid, with and without jamming by uninformed members — the
// steady-state regime of the paper's amortized argument, where the
// tree is built once and every broadcast rides the fixed MMV schedule.
//
// The rendered tables hold only reproducible outputs (rounds,
// completion, coverage). The capacity metrics — live-heap growth of
// graph + engine + protocol state, process peak RSS, and per-cell wall
// time for rounds/sec — ride the JSON artifact (mem_bytes,
// peak_rss_bytes, wall_us per cell; radiobench -json, the CI
// BENCH_scale.json artifact) and are zeroed by exp.Artifact.Canonical.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// ScaleConfig parameterizes the E19/E20 scale sweeps. The zero value
// (DefaultScaleConfig) is the CI/test shape; cmd/radiobench builds one
// from -scalemaxn/-scaleworkers and threads it through AllWithScale —
// no package-level mutation.
type ScaleConfig struct {
	// MaxN caps the sweeps' largest workload size; 0 resolves to 10^5
	// (the CI shape). The acceptance run raises it to 10^6.
	MaxN int
	// Workers is the dense engine's worker count for every cell; 0
	// resolves to min(8, GOMAXPROCS). Results are byte-identical at any
	// setting.
	Workers int
}

// DefaultScaleConfig is the CI/test sweep shape: n up to 10^5,
// auto-sized workers.
func DefaultScaleConfig() ScaleConfig { return ScaleConfig{} }

func (sc ScaleConfig) maxN() int {
	if sc.MaxN > 0 {
		return sc.MaxN
	}
	return 100_000
}

func (sc ScaleConfig) workers() int {
	if sc.Workers > 0 {
		return sc.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// e19Seed keys the GNP workload's edge stream; fixed so every cell of
// a sweep measures the same graph.
const e19Seed = 0xe19

// e19Workloads orders the workload rows of E19.
var e19Workloads = []string{"path", "grid", "gnp", "cluster"}

// e19Protocols orders the protocol columns of E19 (and the protocol
// rows of E20): the dense SoA catalog.
var e19Protocols = []string{"decay", "cr", "wave"}

// e19PathCap bounds the path workload: a 10^6-node path needs ~10^7
// Decay rounds (D log n), which is a different experiment. The other
// workloads have sublinear diameter and scale to 10^6.
const e19PathCap = 10_000

// e19Graph builds one workload at size ~n through the streaming
// generators. Actual node counts are the generator's (grid and cluster
// round n to their factor shapes).
func e19Graph(workload string, n int) *graph.Graph {
	switch workload {
	case "path":
		return graph.FromStream(graph.StreamPath(n))
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.FromStream(graph.StreamGrid(side, side))
	case "gnp":
		return graph.BuildConnected(graph.StreamGNP(n, 16/float64(n), e19Seed), e19Seed)
	default: // "cluster"
		size := int(math.Sqrt(float64(n)))
		return graph.FromStream(graph.StreamClusterChain(n/size, size))
	}
}

// e19Rounds estimates a protocol's completion rounds on a workload
// (cost model only): the wave finishes in ~D rounds, the randomized
// broadcasts in ~D log n + log^2 n on the generator's diameter shape.
func e19Rounds(proto, workload string, n int) int64 {
	l := int64(sched.LogN(n))
	var d int64
	switch workload {
	case "path":
		d = int64(n)
	case "grid", "cluster":
		d = 2 * int64(math.Sqrt(float64(n)))
	default: // gnp, p = 16/n
		d = l
	}
	if proto == "wave" {
		return d + l
	}
	return d*l + l*l
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// liveHeap returns the collected live-heap size.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// runScaleCell executes one dense broadcast (or wave) on one workload
// and returns the result plus the covered-node fraction. The heap
// delta brackets everything the cell allocates and keeps live: CSR
// graph, engine buffers, SoA protocol state. Concurrent cells can
// perturb it — it is a capacity figure, not a reproducible output.
//
// For the wave the effective limit is capped at the horizon (the wave
// is over by construction; post-horizon rounds are silent no-ops): the
// source eccentricity on the ideal channel, 4x eccentricity plus slack
// under a lossy one.
func runScaleCell(proto, workload string, n int, seed uint64, workers int,
	mkChannel func() radio.Channel, limit int64) (exp.Result, float64) {
	before := liveHeap()
	g := e19Graph(workload, n)
	cfg := radio.Config{Workers: workers}
	if mkChannel != nil {
		cfg.Channel = mkChannel()
	}
	return runDenseCell(g, proto, seed, cfg, before, limit)
}

// runDenseCell is the protocol-switch body shared by the abstract
// (E19/E20/E21) and geometric (E22) scale sweeps: given an
// already-built graph and engine config, construct the dense stack,
// run it, and collect the capacity metrics against the heap mark
// `before` (taken by the caller before graph construction, so the CSR
// is inside the bracket).
func runDenseCell(g *graph.Graph, proto string, seed uint64, cfg radio.Config,
	before int64, limit int64) (exp.Result, float64) {
	var pr radio.DenseProtocol
	var done func() bool
	var covered func() int
	switch proto {
	case "gst", "gst-noise":
		f := gst.Flatten(gst.Construct(g, 0))
		p := mmv.NewDense(g, f, mmv.NewSchedule(g.N()), seed, 0, proto == "gst-noise")
		pr, done, covered = p, p.Done, p.InformedCount
	case "cr":
		d := graph.Eccentricity(g, 0)
		p := cr.NewDense(g, cr.NewParams(g.N(), d), seed, 0)
		pr, done, covered = p, p.Done, p.InformedCount
	case "wave":
		ecc := int64(graph.Eccentricity(g, 0))
		horizon := ecc
		if cfg.Channel != nil {
			horizon = 4*ecc + 64
		}
		if horizon < limit {
			limit = horizon
		}
		cfg.CollisionDetection = true // the wave's correctness assumption
		w := beep.NewDenseWave(g, 0, horizon)
		pr, done, covered = w, w.Done, w.TriggeredCount
	default: // "decay"
		p := decay.NewDense(g, seed, 0)
		pr, done, covered = p, p.Done, p.InformedCount
	}
	eng := radio.NewDense(g, cfg, pr)
	defer eng.Close()
	rounds, ok := eng.RunUntil(limit, done)
	st := eng.Stats()
	after := liveHeap()
	res := exp.Rounds(rounds, ok)
	res.Value = float64(st.Deliveries)
	res.BusyRounds = st.BusyRounds
	res.SilentRounds = st.SilentRounds
	res.MaxFrontier = st.MaxFrontier
	if d := after - before; d > 0 {
		res.MemBytes = d
	}
	res.PeakRSS = peakRSSBytes()
	return res, float64(covered()) / float64(g.N())
}

// E19Plan is the ideal-channel scale sweep: n = 10^3 .. sc.MaxN per
// workload (path capped at 10^4), one dense broadcast per
// (protocol, workload, n, seed) over the full SoA catalog.
func E19Plan(sc ScaleConfig, seeds int, quick bool) *exp.Plan {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{1_000, 10_000}
	}
	maxN := sc.maxN()
	workers := sc.workers()
	p := &exp.Plan{ID: "E19", Title: "Million-node engine: dense-engine scale sweep (SoA decay/cr/wave)"}
	type cfg struct {
		workload string
		n        int
	}
	var cfgs []cfg
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		for _, w := range e19Workloads {
			if w == "path" && n > e19PathCap {
				continue
			}
			cfgs = append(cfgs, cfg{w, n})
		}
	}
	key := func(proto string, c cfg, s uint64) exp.Key {
		return exp.Key{Experiment: "E19", Config: fmt.Sprintf("%s/%s/n=%d", proto, c.workload, c.n), Seed: s}
	}
	for _, c := range cfgs {
		for _, proto := range e19Protocols {
			for s := 0; s < seeds; s++ {
				c, proto, seed := c, proto, uint64(s)
				p.Cells = append(p.Cells, exp.Cell{
					Key:        key(proto, c, seed),
					RoundLimit: broadcastLimit,
					Cost:       budgetCost(c.n, e19Rounds(proto, c.workload, c.n)),
					Run: func(limit int64) exp.Result {
						res, _ := runScaleCell(proto, c.workload, c.n, seed, workers, nil, limit)
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			// The worker count stays out of the title: the rendered table
			// must be byte-identical at any -scaleworkers setting (CI
			// compares the sequential and parallel sweeps with cmp).
			Title: "E19: dense-engine scale sweep (SoA decay/cr/wave, streaming CSR)",
			Comment: "one dense broadcast per (protocol, workload, n) cell; per-protocol mean completion rounds,\n" +
				"byte-identical at any worker count (the deterministic parallel delivery pass); bytes/node, peak\n" +
				"RSS, and rounds/sec ride the JSON artifact only (mem_bytes, peak_rss_bytes, wall_us)",
			Header: []string{"workload", "n", "ok", "decay", "cr", "wave"},
		}
		for _, c := range cfgs {
			okCount := 0
			row := []string{c.workload, fmt.Sprintf("%d", c.n), ""}
			for _, proto := range e19Protocols {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[key(proto, c, uint64(s))]
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
					}
				}
				row = append(row, stats.F(meanOrDash(rs)))
			}
			row[2] = fmt.Sprintf("%d/%d", okCount, len(e19Protocols)*seeds)
			t.AddRow(row...)
		}
		return t
	}
	return p
}

// e20Rates is the erasure loss grid of E20.
var e20Rates = []float64{0.05, 0.1, 0.2, 0.3}

// E20Plan is the channel-adverse scale sweep: the dense catalog on the
// gnp workload under per-link erasure, n = 10^4 .. sc.MaxN. Any
// channel forces the engine off the collect/scatter fast path onto the
// O(n)-per-round listener sweep, so this is the capacity trial of the
// adverse path. Decay and CR retry until coverage; the wave runs a
// single lossy pass inside its slacked horizon, so its coverage
// (Value) may be < 1 at high loss — exactly the fragility E13 measures
// at small n.
func E20Plan(sc ScaleConfig, seeds int, quick bool) *exp.Plan {
	sizes := []int{10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{10_000}
	}
	maxN := sc.maxN()
	workers := sc.workers()
	p := &exp.Plan{ID: "E20", Title: "Million-node robustness: dense-engine erasure sweep (gnp)"}
	type cfg struct {
		rate  float64
		proto string
		n     int
	}
	var cfgs []cfg
	for _, rate := range e20Rates {
		for _, proto := range e19Protocols {
			for _, n := range sizes {
				if n > maxN {
					continue
				}
				cfgs = append(cfgs, cfg{rate, proto, n})
			}
		}
	}
	key := func(c cfg, s uint64) exp.Key {
		return exp.Key{Experiment: "E20", Config: fmt.Sprintf("loss=%g/%s/n=%d", c.rate, c.proto, c.n), Seed: s}
	}
	for _, c := range cfgs {
		for s := 0; s < seeds; s++ {
			c, seed := c, uint64(s)
			p.Cells = append(p.Cells, exp.Cell{
				Key:        key(c, seed),
				RoundLimit: broadcastLimit,
				Cost:       budgetCost(c.n, 2*e19Rounds(c.proto, "gnp", c.n)),
				Run: func(limit int64) exp.Result {
					mk := func() radio.Channel {
						return channel.NewErasure(c.rate, rng.Mix(seed, 0xe20))
					}
					res, coverage := runScaleCell(c.proto, "gnp", c.n, seed, workers, mk, limit)
					res.Value = coverage
					return res
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E20: dense-engine erasure sweep (gnp, streaming CSR)",
			Comment: "per-link erasure drives the engine's adverse path (per-listener hear counts, O(n)/round);\n" +
				"decay/cr retry to full coverage, the wave gets one lossy pass in a 4x-eccentricity horizon;\n" +
				"rounds and coverage are byte-identical at any worker count",
			Header: []string{"loss", "protocol", "n", "ok", "rounds", "coverage"},
		}
		for _, c := range cfgs {
			okCount := 0
			var rs, cov []float64
			for s := 0; s < seeds; s++ {
				r := idx[key(c, uint64(s))]
				if r.Completed {
					okCount++
					rs = append(rs, float64(r.Rounds))
				}
				cov = append(cov, r.Value)
			}
			t.AddRow(fmt.Sprintf("%g", c.rate), c.proto, fmt.Sprintf("%d", c.n),
				fmt.Sprintf("%d/%d", okCount, seeds),
				stats.F(meanOrDash(rs)), stats.F(meanOrDash(cov)))
		}
		return t
	}
	return p
}

// e21Modes orders the mode columns of E21: the structured GST
// broadcast on a quiet tree, and the same schedule with every
// uninformed member jamming its slow slots (Lemma 3.3's noise regime).
var e21Modes = []string{"gst", "gst-noise"}

// e21Rounds estimates a GST-broadcast cell's completion rounds (cost
// model only): the fast relay pipelines one level per two rounds, and
// each of the ≤ log n stretch boundaries on a root-to-leaf path waits
// O(M log n) expected slow slots, with M = 6(L+2) the schedule period.
func e21Rounds(workload string, n int) int64 {
	m := int64(mmv.NewSchedule(n).M)
	return m * e19Rounds("wave", workload, n)
}

// E21Plan is the structured-broadcast scale sweep: mmv.Dense over
// flat GST arrays (built once per cell by gst.Construct + gst.Flatten)
// on the E19 workload grid, n = 10^3 .. sc.MaxN, quiet and noised.
// Completion rides the fixed MMV schedule only — no retries, no
// topology knowledge beyond the tree — so the rounds column is the
// steady-state per-message cost of the paper's amortized regime.
func E21Plan(sc ScaleConfig, seeds int, quick bool) *exp.Plan {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{1_000, 10_000}
	}
	maxN := sc.maxN()
	workers := sc.workers()
	p := &exp.Plan{ID: "E21", Title: "Million-node structured broadcast: dense GST sweep (flat tree + MMV schedule)"}
	type cfg struct {
		workload string
		n        int
	}
	var cfgs []cfg
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		for _, w := range e19Workloads {
			if w == "path" && n > e19PathCap {
				continue
			}
			cfgs = append(cfgs, cfg{w, n})
		}
	}
	key := func(mode string, c cfg, s uint64) exp.Key {
		return exp.Key{Experiment: "E21", Config: fmt.Sprintf("%s/%s/n=%d", mode, c.workload, c.n), Seed: s}
	}
	for _, c := range cfgs {
		for _, mode := range e21Modes {
			for s := 0; s < seeds; s++ {
				c, mode, seed := c, mode, uint64(s)
				p.Cells = append(p.Cells, exp.Cell{
					Key:        key(mode, c, seed),
					RoundLimit: broadcastLimit,
					Cost:       budgetCost(c.n, e21Rounds(c.workload, c.n)),
					Run: func(limit int64) exp.Result {
						res, _ := runScaleCell(mode, c.workload, c.n, seed, workers, nil, limit)
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E21: dense GST broadcast scale sweep (flat tree + MMV schedule)",
			Comment: "one structured broadcast per (mode, workload, n) cell: gst.Construct + gst.Flatten once, then\n" +
				"mmv.Dense on the fixed MMV schedule; gst-noise adds slow-slot jamming by every uninformed member;\n" +
				"byte-identical at any worker count; bytes/node, peak RSS, and rounds/sec ride the JSON artifact",
			Header: []string{"workload", "n", "ok", "gst", "gst-noise"},
		}
		for _, c := range cfgs {
			okCount := 0
			row := []string{c.workload, fmt.Sprintf("%d", c.n), ""}
			for _, mode := range e21Modes {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[key(mode, c, uint64(s))]
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
					}
				}
				row = append(row, stats.F(meanOrDash(rs)))
			}
			row[2] = fmt.Sprintf("%d/%d", okCount, len(e21Modes)*seeds)
			t.AddRow(row...)
		}
		return t
	}
	return p
}
