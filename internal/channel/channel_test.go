package channel

import (
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// randomNet builds a network of non-adaptive random actors (their
// actions depend only on their own RNG stream, never on observations),
// so the transmission schedule is identical under every channel.
func randomNet(g *graph.Graph, cd bool, ch radio.Channel, seed uint64) *radio.Network {
	nw := radio.New(g, radio.Config{CollisionDetection: cd, Channel: ch})
	for v := 0; v < g.N(); v++ {
		r := rng.New(seed, uint64(v))
		nw.SetProtocol(graph.NodeID(v), &radio.FuncProtocol{ActFunc: func(round int64) radio.Action {
			if r.Intn(4) == 0 {
				return radio.Transmit(radio.RawPacket{Value: round})
			}
			return radio.Listen
		}})
	}
	return nw
}

// A pass-through channel must reproduce the ideal path exactly: same
// deliveries, collisions, transmissions, and zero adversity counters.
func TestNopChannelMatchesIdeal(t *testing.T) {
	g := graph.GNP(40, 0.12, 3)
	for _, cd := range []bool{false, true} {
		ideal := randomNet(g, cd, nil, 7)
		ideal.Run(200)
		nop := randomNet(g, cd, Nop{}, 7)
		nop.Run(200)
		a, b := ideal.Stats(), nop.Stats()
		if a != b {
			t.Fatalf("cd=%v: Nop channel diverged from ideal:\nideal %+v\nnop   %+v", cd, a, b)
		}
		if b.Dropped != 0 || b.Jammed != 0 {
			t.Fatalf("cd=%v: Nop channel counted adversity: %+v", cd, b)
		}
	}
}

func TestErasureExtremes(t *testing.T) {
	g := graph.Grid(5, 5)
	full := randomNet(g, true, NewErasure(1, 9), 5)
	full.Run(100)
	st := full.Stats()
	if st.Deliveries != 0 || st.CollisionObs != 0 {
		t.Fatalf("p=1 erasure delivered: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("p=1 erasure dropped nothing")
	}
	none := randomNet(g, true, NewErasure(0, 9), 5)
	none.Run(100)
	ideal := randomNet(g, true, nil, 5)
	ideal.Run(100)
	if none.Stats() != ideal.Stats() {
		t.Fatalf("p=0 erasure diverged from ideal:\n%+v\n%+v", ideal.Stats(), none.Stats())
	}
}

func TestErasureDeterminism(t *testing.T) {
	g := graph.GNP(30, 0.15, 2)
	run := func() radio.Stats {
		nw := randomNet(g, true, NewErasure(0.3, 11), 4)
		nw.Run(300)
		return nw.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("erasure nondeterministic:\n%+v\n%+v", a, b)
	}
}

// Path 0-1-2 with both ends transmitting every round: the middle
// observes ⊤ with CD. Miss=1 must silence every collision; Spurious=1
// must turn every silent listener-round into ⊤ (and be sanitized to
// silence without CD).
func TestNoisyCDMissAndSpurious(t *testing.T) {
	g := graph.Path(3)
	bothEndsTx := func(nw *radio.Network) *radio.Silent {
		tx := func(int64) radio.Action { return radio.Transmit(radio.RawPacket{}) }
		nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: tx})
		nw.SetProtocol(2, &radio.FuncProtocol{ActFunc: tx})
		mid := &radio.Silent{}
		nw.SetProtocol(1, mid)
		return mid
	}

	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: NewNoisyCD(1, 0, 1)})
	mid := bothEndsTx(nw)
	nw.Run(50)
	if mid.Collisions != 0 {
		t.Fatalf("miss=1 still delivered %d collisions", mid.Collisions)
	}
	if st := nw.Stats(); st.Jammed != 50 {
		t.Fatalf("miss=1 jammed = %d, want 50", st.Jammed)
	}

	// Spurious ⊤: everyone silent, one listener; every round becomes ⊤.
	nw2 := radio.New(g, radio.Config{CollisionDetection: true, Channel: NewNoisyCD(0, 1, 1)})
	probe := &radio.Silent{}
	nw2.SetProtocol(0, probe)
	nw2.SetProtocol(1, &radio.Silent{})
	nw2.SetProtocol(2, &radio.Silent{})
	nw2.Run(20)
	if probe.Collisions != 20 || probe.Packets != 0 {
		t.Fatalf("spurious=1 with CD: %+v", probe)
	}

	// Without CD the spurious symbol is sanitized to silence.
	nw3 := radio.New(g, radio.Config{Channel: NewNoisyCD(0, 1, 1)})
	probe3 := &radio.Silent{}
	nw3.SetProtocol(0, probe3)
	nw3.SetProtocol(1, &radio.Silent{})
	nw3.SetProtocol(2, &radio.Silent{})
	nw3.Run(20)
	if probe3.Collisions != 0 || probe3.Packets != 0 {
		t.Fatalf("spurious ⊤ leaked through a no-CD network: %+v", probe3)
	}
}

// An adaptive jammer with budget B destroys exactly the first B active
// rounds, then falls silent and lets traffic through.
func TestAdaptiveJammerBudget(t *testing.T) {
	g := graph.Path(2)
	j := NewAdaptiveJammer(10, 1, 3)
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: j})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(50)
	if j.Spent() != 10 {
		t.Fatalf("spent = %d, want 10", j.Spent())
	}
	if probe.Collisions != 10 || probe.Packets != 40 {
		t.Fatalf("probe: collisions=%d packets=%d, want 10,40", probe.Collisions, probe.Packets)
	}
	if st := nw.Stats(); st.Jammed != 10 {
		t.Fatalf("jammed = %d, want 10", st.Jammed)
	}
}

// An oblivious jammer never exceeds its budget and keys its rounds off
// the seed, not the traffic.
func TestObliviousJammerBudget(t *testing.T) {
	g := graph.Path(2)
	j := NewJammer(5, 1, 4) // rate 1: jams the first 5 rounds
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: j})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(30)
	if j.Spent() != 5 || probe.Collisions != 5 || probe.Packets != 25 {
		t.Fatalf("spent=%d probe=%+v", j.Spent(), probe)
	}
}

// A crashed radio stops transmitting and hearing; a late-wakeup radio
// misses everything before its wake round.
func TestFaults(t *testing.T) {
	g := graph.Path(2)
	f := NewFaults(2)
	f.SetCrash(0, 10) // transmitter dies at round 10
	f.SetWake(1, 5)   // listener's radio off before round 5
	nw := radio.New(g, radio.Config{Channel: f})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(30)
	// Rounds 0-4: listener dead (inbound links erased). Rounds 5-9:
	// delivered. Round 10+: transmitter dead (suppressed at source).
	if probe.Packets != 5 {
		t.Fatalf("packets = %d, want 5", probe.Packets)
	}
	st := nw.Stats()
	if st.Dropped != 25 { // 5 dead-receiver links + 20 suppressed transmissions
		t.Fatalf("dropped = %d, want 25", st.Dropped)
	}
	if st.Jammed != 0 { // link-level erasure means silence was already tentative
		t.Fatalf("jammed = %d, want 0", st.Jammed)
	}
}

// Stacked models compose: loss thins a collision into a reception, the
// jammer destroys it anyway.
func TestStackComposes(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() radio.Stats {
		ch := Stack{NewErasure(0.2, 21), NewAdaptiveJammer(15, 2, 22), NewNoisyCD(0.3, 0.05, 23)}
		nw := randomNet(g, true, ch, 6)
		nw.Run(200)
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stack nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Jammed == 0 {
		t.Fatalf("stack produced no adversity: %+v", a)
	}
}

func TestRandomFaultsProtectsSource(t *testing.T) {
	f := RandomFaults(50, 7, 0.5, 100, 0.5, 1000, 3)
	if f.wakeAt[7] != 0 || f.crashAt[7] != -1 {
		t.Fatalf("source faulted: wake=%d crash=%d", f.wakeAt[7], f.crashAt[7])
	}
	faulted := 0
	for v := 0; v < 50; v++ {
		if f.wakeAt[v] != 0 || f.crashAt[v] != -1 {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no node faulted at 50% rates")
	}
}

func TestChanceBounds(t *testing.T) {
	if chance(0, 1, 2) {
		t.Fatal("p=0 fired")
	}
	if !chance(1, 1, 2) {
		t.Fatal("p=1 did not fire")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if chance(0.3, 42, uint64(i)) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Fatalf("p=0.3 hit rate %d/10000", hits)
	}
}
