package radio_test

// Native fuzz target for the dense engine's determinism contract: a
// fuzzer-chosen protocol, channel stack, seed, and worker count must
// still produce a run byte-identical to the sequential one. This
// generalizes the fixed worker-identity tables in dense_test.go to
// arbitrary corners of the configuration space (stacked adversity
// layers, odd worker counts, CD on/off, noising on/off).

import (
	"fmt"
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
)

// fuzzWorkload pairs a graph with its precomputed GST flat arrays so
// each fuzz execution pays only for the run, not the construction.
type fuzzWorkload struct {
	g *graph.Graph
	f *gst.Flat
	s mmv.Schedule
}

var fuzzWorkloads = func() []fuzzWorkload {
	graphs := []*graph.Graph{
		graph.ClusterChain(6, 6),
		graph.FromStream(graph.StreamGrid(7, 9)),
		graph.BuildConnected(graph.StreamGNP(100, 0.05, 13), 13),
	}
	ws := make([]fuzzWorkload, len(graphs))
	for i, g := range graphs {
		ws[i] = fuzzWorkload{g: g, f: gst.Flatten(gst.Construct(g, 0)), s: mmv.NewSchedule(g.N())}
	}
	return ws
}()

// fuzzChannel assembles a channel stack from the mask's low bits, so
// the fuzzer explores layer subsets: erasure, jammer, noisy CD, radio
// faults. All four are safe under concurrent DropLink/Observe (see
// Config.Workers).
func fuzzChannel(mask uint8, n int, seed uint64) func() radio.Channel {
	if mask&0x0f == 0 {
		return nil
	}
	return func() radio.Channel {
		var stack channel.Stack
		if mask&1 != 0 {
			stack = append(stack, channel.NewErasure(0.1, seed))
		}
		if mask&2 != 0 {
			stack = append(stack, channel.NewJammer(20, 0.05, seed))
		}
		if mask&4 != 0 {
			stack = append(stack, channel.NewNoisyCD(0.05, 0.05, seed))
		}
		if mask&8 != 0 {
			stack = append(stack, channel.RandomFaults(n, 0, 0.1, 16, 0.05, 1<<14, seed))
		}
		if len(stack) == 1 {
			return stack[0]
		}
		return stack
	}
}

// FuzzDenseTwinIdentity: for any (protocol, graph, channel stack, CD,
// seed, workers) the fuzzer picks, the parallel dense run must be
// byte-identical to the sequential one.
func FuzzDenseTwinIdentity(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(1), uint8(3), uint8(1), uint8(17))   // erasure+jammer, gst on grid
	f.Add(uint64(7), uint8(15), uint8(2), uint8(100)) // full stack, decay on gnp
	f.Add(uint64(9), uint8(48), uint8(5), uint8(3))   // CD+noising, gst on gnp
	f.Fuzz(func(t *testing.T, seed uint64, chanMask, pick, workersRaw uint8) {
		w := fuzzWorkloads[int(pick)%len(fuzzWorkloads)]
		cd := chanMask&16 != 0
		useGST := pick%2 == 1
		workers := 2 + int(workersRaw)%7
		c := radiotest.DenseCase{
			Graph:         w.g,
			CD:            cd,
			MaxPacketBits: 64,
			Channel:       fuzzChannel(chanMask, w.g.N(), seed),
			Limit:         1 << 14,
			Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
				if useGST {
					pr := mmv.NewDense(w.g, w.f, w.s, seed, 0, chanMask&32 != 0)
					return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
				}
				pr := decay.NewDense(w.g, seed, 0)
				return pr, pr.Done, recvState(pr.Informed, pr.RecvRound)
			},
		}
		label := fmt.Sprintf("seed=%d mask=%#x pick=%d gst=%v", seed, chanMask, pick, useGST)
		radiotest.WorkerInvariant(t, label, c, workers)
	})
}
