package geo

import (
	"fmt"
	"math"

	"radiocast/internal/graph"
)

// Disk is a graph.EdgeStream for the unit-disk graph of a layout:
// nodes u and v are adjacent iff their Euclidean distance is at most
// Radius. The builder buckets points into a grid of cells no smaller
// than the radius, so each node compares only against the 3x3 cell
// neighborhood around it — near-linear work at the connectivity
// radius instead of the O(n²) pair scan, which is what makes the
// n=10^6 sweep in E22 feasible.
//
// The stream emits each undirected edge exactly once (u < v), in a
// fixed order derived from the cell CSR precomputed at construction,
// so both of graph.FromStream's passes see the identical sequence.
// Building a graph at the QUDG outer radius and layering
// channel.RangeErasure over the band between inner and outer radius
// yields the quasi-unit-disk model.
type Disk struct {
	l      *Layout
	radius float64

	// Cell bucketing: cellStart/cellNodes is a CSR over grid cells
	// (row-major), cellNodes ascending within each cell.
	cols      int
	cellStart []int32
	cellNodes []int32
}

// NewDisk precomputes the cell bucketing for the unit-disk graph of l
// at the given radius. The layout is captured by reference but the
// bucketing is a construction-time snapshot: after mutating positions
// (e.g. a Waypoint step), build a fresh Disk.
func NewDisk(l *Layout, radius float64) *Disk {
	if radius <= 0 {
		panic("geo: NewDisk with non-positive radius")
	}
	n := l.N()
	// Cell side must be >= radius so the 3x3 neighborhood covers the
	// disk; capping cols at ~sqrt(n) bounds the grid at O(n) cells
	// even for tiny radii.
	cols := 1
	if radius < 1 {
		cols = int(1 / radius)
	}
	if cap := int(math.Ceil(math.Sqrt(float64(n)))) + 1; cols > cap {
		cols = cap
	}
	if cols < 1 {
		cols = 1
	}
	d := &Disk{
		l:         l,
		radius:    radius,
		cols:      cols,
		cellStart: make([]int32, cols*cols+1),
		cellNodes: make([]int32, n),
	}
	// Two-pass counting sort of nodes into cells; node order within a
	// cell is ascending because the fill pass walks nodes in order.
	for i := 0; i < n; i++ {
		d.cellStart[d.cell(i)+1]++
	}
	for c := 0; c < cols*cols; c++ {
		d.cellStart[c+1] += d.cellStart[c]
	}
	fill := make([]int32, cols*cols)
	for i := 0; i < n; i++ {
		c := d.cell(i)
		d.cellNodes[d.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return d
}

// cell maps node i's position to its row-major grid cell index.
func (d *Disk) cell(i int) int {
	cx := int(d.l.X[i] * float64(d.cols))
	cy := int(d.l.Y[i] * float64(d.cols))
	if cx >= d.cols {
		cx = d.cols - 1
	}
	if cy >= d.cols {
		cy = d.cols - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*d.cols + cx
}

// N returns the number of nodes.
func (d *Disk) N() int { return d.l.N() }

// Name identifies the stream for graph naming.
func (d *Disk) Name() string {
	return fmt.Sprintf("udg(%s,r=%.4g)", d.l.name, d.radius)
}

// Edges emits each unit-disk edge once (u < v). The order is a pure
// function of the precomputed bucketing, satisfying the EdgeStream
// contract that both FromStream passes see the same sequence.
func (d *Disk) Edges(emit func(u, v graph.NodeID)) {
	n := d.l.N()
	r2 := d.radius * d.radius
	for u := 0; u < n; u++ {
		ux, uy := d.l.X[u], d.l.Y[u]
		cx := int(ux * float64(d.cols))
		cy := int(uy * float64(d.cols))
		if cx >= d.cols {
			cx = d.cols - 1
		}
		if cy >= d.cols {
			cy = d.cols - 1
		}
		for dy := -1; dy <= 1; dy++ {
			ny := cy + dy
			if ny < 0 || ny >= d.cols {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := cx + dx
				if nx < 0 || nx >= d.cols {
					continue
				}
				c := ny*d.cols + nx
				for _, vv := range d.cellNodes[d.cellStart[c]:d.cellStart[c+1]] {
					v := int(vv)
					if v <= u {
						continue
					}
					ddx := d.l.X[v] - ux
					ddy := d.l.Y[v] - uy
					if ddx*ddx+ddy*ddy <= r2 {
						emit(graph.NodeID(u), graph.NodeID(v))
					}
				}
			}
		}
	}
}

// Build materialises the unit-disk graph through graph.FromStream.
func (d *Disk) Build() *graph.Graph { return graph.FromStream(d) }
