package decay

// Dense is the structure-of-arrays Decay broadcast for the
// radio.Dense engine: one value holds every node's state in bitsets
// and flat arrays, so a million-node run costs ~25 bytes/node instead
// of one Broadcast object + one rand.Rand per node.
//
// Differences from the per-node Broadcast (same Decay schedule, same
// delivery semantics, different randomness plumbing):
//
//   - Coin flips are keyed draws Mix3(key, node, round) instead of
//     per-node xoshiro streams, so AppendTransmitters needs no mutable
//     RNG state and partitions can draw concurrently. Runs are NOT
//     byte-comparable with Broadcast runs — the determinism claim is
//     Dense(Workers=a) == Dense(Workers=b), at any a, b.
//   - Only frontier nodes (informed, with at least one uninformed
//     neighbor) flip coins. A retired informed node's transmission
//     could only reach informed neighbors, which never listen, so the
//     informed-set dynamics are provably identical to "all informed
//     participate" under the same draws; Transmissions and collision
//     counts are lower.
//   - All uninformed nodes listen every round (the engine masks
//     transmitters out).

import (
	"math/bits"

	"radiocast/internal/bitvec"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

// DenseKey derives the keyed-draw seed for the dense Decay
// broadcast's transmit coins; exported so twin tests can replay the
// exact coins.
func DenseKey(seed uint64) uint64 { return rng.Mix(seed, 0xdd) }

// Dense implements radio.DenseProtocol for single-message Decay.
type Dense struct {
	g   *graph.Graph
	l   int64  // phase length ⌈log2 n⌉
	key uint64 // keyed-draw seed for transmit coins

	informed bitvec.Vec // has the message
	frontier bitvec.Vec // informed with >= 1 uninformed neighbor
	newly    bitvec.Vec // received this round; promoted in EndRound
	listen   bitvec.Vec // complement of informed (maintained incrementally)

	uninformedDeg []int32 // per-node count of uninformed neighbors
	recvRound     []int64 // round of first reception (-1 for the source)
	informedCount int

	pkt radio.Packet // the message, boxed once
	src graph.NodeID
}

var _ radio.DenseProtocol = (*Dense)(nil)

// NewDense creates the SoA Decay broadcast on g from source, with
// transmit coins keyed on seed.
func NewDense(g *graph.Graph, seed uint64, source graph.NodeID) *Dense {
	n := g.N()
	d := &Dense{
		g:             g,
		l:             int64(sched.LogN(n)),
		key:           DenseKey(seed),
		informed:      bitvec.New(n),
		frontier:      bitvec.New(n),
		newly:         bitvec.New(n),
		listen:        bitvec.New(n),
		uninformedDeg: make([]int32, n),
		recvRound:     make([]int64, n),
		pkt:           Message{Data: int64(source)},
		src:           source,
	}
	d.listen.Ones()
	for v := 0; v < n; v++ {
		d.uninformedDeg[v] = int32(g.Degree(graph.NodeID(v)))
		d.recvRound[v] = -1
	}
	if n > 0 {
		d.inform(source, -1)
	}
	return d
}

// inform flips v to informed (received in round r; -1 for the source),
// maintaining the listen complement, the neighbors' uninformed-degree
// counts, and the frontier on both sides.
func (d *Dense) inform(v graph.NodeID, r int64) {
	d.informed.Set(int(v))
	d.listen.Clear(int(v))
	d.recvRound[v] = r
	d.informedCount++
	for _, u := range d.g.Neighbors(v) {
		d.uninformedDeg[u]--
		if d.uninformedDeg[u] == 0 {
			d.frontier.Clear(int(u)) // no-op for uninformed u
		}
	}
	if d.uninformedDeg[v] > 0 {
		d.frontier.Set(int(v))
	}
}

// AppendTransmitters implements radio.DenseProtocol: each frontier
// node in [lo, hi) transmits in slot i of a phase with probability
// 2^-(i+1), decided by one keyed draw — a 64-bit uniform is below
// 2^(63-i) with exactly that probability.
func (d *Dense) AppendTransmitters(r int64, lo, hi graph.NodeID, dst []radio.NodeID) []radio.NodeID {
	_, slot := sched.Cycle(r, d.l)
	threshold := uint64(1) << (63 - uint(slot))
	words := d.frontier.Words()
	for wi := int(lo) >> 6; wi<<6 < int(hi); wi++ {
		w := words[wi]
		for w != 0 {
			v := graph.NodeID(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			if rng.Mix3(d.key, uint64(v), uint64(r)) < threshold {
				dst = append(dst, v)
			}
		}
	}
	return dst
}

// ListenWords implements radio.DenseProtocol: every uninformed node
// listens every round.
func (d *Dense) ListenWords(int64) []uint64 { return d.listen.Words() }

// Packet implements radio.DenseProtocol: every transmitter sends the
// one broadcast message.
func (d *Dense) Packet(int64, graph.NodeID) radio.Packet { return d.pkt }

// Deliver implements radio.DenseProtocol. Marking a bit in the newly
// set is v-local and order-independent; promotion to informed (which
// touches neighbors) waits for EndRound.
func (d *Dense) Deliver(_ int64, v graph.NodeID, out radio.Outcome) {
	if out.Packet == nil {
		return // ⊤ or channel noise: Decay ignores collisions
	}
	if _, ok := out.Packet.(Message); ok {
		d.newly.Set(int(v))
	}
}

// EndRound implements radio.DenseProtocol: promote this round's
// receivers in ascending node order.
func (d *Dense) EndRound(r int64) {
	words := d.newly.Words()
	for wi, w := range words {
		for w != 0 {
			v := graph.NodeID(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			d.inform(v, r)
		}
		words[wi] = 0
	}
}

// Done reports whether every node is informed.
func (d *Dense) Done() bool { return d.informedCount == d.g.N() }

// InformedCount returns the number of informed nodes.
func (d *Dense) InformedCount() int { return d.informedCount }

// Informed reports whether v has the message.
func (d *Dense) Informed(v graph.NodeID) bool { return d.informed.Get(int(v)) }

// InformedSet exposes the informed bitset (read-only by convention).
func (d *Dense) InformedSet() bitvec.Vec { return d.informed }

// RecvRound returns the round v first received the message (-1 for
// the source or a still-uninformed node).
func (d *Dense) RecvRound(v graph.NodeID) int64 { return d.recvRound[v] }
