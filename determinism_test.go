package radiocast

import (
	"testing"
	"time"

	"radiocast/internal/exp"
	"radiocast/internal/harness"
)

// Reproducibility is a core library contract: identical (graph,
// options, seed) must give identical round counts for every protocol.

func TestDeterminismAcrossProtocols(t *testing.T) {
	g := NewClusterChain(6, 6)
	runs := []struct {
		name string
		fn   func() (Result, error)
	}{
		{"decay", func() (Result, error) { return DecayBroadcast(g, Options{Seed: 9}) }},
		{"cr", func() (Result, error) { return CRBroadcast(g, Options{Seed: 9}) }},
		{"gst", func() (Result, error) { return BroadcastKnownTopology(g, Options{Seed: 9}) }},
		{"cd", func() (Result, error) { return BroadcastCD(g, Options{Seed: 9}) }},
		{"k-known", func() (Result, error) { return BroadcastK(g, 4, Options{Seed: 9}) }},
		{"k-cd", func() (Result, error) { return BroadcastKCD(g, 4, Options{Seed: 9}) }},
		{"cd-pipelined", func() (Result, error) {
			return BroadcastCD(g, Options{Seed: 9, PipelinedBoundaries: true})
		}},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			a, err := r.fn()
			if err != nil || !a.Completed {
				t.Fatalf("first run: %+v %v", a, err)
			}
			b, err := r.fn()
			if err != nil || !b.Completed {
				t.Fatalf("second run: %+v %v", b, err)
			}
			if a.Rounds != b.Rounds {
				t.Fatalf("nondeterministic: %d vs %d rounds", a.Rounds, b.Rounds)
			}
		})
	}
}

// Channel adversity must preserve the reproducibility contract:
// identical (graph, channel parameters, seed) give identical rounds
// and identical Dropped/Jammed counters, and a nonzero adversity
// leaves its fingerprint in the counters.
func TestChannelDeterminism(t *testing.T) {
	g := NewClusterChain(6, 6)
	runs := []struct {
		name string
		fn   func() (Result, error)
	}{
		{"decay-loss", func() (Result, error) {
			return DecayBroadcast(g, Options{Seed: 5, Channel: ErasureChannel(0.2, 11)})
		}},
		{"cr-jam", func() (Result, error) {
			return CRBroadcast(g, Options{Seed: 5, Channel: JammerChannel(64, 0.5, false, 12)})
		}},
		{"cd-noisycd", func() (Result, error) {
			return BroadcastCD(g, Options{Seed: 5, Channel: NoisyCDChannel(0.05, 0.001, 13)})
		}},
		{"gst-stack", func() (Result, error) {
			return BroadcastKnownTopology(g, Options{Seed: 5, Channel: StackChannels(
				ErasureChannel(0.1, 14), JammerChannel(32, 0.25, true, 15))})
		}},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			a, err := r.fn()
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.fn()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("nondeterministic under adversity:\n%+v\n%+v", a, b)
			}
			if a.Dropped == 0 && a.Jammed == 0 {
				t.Fatalf("adversarial channel left no fingerprint: %+v", a)
			}
		})
	}
}

// TestPipelinedBuildDeterminism pins E6's contract at the runner
// level: both boundary-construction modes are exact functions of
// (graph, config, seed), and the pipelined schedule strictly
// undercuts the sequential one on every D >= 4 workload.
func TestPipelinedBuildDeterminism(t *testing.T) {
	g := NewGrid(4, 8)
	const d = 10 // eccentricity of grid-4x8 from node 0
	for _, pipelined := range []bool{false, true} {
		a := harness.RunGSTBuild(g, g.N(), d, 1, pipelined, 7)
		b := harness.RunGSTBuild(g, g.N(), d, 1, pipelined, 7)
		if a != b {
			t.Fatalf("pipelined=%v nondeterministic:\n%+v\n%+v", pipelined, a, b)
		}
	}
	seq := harness.RunGSTBuild(g, g.N(), d, 1, false, 7)
	pipe := harness.RunGSTBuild(g, g.N(), d, 1, true, 7)
	if pipe.Budget >= seq.Budget {
		t.Fatalf("pipelined budget %d not below sequential %d", pipe.Budget, seq.Budget)
	}
	if pipe.Rounds >= seq.Rounds {
		t.Fatalf("pipelined completed in %d rounds, sequential in %d", pipe.Rounds, seq.Rounds)
	}
	// The facade flag drives the same machinery.
	ga, err := BuildGSTDistributed(NewGrid(3, 4), Options{Seed: 2, Scale: 2, PipelinedBoundaries: true})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := BuildGSTDistributed(NewGrid(3, 4), Options{Seed: 2, Scale: 2, PipelinedBoundaries: true})
	if err != nil {
		t.Fatal(err)
	}
	if ga.ConstructionRounds != gb.ConstructionRounds {
		t.Fatalf("facade pipelined builds diverge: %d vs %d rounds", ga.ConstructionRounds, gb.ConstructionRounds)
	}
	for v := range ga.Tree.Parent {
		if ga.Tree.Parent[v] != gb.Tree.Parent[v] || ga.Tree.Rank[v] != gb.Tree.Rank[v] {
			t.Fatalf("facade pipelined builds diverge at node %d", v)
		}
	}
}

func TestSeedsChangeOutcomes(t *testing.T) {
	g := NewGNP(60, 0.1, 4)
	a, err := DecayBroadcast(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for seed := uint64(2); seed < 8; seed++ {
		b, err := DecayBroadcast(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if b.Rounds != a.Rounds {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("seven seeds produced identical Decay round counts; randomness is suspect")
	}
}

// TestParallelRunnerMatchesSequential pins the orchestration contract:
// for every experiment, fanning cells across a worker pool must yield
// the same table bytes and the same canonical JSON artifact as the
// sequential run — output is ordered by cell key, never by completion
// order.
func TestParallelRunnerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	// A fast, representative subset: protocol sweeps (E1), the
	// sequential-vs-pipelined construction pairs (E6), paired jamming
	// cells (E9), batched micro-trials (E11), payload-carrying cells
	// (E12), a fixed-schedule ablation (A3), the four
	// adversarial-channel robustness sweeps (E13-E16) whose cells carry
	// the Dropped/Jammed counters into the canonical artifact, and the
	// adaptive-retry sweeps (E17-E18) whose cells run multi-epoch
	// re-layered broadcasts.
	ids := map[string]bool{
		"E1": true, "E6": true, "E9": true, "E11": true, "E12": true, "A3": true,
		"E13": true, "E14": true, "E15": true, "E16": true,
		"E17": true, "E18": true,
	}
	for _, e := range harness.All() {
		if !ids[e.ID] {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			run := func(workers int) (string, []byte) {
				plan := e.Plan(1, true)
				runner := &exp.Runner{Parallelism: workers}
				start := time.Now()
				tb, results := runner.RunTable(plan)
				a := exp.NewArtifact(1, true, 0) // fixed header: only cell content may differ
				a.Add(plan, tb, results, time.Since(start))
				blob, err := a.Canonical().JSON()
				if err != nil {
					t.Fatal(err)
				}
				return tb.String(), blob
			}
			seqTable, seqJSON := run(1)
			parTable, parJSON := run(8)
			if seqTable != parTable {
				t.Fatalf("tables diverge:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqTable, parTable)
			}
			if string(seqJSON) != string(parJSON) {
				t.Fatalf("canonical artifacts diverge:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqJSON, parJSON)
			}
		})
	}
}

// TestRunAllMatchesSequential pins the global-pool contract: feeding
// the cells of SEVERAL experiments through one longest-cell-first
// worker pool (Runner.RunAll — what cmd/radiobench runs) must produce
// exactly the tables and canonical artifacts of per-plan sequential
// execution, at any worker count. This is the cross-experiment
// scheduler's determinism guarantee: admission order and worker count
// affect only wall clock, never output bytes.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	ids := map[string]bool{"E9": true, "E11": true, "E12": true, "E16": true}
	var selected []harness.Experiment
	for _, e := range harness.All() {
		if ids[e.ID] {
			selected = append(selected, e)
		}
	}
	run := func(workers int, useRunAll bool) []byte {
		plans := make([]*exp.Plan, len(selected))
		for i, e := range selected {
			plans[i] = e.Plan(1, true)
		}
		runner := &exp.Runner{Parallelism: workers}
		var all [][]exp.Result
		if useRunAll {
			all = runner.RunAll(plans)
		} else {
			all = make([][]exp.Result, len(plans))
			for i, p := range plans {
				all[i] = runner.Run(p)
			}
		}
		a := exp.NewArtifact(1, true, 0)
		for i, p := range plans {
			a.Add(p, p.Assemble(all[i]), all[i], time.Duration(0))
		}
		blob, err := a.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	want := run(1, false)
	for _, workers := range []int{1, 8} {
		if got := run(workers, true); string(got) != string(want) {
			t.Fatalf("RunAll(workers=%d) diverges from sequential per-plan execution", workers)
		}
	}
}
