// Gstexplore: build gathering spanning trees both ways — centrally
// (known topology, [7]) and distributedly (Theorem 2.1) — validate
// every GST invariant, and inspect ranks, fast stretches, and virtual
// distances.
package main

import (
	"fmt"
	"log"

	"radiocast"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
)

func main() {
	g := radiocast.NewGNP(24, 0.2, 9)

	central, err := radiocast.BuildGST(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("central GST on %s: max rank %d, max level %d\n",
		g.Name(), central.Tree.MaxRank(), central.Tree.MaxLevel())

	distributed, err := radiocast.BuildGSTDistributed(g, radiocast.Options{Seed: 3, Scale: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed GST (Thm 2.1): built in %d simulated rounds, valid\n\n",
		distributed.ConstructionRounds)

	// Fast stretches of the central tree.
	info := gst.Stretches(central.Tree)
	stretchLen := map[graph.NodeID]int32{}
	for v := 0; v < g.N(); v++ {
		s := info[v].Start
		if info[v].Pos > stretchLen[s] {
			stretchLen[s] = info[v].Pos
		}
	}
	fmt.Println("fast stretches (start -> length) and virtual distances:")
	for v := 0; v < g.N(); v++ {
		if l, ok := stretchLen[graph.NodeID(v)]; ok && l > 0 {
			fmt.Printf("  stretch at node %d: %d hops (rank %d)\n", v, l, central.Tree.Rank[v])
		}
	}
	maxVd := int32(0)
	for _, d := range central.VirtualDistance {
		if d > maxVd {
			maxVd = d
		}
	}
	fmt.Printf("max virtual distance: %d (Lemma 3.4 bound: %d)\n", maxVd, 2*(central.Tree.MaxRank()+1))

	// The Figure-1 phenomenon.
	gadget := gst.FigureOneGadget()
	naive := gst.NaiveRankedBFS(gadget, 0)
	if err := naive.ValidateCollisionFreeness(); err != nil {
		fmt.Printf("\nFigure 1, left: naive ranked BFS violates collision-freeness:\n  %v\n", err)
	}
	proper := gst.Construct(gadget, 0)
	if proper.Validate() == nil {
		fmt.Println("Figure 1, right: the GST construction resolves it (node 2 adopts both leaves)")
	}
}
