package obs

// RoundSnapshot is the engine's cumulative counter state at an
// observed round — a plain value struct (no engine types) so this
// package stays dependency-free and a snapshot costs zero heap.
// Fields mirror radio.Stats; see that type for the counter semantics.
type RoundSnapshot struct {
	// Round is the round that just executed.
	Round int64
	// Cumulative engine counters as of this round.
	Transmissions int64
	Deliveries    int64
	CollisionObs  int64
	Dropped       int64
	Jammed        int64
	BusyRounds    int64
	SilentRounds  int64
	MaxFrontier   int64
}

// RoundObserver receives engine round snapshots. Both engines
// (radio.Network and radio.Dense) invoke it synchronously from the
// stepping goroutine at a configurable round stride, after the round's
// deliveries; a nil observer is never consulted and preserves the
// zero-allocation hot path byte-for-byte (the same contract as a nil
// radio.Config.Channel). Implementations must not block: they run on
// the simulation's critical path. An observer must not perturb the run
// — it sees counters, it does not touch protocol or engine state.
type RoundObserver interface {
	OnRound(s RoundSnapshot)
}

// ObserverFunc adapts a function to RoundObserver.
type ObserverFunc func(s RoundSnapshot)

// OnRound implements RoundObserver.
func (f ObserverFunc) OnRound(s RoundSnapshot) { f(s) }

// EpochObserver receives adaptive-retry epoch transitions (the
// internal/adapt layer's per-epoch hook, surfaced as structured log
// events and SSE progress by the daemon).
type EpochObserver func(epoch int, rounds int64, covered int, done bool)
