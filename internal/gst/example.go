package gst

import "radiocast/internal/graph"

// FigureOneGadget returns the minimal graph on which a naive ranked
// BFS violates collision-freeness while a proper GST exists — the
// phenomenon illustrated by Figure 1 of the paper.
//
// Layout (source 0):
//
//	0 ── 1 (v2) ── 4 (u2)
//	└─── 2 (v1) ── 3 (u1)
//	          └─── 4 (u2)   ← cross edge
//
// Naive BFS parents: u2 picks its smallest upper neighbor v2=1, u1
// picks v1=2. All of u1, u2, v1, v2 get rank 1 and the cross edge
// v1–u2 violates the induced-matching property. The GST construction
// instead lets v1 adopt both u1 and u2 (taking rank 2), which is
// collision-free.
func FigureOneGadget() *graph.Graph {
	b := graph.NewBuilder(5)
	b.SetName("figure1-gadget")
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(1, 4)
	return b.Build()
}

// FigureOneGraph returns a larger Figure 1-style example: three
// stacked gadgets joined by paths, producing multiple ranks and
// nontrivial fast stretches for visualization (cmd/gstviz).
func FigureOneGraph() *graph.Graph {
	b := graph.NewBuilder(15)
	b.SetName("figure1")
	// Gadget A: 0-(1,2), 2-(3,4), 1-4.
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(1, 4)
	// Path tails from 3 and 4 (fast stretches).
	b.AddEdge(3, 5)
	b.AddEdge(5, 6)
	b.AddEdge(4, 7)
	b.AddEdge(7, 8)
	// Gadget B hanging off 6 and 8 (same level): 6-(9,10), 8-(11),
	// with cross edges creating rank interactions.
	b.AddEdge(6, 9)
	b.AddEdge(6, 10)
	b.AddEdge(8, 11)
	b.AddEdge(8, 10)
	// Deeper diamond: 9-12, 10-12, 11-13, 12-14, 13-14.
	b.AddEdge(9, 12)
	b.AddEdge(10, 12)
	b.AddEdge(11, 13)
	b.AddEdge(12, 14)
	b.AddEdge(13, 14)
	return b.Build()
}
