package radiocast_test

// Facade-level Options.Source tests: every Broadcast* entry point must
// start the wave at opts.Source — the previously documented "broadcasts
// from node 0 regardless" limitation is gone. The lollipop's tail end
// is the worst-placed source (the wave must cross the whole tail before
// flooding the clique), and a wrong origin changes the round count's
// lower bound, so completion from there is the end-to-end check.

import (
	"testing"

	"radiocast"
)

func TestOptionsSourceHonored(t *testing.T) {
	g := radiocast.NewClusterChain(6, 6)
	src := radiocast.NodeID(g.N() - 1)
	opts := radiocast.Options{Source: src, Seed: 7}

	cases := []struct {
		name string
		run  func() (radiocast.Result, error)
	}{
		{"decay", func() (radiocast.Result, error) { return radiocast.DecayBroadcast(g, opts) }},
		{"cr", func() (radiocast.Result, error) { return radiocast.CRBroadcast(g, opts) }},
		{"known-topology", func() (radiocast.Result, error) { return radiocast.BroadcastKnownTopology(g, opts) }},
		{"cd", func() (radiocast.Result, error) { return radiocast.BroadcastCD(g, opts) }},
		{"k", func() (radiocast.Result, error) { return radiocast.BroadcastK(g, 2, opts) }},
		{"kcd", func() (radiocast.Result, error) { return radiocast.BroadcastKCD(g, 2, opts) }},
	}
	for _, tc := range cases {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Completed {
			t.Errorf("%s: broadcast from source %d did not complete", tc.name, src)
		}
	}
}

// TestOptionsSourceAdaptive covers the adaptive wrappers: epoch 0 must
// broadcast from opts.Source, and the retry layer must still complete a
// far-source broadcast under packet loss.
func TestOptionsSourceAdaptive(t *testing.T) {
	g := radiocast.NewClusterChain(6, 6)
	src := radiocast.NodeID(g.N() - 1)
	opts := radiocast.Options{Source: src, Seed: 7, Adaptive: true,
		Channel: radiocast.ErasureChannel(0.2, 11)}

	for _, tc := range []struct {
		name string
		run  func() (radiocast.Result, error)
	}{
		{"decay", func() (radiocast.Result, error) { return radiocast.DecayBroadcast(g, opts) }},
		{"cr", func() (radiocast.Result, error) { return radiocast.CRBroadcast(g, opts) }},
		{"known-topology", func() (radiocast.Result, error) { return radiocast.BroadcastKnownTopology(g, opts) }},
		{"cd", func() (radiocast.Result, error) { return radiocast.BroadcastCD(g, opts) }},
		{"kcd", func() (radiocast.Result, error) { return radiocast.BroadcastKCD(g, 2, opts) }},
	} {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Completed {
			t.Errorf("%s: adaptive broadcast from source %d under loss did not complete", tc.name, src)
		}
		if res.Epochs < 1 {
			t.Errorf("%s: adaptive run reported Epochs = %d", tc.name, res.Epochs)
		}
	}
}

// TestSourceOutOfRange pins the facade's validation of Options.Source.
func TestSourceOutOfRange(t *testing.T) {
	g := radiocast.NewPath(8)
	if _, err := radiocast.DecayBroadcast(g, radiocast.Options{Source: 8}); err == nil {
		t.Error("source == n accepted")
	}
	if _, err := radiocast.DecayBroadcast(g, radiocast.Options{Source: -1}); err == nil {
		t.Error("negative source accepted")
	}
}
