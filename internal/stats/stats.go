// Package stats provides the summary statistics, least-squares fits,
// and table rendering used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of measurements.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P90            float64
	SuccessCount   int
	AttemptedCount int
}

// Summarize computes a Summary. successes/attempts track w.h.p.
// experiments (failed runs are excluded from the sample by callers).
func Summarize(xs []float64, successes, attempts int) Summary {
	s := Summary{N: len(xs), SuccessCount: successes, AttemptedCount: attempts}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-quantile (0..1) of a sorted sample by
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fit is a least-squares linear fit y = Slope·x + Intercept with the
// coefficient of determination R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y against x.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{R2: math.NaN()}
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{R2: math.NaN()}
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		d := y[i] - (f.Slope*x[i] + f.Intercept)
		ssRes += d * d
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f
}

// PowerFit fits y = a·x^b via a log-log linear fit and returns
// (exponent b, R2 of the log-log fit). All inputs must be positive.
func PowerFit(x, y []float64) (exponent, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	f := LinearFit(lx, ly)
	return f.Slope, f.R2
}

// Table is a rendered experiment table.
type Table struct {
	Title   string
	Comment string
	Header  []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.Comment != "" {
		fmt.Fprintf(&sb, "%s\n", t.Comment)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}
