// Package radiocast is a from-scratch implementation of
//
//	Ghaffari, Haeupler, Khabbazian:
//	"Randomized Broadcast in Radio Networks with Collision Detection"
//	(PODC 2013; full version arXiv:1404.0780),
//
// together with the synchronous radio network simulator, the
// substrates (Decay, gathering spanning trees, recruiting, random
// linear network coding), and the baselines the paper compares
// against.
//
// This package is the public facade: one call per headline result.
//
//   - BroadcastCD — Theorem 1.1: single-message broadcast, unknown
//     topology, collision detection, O(D + polylog n) rounds.
//   - BroadcastKnownTopology — the [7]-style O(D + log^2 n) broadcast
//     atop a centrally constructed GST (the known-structure regime).
//   - BroadcastK — Theorem 1.2: k messages, known topology, RLNC,
//     O(D + k log n + log^2 n) rounds.
//   - BroadcastKCD — Theorem 1.3: k messages, unknown topology with
//     collision detection, O(D + k log n + polylog n) rounds.
//   - BuildGST / BuildGSTDistributed — gathering spanning trees,
//     centralized ([7]) and distributed (Theorem 2.1 + Lemma 3.10).
//   - DecayBroadcast / CRBroadcast — the prior-art baselines.
//
// Every broadcast accepts an adversarial channel via Options.Channel
// (packet loss, jamming, unreliable collision detection, radio
// faults — see ErasureChannel, NoisyCDChannel, JammerChannel,
// FaultChannel, StackChannels); nil is the paper's ideal channel.
// Options.Adaptive additionally wraps the run in the loss-adaptive
// retry layer (internal/adapt): the schedule is re-executed in epochs,
// each re-layering from every already-informed radio, until the
// broadcast completes — closing the completion cliffs the one-shot
// theorem schedules hit under loss and late radio wakeups.
//
// All functions are deterministic given (graph, options, seed). See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results.
package radiocast

import (
	"fmt"

	"radiocast/internal/adapt"
	"radiocast/internal/bitvec"
	"radiocast/internal/channel"
	"radiocast/internal/geo"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/harness"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
)

// Graph re-exports the workload graph type; construct instances with
// the generators below or graph.NewBuilder via BuildGraph.
type Graph = graph.Graph

// NodeID identifies a node (0..N-1).
type NodeID = graph.NodeID

// Generators for common workloads (see internal/graph for the full
// set).
var (
	// NewPath returns the n-node path (diameter n-1).
	NewPath = graph.Path
	// NewGrid returns the rows x cols grid.
	NewGrid = graph.Grid
	// NewClusterChain returns a chain of cliques — the workload where
	// collision-detection broadcast wins by the largest factor.
	NewClusterChain = graph.ClusterChain
	// NewUnitDisk returns a random unit-disk (sensor field) graph.
	NewUnitDisk = graph.UnitDisk
	// NewGNP returns a connected Erdős–Rényi sample.
	NewGNP = graph.GNP
)

// Geometric layouts (internal/geo): deterministic seeded point sets in
// the unit square whose unit-disk graphs become engine workloads via
// UnitDiskGraph, whose positions feed RangeErasureChannel, and whose
// motion is driven by NewWaypoint.
var (
	// NewUniformLayout returns n points i.i.d. uniform in the unit
	// square.
	NewUniformLayout = geo.Uniform
	// NewClusteredLayout returns n points grouped around `clusters`
	// uniformly placed centers with the given spread.
	NewClusteredLayout = geo.Clustered
	// NewWaypoint attaches a random-waypoint mobility stepper to a
	// layout (Step/Advance mutate positions in place).
	NewWaypoint = geo.NewWaypoint
	// GeoConnectivityRadius is the radius at which a uniform layout's
	// unit-disk graph is connected w.h.p.
	GeoConnectivityRadius = geo.ConnectivityRadius
)

// Layout re-exports the geometric point set (see internal/geo).
type Layout = geo.Layout

// UnitDiskGraph materialises the unit-disk graph of a layout at the
// given radius through the grid-bucketed streaming builder (no O(n²)
// pair scan), stitching disconnected components so the result is a
// valid broadcast workload.
func UnitDiskGraph(l *Layout, radius float64, seed uint64) *Graph {
	return graph.BuildConnected(geo.NewDisk(l, radius), seed)
}

// RangeErasureChannel returns the position-aware quasi-unit-disk loss
// model over a layout: reliable within inner, erased with linearly
// distance-ramped probability between inner and outer, dead beyond
// outer. The layout is aliased — waypoint motion shifts the loss
// field immediately. Pair with a graph built at the outer radius.
func RangeErasureChannel(l *Layout, inner, outer float64, seed uint64) Channel {
	return channel.NewRangeErasure(l.X, l.Y, inner, outer, seed)
}

// Channel is the pluggable channel-adversity interface of the engine:
// a model of packet loss, jamming, unreliable collision detection, or
// radio faults that mediates every delivery. Construct instances with
// the *Channel builders below (or internal/channel directly); a nil
// Channel is the ideal synchronous channel of the paper. Channels
// carry per-run state — build a fresh one for every run.
type Channel = radio.Channel

// ErasureChannel returns a per-link loss channel: each (link, round)
// delivery is erased independently with probability p.
func ErasureChannel(p float64, seed uint64) Channel { return channel.NewErasure(p, seed) }

// NoisyCDChannel returns an unreliable collision-detection channel: a
// true ⊤ is missed with probability miss, silence becomes a spurious ⊤
// with probability spurious (per listener, per round).
func NoisyCDChannel(miss, spurious float64, seed uint64) Channel {
	return channel.NewNoisyCD(miss, spurious, seed)
}

// JammerChannel returns a budgeted wide-band jammer. Oblivious
// (adaptive=false) jams each round with probability rate; adaptive
// jams exactly the rounds with traffic (busiest-slot policy). Each
// jammed round costs one unit of budget (negative = unlimited).
func JammerChannel(budget int64, rate float64, adaptive bool, seed uint64) Channel {
	if adaptive {
		return channel.NewAdaptiveJammer(budget, 1, seed)
	}
	return channel.NewJammer(budget, rate, seed)
}

// FaultChannel returns a random radio-fault channel: every node except
// the source independently wakes late (uniform in [1, maxDelay]) with
// probability lateFrac and crashes (uniform in [1, horizon]) with
// probability crashFrac.
func FaultChannel(n int, source NodeID, lateFrac float64, maxDelay int64, crashFrac float64, horizon int64, seed uint64) Channel {
	return channel.RandomFaults(n, source, lateFrac, maxDelay, crashFrac, horizon, seed)
}

// StackChannels composes several channel models into one: losses OR
// together and observations flow through every model in order — so
// place a FaultChannel last, after observation-injecting models
// (JammerChannel, NoisyCDChannel's spurious ⊤), to keep dead radios
// fully deaf.
func StackChannels(chs ...Channel) Channel { return channel.Stack(chs) }

// Options configures a protocol run.
type Options struct {
	// Source is the broadcasting node (default 0). Every Broadcast*
	// runner, adaptive or not, starts the wave from it; for the
	// k-message broadcasts it is the node initially holding all k
	// messages, and BuildGSTDistributed roots the tree at it.
	Source NodeID
	// Seed drives all protocol randomness (runs are reproducible).
	Seed uint64
	// Scale multiplies every Θ(·) schedule constant (default 1; raise
	// it to push the empirical success probability toward 1 at tiny n).
	Scale int
	// RoundLimit caps the simulated rounds (0 = the protocol's own
	// schedule budget).
	RoundLimit int64
	// Channel, when non-nil, perturbs every delivery (loss, jamming,
	// unreliable CD, radio faults). nil is the ideal channel.
	Channel Channel
	// PipelinedBoundaries switches the distributed GST construction's
	// segment B to the even/odd pipelined schedule of Section 2.2.4
	// (O(D log⁴ n) instead of O(D log⁵ n)). Applies to
	// BuildGSTDistributed directly, and to BroadcastCD / BroadcastKCD
	// inside every ring's GST build — there it takes effect only when
	// it shortens the build (narrow rings already run an optimal
	// lockstep; see rings.Config.SetPipelined).
	PipelinedBoundaries bool
	// Adaptive wraps the broadcast in the loss-adaptive retry layer
	// (internal/adapt): if the run's schedule ends with radios still
	// uninformed — packet loss starved them, or they woke after the
	// one-shot wave passed — the stack is re-executed in epochs, each
	// epoch re-layering from every already-informed radio as an
	// additional source, until the broadcast completes or MaxEpochs
	// runs out. Ideal-channel runs complete in their first epoch, which
	// is byte-identical to the non-adaptive run. Supported by
	// BroadcastCD, BroadcastKCD, BroadcastKnownTopology,
	// DecayBroadcast, and CRBroadcast.
	Adaptive bool
	// MaxEpochs caps the retry epochs when Adaptive is set; 0 retries
	// until done (bounded by adapt.UntilDoneCap). Ignored otherwise.
	MaxEpochs int
}

// policy maps the adaptive options onto the retry layer's budget:
// RoundLimit becomes the total-round cap across epochs.
func (o Options) policy() adapt.Policy {
	return adapt.Policy{MaxEpochs: o.MaxEpochs, MaxRounds: o.RoundLimit}
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

// Result reports a completed broadcast.
type Result struct {
	// Rounds is the number of synchronous rounds until every node held
	// (and, for coded runs, decoded) every message.
	Rounds int64
	// Completed is false if the round limit elapsed first.
	Completed bool
	// Dropped and Jammed are the channel-adversity counters: deliveries
	// erased by the channel and observations whose class it changed
	// (both zero on the ideal channel).
	Dropped int64
	Jammed  int64
	// Epochs is the number of retry epochs the adaptive layer executed
	// (>= 1 when Options.Adaptive was set; 0 on non-adaptive runs). An
	// adaptive run with Epochs == 1 completed its original schedule
	// without any re-layering.
	Epochs int
}

// adaptiveResult folds an adaptive outcome into the facade Result.
func adaptiveResult(out adapt.Outcome) Result {
	return Result{Rounds: out.Rounds, Completed: out.Completed,
		Dropped: out.Stats.Dropped, Jammed: out.Stats.Jammed, Epochs: out.Epochs}
}

// BroadcastCD runs Theorem 1.1: single-message broadcast over unknown
// topology using collision detection (collision-wave layering, ring
// decomposition, distributed GSTs, fast/slow schedule, Decay
// handoffs).
func BroadcastCD(g *Graph, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	d := graph.Eccentricity(g, opts.Source)
	cfg := rings.DefaultConfig(g.N(), d, 0, opts.scale())
	cfg.SetPipelined(opts.PipelinedBoundaries)
	if opts.Adaptive {
		a := harness.NewAdaptiveTheorem11(g, cfg, harness.EpochChannel(opts.Channel), opts.Seed, opts.Source)
		return adaptiveResult(adapt.Run(a, opts.policy())), nil
	}
	res := harness.RunTheorem11OnCfg(g, cfg, opts.Channel, opts.Seed, opts.Source)
	return Result{Rounds: res.Rounds, Completed: res.Completed,
		Dropped: res.Stats.Dropped, Jammed: res.Stats.Jammed}, nil
}

// BroadcastKnownTopology runs the O(D + log^2 n) single-message
// broadcast atop a centrally constructed GST — the regime in which
// every node knows the topology ([7], used as the paper's black box).
func BroadcastKnownTopology(g *Graph, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	if opts.Adaptive {
		a := harness.NewAdaptiveGSTSingle(g, false, harness.EpochChannel(opts.Channel), opts.Seed, opts.Source)
		return adaptiveResult(adapt.Run(a, opts.policy())), nil
	}
	limit := opts.RoundLimit
	if limit == 0 {
		limit = 1 << 24
	}
	rounds, ok, st := harness.NewGSTSingleRun(g, false, opts.Source).Run(opts.Channel, opts.Seed, limit)
	return Result{Rounds: rounds, Completed: ok, Dropped: st.Dropped, Jammed: st.Jammed}, nil
}

// BroadcastK runs Theorem 1.2: k-message broadcast with random linear
// network coding atop the MMV GST schedule, known topology.
func BroadcastK(g *Graph, k int, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("radiocast: k must be positive, got %d", k)
	}
	if opts.Adaptive {
		return Result{}, fmt.Errorf("radiocast: Options.Adaptive is not supported by BroadcastK (use BroadcastKCD for adaptive k-message broadcast)")
	}
	limit := opts.RoundLimit
	if limit == 0 {
		limit = 1 << 24
	}
	rounds, ok, st := harness.NewGSTMultiRun(g, k, opts.Source).Run(opts.Channel, opts.Seed, limit)
	return Result{Rounds: rounds, Completed: ok, Dropped: st.Dropped, Jammed: st.Jammed}, nil
}

// BroadcastKCD runs Theorem 1.3: k-message broadcast over unknown
// topology with collision detection (ring pipeline, per-ring RLNC,
// fountain handoffs).
func BroadcastKCD(g *Graph, k int, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("radiocast: k must be positive, got %d", k)
	}
	d := graph.Eccentricity(g, opts.Source)
	cfg := rings.DefaultConfig(g.N(), d, k, opts.scale())
	cfg.SetPipelined(opts.PipelinedBoundaries)
	if opts.Adaptive {
		a := harness.NewAdaptiveTheorem13(g, cfg, harness.EpochChannel(opts.Channel), opts.Seed, opts.Source)
		return adaptiveResult(adapt.Run(a, opts.policy())), nil
	}
	rounds, ok, st := harness.RunTheorem13OnCfg(g, cfg, opts.Channel, opts.Seed, opts.Source)
	return Result{Rounds: rounds, Completed: ok, Dropped: st.Dropped, Jammed: st.Jammed}, nil
}

// DecayBroadcast runs the classic BGI Decay baseline,
// O(D log n + log^2 n).
func DecayBroadcast(g *Graph, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	if opts.Adaptive {
		a := harness.NewAdaptiveDecay(g, harness.EpochChannel(opts.Channel), opts.Seed, opts.Source)
		return adaptiveResult(adapt.Run(a, opts.policy())), nil
	}
	limit := opts.RoundLimit
	if limit == 0 {
		limit = 1 << 24
	}
	rounds, ok, st := harness.NewDecayRun(g, opts.Source).Run(opts.Channel, opts.Seed, limit)
	return Result{Rounds: rounds, Completed: ok, Dropped: st.Dropped, Jammed: st.Jammed}, nil
}

// CRBroadcast runs the Czumaj–Rytter-shaped baseline,
// O(D log(n/D) + log^2 n).
func CRBroadcast(g *Graph, opts Options) (Result, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return Result{}, err
	}
	d := graph.Eccentricity(g, opts.Source)
	if opts.Adaptive {
		a := harness.NewAdaptiveCR(g, d, harness.EpochChannel(opts.Channel), opts.Seed, opts.Source)
		return adaptiveResult(adapt.Run(a, opts.policy())), nil
	}
	limit := opts.RoundLimit
	if limit == 0 {
		limit = 1 << 24
	}
	rounds, ok, st := harness.NewCRRun(g, d, opts.Source).Run(opts.Channel, opts.Seed, limit)
	return Result{Rounds: rounds, Completed: ok, Dropped: st.Dropped, Jammed: st.Jammed}, nil
}

// GST is a constructed gathering spanning tree with per-node levels,
// ranks, parents, and virtual distances.
type GST struct {
	// Tree is the underlying ranked BFS forest.
	Tree *gst.Tree
	// VirtualDistance[v] is v's distance in the virtual graph G'.
	VirtualDistance []int32
	// ConstructionRounds is 0 for centralized construction.
	ConstructionRounds int64
}

// BuildGST constructs a GST centrally (known topology) and validates
// it.
func BuildGST(g *Graph, roots ...NodeID) (*GST, error) {
	if len(roots) == 0 {
		roots = []NodeID{0}
	}
	tree := gst.Construct(g, roots...)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("radiocast: constructed GST invalid: %w", err)
	}
	return &GST{Tree: tree, VirtualDistance: gst.VirtualDistances(tree)}, nil
}

// BuildGSTDistributed runs the Theorem 2.1 distributed construction
// (with Lemma 3.10 virtual distances) on the simulator and validates
// the result. It works without collision detection (Decay layering).
func BuildGSTDistributed(g *Graph, opts Options) (*GST, error) {
	if err := checkGraph(g, opts.Source); err != nil {
		return nil, err
	}
	d := graph.Eccentricity(g, opts.Source)
	cfg := gstdist.DefaultConfig(g.N(), d, opts.scale(), gstdist.LayerDecay, true)
	cfg.PipelinedBoundaries = opts.PipelinedBoundaries
	nw := radio.New(g, radio.Config{})
	protos := make([]*gstdist.Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = gstdist.New(cfg, NodeID(v), NodeID(v) == opts.Source, 0,
			rng.New(opts.Seed, uint64(v)))
		nw.SetProtocol(NodeID(v), protos[v])
	}
	nw.Run(cfg.TotalRounds())
	tree := gst.NewTree(g, []NodeID{opts.Source})
	vdist := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		res := protos[v].Result()
		tree.Level[v] = res.Level
		tree.Parent[v] = res.Parent
		tree.Rank[v] = res.Rank
		vdist[v] = res.Vdist
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("radiocast: distributed GST invalid (raise Options.Scale): %w", err)
	}
	return &GST{Tree: tree, VirtualDistance: vdist, ConstructionRounds: cfg.TotalRounds()}, nil
}

// RandomMessages generates k reproducible l-bit payloads (for use with
// the coded broadcasts in examples and tests).
func RandomMessages(k, l int, seed uint64) []rlnc.Message {
	r := rng.New(seed, 0x6d67)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	return msgs
}

// ScheduleInfo exposes the per-node MMV schedule inputs of a GST.
func (t *GST) ScheduleInfo() []mmv.NodeInfo { return mmv.InfoFromTree(t.Tree) }

func checkGraph(g *Graph, source NodeID) error {
	if g == nil || g.N() == 0 {
		return fmt.Errorf("radiocast: empty graph")
	}
	if int(source) >= g.N() || source < 0 {
		return fmt.Errorf("radiocast: source %d out of range [0,%d)", source, g.N())
	}
	if !graph.IsConnected(g) {
		return fmt.Errorf("radiocast: graph must be connected")
	}
	return nil
}
