// Package exp is the experiment-orchestration subsystem: a declarative
// cell model (experiment × configuration × seed), a worker-pool runner
// that fans cells across CPUs with per-cell timeout/round-limit guards,
// and machine-readable bench artifacts.
//
// A Cell is the atomic unit of measurement — one protocol run (or one
// batch of micro-trials) under one configuration with one seed. A Plan
// couples an ordered cell list with an Assemble function that folds the
// per-cell results into a stats.Table. Because the runner stores each
// result at its cell's index, the merged result slice — and therefore
// the assembled table — is identical whether the cells ran on one
// worker or sixteen: output is ordered by cell key, never by
// completion order.
package exp

import (
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"radiocast/internal/obs"
	"radiocast/internal/stats"
)

// Key identifies one cell: which experiment, which configuration
// within it, and which seed.
type Key struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Seed       uint64 `json:"seed"`
}

// String renders the key as "E1/chain=32/decay seed=2".
func (k Key) String() string {
	return fmt.Sprintf("%s/%s seed=%d", k.Experiment, k.Config, k.Seed)
}

// Result is the outcome of one cell.
type Result struct {
	Key Key `json:"key"`
	// Rounds is the simulated round count (0 for cells that measure
	// something other than a protocol run).
	Rounds int64 `json:"rounds"`
	// Completed reports protocol success within the round limit.
	Completed bool `json:"completed"`
	// Value is an experiment-specific scalar (success count, rate, ...).
	Value float64 `json:"value,omitempty"`
	// Dropped and Jammed are the channel-adversity counters of the run
	// (zero on the ideal channel): deliveries erased by the channel and
	// observations whose class the channel changed.
	Dropped int64 `json:"dropped,omitempty"`
	Jammed  int64 `json:"jammed,omitempty"`
	// BusyRounds, SilentRounds and MaxFrontier are the engine's frontier
	// counters (radio.Stats): executed rounds with/without a surviving
	// transmitter and the peak per-round transmitter count. Populated by
	// the cells that expose full engine stats (the E19 scale sweep).
	BusyRounds   int64 `json:"busy_rounds,omitempty"`
	SilentRounds int64 `json:"silent_rounds,omitempty"`
	MaxFrontier  int64 `json:"max_frontier,omitempty"`
	// Epochs and Covered describe adaptive-retry cells (adapt.Outcome):
	// epochs executed and nodes informed when the policy stopped.
	Epochs  int `json:"epochs,omitempty"`
	Covered int `json:"covered,omitempty"`
	// MemBytes is the cell's measured live-heap growth (scale cells:
	// graph + engine + protocol state), and PeakRSS the process peak
	// resident set sampled after the run. Both are environment-dependent
	// measurements, not reproducible outputs: they ride the artifact for
	// capacity planning and are zeroed by Canonical alongside the wall
	// clocks.
	MemBytes int64 `json:"mem_bytes,omitempty"`
	PeakRSS  int64 `json:"peak_rss_bytes,omitempty"`
	// Err is set when the cell timed out or panicked.
	Err string `json:"error,omitempty"`
	// Wall is the cell's wall-clock execution time.
	Wall time.Duration `json:"wall_ns"`
	// Payload carries experiment-specific structured data to Assemble;
	// it is not serialized into artifacts.
	Payload any `json:"-"`
}

// Rounds is a convenience Result for plain protocol runs.
func Rounds(rounds int64, completed bool) Result {
	return Result{Rounds: rounds, Completed: completed}
}

// Value is a convenience Result for scalar measurements.
func Value(v float64) Result {
	return Result{Completed: true, Value: v}
}

// RoundsOn is Rounds plus the channel-adversity counters of the run.
func RoundsOn(rounds int64, completed bool, dropped, jammed int64) Result {
	return Result{Rounds: rounds, Completed: completed, Dropped: dropped, Jammed: jammed}
}

// Cell is one schedulable unit of work.
type Cell struct {
	Key Key
	// RoundLimit is the cell's default simulated-round cap, passed to
	// Run (possibly lowered by Runner.RoundLimit). Zero means the
	// experiment's own fixed budget applies.
	RoundLimit int64
	// Cost is an estimated execution weight (simulated rounds × nodes
	// is the usual proxy). RunAll schedules costlier cells first so a
	// handful of long cells cannot serialize the tail of a sweep; zero
	// means unknown (scheduled after every costed cell, in plan order).
	Cost int64
	// Run executes the cell. It must be deterministic given the cell's
	// construction (the runner may execute it on any worker) and must
	// not mutate state shared with other cells.
	Run func(roundLimit int64) Result
}

// Plan is an experiment compiled to cells plus a table assembler.
type Plan struct {
	ID    string
	Title string
	Cells []Cell
	// Assemble folds the results (indexed exactly like Cells) into the
	// rendered table. It runs on the caller's goroutine.
	Assemble func(results []Result) *stats.Table
}

// Index maps results by key for order-independent lookup in Assemble.
func Index(results []Result) map[Key]Result {
	m := make(map[Key]Result, len(results))
	for _, r := range results {
		m[r.Key] = r
	}
	return m
}

// Runner executes plans. The zero value runs sequentially with no
// guards.
type Runner struct {
	// Parallelism is the worker count: 1 (or less than 0) runs on the
	// calling goroutine; 0 means GOMAXPROCS.
	Parallelism int
	// Timeout is the per-cell wall-clock guard; 0 disables it. A cell
	// that exceeds it yields a Result with Err set (its goroutine is
	// abandoned; protocol runs are round-limited, so they terminate).
	Timeout time.Duration
	// RoundLimit, when positive, lowers every cell's round cap.
	RoundLimit int64
	// Metrics, when non-nil, accumulates per-experiment sweep counters
	// (cells, errors, rounds, wall-time histogram) under the
	// radiocast_exp_* names. Counters are atomic, so any worker count is
	// fine; nil costs nothing.
	Metrics *obs.Registry
	// Log, when non-nil, emits one structured cell.done event per
	// executed cell. nil costs nothing.
	Log *slog.Logger
}

func (r *Runner) workers(cells int) int {
	w := r.Parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every cell of the plan and returns results indexed
// exactly like p.Cells, regardless of completion order.
func (r *Runner) Run(p *Plan) []Result {
	results := make([]Result, len(p.Cells))
	w := r.workers(len(p.Cells))
	if w == 1 {
		for i := range p.Cells {
			results[i] = r.runCell(&p.Cells[i])
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = r.runCell(&p.Cells[i])
			}
		}()
	}
	for i := range p.Cells {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// RunTable executes the plan and assembles its table.
func (r *Runner) RunTable(p *Plan) (*stats.Table, []Result) {
	results := r.Run(p)
	return p.Assemble(results), results
}

// RunAll executes every cell of every plan through ONE worker pool —
// the cross-experiment scheduler. A per-plan Run serializes sweeps
// behind their slowest experiment (workers idle while the last long
// cells of one plan drain before the next plan starts); RunAll instead
// admits all cells at once, ordered longest-first by Cell.Cost, so
// long cells start early and short cells backfill the stragglers.
//
// Results are stored at [plan][cell] exactly like the input slices, so
// per-plan assembly — and therefore all rendered output — is
// byte-identical to sequential execution regardless of worker count or
// admission order.
func (r *Runner) RunAll(plans []*Plan) [][]Result {
	results := make([][]Result, len(plans))
	type ref struct{ plan, cell int }
	var refs []ref
	for pi, p := range plans {
		results[pi] = make([]Result, len(p.Cells))
		for ci := range p.Cells {
			refs = append(refs, ref{pi, ci})
		}
	}
	// Longest-cell-first admission; stable, so zero-cost cells keep
	// plan order among themselves.
	sort.SliceStable(refs, func(i, j int) bool {
		return plans[refs[i].plan].Cells[refs[i].cell].Cost >
			plans[refs[j].plan].Cells[refs[j].cell].Cost
	})
	w := r.workers(len(refs))
	if w == 1 {
		for _, rf := range refs {
			results[rf.plan][rf.cell] = r.runCell(&plans[rf.plan].Cells[rf.cell])
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan ref)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rf := range next {
				results[rf.plan][rf.cell] = r.runCell(&plans[rf.plan].Cells[rf.cell])
			}
		}()
	}
	for _, rf := range refs {
		next <- rf
	}
	close(next)
	wg.Wait()
	return results
}

func (r *Runner) runCell(c *Cell) Result {
	limit := c.RoundLimit
	if r.RoundLimit > 0 && (limit == 0 || r.RoundLimit < limit) {
		limit = r.RoundLimit
	}
	start := time.Now()
	if r.Timeout <= 0 {
		res := safeRun(c, limit)
		res.Key = c.Key
		res.Wall = time.Since(start)
		r.observe(res)
		return res
	}
	done := make(chan Result, 1)
	go func() { done <- safeRun(c, limit) }()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case res := <-done:
		res.Key = c.Key
		res.Wall = time.Since(start)
		r.observe(res)
		return res
	case <-timer.C:
		res := Result{
			Key:  c.Key,
			Err:  fmt.Sprintf("timeout after %v", r.Timeout),
			Wall: time.Since(start),
		}
		r.observe(res)
		return res
	}
}

// observe reports one finished cell to the runner's metrics and log.
// Measurement only — results are never altered, so instrumented and
// bare sweeps stay byte-identical.
func (r *Runner) observe(res Result) {
	if r.Metrics != nil {
		exp := obs.L("experiment", res.Key.Experiment)
		r.Metrics.Counter("radiocast_exp_cells_total", "experiment cells executed", exp).Inc()
		r.Metrics.Counter("radiocast_exp_rounds_total", "simulated rounds across cells", exp).Add(res.Rounds)
		if res.Err != "" {
			r.Metrics.Counter("radiocast_exp_cell_errors_total", "cells that timed out or panicked", exp).Inc()
		}
		r.Metrics.Histogram("radiocast_exp_cell_wall_seconds", "per-cell wall time",
			obs.DefTimeBuckets, exp).Observe(res.Wall.Seconds())
	}
	if r.Log != nil {
		// Debug: a sweep runs hundreds of cells; info level keeps the
		// per-experiment summaries (the CLI's) without the cell firehose.
		r.Log.Debug(obs.EventCellDone,
			"experiment", res.Key.Experiment,
			"config", res.Key.Config,
			"seed", res.Key.Seed,
			"rounds", res.Rounds,
			"completed", res.Completed,
			"wall_us", res.Wall.Microseconds(),
			"err", res.Err)
	}
}

// safeRun converts a cell panic into an error result so one bad cell
// cannot take down a whole sweep.
func safeRun(c *Cell, limit int64) (res Result) {
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{Err: fmt.Sprintf("panic: %v", rec)}
		}
	}()
	return c.Run(limit)
}
