package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources diverged: %d != %d", i, got, want)
		}
	}
}

func TestSourceDifferentSeedsDiverge(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestMixIsOrderSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix(1,2) == Mix(2,1); keys must be order-sensitive")
	}
	if Mix(1) == Mix(1, 0) {
		t.Fatal("Mix(1) == Mix(1,0); length must matter")
	}
}

func TestMixDeterministic(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Mix(a, b, c) == Mix(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeriveIndependence(t *testing.T) {
	root := NewStream(7)
	a := root.Derive(1, 100)
	b := root.Derive(1, 101)
	if a.Seed() == b.Seed() {
		t.Fatal("sibling streams share a seed")
	}
	// Deriving a child must not change the parent.
	again := root.Derive(1, 100)
	if a.Seed() != again.Seed() {
		t.Fatal("Derive is not purely functional")
	}
}

func TestUniformityCoarse(t *testing.T) {
	// Coarse chi-squared sanity check on 16 buckets.
	r := New(123)
	const draws = 1 << 16
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64()>>60]++
	}
	expected := float64(draws) / 16
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared = %.1f, suspiciously non-uniform", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestZeroStateAvoided(t *testing.T) {
	// Even for adversarial seeds the xoshiro state must be non-zero.
	for _, seed := range []uint64{0, ^uint64(0), 0x9e3779b97f4a7c15} {
		s := NewSource(seed)
		if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
			t.Fatalf("seed %#x produced all-zero state", seed)
		}
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkMix3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Mix(uint64(i), 42, 7)
	}
}
