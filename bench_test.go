package radiocast

// Benchmarks regenerating every experiment of EXPERIMENTS.md. Each
// benchmark reports simulated rounds as its primary metric
// (rounds/op); wall time measures the simulator, not the protocol.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The full sweeps (larger sizes, more seeds) are produced by
// cmd/radiobench.

import (
	"testing"

	"radiocast/internal/adapt"
	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/harness"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
)

// reportRounds runs fn b.N times and reports the mean simulated
// rounds per run.
func reportRounds(b *testing.B, fn func(seed uint64) (int64, bool)) {
	b.Helper()
	var total int64
	for i := 0; i < b.N; i++ {
		rounds, ok := fn(uint64(i))
		if !ok {
			b.Fatalf("run %d incomplete", i)
		}
		total += rounds
	}
	b.ReportMetric(float64(total)/float64(b.N), "rounds/op")
}

// E1/E2: single-message broadcast on the headline cluster-chain
// workload, one benchmark per protocol.

func BenchmarkE1_Decay_ClusterChain32x8(b *testing.B) {
	g := graph.ClusterChain(32, 8)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunDecay(g, seed, 1<<22)
	})
}

func BenchmarkE1_CR_ClusterChain32x8(b *testing.B) {
	g := graph.ClusterChain(32, 8)
	d := graph.Eccentricity(g, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunCR(g, d, seed, 1<<22)
	})
}

func BenchmarkE1_GSTBroadcast_ClusterChain32x8(b *testing.B) {
	g := graph.ClusterChain(32, 8)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunGSTSingle(g, false, seed, 1<<22)
	})
}

func BenchmarkE1_Theorem11Full_ClusterChain8x8(b *testing.B) {
	g := graph.ClusterChain(8, 8)
	d := graph.Eccentricity(g, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		res := harness.RunTheorem11(g, d, 1, seed)
		return res.Rounds, res.Completed
	})
}

func BenchmarkE2_DiameterScaling_GST(b *testing.B) {
	for _, chain := range []int{8, 32} {
		g := graph.ClusterChain(chain, 8)
		b.Run(g.Name(), func(b *testing.B) {
			reportRounds(b, func(seed uint64) (int64, bool) {
				return harness.RunGSTSingle(g, false, seed, 1<<22)
			})
		})
	}
}

// E3: distributed GST construction (fixed schedule; rounds are
// deterministic, wall time measures the simulator).
func BenchmarkE3_GSTConstruction_Grid4x8(b *testing.B) {
	tb := harness.E3GSTConstruction(1, true)
	if len(tb.Rows) == 0 {
		b.Fatal("no rows")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = harness.E3GSTConstruction(1, true)
	}
}

// E4: recruiting protocol.
func BenchmarkE4_Recruiting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E4Recruiting(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E5: assignment shrinkage.
func BenchmarkE5_AssignmentShrinkage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E5AssignmentShrinkage(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E6: sequential vs pipelined boundary construction (schedule ratio is
// fixed; wall time measures the simulator on both modes).
func BenchmarkE6_PipelinedBoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E6PipelinedBoundaries(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E7: Theorem 1.2 k-sweep.
func BenchmarkE7_MultiMessageKnown_Grid8x8(b *testing.B) {
	g := graph.Grid(8, 8)
	for _, k := range []int{4, 16} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			reportRounds(b, func(seed uint64) (int64, bool) {
				return harness.RunGSTMulti(g, k, seed, 1<<22)
			})
		})
	}
}

// E8: Theorem 1.3 full pipeline.
func BenchmarkE8_MultiMessageUnknown_Grid4x12(b *testing.B) {
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		rounds, ok, _ := harness.RunTheorem13(g, d, 8, 1, seed)
		return rounds, ok
	})
}

// E9: Decay under jamming (Lemma 3.2).
func BenchmarkE9_DecayMMV_Path64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E9DecayMMV(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E10: MMV GST schedule under jamming (Lemma 3.3).
func BenchmarkE10_MMVGST_Grid8x8(b *testing.B) {
	g := graph.Grid(8, 8)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunGSTSingle(g, true, seed, 1<<22)
	})
}

// E11: Decay progress probability (Lemma 2.2).
func BenchmarkE11_DecayProgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E11DecayProgress(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E12: RLNC infection/decoding (Def 3.8 / Prop 3.9).
func BenchmarkE12_RLNC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E12RLNC(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E13: loss-rate robustness sweep (adversarial channel subsystem).
func BenchmarkE13_LossSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E13LossSweep(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E14: jammer-budget robustness sweep.
func BenchmarkE14_JammerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E14JammerSweep(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// E15: unreliable-CD robustness sweep.
func BenchmarkE15_NoisyCDSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.E15NoisyCDSweep(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEngine_LossyChannel measures the adversarial delivery path
// (per-link erasure) against the nil-channel fast path on the same
// workload — the adverse path allocates only in the channel's keyed
// draws, never per round.
func BenchmarkEngine_LossyChannel_Decay(b *testing.B) {
	g := graph.ClusterChain(16, 8)
	reportRounds(b, func(seed uint64) (int64, bool) {
		rounds, ok, _ := harness.RunDecayOn(g, ErasureChannel(0.1, seed), seed, 1<<22)
		return rounds, ok
	})
}

// A1: slow-slot keying ablation.
func BenchmarkA1_VirtualDistanceAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.A1VirtualDistance(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// A2: coding vs routing ablation.
func BenchmarkA2_CodingVsRouting_Grid6x6(b *testing.B) {
	g := graph.Grid(6, 6)
	b.Run("rlnc-k8", func(b *testing.B) {
		reportRounds(b, func(seed uint64) (int64, bool) {
			return harness.RunGSTMulti(g, 8, seed, 1<<22)
		})
	})
	b.Run("routing-k8", func(b *testing.B) {
		reportRounds(b, func(seed uint64) (int64, bool) {
			return harness.RunGSTMultiRouting(g, 8, seed, 1<<22)
		})
	})
}

// A3: ring width ablation.
func BenchmarkA3_RingWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := harness.A3RingWidth(1, true)
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Engine fast-path benchmarks: these isolate the simulator hot loop
// (wake queue + CSR delivery pass) from protocol logic. Run with
// -benchmem: the steady-state round loop must not allocate — the ring
// wake buckets, reused pop buffer, and stamped hear/listen scratch
// replaced the historical map+heap queue (which allocated a bucket
// slice and a boxed heap key per round).

// BenchmarkEngine_DenseRounds drives every node of a dense graph every
// round (the worst case for the wake queue: n pushes and one bucket
// drain per round).
func BenchmarkEngine_DenseRounds_Grid32x32(b *testing.B) {
	g := graph.Grid(32, 32)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunDecay(g, seed, 1<<22)
	})
}

// BenchmarkEngine_SleepHeavy exercises the far-wake path: the MMV GST
// schedule sleeps nodes across slot periods, so wake-ups hop both the
// ring window and the far heap.
func BenchmarkEngine_SleepHeavy_Path256(b *testing.B) {
	g := graph.Path(256)
	reportRounds(b, func(seed uint64) (int64, bool) {
		return harness.RunGSTSingle(g, false, seed, 1<<22)
	})
}

// BenchmarkEngine_Theorem13 is the allocation stress test: the full
// Theorem 1.3 stack runs ~100k rounds with per-ring RLNC state. The
// history of this benchmark tracks the engine's perf work: ~791k
// allocs/op before the PR-1 fast path, ~33k after it, ~5.6k after the
// scratch-packet/solver work (the Fresh variant below), and ~3.3k
// with Reset reuse (bench/baseline.json pins 3331 at -benchtime 3x;
// the number is seed-dependent) — the run-reuse path every
// repeated-seed harness takes. Round counts are identical in all
// variants: a context run is bit-identical to a fresh run with the
// same seed.
func BenchmarkEngine_Theorem13_Grid4x12(b *testing.B) {
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	run := harness.NewTheorem13Run(g, d, 8, 1, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		rounds, ok, _ := run.Run(nil, seed)
		return rounds, ok
	})
}

// BenchmarkEngine_Theorem13_Fresh is the same workload without Reset
// reuse (construct-per-run): the difference against the benchmark
// above is the per-seed construction cost the reuse layer eliminates.
func BenchmarkEngine_Theorem13_Fresh_Grid4x12(b *testing.B) {
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		rounds, ok, _ := harness.RunTheorem13(g, d, 8, 1, seed)
		return rounds, ok
	})
}

// BenchmarkEngine_GSTPipelinedBuild runs E6's pipelined distributed
// construction through its reuse context (zero per-seed construction):
// several same-parity boundaries drive concurrently, so this is the
// alloc guard for the pipelined segment-B path — boundary machines and
// recruiting runs are built per window, never per round, and the
// baseline pins that per-run total.
func BenchmarkEngine_GSTPipelinedBuild_Grid4x8(b *testing.B) {
	g := graph.Grid(4, 8)
	d := graph.Eccentricity(g, 0)
	run := harness.NewGSTPipelinedRun(g, g.N(), d, 1, true)
	reportRounds(b, func(seed uint64) (int64, bool) {
		res := run.Run(seed)
		return res.Rounds, true
	})
}

// BenchmarkEngine_GSTSequentialBuild is the same workload on the
// sequential boundary schedule: the rounds/op gap against the
// benchmark above is E6's headline measurement.
func BenchmarkEngine_GSTSequentialBuild_Grid4x8(b *testing.B) {
	g := graph.Grid(4, 8)
	d := graph.Eccentricity(g, 0)
	run := harness.NewGSTPipelinedRun(g, g.N(), d, 1, false)
	reportRounds(b, func(seed uint64) (int64, bool) {
		res := run.Run(seed)
		return res.Rounds, true
	})
}

// BenchmarkEngine_DecayReuse measures the lightest reuse path: one
// DecayRun context across seeds — per-seed work is the round loop
// plus reseeding, nothing else.
func BenchmarkEngine_DecayReuse_ClusterChain16x8(b *testing.B) {
	g := graph.ClusterChain(16, 8)
	run := harness.NewDecayRun(g, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		rounds, ok, _ := run.Run(nil, seed, 1<<22)
		return rounds, ok
	})
}

// BenchmarkEngine_AdaptiveDecayReuse measures the adaptive retry
// layer's overhead on the ideal channel: every run completes in its
// first epoch, so the allocs/op delta against
// BenchmarkEngine_DecayReuse is the pure cost of the wrapper —
// carryover harvest and epoch accounting, nothing per round. The
// baseline pins that the retry layer keeps steady-state epochs on the
// reuse path's zero-rebuild budget.
func BenchmarkEngine_AdaptiveDecayReuse_ClusterChain16x8(b *testing.B) {
	g := graph.ClusterChain(16, 8)
	run := harness.NewAdaptiveDecay(g, nil, 0, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		run.Reseed(seed)
		out := adapt.Run(run, adapt.Policy{})
		return out.Rounds, out.Completed
	})
}

// BenchmarkEngine_AdaptiveTheorem11Loss is the multi-epoch guard: a
// Theorem 1.1 broadcast at per-link loss 0.3 needs 2-3 re-layering
// epochs to complete. Each epoch is a Reset-reused run of the
// already-built stack, so allocs/op must scale with the epoch count
// (per-node RNG reseeds, one channel Offset wrapper per extra epoch),
// never with the ~200k simulated rounds.
func BenchmarkEngine_AdaptiveTheorem11Loss_ClusterChain6x6(b *testing.B) {
	g := graph.ClusterChain(6, 6)
	d := graph.Eccentricity(g, 0)
	run := harness.NewAdaptiveTheorem11(g, rings.DefaultConfig(g.N(), d, 0, 1), nil, 0, 0)
	reportRounds(b, func(seed uint64) (int64, bool) {
		run.Reseed(seed)
		run.SetChannelFactory(harness.EpochChannel(channel.NewErasure(0.3, rng.Mix(seed, 0xe13))))
		out := adapt.Run(run, adapt.Policy{MaxEpochs: 16})
		return out.Rounds, out.Completed
	})
}

// BenchmarkEngine_DenseDecay is the million-node-engine guard: one
// full dense Decay broadcast over a streaming-built GNP-10^5 per op
// (construction + run — the E19 cell shape). allocs/op is dominated by
// the SoA state and engine buffers, all sized once per op: the round
// loop itself is allocation-free (TestDenseSteadyStateAllocsZero), so
// this number scales with n, never with rounds.
func BenchmarkEngine_DenseDecay_GNP100k(b *testing.B) {
	const n = 100_000
	g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
	reportRounds(b, func(seed uint64) (int64, bool) {
		pr := decay.NewDense(g, seed, 0)
		eng := radio.NewDense(g, radio.Config{}, pr)
		defer eng.Close()
		return eng.RunUntil(1<<20, pr.Done)
	})
}

// BenchmarkEngine_DenseDecayParallel_GNP100k is the same workload with
// the deterministic parallel delivery pass (Workers = 4): identical
// rounds/op by the byte-identity contract; the allocs/op delta against
// the sequential benchmark is the worker pool + per-partition buffers,
// a constant.
func BenchmarkEngine_DenseDecayParallel_GNP100k(b *testing.B) {
	const n = 100_000
	g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
	reportRounds(b, func(seed uint64) (int64, bool) {
		pr := decay.NewDense(g, seed, 0)
		eng := radio.NewDense(g, radio.Config{Workers: 4}, pr)
		defer eng.Close()
		return eng.RunUntil(1<<20, pr.Done)
	})
}

// BenchmarkEngine_DenseCR_GNP100k is the same E19 cell shape for the
// CR port: one full dense CR broadcast (FastDecay schedule, keyed
// draws) over the shared streaming GNP-10^5 per op. The schedule
// params hang off the source eccentricity, computed once outside the
// loop (the harness pays it per cell; here it would drown the signal).
func BenchmarkEngine_DenseCR_GNP100k(b *testing.B) {
	const n = 100_000
	g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
	p := cr.NewParams(n, graph.Eccentricity(g, 0))
	reportRounds(b, func(seed uint64) (int64, bool) {
		pr := cr.NewDense(g, p, seed, 0)
		eng := radio.NewDense(g, radio.Config{}, pr)
		defer eng.Close()
		return eng.RunUntil(1<<20, pr.Done)
	})
}

// BenchmarkEngine_DenseWave_GNP100k is the E19 cell shape for the
// collision wave: one full dense layering (CD on, horizon = source
// eccentricity — the wave completes in exactly that many rounds on the
// ideal channel) over the shared streaming GNP-10^5 per op. The wave
// is deterministic, so rounds/op is the eccentricity itself.
func BenchmarkEngine_DenseWave_GNP100k(b *testing.B) {
	const n = 100_000
	g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
	ecc := int64(graph.Eccentricity(g, 0))
	reportRounds(b, func(seed uint64) (int64, bool) {
		pr := beep.NewDenseWave(g, 0, ecc)
		eng := radio.NewDense(g, radio.Config{CollisionDetection: true}, pr)
		defer eng.Close()
		return eng.RunUntil(ecc, pr.Done)
	})
}

// BenchmarkEngine_DenseGST_GNP100k is the E21 cell shape for the
// structured GST broadcast: one full mmv.Dense run over the shared
// streaming GNP-10^5 per op. Tree construction, flattening, and the
// MMV schedule sit outside the loop (the build-once/broadcast-many
// split the daemon's pooled contexts exploit); allocs/op is the SoA
// protocol state + engine buffers, sized once per op.
func BenchmarkEngine_DenseGST_GNP100k(b *testing.B) {
	const n = 100_000
	g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
	f := gst.Flatten(gst.Construct(g, 0))
	s := mmv.NewSchedule(n)
	b.ResetTimer() // tree construction is the pooled, once-per-context cost
	reportRounds(b, func(seed uint64) (int64, bool) {
		pr := mmv.NewDense(g, f, s, seed, 0, false)
		eng := radio.NewDense(g, radio.Config{}, pr)
		defer eng.Close()
		return eng.RunUntil(1<<22, pr.Done)
	})
}

// BenchmarkEngine_StreamCSR_GNP100k isolates the streaming graph
// build (no Builder maps: degree pass + fill pass + per-row dedup) —
// the construction half of every E19 cell.
func BenchmarkEngine_StreamCSR_GNP100k(b *testing.B) {
	const n = 100_000
	for i := 0; i < b.N; i++ {
		g := graph.BuildConnected(graph.StreamGNP(n, 16.0/n, 0xe19), 0xe19)
		if g.N() != n {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkRunner compares the experiment orchestrator at different
// worker counts on one plan (E11 quick: 3 degrees × 200-trial cells).
// On a multicore machine the parallel variants shrink wall time; the
// assembled tables are identical by construction.
func BenchmarkRunner(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			runner := &exp.Runner{Parallelism: workers}
			for i := 0; i < b.N; i++ {
				tb, _ := runner.RunTable(harness.E11Plan(1, true))
				if len(tb.Rows) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
