// Command radiobench regenerates every experiment table of
// EXPERIMENTS.md.
//
// Usage:
//
//	radiobench [-seeds N] [-quick] [-format text|csv|markdown]
//	           [-only E1,E7] [-experiments E13,E14,E15] [-parallel]
//	           [-workers N] [-timeout 30s] [-roundlimit N] [-json FILE]
//
// Each experiment reproduces one theorem/lemma of the paper as a
// measured round-complexity table — plus the E13-E15 robustness sweeps
// over the adversarial channels of internal/channel; see
// EXPERIMENTS.md for the mapping and the expected shapes.
//
// Experiments are compiled to cell plans (internal/exp) and executed
// by a worker-pool runner: -parallel fans the (configuration × seed)
// cells of each experiment across GOMAXPROCS goroutines (-workers
// overrides the count). Results merge in cell-key order, so the table
// output on stdout is byte-identical to a sequential run; timing
// diagnostics go to stderr. -timeout and -roundlimit bound each cell's
// wall clock and simulated rounds. -json writes a machine-readable
// bench artifact with per-cell rounds and wall times ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"radiocast/internal/exp"
	"radiocast/internal/harness"
)

func main() {
	seeds := flag.Int("seeds", 3, "independent seeds per configuration")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	format := flag.String("format", "text", "output format: text, csv, or markdown")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	experiments := flag.String("experiments", "", "alias for -only")
	parallel := flag.Bool("parallel", false, "fan experiment cells across GOMAXPROCS workers")
	workers := flag.Int("workers", 0, "worker count; setting it implies -parallel (0 with -parallel = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock guard (0 = none)")
	roundLimit := flag.Int64("roundlimit", 0, "per-cell simulated-round cap (0 = experiment defaults)")
	jsonPath := flag.String("json", "", "write a JSON bench artifact to this file (\"-\" = stdout)")
	flag.Parse()

	if *only == "" {
		*only = *experiments
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runner := &exp.Runner{Parallelism: 1, Timeout: *timeout, RoundLimit: *roundLimit}
	if *parallel || *workers > 0 {
		runner.Parallelism = *workers // 0 = GOMAXPROCS
	}
	resolved := runner.Parallelism
	if resolved == 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	artifact := exp.NewArtifact(*seeds, *quick, resolved)

	ran := 0
	total := time.Duration(0)
	for _, e := range harness.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		plan := e.Plan(*seeds, *quick)
		tb, results := runner.RunTable(plan)
		elapsed := time.Since(start)
		total += elapsed
		artifact.Add(plan, tb, results, elapsed)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tb.CSV())
		case "markdown":
			fmt.Printf("### %s: %s\n\n%s\n", e.ID, e.Title, tb.Markdown())
		default:
			fmt.Printf("%s\n", tb.String())
		}
		fmt.Fprintf(os.Stderr, "[%s: %d cell(s), %d seed(s), %v]\n",
			e.ID, len(plan.Cells), *seeds, elapsed.Round(time.Millisecond))
		for _, r := range results {
			if r.Err != "" {
				fmt.Fprintf(os.Stderr, "[%s: cell %s failed: %s]\n", e.ID, r.Key, r.Err)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[total: %d experiment(s) in %v]\n", ran, total.Round(time.Millisecond))

	if *jsonPath != "" {
		blob, err := artifact.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal artifact: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write artifact: %v\n", err)
			os.Exit(1)
		}
	}
}
