package mmv

import (
	"math/rand"

	"radiocast/internal/decay"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
)

// SingleMessage is the single-message content layer: the [7]-style
// broadcast atop a GST used inside the rings of Theorem 1.1.
type SingleMessage struct {
	has bool
	msg decay.Message
}

var _ Content = (*SingleMessage)(nil)

// NewSingleMessage creates the layer; the source holds the message.
func NewSingleMessage(source bool, msg decay.Message) *SingleMessage {
	return &SingleMessage{has: source, msg: msg}
}

// Fresh implements Content.
func (s *SingleMessage) Fresh() radio.Packet {
	if !s.has {
		return nil
	}
	return s.msg
}

// OnReceive implements Content.
func (s *SingleMessage) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if m, ok := pkt.(decay.Message); ok && !s.has {
		s.has = true
		s.msg = m
	}
}

// Done implements Content: the node has the message.
func (s *SingleMessage) Done() bool { return s.has }

// Message returns the held message (zero value when !Done).
func (s *SingleMessage) Message() decay.Message { return s.msg }

// RLNC is the coded multi-message content layer of Section 3.3.2: a
// fresh transmission is a new random combination of everything
// received; receptions feed the buffer.
type RLNC struct {
	buf *rlnc.Buffer
	rng *rand.Rand
}

var _ Content = (*RLNC)(nil)

// NewRLNC creates the layer over an existing buffer (a source buffer
// preloaded with the k messages, or an empty receiver buffer).
func NewRLNC(buf *rlnc.Buffer, rng *rand.Rand) *RLNC {
	return &RLNC{buf: buf, rng: rng}
}

// Buffer exposes the underlying RLNC buffer.
func (c *RLNC) Buffer() *rlnc.Buffer { return c.buf }

// Fresh implements Content.
func (c *RLNC) Fresh() radio.Packet {
	pkt, ok := c.buf.RandomPacket(c.rng)
	if !ok {
		return nil
	}
	return pkt
}

// OnReceive implements Content.
func (c *RLNC) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if p, ok := pkt.(rlnc.Packet); ok && p.Gen == c.buf.Gen() {
		c.buf.Add(p)
	}
}

// Done implements Content: the node can decode all k messages.
func (c *RLNC) Done() bool { return c.buf.CanDecode() }
