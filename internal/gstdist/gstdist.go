// Package gstdist implements the distributed GST construction of
// Theorem 2.1 together with the virtual-distance learning of
// Lemma 3.10. The protocol is fully distributed: each node ends up
// knowing its BFS level, its rank, its parent's id and rank, and
// (optionally) its virtual distance in G' — everything the broadcast
// schedules of Sections 2.3 and 3.2 require.
//
// Schedule (global, derived from the round number alone):
//
//	segment A  BFS layering: either the O(D) collision wave of
//	           Theorem 1.1 (requires CD), the O(D log^2 n) Decay
//	           layering of Section 2.2.2 (no CD), or preset levels
//	           (rings reuse the global wave).
//	segment B  one Bipartite Assignment boundary (internal/assign) per
//	           level. Sequential (default): boundaries run deepest
//	           first, one after the other, O(D log^5 n). Pipelined
//	           (Config.PipelinedBoundaries, Section 2.2.4): time is
//	           split into rank-length phases alternating between even
//	           and odd boundary indices; all in-window same-parity
//	           boundaries process one rank per phase concurrently,
//	           O((D + log n) log^4 n). See the pipelining notes below.
//	segment C  virtual distances (Lemma 3.10): for d = 0..2⌈log n⌉,
//	           stage 1 pipelines a wave down the fast stretches of
//	           each rank class (2(D+1) rounds per rank), stage 2 runs
//	           Θ(log^2 n) Decay rounds from the d-frontier.
//
// Deviation (documented in DESIGN.md): the paper's stage-1 recursion
// propagates the wave only through nodes that were freshly labeled
// d+1, so a stretch whose interior was labeled in an earlier iteration
// blocks the wave and deeper stretch nodes can end up overestimating
// their virtual distance. Our stage 1 lets already-labeled stretch
// nodes relay the wave without adopting the label, which preserves the
// exact BFS order of G'.
package gstdist

import (
	"fmt"

	"radiocast/internal/assign"
	"radiocast/internal/decay"
	"radiocast/internal/sched"
)

// LayerMode selects how segment A learns BFS levels.
type LayerMode uint8

// Layer modes.
const (
	// LayerCD uses the collision wave (needs collision detection).
	LayerCD LayerMode = iota + 1
	// LayerDecay uses Decay-based layering (no CD, O(D log^2 n)).
	LayerDecay
	// LayerPreset skips segment A; levels are supplied by the caller.
	LayerPreset
)

// Config fixes the construction schedule.
type Config struct {
	// N is the (polynomial upper bound on) network size from which all
	// logarithmic schedule lengths derive.
	N int
	// DBound is an upper bound on the source eccentricity: the number
	// of boundaries processed and the wave horizon.
	DBound int
	// Mode selects the layering mechanism.
	Mode LayerMode
	// CLayer scales the Decay-layering phases per epoch (LayerDecay).
	CLayer int
	// Assign is the per-boundary schedule.
	Assign assign.Params
	// WithVdist appends segment C (Lemma 3.10).
	WithVdist bool
	// CVdist scales the stage-2 Decay phases of segment C.
	CVdist int
	// Tag scopes segment-C packets when several constructions run in
	// parallel on adjacent regions (the rings of Theorems 1.1/1.3):
	// nodes discard Wave/Flood packets whose tag differs. Adjacent
	// rings use different parities, so one bit of tag suffices.
	Tag int32
	// PipelinedBoundaries switches segment B to the even/odd pipelined
	// schedule of Section 2.2.4: phases of one rank-length each, phase
	// p driving the boundaries of parity p mod 2 that are inside their
	// processing window. Boundary b starts at phase 3b — the skew of 3
	// is the exact dependency margin: a red ranked i (or promoted to
	// i+1) at boundary b-1's rank-i window must know that rank before
	// boundary b's rank-i (resp. rank-(i+1)) window opens, and both
	// follow boundary b-1's rank-i window by >= 1 phase at skew 3.
	// Same-parity boundaries within hearing distance (levels exactly 2
	// apart) are disambiguated by level-mod-4 packet tags
	// (assign.NewTaggedNode); cross-boundary collisions remain but only
	// cost probabilistic progress. Segment B shrinks from
	// D·MaxRank rank-lengths to 3D + 2·MaxRank - 4 (strictly fewer for
	// every D >= 3 at MaxRank >= 3).
	PipelinedBoundaries bool
	// TagBase offsets the level-mod-4 boundary tags. Standalone
	// constructions leave it 0; the rings of Theorems 1.1/1.3 set each
	// ring's base to (ring·W) mod 4 so tags are globally consistent
	// across ring borders even though each ring's construction runs on
	// local levels.
	TagBase int32
}

// DefaultConfig returns a construction schedule for size n, diameter
// bound d, with the global Θ-constant c.
func DefaultConfig(n, d, c int, mode LayerMode, withVdist bool) Config {
	if c < 1 {
		c = 1
	}
	return Config{
		N:         n,
		DBound:    d,
		Mode:      mode,
		CLayer:    3 * c,
		Assign:    assign.DefaultParams(n, c),
		WithVdist: withVdist,
		CVdist:    c,
	}
}

// L returns ⌈log2 n⌉.
func (c Config) L() int { return sched.LogN(c.N) }

// LayerRounds returns the length of segment A.
func (c Config) LayerRounds() int64 {
	switch c.Mode {
	case LayerCD:
		return int64(c.DBound) + 1
	case LayerDecay:
		return decay.LayeringRounds(c.N, c.DBound, decay.EpochPhases(c.N, c.CLayer))
	default:
		return 0
	}
}

// BoundariesRounds returns the length of segment B.
func (c Config) BoundariesRounds() int64 {
	if c.PipelinedBoundaries {
		return int64(c.PipelinedPhases()) * c.Assign.RankLen()
	}
	return int64(c.DBound) * c.Assign.BoundaryRounds()
}

// PipelinedPhases returns the number of rank-length phases of the
// pipelined segment B: boundary b occupies phases 3b .. 3b +
// 2(MaxRank-1), so the schedule spans 3·DBound + 2·MaxRank - 4 phases.
func (c Config) PipelinedPhases() int {
	if c.DBound <= 0 {
		return 0
	}
	return 3*c.DBound + 2*c.Assign.MaxRank() - 4
}

// PhaseOfRank returns the phase in which boundary b processes rank i
// under the pipelined schedule (ranks descend from MaxRank to 1).
func (c Config) PhaseOfRank(b, rank int) int {
	return 3*b + 2*(c.Assign.MaxRank()-rank)
}

// BoundaryActiveInPhase reports whether boundary b performs work in
// phase p: b must be a real boundary, share p's parity (3b ≡ b mod 2),
// and be inside its MaxRank-phase processing window.
func (c Config) BoundaryActiveInPhase(b, p int) bool {
	if b < 0 || b >= c.DBound {
		return false
	}
	d := p - 3*b
	return d >= 0 && d <= 2*(c.Assign.MaxRank()-1) && d%2 == 0
}

// LevelTag returns the level-mod-4 boundary packet tag of a node at
// the given (construction-local) level.
func (c Config) LevelTag(level int32) int32 {
	return (c.TagBase + level) & 3
}

// VdistIterations returns the number of d-iterations in segment C.
func (c Config) VdistIterations() int { return 2*c.L() + 1 }

// VdistStage1Rounds returns stage 1's length within one d-iteration.
func (c Config) VdistStage1Rounds() int64 {
	return int64(c.Assign.MaxRank()) * 2 * int64(c.DBound+1)
}

// VdistStage2Rounds returns stage 2's length within one d-iteration.
func (c Config) VdistStage2Rounds() int64 {
	l := int64(c.L())
	return int64(c.CVdist) * l * l
}

// VdistRounds returns the length of segment C.
func (c Config) VdistRounds() int64 {
	if !c.WithVdist {
		return 0
	}
	return int64(c.VdistIterations()) * (c.VdistStage1Rounds() + c.VdistStage2Rounds())
}

// TotalRounds returns the full construction length.
func (c Config) TotalRounds() int64 {
	return c.LayerRounds() + c.BoundariesRounds() + c.VdistRounds()
}

// Segment identifies the top-level schedule segment.
type Segment uint8

// Segments.
const (
	SegLayer Segment = iota + 1
	SegBoundary
	SegVdist
	SegDone
)

// Pos locates a round within the construction schedule.
type Pos struct {
	Seg Segment
	// Boundary fields (SegBoundary, sequential): the boundary index
	// (0 = deepest, blue level = DBound - Boundary) and the
	// in-boundary offset. Pipelined segment-B positions set Boundary
	// to -1 (which boundary a node serves is level-dependent), Phase to
	// the rank-length phase index, and Off to the in-phase offset.
	Boundary int
	Phase    int
	Off      int64
	// Vdist fields (SegVdist).
	D     int   // frontier distance being extended
	Stage int   // 1 or 2
	Rank  int   // stage 1: rank class being pipelined
	Epoch int   // stage 1: epoch 1 or 2 (0-based: 0 or 1)
	VdOff int64 // stage 1: round within epoch (the level clock);
	// stage 2: Decay round offset.
}

// Locator is the precomputed form of a Config's schedule arithmetic.
// Locate runs for every node in every round (Act and Observe), and
// recomputing the segment-length chains — BoundariesRounds →
// assign.BoundaryRounds → RankLen → ... — dominated full-sweep CPU
// profiles (~60% of flat samples). Protocols compute a Locator once
// and locate against the cached lengths instead.
type Locator struct {
	layer      int64
	boundaries int64
	boundary   int64 // one boundary's length
	pipelined  bool  // segment B runs the even/odd pipelined schedule
	rankLen    int64 // one rank-length phase (pipelined)
	vdist      int64
	stage1     int64
	blockLen   int64 // stage1 + stage2
	waveSpan   int64 // DBound+1: stage-1 level clock span
}

// Locator precomputes the Config's schedule lengths.
func (c Config) Locator() Locator {
	return Locator{
		layer:      c.LayerRounds(),
		boundaries: c.BoundariesRounds(),
		boundary:   c.Assign.BoundaryRounds(),
		pipelined:  c.PipelinedBoundaries,
		rankLen:    c.Assign.RankLen(),
		vdist:      c.VdistRounds(),
		stage1:     c.VdistStage1Rounds(),
		blockLen:   c.VdistStage1Rounds() + c.VdistStage2Rounds(),
		waveSpan:   int64(c.DBound + 1),
	}
}

// Locate maps a global round to a schedule position.
func (l Locator) Locate(r int64) Pos {
	if r < 0 {
		panic(fmt.Sprintf("gstdist: negative round %d", r))
	}
	if r < l.layer {
		return Pos{Seg: SegLayer, Off: r}
	}
	r -= l.layer
	if r < l.boundaries {
		if l.pipelined {
			return Pos{Seg: SegBoundary, Boundary: -1,
				Phase: int(r / l.rankLen), Off: r % l.rankLen}
		}
		return Pos{Seg: SegBoundary, Boundary: int(r / l.boundary), Off: r % l.boundary}
	}
	r -= l.boundaries
	if r < l.vdist {
		d := int(r / l.blockLen)
		rem := r % l.blockLen
		if rem < l.stage1 {
			perRank := 2 * l.waveSpan
			rank := int(rem / perRank)
			rem %= perRank
			epoch := int(rem / l.waveSpan)
			return Pos{Seg: SegVdist, D: d, Stage: 1, Rank: rank + 1,
				Epoch: epoch, VdOff: rem % l.waveSpan}
		}
		return Pos{Seg: SegVdist, D: d, Stage: 2, VdOff: rem - l.stage1}
	}
	return Pos{Seg: SegDone}
}

// Locate maps a global round to a schedule position. Hot paths should
// cache a Locator instead of re-deriving it per call.
func (c Config) Locate(r int64) Pos { return c.Locator().Locate(r) }

// BlueLevel returns the blue level of boundary index b: boundaries are
// processed deepest-first.
func (c Config) BlueLevel(b int) int { return c.DBound - b }

// BoundaryIndexForBlueLevel returns the boundary index in which nodes
// of the given level act as blues.
func (c Config) BoundaryIndexForBlueLevel(l int) int { return c.DBound - l }
