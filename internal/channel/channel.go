// Package channel provides pluggable channel-adversity models for the
// radio engine: per-link packet erasure, unreliable collision
// detection, budgeted jammers, and per-node radio faults. A model
// implements radio.Channel and is installed via radio.Config.Channel
// (nil = the ideal channel of the paper's Section 1.1 model).
//
// Every probabilistic draw is a keyed SplitMix64 mix of
// (model seed, round, node/link), so a run remains fully determined by
// (graph, parameters, seed) regardless of hook evaluation order, and
// stacked models never perturb each other's streams. Models may carry
// mutable per-run state (jammer budgets): construct a fresh instance
// per run, or reuse one across runs through the
// radio.ResettableChannel contract — stateful models implement
// Reset(), and the harness runners invoke it at the start of every
// fresh seeded run. The adaptive retry layer (internal/adapt) instead
// carries channel state ACROSS the epochs of one run — budgets are a
// property of the adversary, not of an epoch — and shifts the round
// clock each epoch via Offset so round-keyed draws and fault wake
// clocks see one continuous timeline.
package channel

import (
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// chance reports a deterministic Bernoulli(p) draw keyed by the given
// values: the top 53 bits of the mix are compared against p.
func chance(p float64, keys ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(rng.Mix(keys...)>>11)/(1<<53) < p
}

// linkKey packs a directed link into one mix key. NodeIDs are
// non-negative and well below 2^32.
func linkKey(from, to radio.NodeID) uint64 {
	return uint64(from)<<32 | uint64(to)
}

// Nop is an embeddable no-op Channel: every hook passes through.
// Models embed it and override only the hooks they perturb.
type Nop struct{}

var _ radio.Channel = Nop{}

// RoundStart implements radio.Channel.
func (Nop) RoundStart(int64, []radio.NodeID) {}

// SuppressTransmit implements radio.Channel.
func (Nop) SuppressTransmit(int64, radio.NodeID) bool { return false }

// DropLink implements radio.Channel.
func (Nop) DropLink(int64, radio.NodeID, radio.NodeID) bool { return false }

// Observe implements radio.Channel.
func (Nop) Observe(_ int64, _ radio.NodeID, _ int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	return out, ok
}

// Erasure is the probabilistic packet-loss model: each (link, round)
// delivery is erased independently with probability P. Erasure can
// both starve a listener (its only transmitter dropped) and rescue one
// (a two-transmitter collision thinned to a clean reception), exactly
// like physical fading.
type Erasure struct {
	Nop
	// P is the per-link, per-round erasure probability.
	P    float64
	seed uint64
}

// NewErasure returns an erasure channel with loss probability p.
func NewErasure(p float64, seed uint64) *Erasure {
	return &Erasure{P: p, seed: seed}
}

// DropLink implements radio.Channel.
func (e *Erasure) DropLink(r int64, from, to radio.NodeID) bool {
	return chance(e.P, e.seed, 0xe7a5, uint64(r), linkKey(from, to))
}

// NoisyCD models unreliable collision detection: a true collision
// symbol is missed — downgraded to silence — with probability Miss,
// and a silent reception is upgraded to a spurious ⊤ with probability
// Spurious, independently per (listener, round). Single-transmitter
// deliveries are untouched, so the model only matters to protocols
// that consume the ⊤ symbol: on a network without CD the engine
// sanitizes the spurious symbol back to silence and the model is a
// no-op.
type NoisyCD struct {
	Nop
	// Miss is the probability a true ⊤ is observed as silence.
	Miss float64
	// Spurious is the probability silence is observed as ⊤.
	Spurious float64
	seed     uint64
}

// NewNoisyCD returns an unreliable-CD channel.
func NewNoisyCD(miss, spurious float64, seed uint64) *NoisyCD {
	return &NoisyCD{Miss: miss, Spurious: spurious, seed: seed}
}

// Observe implements radio.Channel.
func (c *NoisyCD) Observe(r int64, to radio.NodeID, _ int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	switch {
	case ok && out.Collision:
		if chance(c.Miss, c.seed, 0x6d15, uint64(r), uint64(to)) {
			return radio.Outcome{}, false
		}
	case !ok:
		if chance(c.Spurious, c.seed, 0x59c4, uint64(r), uint64(to)) {
			return radio.Outcome{Collision: true}, true
		}
	}
	return out, ok
}

// Jammer is a budgeted wide-band jammer: in a jammed round every
// listener's reception is destroyed — observed as ⊤ on a CD network,
// silence otherwise (the engine sanitizes the symbol). Two targeting
// policies share the budget accounting:
//
//   - oblivious (Adaptive=false): jam each round independently with
//     probability Rate, blind to the traffic;
//   - adaptive busiest-slot (Adaptive=true): snoop the transmitter set
//     in RoundStart and jam exactly the rounds with at least
//     MinTransmitters transmitters — budget is spent only where it
//     destroys real traffic. The engine hands RoundStart the
//     post-suppression transmitter set, so a jammer stacked after a
//     fault model never wastes budget on rounds whose only
//     transmitters are fault-dead radios.
//
// Each jammed round costs one unit of Budget; once spent, the jammer
// falls silent. A negative Budget is unlimited.
type Jammer struct {
	Nop
	// Budget is the total number of rounds the jammer may jam
	// (negative = unlimited).
	Budget int64
	// Rate is the oblivious per-round jam probability.
	Rate float64
	// Adaptive switches to the busiest-slot policy.
	Adaptive bool
	// MinTransmitters is the adaptive trigger threshold (minimum 1).
	MinTransmitters int

	seed    uint64
	spent   int64
	jamming bool
}

// NewJammer returns an oblivious jammer: jam each round with
// probability rate until budget rounds are spent.
func NewJammer(budget int64, rate float64, seed uint64) *Jammer {
	return &Jammer{Budget: budget, Rate: rate, seed: seed}
}

// NewAdaptiveJammer returns a busiest-slot jammer: jam every round
// with at least minTransmitters transmitters until budget rounds are
// spent.
func NewAdaptiveJammer(budget int64, minTransmitters int, seed uint64) *Jammer {
	return &Jammer{Budget: budget, Adaptive: true, MinTransmitters: minTransmitters, seed: seed}
}

// RoundStart implements radio.Channel.
func (j *Jammer) RoundStart(r int64, transmitters []radio.NodeID) {
	j.jamming = false
	if j.Budget >= 0 && j.spent >= j.Budget {
		return
	}
	if j.Adaptive {
		min := j.MinTransmitters
		if min < 1 {
			min = 1
		}
		j.jamming = len(transmitters) >= min
	} else {
		j.jamming = chance(j.Rate, j.seed, 0x4a6d, uint64(r))
	}
	if j.jamming {
		j.spent++
	}
}

// Observe implements radio.Channel.
func (j *Jammer) Observe(_ int64, _ radio.NodeID, _ int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	if j.jamming {
		return radio.Outcome{Collision: true}, true
	}
	return out, ok
}

// Spent reports how many rounds the jammer has jammed so far.
func (j *Jammer) Spent() int64 { return j.spent }

// Reset implements radio.ResettableChannel: it refunds the budget and
// clears the jamming latch, so one Jammer instance can be reused
// across seeded runs without silently draining. (The adaptive retry
// layer deliberately does not call it between epochs: a budget spans
// the adversary's whole engagement, not one epoch.)
func (j *Jammer) Reset() {
	j.spent = 0
	j.jamming = false
}

var _ radio.ResettableChannel = (*Jammer)(nil)

// Faults models per-node radio faults: a node's radio may start dead
// until a wake round (late wakeup) and die permanently at a crash
// round. A dead radio neither transmits nor hears; the protocol still
// runs (and is still polled) — only its channel access is cut, so
// round accounting and determinism are unaffected.
//
// Real packets to a dead radio are erased at the link level, so that
// guarantee holds in any Stack order; but a later observation-
// injecting model (NoisyCD spurious ⊤, Jammer) can still overwrite
// the silence Faults returns from Observe. Place Faults last in a
// Stack to keep dead radios fully deaf.
type Faults struct {
	Nop
	wakeAt  []int64 // radio dead before this round (0 = from the start)
	crashAt []int64 // radio dead at and after this round (-1 = never)
}

// NewFaults returns a fault table for n nodes with every radio
// healthy; program it with SetWake/SetCrash.
func NewFaults(n int) *Faults {
	f := &Faults{wakeAt: make([]int64, n), crashAt: make([]int64, n)}
	for v := range f.crashAt {
		f.crashAt[v] = -1
	}
	return f
}

// SetWake makes v's radio dead before round r (late wakeup).
func (f *Faults) SetWake(v radio.NodeID, r int64) { f.wakeAt[v] = r }

// SetCrash makes v's radio dead at and after round r.
func (f *Faults) SetCrash(v radio.NodeID, r int64) { f.crashAt[v] = r }

// RandomFaults derives a fault table from a seed: every node except
// the protected source independently wakes late (uniform in
// [1, maxDelay]) with probability lateFrac and crashes (uniform in
// [1, horizon]) with probability crashFrac.
func RandomFaults(n int, source radio.NodeID, lateFrac float64, maxDelay int64, crashFrac float64, horizon int64, seed uint64) *Faults {
	f := NewFaults(n)
	for v := 0; v < n; v++ {
		if radio.NodeID(v) == source {
			continue
		}
		if maxDelay > 0 && chance(lateFrac, seed, 0x1a7e, uint64(v)) {
			f.wakeAt[v] = 1 + int64(rng.Mix(seed, 0xd31a, uint64(v))%uint64(maxDelay))
		}
		if horizon > 0 && chance(crashFrac, seed, 0xc0a5, uint64(v)) {
			f.crashAt[v] = 1 + int64(rng.Mix(seed, 0xc0a6, uint64(v))%uint64(horizon))
		}
	}
	return f
}

func (f *Faults) dead(r int64, v radio.NodeID) bool {
	return r < f.wakeAt[v] || (f.crashAt[v] >= 0 && r >= f.crashAt[v])
}

// SuppressTransmit implements radio.Channel.
func (f *Faults) SuppressTransmit(r int64, v radio.NodeID) bool { return f.dead(r, v) }

// DropLink implements radio.Channel: a dead receiver's inbound links
// are erased, so no real packet reaches it regardless of how Observe
// hooks compose.
func (f *Faults) DropLink(r int64, _, to radio.NodeID) bool { return f.dead(r, to) }

// Observe implements radio.Channel.
func (f *Faults) Observe(r int64, to radio.NodeID, _ int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	if f.dead(r, to) {
		return radio.Outcome{}, false
	}
	return out, ok
}

// N returns the number of nodes the fault table was sized for. Job
// admission layers use it to reject a table that does not match the
// run's graph — every hook indexes wakeAt/crashAt by NodeID, so a
// short table panics mid-run on the first out-of-range node.
func (f *Faults) N() int { return len(f.wakeAt) }

// Reset implements radio.ResettableChannel as a deliberate no-op,
// recorded here as an audit: a fault table is pure configuration —
// wake and crash rounds, programmed once — with no per-run mutable
// state to rewind (dead() is a pure function of (round, node)). The
// method exists so harness runners that blanket-Reset their channel
// treat Faults uniformly with the stateful models instead of
// special-casing it.
func (f *Faults) Reset() {}

var _ radio.ResettableChannel = (*Faults)(nil)

// Stack composes models into one channel: suppression and link loss
// OR together, and the tentative observation flows through every
// model's Observe in order, so later models see (and may re-perturb)
// earlier models' output — an erasure-thinned reception can still be
// jammed, a jammer's ⊤ can still be missed by noisy CD. Order
// matters for exactly that reason: a model that silences a listener
// (Faults) should come after models that inject observations
// (Jammer, NoisyCD's spurious ⊤), or the injection resurrects the
// silenced listener.
type Stack []radio.Channel

var _ radio.Channel = Stack(nil)

// RoundStart implements radio.Channel.
func (s Stack) RoundStart(r int64, transmitters []radio.NodeID) {
	for _, m := range s {
		m.RoundStart(r, transmitters)
	}
}

// SuppressTransmit implements radio.Channel.
func (s Stack) SuppressTransmit(r int64, v radio.NodeID) bool {
	for _, m := range s {
		if m.SuppressTransmit(r, v) {
			return true
		}
	}
	return false
}

// DropLink implements radio.Channel.
func (s Stack) DropLink(r int64, from, to radio.NodeID) bool {
	for _, m := range s {
		if m.DropLink(r, from, to) {
			return true
		}
	}
	return false
}

// Observe implements radio.Channel.
func (s Stack) Observe(r int64, to radio.NodeID, count int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	for _, m := range s {
		out, ok = m.Observe(r, to, count, out, ok)
	}
	return out, ok
}

// Reset implements radio.ResettableChannel by forwarding to every
// stacked model that is itself resettable, so a stack holding a
// Jammer is reusable across runs exactly like a bare Jammer.
func (s Stack) Reset() {
	for _, m := range s {
		radio.ResetChannel(m)
	}
}

var _ radio.ResettableChannel = Stack(nil)

// Offset presents a shifted round clock to an inner channel model: a
// hook invoked at engine round r reaches Inner as round r+Base. The
// adaptive retry layer (internal/adapt) re-executes a stack in epochs,
// and each epoch's network restarts its round counter at zero; wrapping
// the run's channel in an Offset whose Base is the rounds elapsed in
// earlier epochs lets the model see one continuous timeline — a
// late-wakeup fault table keeps a radio that woke in epoch 1 awake in
// epoch 2, and round-keyed randomness (erasure, noisy CD, oblivious
// jamming) draws fresh values each epoch instead of replaying the
// epoch-1 pattern.
//
// Offset deliberately does NOT forward Reset: rewinding the inner
// model's per-run state is the fresh-run boundary's job (epoch 0, on
// the unwrapped channel), never a mid-run epoch's.
type Offset struct {
	Inner radio.Channel
	Base  int64
}

var _ radio.Channel = (*Offset)(nil)

// NewOffset wraps inner with a round-clock shift of base.
func NewOffset(inner radio.Channel, base int64) *Offset {
	return &Offset{Inner: inner, Base: base}
}

// RoundStart implements radio.Channel.
func (o *Offset) RoundStart(r int64, transmitters []radio.NodeID) {
	o.Inner.RoundStart(r+o.Base, transmitters)
}

// SuppressTransmit implements radio.Channel.
func (o *Offset) SuppressTransmit(r int64, v radio.NodeID) bool {
	return o.Inner.SuppressTransmit(r+o.Base, v)
}

// DropLink implements radio.Channel.
func (o *Offset) DropLink(r int64, from, to radio.NodeID) bool {
	return o.Inner.DropLink(r+o.Base, from, to)
}

// Observe implements radio.Channel.
func (o *Offset) Observe(r int64, to radio.NodeID, count int, out radio.Outcome, ok bool) (radio.Outcome, bool) {
	return o.Inner.Observe(r+o.Base, to, count, out, ok)
}
