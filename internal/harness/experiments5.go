package harness

// Adaptive-retry experiments E17/E18: the internal/adapt re-layering
// subsystem closing the two robustness gaps PR 2 measured. E17 re-runs
// E13's loss grid with the theorem stacks wrapped in the retry layer —
// the completion cliff at loss 0.3 must disappear, at a bounded
// round-inflation factor (a few epochs of the same schedule). E18
// re-runs E16's late-wakeup rows — the one-shot wave's coverage
// collapse must return to 1.0, because radios that woke after the
// epoch-0 wave are re-covered by the epoch-1 wave launched from the
// entire informed frontier. Both experiments derive their channels
// with the SAME seed mixes as E13/E16, so every row is directly
// comparable against the one-shot sweep that motivated it.

import (
	"fmt"

	"radiocast/internal/adapt"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/rings"
	"radiocast/internal/stats"
)

// adaptMaxEpochs caps the retry loop in E17/E18: well above the 2-4
// epochs the sweeps need, well below pathological.
const adaptMaxEpochs = 16

// e17Protocols orders the adaptive protocol columns of E17 — exactly
// the two stacks that fall off E13's completion cliff.
var e17Protocols = []string{"th11", "th13"}

// E17Plan re-runs E13's loss grid with the Theorem 1.1/1.3 pipelines
// wrapped in the adaptive retry layer. Expected shape: completion is
// restored at every loss rate (ok = all seeds), the mean epoch count
// grows gently with loss, and the round inflation vs the one-shot
// schedule budget stays a small constant (each epoch is one more run
// of the same schedule). The 1-epoch column counts seeds whose epoch 0
// — byte-identical to the non-adaptive run — already completed,
// reproducing E13's cliff inside E17's own data.
func E17Plan(seeds int, quick bool) *exp.Plan {
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if quick {
		losses = []float64{0, 0.1, 0.3}
	}
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	const k = 4
	budgets := map[string]int64{
		"th11": rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds(),
		"th13": rings.DefaultConfig(g.N(), d, k, 1).TotalRounds(),
	}
	p := &exp.Plan{ID: "E17", Title: "Adaptive retry: loss sweep with re-layering (Thm 1.1/1.3)"}
	for _, loss := range losses {
		for _, proto := range e17Protocols {
			for s := 0; s < seeds; s++ {
				loss, proto, seed := loss, proto, uint64(s)
				p.Cells = append(p.Cells, exp.Cell{
					Key: exp.Key{Experiment: "E17", Config: fmt.Sprintf("loss=%g/%s", loss, proto), Seed: seed},
					// ~3 epochs of the one-shot schedule at the cliff.
					Cost: 3 * budgetCost(g.N(), budgets[proto]),
					Run: func(limit int64) exp.Result {
						// Same erasure stream as the E13 cell of this (loss,
						// seed): the rows answer "what would adaptivity have
						// done for exactly that run".
						chf := EpochChannel(lossChannel(loss, seed))
						var a *AdaptiveRunner
						if proto == "th11" {
							a = NewAdaptiveTheorem11(g, rings.DefaultConfig(g.N(), d, 0, 1), chf, seed, 0)
						} else {
							a = NewAdaptiveTheorem13(g, rings.DefaultConfig(g.N(), d, k, 1), chf, seed, 0)
						}
						out := adapt.Run(a, adapt.Policy{MaxEpochs: adaptMaxEpochs, MaxRounds: limit})
						res := exp.RoundsOn(out.Rounds, out.Completed, out.Stats.Dropped, out.Stats.Jammed)
						res.Value = float64(out.Epochs)
						res.Epochs = out.Epochs
						res.Covered = out.Covered
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E17: adaptive re-layering under per-link packet loss (clusterchain-6x6)",
			Comment: "each epoch re-runs the full one-shot schedule with every informed radio as an additional source;\n" +
				"1-epoch = seeds whose first epoch (byte-identical to the non-adaptive run) completed — E13's cliff;\n" +
				"inflation = mean total rounds / one-shot schedule budget, the bounded price of closing it",
			Header: []string{"loss", "protocol", "ok", "1-epoch", "epochs", "rounds", "inflation"},
		}
		for _, loss := range losses {
			for _, proto := range e17Protocols {
				var rs, es []float64
				okCount, oneEpoch := 0, 0
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E17", Config: fmt.Sprintf("loss=%g/%s", loss, proto), Seed: uint64(s)}]
					es = append(es, r.Value)
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
						if r.Value == 1 {
							oneEpoch++
						}
					}
				}
				mean := meanOrDash(rs)
				t.AddRow(stats.F(loss), proto,
					fmt.Sprintf("%d/%d", okCount, seeds),
					fmt.Sprintf("%d/%d", oneEpoch, seeds),
					stats.F(meanOrDash(es)), stats.F(mean),
					stats.F(mean/float64(budgets[proto])))
			}
		}
		return t
	}
	return p
}

// E17AdaptiveLossSweep runs E17 sequentially (compat wrapper).
func E17AdaptiveLossSweep(seeds int, quick bool) *stats.Table { return runPlan(E17Plan(seeds, quick)) }

// e18Variants orders E18's columns: the one-shot Theorem 1.1 run
// (E16's collapsing late-wakeup cell, reproduced with the identical
// fault table) against the adaptive re-layering of the same stack.
var e18Variants = []string{"oneshot", "adaptive"}

// E18Plan re-runs E16's late-wakeup rows with the Theorem 1.1 pipeline
// wrapped in the adaptive retry layer. Expected shape: the one-shot
// column reproduces E16's coverage collapse (radios waking after the
// wave passed are abandoned); the adaptive column returns coverage to
// 1.0 in ~2 epochs — by epoch 1 every radio is awake (the channel's
// round clock carries across epochs via channel.Offset, so wake rounds
// stay expired) and the wave relaunches from the whole informed
// frontier.
func E18Plan(seeds int, quick bool) *exp.Plan {
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if quick {
		rates = []float64{0, 0.1, 0.4}
	}
	g := robustnessChain()
	d := graph.Eccentricity(g, 0)
	budget := rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds()
	p := &exp.Plan{ID: "E18", Title: "Adaptive retry: late-wakeup re-layering (Thm 1.1)"}
	for _, rate := range rates {
		for _, variant := range e18Variants {
			for s := 0; s < seeds; s++ {
				rate, variant, seed := rate, variant, uint64(s)
				cost := budgetCost(g.N(), budget)
				if variant == "adaptive" {
					cost *= 2 // ~2 epochs
				}
				p.Cells = append(p.Cells, exp.Cell{
					Key:  exp.Key{Experiment: "E18", Config: fmt.Sprintf("late=%g/%s", rate, variant), Seed: seed},
					Cost: cost,
					Run: func(limit int64) exp.Result {
						n := float64(g.N())
						// Identical fault table to E16's late/th11 cell at this
						// (rate, seed): same mix key, late-wakeup only.
						ch := faultChannel(g.N(), "late", rate, seed)
						if variant == "oneshot" {
							lim := budget
							if limit > 0 && limit < lim {
								lim = limit
							}
							r := NewTheorem11RunCfg(g, rings.DefaultConfig(g.N(), d, 0, 1), 0)
							rounds, ok, st := r.RunFrom(nil, ch, seed, lim)
							res := exp.RoundsOn(rounds, ok, st.Dropped, st.Jammed)
							res.Value = float64(r.Coverage()) / n
							return res
						}
						a := NewAdaptiveTheorem11(g, rings.DefaultConfig(g.N(), d, 0, 1), EpochChannel(ch), seed, 0)
						out := adapt.Run(a, adapt.Policy{MaxEpochs: adaptMaxEpochs, MaxRounds: limit})
						res := exp.RoundsOn(out.Rounds, out.Completed, out.Stats.Dropped, out.Stats.Jammed)
						res.Value = float64(out.Covered) / n
						res.Payload = out.Epochs
						res.Epochs = out.Epochs
						res.Covered = out.Covered
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E18: late-wakeup coverage, one-shot vs adaptive re-layering (clusterchain-6x6)",
			Comment: fmt.Sprintf("radios dead until a uniform wake round in [1,%d] with probability rate (E16's fault tables);\n"+
				"the one-shot wave abandons radios that wake after it passed, re-layering re-covers them from the\n"+
				"informed frontier — adaptive coverage must be 1.0 on every row", e16MaxDelay),
			Header: []string{"rate", "oneshot cov", "oneshot ok", "adaptive cov", "adaptive ok", "epochs", "adaptive rounds"},
		}
		for _, rate := range rates {
			collect := func(variant string) (cov float64, okCount int, epochs, rounds float64) {
				var covs, es, rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E18", Config: fmt.Sprintf("late=%g/%s", rate, variant), Seed: uint64(s)}]
					covs = append(covs, r.Value)
					rs = append(rs, float64(r.Rounds))
					if e, ok := r.Payload.(int); ok {
						es = append(es, float64(e))
					}
					if r.Completed {
						okCount++
					}
				}
				return stats.Summarize(covs, 0, 0).Mean, okCount, meanOrDash(es), stats.Summarize(rs, 0, 0).Mean
			}
			ocov, ook, _, _ := collect("oneshot")
			acov, aok, aep, arounds := collect("adaptive")
			t.AddRow(stats.F(rate),
				stats.F(ocov), fmt.Sprintf("%d/%d", ook, seeds),
				stats.F(acov), fmt.Sprintf("%d/%d", aok, seeds),
				stats.F(aep), stats.F(arounds))
		}
		return t
	}
	return p
}

// E18AdaptiveWakeupSweep runs E18 sequentially (compat wrapper).
func E18AdaptiveWakeupSweep(seeds int, quick bool) *stats.Table {
	return runPlan(E18Plan(seeds, quick))
}
