package harness

import (
	"strconv"
	"strings"
	"testing"

	"radiocast/internal/graph"
)

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(1, true)
			if tb == nil || len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			out := tb.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s table did not render", e.ID)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestE1CrossoverShape(t *testing.T) {
	// The headline claim at reproduction scale: on high-diameter
	// cluster chains, the GST broadcast (structure in place) beats the
	// Decay and CR baselines.
	g := graph.ClusterChain(32, 8)
	d := graph.Eccentricity(g, 0)
	decayR, ok1 := RunDecay(g, 1, 1<<22)
	crR, ok2 := RunCR(g, d, 1, 1<<22)
	gstR, ok3 := RunGSTSingle(g, false, 1, 1<<22)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("some protocol incomplete")
	}
	if gstR >= crR || gstR >= decayR {
		t.Fatalf("no crossover: gst=%d cr=%d decay=%d at D=%d", gstR, crR, decayR, d)
	}
	t.Logf("D=%d: gst=%d cr=%d decay=%d", d, gstR, crR, decayR)
}

func TestRunnersVerifyPayloads(t *testing.T) {
	g := graph.Grid(5, 5)
	if _, ok := RunGSTMulti(g, 6, 3, 1<<20); !ok {
		t.Fatal("Theorem 1.2 runner failed")
	}
	if _, ok := RunGSTMultiRouting(g, 4, 3, 1<<20); !ok {
		t.Fatal("routing baseline failed")
	}
}

func TestTheorem11RunnerDecomposition(t *testing.T) {
	g := graph.ClusterChain(4, 4)
	d := graph.Eccentricity(g, 0)
	res := RunTheorem11(g, d, 1, 2)
	if !res.Completed {
		t.Fatal("Theorem 1.1 incomplete")
	}
	if res.WaveRounds+res.BuildRounds+res.SpreadBudget != res.TotalBudget {
		t.Fatal("budget decomposition inconsistent")
	}
	if res.Rounds > res.TotalBudget {
		t.Fatal("rounds exceed budget")
	}
}

func TestPlainStoreContent(t *testing.T) {
	ps := NewPlainStore(2, fakeIntn{})
	if ps.Done() || ps.Fresh() != nil {
		t.Fatal("empty store should be idle")
	}
	ps.OnReceive(PlainPacket{Index: 0, Payload: 7}, 0)
	ps.OnReceive(PlainPacket{Index: 1, Payload: 8}, 0)
	if !ps.Done() {
		t.Fatal("store with all messages not done")
	}
	pkt := ps.Fresh()
	if pkt == nil {
		t.Fatal("Fresh returned nil with held messages")
	}
	if _, err := strconv.Atoi("0"); err != nil {
		t.Fatal("unreachable")
	}
}

type fakeIntn struct{}

func (fakeIntn) Intn(n int) int { return 0 }
