package channel

import (
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// randomNet builds a network of non-adaptive random actors (their
// actions depend only on their own RNG stream, never on observations),
// so the transmission schedule is identical under every channel.
func randomNet(g *graph.Graph, cd bool, ch radio.Channel, seed uint64) *radio.Network {
	nw := radio.New(g, radio.Config{CollisionDetection: cd, Channel: ch})
	for v := 0; v < g.N(); v++ {
		r := rng.New(seed, uint64(v))
		nw.SetProtocol(graph.NodeID(v), &radio.FuncProtocol{ActFunc: func(round int64) radio.Action {
			if r.Intn(4) == 0 {
				return radio.Transmit(radio.RawPacket{Value: round})
			}
			return radio.Listen
		}})
	}
	return nw
}

// A pass-through channel must reproduce the ideal path exactly: same
// deliveries, collisions, transmissions, and zero adversity counters.
func TestNopChannelMatchesIdeal(t *testing.T) {
	g := graph.GNP(40, 0.12, 3)
	for _, cd := range []bool{false, true} {
		ideal := randomNet(g, cd, nil, 7)
		ideal.Run(200)
		nop := randomNet(g, cd, Nop{}, 7)
		nop.Run(200)
		a, b := ideal.Stats(), nop.Stats()
		if a != b {
			t.Fatalf("cd=%v: Nop channel diverged from ideal:\nideal %+v\nnop   %+v", cd, a, b)
		}
		if b.Dropped != 0 || b.Jammed != 0 {
			t.Fatalf("cd=%v: Nop channel counted adversity: %+v", cd, b)
		}
	}
}

func TestErasureExtremes(t *testing.T) {
	g := graph.Grid(5, 5)
	full := randomNet(g, true, NewErasure(1, 9), 5)
	full.Run(100)
	st := full.Stats()
	if st.Deliveries != 0 || st.CollisionObs != 0 {
		t.Fatalf("p=1 erasure delivered: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("p=1 erasure dropped nothing")
	}
	none := randomNet(g, true, NewErasure(0, 9), 5)
	none.Run(100)
	ideal := randomNet(g, true, nil, 5)
	ideal.Run(100)
	if none.Stats() != ideal.Stats() {
		t.Fatalf("p=0 erasure diverged from ideal:\n%+v\n%+v", ideal.Stats(), none.Stats())
	}
}

func TestErasureDeterminism(t *testing.T) {
	g := graph.GNP(30, 0.15, 2)
	run := func() radio.Stats {
		nw := randomNet(g, true, NewErasure(0.3, 11), 4)
		nw.Run(300)
		return nw.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("erasure nondeterministic:\n%+v\n%+v", a, b)
	}
}

// Path 0-1-2 with both ends transmitting every round: the middle
// observes ⊤ with CD. Miss=1 must silence every collision; Spurious=1
// must turn every silent listener-round into ⊤ (and be sanitized to
// silence without CD).
func TestNoisyCDMissAndSpurious(t *testing.T) {
	g := graph.Path(3)
	bothEndsTx := func(nw *radio.Network) *radio.Silent {
		tx := func(int64) radio.Action { return radio.Transmit(radio.RawPacket{}) }
		nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: tx})
		nw.SetProtocol(2, &radio.FuncProtocol{ActFunc: tx})
		mid := &radio.Silent{}
		nw.SetProtocol(1, mid)
		return mid
	}

	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: NewNoisyCD(1, 0, 1)})
	mid := bothEndsTx(nw)
	nw.Run(50)
	if mid.Collisions != 0 {
		t.Fatalf("miss=1 still delivered %d collisions", mid.Collisions)
	}
	if st := nw.Stats(); st.Jammed != 50 {
		t.Fatalf("miss=1 jammed = %d, want 50", st.Jammed)
	}

	// Spurious ⊤: everyone silent, one listener; every round becomes ⊤.
	nw2 := radio.New(g, radio.Config{CollisionDetection: true, Channel: NewNoisyCD(0, 1, 1)})
	probe := &radio.Silent{}
	nw2.SetProtocol(0, probe)
	nw2.SetProtocol(1, &radio.Silent{})
	nw2.SetProtocol(2, &radio.Silent{})
	nw2.Run(20)
	if probe.Collisions != 20 || probe.Packets != 0 {
		t.Fatalf("spurious=1 with CD: %+v", probe)
	}

	// Without CD the spurious symbol is sanitized to silence.
	nw3 := radio.New(g, radio.Config{Channel: NewNoisyCD(0, 1, 1)})
	probe3 := &radio.Silent{}
	nw3.SetProtocol(0, probe3)
	nw3.SetProtocol(1, &radio.Silent{})
	nw3.SetProtocol(2, &radio.Silent{})
	nw3.Run(20)
	if probe3.Collisions != 0 || probe3.Packets != 0 {
		t.Fatalf("spurious ⊤ leaked through a no-CD network: %+v", probe3)
	}
}

// An adaptive jammer with budget B destroys exactly the first B active
// rounds, then falls silent and lets traffic through.
func TestAdaptiveJammerBudget(t *testing.T) {
	g := graph.Path(2)
	j := NewAdaptiveJammer(10, 1, 3)
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: j})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(50)
	if j.Spent() != 10 {
		t.Fatalf("spent = %d, want 10", j.Spent())
	}
	if probe.Collisions != 10 || probe.Packets != 40 {
		t.Fatalf("probe: collisions=%d packets=%d, want 10,40", probe.Collisions, probe.Packets)
	}
	if st := nw.Stats(); st.Jammed != 10 {
		t.Fatalf("jammed = %d, want 10", st.Jammed)
	}
}

// An oblivious jammer never exceeds its budget and keys its rounds off
// the seed, not the traffic.
func TestObliviousJammerBudget(t *testing.T) {
	g := graph.Path(2)
	j := NewJammer(5, 1, 4) // rate 1: jams the first 5 rounds
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: j})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(30)
	if j.Spent() != 5 || probe.Collisions != 5 || probe.Packets != 25 {
		t.Fatalf("spent=%d probe=%+v", j.Spent(), probe)
	}
}

// A crashed radio stops transmitting and hearing; a late-wakeup radio
// misses everything before its wake round.
func TestFaults(t *testing.T) {
	g := graph.Path(2)
	f := NewFaults(2)
	f.SetCrash(0, 10) // transmitter dies at round 10
	f.SetWake(1, 5)   // listener's radio off before round 5
	nw := radio.New(g, radio.Config{Channel: f})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	probe := &radio.Silent{}
	nw.SetProtocol(1, probe)
	nw.Run(30)
	// Rounds 0-4: listener dead (inbound links erased). Rounds 5-9:
	// delivered. Round 10+: transmitter dead (suppressed at source).
	if probe.Packets != 5 {
		t.Fatalf("packets = %d, want 5", probe.Packets)
	}
	st := nw.Stats()
	if st.Dropped != 25 { // 5 dead-receiver links + 20 suppressed transmissions
		t.Fatalf("dropped = %d, want 25", st.Dropped)
	}
	if st.Jammed != 0 { // link-level erasure means silence was already tentative
		t.Fatalf("jammed = %d, want 0", st.Jammed)
	}
}

// Stacked models compose: loss thins a collision into a reception, the
// jammer destroys it anyway.
func TestStackComposes(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() radio.Stats {
		ch := Stack{NewErasure(0.2, 21), NewAdaptiveJammer(15, 2, 22), NewNoisyCD(0.3, 0.05, 23)}
		nw := randomNet(g, true, ch, 6)
		nw.Run(200)
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stack nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Jammed == 0 {
		t.Fatalf("stack produced no adversity: %+v", a)
	}
}

func TestRandomFaultsProtectsSource(t *testing.T) {
	f := RandomFaults(50, 7, 0.5, 100, 0.5, 1000, 3)
	if f.wakeAt[7] != 0 || f.crashAt[7] != -1 {
		t.Fatalf("source faulted: wake=%d crash=%d", f.wakeAt[7], f.crashAt[7])
	}
	faulted := 0
	for v := 0; v < 50; v++ {
		if f.wakeAt[v] != 0 || f.crashAt[v] != -1 {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no node faulted at 50% rates")
	}
}

// One Jammer instance reused across runs must behave like a fresh
// instance per run once Reset is called between them — the reuse
// contract of radio.ResettableChannel. Without the Reset, the second
// run would find the budget silently drained.
func TestJammerResetRestoresBudget(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func(ch radio.Channel) radio.Stats {
		nw := randomNet(g, true, ch, 6)
		nw.Run(150)
		return nw.Stats()
	}
	fresh1 := run(NewAdaptiveJammer(20, 1, 9))
	fresh2 := run(NewAdaptiveJammer(20, 1, 9))
	shared := NewAdaptiveJammer(20, 1, 9)
	got1 := run(shared)
	radio.ResetChannel(shared)
	got2 := run(shared)
	if got1 != fresh1 || got2 != fresh2 {
		t.Fatalf("reset-reused jammer diverged from fresh instances:\nfresh %+v / %+v\nreuse %+v / %+v",
			fresh1, fresh2, got1, got2)
	}
	// Control: withOUT the reset the second run must differ (the budget
	// is spent), proving the Reset is what restores parity.
	drained := NewAdaptiveJammer(20, 1, 9)
	run(drained)
	if leak := run(drained); leak == fresh2 {
		t.Fatal("un-reset jammer matched a fresh run; budget state is not being carried at all")
	}
	// Stacks forward Reset to their resettable members.
	stackFresh := run(Stack{NewErasure(0.1, 31), NewAdaptiveJammer(20, 1, 9)})
	st := Stack{NewErasure(0.1, 31), NewAdaptiveJammer(20, 1, 9)}
	run(st)
	radio.ResetChannel(st)
	if got := run(st); got != stackFresh {
		t.Fatalf("reset-reused stack diverged from fresh: %+v vs %+v", got, stackFresh)
	}
}

// An adaptive jammer stacked after a fault model must not spend budget
// on rounds whose every transmitter is fault-dead: RoundStart receives
// the post-suppression transmitter set. Node 0 transmits every round
// but crashes at round 0, so the channel-visible traffic is empty and
// the jammer must end the run with its full budget.
func TestAdaptiveJammerIgnoresFaultDeadTransmitters(t *testing.T) {
	g := graph.Path(2)
	f := NewFaults(2)
	f.SetCrash(0, 0) // the only transmitter is dead from the start
	j := NewAdaptiveJammer(10, 1, 3)
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: Stack{f, j}})
	nw.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	nw.SetProtocol(1, &radio.Silent{})
	nw.Run(40)
	if j.Spent() != 0 {
		t.Fatalf("jammer spent %d budget on fault-dead traffic, want 0", j.Spent())
	}
	// Budget parity: against live traffic the same jammer spends exactly
	// as much stacked with an inert fault table as it does alone.
	alone := NewAdaptiveJammer(10, 1, 3)
	nwA := radio.New(g, radio.Config{CollisionDetection: true, Channel: alone})
	nwA.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	nwA.SetProtocol(1, &radio.Silent{})
	nwA.Run(40)
	stacked := NewAdaptiveJammer(10, 1, 3)
	nwS := radio.New(g, radio.Config{CollisionDetection: true, Channel: Stack{NewFaults(2), stacked}})
	nwS.SetProtocol(0, &radio.FuncProtocol{ActFunc: func(int64) radio.Action {
		return radio.Transmit(radio.RawPacket{})
	}})
	nwS.SetProtocol(1, &radio.Silent{})
	nwS.Run(40)
	if alone.Spent() != stacked.Spent() {
		t.Fatalf("budget parity broken: alone spent %d, stacked-after-faults spent %d",
			alone.Spent(), stacked.Spent())
	}
}

// Offset shifts the round clock an inner model sees: a fault table
// wrapped at base B treats engine round r as global round r+B, so a
// late-wakeup radio whose wake round has passed in an earlier epoch
// stays awake.
func TestOffsetShiftsRoundClock(t *testing.T) {
	f := NewFaults(2)
	f.SetWake(1, 100)
	if !f.SuppressTransmit(50, 1) {
		t.Fatal("radio awake before its wake round")
	}
	o := NewOffset(f, 80)
	if !o.SuppressTransmit(10, 1) { // global round 90 < 100: still dead
		t.Fatal("offset 80: round 10 should still be dead (global 90)")
	}
	if o.SuppressTransmit(25, 1) { // global 105 >= 100: awake
		t.Fatal("offset 80: round 25 should be awake (global 105)")
	}
	// Round-keyed draws continue instead of replaying: an erasure model
	// at offset B answers DropLink(r) exactly like the bare model at
	// r+B.
	e := NewErasure(0.5, 7)
	oe := NewOffset(e, 1000)
	for r := int64(0); r < 200; r++ {
		if oe.DropLink(r, 0, 1) != e.DropLink(r+1000, 0, 1) {
			t.Fatalf("offset erasure diverged from bare model at round %d", r)
		}
	}
}

// The documented Stack ordering contract, property-tested: with Faults
// LAST, a dead radio stays fully deaf — no spurious ⊤ from NoisyCD, no
// jammer injection, no resurrected packet — across randomized stack
// compositions, seeds, and rounds. The converse ordering (Faults
// first) is exactly the resurrection hazard the docs warn about, so
// the test also confirms the hazard is real for at least one
// composition (otherwise the contract would be vacuous).
func TestStackOrderingKeepsDeadRadiosDeaf(t *testing.T) {
	const n = 8
	resurrectionSeen := false
	for trial := 0; trial < 200; trial++ {
		r := rng.New(0x57ac, uint64(trial))
		f := NewFaults(n)
		dead := radio.NodeID(r.Intn(n))
		f.SetWake(dead, 1<<40) // dead for any round the trial probes
		// Random injecting models in random order; Faults last.
		var injectors Stack
		if r.Intn(2) == 0 {
			injectors = append(injectors, NewNoisyCD(0, 1, uint64(r.Intn(1000))))
		}
		if r.Intn(2) == 0 {
			injectors = append(injectors, NewJammer(-1, 1, uint64(r.Intn(1000))))
		}
		if r.Intn(2) == 0 {
			injectors = append(injectors, NewErasure(0.2, uint64(r.Intn(1000))))
		}
		r.Shuffle(len(injectors), func(i, j int) {
			injectors[i], injectors[j] = injectors[j], injectors[i]
		})
		good := append(append(Stack{}, injectors...), f)
		round := int64(r.Intn(10000))
		// Jammers latch their round state in RoundStart.
		good.RoundStart(round, []radio.NodeID{0})
		for _, tentative := range []struct {
			out radio.Outcome
			ok  bool
		}{
			{radio.Outcome{}, false},
			{radio.Outcome{Collision: true}, true},
			{radio.Outcome{Packet: radio.RawPacket{Value: 1}, From: 0}, true},
		} {
			if out, ok := good.Observe(round, dead, 1, tentative.out, tentative.ok); ok {
				t.Fatalf("trial %d: dead radio %d observed %+v through Faults-last stack %T",
					trial, dead, out, injectors)
			}
		}
		if good.SuppressTransmit(round, dead) != true {
			t.Fatalf("trial %d: dead radio %d allowed to transmit", trial, dead)
		}
		// Faults FIRST: injectors may resurrect the silence — the hazard
		// the ordering contract exists to prevent.
		if len(injectors) > 0 {
			bad := append(Stack{f}, injectors...)
			bad.RoundStart(round, []radio.NodeID{0})
			if _, ok := bad.Observe(round, dead, 1, radio.Outcome{}, false); ok {
				resurrectionSeen = true
			}
		}
	}
	if !resurrectionSeen {
		t.Fatal("no Faults-first composition ever resurrected a dead radio; the ordering contract is vacuous")
	}
}

func TestChanceBounds(t *testing.T) {
	if chance(0, 1, 2) {
		t.Fatal("p=0 fired")
	}
	if !chance(1, 1, 2) {
		t.Fatal("p=1 did not fire")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if chance(0.3, 42, uint64(i)) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Fatalf("p=0.3 hit rate %d/10000", hits)
	}
}
