package harness

import (
	"fmt"

	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/gstdist"
	"radiocast/internal/stats"
)

// e6Modes labels the sequential/pipelined cell pairs of E6.
var e6Modes = []string{"seq", "pipe"}

// e6Case is one E6 sweep point: a graph, a schedule size bound (nBound
// >= n lets the sweep reach the n = 2^10 schedule regime on tractable
// graphs — the paper's rounds are functions of the size BOUND), and a
// Θ-constant.
type e6Case struct {
	g      *graph.Graph
	nBound int
	c      int
}

func (c e6Case) d() int { return graph.Eccentricity(c.g, 0) }

func (c e6Case) cfg(pipelined bool) gstdist.Config {
	cfg := gstdist.DefaultConfig(c.nBound, c.d(), c.c, gstdist.LayerPreset, false)
	cfg.PipelinedBoundaries = pipelined
	return cfg
}

func (c e6Case) key(mode string, seed uint64) exp.Key {
	return exp.Key{
		Experiment: "E6",
		Config:     fmt.Sprintf("graph=%s/N=%d/c=%d/%s", c.g.Name(), c.nBound, c.c, mode),
		Seed:       seed,
	}
}

func e6Cases(quick bool) []e6Case {
	g48 := graph.Grid(6, 8) // n=48, D=12: the n >= 2^10 schedule rows
	cases := []e6Case{
		{graph.Grid(4, 8), 32, 1},
		{graph.ClusterChain(4, 6), 24, 1},
		{g48, 1 << 10, 1},
	}
	if !quick {
		cases = append(cases,
			e6Case{graph.Grid(4, 8), 32, 2},
			e6Case{graph.ClusterChain(4, 6), 24, 2},
			e6Case{graph.Path(24), 1 << 10, 1}, // D=23: deepest pipeline
		)
	}
	return cases
}

// E6Plan measures the pipelined even/odd boundary construction of
// Section 2.2.4 against the sequential segment-B schedule: same
// graphs, same seeds, both modes, reporting the round at which every
// node knows its parent plus full-GST validity at schedule end. The
// pipelined schedule is 3D + 2·MaxRank - 4 rank-lengths against the
// sequential D·MaxRank — strictly fewer from D >= 4 (and from D >= 3
// at MaxRank >= 6), which is every case below.
func E6Plan(seeds int, quick bool) *exp.Plan {
	cases := e6Cases(quick)
	p := &exp.Plan{ID: "E6", Title: "Pipelined even/odd boundary construction (Thm 2.1, §2.2.4)"}
	for _, cse := range cases {
		cse := cse
		d := cse.d()
		for _, mode := range e6Modes {
			pipelined := mode == "pipe"
			cost := budgetCost(cse.g.N(), cse.cfg(pipelined).TotalRounds())
			for s := 0; s < seeds; s++ {
				s := s
				p.Cells = append(p.Cells, exp.Cell{
					Key:  cse.key(mode, uint64(s)),
					Cost: cost,
					Run: func(int64) exp.Result {
						res := RunGSTBuild(cse.g, cse.nBound, d, cse.c, pipelined, uint64(s))
						r := exp.Result{Rounds: res.Rounds, Completed: res.Done && res.Valid}
						if res.Valid {
							r.Value = 1
						}
						return r
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E6: pipelined even/odd boundary construction (Thm 2.1, §2.2.4)",
			Comment: "segment B only (preset levels); rounds = completion (every node knows its parent), budget = fixed schedule;\n" +
				"pipelined: 3D + 2·MaxRank - 4 rank-length phases vs sequential D·MaxRank; N is the schedule size bound;\n" +
				"c is the global Θ-constant (E3); valid = full GST contract at schedule end, seq/pipe over seeds",
			Header: []string{"graph", "N", "D", "c", "seq rounds", "pipe rounds", "speedup", "seq budget", "pipe budget", "valid s/p"},
		}
		for _, cse := range cases {
			d := cse.d()
			means := map[string]float64{}
			valid := map[string]int{}
			for _, mode := range e6Modes {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[cse.key(mode, uint64(s))]
					rs = append(rs, float64(r.Rounds))
					if r.Value > 0 {
						valid[mode]++
					}
				}
				means[mode] = stats.Summarize(rs, 0, 0).Mean
			}
			t.AddRow(cse.g.Name(), fmt.Sprint(cse.nBound), fmt.Sprint(d), fmt.Sprint(cse.c),
				stats.F(means["seq"]), stats.F(means["pipe"]),
				stats.F(means["seq"]/means["pipe"]),
				fmt.Sprint(cse.cfg(false).TotalRounds()), fmt.Sprint(cse.cfg(true).TotalRounds()),
				fmt.Sprintf("%d/%d of %d", valid["seq"], valid["pipe"], seeds))
		}
		return t
	}
	return p
}

// E6PipelinedBoundaries runs E6 sequentially (compat wrapper).
func E6PipelinedBoundaries(seeds int, quick bool) *stats.Table { return runPlan(E6Plan(seeds, quick)) }
