package decay_test

// Dense-vs-sparse twin identity for the SoA Decay port, on the shared
// radiotest substrate. decay.Dense's keyed draws make dense runs
// incomparable with the per-node-RNG Broadcast, so the twin is a
// sparse radio.Protocol replaying the IDENTICAL keyed coins (same
// DenseKey, same Mix3(key, node, round) draw, same Decay slot) on the
// per-node engine. Frontier pruning aside — which provably cannot
// change informed-set dynamics, see dense.go — the two engines must
// produce the same broadcast: same reception round for every node.

import (
	"fmt"
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

// keyedSparse is the sparse twin: a per-node radio.Protocol drawing
// the dense engine's keyed coins on the plain Decay schedule.
type keyedSparse struct {
	l   int64
	key uint64
	id  graph.NodeID

	has  bool
	pkt  radio.Packet
	recv int64
}

var _ radio.Protocol = (*keyedSparse)(nil)

func (b *keyedSparse) Act(r int64) radio.Action {
	if !b.has {
		return radio.Listen
	}
	_, slot := sched.Cycle(r, b.l)
	if rng.Mix3(b.key, uint64(b.id), uint64(r)) < uint64(1)<<(63-uint(slot)) {
		return radio.Transmit(b.pkt)
	}
	return radio.Listen
}

func (b *keyedSparse) Observe(r int64, out radio.Outcome) {
	if b.has || out.Packet == nil {
		return
	}
	if _, ok := out.Packet.(decay.Message); ok {
		b.has = true
		b.pkt = out.Packet
		b.recv = r
	}
}

// denseDecayCase builds the radiotest case: state is the reception
// round for informed nodes, -2 for uninformed ones.
func denseDecayCase(g *graph.Graph, seed uint64, src graph.NodeID,
	cd bool, mk func() radio.Channel) radiotest.DenseCase {
	return radiotest.DenseCase{
		Graph:         g,
		CD:            cd,
		MaxPacketBits: 64,
		Channel:       mk,
		Limit:         1 << 18,
		Build: func() (radio.DenseProtocol, func() bool, func(graph.NodeID) int64) {
			pr := decay.NewDense(g, seed, src)
			return pr, pr.Done, func(v graph.NodeID) int64 {
				if !pr.Informed(v) {
					return -2
				}
				return pr.RecvRound(v)
			}
		},
	}
}

// TestDenseMatchesKeyedSparseTwin: on shared seeds the dense run and
// the keyed sparse twin agree on every node's reception round, ideal
// and under erasure, CD on and off.
func TestDenseMatchesKeyedSparseTwin(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		l := int64(sched.LogN(g.N()))
		for _, cd := range []bool{false, true} {
			for _, loss := range []float64{0, 0.15} {
				var mk func() radio.Channel
				if loss > 0 {
					loss := loss
					mk = func() radio.Channel { return channel.NewErasure(loss, 77) }
				}
				label := fmt.Sprintf("%s cd=%v loss=%g", g.Name(), cd, loss)
				c := denseDecayCase(g, 42, 0, cd, mk)
				radiotest.Twin(t, label, c, func(nw *radio.Network, rounds int64) func(graph.NodeID) int64 {
					twins := make([]*keyedSparse, g.N())
					for v := 0; v < g.N(); v++ {
						tw := &keyedSparse{l: l, key: decay.DenseKey(42), id: graph.NodeID(v), recv: -1}
						if v == 0 {
							tw.has = true
							tw.pkt = decay.Message{Data: 0}
						}
						twins[v] = tw
						nw.SetProtocol(graph.NodeID(v), tw)
					}
					nw.Run(rounds)
					return func(v graph.NodeID) int64 {
						if !twins[v].has {
							return -2
						}
						return twins[v].recv
					}
				})
			}
		}
	}
}
