package radio_test

// Seq-vs-par byte-identity for the dense engine (the determinism
// satellite): the exact same run — rounds, every Stats counter, the
// final informed set, and every node's reception round — must come out
// byte-identical at every worker count, on the ideal channel and under
// a stacked adversity model, with and without collision detection.

import (
	"fmt"
	"testing"

	"radiocast/internal/beep"
	"radiocast/internal/channel"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// denseFingerprint is everything observable about a finished dense
// Decay run.
type denseFingerprint struct {
	rounds    int64
	completed bool
	stats     radio.Stats
	informed  []bool
	recvRound []int64
}

// runDenseDecay executes one dense Decay broadcast to completion (or
// the round limit) and fingerprints it.
func runDenseDecay(g *graph.Graph, seed uint64, source graph.NodeID, workers int,
	cd bool, mkChannel func() radio.Channel) denseFingerprint {
	cfg := radio.Config{CollisionDetection: cd, Workers: workers, MaxPacketBits: 64}
	if mkChannel != nil {
		cfg.Channel = mkChannel()
	}
	pr := decay.NewDense(g, seed, source)
	eng := radio.NewDense(g, cfg, pr)
	defer eng.Close()
	rounds, completed := eng.RunUntil(1<<20, pr.Done)
	fp := denseFingerprint{
		rounds:    rounds,
		completed: completed,
		stats:     eng.Stats(),
		informed:  make([]bool, g.N()),
		recvRound: make([]int64, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		fp.informed[v] = pr.Informed(graph.NodeID(v))
		fp.recvRound[v] = pr.RecvRound(graph.NodeID(v))
	}
	return fp
}

func sameFingerprint(t *testing.T, label string, got, want denseFingerprint) {
	t.Helper()
	if got.rounds != want.rounds || got.completed != want.completed {
		t.Fatalf("%s: rounds/completed = %d/%v, want %d/%v",
			label, got.rounds, got.completed, want.rounds, want.completed)
	}
	if got.stats != want.stats {
		t.Fatalf("%s: stats = %+v, want %+v", label, got.stats, want.stats)
	}
	for v := range got.informed {
		if got.informed[v] != want.informed[v] || got.recvRound[v] != want.recvRound[v] {
			t.Fatalf("%s: node %d informed/recv = %v/%d, want %v/%d",
				label, v, got.informed[v], got.recvRound[v], want.informed[v], want.recvRound[v])
		}
	}
}

// adverseStack builds the erasure+jammer+faults stack used by the
// channel-adversity identity cases. A fresh stack per run: Jammer
// carries per-run budget state.
func adverseStack(n int, seed uint64) radio.Channel {
	return channel.Stack{
		channel.RandomFaults(n, 0, 0.1, 40, 0.05, 1<<16, seed),
		channel.NewErasure(0.1, seed),
		channel.NewJammer(25, 0.05, seed),
	}
}

// TestDenseParallelByteIdentical is the core determinism property: for
// every workload x channel x CD combination, Workers ∈ {2, 4, 8} runs
// are byte-identical to the Workers = 1 run.
func TestDenseParallelByteIdentical(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(12, 16),
		graph.FromStream(graph.StreamGrid(17, 23)),
		graph.BuildConnected(graph.StreamGNP(400, 0.02, 7), 7),
	}
	for _, g := range graphs {
		for _, cd := range []bool{false, true} {
			for _, adverse := range []bool{false, true} {
				var mk func() radio.Channel
				if adverse {
					mk = func() radio.Channel { return adverseStack(g.N(), 99) }
				}
				base := runDenseDecay(g, 42, 0, 1, cd, mk)
				if !adverse && !base.completed {
					t.Fatalf("%s: ideal run did not complete", g.Name())
				}
				for _, workers := range []int{2, 4, 8} {
					got := runDenseDecay(g, 42, 0, workers, cd, mk)
					label := fmt.Sprintf("%s cd=%v adverse=%v workers=%d", g.Name(), cd, adverse, workers)
					sameFingerprint(t, label, got, base)
				}
			}
		}
	}
}

// runDenseCR executes one dense CR broadcast and fingerprints it, the
// same shape as runDenseDecay.
func runDenseCR(g *graph.Graph, seed uint64, source graph.NodeID, workers int,
	cd bool, mkChannel func() radio.Channel) denseFingerprint {
	cfg := radio.Config{CollisionDetection: cd, Workers: workers, MaxPacketBits: 64}
	if mkChannel != nil {
		cfg.Channel = mkChannel()
	}
	p := cr.NewParams(g.N(), graph.Eccentricity(g, source))
	pr := cr.NewDense(g, p, seed, source)
	eng := radio.NewDense(g, cfg, pr)
	defer eng.Close()
	rounds, completed := eng.RunUntil(1<<20, pr.Done)
	fp := denseFingerprint{
		rounds:    rounds,
		completed: completed,
		stats:     eng.Stats(),
		informed:  make([]bool, g.N()),
		recvRound: make([]int64, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		fp.informed[v] = pr.Informed(graph.NodeID(v))
		fp.recvRound[v] = pr.RecvRound(graph.NodeID(v))
	}
	return fp
}

// runDenseWave executes one dense collision wave and fingerprints it;
// per-node levels ride the recvRound slots.
func runDenseWave(g *graph.Graph, source graph.NodeID, horizon int64, workers int,
	mkChannel func() radio.Channel) denseFingerprint {
	cfg := radio.Config{CollisionDetection: true, Workers: workers, MaxPacketBits: 8}
	if mkChannel != nil {
		cfg.Channel = mkChannel()
	}
	pr := beep.NewDenseWave(g, source, horizon)
	eng := radio.NewDense(g, cfg, pr)
	defer eng.Close()
	rounds, completed := eng.RunUntil(horizon, pr.Done)
	fp := denseFingerprint{
		rounds:    rounds,
		completed: completed,
		stats:     eng.Stats(),
		informed:  make([]bool, g.N()),
		recvRound: make([]int64, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		fp.informed[v] = pr.Level(graph.NodeID(v)) >= 0
		fp.recvRound[v] = int64(pr.Level(graph.NodeID(v)))
	}
	return fp
}

// TestDenseCRParallelByteIdentical extends the worker-count
// determinism property to the CR port: Workers ∈ {2, 4, 8} runs match
// the Workers = 1 run byte for byte, ideal and channel-adverse, CD on
// and off.
func TestDenseCRParallelByteIdentical(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(12, 16),
		graph.FromStream(graph.StreamGrid(17, 23)),
		graph.BuildConnected(graph.StreamGNP(400, 0.02, 7), 7),
	}
	for _, g := range graphs {
		for _, cd := range []bool{false, true} {
			for _, adverse := range []bool{false, true} {
				var mk func() radio.Channel
				if adverse {
					mk = func() radio.Channel { return adverseStack(g.N(), 99) }
				}
				base := runDenseCR(g, 42, 0, 1, cd, mk)
				if !adverse && !base.completed {
					t.Fatalf("%s: ideal CR run did not complete", g.Name())
				}
				for _, workers := range []int{2, 4, 8} {
					got := runDenseCR(g, 42, 0, workers, cd, mk)
					label := fmt.Sprintf("cr %s cd=%v adverse=%v workers=%d", g.Name(), cd, adverse, workers)
					sameFingerprint(t, label, got, base)
				}
			}
		}
	}
}

// TestDenseWaveParallelByteIdentical extends the worker-count
// determinism property to the collision wave (CD always on — the
// wave's correctness assumption).
func TestDenseWaveParallelByteIdentical(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(12, 16),
		graph.FromStream(graph.StreamGrid(17, 23)),
		graph.BuildConnected(graph.StreamGNP(400, 0.02, 7), 7),
	}
	for _, g := range graphs {
		ecc := int64(graph.Eccentricity(g, 0))
		for _, adverse := range []bool{false, true} {
			horizon := ecc
			var mk func() radio.Channel
			if adverse {
				horizon = 4*ecc + 64
				mk = func() radio.Channel { return adverseStack(g.N(), 99) }
			}
			base := runDenseWave(g, 0, horizon, 1, mk)
			if !adverse && (!base.completed || base.rounds != ecc) {
				t.Fatalf("%s: ideal wave rounds/ok = %d/%v, want %d/true",
					g.Name(), base.rounds, base.completed, ecc)
			}
			for _, workers := range []int{2, 4, 8} {
				got := runDenseWave(g, 0, horizon, workers, mk)
				label := fmt.Sprintf("wave %s adverse=%v workers=%d", g.Name(), adverse, workers)
				sameFingerprint(t, label, got, base)
			}
		}
	}
}

// TestDenseDecayCompletes sanity-checks the protocol semantics on the
// ideal channel: every node gets informed, reception rounds are
// positive and bounded by the BFS structure only loosely (Decay is
// randomized), and the source never "receives".
func TestDenseDecayCompletes(t *testing.T) {
	g := graph.FromStream(graph.StreamClusterChain(10, 8))
	src := graph.NodeID(g.N() - 1)
	fp := runDenseDecay(g, 3, src, 4, false, nil)
	if !fp.completed {
		t.Fatal("dense decay did not complete")
	}
	for v := 0; v < g.N(); v++ {
		if !fp.informed[v] {
			t.Fatalf("node %d uninformed at completion", v)
		}
		if graph.NodeID(v) == src {
			if fp.recvRound[v] != -1 {
				t.Fatalf("source recvRound = %d, want -1", fp.recvRound[v])
			}
		} else if fp.recvRound[v] < 0 {
			t.Fatalf("node %d informed but recvRound = %d", v, fp.recvRound[v])
		}
	}
	if fp.stats.Deliveries < int64(g.N()-1) {
		t.Fatalf("deliveries %d < n-1 = %d", fp.stats.Deliveries, g.N()-1)
	}
}

// TestDenseDecaySeedSensitivity guards against the keyed draws
// collapsing (e.g. ignoring the round or node): different seeds must
// produce different schedules on a workload with real contention.
func TestDenseDecaySeedSensitivity(t *testing.T) {
	g := graph.ClusterChain(8, 8)
	a := runDenseDecay(g, 1, 0, 1, false, nil)
	b := runDenseDecay(g, 2, 0, 1, false, nil)
	if a.rounds == b.rounds && a.stats == b.stats {
		t.Fatal("seeds 1 and 2 produced identical runs; keyed draws look degenerate")
	}
}

// TestDenseReclosable pins that Close is idempotent and that a
// never-parallel engine closes cleanly.
func TestDenseReclosable(t *testing.T) {
	g := graph.Path(64)
	pr := decay.NewDense(g, 1, 0)
	eng := radio.NewDense(g, radio.Config{Workers: 4}, pr)
	eng.RunUntil(1<<16, pr.Done)
	eng.Close()
	eng.Close()

	pr2 := decay.NewDense(g, 1, 0)
	eng2 := radio.NewDense(g, radio.Config{}, pr2)
	eng2.RunUntil(1<<16, pr2.Done)
	eng2.Close()
}
