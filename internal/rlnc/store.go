package rlnc

import (
	"fmt"
	"math/rand"

	"radiocast/internal/bitvec"
)

// Store manages the generation (batch) structure of Section 3.4: the k
// messages are divided into generations of at most genSize messages
// and coding happens only within a generation, keeping the coefficient
// header at O(genSize) = O(log n) bits.
type Store struct {
	total   int // total number of messages across generations
	l       int // payload bits
	genSize int
	bufs    []*Buffer
	// fullGens counts generations that became decodable through Add
	// transitions (each buffer's onFull hook); when it reaches
	// len(bufs), onAll fires — the O(1) completion signal of the
	// Theorem 1.3 harness predicate.
	fullGens int
	onAll    func()
}

// NumGenerations returns how many generations cover `total` messages
// with generations of size genSize.
func NumGenerations(total, genSize int) int {
	if genSize <= 0 {
		panic("rlnc: non-positive generation size")
	}
	return (total + genSize - 1) / genSize
}

// GenBounds returns the half-open global message range [lo, hi) of
// generation gen.
func GenBounds(total, genSize, gen int) (lo, hi int) {
	lo = gen * genSize
	hi = lo + genSize
	if hi > total {
		hi = total
	}
	return lo, hi
}

// NewStore returns an empty receiver store for `total` messages of l
// bits divided into generations of genSize.
func NewStore(total, genSize, l int) *Store {
	gens := NumGenerations(total, genSize)
	s := &Store{total: total, l: l, genSize: genSize, bufs: make([]*Buffer, gens)}
	for g := 0; g < gens; g++ {
		lo, hi := GenBounds(total, genSize, g)
		s.bufs[g] = NewBuffer(g, hi-lo, l)
		s.bufs[g].SetOnFull(s.genFull)
	}
	return s
}

// NewSourceStore returns a store preloaded with all messages (the
// source's state).
func NewSourceStore(msgs []Message, genSize, l int) *Store {
	s := NewStore(len(msgs), genSize, l)
	s.ResetSource(msgs)
	return s
}

// genFull is each buffer's onFull hook.
func (s *Store) genFull() {
	s.fullGens++
	if s.fullGens == len(s.bufs) && s.onAll != nil {
		s.onAll()
	}
}

// SetOnAllDecodable installs a hook fired by the Add that makes every
// generation decodable — at most once per run. Harness runners point
// it at an O(1) completion counter (radio.DoneSet).
func (s *Store) SetOnAllDecodable(fn func()) { s.onAll = fn }

// Reset empties every generation for a new run, recycling all row and
// solver storage (the receiver-side reuse counterpart of NewStore).
func (s *Store) Reset() {
	s.fullGens = 0
	for _, b := range s.bufs {
		b.Reset()
	}
}

// ResetSource resets the store and preloads all messages (the
// source-side reuse counterpart of NewSourceStore). Preloading runs
// through Add, so the gen-full hooks fire during the preload; callers
// wiring completion counters reset them afterwards (the harness
// contract: reset protocols first, then the DoneSet).
func (s *Store) ResetSource(msgs []Message) {
	if len(msgs) != s.total {
		panic(fmt.Sprintf("rlnc: ResetSource with %d messages, want %d", len(msgs), s.total))
	}
	s.fullGens = 0
	for g, b := range s.bufs {
		lo, hi := GenBounds(s.total, s.genSize, g)
		b.ResetSource(msgs[lo:hi])
	}
}

// Generations returns the number of generations.
func (s *Store) Generations() int { return len(s.bufs) }

// Buffer returns the buffer of generation gen.
func (s *Store) Buffer(gen int) *Buffer { return s.bufs[gen] }

// Add routes a packet to its generation buffer. It returns true iff
// the packet was innovative.
func (s *Store) Add(p Packet) bool {
	if p.Gen < 0 || p.Gen >= len(s.bufs) {
		panic(fmt.Sprintf("rlnc: packet generation %d out of range [0,%d)", p.Gen, len(s.bufs)))
	}
	return s.bufs[p.Gen].Add(p)
}

// RandomPacket draws a random combination from generation gen.
func (s *Store) RandomPacket(gen int, r *rand.Rand) (Packet, bool) {
	return s.bufs[gen].RandomPacket(r)
}

// AirPacket draws the same combination as RandomPacket into generation
// gen's scratch packet (see Buffer.AirPacket): the zero-allocation
// transmission path.
func (s *Store) AirPacket(gen int, r *rand.Rand) (*Packet, bool) {
	return s.bufs[gen].AirPacket(r)
}

// CanDecodeAll reports whether every generation is decodable.
func (s *Store) CanDecodeAll() bool {
	for _, b := range s.bufs {
		if !b.CanDecode() {
			return false
		}
	}
	return true
}

// CanDecodeGen reports whether generation gen is decodable.
func (s *Store) CanDecodeGen(gen int) bool { return s.bufs[gen].CanDecode() }

// DecodeAll reconstructs all messages in global order. ok is false if
// any generation is still underdetermined.
func (s *Store) DecodeAll() (msgs []Message, ok bool) {
	out := make([]Message, 0, s.total)
	for _, b := range s.bufs {
		part, ok := b.Decode()
		if !ok {
			return nil, false
		}
		out = append(out, part...)
	}
	return out, true
}

// Rank returns the total rank across generations (progress measure).
func (s *Store) Rank() int {
	sum := 0
	for _, b := range s.bufs {
		sum += b.Rank()
	}
	return sum
}

// InfectedBy applies Definition 3.8 within a generation.
func (s *Store) InfectedBy(gen int, mu bitvec.Vec) bool {
	return s.bufs[gen].InfectedBy(mu)
}
