package cr

// Dense-vs-sparse twin identity for the SoA CR port. decay.Dense's
// keyed draws make dense runs incomparable with the per-node-RNG
// Broadcast, so the twin here is a sparse radio.Protocol that replays
// the IDENTICAL keyed coins (same DenseKey, same Mix3(key, node,
// round) draw, same FastDecay slot) on the per-node engine. Frontier
// pruning aside — which provably cannot change informed-set dynamics,
// see dense.go — the two engines must then produce the same broadcast:
// same reception round for every node, same completion round. Checked
// on the ideal channel and under per-link erasure (whose drops are
// keyed by (round, link) and therefore agree across engines), with CD
// on and off.

import (
	"fmt"
	"testing"

	"radiocast/internal/channel"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
)

// keyedSparse is the sparse twin: a per-node radio.Protocol drawing
// the dense engine's keyed coins.
type keyedSparse struct {
	params Params
	key    uint64
	id     graph.NodeID

	has  bool
	pkt  radio.Packet
	recv int64
}

var _ radio.Protocol = (*keyedSparse)(nil)

func (b *keyedSparse) Act(r int64) radio.Action {
	if !b.has {
		return radio.Listen
	}
	threshold := uint64(1) << (63 - uint(b.params.slot(r)))
	if rng.Mix3(b.key, uint64(b.id), uint64(r)) < threshold {
		return radio.Transmit(b.pkt)
	}
	return radio.Listen
}

func (b *keyedSparse) Observe(r int64, out radio.Outcome) {
	if b.has || out.Packet == nil {
		return
	}
	if _, ok := out.Packet.(decay.Message); ok {
		b.has = true
		b.pkt = out.Packet
		b.recv = r
	}
}

// runTwins executes the dense run to completion and the keyed sparse
// twin for the same number of rounds, returning both.
func runTwins(t *testing.T, g *graph.Graph, seed uint64, src graph.NodeID,
	cd bool, mkChannel func() radio.Channel) (*Dense, []*keyedSparse, int64) {
	t.Helper()
	p := NewParams(g.N(), graph.Eccentricity(g, src))

	denseCfg := radio.Config{CollisionDetection: cd, Workers: 1, MaxPacketBits: 64}
	if mkChannel != nil {
		denseCfg.Channel = mkChannel()
	}
	pr := NewDense(g, p, seed, src)
	eng := radio.NewDense(g, denseCfg, pr)
	defer eng.Close()
	rounds, ok := eng.RunUntil(1<<18, pr.Done)
	if !ok {
		t.Fatalf("dense CR incomplete after %d rounds", rounds)
	}

	sparseCfg := radio.Config{CollisionDetection: cd, MaxPacketBits: 64}
	if mkChannel != nil {
		sparseCfg.Channel = mkChannel()
	}
	nw := radio.New(g, sparseCfg)
	twins := make([]*keyedSparse, g.N())
	for v := 0; v < g.N(); v++ {
		tw := &keyedSparse{params: p, key: DenseKey(seed), id: graph.NodeID(v), recv: -1}
		if graph.NodeID(v) == src {
			tw.has = true
			tw.pkt = decay.Message{Data: int64(src)}
		}
		twins[v] = tw
		nw.SetProtocol(graph.NodeID(v), tw)
	}
	nw.Run(rounds)
	return pr, twins, rounds
}

// TestDenseMatchesKeyedSparseTwin is the byte-identity acceptance
// property: on shared seeds the dense run and the keyed sparse twin
// agree on every node's reception round, ideal and under erasure, CD
// on and off.
func TestDenseMatchesKeyedSparseTwin(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ClusterChain(8, 8),
		graph.FromStream(graph.StreamGrid(13, 17)),
		graph.BuildConnected(graph.StreamGNP(300, 0.03, 11), 11),
	}
	for _, g := range graphs {
		for _, cd := range []bool{false, true} {
			for _, loss := range []float64{0, 0.15} {
				var mk func() radio.Channel
				if loss > 0 {
					loss := loss
					mk = func() radio.Channel { return channel.NewErasure(loss, 77) }
				}
				label := fmt.Sprintf("%s cd=%v loss=%g", g.Name(), cd, loss)
				pr, twins, rounds := runTwins(t, g, 42, 0, cd, mk)
				for v := 0; v < g.N(); v++ {
					tw := twins[v]
					if tw.has != pr.Informed(graph.NodeID(v)) || tw.recv != pr.RecvRound(graph.NodeID(v)) {
						t.Fatalf("%s: node %d sparse has/recv = %v/%d, dense = %v/%d (T=%d)",
							label, v, tw.has, tw.recv,
							pr.Informed(graph.NodeID(v)), pr.RecvRound(graph.NodeID(v)), rounds)
					}
				}
			}
		}
	}
}

// TestDenseSeedSensitivity guards against the keyed draws collapsing:
// different seeds must produce different schedules on a workload with
// real contention.
func TestDenseSeedSensitivity(t *testing.T) {
	g := graph.ClusterChain(8, 8)
	p := NewParams(g.N(), graph.Eccentricity(g, 0))
	run := func(seed uint64) (int64, radio.Stats) {
		pr := NewDense(g, p, seed, 0)
		eng := radio.NewDense(g, radio.Config{}, pr)
		defer eng.Close()
		rounds, ok := eng.RunUntil(1<<18, pr.Done)
		if !ok {
			t.Fatal("incomplete")
		}
		return rounds, eng.Stats()
	}
	r1, s1 := run(1)
	r2, s2 := run(2)
	if r1 == r2 && s1 == s2 {
		t.Fatal("seeds 1 and 2 produced identical runs; keyed draws look degenerate")
	}
}

// TestDenseSlotSchedule pins that the dense port follows the FastDecay
// schedule, not plain Decay: a full-length phase must appear once per
// cycle (slots past ShortLen only occur there).
func TestDenseSlotSchedule(t *testing.T) {
	p := NewParams(4096, 64) // ShortLen = log2(64)+2 = 8, FullLen = 12
	if p.FullLen <= p.ShortLen {
		t.Fatalf("degenerate schedule: full %d <= short %d", p.FullLen, p.ShortLen)
	}
	deep := 0
	for r := int64(0); r < p.cycleLen(); r++ {
		if p.slot(r) >= p.ShortLen {
			deep++
		}
	}
	if deep != p.FullLen-p.ShortLen {
		t.Fatalf("deep slots per cycle = %d, want %d", deep, p.FullLen-p.ShortLen)
	}
}
