package harness

import (
	"fmt"

	"radiocast/internal/assign"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/radio"
	"radiocast/internal/recruit"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// Experiment couples an id with a table generator. Seeds scales the
// repetition count; Quick trims the sweep for bench/CI runs.
type Experiment struct {
	ID    string
	Title string
	Run   func(seeds int, quick bool) *stats.Table
}

// All returns every experiment in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Single-message broadcast: Decay vs CR vs GST (Thm 1.1 regime)", E1SingleMessage},
		{"E2", "Additive diameter dependence (rounds vs D)", E2DiameterScaling},
		{"E3", "Distributed GST construction (Thm 2.1)", E3GSTConstruction},
		{"E4", "Recruiting protocol (Lemma 2.3)", E4Recruiting},
		{"E5", "Assignment shrinkage per epoch budget (Lemma 2.4)", E5AssignmentShrinkage},
		{"E7", "k-message broadcast, known topology (Thm 1.2)", E7MultiMessageKnown},
		{"E8", "k-message broadcast, unknown topology + CD (Thm 1.3)", E8MultiMessageUnknown},
		{"E9", "Decay is MMV (Lemma 3.2)", E9DecayMMV},
		{"E10", "MMV GST schedule under noise (Lemma 3.3)", E10MMVGST},
		{"E11", "Decay phase progress (Lemma 2.2)", E11DecayProgress},
		{"E12", "RLNC infection and decoding (Def 3.8 / Prop 3.9)", E12RLNC},
		{"A1", "Ablation: virtual-distance vs level-keyed slow slots", A1VirtualDistance},
		{"A2", "Ablation: RLNC vs store-and-forward routing", A2CodingVsRouting},
		{"A3", "Ablation: ring width in Theorem 1.1", A3RingWidth},
	}
}

// clusterChain builds the headline workload: D ~ chain, Δ ~ clique.
func clusterChain(chain int) *graph.Graph { return graph.ClusterChain(chain, 8) }

// E1SingleMessage is the headline comparison. The "gst" column is the
// broadcast-phase cost with structure in place (the amortized regime
// the paper motivates: CD replaces topology knowledge); th1.1 total
// includes layering + distributed construction.
func E1SingleMessage(seeds int, quick bool) *stats.Table {
	chains := []int{8, 16, 32, 64}
	if quick {
		chains = []int{8, 16}
	}
	t := &stats.Table{
		Title:   "E1: single-message broadcast rounds (cluster chains, clique 8)",
		Comment: "paper: Thm 1.1 O(D+polylog) beats O(D log(n/D)+log^2 n) baselines as D grows",
		Header:  []string{"n", "D", "decay", "cr", "gst-bcast", "th11-total", "th11-build", "ok"},
	}
	for _, chain := range chains {
		g := clusterChain(chain)
		d := graph.Eccentricity(g, 0)
		var decayR, crR, gstR []float64
		okAll := true
		var th11 Theorem11Result
		for s := 0; s < seeds; s++ {
			if r, ok := RunDecay(g, uint64(s), 1<<22); ok {
				decayR = append(decayR, float64(r))
			} else {
				okAll = false
			}
			if r, ok := RunCR(g, d, uint64(s), 1<<22); ok {
				crR = append(crR, float64(r))
			} else {
				okAll = false
			}
			if r, ok := RunGSTSingle(g, false, uint64(s), 1<<22); ok {
				gstR = append(gstR, float64(r))
			} else {
				okAll = false
			}
		}
		th11 = RunTheorem11(g, d, 1, 1)
		okAll = okAll && th11.Completed
		t.AddRow(
			fmt.Sprint(g.N()), fmt.Sprint(d),
			stats.F(stats.Summarize(decayR, 0, 0).Mean),
			stats.F(stats.Summarize(crR, 0, 0).Mean),
			stats.F(stats.Summarize(gstR, 0, 0).Mean),
			fmt.Sprint(th11.Rounds),
			fmt.Sprint(th11.BuildRounds),
			fmt.Sprint(okAll),
		)
	}
	return t
}

// E2DiameterScaling fits rounds against D for each protocol; the GST
// broadcast must have a small constant slope (additive D), the
// baselines a slope proportional to log.
func E2DiameterScaling(seeds int, quick bool) *stats.Table {
	chains := []int{8, 16, 24, 32, 48, 64}
	if quick {
		chains = []int{8, 16, 24}
	}
	var ds, decayM, crM, gstM []float64
	for _, chain := range chains {
		g := clusterChain(chain)
		d := float64(graph.Eccentricity(g, 0))
		var dr, cr2, gr []float64
		for s := 0; s < seeds; s++ {
			if r, ok := RunDecay(g, uint64(s), 1<<22); ok {
				dr = append(dr, float64(r))
			}
			if r, ok := RunCR(g, int(d), uint64(s), 1<<22); ok {
				cr2 = append(cr2, float64(r))
			}
			if r, ok := RunGSTSingle(g, false, uint64(s), 1<<22); ok {
				gr = append(gr, float64(r))
			}
		}
		ds = append(ds, d)
		decayM = append(decayM, stats.Summarize(dr, 0, 0).Mean)
		crM = append(crM, stats.Summarize(cr2, 0, 0).Mean)
		gstM = append(gstM, stats.Summarize(gr, 0, 0).Mean)
	}
	fd := stats.LinearFit(ds, decayM)
	fc := stats.LinearFit(ds, crM)
	fg := stats.LinearFit(ds, gstM)
	t := &stats.Table{
		Title:   "E2: rounds-vs-D linear fits (cluster chains)",
		Comment: "paper: GST broadcast slope is O(1) per layer; Decay/CR slopes carry a log factor",
		Header:  []string{"protocol", "slope rounds/D", "intercept", "R2"},
	}
	t.AddRow("decay", stats.F(fd.Slope), stats.F(fd.Intercept), stats.F(fd.R2))
	t.AddRow("cr", stats.F(fc.Slope), stats.F(fc.Intercept), stats.F(fc.R2))
	t.AddRow("gst-bcast", stats.F(fg.Slope), stats.F(fg.Intercept), stats.F(fg.R2))
	return t
}

// E3GSTConstruction measures the distributed construction and
// validates its output.
func E3GSTConstruction(seeds int, quick bool) *stats.Table {
	gs := []*graph.Graph{
		graph.Grid(4, 8),
		graph.GNP(48, 0.12, 3),
		graph.ClusterChain(4, 6),
	}
	if !quick {
		gs = append(gs, graph.Grid(6, 10), graph.GNP(96, 0.07, 4))
	}
	t := &stats.Table{
		Title: "E3: distributed GST construction (Thm 2.1)",
		Comment: "rounds are the fixed O(D log^5 n) schedule (sequential boundaries); valid = Tree.Validate;\n" +
			"c is the global Θ-constant — w.h.p. correctness needs c=2 at these sizes, exactly the constants-vs-\n" +
			"failure-probability trade-off the paper's Θ(·) notation hides",
		Header: []string{"graph", "n", "D", "c", "rounds", "rounds/(D+1)L^5", "valid"},
	}
	for _, g := range gs {
		d := graph.Eccentricity(g, 0)
		for _, c := range []int{1, 2} {
			cfg := gstdist.DefaultConfig(g.N(), d, c, gstdist.LayerCD, false)
			valid := 0
			for s := 0; s < seeds; s++ {
				if runConstructionValid(g, cfg, uint64(s)) {
					valid++
				}
			}
			l := float64(sched.LogN(g.N()))
			norm := float64(cfg.TotalRounds()) / (float64(d+1) * l * l * l * l * l)
			t.AddRow(g.Name(), fmt.Sprint(g.N()), fmt.Sprint(d), fmt.Sprint(c),
				fmt.Sprint(cfg.TotalRounds()), stats.F(norm),
				fmt.Sprintf("%d/%d", valid, seeds))
		}
	}
	return t
}

func runConstructionValid(g *graph.Graph, cfg gstdist.Config, seed uint64) bool {
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*gstdist.Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = gstdist.New(cfg, graph.NodeID(v), v == 0, 0, rng.New(seed, 0x31, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	nw.Run(cfg.TotalRounds())
	tree := gst.NewTree(g, []graph.NodeID{0})
	for v := 0; v < g.N(); v++ {
		res := protos[v].Result()
		tree.Level[v] = res.Level
		tree.Parent[v] = res.Parent
		tree.Rank[v] = res.Rank
	}
	return tree.Validate() == nil
}

// E4Recruiting verifies Lemma 2.3's Θ(log^3 n) round budget.
func E4Recruiting(seeds int, quick bool) *stats.Table {
	sizes := []int{16, 32, 64}
	if !quick {
		sizes = append(sizes, 128)
	}
	t := &stats.Table{
		Title:   "E4: recruiting protocol (Lemma 2.3)",
		Comment: "fixed Θ(log^3 n) schedule; success = properties (a),(b),(c) all hold",
		Header:  []string{"nodes/side", "rounds", "rounds/log^3 n", "success"},
	}
	for _, half := range sizes {
		params := recruit.DefaultParams(2*half, 2)
		success := 0
		for s := 0; s < seeds; s++ {
			if recruitingRun(half, params, uint64(s)) {
				success++
			}
		}
		l := float64(sched.LogN(2 * half))
		t.AddRow(fmt.Sprint(half), fmt.Sprint(params.Rounds()),
			stats.F(float64(params.Rounds())/(l*l*l)),
			fmt.Sprintf("%d/%d", success, seeds))
	}
	return t
}

func recruitingRun(half int, params recruit.Params, seed uint64) bool {
	r := rng.New(seed, 0x41)
	b := graph.NewBuilder(2 * half)
	for u := 0; u < half; u++ {
		b.AddEdge(graph.NodeID(r.Intn(half)), graph.NodeID(half+u))
		for v := 0; v < half; v++ {
			if r.Float64() < 2.0/float64(half) {
				b.AddEdge(graph.NodeID(v), graph.NodeID(half+u))
			}
		}
	}
	g := b.Build()
	nw := radio.New(g, radio.Config{})
	reds := make([]*recruit.Red, half)
	blues := make([]*recruit.Blue, half)
	for v := 0; v < half; v++ {
		reds[v] = recruit.NewRed(params, graph.NodeID(v), rng.New(seed, 0x42, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &recruit.RedProtocol{R: reds[v]})
	}
	for u := 0; u < half; u++ {
		blues[u] = recruit.NewBlue(params, graph.NodeID(half+u), rng.New(seed, 0x43, uint64(u)))
		nw.SetProtocol(graph.NodeID(half+u), &recruit.BlueProtocol{B: blues[u]})
	}
	nw.Run(params.Rounds())
	children := map[radio.NodeID]int{}
	for _, bl := range blues {
		if !bl.Recruited() {
			return false
		}
		children[bl.Parent()]++
	}
	for v, rd := range reds {
		want := recruit.ClassZero
		switch children[graph.NodeID(v)] {
		case 0:
		case 1:
			want = recruit.ClassOne
		default:
			want = recruit.ClassMany
		}
		if rd.Class() != want {
			return false
		}
	}
	for _, bl := range blues {
		many := children[bl.Parent()] >= 2
		if many != (bl.ParentClass() == recruit.ClassMany) {
			return false
		}
	}
	return true
}

// E5AssignmentShrinkage varies the per-rank epoch budget and reports
// the unassigned fraction — Lemma 2.4's geometric shrinkage means the
// failure fraction collapses as epochs grow.
func E5AssignmentShrinkage(seeds int, quick bool) *stats.Table {
	budgets := []int{1, 2, 4, 8}
	// Loner-free worst case: a complete bipartite boundary (every blue
	// has many active reds), so only the brisk/lazy epoch machinery of
	// Lemma 2.4 can make progress. Levels and ranks are synthetic:
	// reds at level 0, blues at level 1, all blues rank 1.
	const nRed, nBlue = 6, 24
	b := graph.NewBuilder(nRed + nBlue)
	for v := 0; v < nRed; v++ {
		for u := 0; u < nBlue; u++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID(nRed+u))
		}
	}
	g := b.Build()
	dist := make([]int32, g.N())
	tree := gst.NewTree(g, []graph.NodeID{0})
	for v := 0; v < g.N(); v++ {
		if v >= nRed {
			dist[v] = 1
		}
		tree.Rank[v] = 1
	}
	t := &stats.Table{
		Title:   "E5: blues left unassigned vs epoch budget (Lemma 2.4)",
		Comment: "loner-free complete-bipartite boundary; per-rank epochs = budget (not Θ(log n)); unassigned fraction must collapse",
		Header:  []string{"epochs/rank", "unassigned frac", "runs"},
	}
	repeats := 4 * seeds
	for _, budget := range budgets {
		total, miss := 0, 0
		for s := 0; s < repeats; s++ {
			m, tot := assignmentMisses(g, dist, tree, budget, uint64(s))
			miss += m
			total += tot
		}
		frac := float64(miss) / float64(maxInt(total, 1))
		t.AddRow(fmt.Sprint(budget), stats.F(frac), fmt.Sprint(repeats))
	}
	_ = quick
	return t
}

// assignmentMisses runs one boundary (levels 0/1 of g) with an exact
// per-rank epoch budget and counts unassigned blues.
func assignmentMisses(g *graph.Graph, dist []int32, tree *gst.Tree, epochs int, seed uint64) (miss, total int) {
	params := assign.DefaultParams(g.N(), 1)
	params.EpochsOverride = epochs
	keep := make([]graph.NodeID, 0)
	for v := 0; v < g.N(); v++ {
		if dist[v] <= 1 {
			keep = append(keep, graph.NodeID(v))
		}
	}
	idx := make(map[graph.NodeID]graph.NodeID, len(keep))
	for i, v := range keep {
		idx[v] = graph.NodeID(i)
	}
	b := graph.NewBuilder(len(keep))
	isRed := make([]bool, len(keep))
	blueRank := make([]int32, len(keep))
	for _, v := range keep {
		for _, u := range g.Neighbors(v) {
			if lu, ok := idx[u]; ok {
				b.AddEdge(idx[v], lu)
			}
		}
		if dist[v] == 0 {
			isRed[idx[v]] = true
		} else {
			blueRank[idx[v]] = tree.Rank[v]
		}
	}
	sub := b.Build()
	nodes := make([]*assign.Node, sub.N())
	nw := radio.New(sub, radio.Config{})
	for v := 0; v < sub.N(); v++ {
		role := assign.Blue
		if isRed[v] {
			role = assign.Red
		}
		nodes[v] = assign.NewNode(params, graph.NodeID(v), role, blueRank[v], rng.New(seed, 0x51, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &assign.BoundaryProtocol{N: nodes[v]})
	}
	nw.Run(params.BoundaryRounds())
	for v, nd := range nodes {
		if isRed[v] {
			continue
		}
		total++
		if !nd.Assigned() {
			miss++
		}
	}
	return miss, total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
