// Package recruit implements the Recruiting protocol of Lemma 2.3: on
// a bipartite graph H between red and blue nodes (in our use, two
// consecutive BFS levels), it achieves w.h.p. in Θ(log^3 n) rounds:
//
//	(a) every blue node is assigned an adjacent red parent;
//	(b) every red node knows whether it recruited zero, one, or at
//	    least two blue nodes;
//	(c) every recruited blue node knows whether its parent recruited
//	    exactly one (itself) or at least two blue nodes.
//
// Structure (Section 2.2.1): Θ(log^2 n) recruiting iterations, each of
// 2 + Θ(log n) rounds:
//
//	round 0   red offer:   each red transmits its id with probability
//	                       2^-(g+1), where g sweeps the densities (one
//	                       density block per Θ(log n) iterations);
//	rounds 1..L  blue decay: each unrecruited blue that received a red
//	                       offer reports (blue.id, red.id) with Decay
//	                       probabilities;
//	round L+1 red ack:     every red that transmitted in round 0
//	                       repeats that transmission exactly — so every
//	                       blue that heard the offer also hears the ack
//	                       — carrying: ONE(u) if exactly one blue
//	                       reported, MANY if two or more, EMPTY if none.
//
// An ONE(u) ack recruits exactly u; a MANY ack recruits every
// unrecruited blue that received the round-0 offer.
//
// Deviation from the paper (documented in DESIGN.md): the paper lets a
// blue recruited via ONE(u) conclude "my parent has exactly one child",
// but the red may recruit more blues in later iterations, making that
// belief stale — which would corrupt the rank computation in the GST
// assignment (property (c) feeds Stage III ranking). We therefore
// append a commitment phase of one replay round per iteration: every
// red repeats its round-0 transmission pattern of iteration j carrying
// its final class (ZERO/ONE/MANY) and, for ONE, the id of its unique
// recruit. The deterministic repetition recreates the exact collision
// pattern of round 0, so each recruited blue is guaranteed to hear its
// parent's final class. This adds Θ(log^2 n) rounds — within the
// Θ(log^3 n) budget of Lemma 2.3.
package recruit

import (
	"fmt"
	"math/rand"

	"radiocast/internal/decay"
	"radiocast/internal/radio"
	"radiocast/internal/sched"
)

// Class is a red node's recruit count classification.
type Class uint8

// Classes of recruit counts (property (b) of Lemma 2.3).
const (
	ClassZero Class = iota + 1
	ClassOne
	ClassMany
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassOne:
		return "one"
	case ClassMany:
		return "many"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Params fixes the schedule of one recruiting run.
type Params struct {
	// L is the Decay phase length ⌈log2 n⌉.
	L int
	// IterPerDensity is the Θ(log n) number of iterations spent on
	// each offer density.
	IterPerDensity int
	// Densities is the number of offer densities swept (default L, for
	// probabilities 1/2 .. 2^-Densities).
	Densities int
}

// DefaultParams returns the schedule for network size n with constant
// multiplier c (the Θ(log n) iterations-per-density constant).
func DefaultParams(n, c int) Params {
	l := sched.LogN(n)
	if c < 1 {
		c = 1
	}
	return Params{L: l, IterPerDensity: c * l, Densities: l}
}

// Iterations returns the number of recruiting iterations T.
func (p Params) Iterations() int { return p.IterPerDensity * p.Densities }

// IterLen returns the rounds per iteration: offer + L decay + ack.
func (p Params) IterLen() int { return p.L + 2 }

// Rounds returns the total length of a recruiting run, including the
// commitment (replay) phase of one round per iteration.
func (p Params) Rounds() int64 {
	t := int64(p.Iterations())
	return t*int64(p.IterLen()) + t
}

// offerProb returns the red transmission probability for iteration j.
func (p Params) offerProb(iter int) float64 {
	g := iter / p.IterPerDensity
	if g >= p.Densities {
		g = p.Densities - 1
	}
	return 1 / float64(int64(2)<<uint(g))
}

// position decomposes an in-run offset into its schedule position.
type position struct {
	replay bool
	iter   int // iteration index (both phases)
	slot   int // 0 = offer, 1..L = decay slots, L+1 = ack (iteration phase)
}

func (p Params) locate(off int64) position {
	t := int64(p.Iterations())
	iterPhase := t * int64(p.IterLen())
	if off < iterPhase {
		return position{iter: int(off / int64(p.IterLen())), slot: int(off % int64(p.IterLen()))}
	}
	return position{replay: true, iter: int(off - iterPhase)}
}

// Packets.

// Offer is the red round-0 transmission. Tag scopes the offer when
// several recruiting runs are audible at once (the pipelined boundary
// construction of Section 2.2.4 runs same-parity boundaries
// concurrently; boundaries within hearing distance carry distinct
// level-mod-4 tags): a blue accepts only offers whose tag matches its
// expected red level. Tag 0 everywhere reproduces the untagged
// protocol exactly.
type Offer struct {
	Red radio.NodeID
	Tag int32
}

// Bits implements radio.Packet.
func (Offer) Bits() int { return 34 }

// Report is the blue decay-phase transmission (u.id, v.id).
type Report struct {
	Blue, Red radio.NodeID
}

// Bits implements radio.Packet.
func (Report) Bits() int { return 64 }

// Ack is the red end-of-iteration transmission: the iteration-local
// recruit decision.
type Ack struct {
	Red   radio.NodeID
	Class Class        // ClassZero = empty message
	Only  radio.NodeID // recruit id when Class == ClassOne
}

// Bits implements radio.Packet.
func (Ack) Bits() int { return 72 }

// Final is the commitment-phase transmission: the red's final class.
type Final struct {
	Red   radio.NodeID
	Class Class
	Only  radio.NodeID
}

// Bits implements radio.Packet.
func (Final) Bits() int { return 72 }

// Red is the red-side state machine. Drive it with Act/Observe using
// offsets in [0, Params.Rounds()); after that the run is complete and
// Class()/OnlyChild() are valid.
type Red struct {
	params Params
	id     radio.NodeID
	rng    *rand.Rand

	transmitted []bool // round-0 choice per iteration, for ack + replay

	// Current-iteration reporter tracking.
	curIter       int
	firstReporter radio.NodeID
	reporterCount int // saturates at 2

	// Accumulated recruitment outcome.
	oneIters  int
	manyIters bool
	onlyChild radio.NodeID

	// tag scopes this red's offers (see Offer.Tag); zero by default.
	tag int32

	// Boxed packets reused across transmissions: the offer is constant
	// for the run, the final is constant across the whole replay phase.
	offerPkt radio.Packet
	finalPkt radio.Packet
}

// NewRed creates the red-side machine for node id.
func NewRed(p Params, id radio.NodeID, rng *rand.Rand) *Red {
	return &Red{
		params:        p,
		id:            id,
		rng:           rng,
		transmitted:   make([]bool, p.Iterations()),
		curIter:       -1,
		firstReporter: -1,
		onlyChild:     -1,
		offerPkt:      Offer{Red: id},
	}
}

// SetTag scopes the red's offers to tag (call before the run starts).
// A no-op at the current tag, so untagged (sequential) callers never
// pay the re-boxing.
func (r *Red) SetTag(tag int32) {
	if tag == r.tag {
		return
	}
	r.tag = tag
	r.offerPkt = Offer{Red: r.id, Tag: tag}
}

// Class returns the final recruit classification (valid after the run).
func (r *Red) Class() Class {
	switch {
	case r.manyIters || r.oneIters >= 2:
		return ClassMany
	case r.oneIters == 1:
		return ClassOne
	default:
		return ClassZero
	}
}

// OnlyChild returns the unique recruit when Class() == ClassOne.
func (r *Red) OnlyChild() radio.NodeID { return r.onlyChild }

func (r *Red) beginIter(iter int) {
	if iter != r.curIter {
		r.curIter = iter
		r.firstReporter = -1
		r.reporterCount = 0
	}
}

// Act drives the machine at in-run offset off.
func (r *Red) Act(off int64) radio.Action {
	pos := r.params.locate(off)
	if pos.replay {
		if !r.transmitted[pos.iter] {
			return radio.Listen
		}
		if r.finalPkt == nil {
			// The accumulated outcome is frozen once the replay phase
			// starts, so the final packet boxes once.
			r.finalPkt = Final{Red: r.id, Class: r.Class(), Only: r.onlyChild}
		}
		return radio.Transmit(r.finalPkt)
	}
	r.beginIter(pos.iter)
	switch {
	case pos.slot == 0:
		r.transmitted[pos.iter] = r.rng.Float64() < r.params.offerProb(pos.iter)
		if r.transmitted[pos.iter] {
			return radio.Transmit(r.offerPkt)
		}
		return radio.Listen
	case pos.slot == r.params.L+1:
		if !r.transmitted[pos.iter] {
			return radio.Listen
		}
		ack := Ack{Red: r.id, Class: ClassZero, Only: -1}
		switch r.reporterCount {
		case 0:
			// empty message: preserve the collision pattern
		case 1:
			ack.Class = ClassOne
			ack.Only = r.firstReporter
			r.oneIters++
			if r.oneIters == 1 {
				r.onlyChild = r.firstReporter
			}
		default:
			ack.Class = ClassMany
			r.manyIters = true
		}
		return radio.Transmit(ack)
	default:
		return radio.Listen // decay slots: reds listen for reports
	}
}

// Observe drives the machine with the outcome at offset off.
func (r *Red) Observe(off int64, out radio.Outcome) {
	pos := r.params.locate(off)
	if pos.replay || pos.slot == 0 || pos.slot == r.params.L+1 {
		return
	}
	rep, ok := out.Packet.(Report)
	if !ok || rep.Red != r.id {
		return
	}
	r.beginIter(pos.iter)
	if r.reporterCount == 0 {
		r.firstReporter = rep.Blue
		r.reporterCount = 1
	} else if rep.Blue != r.firstReporter {
		r.reporterCount = 2
	}
}

// Blue is the blue-side state machine.
type Blue struct {
	params Params
	id     radio.NodeID
	rng    *rand.Rand

	// Current-iteration offer.
	curIter   int
	offerFrom radio.NodeID

	// wantTag is the expected tag on incoming offers (see Offer.Tag);
	// zero by default.
	wantTag int32

	// Recruitment outcome.
	parent      radio.NodeID
	recruitIter int
	parentClass Class // final (after commitment phase)

	// reportPkt is the boxed report for the current offer (re-boxed
	// only when the offering red changes).
	reportPkt radio.Packet
	reportFor radio.NodeID
}

// NewBlue creates the blue-side machine for node id.
func NewBlue(p Params, id radio.NodeID, rng *rand.Rand) *Blue {
	return &Blue{
		params:      p,
		id:          id,
		rng:         rng,
		curIter:     -1,
		offerFrom:   -1,
		parent:      -1,
		recruitIter: -1,
	}
}

// SetWantTag restricts the blue to offers carrying tag (call before
// the run starts).
func (b *Blue) SetWantTag(tag int32) { b.wantTag = tag }

// Recruited reports whether the node has a parent.
func (b *Blue) Recruited() bool { return b.parent >= 0 }

// Parent returns the assigned red parent (-1 if none).
func (b *Blue) Parent() radio.NodeID { return b.parent }

// ParentClass returns the parent's final class as learned in the
// commitment phase: ClassOne means this blue is the parent's only
// recruit; ClassMany means the parent recruited at least two. Zero
// value 0 means the commitment message was never received (a protocol
// failure the caller can detect).
func (b *Blue) ParentClass() Class { return b.parentClass }

func (b *Blue) beginIter(iter int) {
	if iter != b.curIter {
		b.curIter = iter
		b.offerFrom = -1
	}
}

// Act drives the machine at in-run offset off.
func (b *Blue) Act(off int64) radio.Action {
	pos := b.params.locate(off)
	if pos.replay {
		return radio.Listen
	}
	b.beginIter(pos.iter)
	if pos.slot >= 1 && pos.slot <= b.params.L {
		// Decay slot: report if unrecruited and offered-to.
		if b.Recruited() || b.offerFrom < 0 {
			return radio.Listen
		}
		if b.rng.Float64() < decay.TransmitProb(pos.slot-1) {
			if b.reportPkt == nil || b.reportFor != b.offerFrom {
				b.reportPkt = Report{Blue: b.id, Red: b.offerFrom}
				b.reportFor = b.offerFrom
			}
			return radio.Transmit(b.reportPkt)
		}
	}
	return radio.Listen
}

// Observe drives the machine with the outcome at offset off.
func (b *Blue) Observe(off int64, out radio.Outcome) {
	if out.Packet == nil {
		return
	}
	pos := b.params.locate(off)
	if pos.replay {
		if fin, ok := out.Packet.(Final); ok && pos.iter == b.recruitIter && fin.Red == b.parent {
			b.parentClass = fin.Class
		}
		return
	}
	b.beginIter(pos.iter)
	switch pkt := out.Packet.(type) {
	case Offer:
		if pos.slot == 0 && pkt.Tag == b.wantTag {
			b.offerFrom = pkt.Red
		}
	case Ack:
		if pos.slot != b.params.L+1 || b.Recruited() || b.offerFrom < 0 || pkt.Red != b.offerFrom {
			return
		}
		switch pkt.Class {
		case ClassOne:
			if pkt.Only == b.id {
				b.parent = pkt.Red
				b.recruitIter = pos.iter
			}
		case ClassMany:
			b.parent = pkt.Red
			b.recruitIter = pos.iter
		}
	}
}
