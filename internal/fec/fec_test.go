package fec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiocast/internal/bitvec"
	"radiocast/internal/rlnc"
)

func randBatch(r *rand.Rand, k, l int) []rlnc.Message {
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	return msgs
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(20)
		const l = 16
		batch := randBatch(r, k, l)
		enc := NewEncoder(3, batch, l)
		dec := NewDecoder(3, k, l)
		for i := 0; i < 10*k+80 && !dec.Done(); i++ {
			dec.Add(enc.Packet(r))
		}
		got, ok := dec.Decode()
		return ok && Verify(got, batch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderIgnoresDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	batch := randBatch(r, 4, 8)
	enc := NewEncoder(0, batch, 8)
	dec := NewDecoder(0, 4, 8)
	p := enc.Packet(r)
	first := dec.Add(p)
	second := dec.Add(p)
	if second {
		t.Fatal("duplicate packet counted as innovative")
	}
	_ = first
}

func TestOverheadIsSmall(t *testing.T) {
	// A random F2 fountain should decode after k + ~small packets.
	// Measure across many trials: average overhead < 3 packets.
	r := rand.New(rand.NewSource(7))
	const k, l, trials = 16, 8, 200
	totalOverhead := 0
	for trial := 0; trial < trials; trial++ {
		batch := randBatch(r, k, l)
		enc := NewEncoder(0, batch, l)
		dec := NewDecoder(0, k, l)
		received := 0
		for !dec.Done() {
			dec.Add(enc.Packet(r))
			received++
			if received > k+100 {
				t.Fatal("fountain failed to decode after k+100 packets")
			}
		}
		totalOverhead += received - k
	}
	avg := float64(totalOverhead) / trials
	if avg > 3.0 {
		t.Fatalf("average fountain overhead %.2f packets, want < 3", avg)
	}
}

func TestLossyChannelStillDecodes(t *testing.T) {
	// Drop 60% of packets at random: fountain must still decode (that
	// is the point of using FEC at the ring boundary, where Decay
	// delivers an arbitrary subset of transmissions).
	r := rand.New(rand.NewSource(11))
	const k, l = 12, 16
	batch := randBatch(r, k, l)
	enc := NewEncoder(0, batch, l)
	dec := NewDecoder(0, k, l)
	sent := 0
	for !dec.Done() {
		p := enc.Packet(r)
		sent++
		if r.Float64() < 0.6 {
			continue // lost
		}
		dec.Add(p)
		if sent > 100*k {
			t.Fatal("no decode after excessive sends")
		}
	}
	got, ok := dec.Decode()
	if !ok || !Verify(got, batch) {
		t.Fatal("decode failed or corrupted")
	}
}

func TestRankMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	batch := randBatch(r, 8, 8)
	enc := NewEncoder(0, batch, 8)
	dec := NewDecoder(0, 8, 8)
	prev := 0
	for i := 0; i < 60; i++ {
		dec.Add(enc.Packet(r))
		if dec.Rank() < prev {
			t.Fatal("rank decreased")
		}
		prev = dec.Rank()
	}
	if prev != 8 {
		t.Fatalf("rank = %d after 60 packets, want 8", prev)
	}
}

func TestExpectedOverheadFloor(t *testing.T) {
	if ExpectedOverhead(0) != 1 || ExpectedOverhead(5) != 5 {
		t.Fatal("ExpectedOverhead wrong")
	}
}

func BenchmarkFountainK32(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	batch := randBatch(r, 32, 32)
	enc := NewEncoder(0, batch, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(0, 32, 32)
		for !dec.Done() {
			dec.Add(enc.Packet(r))
		}
	}
}
