// Package decay implements the Decay protocol of Bar-Yehuda, Goldreich
// and Itai [2] and its derivatives used throughout the paper:
//
//   - Broadcast: the classic single-message Decay broadcast,
//     O(D log n + log^2 n) rounds w.h.p. (the paper's baseline).
//   - MMV: the level-clocked Decay schedule of Lemma 3.2, which remains
//     correct when nodes lacking the message jam their scheduled slots
//     with noise (the multi-message-viable property, Definition 3.1).
//   - Layering: the Decay-based BFS layering of Section 2.2.2,
//     O(D log^2 n) rounds without collision detection.
//
// The Decay phase structure (Section 2.2.1): rounds are grouped into
// phases of L = ⌈log2 n⌉ rounds; in slot i of a phase a participating
// node transmits with probability 2^-(i+1). Lemma 2.2: a listener with
// at least one participating neighbor receives within a phase with
// probability ≥ 1/8.
package decay

import (
	"math/rand"

	"radiocast/internal/radio"
	"radiocast/internal/sched"
)

// Message is the broadcast payload packet. Data is an opaque value
// used by tests to verify end-to-end integrity.
type Message struct {
	Data int64
}

// Bits implements radio.Packet: one id plus payload, O(log n) bits.
func (Message) Bits() int { return 64 }

// TransmitProb returns the Decay transmission probability for slot
// `slot` of a phase: 2^-(slot+1), so a phase of length L sweeps the
// densities 1/2, 1/4, ..., 2^-L.
func TransmitProb(slot int) float64 {
	return 1 / float64(int64(2)<<uint(slot))
}

// Broadcast is the classic BGI Decay broadcast protocol for a single
// message: a node that has the message participates in every Decay
// phase; nodes without it stay silent (contrast with MMV below).
type Broadcast struct {
	rng *rand.Rand
	l   int // phase length

	has       bool
	msg       Message
	pkt       radio.Packet // msg boxed once, reused every transmission
	RecvRound int64        // round of first reception (-1 for the source)

	// DoneSet, when non-nil, is ticked on the first reception (the
	// not-done -> done transition); initially-done sources are accounted
	// by the harness's post-reset scan.
	DoneSet *radio.DoneSet
}

var _ radio.Protocol = (*Broadcast)(nil)

// NewBroadcast creates the protocol for one node. The source holds the
// message from the start.
func NewBroadcast(n int, source bool, msg Message, rng *rand.Rand) *Broadcast {
	b := &Broadcast{rng: rng, l: sched.LogN(n)}
	b.Reset(source, msg)
	return b
}

// Reset rewinds the protocol for a new run on the same network size,
// allocation-free except for re-boxing the source's message. The RNG
// binding is unchanged; reseeding it is the caller's job.
func (b *Broadcast) Reset(source bool, msg Message) {
	b.has = source
	b.msg = msg
	b.RecvRound = -1
	if source {
		b.pkt = msg
	} else {
		b.pkt = nil
	}
}

// Has reports whether the node has received the message.
func (b *Broadcast) Has() bool { return b.has }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (b *Broadcast) Rng() *rand.Rand { return b.rng }

// Act implements radio.Protocol.
func (b *Broadcast) Act(r int64) radio.Action {
	if !b.has {
		return radio.Listen // must keep listening every round
	}
	_, slot := sched.Cycle(r, int64(b.l))
	if b.rng.Float64() < TransmitProb(int(slot)) {
		return radio.Transmit(b.pkt)
	}
	return radio.Listen
}

// Observe implements radio.Protocol.
func (b *Broadcast) Observe(r int64, out radio.Outcome) {
	if b.has || out.Packet == nil {
		return
	}
	if m, ok := out.Packet.(Message); ok {
		b.has = true
		b.msg = m
		b.pkt = out.Packet // reuse the already-boxed message
		b.RecvRound = r
		b.DoneSet.Tick()
	}
}

// MMV is the Decay schedule of Lemma 3.2, clocked by BFS level: a node
// at distance l from the source is prompted only in rounds
// r ≡ l+1 (mod 3), with probability 2^-((r-l-1)/3 mod ⌈log n⌉). When
// prompted, a node holding the message sends it; a node without the
// message sends noise if Noising is set (the MMV adversary of
// Definition 3.1) and stays silent otherwise.
type MMV struct {
	rng     *rand.Rand
	l       int // ⌈log n⌉
	level   int64
	noising bool

	has       bool
	msg       Message
	pkt       radio.Packet // msg boxed once, reused every transmission
	RecvRound int64

	// DoneSet, when non-nil, is ticked on the first reception.
	DoneSet *radio.DoneSet
}

var _ radio.Protocol = (*MMV)(nil)

// NewMMV creates the Lemma 3.2 protocol for a node at BFS level
// `level`. The source is level 0 and holds the message.
func NewMMV(n int, level int, noising bool, msg Message, rng *rand.Rand) *MMV {
	m := &MMV{rng: rng, l: sched.LogN(n)}
	m.Reset(level, noising, msg)
	return m
}

// Reset rewinds the protocol for a new run on the same network size.
// The RNG binding is unchanged; reseeding it is the caller's job.
func (m *MMV) Reset(level int, noising bool, msg Message) {
	m.level = int64(level)
	m.noising = noising
	m.has = level == 0
	m.msg = msg
	m.RecvRound = -1
	if m.has {
		m.pkt = msg
	} else {
		m.pkt = nil
	}
}

// Has reports whether the node has received the message.
func (m *MMV) Has() bool { return m.has }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (m *MMV) Rng() *rand.Rand { return m.rng }

// Act implements radio.Protocol.
func (m *MMV) Act(r int64) radio.Action {
	if r < m.level+1 || (r-m.level-1)%3 != 0 {
		return radio.Listen
	}
	exp := ((r - m.level - 1) / 3) % int64(m.l)
	p := 1 / float64(int64(1)<<uint(exp))
	if m.rng.Float64() >= p {
		return radio.Listen
	}
	if m.has {
		return radio.Transmit(m.pkt)
	}
	if m.noising {
		return radio.Transmit(radio.NoisePacket{})
	}
	return radio.Listen
}

// Observe implements radio.Protocol.
func (m *MMV) Observe(r int64, out radio.Outcome) {
	if m.has || out.Packet == nil {
		return
	}
	if msg, ok := out.Packet.(Message); ok {
		m.has = true
		m.msg = msg
		m.pkt = out.Packet
		m.RecvRound = r
		m.DoneSet.Tick()
	}
}
