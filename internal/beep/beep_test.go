package beep

import (
	"testing"
	"testing/quick"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

func TestWaveLevelsMatchBFSOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(50),
		graph.Grid(7, 9),
		graph.Star(40),
		graph.Complete(20),
		graph.ClusterChain(8, 6),
		graph.GNP(120, 0.06, 4),
		graph.BinaryTree(63),
	}
	for _, g := range gs {
		t.Run(g.Name(), func(t *testing.T) {
			want := graph.BFS(g, 0)
			nw := radio.New(g, radio.Config{CollisionDetection: true})
			levels := RunLayering(nw, 0, int64(want.MaxDist)+1)
			for v := 0; v < g.N(); v++ {
				if levels[v] != int(want.Dist[v]) {
					t.Fatalf("node %d: level %d, want %d", v, levels[v], want.Dist[v])
				}
			}
			// Exactly D+1 rounds, deterministic.
			if nw.Stats().Rounds != int64(want.MaxDist)+1 {
				t.Fatalf("rounds = %d, want %d", nw.Stats().Rounds, want.MaxDist+1)
			}
		})
	}
}

func TestWaveIsDeterministic(t *testing.T) {
	g := graph.GNP(60, 0.08, 9)
	run := func() []int {
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		return RunLayering(nw, 0, int64(g.N()))
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("collision wave nondeterministic")
		}
	}
}

func TestWaveRequiresCollisionDetection(t *testing.T) {
	// Without CD, a node whose neighbors all collide never triggers:
	// on a diamond source->a,b->sink, sink hears a+b colliding forever.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()

	nw := radio.New(g, radio.Config{CollisionDetection: false})
	levels := RunLayering(nw, 0, 10)
	if levels[3] != -1 {
		t.Fatalf("sink got level %d without CD; collisions must not trigger", levels[3])
	}

	nwCD := radio.New(g, radio.Config{CollisionDetection: true})
	levelsCD := RunLayering(nwCD, 0, 10)
	if levelsCD[3] != 2 {
		t.Fatalf("sink level %d with CD, want 2", levelsCD[3])
	}
}

func TestWaveHorizonTooShortLeavesUnreached(t *testing.T) {
	g := graph.Path(10)
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	levels := RunLayering(nw, 0, 4)
	if levels[3] != 3 {
		t.Fatalf("level[3] = %d", levels[3])
	}
	if levels[9] != -1 {
		t.Fatalf("node beyond horizon has level %d, want -1", levels[9])
	}
}

func TestWavePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.UnitDisk(70, graph.ConnectivityRadius(70), seed)
		want := graph.BFS(g, 0)
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		levels := RunLayering(nw, 0, int64(want.MaxDist)+1)
		for v := 0; v < g.N(); v++ {
			if levels[v] != int(want.Dist[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaveGrid64(b *testing.B) {
	g := graph.Grid(64, 64)
	d := int64(126)
	for i := 0; i < b.N; i++ {
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		RunLayering(nw, 0, d+1)
	}
}
