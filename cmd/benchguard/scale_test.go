package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// artifact builds a minimal radiobench -json blob with one E19 cell
// per (config, mem, wall, rounds) row.
func artifact(cells string) []byte {
	return []byte(`{"module":"radiocast","experiments":[{"id":"E19","cells":[` + cells + `]}]}`)
}

const goodCell = `{"experiment":"E19","config":"gnp/n=100000","seed":0,"rounds":127,"completed":true,"value":99999,"mem_bytes":12800000,"wall_us":100000}`

func baseBaseline() ScaleBaseline {
	return ScaleBaseline{
		BytesTolerancePct:      25,
		ThroughputTolerancePct: 60,
		Workloads: map[string]ScaleRow{
			"gnp/n=100000": {BytesPerNode: 128, RoundsPerSec: 1270},
		},
	}
}

func TestScaleMetrics(t *testing.T) {
	got, err := scaleMetrics(artifact(goodCell))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := got["gnp/n=100000"]
	if !ok {
		t.Fatalf("workload missing: %v", got)
	}
	if row.BytesPerNode != 128 {
		t.Errorf("bytes/node = %g, want 128", row.BytesPerNode)
	}
	// 127 rounds in 0.1 s.
	if row.RoundsPerSec != 1270 {
		t.Errorf("rounds/sec = %g, want 1270", row.RoundsPerSec)
	}
}

// TestScaleMetricsIncludesE20 pins that the ratchet aggregates BOTH
// scale experiments — E19 and the E20 erasure sweep — and nothing
// else: a guarded E20 config silently filtered out would be a disabled
// guard.
func TestScaleMetricsIncludesE20(t *testing.T) {
	blob := []byte(`{"module":"radiocast","experiments":[
		{"id":"E19","cells":[{"config":"decay/gnp/n=100000","rounds":127,"completed":true,"mem_bytes":12800000,"wall_us":100000}]},
		{"id":"E20","cells":[{"config":"loss=0.1/cr/n=100000","rounds":400,"completed":true,"mem_bytes":12800000,"wall_us":200000}]},
		{"id":"E1","cells":[{"config":"chain=8/decay/n=100000","rounds":99,"completed":true,"mem_bytes":1,"wall_us":1}]}]}`)
	got, err := scaleMetrics(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["decay/gnp/n=100000"]; !ok {
		t.Errorf("E19 config missing: %v", got)
	}
	row, ok := got["loss=0.1/cr/n=100000"]
	if !ok {
		t.Fatalf("E20 config missing: %v", got)
	}
	if row.RoundsPerSec != 2000 {
		t.Errorf("E20 rounds/sec = %g, want 2000", row.RoundsPerSec)
	}
	if len(got) != 2 {
		t.Errorf("non-scale experiments must stay out of the ratchet: %v", got)
	}
}

func TestScaleMetricsMeansOverSeeds(t *testing.T) {
	cells := goodCell + `,{"experiment":"E19","config":"gnp/n=100000","seed":1,"rounds":127,"completed":true,"mem_bytes":25600000,"wall_us":50000}`
	got, err := scaleMetrics(artifact(cells))
	if err != nil {
		t.Fatal(err)
	}
	row := got["gnp/n=100000"]
	if row.BytesPerNode != (128+256)/2 {
		t.Errorf("bytes/node = %g, want 192", row.BytesPerNode)
	}
	if row.RoundsPerSec != (1270+2540)/2 {
		t.Errorf("rounds/sec = %g, want 1905", row.RoundsPerSec)
	}
}

func TestScaleMetricsSkipsIncomplete(t *testing.T) {
	cell := strings.Replace(goodCell, `"completed":true`, `"completed":false`, 1)
	got, err := scaleMetrics(artifact(cell))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("incomplete cell should be dropped, got %v", got)
	}
}

func TestCheckScaleOK(t *testing.T) {
	var out strings.Builder
	got := map[string]ScaleRow{"gnp/n=100000": {BytesPerNode: 130, RoundsPerSec: 1200}}
	if checkScale(baseBaseline(), got, &out) {
		t.Fatalf("in-band trajectory flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok gnp/n=100000") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

func TestCheckScaleBytesRegression(t *testing.T) {
	var out strings.Builder
	// 128 * 1.25 = 160 is the limit; 170 breaches it.
	got := map[string]ScaleRow{"gnp/n=100000": {BytesPerNode: 170, RoundsPerSec: 1270}}
	if !checkScale(baseBaseline(), got, &out) {
		t.Fatal("bytes/node regression not flagged")
	}
	if !strings.Contains(out.String(), "bytes/node") {
		t.Errorf("failure line should name bytes/node:\n%s", out.String())
	}
}

func TestCheckScaleThroughputRegression(t *testing.T) {
	var out strings.Builder
	// Floor is 1270 * 0.4 = 508; 500 breaches it.
	got := map[string]ScaleRow{"gnp/n=100000": {BytesPerNode: 128, RoundsPerSec: 500}}
	if !checkScale(baseBaseline(), got, &out) {
		t.Fatal("rounds/sec regression not flagged")
	}
	if !strings.Contains(out.String(), "rounds/sec") {
		t.Errorf("failure line should name rounds/sec:\n%s", out.String())
	}
}

func TestCheckScaleBothRegressionsReported(t *testing.T) {
	var out strings.Builder
	got := map[string]ScaleRow{"gnp/n=100000": {BytesPerNode: 999, RoundsPerSec: 1}}
	if !checkScale(baseBaseline(), got, &out) {
		t.Fatal("regressions not flagged")
	}
	if c := strings.Count(out.String(), "FAIL"); c != 2 {
		t.Errorf("want both FAIL lines, got %d:\n%s", c, out.String())
	}
}

func TestCheckScaleMissingWorkloadFails(t *testing.T) {
	var out strings.Builder
	if !checkScale(baseBaseline(), map[string]ScaleRow{}, &out) {
		t.Fatal("missing guarded workload must fail")
	}
	if !strings.Contains(out.String(), "missing from artifact") {
		t.Errorf("missing-guard line absent:\n%s", out.String())
	}
}

func TestCheckScaleImprovementNotes(t *testing.T) {
	var out strings.Builder
	got := map[string]ScaleRow{"gnp/n=100000": {BytesPerNode: 100, RoundsPerSec: 2000}}
	if checkScale(baseBaseline(), got, &out) {
		t.Fatalf("improvement flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("improvement note absent:\n%s", out.String())
	}
}

func TestConfigN(t *testing.T) {
	for _, tc := range []struct {
		config string
		n      int64
		ok     bool
	}{
		{"gnp/n=100000", 100000, true},
		{"path/n=1000", 1000, true},
		{"weird", 0, false},
		{"gnp/n=", 0, false},
	} {
		n, ok := configN(tc.config)
		if n != tc.n || ok != tc.ok {
			t.Errorf("configN(%q) = %d,%v want %d,%v", tc.config, n, ok, tc.n, tc.ok)
		}
	}
}

// TestCommittedScaleBaseline checks the committed baseline parses and
// carries sane trajectory values for every guarded workload.
func TestCommittedScaleBaseline(t *testing.T) {
	blob, err := os.ReadFile("../../bench/scale_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var base ScaleBaseline
	if err := dec.Decode(&base); err != nil {
		t.Fatalf("parse committed baseline: %v", err)
	}
	if base.BytesTolerancePct <= 0 || base.ThroughputTolerancePct <= 0 {
		t.Fatal("committed baseline must set positive tolerances")
	}
	if len(base.Workloads) == 0 {
		t.Fatal("committed baseline guards no workloads")
	}
	for name, row := range base.Workloads {
		if _, ok := configN(name); !ok {
			t.Errorf("workload key %q does not carry n=", name)
		}
		if row.BytesPerNode <= 0 || row.RoundsPerSec <= 0 {
			t.Errorf("workload %q has non-positive trajectory values", name)
		}
	}
}
