// Package radio implements the synchronous radio network model of the
// paper (Section 1.1, following Chlamtac–Kutten):
//
//   - Time proceeds in synchronous rounds over an undirected graph.
//   - In each round every node either transmits one packet or listens.
//   - A listening node receives a packet iff exactly one neighbor
//     transmits in that round.
//   - With collision detection (CD), a listener with two or more
//     transmitting neighbors observes the collision symbol ⊤; without
//     CD it observes silence.
//   - Transmitters receive nothing in rounds they transmit.
//
// The engine counts rounds faithfully while supporting node sleeping:
// a protocol that can prove (from the global clock) that it will
// discard all input until round X may return SleepUntil=X, letting the
// engine fast-forward wall-clock work through globally idle windows.
// The reported round counts always include idle rounds.
package radio

import (
	"fmt"

	"radiocast/internal/graph"
	"radiocast/internal/obs"
)

// NodeID identifies a node (0..N-1), aliasing graph.NodeID.
type NodeID = graph.NodeID

// Packet is the unit of transmission. Protocols define their own
// packet types; Bits reports the packet's size for enforcement of the
// B = Θ(log n) packet-size model.
type Packet interface {
	Bits() int
}

// Outcome is what a listening node observes at the end of a round in
// which at least one neighbor transmitted.
type Outcome struct {
	// Collision is true when two or more neighbors transmitted and
	// collision detection is enabled (the ⊤ symbol).
	Collision bool
	// Packet is the received packet when exactly one neighbor
	// transmitted; nil otherwise.
	Packet Packet
	// From is the transmitting neighbor when Packet is non-nil.
	From NodeID
}

// Action is a node's decision for one round.
type Action struct {
	// Transmit indicates the node transmits Packet this round.
	Transmit bool
	// Packet to transmit; must be non-nil when Transmit is true.
	Packet Packet
	// SleepUntil, when greater than the current round + 1, promises
	// that the node will ignore every reception before that round; the
	// engine will not poll or notify the node until then. Zero means
	// "wake next round".
	SleepUntil int64
}

// Sleep is a convenience listening action with a wake round.
func Sleep(until int64) Action { return Action{SleepUntil: until} }

// Listen is the default action: listen this round, wake next round.
var Listen = Action{}

// Transmit is a convenience transmitting action.
func Transmit(p Packet) Action { return Action{Transmit: true, Packet: p} }

// Protocol is the per-node state machine driven by the engine.
//
// The engine calls Act exactly once per round for every awake node,
// then delivers at most one Observe for that round to nodes that
// listened and had at least one transmitting neighbor. Silence is not
// signaled: a node that listened and receives no Observe callback for
// round r heard silence in round r.
type Protocol interface {
	Act(r int64) Action
	Observe(r int64, out Outcome)
}

// Tracer receives engine events; used by tests to assert schedule
// invariants (e.g. Lemma 3.5 fast-slot collision-freeness).
type Tracer interface {
	// OnRound fires after actions are collected, before delivery.
	// transmitters aliases engine storage: copy to retain.
	OnRound(r int64, transmitters []NodeID)
	// OnDeliver fires for every Observe delivered.
	OnDeliver(r int64, to NodeID, out Outcome)
}

// Channel mediates the delivery pass, modeling channel adversity:
// packet loss, jamming, unreliable collision detection, radio faults.
// Implementations must be deterministic given their construction — the
// engine consults the hooks in a fixed order, but robust models key
// their randomness on (round, node/link) so even that order is
// irrelevant. A Channel may carry mutable per-run state (jammer
// budgets, fault clocks), so instances must not be shared across
// networks or reused across runs. See internal/channel for the stock
// models; a nil Config.Channel is the ideal channel of Section 1.1.
type Channel interface {
	// RoundStart fires once per executed round, after actions are
	// collected and source suppression is applied, with the round's
	// SURVIVING transmitter set — every transmitter for which no
	// model's SuppressTransmit returned true (aliases engine storage:
	// copy to retain). Adaptive adversaries snoop the traffic here;
	// handing them the post-suppression set means a budgeted jammer
	// stacked after a fault model cannot spend budget on rounds whose
	// only transmitters are fault-dead radios.
	RoundStart(r int64, transmitters []NodeID)
	// SuppressTransmit reports whether v's transmission this round is
	// erased at the source (crashed radio, not-yet-woken node, jammed
	// transmitter). It is the first hook consulted each round — before
	// RoundStart — so the snoopable transmitter set can exclude
	// suppressed sources. A suppressed transmission reaches no neighbor
	// and increments Stats.Dropped once.
	SuppressTransmit(r int64, v NodeID) bool
	// DropLink reports whether the packet from from is erased on the
	// link to to this round (per-link, per-round loss). Each erased
	// link delivery increments Stats.Dropped.
	DropLink(r int64, from, to NodeID) bool
	// Observe finalizes what listener to perceives. count is the number
	// of channel-surviving transmitting neighbors; (out, ok) is the
	// tentative ideal observation for that count (ok=false means
	// silence). The returned pair replaces it; returning ok=false
	// silences the listener. A returned collision symbol on a network
	// without collision detection is sanitized to silence by the engine
	// (⊤ is unobservable without CD), so models need not know the CD
	// setting.
	Observe(r int64, to NodeID, count int, out Outcome, ok bool) (Outcome, bool)
}

// ResettableChannel is the optional reuse extension of Channel: models
// carrying per-run mutable state (jammer budgets) implement Reset to
// rewind it, so one instance can serve many runs. Harness runners call
// ResetChannel at the start of every fresh seeded run; the adaptive
// retry layer deliberately does NOT reset between the epochs of one
// run, so an adversary's budget spans the whole retried broadcast.
// Stateless models (erasure, noisy CD, fault tables) need not
// implement it.
type ResettableChannel interface {
	Channel
	Reset()
}

// ResetChannel rewinds ch's per-run state when it is resettable and
// reports whether it was. A nil channel is a no-op.
func ResetChannel(ch Channel) bool {
	if rc, ok := ch.(ResettableChannel); ok {
		rc.Reset()
		return true
	}
	return false
}

// Config configures a Network.
type Config struct {
	// CollisionDetection enables delivery of the ⊤ symbol.
	CollisionDetection bool
	// MaxPacketBits, when positive, makes the engine panic on any
	// packet whose Bits() exceeds it — enforcing the B = Θ(log n)
	// packet-size model.
	MaxPacketBits int
	// Tracer, when non-nil, observes every round.
	Tracer Tracer
	// Channel, when non-nil, mediates every delivery (loss, jamming,
	// unreliable CD, radio faults). nil is the ideal channel and keeps
	// the zero-allocation delivery fast path.
	Channel Channel
	// Workers, when greater than one, partitions the dense engine's
	// per-round passes across that many goroutines. Results are
	// byte-identical at any worker count (see Dense). Only NewDense
	// consults it; Network is always sequential.
	//
	// When a Channel is combined with Workers > 1, its DropLink and
	// Observe hooks are called concurrently from multiple goroutines
	// (RoundStart and SuppressTransmit stay sequential). The stock
	// models satisfy this: Erasure, NoisyCD, and Faults are pure keyed
	// functions of (round, node/link), and Jammer mutates state only in
	// RoundStart. A custom model that mutates state in DropLink or
	// Observe must be used with Workers <= 1.
	Workers int
	// Observer, when non-nil, receives a cumulative-counter snapshot
	// every ObserverStride-th executed round, synchronously after the
	// round's deliveries. nil is never consulted and preserves the
	// zero-allocation hot path byte-for-byte (the same guard discipline
	// as a nil Channel). Observers see counters only; they must not
	// block and cannot perturb the run.
	Observer obs.RoundObserver
	// ObserverStride is the round interval between Observer callbacks
	// (round r is reported when r is a multiple of the stride); values
	// below 1 mean every executed round. Ignored when Observer is nil.
	ObserverStride int64
}

// Stats aggregates engine counters for a run.
type Stats struct {
	Rounds        int64 // rounds elapsed (including slept/idle rounds)
	ActiveRounds  int64 // rounds in which at least one node was awake
	Transmissions int64 // individual node transmissions
	Deliveries    int64 // successful single-transmitter receptions
	CollisionObs  int64 // ⊤ observations delivered (CD only)
	Polls         int64 // Act calls (wall-clock work proxy)
	Dropped       int64 // transmissions/link deliveries erased by the channel
	Jammed        int64 // observations whose class the channel changed
	BusyRounds    int64 // executed rounds with >= 1 channel-surviving transmitter
	SilentRounds  int64 // executed rounds with none (idle fast-forwarded rounds count in neither)
	MaxFrontier   int64 // peak per-round surviving-transmitter count
}

// Utilization is the fraction of executed rounds that carried traffic
// (BusyRounds over executed rounds); 0 when nothing executed.
func (s Stats) Utilization() float64 {
	executed := s.BusyRounds + s.SilentRounds
	if executed == 0 {
		return 0
	}
	return float64(s.BusyRounds) / float64(executed)
}

// Add accumulates other's counters into s. Multi-run aggregators (the
// adaptive retry layer sums per-epoch engine stats) fold through here,
// next to the field list, so a future counter cannot be silently
// dropped from aggregates.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.ActiveRounds += other.ActiveRounds
	s.Transmissions += other.Transmissions
	s.Deliveries += other.Deliveries
	s.CollisionObs += other.CollisionObs
	s.Polls += other.Polls
	s.Dropped += other.Dropped
	s.Jammed += other.Jammed
	s.BusyRounds += other.BusyRounds
	s.SilentRounds += other.SilentRounds
	// MaxFrontier is a high-water mark, not a flow: the aggregate peak
	// is the max of the per-run peaks.
	if other.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = other.MaxFrontier
	}
}

// snapshot renders the counters as an observer snapshot for round r.
func (s *Stats) snapshot(r int64) obs.RoundSnapshot {
	return obs.RoundSnapshot{
		Round:         r,
		Transmissions: s.Transmissions,
		Deliveries:    s.Deliveries,
		CollisionObs:  s.CollisionObs,
		Dropped:       s.Dropped,
		Jammed:        s.Jammed,
		BusyRounds:    s.BusyRounds,
		SilentRounds:  s.SilentRounds,
		MaxFrontier:   s.MaxFrontier,
	}
}

// Network is a synchronous radio network simulation over a fixed graph.
type Network struct {
	g       *graph.Graph
	cfg     Config
	proto   []Protocol
	offsets []int32 // CSR aliases, hoisted out of the delivery loop
	edges   []NodeID

	round int64
	wake  wakeQueue

	// Per-round scratch, stamped by round number to avoid clearing.
	listenStamp []int64 // node listened (awake, no transmit) in round stamp
	hearCount   []int32
	hearStamp   []int64
	hearFrom    []NodeID
	hearPkt     []Packet
	touched     []NodeID
	transmitter []NodeID
	keptTx      []NodeID // channel path: transmitters surviving source suppression

	stats Stats
}

// New creates a network over g. All nodes start with a nil protocol;
// nil-protocol nodes are permanently silent and asleep.
func New(g *graph.Graph, cfg Config) *Network {
	n := g.N()
	offsets, edges := g.CSR()
	nw := &Network{
		g:           g,
		cfg:         cfg,
		proto:       make([]Protocol, n),
		offsets:     offsets,
		edges:       edges,
		listenStamp: make([]int64, n),
		hearCount:   make([]int32, n),
		hearStamp:   make([]int64, n),
		hearFrom:    make([]NodeID, n),
		hearPkt:     make([]Packet, n),
	}
	for i := range nw.listenStamp {
		nw.listenStamp[i] = -1
		nw.hearStamp[i] = -1
	}
	return nw
}

// SetProtocol installs p on node v and schedules it to wake at the
// current round. Each node's protocol may be installed only once per
// network (reinstalling would double-schedule the node).
func (nw *Network) SetProtocol(v NodeID, p Protocol) {
	if p == nil {
		panic("radio: SetProtocol with nil protocol")
	}
	if nw.proto[v] != nil {
		panic(fmt.Sprintf("radio: node %d already has a protocol", v))
	}
	nw.proto[v] = p
	nw.wake.push(nw.round, v)
}

// Protocol returns the protocol installed on v (nil if none).
func (nw *Network) Protocol(v NodeID) Protocol { return nw.proto[v] }

// Reset rewinds the network to its post-New state — round counter,
// statistics, wake queue, and the per-round stamps — without
// reallocating the CSR aliases, scratch arrays, or ring buckets, so a
// harness can execute many seeds on one graph with zero per-seed
// engine construction. Installed protocols are cleared (their objects
// are owned by the caller, which resets and re-installs them via
// SetProtocol); the configured channel is cleared too, since channel
// models carry per-run mutable state — install a fresh or reset one
// with SetChannel.
func (nw *Network) Reset() {
	nw.round = 0
	nw.stats = Stats{}
	nw.wake.reset()
	nw.cfg.Channel = nil
	for i := range nw.proto {
		nw.proto[i] = nil
		nw.listenStamp[i] = -1
		nw.hearStamp[i] = -1
		nw.hearPkt[i] = nil // release packet references for the GC
	}
	nw.touched = nw.touched[:0]
	nw.transmitter = nw.transmitter[:0]
	nw.keptTx = nw.keptTx[:0]
}

// SetChannel installs (or clears) the channel adversity model for the
// next run. Channel models carry per-run mutable state, so a reused
// network needs a fresh instance after every Reset.
func (nw *Network) SetChannel(ch Channel) { nw.cfg.Channel = ch }

// Retopo swaps the network's topology in place: delivery immediately
// follows the new CSR while every other piece of engine state — round
// counter, wake queue, stamps, scratch, installed protocols — is left
// untouched. The node count must be unchanged (len(offsets) == n+1),
// which is what keeps the per-node scratch valid; pass the arrays of
// graph.Graph.CSR on a same-n graph.
//
// Retopo composes with Reset in either order: Reset rewinds the run
// state without touching the CSR, Retopo swaps the CSR without
// touching the run state. Swapping mid-run is legal too (the mobility
// driver's case) — deliveries of round r simply fan out over the new
// adjacency. Graph() keeps returning the construction-time graph; a
// caller that swaps topologies owns the mapping to graph objects.
func (nw *Network) Retopo(offsets []int32, edges []NodeID) {
	if len(offsets) != len(nw.offsets) {
		panic(fmt.Sprintf("radio: Retopo with %d offsets, want %d (node count must be unchanged)",
			len(offsets), len(nw.offsets)))
	}
	nw.offsets = offsets
	nw.edges = edges
}

// SetObserver installs (or clears) the round observer and its stride.
// Unlike channels, observers carry no per-run simulation state, so —
// like the tracer — an installed observer survives Reset; pass nil to
// detach and restore the observer-free hot path.
func (nw *Network) SetObserver(o obs.RoundObserver, stride int64) {
	nw.cfg.Observer = o
	nw.cfg.ObserverStride = stride
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Round returns the current round number (the next round to execute).
func (nw *Network) Round() int64 { return nw.round }

// Stats returns a copy of the run counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Step executes exactly one round. If every node sleeps beyond the
// current round the engine still advances one round (the round is
// idle); use Run/RunUntil for fast-forwarding.
func (nw *Network) Step() { nw.step() }

func (nw *Network) step() {
	r := nw.round
	nw.transmitter = nw.transmitter[:0]
	awake := nw.wake.popAt(r)
	if len(awake) > 0 {
		nw.stats.ActiveRounds++
	}
	for _, v := range awake {
		p := nw.proto[v]
		if p == nil {
			continue
		}
		nw.stats.Polls++
		act := p.Act(r)
		next := r + 1
		if act.SleepUntil > next {
			next = act.SleepUntil
		}
		if act.Transmit {
			if act.Packet == nil {
				panic(fmt.Sprintf("radio: node %d transmits nil packet in round %d", v, r))
			}
			if nw.cfg.MaxPacketBits > 0 && act.Packet.Bits() > nw.cfg.MaxPacketBits {
				panic(fmt.Sprintf("radio: node %d packet %T of %d bits exceeds budget %d",
					v, act.Packet, act.Packet.Bits(), nw.cfg.MaxPacketBits))
			}
			nw.transmitter = append(nw.transmitter, v)
			nw.hearPkt[v] = act.Packet // reuse as scratch for own packet
			nw.stats.Transmissions++
		} else {
			nw.listenStamp[v] = r
		}
		nw.wake.push(next, v)
	}
	if nw.cfg.Tracer != nil {
		nw.cfg.Tracer.OnRound(r, nw.transmitter)
	}
	if nw.cfg.Channel != nil {
		nw.deliverAdverse(r, awake)
		nw.finishRound(r, int64(len(nw.keptTx)))
		return
	}
	// Delivery: count transmitting neighbors of each awake listener,
	// iterating the CSR arrays directly.
	nw.touched = nw.touched[:0]
	for _, t := range nw.transmitter {
		pkt := nw.hearPkt[t]
		for _, u := range nw.edges[nw.offsets[t]:nw.offsets[t+1]] {
			if nw.listenStamp[u] != r {
				continue // transmitting, sleeping, or protocol-less
			}
			if nw.hearStamp[u] != r {
				nw.hearStamp[u] = r
				nw.hearCount[u] = 0
				nw.touched = append(nw.touched, u)
			}
			nw.hearCount[u]++
			if nw.hearCount[u] == 1 {
				nw.hearFrom[u] = t
				nw.hearPkt[u] = pkt
			}
		}
	}
	for _, u := range nw.touched {
		var out Outcome
		switch {
		case nw.hearCount[u] == 1:
			out = Outcome{Packet: nw.hearPkt[u], From: nw.hearFrom[u]}
			nw.stats.Deliveries++
		case nw.cfg.CollisionDetection:
			out = Outcome{Collision: true}
			nw.stats.CollisionObs++
		default:
			continue // collision without CD: indistinguishable from silence
		}
		nw.proto[u].Observe(r, out)
		if nw.cfg.Tracer != nil {
			nw.cfg.Tracer.OnDeliver(r, u, out)
		}
	}
	nw.finishRound(r, int64(len(nw.transmitter)))
}

// finishRound closes out executed round r: advances the round counter
// and folds the surviving-transmitter count surv (post channel
// suppression; every transmitter on the ideal path) into the frontier
// counters, then fires the stride-gated observer. Both delivery paths
// funnel through here so the busy/silent split and MaxFrontier mean the
// same thing with and without a channel.
func (nw *Network) finishRound(r, surv int64) {
	nw.round = r + 1
	nw.stats.Rounds = nw.round
	if surv > 0 {
		nw.stats.BusyRounds++
		if surv > nw.stats.MaxFrontier {
			nw.stats.MaxFrontier = surv
		}
	} else {
		nw.stats.SilentRounds++
	}
	if o := nw.cfg.Observer; o != nil {
		stride := nw.cfg.ObserverStride
		if stride < 1 || r%stride == 0 {
			o.OnRound(nw.stats.snapshot(r))
		}
	}
}

// deliverAdverse is the Channel-mediated delivery pass. It mirrors the
// ideal pass but consults the channel at every stage, and its Observe
// sweep visits every awake listener — not only neighbors of
// transmitters — so the channel can inject observations (spurious ⊤,
// jamming) into silent receptions. Listener order follows the awake
// slice, which is deterministic; robust models additionally key their
// draws by (round, node/link) so ordering never matters.
func (nw *Network) deliverAdverse(r int64, awake []NodeID) {
	ch := nw.cfg.Channel
	// Source suppression first, THEN RoundStart with the surviving set:
	// an adaptive jammer snooping the traffic must not see (and spend
	// budget on) transmissions a fault model already erased at the
	// source.
	kept := nw.keptTx[:0]
	for _, t := range nw.transmitter {
		if ch.SuppressTransmit(r, t) {
			nw.stats.Dropped++
			continue
		}
		kept = append(kept, t)
	}
	nw.keptTx = kept
	ch.RoundStart(r, kept)
	for _, t := range kept {
		pkt := nw.hearPkt[t]
		for _, u := range nw.edges[nw.offsets[t]:nw.offsets[t+1]] {
			if nw.listenStamp[u] != r {
				continue // transmitting, sleeping, or protocol-less
			}
			if ch.DropLink(r, t, u) {
				nw.stats.Dropped++
				continue
			}
			if nw.hearStamp[u] != r {
				nw.hearStamp[u] = r
				nw.hearCount[u] = 0
			}
			nw.hearCount[u]++
			if nw.hearCount[u] == 1 {
				nw.hearFrom[u] = t
				nw.hearPkt[u] = pkt
			}
		}
	}
	for _, u := range awake {
		if nw.listenStamp[u] != r {
			continue
		}
		count := 0
		if nw.hearStamp[u] == r {
			count = int(nw.hearCount[u])
		}
		var out Outcome
		ok := false
		switch {
		case count == 1:
			out = Outcome{Packet: nw.hearPkt[u], From: nw.hearFrom[u]}
			ok = true
		case count >= 2 && nw.cfg.CollisionDetection:
			out = Outcome{Collision: true}
			ok = true
		}
		ideal := outcomeClass(out, ok)
		fin, fok := ch.Observe(r, u, count, out, ok)
		if fok && fin.Collision && !nw.cfg.CollisionDetection {
			fin, fok = Outcome{}, false // ⊤ is unobservable without CD
		}
		if fok && !fin.Collision && fin.Packet == nil {
			fin, fok = Outcome{}, false // no payload and no symbol: silence
		}
		if outcomeClass(fin, fok) != ideal {
			nw.stats.Jammed++
		}
		if !fok {
			continue
		}
		if fin.Collision {
			nw.stats.CollisionObs++
		} else {
			nw.stats.Deliveries++
		}
		nw.proto[u].Observe(r, fin)
		if nw.cfg.Tracer != nil {
			nw.cfg.Tracer.OnDeliver(r, u, fin)
		}
	}
}

// outcomeClass buckets an observation for Jammed accounting:
// 0 silence, 1 packet, 2 collision symbol.
func outcomeClass(out Outcome, ok bool) int {
	switch {
	case !ok:
		return 0
	case out.Collision:
		return 2
	default:
		return 1
	}
}

// Run executes rounds until the round counter reaches limit,
// fast-forwarding through globally idle windows. It returns early if
// no node will ever wake again.
func (nw *Network) Run(limit int64) {
	for nw.round < limit {
		next, ok := nw.wake.nextWake()
		if !ok {
			// No node will ever act again; account the idle tail.
			nw.round = limit
			nw.stats.Rounds = nw.round
			return
		}
		if next > nw.round {
			if next >= limit {
				nw.round = limit
				nw.stats.Rounds = nw.round
				return
			}
			nw.round = next // fast-forward: rounds in between are idle
		}
		nw.step()
	}
}

// RunUntil executes rounds until pred returns true (checked after
// every executed round) or the round counter reaches limit. It reports
// the round count at stop and whether pred was satisfied.
func (nw *Network) RunUntil(limit int64, pred func() bool) (int64, bool) {
	if pred() {
		return nw.round, true
	}
	for nw.round < limit {
		next, ok := nw.wake.nextWake()
		if !ok {
			nw.round = limit
			nw.stats.Rounds = nw.round
			return nw.round, pred()
		}
		if next > nw.round {
			if next >= limit {
				nw.round = limit
				nw.stats.Rounds = nw.round
				return nw.round, pred()
			}
			nw.round = next
		}
		nw.step()
		if pred() {
			return nw.round, true
		}
	}
	return nw.round, pred()
}

// wakeWindow is the span of the near-future ring buckets; must be a
// power of two. Wakes within wakeWindow rounds of the queue front are
// stored in reusable ring slices (the overwhelmingly common case: a
// node that acted in round r wakes at r+1), so the steady-state round
// loop performs no map or heap operations and no allocations. Only
// long sleeps (SleepUntil beyond the window) touch the far map.
const wakeWindow = 64

// wakeQueue schedules node wake-ups by round. Rounds below base have
// already been popped; rounds in [base, base+wakeWindow) live in the
// ring bucket round%wakeWindow; later rounds live in the far map,
// fronted by a manual min-heap of distinct round keys (no interface
// boxing, unlike container/heap).
type wakeQueue struct {
	base    int64
	ringLen int
	ring    [wakeWindow][]NodeID
	far     map[int64][]NodeID
	farKeys []int64
	spare   [][]NodeID // drained far buckets, recycled by push
	out     []NodeID   // reused popAt result buffer
}

// reset rewinds the queue to empty while keeping every allocation:
// ring buckets, the far map (emptied, buckets recycled via spare), the
// key heap, and the pop buffer all retain their capacity for the next
// run.
func (q *wakeQueue) reset() {
	for i := range q.ring {
		q.ring[i] = q.ring[i][:0]
	}
	q.ringLen = 0
	q.base = 0
	for k, lst := range q.far {
		q.spare = append(q.spare, lst[:0])
		delete(q.far, k)
	}
	q.farKeys = q.farKeys[:0]
}

func (q *wakeQueue) push(round int64, v NodeID) {
	if round < q.base {
		// A protocol installed mid-run on the already-executed current
		// round: it wakes at the queue front (the next executed round),
		// matching the historical bucket-map behavior.
		round = q.base
	}
	if round < q.base+wakeWindow {
		i := round & (wakeWindow - 1)
		q.ring[i] = append(q.ring[i], v)
		q.ringLen++
		return
	}
	if q.far == nil {
		q.far = make(map[int64][]NodeID)
	}
	lst, ok := q.far[round]
	if !ok {
		q.farKeys = heapPushInt64(q.farKeys, round)
		if n := len(q.spare); n > 0 {
			lst = q.spare[n-1]
			q.spare = q.spare[:n-1]
		}
	}
	q.far[round] = append(lst, v)
}

// popAt removes and returns all nodes scheduled to wake at or before r.
// The returned slice is reused by the next popAt call. r must not
// decrease across calls.
func (q *wakeQueue) popAt(r int64) []NodeID {
	out := q.out[:0]
	for q.base <= r && q.ringLen > 0 {
		i := q.base & (wakeWindow - 1)
		if b := q.ring[i]; len(b) > 0 {
			out = append(out, b...)
			q.ringLen -= len(b)
			q.ring[i] = b[:0]
		}
		q.base++
	}
	if q.base <= r {
		q.base = r + 1 // ring empty: skip the idle gap in O(1)
	}
	for len(q.farKeys) > 0 && q.farKeys[0] <= r {
		var key int64
		q.farKeys, key = heapPopInt64(q.farKeys)
		out = append(out, q.far[key]...)
		q.spare = append(q.spare, q.far[key][:0])
		delete(q.far, key)
	}
	q.out = out
	return out
}

// nextWake returns the earliest scheduled wake round.
func (q *wakeQueue) nextWake() (int64, bool) {
	// Fast path: the front bucket is occupied — the overwhelmingly
	// common steady-state case (a node that acted in round r wakes at
	// r+1, which is the front once popAt(r) advanced base). Far keys
	// are always >= base (popAt drains every key <= r before base can
	// pass it), so the front bucket is the global minimum and the
	// 64-slot ring scan below is skipped entirely.
	if len(q.ring[q.base&(wakeWindow-1)]) > 0 {
		return q.base, true
	}
	if q.ringLen > 0 {
		for d := int64(1); d < wakeWindow; d++ {
			if len(q.ring[(q.base+d)&(wakeWindow-1)]) > 0 {
				ringMin := q.base + d
				if len(q.farKeys) > 0 && q.farKeys[0] < ringMin {
					return q.farKeys[0], true
				}
				return ringMin, true
			}
		}
	}
	if len(q.farKeys) > 0 {
		return q.farKeys[0], true
	}
	return 0, false
}

// heapPushInt64 appends x to the min-heap h and restores heap order.
func heapPushInt64(h []int64, x int64) []int64 {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// heapPopInt64 removes and returns the minimum of the min-heap h.
func heapPopInt64(h []int64) ([]int64, int64) {
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l] < h[small] {
			small = l
		}
		if r < n && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, min
}
