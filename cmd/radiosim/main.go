// Command radiosim runs one broadcast protocol on one workload graph
// and prints the outcome — a quick way to poke at the library.
//
// Usage:
//
//	radiosim -graph clusterchain -n 256 -protocol cd -seed 1
//	radiosim -graph grid -n 64 -protocol k-known -k 8
//	radiosim -protocol decay -loss 0.2            # 20% per-link loss
//	radiosim -protocol cd -cdnoise 0.1            # 10% missed ⊤
//	radiosim -protocol decay -jam 500 -jamadaptive
//	radiosim -protocol cd -pipelined               # §2.2.4 boundary pipelining
//
// Protocols: decay, cr, gst (known-topology single message),
// cd (Theorem 1.1), k-known (Theorem 1.2), k-cd (Theorem 1.3).
// Graphs: path, grid, clusterchain, udg, gnp, star, plus the seeded
// geometric layouts geo-uniform and geo-cluster (unit-disk graphs over
// internal/geo point sets, built by the grid-bucketed streaming
// builder). -band > 1 on a geo-* graph switches to the quasi-unit-disk
// model: the graph is built at band x the connectivity radius and a
// position-aware RangeErasure channel erases band links with
// distance-ramped probability.
// -pipelined switches the distributed GST builds inside cd/k-cd to the
// Section 2.2.4 even/odd boundary pipeline wherever it shortens them.
//
// Channel adversity: -loss, -jam, -cdnoise/-cdspurious, and -faults
// each enable one model of internal/channel when nonzero; the active
// models are stacked. -channel ideal forces the ideal channel
// regardless.
//
// -adaptive wraps the run in the loss-adaptive retry layer: the
// schedule re-executes in epochs, each re-layering from every
// already-informed radio, until the broadcast completes or -maxepochs
// epochs elapse (0 = until done). Supported by every protocol except
// k-known.
//
// -logformat/-loglevel route run lifecycle events (job.start,
// job.done) to stderr through the shared internal/obs logger; the
// default warn level keeps stderr quiet, and the human-readable result
// on stdout is unaffected.
//
// Incoherent flag combinations are rejected up front with a usage
// message (-pipelined on a protocol without a distributed GST build,
// -jamadaptive without a -jam budget, -maxepochs without -adaptive,
// -adaptive with k-known). Exit codes: 0 on a completed broadcast, 3
// when the broadcast fails to complete within its round budget, 1 on
// invalid graph/protocol/channel arguments, 2 on malformed or
// incoherent flags (matching the flag package's own exit).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"radiocast"
	"radiocast/internal/graph"
	"radiocast/internal/obs"
)

// buildGraph materialises the workload. Geometric kinds additionally
// return their layout (nil otherwise) so the channel stack can attach
// position-aware models; band stretches their disk radius to band x
// the connectivity radius (the QUDG outer range).
func buildGraph(kind string, n int, seed uint64, band float64) (*radiocast.Graph, *radiocast.Layout, error) {
	switch kind {
	case "path":
		return radiocast.NewPath(n), nil, nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return radiocast.NewGrid(side, (n+side-1)/side), nil, nil
	case "clusterchain":
		clique := 8
		chain := n / clique
		if chain < 2 {
			chain = 2
		}
		return radiocast.NewClusterChain(chain, clique), nil, nil
	case "udg":
		return radiocast.NewUnitDisk(n, graph.ConnectivityRadius(n), seed), nil, nil
	case "gnp":
		p := 4 * math.Log(float64(n)) / float64(n)
		return radiocast.NewGNP(n, p, seed), nil, nil
	case "star":
		return graph.Star(n), nil, nil
	case "geo-uniform":
		l := radiocast.NewUniformLayout(n, seed)
		return radiocast.UnitDiskGraph(l, band*radiocast.GeoConnectivityRadius(n), seed), l, nil
	case "geo-cluster":
		clusters := int(math.Sqrt(float64(n)))
		if clusters < 2 {
			clusters = 2
		}
		rc := radiocast.GeoConnectivityRadius(n)
		l := radiocast.NewClusteredLayout(n, clusters, rc, seed)
		return radiocast.UnitDiskGraph(l, band*rc, seed), l, nil
	default:
		return nil, nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// channelFlags holds the adversity configuration parsed from flags.
type channelFlags struct {
	mode        string
	loss        float64
	jam         int64
	jamAdaptive bool
	cdNoise     float64
	cdSpurious  float64
	faults      float64
	band        float64
}

// build assembles the channel stack (nil = ideal). Each model is
// enabled by its nonzero flag; -channel ideal disables everything.
// layout is non-nil only for geometric workloads; with -band > 1 it
// feeds the distance-ramped RangeErasure band between the reliable
// connectivity radius and band x that radius.
func (cf channelFlags) build(n int, seed uint64, layout *radiocast.Layout) (radiocast.Channel, []string, error) {
	if cf.mode == "ideal" {
		return nil, nil, nil
	}
	if cf.mode != "auto" {
		return nil, nil, fmt.Errorf("unknown -channel mode %q (want auto or ideal)", cf.mode)
	}
	var models []radiocast.Channel
	var names []string
	if cf.band > 1 && layout != nil {
		rc := radiocast.GeoConnectivityRadius(layout.N())
		models = append(models, radiocast.RangeErasureChannel(layout, rc, cf.band*rc, seed^0xd157))
		names = append(names, fmt.Sprintf("qudg-band=%g", cf.band))
	}
	if cf.loss > 0 {
		models = append(models, radiocast.ErasureChannel(cf.loss, seed^0x10c5))
		names = append(names, fmt.Sprintf("loss=%g", cf.loss))
	}
	if cf.jam != 0 {
		models = append(models, radiocast.JammerChannel(cf.jam, 0.5, cf.jamAdaptive, seed^0x4a77))
		policy := "oblivious"
		if cf.jamAdaptive {
			policy = "adaptive"
		}
		names = append(names, fmt.Sprintf("jam=%d(%s)", cf.jam, policy))
	}
	if cf.cdNoise > 0 || cf.cdSpurious > 0 {
		models = append(models, radiocast.NoisyCDChannel(cf.cdNoise, cf.cdSpurious, seed^0xcd01))
		names = append(names, fmt.Sprintf("cdnoise=%g/%g", cf.cdNoise, cf.cdSpurious))
	}
	if cf.faults > 0 {
		models = append(models, radiocast.FaultChannel(n, 0, cf.faults, 256, cf.faults/2, 1<<20, seed^0xfa07))
		names = append(names, fmt.Sprintf("faults=%g", cf.faults))
	}
	switch len(models) {
	case 0:
		return nil, nil, nil
	case 1:
		return models[0], names, nil
	default:
		return radiocast.StackChannels(models...), names, nil
	}
}

// fatalUsage rejects an incoherent flag combination: it prints the
// reason and the flag usage, then exits 2 (the flag package's own exit
// code for malformed flags).
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "radiosim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// validateFlags rejects flag combinations that would otherwise be
// silently ignored: every flag the run cannot honor is an error, not a
// no-op.
func validateFlags(kind, protocol string, pipelined bool, cf channelFlags, adaptive bool, maxEpochs int) {
	if pipelined && protocol != "cd" && protocol != "k-cd" {
		fatalUsage("-pipelined only applies to the distributed GST builds of -protocol cd and k-cd (got %q)", protocol)
	}
	if cf.band < 1 {
		fatalUsage("-band must be >= 1 (1 = pure unit disk), got %g", cf.band)
	}
	if cf.band > 1 && kind != "geo-uniform" && kind != "geo-cluster" {
		fatalUsage("-band needs a position-aware workload: use -graph geo-uniform or geo-cluster (got %q)", kind)
	}
	if cf.jamAdaptive && cf.jam == 0 {
		fatalUsage("-jamadaptive needs a jammer: set a -jam budget (negative = unlimited)")
	}
	if maxEpochs != 0 && !adaptive {
		fatalUsage("-maxepochs only applies to -adaptive runs")
	}
	if maxEpochs < 0 {
		fatalUsage("-maxepochs must be >= 0 (0 = retry until done), got %d", maxEpochs)
	}
	if adaptive && protocol == "k-known" {
		fatalUsage("-adaptive is not supported by -protocol k-known (use k-cd for adaptive k-message broadcast)")
	}
}

func main() {
	kind := flag.String("graph", "clusterchain", "workload: path, grid, clusterchain, udg, gnp, star, geo-uniform, geo-cluster")
	n := flag.Int("n", 128, "approximate node count")
	protocol := flag.String("protocol", "cd", "protocol: decay, cr, gst, cd, k-known, k-cd")
	k := flag.Int("k", 8, "message count for k-message protocols")
	seed := flag.Uint64("seed", 1, "run seed")
	pipelined := flag.Bool("pipelined", false,
		"pipeline the distributed GST boundary construction (Section 2.2.4; cd/k-cd ring builds where it shortens them)")
	adaptive := flag.Bool("adaptive", false,
		"re-execute the schedule in retry epochs (re-layering from informed radios) until the broadcast completes")
	maxEpochs := flag.Int("maxepochs", 0, "cap on -adaptive retry epochs (0 = until done)")
	var cf channelFlags
	flag.StringVar(&cf.mode, "channel", "auto", "channel adversity: auto (models enabled by their flags) or ideal")
	flag.Float64Var(&cf.loss, "loss", 0, "per-link, per-round packet erasure probability")
	flag.Int64Var(&cf.jam, "jam", 0, "jammer round budget (negative = unlimited)")
	flag.BoolVar(&cf.jamAdaptive, "jamadaptive", false, "jammer targets busiest slots instead of random rounds")
	flag.Float64Var(&cf.cdNoise, "cdnoise", 0, "probability a true collision symbol is missed")
	flag.Float64Var(&cf.cdSpurious, "cdspurious", 0, "probability silence is observed as a spurious collision symbol")
	flag.Float64Var(&cf.faults, "faults", 0, "per-node late-wakeup probability (crash probability is half of it)")
	flag.Float64Var(&cf.band, "band", 1,
		"quasi-unit-disk band factor for geo-* graphs (>1 adds distance-ramped erasure between r_c and band*r_c)")
	logFormat := flag.String("logformat", "text", "stderr event format: text or json")
	logLevel := flag.String("loglevel", "warn", "stderr event level: debug, info (run lifecycle events), warn, error")
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(2)
	}

	validateFlags(*kind, *protocol, *pipelined, cf, *adaptive, *maxEpochs)

	g, layout, err := buildGraph(*kind, *n, *seed, cf.band)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ch, chNames, err := cf.build(g.N(), *seed, layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := graph.Eccentricity(g, 0)
	fmt.Printf("workload %s: n=%d m=%d ecc(source)=%d maxdeg=%d\n",
		g.Name(), g.N(), g.M(), d, g.MaxDegree())
	if len(chNames) > 0 {
		fmt.Printf("channel: %s\n", strings.Join(chNames, " + "))
	}
	lg.Info(obs.EventJobStart,
		"protocol", *protocol,
		"workload", g.Name(),
		"n", g.N(),
		"seed", *seed,
		"channel", strings.Join(chNames, "+"),
		"adaptive", *adaptive)
	start := time.Now()

	opts := radiocast.Options{Seed: *seed, Channel: ch, PipelinedBoundaries: *pipelined,
		Adaptive: *adaptive, MaxEpochs: *maxEpochs}
	var res radiocast.Result
	switch *protocol {
	case "decay":
		res, err = radiocast.DecayBroadcast(g, opts)
	case "cr":
		res, err = radiocast.CRBroadcast(g, opts)
	case "gst":
		res, err = radiocast.BroadcastKnownTopology(g, opts)
	case "cd":
		res, err = radiocast.BroadcastCD(g, opts)
	case "k-known":
		res, err = radiocast.BroadcastK(g, *k, opts)
	case "k-cd":
		res, err = radiocast.BroadcastKCD(g, *k, opts)
	default:
		err = fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lg.Info(obs.EventJobDone,
		"protocol", *protocol,
		"rounds", res.Rounds,
		"completed", res.Completed,
		"epochs", res.Epochs,
		"dropped", res.Dropped,
		"jammed", res.Jammed,
		"wall_us", time.Since(start).Microseconds())
	status := "completed"
	if !res.Completed {
		status = "INCOMPLETE (round limit)"
	}
	if res.Epochs > 0 {
		fmt.Printf("%s: %s in %d rounds over %d adaptive epoch(s)\n", *protocol, status, res.Rounds, res.Epochs)
	} else {
		fmt.Printf("%s: %s in %d rounds\n", *protocol, status, res.Rounds)
	}
	if res.Dropped > 0 || res.Jammed > 0 {
		fmt.Printf("adversity: %d deliveries dropped, %d observations jammed\n", res.Dropped, res.Jammed)
	}
	if !res.Completed {
		os.Exit(3)
	}
}
