// Command radiobench regenerates every experiment table of
// EXPERIMENTS.md.
//
// Usage:
//
//	radiobench [-seeds N] [-quick] [-format text|csv|markdown] [-only E1,E7]
//
// Each experiment reproduces one theorem/lemma of the paper as a
// measured round-complexity table; see EXPERIMENTS.md for the mapping
// and the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"radiocast/internal/harness"
)

func main() {
	seeds := flag.Int("seeds", 3, "independent seeds per configuration")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	format := flag.String("format", "text", "output format: text, csv, or markdown")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, e := range harness.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tb := e.Run(*seeds, *quick)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tb.CSV())
		case "markdown":
			fmt.Printf("### %s: %s\n\n%s\n", e.ID, e.Title, tb.Markdown())
		default:
			fmt.Printf("%s\n[%s, %d seed(s), %v]\n\n", tb.String(), e.ID, *seeds, elapsed)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
}
