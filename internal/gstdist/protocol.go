package gstdist

import (
	"math/rand"

	"radiocast/internal/assign"
	"radiocast/internal/beep"
	"radiocast/internal/decay"
	"radiocast/internal/radio"
)

// Packets of segment C.

// WavePacket is the stage-1 fast-stretch wave transmission; receivers
// accept it only from their parent and only with a matching tag.
type WavePacket struct {
	D   int32
	Tag int32
}

// Bits implements radio.Packet.
func (WavePacket) Bits() int { return 33 }

// FloodPacket is the stage-2 frontier Decay transmission; receivers
// require a matching tag.
type FloodPacket struct {
	D   int32
	Tag int32
}

// Bits implements radio.Packet.
func (FloodPacket) Bits() int { return 33 }

// Result is the per-node outcome of the construction.
type Result struct {
	Level      int32
	Rank       int32
	Parent     radio.NodeID // -1 for roots
	ParentRank int32
	Vdist      int32 // -1 if not computed / not learned
	// SameRankChild marks non-terminal fast-stretch nodes.
	SameRankChild bool
}

// Protocol is the per-node distributed GST construction state machine.
type Protocol struct {
	cfg     Config
	loc     Locator // cached schedule arithmetic (hot: every Act/Observe)
	maxRank int     // cached Assign.MaxRank (hot in the pipelined path)
	id      radio.NodeID
	isRoot  bool
	rng     *rand.Rand

	// DoneSet, when non-nil, is ticked exactly once per node at the
	// moment its blue role first holds an assigned parent — the node is
	// "informed" of its place in the tree. Roots start informed and are
	// ticked by the harness's initial scan (the initDone contract).
	DoneSet *radio.DoneSet

	// Segment A.
	wave     *beep.Wave
	layering *decay.Layering
	level    int32

	// Segment B (sequential: one live machine at a time).
	bNode     *assign.Node
	bIdx      int  // boundary index of the live node (-1 none)
	bIsBlue   bool // live machine plays the blue role
	rank      int32
	ranked    bool // red role produced a rank
	sameRank  bool
	parent    radio.NodeID
	parentRnk int32
	assigned  bool
	informed  bool // DoneSet ticked (or root)

	// Segment B (pipelined: the node's red- and blue-role boundaries
	// interleave phases, so both machines live concurrently).
	bRed  *assign.Node
	bBlue *assign.Node

	// Segment C.
	vdist     int32
	waveRelay bool // received the stage-1 wave in the current block
	curBlock  int64
	// Per-block boxed packets (contents are fixed within a block, so
	// they box once per block instead of once per transmission).
	wavePkt  radio.Packet
	floodPkt radio.Packet
}

var _ radio.Protocol = (*Protocol)(nil)

// New creates the construction protocol for one node. With
// LayerPreset, presetLevel supplies the node's BFS level (from a
// prior collision wave); otherwise it is ignored.
func New(cfg Config, id radio.NodeID, isRoot bool, presetLevel int32, rng *rand.Rand) *Protocol {
	p := &Protocol{
		cfg:       cfg,
		loc:       cfg.Locator(),
		maxRank:   cfg.Assign.MaxRank(),
		id:        id,
		isRoot:    isRoot,
		rng:       rng,
		level:     -1,
		bIdx:      -1,
		rank:      0,
		parent:    -1,
		parentRnk: 0,
		informed:  isRoot,
		vdist:     -1,
		curBlock:  -1,
	}
	switch cfg.Mode {
	case LayerCD:
		p.wave = beep.NewWave(isRoot, cfg.LayerRounds())
	case LayerDecay:
		p.layering = decay.NewLayering(cfg.N, isRoot, decay.EpochPhases(cfg.N, cfg.CLayer), rng)
	case LayerPreset:
		p.level = presetLevel
	}
	if isRoot {
		p.level = 0
		p.vdist = 0
	}
	return p
}

// Reset rewinds the protocol for a new run with the same Config,
// reusing the layering sub-protocol (boundary machines are per-window
// and rebuilt during the run either way). The RNG binding is
// unchanged; reseeding it is the caller's job.
func (p *Protocol) Reset(isRoot bool, presetLevel int32) {
	p.isRoot = isRoot
	p.level = -1
	p.bNode = nil
	p.bIdx = -1
	p.bIsBlue = false
	p.bRed = nil
	p.bBlue = nil
	p.rank = 0
	p.ranked = false
	p.sameRank = false
	p.parent = -1
	p.parentRnk = 0
	p.assigned = false
	p.informed = isRoot
	p.vdist = -1
	p.waveRelay = false
	p.curBlock = -1
	p.wavePkt = nil
	p.floodPkt = nil
	switch p.cfg.Mode {
	case LayerCD:
		p.wave.Reset(isRoot, p.cfg.LayerRounds())
	case LayerDecay:
		p.layering.Reset(isRoot)
	case LayerPreset:
		p.level = presetLevel
	}
	if isRoot {
		p.level = 0
		p.vdist = 0
	}
}

// Result returns the node's learned GST data. Valid once the schedule
// passed TotalRounds; Rank resolves to 1 for nodes that were never
// ranked as reds (leaves). A boundary machine whose window coincides
// with the end of the schedule is harvested here (the engine stops
// before any post-schedule Act could do it).
func (p *Protocol) Result() Result {
	if p.bNode != nil {
		p.harvestBoundary()
	}
	p.pipeFinish()
	rank := p.rank
	if !p.ranked {
		rank = 1
	}
	return Result{
		Level:         p.level,
		Rank:          rank,
		Parent:        p.parent,
		ParentRank:    p.parentRnk,
		Vdist:         p.vdist,
		SameRankChild: p.sameRank,
	}
}

// Informed reports whether the node knows its parent (roots start
// informed). Harness runners use it for the initial DoneSet scan.
func (p *Protocol) Informed() bool { return p.informed }

// Rng exposes the protocol's RNG so reuse harnesses can reseed it.
func (p *Protocol) Rng() *rand.Rand { return p.rng }

// tickAssigned records the node's first assignment on the DoneSet.
func (p *Protocol) tickAssigned() {
	if !p.informed {
		p.informed = true
		p.DoneSet.Tick()
	}
}

// ownRank returns the node's rank for its blue role: the rank learned
// as a red at the deeper boundary, or 1 (leaf). Under pipelining the
// red machine is still live while the blue role runs, so the rank is
// consulted in place; the schedule skew guarantees that at a blue
// rank-i window every rank >= i is already final.
func (p *Protocol) ownRank() int32 {
	if p.ranked {
		return p.rank
	}
	if p.bRed != nil && p.bRed.RedRanked() {
		return p.bRed.RedRank()
	}
	return 1
}

// isStretchStart reports whether the node begins a fast stretch.
func (p *Protocol) isStretchStart() bool {
	return p.isRoot || (p.assigned && p.parentRnk != p.ownRank())
}

// finishLayering harvests segment-A results.
func (p *Protocol) finishLayering() {
	if p.level >= 0 {
		return
	}
	switch {
	case p.wave != nil:
		p.level = int32(p.wave.Level())
	case p.layering != nil:
		p.level = int32(p.layering.Level())
	}
}

// harvestBlue folds a completed blue-role machine into the node state.
func (p *Protocol) harvestBlue(nd *assign.Node) {
	if nd.Assigned() {
		p.assigned = true
		p.parent = nd.Parent()
		p.parentRnk = nd.ParentRank()
		p.tickAssigned()
	}
}

// harvestRed folds a completed red-role machine into the node state.
func (p *Protocol) harvestRed(nd *assign.Node) {
	if nd.RedRanked() {
		p.ranked = true
		p.rank = nd.RedRank()
		p.sameRank = nd.RedHasSameRankChild()
	}
}

// harvestBoundary folds the live sequential boundary machine's results
// into the node state.
func (p *Protocol) harvestBoundary() {
	nd := p.bNode
	p.bNode = nil
	if p.cfg.BlueLevel(p.bIdx) == int(p.level) {
		p.harvestBlue(nd)
	} else {
		p.harvestRed(nd)
	}
	p.bIdx = -1
}

// syncBoundary manages the live assign.Node across boundary windows.
func (p *Protocol) syncBoundary(pos Pos) {
	if p.bNode != nil && (pos.Seg != SegBoundary || pos.Boundary != p.bIdx) {
		p.harvestBoundary()
	}
	if pos.Seg == SegBoundary && p.bNode == nil && pos.Off == 0 && p.level >= 0 {
		blue := p.cfg.BlueLevel(pos.Boundary)
		switch int(p.level) {
		case blue:
			p.bNode = assign.NewNode(p.cfg.Assign, p.id, assign.Blue, p.ownRank(), p.rng)
			p.bIdx = pos.Boundary
			p.bIsBlue = true
		case blue - 1:
			p.bNode = assign.NewNode(p.cfg.Assign, p.id, assign.Red, 0, p.rng)
			p.bIdx = pos.Boundary
			p.bIsBlue = false
		}
	}
}

// Pipelined segment B (Config.PipelinedBoundaries, Section 2.2.4).
//
// Phase p of the pipelined schedule drives the parity-(p mod 2)
// boundaries inside their windows; boundary b processes rank
// MaxRank - (p-3b)/2 during phase p at the same in-rank offsets as the
// sequential schedule, so the assign.Node machines run unchanged —
// they are simply fed their boundary-local offsets in interleaved
// slices of global time. A node's red boundary (index DBound-level-1)
// and blue boundary (DBound-level) have opposite parities, so it plays
// at most one role per phase, but both machines stay live across the
// interleaving.

// pipeRole returns the boundary the node serves in the given phase and
// whether it plays the blue role there.
func (p *Protocol) pipeRole(phase int) (b int, isBlue, ok bool) {
	bBlue := p.cfg.DBound - int(p.level)
	if p.cfg.BoundaryActiveInPhase(bBlue-1, phase) {
		return bBlue - 1, false, true
	}
	if p.cfg.BoundaryActiveInPhase(bBlue, phase) {
		return bBlue, true, true
	}
	return 0, false, false
}

// pipePhaseEnd returns the last phase of boundary b's window.
func (p *Protocol) pipePhaseEnd(b int) int { return 3*b + 2*(p.maxRank-1) }

// pipeSync harvests pipelined machines whose windows have passed. The
// red machine must be harvested (or consulted live — see ownRank)
// before the blue role needs the node's rank; harvesting on the first
// Act after the window closes preserves that order.
func (p *Protocol) pipeSync(phase int) {
	if p.bRed != nil {
		bBlue := p.cfg.DBound - int(p.level)
		if phase > p.pipePhaseEnd(bBlue-1) {
			p.harvestRed(p.bRed)
			p.bRed = nil
		}
	}
	if p.bBlue != nil {
		if phase > p.pipePhaseEnd(p.cfg.DBound-int(p.level)) {
			p.harvestBlue(p.bBlue)
			p.bBlue = nil
		}
	}
}

// pipeFinish harvests any still-live pipelined machines (segment B
// over, or Result called at the schedule end).
func (p *Protocol) pipeFinish() {
	if p.bRed != nil {
		p.harvestRed(p.bRed)
		p.bRed = nil
	}
	if p.bBlue != nil {
		p.harvestBlue(p.bBlue)
		p.bBlue = nil
	}
}

// pipeAct drives the pipelined segment B at the located phase/offset.
func (p *Protocol) pipeAct(pos Pos) radio.Action {
	p.finishLayering()
	if p.level < 0 {
		// Level never learned: sit out segment B (as the sequential
		// schedule's nextWake does) and rejoin at segment C.
		return radio.Sleep(p.loc.layer + p.loc.boundaries)
	}
	p.pipeSync(pos.Phase)
	b, isBlue, ok := p.pipeRole(pos.Phase)
	if !ok {
		return radio.Sleep(p.pipeNextWake(pos.Phase))
	}
	off := int64((pos.Phase-3*b)/2)*p.loc.rankLen + pos.Off
	if isBlue {
		if p.bBlue == nil {
			if pos.Off != 0 || pos.Phase != 3*b {
				return radio.Listen // window already running; cannot join
			}
			p.bBlue = assign.NewTaggedNode(p.cfg.Assign, p.id, assign.Blue, p.ownRank(), p.rng,
				p.cfg.LevelTag(p.level), p.cfg.LevelTag(p.level-1))
		} else if pos.Off == 0 {
			// Rank-window start: adopt the rank the red role has learned
			// by now (final for every rank >= this window's rank).
			p.bBlue.SetBlueRank(p.ownRank())
		}
		act := p.bBlue.Act(off)
		if p.bBlue.Assigned() {
			p.tickAssigned()
		}
		return act
	}
	if p.bRed == nil {
		if pos.Off != 0 || pos.Phase != 3*b {
			return radio.Listen
		}
		p.bRed = assign.NewTaggedNode(p.cfg.Assign, p.id, assign.Red, 0, p.rng,
			p.cfg.LevelTag(p.level), p.cfg.LevelTag(p.level+1))
	}
	return p.bRed.Act(off)
}

// pipeObserve routes a segment-B reception to the phase's machine.
func (p *Protocol) pipeObserve(pos Pos, out radio.Outcome) {
	if p.level < 0 {
		return
	}
	b, isBlue, ok := p.pipeRole(pos.Phase)
	if !ok {
		return
	}
	off := int64((pos.Phase-3*b)/2)*p.loc.rankLen + pos.Off
	if isBlue {
		if p.bBlue != nil {
			p.bBlue.Observe(off, out)
			if p.bBlue.Assigned() {
				p.tickAssigned()
			}
		}
	} else if p.bRed != nil {
		p.bRed.Observe(off, out)
	}
}

// pipeNextWake returns the round of the node's next pipelined
// participation: the next in-window phase of either of its boundaries,
// or the start of segment C.
func (p *Protocol) pipeNextWake(phase int) int64 {
	bBlue := p.cfg.DBound - int(p.level)
	next := p.loc.layer + p.loc.boundaries // segment C
	for _, b := range [2]int{bBlue - 1, bBlue} {
		if b < 0 || b >= p.cfg.DBound {
			continue
		}
		start, end := 3*b, p.pipePhaseEnd(b)
		q := phase + 1
		switch {
		case q < start:
			q = start
		case q > end:
			continue
		case (q-start)%2 != 0:
			q++
			if q > end {
				continue
			}
		}
		if r := p.loc.layer + int64(q)*p.loc.rankLen; r < next {
			next = r
		}
	}
	return next
}

// Act implements radio.Protocol.
func (p *Protocol) Act(r int64) radio.Action {
	pos := p.loc.Locate(r)
	switch pos.Seg {
	case SegLayer:
		var act radio.Action
		switch {
		case p.wave != nil:
			act = p.wave.Act(r)
		case p.layering != nil:
			act = p.layering.Act(r)
		}
		// Sub-protocols may sleep past their own end; clamp to the
		// start of segment B so boundary windows are not missed.
		if act.SleepUntil > p.loc.layer {
			act.SleepUntil = p.loc.layer
		}
		return act
	case SegBoundary:
		if p.loc.pipelined {
			return p.pipeAct(pos)
		}
		if pos.Boundary != p.bIdx || pos.Off == 0 {
			if pos.Off == 0 && p.bNode == nil {
				p.finishLayering()
			}
			p.syncBoundary(pos)
		}
		if p.bNode != nil {
			act := p.bNode.Act(pos.Off)
			if p.bIsBlue && p.bNode.Assigned() {
				p.tickAssigned()
			}
			return act
		}
		// Not a participant of this boundary: sleep until the next
		// window this node cares about.
		return radio.Sleep(p.nextWake(r, pos))
	case SegVdist:
		p.syncBoundary(pos)
		p.pipeFinish()
		return p.vdistAct(pos)
	default:
		p.syncBoundary(pos)
		p.pipeFinish()
		return radio.Sleep(1 << 62)
	}
}

// nextWake computes the next round at which the node participates
// during segment B: the start of its red-role boundary, its blue-role
// boundary, or segment C.
func (p *Protocol) nextWake(r int64, pos Pos) int64 {
	base := p.loc.layer
	br := p.loc.boundary
	candidates := [2]int{
		p.cfg.BoundaryIndexForBlueLevel(int(p.level) + 1), // red role
		p.cfg.BoundaryIndexForBlueLevel(int(p.level)),     // blue role
	}
	next := p.loc.layer + p.loc.boundaries // segment C
	for _, b := range candidates {
		if b < 0 || b >= p.cfg.DBound || b <= pos.Boundary {
			continue
		}
		if start := base + int64(b)*br; start < next {
			next = start
		}
	}
	if next <= r {
		return r + 1
	}
	return next
}

// Observe implements radio.Protocol.
func (p *Protocol) Observe(r int64, out radio.Outcome) {
	pos := p.loc.Locate(r)
	switch pos.Seg {
	case SegLayer:
		switch {
		case p.wave != nil:
			p.wave.Observe(r, out)
		case p.layering != nil:
			p.layering.Observe(r, out)
		}
	case SegBoundary:
		if p.loc.pipelined {
			p.pipeObserve(pos, out)
			return
		}
		if p.bNode != nil && pos.Boundary == p.bIdx {
			p.bNode.Observe(pos.Off, out)
			if p.bIsBlue && p.bNode.Assigned() {
				p.tickAssigned()
			}
		}
	case SegVdist:
		p.vdistObserve(pos, out)
	}
}

// vdistAct handles segment C transmissions.
func (p *Protocol) vdistAct(pos Pos) radio.Action {
	p.syncVdistBlock(pos)
	if pos.Stage == 1 {
		// Epoch 0: stretch starts of the d-frontier launch the wave.
		// Epoch 1: stretch nodes that saw the wave this block relay it.
		// Both transmit only in the round matching their level and only
		// when they have a same-rank child to deliver to.
		if int64(p.level) != pos.VdOff || int32(pos.Rank) != p.ownRank() || !p.sameRank {
			return radio.Listen
		}
		launch := pos.Epoch == 0 && p.vdist == int32(pos.D) && p.isStretchStart()
		relay := pos.Epoch == 1 && p.waveRelay
		if launch || relay {
			return radio.Transmit(p.wavePkt)
		}
		return radio.Listen
	}
	// Stage 2: the d-frontier floods with Decay.
	if p.vdist == int32(pos.D) {
		slot := int(pos.VdOff) % p.cfg.L()
		if p.rng.Float64() < decay.TransmitProb(slot) {
			return radio.Transmit(p.floodPkt)
		}
	}
	return radio.Listen
}

// syncVdistBlock resets per-block wave state and re-boxes the block's
// packets (their contents are constant within a block).
func (p *Protocol) syncVdistBlock(pos Pos) {
	block := int64(pos.D)
	if block != p.curBlock {
		p.curBlock = block
		p.waveRelay = false
		p.wavePkt = WavePacket{D: int32(pos.D), Tag: p.cfg.Tag}
		p.floodPkt = FloodPacket{D: int32(pos.D), Tag: p.cfg.Tag}
	}
}

// vdistObserve handles segment C receptions.
func (p *Protocol) vdistObserve(pos Pos, out radio.Outcome) {
	p.syncVdistBlock(pos)
	if out.Packet == nil {
		return
	}
	switch pkt := out.Packet.(type) {
	case WavePacket:
		// Accept the wave only from the parent, with a matching tag,
		// in the matching rank class, at the level clock position just
		// below us.
		if pkt.Tag != p.cfg.Tag || pos.Stage != 1 || out.From != p.parent || int32(pos.Rank) != p.ownRank() {
			return
		}
		if int64(p.level) != pos.VdOff+1 {
			return
		}
		p.waveRelay = true
		if p.vdist < 0 {
			p.vdist = int32(pos.D) + 1
		}
	case FloodPacket:
		if pkt.Tag == p.cfg.Tag && pos.Stage == 2 && p.vdist < 0 {
			p.vdist = int32(pos.D) + 1
		}
	}
}
