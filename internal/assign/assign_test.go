package assign

import (
	"fmt"
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/radio"
	"radiocast/internal/recruit"
	"radiocast/internal/rng"
)

// boundary builds a two-level test instance from any connected graph:
// nodes at BFS level 0/1 from node 0 form reds, level-1 nodes are
// blues; deeper nodes are dropped. Returns the induced graph, the red
// count, and blue ranks (from a centralized GST of the full graph, so
// ranks are realistic).
func twoLevelInstance(g *graph.Graph) (sub *graph.Graph, isRed []bool, blueRank []int32) {
	bfs := graph.BFS(g, 0)
	tree := gst.Construct(g, 0)
	keep := make([]graph.NodeID, 0)
	for v := 0; v < g.N(); v++ {
		if bfs.Dist[v] == 0 || bfs.Dist[v] == 1 {
			keep = append(keep, graph.NodeID(v))
		}
	}
	idx := make(map[graph.NodeID]graph.NodeID, len(keep))
	for i, v := range keep {
		idx[v] = graph.NodeID(i)
	}
	b := graph.NewBuilder(len(keep))
	isRed = make([]bool, len(keep))
	blueRank = make([]int32, len(keep))
	for _, v := range keep {
		for _, u := range g.Neighbors(v) {
			if lu, ok := idx[u]; ok {
				b.AddEdge(idx[v], lu)
			}
		}
		if bfs.Dist[v] == 0 {
			isRed[idx[v]] = true
		} else {
			blueRank[idx[v]] = tree.Rank[v]
		}
	}
	return b.Build(), isRed, blueRank
}

// runBoundary executes the assignment on a two-level instance. paramN
// is the full-network size the schedule is derived from (the paper
// assumes nodes know a polynomial upper bound on n, not the boundary
// size).
func runBoundary(t *testing.T, sub *graph.Graph, isRed []bool, blueRank []int32, paramN, c int, seed uint64) []*Node {
	t.Helper()
	p := DefaultParams(paramN, c)
	nw := radio.New(sub, radio.Config{})
	nodes := make([]*Node, sub.N())
	for v := 0; v < sub.N(); v++ {
		role := Blue
		if isRed[v] {
			role = Red
		}
		nodes[v] = NewNode(p, graph.NodeID(v), role, blueRank[v], rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &BoundaryProtocol{N: nodes[v]})
	}
	nw.Run(p.BoundaryRounds())
	return nodes
}

// verifyAssignment checks the six properties of the Bipartite
// Assignment Problem on the result.
func verifyAssignment(t *testing.T, sub *graph.Graph, isRed []bool, blueRank []int32, nodes []*Node) {
	t.Helper()
	children := make(map[graph.NodeID][]graph.NodeID)
	for v, nd := range nodes {
		if isRed[v] {
			continue
		}
		// (1) every blue assigned to a red neighbor.
		if !nd.Assigned() {
			t.Fatalf("blue %d (rank %d) unassigned", v, blueRank[v])
		}
		p := nd.Parent()
		if !sub.HasEdge(graph.NodeID(v), p) || !isRed[p] {
			t.Fatalf("blue %d assigned to invalid parent %d", v, p)
		}
		children[p] = append(children[p], graph.NodeID(v))
	}
	// (2)+(4) red ranks follow the ranking rule over assigned children.
	for v, nd := range nodes {
		if !isRed[v] {
			continue
		}
		ch := children[graph.NodeID(v)]
		if len(ch) == 0 {
			if nd.RedRanked() {
				t.Fatalf("childless red %d has rank %d", v, nd.RedRank())
			}
			continue
		}
		var best int32
		cnt := 0
		for _, c := range ch {
			switch {
			case blueRank[c] > best:
				best, cnt = blueRank[c], 1
			case blueRank[c] == best:
				cnt++
			}
		}
		want := best
		if cnt >= 2 {
			want = best + 1
		}
		if !nd.RedRanked() || nd.RedRank() != want {
			t.Fatalf("red %d rank %d (ranked=%v), want %d (children ranks via %v)",
				v, nd.RedRank(), nd.RedRanked(), want, ch)
		}
	}
	// (5)+(6) blues know their parent's rank.
	for v, nd := range nodes {
		if isRed[v] {
			continue
		}
		if nd.ParentRank() != nodes[nd.Parent()].RedRank() {
			t.Fatalf("blue %d believes parent rank %d, parent %d has %d",
				v, nd.ParentRank(), nd.Parent(), nodes[nd.Parent()].RedRank())
		}
	}
	// (3) collision-freeness: same-rank parent-child pairs form an
	// induced matching.
	inM := make([]bool, sub.N())
	for v, nd := range nodes {
		if !isRed[v] && blueRank[v] == nd.ParentRank() {
			inM[nd.Parent()] = true
		}
	}
	for v, nd := range nodes {
		if isRed[v] || blueRank[v] != nd.ParentRank() {
			continue
		}
		for _, w := range sub.Neighbors(graph.NodeID(v)) {
			if w == nd.Parent() || !isRed[w] {
				continue
			}
			if inM[w] && nodes[w].RedRank() == blueRank[v] {
				t.Fatalf("collision-freeness violated: blue %d (rank %d) adjacent to M-parent %d",
					v, blueRank[v], w)
			}
		}
	}
}

func TestBoundaryOnFamilies(t *testing.T) {
	cases := []*graph.Graph{
		graph.Star(20),           // one red, many blues
		graph.Path(3),            // 1 red, 1 blue after truncation
		graph.Complete(12),       // all blues adjacent to the single red
		graph.GNP(40, 0.15, 2),   // bushy level-1
		graph.Grid(2, 10),        // thin boundary
		graph.ClusterChain(2, 8), // dense cluster boundary
	}
	for _, g := range cases {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			sub, isRed, blueRank := twoLevelInstance(g)
			nodes := runBoundary(t, sub, isRed, blueRank, g.N(), 2, 7)
			verifyAssignment(t, sub, isRed, blueRank, nodes)
		})
	}
}

func TestBoundaryMultiSeed(t *testing.T) {
	g := graph.GNP(50, 0.12, 11)
	sub, isRed, blueRank := twoLevelInstance(g)
	for seed := uint64(0); seed < 5; seed++ {
		nodes := runBoundary(t, sub, isRed, blueRank, g.N(), 2, seed)
		verifyAssignment(t, sub, isRed, blueRank, nodes)
	}
}

func TestBoundaryMixedBlueRanks(t *testing.T) {
	// Synthetic boundary with explicitly mixed blue ranks: two reds,
	// six blues with ranks {1,1,2,2,3,3}, complete bipartite — forces
	// high-rank sub-problems, promotions, and mop-up assignments.
	nRed, nBlue := 3, 6
	b := graph.NewBuilder(nRed + nBlue)
	for v := 0; v < nRed; v++ {
		for u := 0; u < nBlue; u++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID(nRed+u))
		}
	}
	sub := b.Build()
	isRed := make([]bool, sub.N())
	blueRank := make([]int32, sub.N())
	for v := 0; v < nRed; v++ {
		isRed[v] = true
	}
	ranks := []int32{1, 1, 2, 2, 3, 3}
	for u := 0; u < nBlue; u++ {
		blueRank[nRed+u] = ranks[u]
	}
	for seed := uint64(0); seed < 4; seed++ {
		nodes := runBoundary(t, sub, isRed, blueRank, 64, 2, seed)
		verifyAssignment(t, sub, isRed, blueRank, nodes)
	}
}

func TestLonerFastPath(t *testing.T) {
	// A perfect matching boundary: every blue is a loner, so epoch 1
	// part 1 must resolve everything permanently with all reds rank 1.
	const pairs = 8
	b := graph.NewBuilder(2 * pairs)
	for i := 0; i < pairs; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(pairs+i))
	}
	sub := b.Build()
	isRed := make([]bool, sub.N())
	blueRank := make([]int32, sub.N())
	for i := 0; i < pairs; i++ {
		isRed[i] = true
		blueRank[pairs+i] = 1
	}
	nodes := runBoundary(t, sub, isRed, blueRank, 64, 2, 3)
	verifyAssignment(t, sub, isRed, blueRank, nodes)
	for i := 0; i < pairs; i++ {
		if nodes[i].RedRank() != 1 {
			t.Fatalf("matched red %d rank %d, want 1", i, nodes[i].RedRank())
		}
		if nodes[pairs+i].Parent() != graph.NodeID(i) {
			t.Fatalf("blue %d parent %d, want %d", pairs+i, nodes[pairs+i].Parent(), i)
		}
	}
}

func TestSharedRedPromotes(t *testing.T) {
	// One red adjacent to two rank-1 blues with no other reds: the red
	// must adopt both (loner path) and take rank 2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	sub := b.Build()
	isRed := []bool{true, false, false}
	blueRank := []int32{0, 1, 1}
	nodes := runBoundary(t, sub, isRed, blueRank, 32, 4, 1)
	verifyAssignment(t, sub, isRed, blueRank, nodes)
	if nodes[0].RedRank() != 2 {
		t.Fatalf("red rank %d, want 2", nodes[0].RedRank())
	}
}

func TestLocateCoversBoundary(t *testing.T) {
	p := DefaultParams(64, 1)
	counts := map[Window]int64{}
	var prev Pos
	for off := int64(0); off < p.BoundaryRounds(); off++ {
		pos := p.Locate(off)
		counts[pos.Win]++
		if off > 0 && pos.Rank > prev.Rank {
			t.Fatal("rank increased over time; must be decreasing")
		}
		prev = pos
	}
	// Segment length accounting.
	ranks := int64(p.MaxRank())
	epochs := int64(p.Epochs())
	if counts[WinIdent] != ranks*p.IdentLen() {
		t.Fatalf("ident rounds %d", counts[WinIdent])
	}
	if counts[WinPing] != ranks*epochs {
		t.Fatalf("ping rounds %d", counts[WinPing])
	}
	if counts[WinPart1] != ranks*epochs*p.Rec.Rounds() {
		t.Fatalf("part1 rounds %d", counts[WinPart1])
	}
	if counts[WinMop] != ranks*epochs*p.MopLen() {
		t.Fatalf("mop rounds %d", counts[WinMop])
	}
}

func TestBoundaryRoundsBudget(t *testing.T) {
	// The schedule must stay Θ(log^5 n)-shaped: for n=256 (L=8) with
	// c=1 the boundary is far below 64·L^5.
	p := DefaultParams(256, 1)
	l := int64(p.L)
	if p.BoundaryRounds() > 64*l*l*l*l*l {
		t.Fatalf("boundary %d rounds exceeds Θ(log^5) envelope", p.BoundaryRounds())
	}
	fmt.Printf("boundary rounds for n=256, c=1: %d (L=%d)\n", p.BoundaryRounds(), p.L)
}

func TestRecruitParamsEmbedded(t *testing.T) {
	p := DefaultParams(128, 2)
	if p.Rec.L != p.L {
		t.Fatal("recruit phase length mismatch")
	}
	if p.Rec.Iterations() != 2*p.L*p.L {
		t.Fatal("recruit iterations mismatch")
	}
	_ = recruit.ClassMany // package is exercised through the boundary
}
