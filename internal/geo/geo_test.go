package geo

import (
	"math"
	"testing"

	"radiocast/internal/graph"
)

// bruteDisk is the O(n²) reference implementation of the unit-disk
// stream: every pair compared, each edge emitted once with u < v.
type bruteDisk struct {
	l      *Layout
	radius float64
}

func (b *bruteDisk) N() int       { return b.l.N() }
func (b *bruteDisk) Name() string { return "brute-" + b.l.name }

func (b *bruteDisk) Edges(emit func(u, v graph.NodeID)) {
	n := b.l.N()
	r2 := b.radius * b.radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := b.l.X[v] - b.l.X[u]
			dy := b.l.Y[v] - b.l.Y[u]
			if dx*dx+dy*dy <= r2 {
				emit(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
}

// sameCSR reports whether two graphs have identical CSR arrays.
// FromStream sorts and dedups every adjacency row, so CSR equality is
// independent of edge emission order.
func sameCSR(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("node count: got %d want %d", got.N(), want.N())
	}
	gOff, gEdges := got.CSR()
	wOff, wEdges := want.CSR()
	if len(gOff) != len(wOff) || len(gEdges) != len(wEdges) {
		t.Fatalf("CSR sizes: got %d/%d want %d/%d", len(gOff), len(gEdges), len(wOff), len(wEdges))
	}
	for i := range gOff {
		if gOff[i] != wOff[i] {
			t.Fatalf("offset[%d]: got %d want %d", i, gOff[i], wOff[i])
		}
	}
	for i := range gEdges {
		if gEdges[i] != wEdges[i] {
			t.Fatalf("edge[%d]: got %d want %d", i, gEdges[i], wEdges[i])
		}
	}
}

func TestDiskMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		layout *Layout
		radius float64
	}{
		{"uniform-small", Uniform(40, 1), 0.25},
		{"uniform-tight", Uniform(120, 2), 0.08},
		{"uniform-wide", Uniform(60, 3), 0.9},
		{"uniform-conn", Uniform(200, 4), ConnectivityRadius(200)},
		{"clustered", Clustered(90, 5, 0.05, 6), 0.06},
		{"clustered-bridge", Clustered(90, 3, 0.2, 7), 0.3},
		{"tiny", Uniform(2, 8), 0.5},
		{"single", Uniform(1, 9), 0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast := graph.FromStream(NewDisk(tc.layout, tc.radius))
			brute := graph.FromStream(&bruteDisk{l: tc.layout, radius: tc.radius})
			sameCSR(t, fast, brute)
		})
	}
}

func TestLayoutDeterminism(t *testing.T) {
	a := Uniform(500, 42)
	b := Uniform(500, 42)
	c := Uniform(500, 43)
	diff := false
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("same-seed layouts diverge at node %d", i)
		}
		if a.X[i] != c.X[i] {
			diff = true
		}
		if a.X[i] < 0 || a.X[i] >= 1 || a.Y[i] < 0 || a.Y[i] >= 1 {
			t.Fatalf("node %d outside unit square: (%g, %g)", i, a.X[i], a.Y[i])
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical layouts")
	}

	ca := Clustered(300, 5, 0.04, 7)
	cb := Clustered(300, 5, 0.04, 7)
	for i := range ca.X {
		if ca.X[i] != cb.X[i] || ca.Y[i] != cb.Y[i] {
			t.Fatalf("same-seed clustered layouts diverge at node %d", i)
		}
		if ca.X[i] < 0 || ca.X[i] >= 1 || ca.Y[i] < 0 || ca.Y[i] >= 1 {
			t.Fatalf("clustered node %d outside unit square", i)
		}
	}
}

func TestClusteredIsClustered(t *testing.T) {
	// With spread far below typical center separation, the disk graph
	// at a radius just above the spread should split into components —
	// i.e. strictly fewer edges than the connected uniform layout
	// would need, and no single row spanning most of the graph.
	l := Clustered(120, 6, 0.03, 11)
	g := graph.FromStream(NewDisk(l, 0.05))
	off, _ := g.CSR()
	maxDeg := int32(0)
	for v := 0; v < g.N(); v++ {
		if d := off[v+1] - off[v]; d > maxDeg {
			maxDeg = d
		}
	}
	// Each cluster holds n/clusters = 20 nodes; a node can only reach
	// its own cluster (plus rare overlapping centers), never most of
	// the graph.
	if maxDeg > 60 {
		t.Fatalf("clustered layout too dense: max degree %d", maxDeg)
	}
}

func TestDiskStreamStable(t *testing.T) {
	// The EdgeStream contract: two passes emit the identical sequence.
	l := Uniform(150, 13)
	d := NewDisk(l, ConnectivityRadius(150))
	type edge struct{ u, v graph.NodeID }
	var first []edge
	d.Edges(func(u, v graph.NodeID) { first = append(first, edge{u, v}) })
	i := 0
	d.Edges(func(u, v graph.NodeID) {
		if i >= len(first) || first[i] != (edge{u, v}) {
			t.Fatalf("second pass diverges at emission %d", i)
		}
		i++
	})
	if i != len(first) {
		t.Fatalf("second pass emitted %d edges, first %d", i, len(first))
	}
	for _, e := range first {
		if e.u >= e.v {
			t.Fatalf("edge (%d,%d) not emitted with u < v", e.u, e.v)
		}
	}
}

func TestWaypointStaysInBoundsAndDeterministic(t *testing.T) {
	la := Uniform(200, 21)
	lb := Uniform(200, 21)
	wa := NewWaypoint(la, 0.01, 99)
	wb := NewWaypoint(lb, 0.01, 99)
	wa.Advance(500)
	wb.Advance(500)
	for i := range la.X {
		if la.X[i] != lb.X[i] || la.Y[i] != lb.Y[i] {
			t.Fatalf("same-seed waypoint walks diverge at node %d", i)
		}
		if la.X[i] < 0 || la.X[i] >= 1 || la.Y[i] < 0 || la.Y[i] >= 1 {
			t.Fatalf("node %d left the unit square: (%g, %g)", i, la.X[i], la.Y[i])
		}
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	l := Uniform(50, 31)
	x0 := append([]float64(nil), l.X...)
	y0 := append([]float64(nil), l.Y...)
	w := NewWaypoint(l, 0.005, 7)
	w.Advance(64)
	total := 0.0
	for i := range l.X {
		dx := l.X[i] - x0[i]
		dy := l.Y[i] - y0[i]
		total += math.Sqrt(dx*dx + dy*dy)
	}
	if total/float64(l.N()) < 0.005 {
		t.Fatalf("mean displacement %g after 64 steps at speed 0.005 — stepper is not moving nodes", total/float64(l.N()))
	}
}

func TestConnectivityRadiusMatchesGraphPackage(t *testing.T) {
	for _, n := range []int{2, 100, 10_000, 1_000_000} {
		if got, want := ConnectivityRadius(n), graph.ConnectivityRadius(n); got != want {
			t.Fatalf("ConnectivityRadius(%d): geo %g vs graph %g", n, got, want)
		}
	}
}
