package gst

import (
	"testing"
	"testing/quick"

	"radiocast/internal/graph"
	"radiocast/internal/sched"
)

func families() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(40),
		graph.Cycle(30),
		graph.Star(30),
		graph.Complete(16),
		graph.Grid(6, 7),
		graph.BinaryTree(31),
		graph.Hypercube(5),
		graph.ClusterChain(6, 5),
		graph.Caterpillar(10, 2),
		graph.GNP(80, 0.07, 3),
		graph.UnitDisk(90, graph.ConnectivityRadius(90), 5),
	}
}

func TestConstructValidatesOnFamilies(t *testing.T) {
	for _, g := range families() {
		t.Run(g.Name(), func(t *testing.T) {
			tree := Construct(g, 0)
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConstructRandomGraphsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(60, 0.08, seed)
		tree := Construct(g, 0)
		return tree.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructMultiRoot(t *testing.T) {
	g := graph.Grid(8, 8)
	// Roots: the whole first row (a ring inner boundary).
	roots := make([]NodeID, 8)
	for i := range roots {
		roots[i] = NodeID(i)
	}
	tree := Construct(g, roots...)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if tree.Level[r] != 0 {
			t.Fatalf("root %d level %d", r, tree.Level[r])
		}
	}
	if tree.MaxLevel() != 7 {
		t.Fatalf("max level %d, want 7", tree.MaxLevel())
	}
}

func TestRankBound(t *testing.T) {
	for _, g := range families() {
		tree := Construct(g, 0)
		if mr := tree.MaxRank(); int(mr) > sched.LogN(g.N())+1 {
			t.Fatalf("%s: max rank %d > ⌈log n⌉", g.Name(), mr)
		}
	}
}

func TestRankRule(t *testing.T) {
	// Hand-built tree: root with two rank-1 children -> rank 2;
	// chain of single children keeps rank.
	g := graph.BinaryTree(7)
	tree := Construct(g, 0)
	// Complete binary tree on 7 nodes: leaves 3,4,5,6 rank 1;
	// nodes 1,2 have two rank-1 children -> rank 2; root has two
	// rank-2 children -> rank 3.
	wantRanks := map[int]int32{3: 1, 4: 1, 5: 1, 6: 1, 1: 2, 2: 2, 0: 3}
	for v, want := range wantRanks {
		if tree.Rank[v] != want {
			t.Fatalf("node %d rank %d, want %d", v, tree.Rank[v], want)
		}
	}
}

func TestPathIsSingleStretch(t *testing.T) {
	g := graph.Path(20)
	tree := Construct(g, 0)
	info := Stretches(tree)
	for v := 0; v < 20; v++ {
		if tree.Rank[v] != 1 {
			t.Fatalf("path node %d rank %d", v, tree.Rank[v])
		}
		if info[v].Start != 0 || int(info[v].Pos) != v {
			t.Fatalf("node %d stretch (%d,%d), want (0,%d)", v, info[v].Start, info[v].Pos, v)
		}
	}
}

func TestNaiveViolatesGadget(t *testing.T) {
	g := FigureOneGadget()
	naive := NaiveRankedBFS(g, 0)
	if err := naive.ValidateCollisionFreeness(); err == nil {
		t.Fatal("naive ranked BFS on the gadget should violate collision-freeness")
	}
	proper := Construct(g, 0)
	if err := proper.Validate(); err != nil {
		t.Fatalf("GST construction failed on gadget: %v", err)
	}
}

func TestFigureOneGraphConstructs(t *testing.T) {
	g := FigureOneGraph()
	if !graph.IsConnected(g) {
		t.Fatal("figure-1 graph disconnected")
	}
	tree := Construct(g, 0)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.MaxRank() < 2 {
		t.Fatal("figure-1 graph should produce multiple ranks")
	}
}

func TestVirtualDistanceBound(t *testing.T) {
	// Lemma 3.4: d(u) <= 2⌈log2 n⌉ for every node.
	for _, g := range families() {
		tree := Construct(g, 0)
		vdist := VirtualDistances(tree)
		bound := int32(2 * (sched.LogN(g.N()) + 1))
		for v := 0; v < g.N(); v++ {
			if vdist[v] < 0 {
				t.Fatalf("%s: node %d unreachable in G'", g.Name(), v)
			}
			if vdist[v] > bound {
				t.Fatalf("%s: node %d virtual distance %d > %d", g.Name(), v, vdist[v], bound)
			}
		}
		if vdist[0] != 0 {
			t.Fatalf("%s: root virtual distance %d", g.Name(), vdist[0])
		}
	}
}

func TestVirtualDistanceStretchIsOneHop(t *testing.T) {
	// Along a fast stretch, every node is one fast edge from the
	// start, so d(node) <= d(start) + 1.
	g := graph.Path(30)
	tree := Construct(g, 0)
	vdist := VirtualDistances(tree)
	// Path: single stretch from root; every node at virtual distance 1
	// (fast edge from root), root at 0.
	for v := 1; v < 30; v++ {
		if vdist[v] != 1 {
			t.Fatalf("node %d virtual distance %d, want 1", v, vdist[v])
		}
	}
}

func TestHeights(t *testing.T) {
	g := graph.Grid(5, 5)
	tree := Construct(g, 0)
	vdist := VirtualDistances(tree)
	logN := int32(sched.LogN(g.N()))
	h := Heights(tree, vdist, logN)
	if h[0] != 0 {
		t.Fatalf("root height %d", h[0])
	}
	for v := 1; v < g.N(); v++ {
		if h[v] != vdist[v]*logN+tree.Level[v] {
			t.Fatal("height formula broken")
		}
	}
}

func TestFastEdgesCollisionFreeOnGSTs(t *testing.T) {
	for _, g := range families() {
		tree := Construct(g, 0)
		if v := FastEdgesCollisionFree(tree); v != 0 {
			t.Fatalf("%s: %d fast-slot collision violations on a valid GST", g.Name(), v)
		}
	}
}

func TestFastEdgesViolationsOnNaive(t *testing.T) {
	if FastEdgesCollisionFree(NaiveRankedBFS(FigureOneGadget(), 0)) == 0 {
		t.Fatal("gadget naive tree should have fast-slot violations")
	}
}

func TestSameRankChildUnique(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(50, 0.1, seed)
		tree := Construct(g, 0)
		children := tree.Children()
		for v := 0; v < g.N(); v++ {
			same := 0
			for _, c := range children[v] {
				if tree.Rank[c] == tree.Rank[v] {
					same++
				}
			}
			if same > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRingExtraction(t *testing.T) {
	g := graph.Path(20)
	bfs := graph.BFS(g, 0)
	sub, l2g, roots := Ring(g, bfs.Dist, 5, 12)
	if sub.N() != 7 {
		t.Fatalf("ring size %d, want 7", sub.N())
	}
	if len(roots) != 1 {
		t.Fatalf("roots %v, want one node (layer 5)", roots)
	}
	if l2g[roots[0]] != 5 {
		t.Fatalf("root maps to %d, want 5", l2g[roots[0]])
	}
	if sub.M() != 6 {
		t.Fatalf("ring edges %d, want 6", sub.M())
	}
	// GST of the ring validates.
	tree := Construct(sub, roots...)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.Grid(4, 4)
	tree := Construct(g, 0)
	// Corrupt a rank.
	tree.Rank[5]++
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted rank")
	}
	tree = Construct(g, 0)
	// Corrupt a level.
	tree.Level[7]++
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted level")
	}
	tree = Construct(g, 0)
	// Corrupt a parent to a non-edge.
	tree.Parent[15] = 0
	if err := tree.Validate(); err == nil {
		t.Fatal("Validate accepted non-edge parent")
	}
}

func BenchmarkConstructGrid32(b *testing.B) {
	g := graph.Grid(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Construct(g, 0)
	}
}

func BenchmarkValidateGrid32(b *testing.B) {
	g := graph.Grid(32, 32)
	tree := Construct(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
