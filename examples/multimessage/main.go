// Multimessage: firmware-chunk dissemination — k packets from one
// gateway to every node, with random linear network coding (Theorems
// 1.2 and 1.3). Shows the linear-in-k scaling with slope ~log n.
package main

import (
	"fmt"
	"log"

	"radiocast"
	"radiocast/internal/graph"
	"radiocast/internal/sched"
)

func main() {
	g := radiocast.NewGrid(8, 8)
	d := graph.Eccentricity(g, 0)
	l := sched.LogN(g.N())
	fmt.Printf("firmware dissemination on %s: D=%d, log n=%d\n\n", g.Name(), d, l)

	fmt.Printf("%4s %18s %14s\n", "k", "rounds (Thm 1.2)", "rounds/k")
	var prev int64
	for _, k := range []int{2, 4, 8, 16, 32} {
		res, err := radiocast.BroadcastK(g, k, radiocast.Options{Seed: 5})
		if err != nil || !res.Completed {
			log.Fatalf("k=%d: %v %+v", k, err, res)
		}
		fmt.Printf("%4d %18d %14.1f\n", k, res.Rounds, float64(res.Rounds)/float64(k))
		prev = res.Rounds
	}
	_ = prev

	fmt.Println("\nsame task, unknown topology + collision detection (Thm 1.3):")
	res, err := radiocast.BroadcastKCD(g, 8, radiocast.Options{Seed: 5})
	if err != nil || !res.Completed {
		log.Fatalf("Thm 1.3: %v %+v", err, res)
	}
	fmt.Printf("k=8: %d rounds including layering, ring GST construction,\n", res.Rounds)
	fmt.Println("and the stride-2 batch pipeline with fountain handoffs.")
}
