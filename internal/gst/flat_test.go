package gst

import (
	"testing"

	"radiocast/internal/graph"
)

// flatGraphs are the workloads the flat snapshot is checked against —
// chosen to exercise deep levels (path), wide levels (grid/clique
// chain), random structure, and multi-root forests.
func flatGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":    graph.Path(97),
		"grid":    graph.Grid(9, 14),
		"cluster": graph.ClusterChain(7, 6),
		"gnp":     graph.GNP(240, 0.03, 5),
		"star":    graph.Star(33),
		"binary":  graph.BinaryTree(127),
	}
}

// TestFlattenMatchesTree checks every Flat array against the
// map-using reference derivations on the Tree.
func TestFlattenMatchesTree(t *testing.T) {
	for name, g := range flatGraphs() {
		tr := Construct(g, 0)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid tree: %v", name, err)
		}
		f := Flatten(tr)
		if f.N() != g.N() {
			t.Fatalf("%s: N=%d want %d", name, f.N(), g.N())
		}
		vdist := VirtualDistances(tr)
		children := tr.Children()
		for v := 0; v < g.N(); v++ {
			id := NodeID(v)
			if f.Parent[v] != tr.Parent[v] || f.Level[v] != tr.Level[v] || f.Rank[v] != tr.Rank[v] {
				t.Fatalf("%s: node %d parent/level/rank (%d,%d,%d) want (%d,%d,%d)",
					name, v, f.Parent[v], f.Level[v], f.Rank[v], tr.Parent[v], tr.Level[v], tr.Rank[v])
			}
			if f.Vdist[v] != vdist[v] {
				t.Fatalf("%s: node %d vdist %d want %d", name, v, f.Vdist[v], vdist[v])
			}
			wantPR := int32(0)
			if p := tr.Parent[v]; p >= 0 {
				wantPR = tr.Rank[p]
			}
			if f.ParentRank[v] != wantPR {
				t.Fatalf("%s: node %d parent rank %d want %d", name, v, f.ParentRank[v], wantPR)
			}
			if got, want := f.SameRankChild[v], SameRankChild(tr, children, id) >= 0; got != want {
				t.Fatalf("%s: node %d same-rank-child %v want %v", name, v, got, want)
			}
			if got, want := f.StretchStart[v], IsStretchStart(tr, id); got != want {
				t.Fatalf("%s: node %d stretch-start %v want %v", name, v, got, want)
			}
			wantRoot := false
			for _, r := range tr.Roots {
				wantRoot = wantRoot || r == id
			}
			if f.Root[v] != wantRoot {
				t.Fatalf("%s: node %d root %v want %v", name, v, f.Root[v], wantRoot)
			}
			if got, want := f.Member(id), tr.InTree(id) && vdist[v] >= 0; got != want {
				t.Fatalf("%s: node %d member %v want %v", name, v, got, want)
			}
		}
	}
}

// TestFlattenMultiRoot covers the forest case (ring decompositions
// root a GST at an entire boundary layer) plus non-member sentinels.
func TestFlattenMultiRoot(t *testing.T) {
	g := graph.Grid(8, 11)
	tr := Construct(g, 0, 10, 80)
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	f := Flatten(tr)
	vdist := VirtualDistances(tr)
	roots := 0
	for v := 0; v < g.N(); v++ {
		if f.Vdist[v] != vdist[v] {
			t.Fatalf("node %d vdist %d want %d", v, f.Vdist[v], vdist[v])
		}
		if f.Root[v] {
			roots++
			if f.Parent[v] != -1 || f.Level[v] != 0 {
				t.Fatalf("root %d has parent %d level %d", v, f.Parent[v], f.Level[v])
			}
		}
	}
	if roots != 3 {
		t.Fatalf("got %d roots, want 3", roots)
	}
}
