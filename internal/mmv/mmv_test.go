package mmv

import (
	"fmt"
	"testing"

	"radiocast/internal/bitvec"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

// runSingle broadcasts one message atop a centralized GST and returns
// (rounds, completed).
func runSingle(g *graph.Graph, noising bool, seed uint64, limit int64) (int64, bool) {
	tree := gst.Construct(g, 0)
	infos := InfoFromTree(tree)
	s := NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	contents := make([]*SingleMessage, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = NewSingleMessage(v == 0, decay.Message{Data: 99})
		nw.SetProtocol(graph.NodeID(v),
			New(s, infos[v], contents[v], noising, rng.New(seed, uint64(v))))
	}
	return nw.RunUntil(limit, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
}

func broadcastFamilies() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(64),
		graph.Grid(8, 8),
		graph.Star(48),
		graph.BinaryTree(63),
		graph.ClusterChain(8, 6),
		graph.GNP(96, 0.06, 7),
	}
}

func TestSingleMessageBroadcast(t *testing.T) {
	for _, g := range broadcastFamilies() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := int64(graph.Eccentricity(g, 0))
			l := int64(sched.LogN(g.N()))
			limit := 200 * (d + l*l)
			rounds, ok := runSingle(g, false, 1, limit)
			if !ok {
				t.Fatalf("incomplete after %d rounds", limit)
			}
			t.Logf("%s: D=%d rounds=%d", g.Name(), d, rounds)
		})
	}
}

func TestSingleMessageBroadcastUnderNoise(t *testing.T) {
	// Lemma 3.3: the schedule is MMV — message-less nodes jam their
	// scheduled slots and the broadcast still completes fast.
	for _, g := range broadcastFamilies() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := int64(graph.Eccentricity(g, 0))
			l := int64(sched.LogN(g.N()))
			limit := 400 * (d + l*l)
			rounds, ok := runSingle(g, true, 2, limit)
			if !ok {
				t.Fatalf("MMV broadcast incomplete after %d rounds", limit)
			}
			t.Logf("%s (noising): D=%d rounds=%d", g.Name(), d, rounds)
		})
	}
}

// fastCollisionTracer asserts Lemma 3.5: a node whose parent shares
// its rank never observes a collision in its parent's fast slot.
type fastCollisionTracer struct {
	s          Schedule
	infos      []NodeInfo
	violations int
}

func (tr *fastCollisionTracer) OnRound(int64, []radio.NodeID) {}
func (tr *fastCollisionTracer) OnDeliver(t int64, to radio.NodeID, out radio.Outcome) {
	if !out.Collision || t%2 != 0 {
		return
	}
	ni := tr.infos[to]
	if ni.Parent >= 0 && ni.ParentRank == ni.Rank && tr.s.FastSlot(t, ni.Level-1, ni.Rank) {
		tr.violations++
	}
}

func TestFastWavesCollisionFree(t *testing.T) {
	// Lemma 3.5 under full noise, with collision detection on so the
	// tracer can see collisions.
	for _, g := range broadcastFamilies() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			tree := gst.Construct(g, 0)
			infos := InfoFromTree(tree)
			s := NewSchedule(g.N())
			tr := &fastCollisionTracer{s: s, infos: infos}
			nw := radio.New(g, radio.Config{CollisionDetection: true, Tracer: tr})
			for v := 0; v < g.N(); v++ {
				nw.SetProtocol(graph.NodeID(v),
					New(s, infos[v], NewSingleMessage(v == 0, decay.Message{}), true, rng.New(5, uint64(v))))
			}
			nw.Run(4000)
			if tr.violations != 0 {
				t.Fatalf("%d fast-wave collisions at stretch children", tr.violations)
			}
		})
	}
}

// runRLNC broadcasts k messages atop a centralized GST (Theorem 1.2).
func runRLNC(t *testing.T, g *graph.Graph, k int, seed uint64, limit int64) (int64, bool) {
	t.Helper()
	const l = 32
	r := rng.New(seed, 0xabc)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	tree := gst.Construct(g, 0)
	infos := InfoFromTree(tree)
	s := NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	contents := make([]*RLNC, g.N())
	for v := 0; v < g.N(); v++ {
		var buf *rlnc.Buffer
		if v == 0 {
			buf = rlnc.NewSourceBuffer(0, msgs, l)
		} else {
			buf = rlnc.NewBuffer(0, k, l)
		}
		contents[v] = NewRLNC(buf, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v),
			New(s, infos[v], contents[v], false, rng.New(seed, 0xdd, uint64(v))))
	}
	rounds, ok := nw.RunUntil(limit, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
	if ok {
		// Every node must decode the exact original messages.
		for v, c := range contents {
			got, dok := c.Buffer().Decode()
			if !dok {
				t.Fatalf("node %d cannot decode after completion", v)
			}
			for i := range msgs {
				if !bitvec.Equal(got[i], msgs[i]) {
					t.Fatalf("node %d message %d corrupted", v, i)
				}
			}
		}
	}
	return rounds, ok
}

func TestMultiMessageKnownTopology(t *testing.T) {
	// Theorem 1.2 shape: complete within c(D + k log n + log^2 n).
	cases := []struct {
		g *graph.Graph
		k int
	}{
		{graph.Grid(8, 8), 4},
		{graph.Grid(8, 8), 16},
		{graph.Path(48), 8},
		{graph.GNP(80, 0.08, 3), 12},
		{graph.ClusterChain(6, 6), 8},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-k%d", c.g.Name(), c.k), func(t *testing.T) {
			d := int64(graph.Eccentricity(c.g, 0))
			l := int64(sched.LogN(c.g.N()))
			limit := 300 * (d + int64(c.k)*l + l*l)
			rounds, ok := runRLNC(t, c.g, c.k, 4, limit)
			if !ok {
				t.Fatalf("k=%d broadcast incomplete after %d rounds", c.k, limit)
			}
			t.Logf("%s k=%d: D=%d rounds=%d", c.g.Name(), c.k, d, rounds)
		})
	}
}

func TestMultiMessageScalesLinearlyInK(t *testing.T) {
	// Rounds should grow roughly linearly in k (slope ~ log n), not
	// quadratically: rounds(16)/rounds(4) well below 16/4 squared.
	g := graph.Grid(6, 6)
	r4, ok4 := runRLNC(t, g, 4, 9, 1<<20)
	r16, ok16 := runRLNC(t, g, 16, 9, 1<<20)
	if !ok4 || !ok16 {
		t.Fatal("broadcasts incomplete")
	}
	ratio := float64(r16) / float64(r4)
	if ratio > 10 {
		t.Fatalf("rounds grew superlinearly in k: ratio %.1f", ratio)
	}
	t.Logf("k=4: %d rounds; k=16: %d rounds; ratio %.2f", r4, r16, ratio)
}

func TestMultiRootBroadcast(t *testing.T) {
	// Ring-style usage: GST rooted at a whole boundary layer.
	g := graph.Grid(8, 8)
	roots := make([]graph.NodeID, 8)
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	tree := gst.Construct(g, roots...)
	infos := InfoFromTree(tree)
	s := NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	contents := make([]*SingleMessage, g.N())
	for v := 0; v < g.N(); v++ {
		isRoot := v < 8
		contents[v] = NewSingleMessage(isRoot, decay.Message{Data: 5})
		nw.SetProtocol(graph.NodeID(v),
			New(s, infos[v], contents[v], false, rng.New(8, uint64(v))))
	}
	rounds, ok := nw.RunUntil(1<<18, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("multi-root broadcast incomplete")
	}
	t.Logf("multi-root: %d rounds", rounds)
}

func TestScheduleSlotProperties(t *testing.T) {
	s := NewSchedule(256)
	// Fast slots are even, slow slots odd.
	for t0 := int64(0); t0 < 4*s.M; t0++ {
		for level := int32(0); level < 5; level++ {
			for rank := int32(1); rank <= 4; rank++ {
				if s.FastSlot(t0, level, rank) && t0%2 != 0 {
					t.Fatal("fast slot on odd round")
				}
			}
			if s.SlowProb(t0, level) > 0 && t0%2 == 0 {
				t.Fatal("slow slot on even round")
			}
		}
	}
	// Distinct ranks at the same level never share a fast slot.
	for r1 := int32(1); r1 <= int32(s.L+1); r1++ {
		for r2 := r1 + 1; r2 <= int32(s.L+1); r2++ {
			for t0 := int64(0); t0 < s.M; t0++ {
				if s.FastSlot(t0, 3, r1) && s.FastSlot(t0, 3, r2) {
					t.Fatalf("ranks %d and %d share fast slot %d", r1, r2, t0)
				}
			}
		}
	}
	// Slow probabilities sweep 1 .. 2^-(L-1).
	seen := map[float64]bool{}
	for t0 := int64(1); t0 < 6*int64(s.L)+1; t0 += 6 {
		seen[s.SlowProb(t0, 0)] = true
	}
	if len(seen) != s.L {
		t.Fatalf("slow sweep covers %d densities, want %d", len(seen), s.L)
	}
}

func TestLevelKeyedAblationStillWorksWithoutNoise(t *testing.T) {
	// Without noise, the level-keyed schedule behaves like [7]'s and
	// must still complete (it only loses the MMV property).
	g := graph.Grid(6, 6)
	tree := gst.Construct(g, 0)
	infos := InfoFromTree(tree)
	s := NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	contents := make([]*SingleMessage, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = NewSingleMessage(v == 0, decay.Message{})
		nw.SetProtocol(graph.NodeID(v),
			NewLevelKeyed(s, infos[v], contents[v], false, rng.New(3, uint64(v))))
	}
	_, ok := nw.RunUntil(1<<18, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("level-keyed broadcast incomplete without noise")
	}
}

func BenchmarkSingleMessageGrid8(b *testing.B) {
	g := graph.Grid(8, 8)
	for i := 0; i < b.N; i++ {
		if _, ok := runSingle(g, false, uint64(i), 1<<20); !ok {
			b.Fatal("incomplete")
		}
	}
}
