// Command radiosim runs one broadcast protocol on one workload graph
// and prints the outcome — a quick way to poke at the library.
//
// Usage:
//
//	radiosim -graph clusterchain -n 256 -protocol cd -seed 1
//	radiosim -graph grid -n 64 -protocol k-known -k 8
//
// Protocols: decay, cr, gst (known-topology single message),
// cd (Theorem 1.1), k-known (Theorem 1.2), k-cd (Theorem 1.3).
// Graphs: path, grid, clusterchain, udg, gnp, star.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"radiocast"
	"radiocast/internal/graph"
)

func buildGraph(kind string, n int, seed uint64) (*radiocast.Graph, error) {
	switch kind {
	case "path":
		return radiocast.NewPath(n), nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return radiocast.NewGrid(side, (n+side-1)/side), nil
	case "clusterchain":
		clique := 8
		chain := n / clique
		if chain < 2 {
			chain = 2
		}
		return radiocast.NewClusterChain(chain, clique), nil
	case "udg":
		return radiocast.NewUnitDisk(n, graph.ConnectivityRadius(n), seed), nil
	case "gnp":
		p := 4 * math.Log(float64(n)) / float64(n)
		return radiocast.NewGNP(n, p, seed), nil
	case "star":
		return graph.Star(n), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func main() {
	kind := flag.String("graph", "clusterchain", "workload: path, grid, clusterchain, udg, gnp, star")
	n := flag.Int("n", 128, "approximate node count")
	protocol := flag.String("protocol", "cd", "protocol: decay, cr, gst, cd, k-known, k-cd")
	k := flag.Int("k", 8, "message count for k-message protocols")
	seed := flag.Uint64("seed", 1, "run seed")
	flag.Parse()

	g, err := buildGraph(*kind, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := graph.Eccentricity(g, 0)
	fmt.Printf("workload %s: n=%d m=%d ecc(source)=%d maxdeg=%d\n",
		g.Name(), g.N(), g.M(), d, g.MaxDegree())

	opts := radiocast.Options{Seed: *seed}
	var res radiocast.Result
	switch *protocol {
	case "decay":
		res, err = radiocast.DecayBroadcast(g, opts)
	case "cr":
		res, err = radiocast.CRBroadcast(g, opts)
	case "gst":
		res, err = radiocast.BroadcastKnownTopology(g, opts)
	case "cd":
		res, err = radiocast.BroadcastCD(g, opts)
	case "k-known":
		res, err = radiocast.BroadcastK(g, *k, opts)
	case "k-cd":
		res, err = radiocast.BroadcastKCD(g, *k, opts)
	default:
		err = fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	status := "completed"
	if !res.Completed {
		status = "INCOMPLETE (round limit)"
	}
	fmt.Printf("%s: %s in %d rounds\n", *protocol, status, res.Rounds)
}
