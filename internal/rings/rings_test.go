package rings

import (
	"fmt"
	"testing"

	"radiocast/internal/bitvec"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
)

// runSingle executes the full Theorem 1.1 stack.
func runSingle(t *testing.T, g *graph.Graph, cfg Config, seed uint64) ([]*Protocol, int64, bool) {
	t.Helper()
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = New(cfg, graph.NodeID(v), v == 0, nil, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, ok := nw.RunUntil(cfg.TotalRounds(), func() bool {
		for _, p := range protos {
			if !p.Has() {
				return false
			}
		}
		return true
	})
	return protos, rounds, ok
}

func TestTheorem11SingleRing(t *testing.T) {
	// Small diameter: one ring, the whole pipeline still runs.
	g := graph.GNP(40, 0.15, 3)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 0, 1)
	if cfg.Rings() < 1 {
		t.Fatal("no rings")
	}
	_, rounds, ok := runSingle(t, g, cfg, 1)
	if !ok {
		t.Fatalf("broadcast incomplete within %d rounds", cfg.TotalRounds())
	}
	t.Logf("n=%d D=%d rings=%d rounds=%d (wave=%d build=%d spread=%d)",
		g.N(), d, cfg.Rings(), rounds, cfg.WaveRounds(), cfg.BuildRounds(), cfg.SpreadRounds())
}

func TestTheorem11MultiRing(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-36", graph.Path(36)},
		{"grid-4x16", graph.Grid(4, 16)},
		{"clusterchain-8x4", graph.ClusterChain(8, 4)},
		{"caterpillar-16x1", graph.Caterpillar(16, 1)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d := graph.Eccentricity(c.g, 0)
			cfg := DefaultConfig(c.g.N(), d, 0, 1)
			cfg.W = 4 // force several rings
			cfg.GST.DBound = cfg.W - 1
			if cfg.Rings() < 3 {
				t.Fatalf("want >=3 rings, got %d (D=%d)", cfg.Rings(), d)
			}
			protos, rounds, ok := runSingle(t, c.g, cfg, 2)
			if !ok {
				missing := 0
				for _, p := range protos {
					if !p.Has() {
						missing++
					}
				}
				t.Fatalf("broadcast incomplete: %d/%d nodes missing after %d rounds",
					missing, c.g.N(), cfg.TotalRounds())
			}
			t.Logf("%s: D=%d W=%d rings=%d rounds=%d", c.name, d, cfg.W, cfg.Rings(), rounds)
		})
	}
}

func TestTheorem11MultiRingPipelinedBoundaries(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-36", graph.Path(36)},
		{"grid-4x16", graph.Grid(4, 16)},
		{"clusterchain-8x4", graph.ClusterChain(8, 4)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d := graph.Eccentricity(c.g, 0)
			cfg := DefaultConfig(c.g.N(), d, 0, 1)
			cfg.W = 5 // wide enough that the pipeline shortens the build
			cfg.GST.DBound = cfg.W - 1
			seq := cfg.BuildRounds()
			cfg.SetPipelined(true)
			if !cfg.Pipelined() {
				t.Fatalf("pipelining did not engage at W=%d", cfg.W)
			}
			if cfg.BuildRounds() >= seq {
				t.Fatalf("pipelined build %d rounds, sequential %d", cfg.BuildRounds(), seq)
			}
			protos, rounds, ok := runSingle(t, c.g, cfg, 2)
			if !ok {
				missing := 0
				for _, p := range protos {
					if !p.Has() {
						missing++
					}
				}
				t.Fatalf("broadcast incomplete: %d/%d nodes missing after %d rounds",
					missing, c.g.N(), cfg.TotalRounds())
			}
			t.Logf("%s: D=%d W=%d rings=%d rounds=%d (build %d vs seq %d)",
				c.name, d, cfg.W, cfg.Rings(), rounds, cfg.BuildRounds(), seq)
		})
	}
}

func TestSetPipelinedKeepsNarrowRingsSequential(t *testing.T) {
	// At the minimum width W=3 the per-ring diameter bound is 2 and the
	// skew-3 wavefront is longer than the lockstep — SetPipelined must
	// refuse rather than regress the build.
	cfg := DefaultConfig(64, 9, 0, 1)
	if cfg.W != 3 {
		t.Fatalf("expected default W=3, got %d", cfg.W)
	}
	cfg.SetPipelined(true)
	if cfg.Pipelined() {
		t.Fatal("pipelining engaged on W=3 rings where it lengthens the build")
	}
}

func TestTheorem11LayersMatchBFS(t *testing.T) {
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 0, 1)
	cfg.W = 4
	cfg.GST.DBound = 3
	protos, _, ok := runSingle(t, g, cfg, 5)
	if !ok {
		t.Fatal("incomplete")
	}
	bfs := graph.BFS(g, 0)
	for v, p := range protos {
		if p.Layer() != bfs.Dist[v] {
			t.Fatalf("node %d layer %d, want %d", v, p.Layer(), bfs.Dist[v])
		}
	}
}

// runMulti executes the full Theorem 1.3 stack and verifies decoding.
func runMulti(t *testing.T, g *graph.Graph, k int, cfg Config, seed uint64) (int64, bool) {
	t.Helper()
	r := rng.New(seed, 0xfeed)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(cfg.PayloadBits, r.Uint64)
	}
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		var m []rlnc.Message
		if v == 0 {
			m = msgs
		}
		protos[v] = New(cfg, graph.NodeID(v), v == 0, m, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, ok := nw.RunUntil(cfg.TotalRounds(), func() bool {
		for _, p := range protos {
			if !p.Store().CanDecodeAll() {
				return false
			}
		}
		return true
	})
	if ok {
		for v, p := range protos {
			got, dok := p.Store().DecodeAll()
			if !dok {
				t.Fatalf("node %d cannot decode", v)
			}
			for i := range msgs {
				if !bitvec.Equal(got[i], msgs[i]) {
					t.Fatalf("node %d message %d corrupted", v, i)
				}
			}
		}
	}
	return rounds, ok
}

func TestTheorem13SingleRing(t *testing.T) {
	g := graph.GNP(36, 0.18, 9)
	d := graph.Eccentricity(g, 0)
	const k = 8
	cfg := DefaultConfig(g.N(), d, k, 1)
	rounds, ok := runMulti(t, g, k, cfg, 3)
	if !ok {
		t.Fatalf("k-message broadcast incomplete within %d rounds", cfg.TotalRounds())
	}
	t.Logf("n=%d D=%d k=%d batches=%d rounds=%d", g.N(), d, k, cfg.Batches(), rounds)
}

func TestTheorem13MultiRingPipeline(t *testing.T) {
	g := graph.Grid(4, 12)
	d := graph.Eccentricity(g, 0)
	const k = 10
	cfg := DefaultConfig(g.N(), d, k, 1)
	cfg.W = 4
	cfg.GST.DBound = 3
	if cfg.Rings() < 3 || cfg.Batches() < 2 {
		t.Fatalf("want a real pipeline: rings=%d batches=%d", cfg.Rings(), cfg.Batches())
	}
	rounds, ok := runMulti(t, g, k, cfg, 4)
	if !ok {
		t.Fatalf("pipelined broadcast incomplete within %d rounds", cfg.TotalRounds())
	}
	t.Logf("D=%d W=%d rings=%d batches=%d epochs=%d rounds=%d",
		d, cfg.W, cfg.Rings(), cfg.Batches(), cfg.Epochs(), rounds)
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig(1024, 100, 0, 1)
	if cfg.W < 3 {
		t.Fatalf("W = %d", cfg.W)
	}
	if cfg.Rings() != (100+cfg.W)/cfg.W {
		t.Fatal("ring count wrong")
	}
	for layer := int32(0); layer <= 100; layer++ {
		ring := cfg.RingOf(layer)
		if ring < 0 || ring >= cfg.Rings() {
			t.Fatalf("layer %d -> ring %d out of range", layer, ring)
		}
		if cfg.LocalLevel(layer) != layer%int32(cfg.W) {
			t.Fatal("local level wrong")
		}
	}
	// Locate covers the whole schedule without gaps.
	var seen [4]bool
	for _, r := range []int64{0, cfg.WaveRounds(), cfg.WaveRounds() + cfg.BuildRounds(),
		cfg.TotalRounds() - 1} {
		switch cfg.Locate(r).Seg {
		case SegWave:
			seen[0] = true
		case SegBuild:
			seen[1] = true
		case SegSpread:
			seen[2] = true
		case SegDone:
			seen[3] = true
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("segments missing: %v", seen)
	}
}

func TestStride2NeverActivatesAdjacentRings(t *testing.T) {
	cfg := DefaultConfig(256, 40, 16, 1)
	cfg.W = 4
	p1 := &Protocol{cfg: cfg, ring: 3}
	p2 := &Protocol{cfg: cfg, ring: 4}
	for e := 0; e < cfg.Epochs(); e++ {
		if p1.activeBatch(e) >= 0 && p2.activeBatch(e) >= 0 {
			t.Fatalf("adjacent rings 3 and 4 both active in epoch %d", e)
		}
	}
}

func TestBatchDeliverySchedule(t *testing.T) {
	// Ring j must see batch b exactly in epoch j + 2b.
	cfg := DefaultConfig(256, 40, 16, 1)
	cfg.W = 4
	p := &Protocol{cfg: cfg, ring: 2}
	for b := 0; b < cfg.Batches(); b++ {
		e := 2 + 2*b
		if got := p.activeBatch(e); got != b {
			t.Fatalf("epoch %d: batch %d, want %d", e, got, b)
		}
	}
}

func BenchmarkTheorem11Path36(b *testing.B) {
	g := graph.Path(36)
	d := graph.Eccentricity(g, 0)
	cfg := DefaultConfig(g.N(), d, 0, 1)
	cfg.W = 4
	cfg.GST.DBound = 3
	for i := 0; i < b.N; i++ {
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		protos := make([]*Protocol, g.N())
		for v := 0; v < g.N(); v++ {
			protos[v] = New(cfg, graph.NodeID(v), v == 0, nil, rng.New(uint64(i), uint64(v)))
			nw.SetProtocol(graph.NodeID(v), protos[v])
		}
		if _, ok := nw.RunUntil(cfg.TotalRounds(), func() bool {
			for _, p := range protos {
				if !p.Has() {
					return false
				}
			}
			return true
		}); !ok {
			b.Fatal(fmt.Sprintf("iteration %d incomplete", i))
		}
	}
}
