package harness

import (
	"fmt"

	"radiocast/internal/assign"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/gstdist"
	"radiocast/internal/radio"
	"radiocast/internal/recruit"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// Experiment couples an id with a cell-plan compiler. Seeds scales the
// repetition count; Quick trims the sweep for bench/CI runs. The plan
// is executed by an exp.Runner (sequential or parallel — the assembled
// table is identical either way).
type Experiment struct {
	ID    string
	Title string
	Plan  func(seeds int, quick bool) *exp.Plan
}

// Run compiles and executes the experiment on the calling goroutine —
// the historical single-core path, used by tests and benchmarks.
// cmd/radiobench drives plans through a shared exp.Runner instead.
func (e Experiment) Run(seeds int, quick bool) *stats.Table {
	return runPlan(e.Plan(seeds, quick))
}

func runPlan(p *exp.Plan) *stats.Table {
	tb, _ := (&exp.Runner{Parallelism: 1}).RunTable(p)
	return tb
}

// All returns every experiment in EXPERIMENTS.md order, with the
// default (CI-shaped) scale-sweep configuration.
func All() []Experiment { return AllWithScale(DefaultScaleConfig()) }

// AllWithScale returns every experiment in EXPERIMENTS.md order,
// threading sc into the E19/E20 scale sweeps (cmd/radiobench builds sc
// from -scalemaxn/-scaleworkers).
func AllWithScale(sc ScaleConfig) []Experiment {
	return []Experiment{
		{"E1", "Single-message broadcast: Decay vs CR vs GST (Thm 1.1 regime)", E1Plan},
		{"E2", "Additive diameter dependence (rounds vs D)", E2Plan},
		{"E3", "Distributed GST construction (Thm 2.1)", E3Plan},
		{"E4", "Recruiting protocol (Lemma 2.3)", E4Plan},
		{"E5", "Assignment shrinkage per epoch budget (Lemma 2.4)", E5Plan},
		{"E6", "Pipelined even/odd boundary construction (Thm 2.1, §2.2.4)", E6Plan},
		{"E7", "k-message broadcast, known topology (Thm 1.2)", E7Plan},
		{"E8", "k-message broadcast, unknown topology + CD (Thm 1.3)", E8Plan},
		{"E9", "Decay is MMV (Lemma 3.2)", E9Plan},
		{"E10", "MMV GST schedule under noise (Lemma 3.3)", E10Plan},
		{"E11", "Decay phase progress (Lemma 2.2)", E11Plan},
		{"E12", "RLNC infection and decoding (Def 3.8 / Prop 3.9)", E12Plan},
		{"E13", "Robustness: loss-rate sweep (Decay vs CR vs Thm 1.1 vs Thm 1.3)", E13Plan},
		{"E14", "Robustness: jammer-budget sweep (oblivious vs adaptive)", E14Plan},
		{"E15", "Robustness: unreliable collision detection sweep", E15Plan},
		{"E16", "Robustness: radio-fault sweep (late wakeup / crash)", E16Plan},
		{"E17", "Adaptive retry: loss sweep with re-layering (Thm 1.1/1.3)", E17Plan},
		{"E18", "Adaptive retry: late-wakeup re-layering (Thm 1.1)", E18Plan},
		{"E19", "Million-node engine: dense-engine scale sweep (SoA decay/cr/wave)",
			func(seeds int, quick bool) *exp.Plan { return E19Plan(sc, seeds, quick) }},
		{"E20", "Million-node robustness: dense-engine erasure sweep (gnp)",
			func(seeds int, quick bool) *exp.Plan { return E20Plan(sc, seeds, quick) }},
		{"E21", "Million-node structured broadcast: dense GST sweep (flat tree + MMV schedule)",
			func(seeds int, quick bool) *exp.Plan { return E21Plan(sc, seeds, quick) }},
		{"E22", "Geometric scale sweep: dense catalog on unit-disk layouts (udg/cluster/qudg)",
			func(seeds int, quick bool) *exp.Plan { return E22Plan(sc, seeds, quick) }},
		{"E23", "Mobility/churn: oneshot vs adaptive wave coverage across re-layout periods", E23Plan},
		{"A1", "Ablation: virtual-distance vs level-keyed slow slots", A1Plan},
		{"A2", "Ablation: RLNC vs store-and-forward routing", A2Plan},
		{"A3", "Ablation: ring width in Theorem 1.1", A3Plan},
	}
}

// clusterChain builds the headline workload: D ~ chain, Δ ~ clique.
func clusterChain(chain int) *graph.Graph { return graph.ClusterChain(chain, 8) }

// broadcastLimit is the default per-run round cap for the open-ended
// broadcast runners (the fixed-schedule protocols carry their own
// budgets).
const broadcastLimit = 1 << 22

// baselineCost estimates a baseline broadcast cell's work: n nodes
// polled for roughly O(D log n + log^2 n) rounds. Only the relative
// order against the budgeted theorem cells matters for scheduling.
func baselineCost(g *graph.Graph, d int) int64 {
	l := int64(sched.LogN(g.N()))
	return int64(g.N()) * (int64(d)*l + l*l)
}

// budgetCost estimates a fixed-schedule cell's work: n nodes over its
// full round budget.
func budgetCost(n int, budget int64) int64 { return int64(n) * budget }

// singleCell compiles one baseline broadcast run (decay, cr, or gst)
// into a cell. The graph is shared read-only across cells.
func singleCell(id string, g *graph.Graph, d int, proto string, seed uint64, config string) exp.Cell {
	return exp.Cell{
		Key:        exp.Key{Experiment: id, Config: config, Seed: seed},
		RoundLimit: broadcastLimit,
		Cost:       baselineCost(g, d),
		Run: func(limit int64) exp.Result {
			switch proto {
			case "decay":
				return exp.Rounds(RunDecay(g, seed, limit))
			case "cr":
				return exp.Rounds(RunCR(g, d, seed, limit))
			default: // "gst"
				return exp.Rounds(RunGSTSingle(g, false, seed, limit))
			}
		},
	}
}

// E1Plan is the headline comparison. The "gst" column is the
// broadcast-phase cost with structure in place (the amortized regime
// the paper motivates: CD replaces topology knowledge); th1.1 total
// includes layering + distributed construction.
func E1Plan(seeds int, quick bool) *exp.Plan {
	chains := []int{8, 16, 32, 64}
	if quick {
		chains = []int{8, 16}
	}
	protos := []string{"decay", "cr", "gst"}
	p := &exp.Plan{ID: "E1", Title: "Single-message broadcast: Decay vs CR vs GST (Thm 1.1 regime)"}
	type chainCase struct {
		chain, d int
		g        *graph.Graph
	}
	var cases []chainCase
	for _, chain := range chains {
		g := clusterChain(chain)
		d := graph.Eccentricity(g, 0)
		cases = append(cases, chainCase{chain, d, g})
		for _, proto := range protos {
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, singleCell("E1", g, d, proto, uint64(s),
					fmt.Sprintf("chain=%d/%s", chain, proto)))
			}
		}
		p.Cells = append(p.Cells, exp.Cell{
			Key:  exp.Key{Experiment: "E1", Config: fmt.Sprintf("chain=%d/th11", chain), Seed: 1},
			Cost: budgetCost(g.N(), rings.DefaultConfig(g.N(), d, 0, 1).TotalRounds()),
			Run: func(int64) exp.Result {
				res := RunTheorem11(g, d, 1, 1)
				return exp.Result{Rounds: res.Rounds, Completed: res.Completed, Payload: res}
			},
		})
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E1: single-message broadcast rounds (cluster chains, clique 8)",
			Comment: "paper: Thm 1.1 O(D+polylog) beats O(D log(n/D)+log^2 n) baselines as D grows",
			Header:  []string{"n", "D", "decay", "cr", "gst-bcast", "th11-total", "th11-build", "ok"},
		}
		for _, c := range cases {
			okAll := true
			means := map[string]float64{}
			for _, proto := range protos {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E1", Config: fmt.Sprintf("chain=%d/%s", c.chain, proto), Seed: uint64(s)}]
					if r.Completed {
						rs = append(rs, float64(r.Rounds))
					} else {
						okAll = false
					}
				}
				means[proto] = stats.Summarize(rs, 0, 0).Mean
			}
			tr := idx[exp.Key{Experiment: "E1", Config: fmt.Sprintf("chain=%d/th11", c.chain), Seed: 1}]
			th11, _ := tr.Payload.(Theorem11Result)
			okAll = okAll && tr.Completed
			t.AddRow(
				fmt.Sprint(c.g.N()), fmt.Sprint(c.d),
				stats.F(means["decay"]), stats.F(means["cr"]), stats.F(means["gst"]),
				fmt.Sprint(th11.Rounds), fmt.Sprint(th11.BuildRounds), fmt.Sprint(okAll),
			)
		}
		return t
	}
	return p
}

// E1SingleMessage runs E1 sequentially (compat wrapper).
func E1SingleMessage(seeds int, quick bool) *stats.Table { return runPlan(E1Plan(seeds, quick)) }

// E2Plan fits rounds against D for each protocol; the GST broadcast
// must have a small constant slope (additive D), the baselines a slope
// proportional to log.
func E2Plan(seeds int, quick bool) *exp.Plan {
	chains := []int{8, 16, 24, 32, 48, 64}
	if quick {
		chains = []int{8, 16, 24}
	}
	protos := []string{"decay", "cr", "gst"}
	p := &exp.Plan{ID: "E2", Title: "Additive diameter dependence (rounds vs D)"}
	ds := make(map[int]float64, len(chains))
	for _, chain := range chains {
		g := clusterChain(chain)
		d := graph.Eccentricity(g, 0)
		ds[chain] = float64(d)
		for _, proto := range protos {
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, singleCell("E2", g, d, proto, uint64(s),
					fmt.Sprintf("chain=%d/%s", chain, proto)))
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		means := map[string][]float64{}
		var xs []float64
		for _, chain := range chains {
			xs = append(xs, ds[chain])
			for _, proto := range protos {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[exp.Key{Experiment: "E2", Config: fmt.Sprintf("chain=%d/%s", chain, proto), Seed: uint64(s)}]
					if r.Completed {
						rs = append(rs, float64(r.Rounds))
					}
				}
				means[proto] = append(means[proto], stats.Summarize(rs, 0, 0).Mean)
			}
		}
		fd := stats.LinearFit(xs, means["decay"])
		fc := stats.LinearFit(xs, means["cr"])
		fg := stats.LinearFit(xs, means["gst"])
		t := &stats.Table{
			Title:   "E2: rounds-vs-D linear fits (cluster chains)",
			Comment: "paper: GST broadcast slope is O(1) per layer; Decay/CR slopes carry a log factor",
			Header:  []string{"protocol", "slope rounds/D", "intercept", "R2"},
		}
		t.AddRow("decay", stats.F(fd.Slope), stats.F(fd.Intercept), stats.F(fd.R2))
		t.AddRow("cr", stats.F(fc.Slope), stats.F(fc.Intercept), stats.F(fc.R2))
		t.AddRow("gst-bcast", stats.F(fg.Slope), stats.F(fg.Intercept), stats.F(fg.R2))
		return t
	}
	return p
}

// E2DiameterScaling runs E2 sequentially (compat wrapper).
func E2DiameterScaling(seeds int, quick bool) *stats.Table { return runPlan(E2Plan(seeds, quick)) }

// E3Plan measures the distributed construction and validates its
// output.
func E3Plan(seeds int, quick bool) *exp.Plan {
	gs := []*graph.Graph{
		graph.Grid(4, 8),
		graph.GNP(48, 0.12, 3),
		graph.ClusterChain(4, 6),
	}
	if !quick {
		gs = append(gs, graph.Grid(6, 10), graph.GNP(96, 0.07, 4))
	}
	p := &exp.Plan{ID: "E3", Title: "Distributed GST construction (Thm 2.1)"}
	for _, g := range gs {
		d := graph.Eccentricity(g, 0)
		for _, c := range []int{1, 2} {
			cfg := gstdist.DefaultConfig(g.N(), d, c, gstdist.LayerCD, false)
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, exp.Cell{
					Key:  exp.Key{Experiment: "E3", Config: fmt.Sprintf("graph=%s/c=%d", g.Name(), c), Seed: uint64(s)},
					Cost: budgetCost(g.N(), cfg.TotalRounds()),
					Run: func(int64) exp.Result {
						valid := runConstructionValid(g, cfg, uint64(s))
						res := exp.Result{Rounds: cfg.TotalRounds(), Completed: valid}
						if valid {
							res.Value = 1
						}
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E3: distributed GST construction (Thm 2.1)",
			Comment: "rounds are the fixed O(D log^5 n) schedule (sequential boundaries); valid = Tree.Validate;\n" +
				"c is the global Θ-constant — w.h.p. correctness needs c=2 at these sizes, exactly the constants-vs-\n" +
				"failure-probability trade-off the paper's Θ(·) notation hides",
			Header: []string{"graph", "n", "D", "c", "rounds", "rounds/(D+1)L^5", "valid"},
		}
		for _, g := range gs {
			d := graph.Eccentricity(g, 0)
			for _, c := range []int{1, 2} {
				cfg := gstdist.DefaultConfig(g.N(), d, c, gstdist.LayerCD, false)
				valid := 0
				for s := 0; s < seeds; s++ {
					if idx[exp.Key{Experiment: "E3", Config: fmt.Sprintf("graph=%s/c=%d", g.Name(), c), Seed: uint64(s)}].Completed {
						valid++
					}
				}
				l := float64(sched.LogN(g.N()))
				norm := float64(cfg.TotalRounds()) / (float64(d+1) * l * l * l * l * l)
				t.AddRow(g.Name(), fmt.Sprint(g.N()), fmt.Sprint(d), fmt.Sprint(c),
					fmt.Sprint(cfg.TotalRounds()), stats.F(norm),
					fmt.Sprintf("%d/%d", valid, seeds))
			}
		}
		return t
	}
	return p
}

// E3GSTConstruction runs E3 sequentially (compat wrapper).
func E3GSTConstruction(seeds int, quick bool) *stats.Table { return runPlan(E3Plan(seeds, quick)) }

func runConstructionValid(g *graph.Graph, cfg gstdist.Config, seed uint64) bool {
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*gstdist.Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = gstdist.New(cfg, graph.NodeID(v), v == 0, 0, rng.New(seed, 0x31, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	nw.Run(cfg.TotalRounds())
	tree := gst.NewTree(g, []graph.NodeID{0})
	for v := 0; v < g.N(); v++ {
		res := protos[v].Result()
		tree.Level[v] = res.Level
		tree.Parent[v] = res.Parent
		tree.Rank[v] = res.Rank
	}
	return tree.Validate() == nil
}

// E4Plan verifies Lemma 2.3's Θ(log^3 n) round budget.
func E4Plan(seeds int, quick bool) *exp.Plan {
	sizes := []int{16, 32, 64}
	if !quick {
		sizes = append(sizes, 128)
	}
	p := &exp.Plan{ID: "E4", Title: "Recruiting protocol (Lemma 2.3)"}
	for _, half := range sizes {
		params := recruit.DefaultParams(2*half, 2)
		for s := 0; s < seeds; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key: exp.Key{Experiment: "E4", Config: fmt.Sprintf("half=%d", half), Seed: uint64(s)},
				Run: func(int64) exp.Result {
					ok := recruitingRun(half, params, uint64(s))
					res := exp.Result{Rounds: params.Rounds(), Completed: ok}
					if ok {
						res.Value = 1
					}
					return res
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E4: recruiting protocol (Lemma 2.3)",
			Comment: "fixed Θ(log^3 n) schedule; success = properties (a),(b),(c) all hold",
			Header:  []string{"nodes/side", "rounds", "rounds/log^3 n", "success"},
		}
		for _, half := range sizes {
			params := recruit.DefaultParams(2*half, 2)
			success := 0
			for s := 0; s < seeds; s++ {
				if idx[exp.Key{Experiment: "E4", Config: fmt.Sprintf("half=%d", half), Seed: uint64(s)}].Completed {
					success++
				}
			}
			l := float64(sched.LogN(2 * half))
			t.AddRow(fmt.Sprint(half), fmt.Sprint(params.Rounds()),
				stats.F(float64(params.Rounds())/(l*l*l)),
				fmt.Sprintf("%d/%d", success, seeds))
		}
		return t
	}
	return p
}

// E4Recruiting runs E4 sequentially (compat wrapper).
func E4Recruiting(seeds int, quick bool) *stats.Table { return runPlan(E4Plan(seeds, quick)) }

func recruitingRun(half int, params recruit.Params, seed uint64) bool {
	r := rng.New(seed, 0x41)
	b := graph.NewBuilder(2 * half)
	for u := 0; u < half; u++ {
		b.AddEdge(graph.NodeID(r.Intn(half)), graph.NodeID(half+u))
		for v := 0; v < half; v++ {
			if r.Float64() < 2.0/float64(half) {
				b.AddEdge(graph.NodeID(v), graph.NodeID(half+u))
			}
		}
	}
	g := b.Build()
	nw := radio.New(g, radio.Config{})
	reds := make([]*recruit.Red, half)
	blues := make([]*recruit.Blue, half)
	for v := 0; v < half; v++ {
		reds[v] = recruit.NewRed(params, graph.NodeID(v), rng.New(seed, 0x42, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &recruit.RedProtocol{R: reds[v]})
	}
	for u := 0; u < half; u++ {
		blues[u] = recruit.NewBlue(params, graph.NodeID(half+u), rng.New(seed, 0x43, uint64(u)))
		nw.SetProtocol(graph.NodeID(half+u), &recruit.BlueProtocol{B: blues[u]})
	}
	nw.Run(params.Rounds())
	children := map[radio.NodeID]int{}
	for _, bl := range blues {
		if !bl.Recruited() {
			return false
		}
		children[bl.Parent()]++
	}
	for v, rd := range reds {
		want := recruit.ClassZero
		switch children[graph.NodeID(v)] {
		case 0:
		case 1:
			want = recruit.ClassOne
		default:
			want = recruit.ClassMany
		}
		if rd.Class() != want {
			return false
		}
	}
	for _, bl := range blues {
		many := children[bl.Parent()] >= 2
		if many != (bl.ParentClass() == recruit.ClassMany) {
			return false
		}
	}
	return true
}

// shrinkageCase is the shared loner-free worst case of E5: a complete
// bipartite boundary (every blue has many active reds), so only the
// brisk/lazy epoch machinery of Lemma 2.4 can make progress. Levels
// and ranks are synthetic: reds at level 0, blues at level 1, all
// blues rank 1. All fields are read-only after construction.
type shrinkageCase struct {
	g    *graph.Graph
	dist []int32
	tree *gst.Tree
}

func newShrinkageCase() *shrinkageCase {
	const nRed, nBlue = 6, 24
	b := graph.NewBuilder(nRed + nBlue)
	for v := 0; v < nRed; v++ {
		for u := 0; u < nBlue; u++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID(nRed+u))
		}
	}
	g := b.Build()
	dist := make([]int32, g.N())
	tree := gst.NewTree(g, []graph.NodeID{0})
	for v := 0; v < g.N(); v++ {
		if v >= nRed {
			dist[v] = 1
		}
		tree.Rank[v] = 1
	}
	return &shrinkageCase{g: g, dist: dist, tree: tree}
}

// shrinkageCount carries one cell's (miss, total) pair to Assemble.
type shrinkageCount struct{ miss, total int }

// E5Plan varies the per-rank epoch budget and reports the unassigned
// fraction — Lemma 2.4's geometric shrinkage means the failure
// fraction collapses as epochs grow.
func E5Plan(seeds int, quick bool) *exp.Plan {
	budgets := []int{1, 2, 4, 8}
	sc := newShrinkageCase()
	repeats := 4 * seeds
	p := &exp.Plan{ID: "E5", Title: "Assignment shrinkage per epoch budget (Lemma 2.4)"}
	for _, budget := range budgets {
		for s := 0; s < repeats; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key: exp.Key{Experiment: "E5", Config: fmt.Sprintf("epochs=%d", budget), Seed: uint64(s)},
				Run: func(int64) exp.Result {
					miss, total := assignmentMisses(sc.g, sc.dist, sc.tree, budget, uint64(s))
					return exp.Result{
						Completed: true,
						Value:     float64(miss) / float64(maxInt(total, 1)),
						Payload:   shrinkageCount{miss, total},
					}
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E5: blues left unassigned vs epoch budget (Lemma 2.4)",
			Comment: "loner-free complete-bipartite boundary; per-rank epochs = budget (not Θ(log n)); unassigned fraction must collapse",
			Header:  []string{"epochs/rank", "unassigned frac", "runs"},
		}
		for _, budget := range budgets {
			total, miss := 0, 0
			for s := 0; s < repeats; s++ {
				c, _ := idx[exp.Key{Experiment: "E5", Config: fmt.Sprintf("epochs=%d", budget), Seed: uint64(s)}].Payload.(shrinkageCount)
				miss += c.miss
				total += c.total
			}
			frac := float64(miss) / float64(maxInt(total, 1))
			t.AddRow(fmt.Sprint(budget), stats.F(frac), fmt.Sprint(repeats))
		}
		return t
	}
	_ = quick
	return p
}

// E5AssignmentShrinkage runs E5 sequentially (compat wrapper).
func E5AssignmentShrinkage(seeds int, quick bool) *stats.Table { return runPlan(E5Plan(seeds, quick)) }

// assignmentMisses runs one boundary (levels 0/1 of g) with an exact
// per-rank epoch budget and counts unassigned blues.
func assignmentMisses(g *graph.Graph, dist []int32, tree *gst.Tree, epochs int, seed uint64) (miss, total int) {
	params := assign.DefaultParams(g.N(), 1)
	params.EpochsOverride = epochs
	keep := make([]graph.NodeID, 0)
	for v := 0; v < g.N(); v++ {
		if dist[v] <= 1 {
			keep = append(keep, graph.NodeID(v))
		}
	}
	idx := make(map[graph.NodeID]graph.NodeID, len(keep))
	for i, v := range keep {
		idx[v] = graph.NodeID(i)
	}
	b := graph.NewBuilder(len(keep))
	isRed := make([]bool, len(keep))
	blueRank := make([]int32, len(keep))
	for _, v := range keep {
		for _, u := range g.Neighbors(v) {
			if lu, ok := idx[u]; ok {
				b.AddEdge(idx[v], lu)
			}
		}
		if dist[v] == 0 {
			isRed[idx[v]] = true
		} else {
			blueRank[idx[v]] = tree.Rank[v]
		}
	}
	sub := b.Build()
	nodes := make([]*assign.Node, sub.N())
	nw := radio.New(sub, radio.Config{})
	for v := 0; v < sub.N(); v++ {
		role := assign.Blue
		if isRed[v] {
			role = assign.Red
		}
		nodes[v] = assign.NewNode(params, graph.NodeID(v), role, blueRank[v], rng.New(seed, 0x51, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), &assign.BoundaryProtocol{N: nodes[v]})
	}
	nw.Run(params.BoundaryRounds())
	for v, nd := range nodes {
		if isRed[v] {
			continue
		}
		total++
		if !nd.Assigned() {
			miss++
		}
	}
	return miss, total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
