package graph

import (
	"fmt"
	"testing"

	"radiocast/internal/rng"
)

// sameGraph compares the full CSR representation — offsets, edges, and
// name — which is the byte-identity the streaming-CSR contract claims.
func sameGraph(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("%s: n = %d, want %d", label, got.n, want.n)
	}
	if got.name != want.name {
		t.Fatalf("%s: name = %q, want %q", label, got.name, want.name)
	}
	if len(got.offsets) != len(want.offsets) {
		t.Fatalf("%s: offsets len %d, want %d", label, len(got.offsets), len(want.offsets))
	}
	for i := range got.offsets {
		if got.offsets[i] != want.offsets[i] {
			t.Fatalf("%s: offsets[%d] = %d, want %d", label, i, got.offsets[i], want.offsets[i])
		}
	}
	if len(got.edges) != len(want.edges) {
		t.Fatalf("%s: edges len %d, want %d", label, len(got.edges), len(want.edges))
	}
	for i := range got.edges {
		if got.edges[i] != want.edges[i] {
			t.Fatalf("%s: edges[%d] = %d, want %d", label, i, got.edges[i], want.edges[i])
		}
	}
}

// buildViaBuilder feeds a stream's emissions through the legacy Builder
// — the reference semantics FromStream must reproduce.
func buildViaBuilder(s EdgeStream) *Graph {
	b := NewBuilder(s.N())
	b.SetName(s.Name())
	s.Edges(func(u, v NodeID) { b.AddEdge(u, v) })
	return b.Build()
}

// TestStreamMatchesLegacyGenerators pins that the deterministic
// streaming generators are byte-identical to their Builder-based
// counterparts, including names — callers can swap one for the other
// without perturbing any experiment.
func TestStreamMatchesLegacyGenerators(t *testing.T) {
	cases := []struct {
		stream EdgeStream
		legacy *Graph
	}{
		{StreamPath(0), Path(0)},
		{StreamPath(1), Path(1)},
		{StreamPath(2), Path(2)},
		{StreamPath(257), Path(257)},
		{StreamGrid(1, 1), Grid(1, 1)},
		{StreamGrid(1, 9), Grid(1, 9)},
		{StreamGrid(7, 1), Grid(7, 1)},
		{StreamGrid(13, 17), Grid(13, 17)},
		{StreamClusterChain(1, 1), ClusterChain(1, 1)},
		{StreamClusterChain(1, 8), ClusterChain(1, 8)},
		{StreamClusterChain(6, 1), ClusterChain(6, 1)},
		{StreamClusterChain(9, 7), ClusterChain(9, 7)},
	}
	for _, c := range cases {
		sameGraph(t, FromStream(c.stream), c.legacy, c.legacy.Name())
	}
}

// randomStream emits a fixed pseudo-random edge sequence that includes
// self-loops and duplicates — the adversarial input for the assembly
// path (Builder drops both; FromStream must match).
type randomStream struct {
	n, m int
	seed uint64
}

func (s randomStream) N() int       { return s.n }
func (s randomStream) Name() string { return fmt.Sprintf("rand-%d-%d", s.n, s.m) }

func (s randomStream) Edges(emit func(u, v NodeID)) {
	r := rng.New(s.seed, 0x7465737473) // "tests"
	for i := 0; i < s.m; i++ {
		emit(NodeID(r.Intn(s.n)), NodeID(r.Intn(s.n)))
	}
}

// TestFromStreamMatchesBuilder is the streaming-CSR contract property
// test: over a randomized small/medium sweep — including streams with
// self-loops and heavy duplication, plus the randomized generators
// (GNP with its skip sampler, the stub-pairing regular sampler) —
// FromStream produces a CSR byte-identical to feeding the identical
// emission sequence through the legacy Builder.
func TestFromStreamMatchesBuilder(t *testing.T) {
	var streams []EdgeStream
	for seed := uint64(1); seed <= 8; seed++ {
		n := 2 + int(rng.Mix(seed, 0xa)%200)
		m := int(rng.Mix(seed, 0xb) % 2000)
		streams = append(streams, randomStream{n: n, m: m, seed: seed})
		streams = append(streams, StreamGNP(n, 3/float64(n), seed))
		streams = append(streams, StreamGNP(n, 0.3, seed))
		streams = append(streams, StreamRandomRegular(n, 1+int(seed%5), seed))
	}
	streams = append(streams,
		randomStream{n: 1, m: 50, seed: 99}, // only self-loops possible
		StreamGNP(64, 0, 7),                 // p=0: empty
		StreamGNP(16, 1, 7),                 // p>=1: complete
		StreamGNP(1, 0.5, 7),                // no pairs
		StreamRandomRegular(10, 0, 7),       // d=0: empty
	)
	for _, s := range streams {
		sameGraph(t, FromStream(s), buildViaBuilder(s), s.Name())
	}
}

// TestFromStreamValid runs the structural validator over streamed
// graphs: symmetric, sorted, deduplicated, loop-free rows.
func TestFromStreamValid(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		for _, s := range []EdgeStream{
			randomStream{n: 50, m: 600, seed: seed},
			StreamGNP(80, 0.1, seed),
			StreamRandomRegular(60, 4, seed),
		} {
			if err := FromStream(s).Validate(); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		}
	}
}

// TestBuildConnectedStitches pins that BuildConnected yields one
// component without disturbing already-connected samples, and is
// deterministic in (stream, seed).
func TestBuildConnectedStitches(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		// p below the connectivity threshold: almost surely disconnected.
		g := BuildConnected(StreamGNP(300, 1.0/300, seed), seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := BFS(g, 0).Reached; got != g.N() {
			t.Fatalf("seed %d: reached %d of %d after stitching", seed, got, g.N())
		}
		g2 := BuildConnected(StreamGNP(300, 1.0/300, seed), seed)
		sameGraph(t, g2, g, fmt.Sprintf("restitch seed %d", seed))
	}
	// Already connected: the stitching pass must be the identity.
	g := BuildConnected(StreamPath(64), 1)
	sameGraph(t, g, Path(64), "connected passthrough")
}

// TestStreamReiteration pins the EdgeStream determinism requirement
// FromStream's two-pass assembly depends on: building twice from the
// same stream value yields byte-identical graphs.
func TestStreamReiteration(t *testing.T) {
	for _, s := range []EdgeStream{
		StreamGNP(200, 0.05, 3),
		StreamRandomRegular(100, 3, 3),
		StreamGrid(11, 13),
	} {
		sameGraph(t, FromStream(s), FromStream(s), s.Name())
	}
}
