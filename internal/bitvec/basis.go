package bitvec

// Basis maintains a row-reduced basis of a subspace of F_2^n under
// incremental insertion. It answers, in O(n/64) per pivot:
//
//   - Add(v): does v extend the span? (the RLNC receiver test)
//   - Rank(): current dimension
//   - InSpan(v): membership
//   - Full(): span == F_2^n, i.e. a receiver can decode (Prop. 3.9)
//
// Rows are kept in reduced row-echelon form keyed by pivot column, so
// Add is the online Gaussian elimination step.
type Basis struct {
	n      int
	pivots map[int]Vec // pivot column -> row with leading 1 at that column
}

// NewBasis returns an empty basis of subspaces of F_2^n.
func NewBasis(n int) *Basis {
	return &Basis{n: n, pivots: make(map[int]Vec)}
}

// N returns the ambient dimension.
func (b *Basis) N() int { return b.n }

// Rank returns the dimension of the current span.
func (b *Basis) Rank() int { return len(b.pivots) }

// Full reports whether the span is all of F_2^n.
func (b *Basis) Full() bool { return len(b.pivots) == b.n }

// reduce fully eliminates v against the stored rows, returning the
// residual (which has a zero at every existing pivot column). The input
// vector is not modified.
func (b *Basis) reduce(v Vec) Vec {
	r := v.Clone()
	for p := r.LowestSetBit(); p >= 0; {
		row, ok := b.pivots[p]
		if !ok {
			p = r.NextSetBit(p + 1)
			continue
		}
		// row's lowest set bit is p, so the XOR clears bit p and only
		// touches bits above p.
		r.XorInPlace(row)
		p = r.NextSetBit(p + 1)
	}
	return r
}

// InSpan reports whether v is in the current span.
func (b *Basis) InSpan(v Vec) bool { return b.reduce(v).IsZero() }

// Add inserts v into the basis. It returns true iff v increased the
// rank (v was linearly independent of the prior rows).
func (b *Basis) Add(v Vec) bool {
	if v.Len() != b.n {
		panic("bitvec: Basis.Add dimension mismatch")
	}
	r := b.reduce(v)
	p := r.LowestSetBit()
	if p < 0 {
		return false
	}
	// Back-substitute so stored rows stay fully reduced.
	for col, row := range b.pivots {
		if row.Get(p) {
			row.XorInPlace(r)
			b.pivots[col] = row
		}
	}
	b.pivots[p] = r
	return true
}

// Rows returns a copy of the basis rows (order unspecified).
func (b *Basis) Rows() []Vec {
	out := make([]Vec, 0, len(b.pivots))
	for _, row := range b.pivots {
		out = append(out, row.Clone())
	}
	return out
}

// Row returns the reduced row with pivot at column p, if any.
func (b *Basis) Row(p int) (Vec, bool) {
	row, ok := b.pivots[p]
	if !ok {
		return Vec{}, false
	}
	return row.Clone(), true
}

// Rank computes the rank of an arbitrary set of vectors without
// mutating them.
func Rank(vs []Vec) int {
	if len(vs) == 0 {
		return 0
	}
	b := NewBasis(vs[0].Len())
	for _, v := range vs {
		b.Add(v)
	}
	return b.Rank()
}

// Solver performs paired Gaussian elimination over GF(2): each inserted
// row is a (coefficient, payload) pair, and once the coefficient rows
// span F_2^k the payload of every unit coefficient vector can be read
// off. This is exactly the RLNC decoding step of Section 3.3.1: a node
// holding k linearly independent coded packets reconstructs all k
// messages "using Gaussian elimination".
type Solver struct {
	k      int
	m      int
	pivots map[int]solverRow
	// scratch holds the equation being reduced. Reduction runs on the
	// scratch pair, so the (overwhelmingly common) dependent insertions
	// allocate nothing; only an independent equation is cloned into a
	// stored row — and even that clone reuses a freed row when the
	// solver has been Reset (the RLNC run-reuse path).
	scratch solverRow
	free    []solverRow // rows released by Reset, recycled by Add
}

type solverRow struct {
	coeff   Vec
	payload Vec
}

// NewSolver returns a solver for k unknowns with m-bit payloads.
func NewSolver(k, m int) *Solver {
	return &Solver{k: k, m: m, pivots: make(map[int]solverRow)}
}

// Reset empties the solver for a new run with the same dimensions.
// Stored rows move to an internal freelist, so a reset-reused solver
// performs no per-row allocation in its next run.
func (s *Solver) Reset() {
	for col, r := range s.pivots {
		s.free = append(s.free, r)
		delete(s.pivots, col)
	}
}

// Rank returns the number of linearly independent rows inserted.
func (s *Solver) Rank() int { return len(s.pivots) }

// CanSolve reports whether all k unknowns are determined.
func (s *Solver) CanSolve() bool { return len(s.pivots) == s.k }

// Add inserts an equation coeff·x = payload. It returns true iff the
// equation was linearly independent of the prior ones. The inputs are
// never retained or modified.
func (s *Solver) Add(coeff, payload Vec) bool {
	if coeff.Len() != s.k || payload.Len() != s.m {
		panic("bitvec: Solver.Add dimension mismatch")
	}
	if s.scratch.coeff.n != s.k || s.scratch.payload.n != s.m {
		s.scratch = solverRow{coeff: New(s.k), payload: New(s.m)}
	}
	c, p := s.scratch.coeff, s.scratch.payload
	c.CopyFrom(coeff)
	p.CopyFrom(payload)
	// Fully reduce the new equation against every stored row so that c
	// ends with zeros at all existing pivot columns.
	for pos := c.LowestSetBit(); pos >= 0; {
		row, ok := s.pivots[pos]
		if !ok {
			pos = c.NextSetBit(pos + 1)
			continue
		}
		c.XorInPlace(row.coeff)
		p.XorInPlace(row.payload)
		pos = c.NextSetBit(pos + 1)
	}
	piv := c.LowestSetBit()
	if piv < 0 {
		return false // dependent; payload is consistent by construction
	}
	// Back-substitute so stored rows keep zeros at the new pivot.
	for col, r := range s.pivots {
		if r.coeff.Get(piv) {
			r.coeff.XorInPlace(c)
			r.payload.XorInPlace(p)
			s.pivots[col] = r
		}
	}
	var stored solverRow
	if n := len(s.free); n > 0 {
		stored = s.free[n-1]
		s.free = s.free[:n-1]
		stored.coeff.CopyFrom(c)
		stored.payload.CopyFrom(p)
	} else {
		stored = solverRow{coeff: c.Clone(), payload: p.Clone()}
	}
	s.pivots[piv] = stored
	return true
}

// Solve returns the k payload vectors (x_0 ... x_{k-1}). It returns
// ok=false if the system is underdetermined.
func (s *Solver) Solve() ([]Vec, bool) {
	if !s.CanSolve() {
		return nil, false
	}
	out := make([]Vec, s.k)
	for i := 0; i < s.k; i++ {
		row := s.pivots[i]
		// Rows are fully reduced, so each coefficient row is a unit vector.
		out[i] = row.payload.Clone()
	}
	return out, true
}
