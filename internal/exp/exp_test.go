package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"radiocast/internal/stats"
)

// countingPlan builds a plan of n cells whose results encode their
// index, with artificial per-cell work skew so parallel completion
// order differs from submission order.
func countingPlan(n int, skew time.Duration) *Plan {
	p := &Plan{ID: "T", Title: "test"}
	for i := 0; i < n; i++ {
		p.Cells = append(p.Cells, Cell{
			Key: Key{Experiment: "T", Config: fmt.Sprintf("cell=%d", i), Seed: uint64(i)},
			Run: func(int64) Result {
				if skew > 0 {
					// Later-submitted cells finish first.
					time.Sleep(time.Duration(n-i) * skew)
				}
				return Result{Rounds: int64(i), Completed: true}
			},
		})
	}
	p.Assemble = func(results []Result) *stats.Table {
		t := &stats.Table{Title: "T", Header: []string{"cell", "rounds"}}
		for _, r := range results {
			t.AddRow(r.Key.Config, fmt.Sprint(r.Rounds))
		}
		return t
	}
	return p
}

func TestRunnerMergesInCellOrder(t *testing.T) {
	p := countingPlan(16, time.Millisecond)
	for _, workers := range []int{1, 4, 16} {
		r := &Runner{Parallelism: workers}
		results := r.Run(p)
		if len(results) != 16 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, res := range results {
			if res.Rounds != int64(i) || res.Key.Seed != uint64(i) {
				t.Fatalf("workers=%d: result %d out of order: %+v", workers, i, res)
			}
			if res.Wall <= 0 {
				t.Fatalf("workers=%d: result %d has no wall time", workers, i)
			}
		}
	}
}

func TestRunnerParallelTableMatchesSequential(t *testing.T) {
	p := countingPlan(24, 100*time.Microsecond)
	seqTb, _ := (&Runner{Parallelism: 1}).RunTable(p)
	parTb, _ := (&Runner{Parallelism: 8}).RunTable(p)
	if seqTb.String() != parTb.String() {
		t.Fatalf("tables diverge:\n%s\nvs\n%s", seqTb.String(), parTb.String())
	}
}

func TestRunnerTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := &Plan{ID: "T", Cells: []Cell{{
		Key: Key{Experiment: "T", Config: "hang"},
		Run: func(int64) Result { <-block; return Result{} },
	}}}
	r := &Runner{Parallelism: 1, Timeout: 20 * time.Millisecond}
	results := r.Run(p)
	if results[0].Err == "" || results[0].Completed {
		t.Fatalf("expected timeout error, got %+v", results[0])
	}
	if !strings.Contains(results[0].Err, "timeout") {
		t.Fatalf("unexpected error: %q", results[0].Err)
	}
}

func TestRunnerRecoversPanic(t *testing.T) {
	p := &Plan{ID: "T", Cells: []Cell{{
		Key: Key{Experiment: "T", Config: "boom"},
		Run: func(int64) Result { panic("kaboom") },
	}}}
	results := (&Runner{Parallelism: 1}).Run(p)
	if !strings.Contains(results[0].Err, "kaboom") {
		t.Fatalf("panic not captured: %+v", results[0])
	}
}

func TestRunnerRoundLimitOverride(t *testing.T) {
	var got int64
	p := &Plan{ID: "T", Cells: []Cell{{
		Key:        Key{Experiment: "T", Config: "limit"},
		RoundLimit: 1 << 20,
		Run:        func(limit int64) Result { got = limit; return Result{} },
	}}}
	(&Runner{Parallelism: 1, RoundLimit: 512}).Run(p)
	if got != 512 {
		t.Fatalf("runner round limit not applied: got %d", got)
	}
	(&Runner{Parallelism: 1}).Run(p)
	if got != 1<<20 {
		t.Fatalf("cell round limit not passed: got %d", got)
	}
}

func TestArtifactCanonicalZeroesWall(t *testing.T) {
	p := countingPlan(3, 0)
	r := &Runner{Parallelism: 1}
	start := time.Now()
	tb, results := r.RunTable(p)
	a := NewArtifact(1, true, 1)
	a.Add(p, tb, results, time.Since(start)+time.Microsecond)
	blob1, err := a.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob1), `"wall_us": 1`) {
		t.Fatalf("canonical artifact kept wall time:\n%s", blob1)
	}
	// A second, slower run must canonicalize to the same bytes.
	tb2, results2 := r.RunTable(countingPlan(3, time.Millisecond))
	b := NewArtifact(1, true, 4)
	b.Parallelism = 1
	b.Add(p, tb2, results2, 5*time.Millisecond)
	blob2, err := b.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob1) != string(blob2) {
		t.Fatalf("canonical artifacts diverge:\n%s\nvs\n%s", blob1, blob2)
	}
}

// TestArtifactCanonicalZeroesMem pins that the capacity metrics
// (mem_bytes, peak_rss_bytes) survive into the artifact but vanish
// from its canonical form — they are environment measurements, not
// reproducible outputs.
func TestArtifactCanonicalZeroesMem(t *testing.T) {
	p := &Plan{ID: "M", Cells: []Cell{{
		Key: Key{Experiment: "M", Config: "c", Seed: 0},
		Run: func(int64) Result { return Result{MemBytes: 1 << 20, PeakRSS: 1 << 22, Completed: true} },
	}}}
	results := (&Runner{Parallelism: 1}).Run(p)
	a := NewArtifact(1, false, 1)
	a.Add(p, nil, results, time.Microsecond)
	blob, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"mem_bytes": 1048576`) ||
		!strings.Contains(string(blob), `"peak_rss_bytes": 4194304`) {
		t.Fatalf("artifact lost the memory metrics:\n%s", blob)
	}
	canon, err := a.Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "mem_bytes") || strings.Contains(string(canon), "peak_rss_bytes") {
		t.Fatalf("canonical artifact kept memory metrics:\n%s", canon)
	}
}

func TestIndex(t *testing.T) {
	results := []Result{
		{Key: Key{Experiment: "E", Config: "a", Seed: 0}, Rounds: 10},
		{Key: Key{Experiment: "E", Config: "a", Seed: 1}, Rounds: 20},
	}
	idx := Index(results)
	if idx[Key{Experiment: "E", Config: "a", Seed: 1}].Rounds != 20 {
		t.Fatal("index lookup failed")
	}
}
