package mmv

import (
	"math/rand"

	"radiocast/internal/decay"
	"radiocast/internal/radio"
	"radiocast/internal/rlnc"
)

// SingleMessage is the single-message content layer: the [7]-style
// broadcast atop a GST used inside the rings of Theorem 1.1.
type SingleMessage struct {
	has bool
	msg decay.Message
	pkt radio.Packet // msg boxed once; Fresh returns it without allocating
	// Done, when non-nil, is ticked on the first reception (the
	// not-done -> done transition). Initially-done sources are accounted
	// by the harness's post-reset scan, per the DoneSet contract.
	DoneSet *radio.DoneSet
}

var _ Content = (*SingleMessage)(nil)

// NewSingleMessage creates the layer; the source holds the message.
func NewSingleMessage(source bool, msg decay.Message) *SingleMessage {
	s := &SingleMessage{}
	s.Reset(source, msg)
	return s
}

// Reset rewinds the layer for a new run, allocation-free.
func (s *SingleMessage) Reset(source bool, msg decay.Message) {
	s.has = source
	s.msg = msg
	if source {
		s.pkt = msg
	} else {
		s.pkt = nil
	}
}

// Fresh implements Content.
func (s *SingleMessage) Fresh() radio.Packet {
	if !s.has {
		return nil
	}
	return s.pkt
}

// OnReceive implements Content.
func (s *SingleMessage) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if m, ok := pkt.(decay.Message); ok && !s.has {
		s.has = true
		s.msg = m
		s.pkt = pkt // reuse the already-boxed packet for Fresh
		s.DoneSet.Tick()
	}
}

// Done implements Content: the node has the message.
func (s *SingleMessage) Done() bool { return s.has }

// Message returns the held message (zero value when !Done).
func (s *SingleMessage) Message() decay.Message { return s.msg }

// RLNC is the coded multi-message content layer of Section 3.3.2: a
// fresh transmission is a new random combination of everything
// received; receptions feed the buffer.
type RLNC struct {
	buf *rlnc.Buffer
	rng *rand.Rand
}

var _ Content = (*RLNC)(nil)

// NewRLNC creates the layer over an existing buffer (a source buffer
// preloaded with the k messages, or an empty receiver buffer).
func NewRLNC(buf *rlnc.Buffer, rng *rand.Rand) *RLNC {
	return &RLNC{buf: buf, rng: rng}
}

// Buffer exposes the underlying RLNC buffer.
func (c *RLNC) Buffer() *rlnc.Buffer { return c.buf }

// Rng exposes the layer's RNG so reuse harnesses can reseed it.
func (c *RLNC) Rng() *rand.Rand { return c.rng }

// SetBuffer retargets the layer at another buffer — the reuse path
// for generation switches (Theorem 1.3's stride-2 batch pipeline) and
// reset-reused runs, replacing a NewRLNC allocation.
func (c *RLNC) SetBuffer(buf *rlnc.Buffer) { c.buf = buf }

// Fresh implements Content. Transmissions use the buffer's scratch
// air packet: boxing a pointer allocates nothing, and every receiver
// path copies before retaining (Buffer.Add clones; the mmv relay
// clones into its own scratch).
func (c *RLNC) Fresh() radio.Packet {
	pkt, ok := c.buf.AirPacket(c.rng)
	if !ok {
		return nil
	}
	return pkt
}

// OnReceive implements Content.
func (c *RLNC) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if p, ok := pkt.(*rlnc.Packet); ok && p.Gen == c.buf.Gen() {
		c.buf.Add(*p)
	}
}

// Done implements Content: the node can decode all k messages.
func (c *RLNC) Done() bool { return c.buf.CanDecode() }
