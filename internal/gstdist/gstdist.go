// Package gstdist implements the distributed GST construction of
// Theorem 2.1 together with the virtual-distance learning of
// Lemma 3.10. The protocol is fully distributed: each node ends up
// knowing its BFS level, its rank, its parent's id and rank, and
// (optionally) its virtual distance in G' — everything the broadcast
// schedules of Sections 2.3 and 3.2 require.
//
// Schedule (global, derived from the round number alone):
//
//	segment A  BFS layering: either the O(D) collision wave of
//	           Theorem 1.1 (requires CD), the O(D log^2 n) Decay
//	           layering of Section 2.2.2 (no CD), or preset levels
//	           (rings reuse the global wave).
//	segment B  one Bipartite Assignment boundary (internal/assign) per
//	           level, deepest first. This is the sequential variant
//	           (O(D log^5 n)); the paper's even/odd pipelining
//	           (Section 2.2.4, O(D log^4 n)) is an ablation tracked in
//	           DESIGN.md.
//	segment C  virtual distances (Lemma 3.10): for d = 0..2⌈log n⌉,
//	           stage 1 pipelines a wave down the fast stretches of
//	           each rank class (2(D+1) rounds per rank), stage 2 runs
//	           Θ(log^2 n) Decay rounds from the d-frontier.
//
// Deviation (documented in DESIGN.md): the paper's stage-1 recursion
// propagates the wave only through nodes that were freshly labeled
// d+1, so a stretch whose interior was labeled in an earlier iteration
// blocks the wave and deeper stretch nodes can end up overestimating
// their virtual distance. Our stage 1 lets already-labeled stretch
// nodes relay the wave without adopting the label, which preserves the
// exact BFS order of G'.
package gstdist

import (
	"fmt"

	"radiocast/internal/assign"
	"radiocast/internal/decay"
	"radiocast/internal/sched"
)

// LayerMode selects how segment A learns BFS levels.
type LayerMode uint8

// Layer modes.
const (
	// LayerCD uses the collision wave (needs collision detection).
	LayerCD LayerMode = iota + 1
	// LayerDecay uses Decay-based layering (no CD, O(D log^2 n)).
	LayerDecay
	// LayerPreset skips segment A; levels are supplied by the caller.
	LayerPreset
)

// Config fixes the construction schedule.
type Config struct {
	// N is the (polynomial upper bound on) network size from which all
	// logarithmic schedule lengths derive.
	N int
	// DBound is an upper bound on the source eccentricity: the number
	// of boundaries processed and the wave horizon.
	DBound int
	// Mode selects the layering mechanism.
	Mode LayerMode
	// CLayer scales the Decay-layering phases per epoch (LayerDecay).
	CLayer int
	// Assign is the per-boundary schedule.
	Assign assign.Params
	// WithVdist appends segment C (Lemma 3.10).
	WithVdist bool
	// CVdist scales the stage-2 Decay phases of segment C.
	CVdist int
	// Tag scopes segment-C packets when several constructions run in
	// parallel on adjacent regions (the rings of Theorems 1.1/1.3):
	// nodes discard Wave/Flood packets whose tag differs. Adjacent
	// rings use different parities, so one bit of tag suffices.
	Tag int32
}

// DefaultConfig returns a construction schedule for size n, diameter
// bound d, with the global Θ-constant c.
func DefaultConfig(n, d, c int, mode LayerMode, withVdist bool) Config {
	if c < 1 {
		c = 1
	}
	return Config{
		N:         n,
		DBound:    d,
		Mode:      mode,
		CLayer:    3 * c,
		Assign:    assign.DefaultParams(n, c),
		WithVdist: withVdist,
		CVdist:    c,
	}
}

// L returns ⌈log2 n⌉.
func (c Config) L() int { return sched.LogN(c.N) }

// LayerRounds returns the length of segment A.
func (c Config) LayerRounds() int64 {
	switch c.Mode {
	case LayerCD:
		return int64(c.DBound) + 1
	case LayerDecay:
		return decay.LayeringRounds(c.N, c.DBound, decay.EpochPhases(c.N, c.CLayer))
	default:
		return 0
	}
}

// BoundariesRounds returns the length of segment B.
func (c Config) BoundariesRounds() int64 {
	return int64(c.DBound) * c.Assign.BoundaryRounds()
}

// VdistIterations returns the number of d-iterations in segment C.
func (c Config) VdistIterations() int { return 2*c.L() + 1 }

// VdistStage1Rounds returns stage 1's length within one d-iteration.
func (c Config) VdistStage1Rounds() int64 {
	return int64(c.Assign.MaxRank()) * 2 * int64(c.DBound+1)
}

// VdistStage2Rounds returns stage 2's length within one d-iteration.
func (c Config) VdistStage2Rounds() int64 {
	l := int64(c.L())
	return int64(c.CVdist) * l * l
}

// VdistRounds returns the length of segment C.
func (c Config) VdistRounds() int64 {
	if !c.WithVdist {
		return 0
	}
	return int64(c.VdistIterations()) * (c.VdistStage1Rounds() + c.VdistStage2Rounds())
}

// TotalRounds returns the full construction length.
func (c Config) TotalRounds() int64 {
	return c.LayerRounds() + c.BoundariesRounds() + c.VdistRounds()
}

// Segment identifies the top-level schedule segment.
type Segment uint8

// Segments.
const (
	SegLayer Segment = iota + 1
	SegBoundary
	SegVdist
	SegDone
)

// Pos locates a round within the construction schedule.
type Pos struct {
	Seg Segment
	// Boundary fields (SegBoundary): the boundary index (0 = deepest,
	// blue level = DBound - Boundary) and the in-boundary offset.
	Boundary int
	Off      int64
	// Vdist fields (SegVdist).
	D     int   // frontier distance being extended
	Stage int   // 1 or 2
	Rank  int   // stage 1: rank class being pipelined
	Epoch int   // stage 1: epoch 1 or 2 (0-based: 0 or 1)
	VdOff int64 // stage 1: round within epoch (the level clock);
	// stage 2: Decay round offset.
}

// Locator is the precomputed form of a Config's schedule arithmetic.
// Locate runs for every node in every round (Act and Observe), and
// recomputing the segment-length chains — BoundariesRounds →
// assign.BoundaryRounds → RankLen → ... — dominated full-sweep CPU
// profiles (~60% of flat samples). Protocols compute a Locator once
// and locate against the cached lengths instead.
type Locator struct {
	layer      int64
	boundaries int64
	boundary   int64 // one boundary's length
	vdist      int64
	stage1     int64
	blockLen   int64 // stage1 + stage2
	waveSpan   int64 // DBound+1: stage-1 level clock span
}

// Locator precomputes the Config's schedule lengths.
func (c Config) Locator() Locator {
	return Locator{
		layer:      c.LayerRounds(),
		boundaries: c.BoundariesRounds(),
		boundary:   c.Assign.BoundaryRounds(),
		vdist:      c.VdistRounds(),
		stage1:     c.VdistStage1Rounds(),
		blockLen:   c.VdistStage1Rounds() + c.VdistStage2Rounds(),
		waveSpan:   int64(c.DBound + 1),
	}
}

// Locate maps a global round to a schedule position.
func (l Locator) Locate(r int64) Pos {
	if r < 0 {
		panic(fmt.Sprintf("gstdist: negative round %d", r))
	}
	if r < l.layer {
		return Pos{Seg: SegLayer, Off: r}
	}
	r -= l.layer
	if r < l.boundaries {
		return Pos{Seg: SegBoundary, Boundary: int(r / l.boundary), Off: r % l.boundary}
	}
	r -= l.boundaries
	if r < l.vdist {
		d := int(r / l.blockLen)
		rem := r % l.blockLen
		if rem < l.stage1 {
			perRank := 2 * l.waveSpan
			rank := int(rem / perRank)
			rem %= perRank
			epoch := int(rem / l.waveSpan)
			return Pos{Seg: SegVdist, D: d, Stage: 1, Rank: rank + 1,
				Epoch: epoch, VdOff: rem % l.waveSpan}
		}
		return Pos{Seg: SegVdist, D: d, Stage: 2, VdOff: rem - l.stage1}
	}
	return Pos{Seg: SegDone}
}

// Locate maps a global round to a schedule position. Hot paths should
// cache a Locator instead of re-deriving it per call.
func (c Config) Locate(r int64) Pos { return c.Locator().Locate(r) }

// BlueLevel returns the blue level of boundary index b: boundaries are
// processed deepest-first.
func (c Config) BlueLevel(b int) int { return c.DBound - b }

// BoundaryIndexForBlueLevel returns the boundary index in which nodes
// of the given level act as blues.
func (c Config) BoundaryIndexForBlueLevel(l int) int { return c.DBound - l }
