package radiocast

import "testing"

// Reproducibility is a core library contract: identical (graph,
// options, seed) must give identical round counts for every protocol.

func TestDeterminismAcrossProtocols(t *testing.T) {
	g := NewClusterChain(6, 6)
	runs := []struct {
		name string
		fn   func() (Result, error)
	}{
		{"decay", func() (Result, error) { return DecayBroadcast(g, Options{Seed: 9}) }},
		{"cr", func() (Result, error) { return CRBroadcast(g, Options{Seed: 9}) }},
		{"gst", func() (Result, error) { return BroadcastKnownTopology(g, Options{Seed: 9}) }},
		{"cd", func() (Result, error) { return BroadcastCD(g, Options{Seed: 9}) }},
		{"k-known", func() (Result, error) { return BroadcastK(g, 4, Options{Seed: 9}) }},
		{"k-cd", func() (Result, error) { return BroadcastKCD(g, 4, Options{Seed: 9}) }},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			a, err := r.fn()
			if err != nil || !a.Completed {
				t.Fatalf("first run: %+v %v", a, err)
			}
			b, err := r.fn()
			if err != nil || !b.Completed {
				t.Fatalf("second run: %+v %v", b, err)
			}
			if a.Rounds != b.Rounds {
				t.Fatalf("nondeterministic: %d vs %d rounds", a.Rounds, b.Rounds)
			}
		})
	}
}

func TestSeedsChangeOutcomes(t *testing.T) {
	g := NewGNP(60, 0.1, 4)
	a, err := DecayBroadcast(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for seed := uint64(2); seed < 8; seed++ {
		b, err := DecayBroadcast(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if b.Rounds != a.Rounds {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("seven seeds produced identical Decay round counts; randomness is suspect")
	}
}
