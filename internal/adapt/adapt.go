// Package adapt is the loss-adaptive retry layer: it re-executes a
// fixed-schedule broadcast stack in EPOCHS until every radio is
// informed or a budget policy runs out.
//
// The paper's Theorem 1.1/1.3 pipelines are one-shot: a round-optimal
// schedule is compiled from (n, D, k) and executed exactly once, on the
// ideal channel of Section 1.1. PR 2's adversarial sweeps measured what
// that costs — per-link loss of 0.3 pushes the theorem stacks off a
// completion cliff (E13) while retry-forever baselines merely slow
// down, and a late-waking radio that misses the one-shot collision wave
// is simply abandoned (E16). The classical repair — argued by
// Czumaj–Davies (arXiv:1805.04842) to be essential for broadcast
// without reliable network knowledge — is re-layering: run the schedule
// again, but let everything learned so far carry over.
//
// An epoch here is one full re-execution of the wrapped stack in which
// every radio informed by earlier epochs participates as an additional
// SOURCE: late wakers and loss-starved radios are re-covered by a wave
// that now starts from the whole informed frontier rather than from
// node 0 alone, so coverage is monotone in epochs and each epoch's
// effective depth shrinks to the distance from the frontier. Carryover
// of the informed set is the Runner implementation's job (the harness
// contexts hold the per-node protocols); this package owns only the
// epoch loop, the budget Policy, and the aggregate Outcome.
//
// Two invariants the layer preserves:
//
//   - Determinism: epochs derive their randomness from (seed, epoch),
//     so an adaptive run is an exact function of (graph, options,
//     seed) like every other run in this repository.
//   - Zero-cost when disabled, byte-identical when trivially enabled:
//     epoch 0 runs the wrapped stack with its original seed and
//     sources, so an adaptive run that completes in its first epoch
//     reports exactly the rounds of the non-adaptive run.
package adapt

import "radiocast/internal/radio"

// UntilDoneCap bounds the until-done policy (MaxEpochs <= 0): even a
// stack making zero progress per epoch terminates after this many
// epochs. A broadcast that cannot finish in 64 re-layerings (each
// re-seeded, each starting from a monotone-grown frontier) is not
// going to finish in 65.
const UntilDoneCap = 64

// Runner is one adaptively re-executable protocol stack. Harness
// contexts implement it by resetting their protocols with the carried
// informed set as sources; completion is detected through the stack's
// existing radio.DoneSet tracker, so the per-epoch predicate stays
// O(1).
type Runner interface {
	// RunEpoch executes epoch number `epoch` (0-based) of the wrapped
	// stack and returns the rounds consumed, whether every node is now
	// informed, and the epoch's engine counters. limit caps the epoch's
	// rounds; 0 means the stack's own schedule budget. Epoch 0 is a
	// plain run of the stack (original sources, original seed); epoch
	// e > 0 re-executes it with every radio informed by epochs < e
	// acting as an additional source and with (seed, e)-derived
	// randomness.
	RunEpoch(epoch int, limit int64) (rounds int64, done bool, st radio.Stats)
	// Covered reports how many nodes are informed after the last
	// executed epoch (the DoneSet count).
	Covered() int
}

// Policy is the epoch budget. The zero value is the until-done policy:
// re-layer with the stack's own per-epoch schedule budget until the
// broadcast completes (or UntilDoneCap epochs elapse).
type Policy struct {
	// MaxEpochs caps the number of epochs when positive; <= 0 means
	// until-done (capped at UntilDoneCap).
	MaxEpochs int
	// EpochLimit is the per-epoch round cap handed to RunEpoch; 0 uses
	// the stack's own schedule budget.
	EpochLimit int64
	// Doubling doubles EpochLimit after every incomplete epoch (the
	// doubling-horizon policy for open-ended stacks like Decay, whose
	// "schedule budget" is a guess). It requires an explicit EpochLimit;
	// with EpochLimit 0 there is nothing to double and the flag is
	// inert.
	Doubling bool
	// MaxRounds, when positive, is a hard cap on total simulated rounds
	// across epochs: each epoch's limit is clamped to the remaining
	// budget, so Outcome.Rounds never exceeds it.
	MaxRounds int64
	// OnEpoch, when non-nil, is invoked synchronously after every
	// executed epoch with the epoch number, that epoch's rounds, the
	// cumulative informed count, and whether the broadcast is complete
	// — the observability hook surfaced as structured log events and
	// SSE progress. Covered() is an O(1) DoneSet read, so the callback
	// adds no per-node work; it must not mutate the runner.
	OnEpoch func(epoch int, rounds int64, covered int, done bool)
}

// epochs resolves the effective epoch cap.
func (p Policy) epochs() int {
	if p.MaxEpochs > 0 {
		return p.MaxEpochs
	}
	return UntilDoneCap
}

// Outcome aggregates an adaptive run.
type Outcome struct {
	// Completed reports whether every node was informed within the
	// policy's budget.
	Completed bool
	// Epochs is the number of epochs executed (>= 1).
	Epochs int
	// Rounds is the total simulated rounds across all epochs — the
	// number to compare against a one-shot run's rounds when reporting
	// round inflation.
	Rounds int64
	// Covered is the informed-node count when the loop stopped.
	Covered int
	// Stats sums the engine counters of every epoch.
	Stats radio.Stats
}

// Run drives r through epochs under the policy and returns the
// aggregate outcome. It always executes at least one epoch.
func Run(r Runner, p Policy) Outcome {
	var out Outcome
	limit := p.EpochLimit
	for e := 0; e < p.epochs(); e++ {
		// MaxRounds is a hard cap: the current epoch may use at most the
		// remaining budget, even when the stack's own schedule (or the
		// policy's EpochLimit) is longer.
		epochLimit := limit
		if p.MaxRounds > 0 {
			remaining := p.MaxRounds - out.Rounds
			if epochLimit <= 0 || remaining < epochLimit {
				epochLimit = remaining
			}
		}
		rounds, done, st := r.RunEpoch(e, epochLimit)
		out.Epochs++
		out.Rounds += rounds
		out.Stats.Add(st)
		if p.OnEpoch != nil {
			p.OnEpoch(e, rounds, r.Covered(), done)
		}
		if done {
			out.Completed = true
			break
		}
		if p.MaxRounds > 0 && out.Rounds >= p.MaxRounds {
			break
		}
		if p.Doubling && limit > 0 {
			limit *= 2
		}
	}
	out.Covered = r.Covered()
	return out
}
