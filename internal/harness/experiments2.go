package harness

import (
	"fmt"

	"radiocast/internal/bitvec"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// E7MultiMessageKnown sweeps k for Theorem 1.2 and fits the slope.
func E7MultiMessageKnown(seeds int, quick bool) *stats.Table {
	ks := []int{2, 4, 8, 16, 32}
	if quick {
		ks = []int{2, 4, 8}
	}
	g := graph.Grid(8, 8)
	d := graph.Eccentricity(g, 0)
	l := sched.LogN(g.N())
	t := &stats.Table{
		Title:   "E7: k-message broadcast, known topology (Thm 1.2)",
		Comment: fmt.Sprintf("grid-8x8, D=%d, log n=%d; paper: O(D + k log n + log^2 n) — linear in k with slope Θ(log n)", d, l),
		Header:  []string{"k", "mean rounds", "rounds/k", "ok"},
	}
	var xs, ys []float64
	for _, k := range ks {
		var rs []float64
		okAll := true
		for s := 0; s < seeds; s++ {
			r, ok := RunGSTMulti(g, k, uint64(s), 1<<22)
			if !ok {
				okAll = false
				continue
			}
			rs = append(rs, float64(r))
		}
		m := stats.Summarize(rs, 0, 0).Mean
		xs = append(xs, float64(k))
		ys = append(ys, m)
		t.AddRow(fmt.Sprint(k), stats.F(m), stats.F(m/float64(k)), fmt.Sprint(okAll))
	}
	fit := stats.LinearFit(xs, ys)
	t.AddRow("fit", fmt.Sprintf("slope=%s/k", stats.F(fit.Slope)),
		fmt.Sprintf("slope/logn=%s", stats.F(fit.Slope/float64(l))),
		fmt.Sprintf("R2=%s", stats.F(fit.R2)))
	return t
}

// E8MultiMessageUnknown runs the full Theorem 1.3 stack.
func E8MultiMessageUnknown(seeds int, quick bool) *stats.Table {
	type cse struct {
		g *graph.Graph
		k int
	}
	cases := []cse{
		{graph.Grid(4, 12), 8},
		{graph.ClusterChain(6, 6), 12},
	}
	if !quick {
		cases = append(cases, cse{graph.Grid(4, 20), 16})
	}
	t := &stats.Table{
		Title:   "E8: k-message broadcast, unknown topology + CD (Thm 1.3)",
		Comment: "full pipeline: wave + parallel ring GSTs + stride-2 batch pipeline with RLNC and fountain handoffs",
		Header:  []string{"graph", "n", "D", "k", "rings", "batches", "rounds", "budget", "ok"},
	}
	for _, c := range cases {
		d := graph.Eccentricity(c.g, 0)
		okCount := 0
		var rs []float64
		var cfg rings.Config
		for s := 0; s < seeds; s++ {
			r, ok, cf := RunTheorem13(c.g, d, c.k, 1, uint64(s))
			cfg = cf
			if ok {
				okCount++
				rs = append(rs, float64(r))
			}
		}
		t.AddRow(c.g.Name(), fmt.Sprint(c.g.N()), fmt.Sprint(d), fmt.Sprint(c.k),
			fmt.Sprint(cfg.Rings()), fmt.Sprint(cfg.Batches()),
			stats.F(stats.Summarize(rs, 0, 0).Mean), fmt.Sprint(cfg.TotalRounds()),
			fmt.Sprintf("%d/%d", okCount, seeds))
	}
	return t
}

// E9DecayMMV reproduces Lemma 3.2: the level-clocked Decay schedule
// completes under full jamming, with bounded slowdown vs the silent
// variant.
func E9DecayMMV(seeds int, quick bool) *stats.Table {
	gs := []*graph.Graph{graph.Path(64), graph.Grid(8, 8)}
	if !quick {
		gs = append(gs, graph.ClusterChain(8, 6))
	}
	t := &stats.Table{
		Title:   "E9: Decay is MMV (Lemma 3.2)",
		Comment: "jamming: nodes without the message transmit noise in their prompted slots",
		Header:  []string{"graph", "silent rounds", "jammed rounds", "ratio", "ok"},
	}
	for _, g := range gs {
		var silent, jammed []float64
		okAll := true
		for s := 0; s < seeds; s++ {
			a, ok1 := runDecayMMV(g, false, uint64(s))
			b, ok2 := runDecayMMV(g, true, uint64(s))
			if !ok1 || !ok2 {
				okAll = false
				continue
			}
			silent = append(silent, float64(a))
			jammed = append(jammed, float64(b))
		}
		ms, mj := stats.Summarize(silent, 0, 0).Mean, stats.Summarize(jammed, 0, 0).Mean
		t.AddRow(g.Name(), stats.F(ms), stats.F(mj), stats.F(mj/ms), fmt.Sprint(okAll))
	}
	return t
}

func runDecayMMV(g *graph.Graph, noising bool, seed uint64) (int64, bool) {
	levels := graph.BFS(g, 0)
	nw := radio.New(g, radio.Config{})
	protos := make([]*decay.MMV, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = decay.NewMMV(g.N(), int(levels.Dist[v]), noising, decay.Message{Data: 2}, rng.New(seed, 0x91, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	l := int64(sched.LogN(g.N()))
	limit := 200 * (int64(levels.MaxDist)*l + l*l)
	return nw.RunUntil(limit, func() bool {
		for _, p := range protos {
			if !p.Has() {
				return false
			}
		}
		return true
	})
}

// E10MMVGST reproduces Lemma 3.3: the GST schedule under jamming.
func E10MMVGST(seeds int, quick bool) *stats.Table {
	gs := []*graph.Graph{graph.Grid(8, 8), graph.Path(64)}
	if !quick {
		gs = append(gs, graph.GNP(96, 0.06, 7))
	}
	t := &stats.Table{
		Title:   "E10: MMV GST schedule under noise (Lemma 3.3)",
		Comment: "same schedule, message-less nodes jam their slots; fast waves stay collision-free (Lemma 3.5 is a test invariant)",
		Header:  []string{"graph", "silent rounds", "jammed rounds", "ratio", "ok"},
	}
	for _, g := range gs {
		var silent, jammed []float64
		okAll := true
		for s := 0; s < seeds; s++ {
			a, ok1 := RunGSTSingle(g, false, uint64(s), 1<<22)
			b, ok2 := RunGSTSingle(g, true, uint64(s), 1<<22)
			if !ok1 || !ok2 {
				okAll = false
				continue
			}
			silent = append(silent, float64(a))
			jammed = append(jammed, float64(b))
		}
		ms, mj := stats.Summarize(silent, 0, 0).Mean, stats.Summarize(jammed, 0, 0).Mean
		t.AddRow(g.Name(), stats.F(ms), stats.F(mj), stats.F(mj/ms), fmt.Sprint(okAll))
	}
	return t
}

// E11DecayProgress reproduces Lemma 2.2: one Decay phase delivers with
// probability >= 1/8 at every degree.
func E11DecayProgress(seeds int, quick bool) *stats.Table {
	degrees := []int{1, 2, 4, 8, 32, 128}
	if quick {
		degrees = []int{1, 4, 32}
	}
	trials := 200 * seeds
	t := &stats.Table{
		Title:   "E11: per-phase Decay progress probability (Lemma 2.2)",
		Comment: "star center listening, all leaves participating; paper bound: >= 1/8 per phase",
		Header:  []string{"degree", "success rate", "trials"},
	}
	for _, deg := range degrees {
		n := deg + 2
		l := sched.LogN(n)
		succ := 0
		for trial := 0; trial < trials; trial++ {
			g := graph.Star(deg + 1)
			nw := radio.New(g, radio.Config{})
			probe := &radio.Silent{}
			nw.SetProtocol(0, probe)
			for v := 1; v <= deg; v++ {
				nw.SetProtocol(graph.NodeID(v),
					decay.NewBroadcast(n, true, decay.Message{}, rng.New(uint64(trial), 0xb1, uint64(v), uint64(deg))))
			}
			nw.Run(int64(l))
			if probe.Packets > 0 {
				succ++
			}
		}
		t.AddRow(fmt.Sprint(deg), stats.F(float64(succ)/float64(trials)), fmt.Sprint(trials))
	}
	return t
}

// E12RLNC reproduces Definition 3.8 / Proposition 3.9: infection
// transfer probability >= 1/2 and fountain decoding overhead.
func E12RLNC(seeds int, quick bool) *stats.Table {
	t := &stats.Table{
		Title:   "E12: RLNC infection and decoding (Def 3.8 / Prop 3.9)",
		Comment: "transfer = P[random packet from an infected sender infects receiver]; overhead = packets beyond k until decode",
		Header:  []string{"k", "transfer rate", "mean overhead"},
	}
	ks := []int{4, 8, 16}
	if quick {
		ks = []int{4, 8}
	}
	const l = 16
	for _, k := range ks {
		r := rng.New(uint64(k), 0xc2)
		msgs := make([]rlnc.Message, k)
		for i := range msgs {
			msgs[i] = bitvec.RandomVec(l, r.Uint64)
		}
		src := rlnc.NewSourceBuffer(0, msgs, l)
		transfer, trials := 0, 2000*seeds
		mu := bitvec.RandomNonZeroVec(k, r.Uint64)
		for i := 0; i < trials; i++ {
			p, _ := src.RandomPacket(r)
			if bitvec.Dot(mu, p.Coeff) {
				transfer++
			}
		}
		overheadSum, runs := 0, 100*seeds
		for i := 0; i < runs; i++ {
			dec := rlnc.NewBuffer(0, k, l)
			got := 0
			for !dec.CanDecode() {
				p, _ := src.RandomPacket(r)
				dec.Add(p)
				got++
			}
			overheadSum += got - k
		}
		t.AddRow(fmt.Sprint(k), stats.F(float64(transfer)/float64(trials)),
			stats.F(float64(overheadSum)/float64(runs)))
	}
	return t
}

// A1VirtualDistance compares the MMV schedule's virtual-distance slow
// slots against the level-keyed slots of [7,19] under jamming.
func A1VirtualDistance(seeds int, quick bool) *stats.Table {
	gs := []*graph.Graph{graph.Grid(8, 8), graph.GNP(80, 0.08, 5)}
	if quick {
		gs = gs[:1]
	}
	t := &stats.Table{
		Title: "A1: virtual-distance vs level-keyed slow slots (jamming on)",
		Comment: "informational: the level-keyed schedule is the [7,19] style whose multi-message correctness was disproved ([22]);\n" +
			"on benign workloads both complete — the paper's change buys *provable* MMV bounds (Lemma 3.3), not universal speedup",
		Header: []string{"graph", "vdist rounds", "level rounds", "vdist ok", "level ok"},
	}
	for _, g := range gs {
		tree := gst.Construct(g, 0)
		infos := mmv.InfoFromTree(tree)
		s := mmv.NewSchedule(g.N())
		run := func(levelKeyed bool, seed uint64) (int64, bool) {
			nw := radio.New(g, radio.Config{})
			contents := make([]*mmv.SingleMessage, g.N())
			for v := 0; v < g.N(); v++ {
				contents[v] = mmv.NewSingleMessage(v == 0, decay.Message{})
				var p *mmv.Protocol
				if levelKeyed {
					p = mmv.NewLevelKeyed(s, infos[v], contents[v], true, rng.New(seed, 0xa1, uint64(v)))
				} else {
					p = mmv.New(s, infos[v], contents[v], true, rng.New(seed, 0xa1, uint64(v)))
				}
				nw.SetProtocol(graph.NodeID(v), p)
			}
			return nw.RunUntil(1<<18, func() bool {
				for _, c := range contents {
					if !c.Done() {
						return false
					}
				}
				return true
			})
		}
		var vd, lv []float64
		vdOK, lvOK := 0, 0
		for s2 := 0; s2 < seeds; s2++ {
			if r, ok := run(false, uint64(s2)); ok {
				vd = append(vd, float64(r))
				vdOK++
			}
			if r, ok := run(true, uint64(s2)); ok {
				lv = append(lv, float64(r))
				lvOK++
			}
		}
		t.AddRow(g.Name(),
			stats.F(stats.Summarize(vd, 0, 0).Mean), stats.F(stats.Summarize(lv, 0, 0).Mean),
			fmt.Sprintf("%d/%d", vdOK, seeds), fmt.Sprintf("%d/%d", lvOK, seeds))
	}
	return t
}

// A2CodingVsRouting quantifies the coding advantage ([11]'s gap).
func A2CodingVsRouting(seeds int, quick bool) *stats.Table {
	ks := []int{4, 8, 16}
	if quick {
		ks = ks[:2]
	}
	g := graph.Grid(6, 6)
	t := &stats.Table{
		Title:   "A2: RLNC vs store-and-forward routing (grid-6x6)",
		Comment: "same MMV schedule, coded vs uncoded content; coding removes the coupon-collector tail",
		Header:  []string{"k", "rlnc rounds", "routing rounds", "routing/rlnc"},
	}
	for _, k := range ks {
		var cod, rou []float64
		for s := 0; s < seeds; s++ {
			if r, ok := RunGSTMulti(g, k, uint64(s), 1<<22); ok {
				cod = append(cod, float64(r))
			}
			if r, ok := RunGSTMultiRouting(g, k, uint64(s), 1<<22); ok {
				rou = append(rou, float64(r))
			}
		}
		mc, mr := stats.Summarize(cod, 0, 0).Mean, stats.Summarize(rou, 0, 0).Mean
		t.AddRow(fmt.Sprint(k), stats.F(mc), stats.F(mr), stats.F(mr/mc))
	}
	return t
}

// A3RingWidth sweeps the ring width of Theorem 1.1, exposing the
// construction-vs-spread trade-off the paper resolves with W=D/log^4 n.
func A3RingWidth(seeds int, quick bool) *stats.Table {
	g := graph.ClusterChain(10, 4)
	d := graph.Eccentricity(g, 0)
	widths := []int{3, 5, 10, d + 1}
	if quick {
		widths = []int{3, d + 1}
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("A3: Theorem 1.1 ring width sweep (clusterchain-10x4, D=%d)", d),
		Comment: "wider rings amortize per-ring log^2 overheads but lengthen the (parallel) construction",
		Header:  []string{"W", "rings", "build rounds", "spread budget", "total rounds", "ok"},
	}
	for _, w := range widths {
		cfg := rings.DefaultConfig(g.N(), d, 0, 1)
		cfg.W = w
		cfg.GST.DBound = w - 1
		okCount := 0
		var rs []float64
		for s := 0; s < seeds; s++ {
			nw := radio.New(g, radio.Config{CollisionDetection: true})
			protos := make([]*rings.Protocol, g.N())
			for v := 0; v < g.N(); v++ {
				protos[v] = rings.New(cfg, graph.NodeID(v), v == 0, nil, rng.New(uint64(s), 0xa3, uint64(v)))
				nw.SetProtocol(graph.NodeID(v), protos[v])
			}
			r, ok := nw.RunUntil(cfg.TotalRounds(), func() bool {
				for _, p := range protos {
					if !p.Has() {
						return false
					}
				}
				return true
			})
			if ok {
				okCount++
				rs = append(rs, float64(r))
			}
		}
		t.AddRow(fmt.Sprint(w), fmt.Sprint(cfg.Rings()), fmt.Sprint(cfg.BuildRounds()),
			fmt.Sprint(cfg.SpreadRounds()), stats.F(stats.Summarize(rs, 0, 0).Mean),
			fmt.Sprintf("%d/%d", okCount, seeds))
	}
	return t
}
