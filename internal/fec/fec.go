// Package fec implements the forward-error-correction handoff used to
// move message batches across ring boundaries in the proof of
// Theorem 1.3: nodes on the outer boundary of ring j hold a full batch
// and emit coded packets such that any node receiving Θ(k') of them
// (any subset) can reconstruct the whole batch.
//
// As the paper notes, "FEC can be viewed as a simplified form of
// network coding as there is no intermediate node": we realize it as a
// random linear fountain over F_2 — each coded packet is a uniformly
// random XOR-combination of the batch. A receiver decodes once its
// collected coefficient vectors reach full rank, which happens after
// k' + O(log(1/δ)) received packets with probability 1-δ.
package fec

import (
	"math/rand"

	"radiocast/internal/bitvec"
	"radiocast/internal/rlnc"
)

// Encoder emits fountain-coded packets over a fixed batch. Encoders
// are stateless between calls; every packet is independent.
type Encoder struct {
	batch int
	buf   *rlnc.Buffer
}

// NewEncoder returns an encoder over the given batch of messages
// (each l bits). The batch id tags emitted packets.
func NewEncoder(batch int, msgs []rlnc.Message, l int) *Encoder {
	return &Encoder{batch: batch, buf: rlnc.NewSourceBuffer(batch, msgs, l)}
}

// Packet emits one coded packet drawn with r.
func (e *Encoder) Packet(r *rand.Rand) rlnc.Packet {
	p, _ := e.buf.RandomPacket(r) // source buffer is never empty
	return p
}

// Decoder accumulates coded packets for one batch until decodable.
type Decoder struct {
	buf *rlnc.Buffer
}

// NewDecoder returns a decoder expecting k messages of l bits in the
// given batch.
func NewDecoder(batch, k, l int) *Decoder {
	return &Decoder{buf: rlnc.NewBuffer(batch, k, l)}
}

// Add consumes one received packet; returns true iff it was innovative.
func (d *Decoder) Add(p rlnc.Packet) bool { return d.buf.Add(p) }

// Done reports whether the batch is fully reconstructible.
func (d *Decoder) Done() bool { return d.buf.CanDecode() }

// Rank returns the number of independent packets received so far.
func (d *Decoder) Rank() int { return d.buf.Rank() }

// Decode reconstructs the batch. ok is false until Done.
func (d *Decoder) Decode() ([]rlnc.Message, bool) { return d.buf.Decode() }

// ExpectedOverhead returns the number of extra packets (beyond k)
// needed so a random fountain decodes with failure probability at most
// 2^-slack: rank deficiency after k+e random vectors is < 2^-e in
// expectation. Used to size the handoff schedule.
func ExpectedOverhead(slack int) int {
	if slack < 1 {
		return 1
	}
	return slack
}

// Verify checks decoded output against ground truth (test helper).
func Verify(got, want []rlnc.Message) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !bitvec.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}
