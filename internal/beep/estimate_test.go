package beep

import (
	"testing"
	"testing/quick"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
)

// runEstimate executes the doubling estimator and returns per-node
// estimators after completion.
func runEstimate(t *testing.T, g *graph.Graph) []*Estimate {
	t.Helper()
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	protos := make([]*Estimate, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = NewEstimate(v == 0)
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	nw.Run(EstimateRounds(g.N()))
	return protos
}

func TestEstimateOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(2),
		graph.Path(17),
		graph.Path(64),
		graph.Cycle(30),
		graph.Star(25),
		graph.Grid(5, 9),
		graph.Complete(12),
		graph.ClusterChain(7, 5),
		graph.BinaryTree(31),
		graph.GNP(80, 0.07, 3),
	}
	for _, g := range gs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			ecc := int64(graph.Eccentricity(g, 0))
			bfs := graph.BFS(g, 0)
			protos := runEstimate(t, g)
			for v, p := range protos {
				if !p.Done() {
					t.Fatalf("node %d never finished", v)
				}
				if p.Diameter() != protos[0].Diameter() {
					t.Fatalf("node %d disagrees on D̂: %d vs %d", v, p.Diameter(), protos[0].Diameter())
				}
				if p.Level() != int64(bfs.Dist[v]) {
					t.Fatalf("node %d level %d, want %d", v, p.Level(), bfs.Dist[v])
				}
			}
			dhat := protos[0].Diameter()
			// 2-approximation: ecc <= D̂ <= 2·max(ecc,1), with equality
			// on the right when ecc is an exact power of two.
			if dhat < ecc {
				t.Fatalf("D̂ = %d underestimates ecc = %d", dhat, ecc)
			}
			lo := ecc
			if lo < 1 {
				lo = 1
			}
			if dhat > 2*lo {
				t.Fatalf("D̂ = %d is not a 2-approx of ecc = %d", dhat, ecc)
			}
			t.Logf("%s: ecc=%d D̂=%d rounds<=%d", g.Name(), ecc, dhat, EstimateRounds(g.N()))
		})
	}
}

func TestEstimateIsDeterministic(t *testing.T) {
	g := graph.GNP(50, 0.1, 9)
	a := runEstimate(t, g)
	b := runEstimate(t, g)
	for v := range a {
		if a[v].Diameter() != b[v].Diameter() || a[v].Level() != b[v].Level() {
			t.Fatal("estimator nondeterministic")
		}
	}
}

func TestEstimateRoundsLinearInD(t *testing.T) {
	// O(D): the schedule for max eccentricity m is <= c·m + O(log m).
	if EstimateRounds(64) > 3*(2*128+1)+3*16 {
		t.Fatalf("EstimateRounds(64) = %d, not O(D)", EstimateRounds(64))
	}
	if EstimateRounds(1) >= EstimateRounds(100) {
		t.Fatal("rounds not increasing")
	}
}

func TestEstimatePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.UnitDisk(40, graph.ConnectivityRadius(40), seed)
		ecc := int64(graph.Eccentricity(g, 0))
		nw := radio.New(g, radio.Config{CollisionDetection: true})
		protos := make([]*Estimate, g.N())
		for v := 0; v < g.N(); v++ {
			protos[v] = NewEstimate(v == 0)
			nw.SetProtocol(graph.NodeID(v), protos[v])
		}
		nw.Run(EstimateRounds(g.N()))
		lo := ecc
		if lo < 1 {
			lo = 1
		}
		for _, p := range protos {
			if !p.Done() || p.Diameter() < ecc || p.Diameter() > 2*lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockGeometry(t *testing.T) {
	if blockStart(0) != 0 || blockStart(1) != 6 {
		t.Fatalf("blockStart wrong: %d %d", blockStart(0), blockStart(1))
	}
	// locate round-trips block boundaries.
	for j := 0; j < 6; j++ {
		gotJ, sub, off := locate(blockStart(j))
		if gotJ != j || sub != 0 || off != 0 {
			t.Fatalf("locate(blockStart(%d)) = (%d,%d,%d)", j, gotJ, sub, off)
		}
	}
}
