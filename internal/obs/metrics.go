package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Values must be stable strings (job
// ids, protocol names); unbounded-cardinality values belong in logs,
// not labels.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters are monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds delta (compare-and-swap loop; gauges move both ways).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations <= its upper bound, and
// the exposition appends the +Inf bucket, sum, and count).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// DefTimeBuckets are the default wall-time buckets (seconds),
// log-spaced from 1ms to ~4 minutes — simulation jobs span fast quick
// cells to million-node campaigns.
var DefTimeBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 240}

// series is one exposed time series: a family member with a fixed
// label set.
type series struct {
	labels  string // rendered label block, "" or `{k="v",...}`
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series of one metric name under a TYPE/HELP pair.
type family struct {
	name, help, typ string
	order           []string // series keys in registration order
	series          map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text format. Series handles are cached: asking for the same
// (name, labels) twice returns the same Counter/Gauge/Histogram, so
// callers can resolve labelled series on the hot path without
// registration bookkeeping. The zero value is NOT usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels produces the canonical label block. Labels render in
// the given order (callers pass a fixed order, keeping series keys
// stable); values are escaped per the text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(l.Value)
		fmt.Fprintf(&b, `%s="%s"`, l.Key, v)
	}
	b.WriteByte('}')
	return b.String()
}

// getSeries resolves (or creates) the series for (name, labels) in a
// family of the given type, panicking on a type conflict — registering
// one name as both counter and gauge is a programming error worth
// failing loudly on. Callers must hold r.mu: the instrument fields are
// initialized under the same critical section that creates the series,
// so concurrent first resolutions return one shared handle.
func (r *Registry) getSeries(name, help, typ string, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape
// time (live-heap, goroutine counts, queue depths).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "gauge", labels)
	s.gaugeFn = fn
}

// Histogram returns the histogram for (name, labels) with the given
// upper bounds (ascending; +Inf is implicit), creating it on first
// use. Later calls reuse the first bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, "histogram", labels)
	if s.hist == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		s.hist = h
	}
	return s.hist
}

// WritePrometheus renders every family in the Prometheus text format,
// families in registration order, series in registration order within
// a family — a deterministic scrape for a deterministic system.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		return err
	case s.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFn()))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
		return err
	case s.hist != nil:
		return writeHistogram(w, f, s)
	}
	return nil
}

// writeHistogram renders the cumulative bucket series plus _sum and
// _count. Bucket labels splice le into the series' label block.
func writeHistogram(w io.Writer, f *family, s *series) error {
	h := s.hist
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, spliceLabel(s.labels, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, spliceLabel(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sum.Load())
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, cum)
	return err
}

// spliceLabel adds one label pair to a rendered label block.
func spliceLabel(block, key, value string) string {
	pair := fmt.Sprintf(`%s=%q`, key, value)
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// formatFloat renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
