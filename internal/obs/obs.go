// Package obs is the observability layer: a dependency-free metrics
// registry with Prometheus text-format exposition, a structured
// (log/slog) event logger shared by the CLIs and the radiocastd
// daemon, and the RoundObserver contract through which the engines
// publish live round progress.
//
// Design rules, in the spirit of the engine's nil-channel fast path:
//
//   - nil is the ideal observer. Every hook in this package is
//     consulted behind a nil guard on the caller's side; a run with no
//     observer attached must execute the exact same instruction stream
//     (and the exact same zero allocations per round) as before this
//     package existed.
//   - The package depends on the standard library only — no Prometheus
//     client, no logging framework. The exposition format is the
//     Prometheus text format (v0.0.4), hand-rolled, so a scrape target
//     costs one atomic load per series.
//   - Everything is safe for concurrent use: counters and gauges are
//     atomics, the registry serializes only series creation, and the
//     slog handlers are concurrency-safe by contract.
//
// Metric naming scheme: `radiocast_<subsystem>_<name>_<unit>` with
// `_total` suffixed to monotone counters — e.g.
// `radiocastd_jobs_completed_total`, `radiocastd_engine_rounds_total`,
// `radiocastd_heap_alloc_bytes`. Label values identify the job or
// protocol (`{protocol="decay"}`, `{job="j7"}`).
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Event names shared by every emitter (radiosim, radiobench,
// radiocastd), so one `jq 'select(.event=="job.done")'` works across
// ad-hoc CLI runs and daemon logs. The schema rides slog attributes:
//
//	job.start  protocol, graph, n, seed [, job]
//	job.round  round, transmissions, deliveries, dropped, jammed [, job]
//	job.epoch  epoch, rounds, covered, done [, job]
//	job.done   protocol, rounds, completed, wall_us [, job]
//	cell.done  experiment, config, seed, rounds, completed, wall_us
//	exp.done   experiment, cells, seeds, wall_us
const (
	EventJobStart = "job.start"
	EventJobRound = "job.round"
	EventJobEpoch = "job.epoch"
	EventJobDone  = "job.done"
	EventCellDone = "cell.done"
	EventExpDone  = "exp.done"
)

// NewLogger builds the shared structured logger. format is "text" or
// "json"; level accepts slog level names ("debug", "info", "warn",
// "error"; empty = info). Every emitter in the repository — the CLIs'
// -logformat flag and the daemon — routes through here so the event
// schema stays uniform.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
