// Mmvnoise: Definition 3.1 and Lemma 3.2/3.3 live — run the Decay and
// GST schedules while every node that lacks the message actively jams
// its scheduled slots, and watch the broadcast still complete fast.
package main

import (
	"fmt"
	"log"

	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/harness"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

func main() {
	g := graph.Grid(8, 8)
	fmt.Printf("multi-message viability on %s (jammers = nodes without the message)\n\n", g.Name())

	// GST schedule, silent vs jammed (Lemma 3.3).
	silent, ok1 := harness.RunGSTSingle(g, false, 1, 1<<20)
	jammed, ok2 := harness.RunGSTSingle(g, true, 1, 1<<20)
	if !ok1 || !ok2 {
		log.Fatal("GST schedule incomplete")
	}
	fmt.Printf("MMV GST schedule : silent %4d rounds | jammed %4d rounds (x%.2f)\n",
		silent, jammed, float64(jammed)/float64(silent))

	// Decay schedule, silent vs jammed (Lemma 3.2).
	for _, noising := range []bool{false, true} {
		levels := graph.BFS(g, 0)
		nw := radio.New(g, radio.Config{})
		protos := make([]*decay.MMV, g.N())
		for v := 0; v < g.N(); v++ {
			protos[v] = decay.NewMMV(g.N(), int(levels.Dist[v]), noising,
				decay.Message{Data: 7}, rng.New(2, uint64(v)))
			nw.SetProtocol(graph.NodeID(v), protos[v])
		}
		l := int64(sched.LogN(g.N()))
		rounds, ok := nw.RunUntil(500*(int64(levels.MaxDist)*l+l*l), func() bool {
			for _, p := range protos {
				if !p.Has() {
					return false
				}
			}
			return true
		})
		if !ok {
			log.Fatal("Decay MMV incomplete")
		}
		mode := "silent"
		if noising {
			mode = "jammed"
		}
		fmt.Printf("Decay (Lemma 3.2): %s %5d rounds\n", mode, rounds)
	}
	fmt.Println("\nThe jammed runs are the point: progress survives adversarial noise")
	fmt.Println("from every scheduled-but-empty node, which is exactly what lets the")
	fmt.Println("multi-message algorithms interleave many messages on one schedule.")
}
