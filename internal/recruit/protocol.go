package recruit

import "radiocast/internal/radio"

// RedProtocol and BlueProtocol adapt the state machines to standalone
// radio.Protocol instances for direct simulation (tests, E4). Inside
// the GST assignment the machines are driven by the assignment
// protocol instead, with computed offsets.

// RedProtocol runs a Red machine starting at round Start.
type RedProtocol struct {
	Start int64
	R     *Red
}

var _ radio.Protocol = (*RedProtocol)(nil)

// Act implements radio.Protocol.
func (p *RedProtocol) Act(r int64) radio.Action {
	switch off := r - p.Start; {
	case off < 0:
		return radio.Sleep(p.Start)
	case off >= p.R.params.Rounds():
		return radio.Sleep(1 << 62)
	default:
		return p.R.Act(off)
	}
}

// Observe implements radio.Protocol.
func (p *RedProtocol) Observe(r int64, out radio.Outcome) {
	if off := r - p.Start; off >= 0 && off < p.R.params.Rounds() {
		p.R.Observe(off, out)
	}
}

// BlueProtocol runs a Blue machine starting at round Start.
type BlueProtocol struct {
	Start int64
	B     *Blue
}

var _ radio.Protocol = (*BlueProtocol)(nil)

// Act implements radio.Protocol.
func (p *BlueProtocol) Act(r int64) radio.Action {
	switch off := r - p.Start; {
	case off < 0:
		return radio.Sleep(p.Start)
	case off >= p.B.params.Rounds():
		return radio.Sleep(1 << 62)
	default:
		return p.B.Act(off)
	}
}

// Observe implements radio.Protocol.
func (p *BlueProtocol) Observe(r int64, out radio.Outcome) {
	if off := r - p.Start; off >= 0 && off < p.B.params.Rounds() {
		p.B.Observe(off, out)
	}
}
