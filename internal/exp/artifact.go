package exp

import (
	"encoding/json"
	"time"

	"radiocast/internal/stats"
)

// CellRecord is the serialized form of one cell result: flat fields so
// artifacts are trivially queryable (jq '.experiments[].cells[]').
type CellRecord struct {
	Experiment   string  `json:"experiment"`
	Config       string  `json:"config"`
	Seed         uint64  `json:"seed"`
	Rounds       int64   `json:"rounds"`
	Completed    bool    `json:"completed"`
	Value        float64 `json:"value,omitempty"`
	Dropped      int64   `json:"dropped,omitempty"`
	Jammed       int64   `json:"jammed,omitempty"`
	BusyRounds   int64   `json:"busy_rounds,omitempty"`
	SilentRounds int64   `json:"silent_rounds,omitempty"`
	MaxFrontier  int64   `json:"max_frontier,omitempty"`
	Epochs       int     `json:"epochs,omitempty"`
	Covered      int     `json:"covered,omitempty"`
	MemBytes     int64   `json:"mem_bytes,omitempty"`
	PeakRSS      int64   `json:"peak_rss_bytes,omitempty"`
	Error        string  `json:"error,omitempty"`
	WallMicros   int64   `json:"wall_us"`
}

// ExperimentRecord is one experiment's slice of a bench artifact: the
// rendered table plus every per-cell measurement.
type ExperimentRecord struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Header     []string     `json:"header,omitempty"`
	Rows       [][]string   `json:"rows,omitempty"`
	Cells      []CellRecord `json:"cells"`
	WallMicros int64        `json:"wall_us"`
}

// Artifact is the machine-readable output of a bench sweep
// (radiobench -json).
type Artifact struct {
	Module      string             `json:"module"`
	Seeds       int                `json:"seeds"`
	Quick       bool               `json:"quick"`
	Parallelism int                `json:"parallelism"`
	Experiments []ExperimentRecord `json:"experiments"`
	WallMicros  int64              `json:"wall_us"`
}

// NewArtifact starts an artifact describing one sweep.
func NewArtifact(seeds int, quick bool, parallelism int) *Artifact {
	return &Artifact{Module: "radiocast", Seeds: seeds, Quick: quick, Parallelism: parallelism}
}

// Add appends one executed experiment: its plan, assembled table, raw
// results, and total wall time.
func (a *Artifact) Add(p *Plan, tb *stats.Table, results []Result, wall time.Duration) {
	rec := ExperimentRecord{
		ID:         p.ID,
		Title:      p.Title,
		WallMicros: wall.Microseconds(),
		Cells:      make([]CellRecord, len(results)),
	}
	if tb != nil {
		rec.Header = tb.Header
		rec.Rows = tb.Rows
	}
	for i, r := range results {
		rec.Cells[i] = CellRecord{
			Experiment:   r.Key.Experiment,
			Config:       r.Key.Config,
			Seed:         r.Key.Seed,
			Rounds:       r.Rounds,
			Completed:    r.Completed,
			Value:        r.Value,
			Dropped:      r.Dropped,
			Jammed:       r.Jammed,
			BusyRounds:   r.BusyRounds,
			SilentRounds: r.SilentRounds,
			MaxFrontier:  r.MaxFrontier,
			Epochs:       r.Epochs,
			Covered:      r.Covered,
			MemBytes:     r.MemBytes,
			PeakRSS:      r.PeakRSS,
			Error:        r.Err,
			WallMicros:   r.Wall.Microseconds(),
		}
	}
	a.Experiments = append(a.Experiments, rec)
	a.WallMicros += wall.Microseconds()
}

// JSON renders the artifact with stable field order and indentation.
func (a *Artifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// Canonical returns a deep copy with every wall-clock and memory
// measurement zeroed — the byte-comparable form used by determinism
// tests (wall times and the mem_bytes / peak_rss_bytes capacity
// metrics are the only nondeterministic artifact content).
func (a *Artifact) Canonical() *Artifact {
	c := *a
	c.WallMicros = 0
	c.Experiments = make([]ExperimentRecord, len(a.Experiments))
	for i, e := range a.Experiments {
		ce := e
		ce.WallMicros = 0
		ce.Cells = make([]CellRecord, len(e.Cells))
		for j, cell := range e.Cells {
			cell.WallMicros = 0
			cell.MemBytes = 0
			cell.PeakRSS = 0
			ce.Cells[j] = cell
		}
		c.Experiments[i] = ce
	}
	return &c
}
