package radio_test

// Observer neutrality: attaching a RoundObserver must not perturb a
// run (identical rounds, Stats, and protocol outcomes vs an unobserved
// twin), the stride must gate which rounds are reported, and the
// reported snapshots must be consistent with the engine counters. The
// nil-observer zero-alloc guarantee is pinned by the repo-root
// alloc-guard tests; here we additionally pin that an ATTACHED
// observer adds no steady-state allocations either.

import (
	"testing"

	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/obs"
	"radiocast/internal/radio"
	"radiocast/internal/radio/radiotest"
)

// obsRecorder collects every snapshot it is handed.
type obsRecorder struct {
	snaps []obs.RoundSnapshot
}

func (o *obsRecorder) OnRound(s obs.RoundSnapshot) { o.snaps = append(o.snaps, s) }

// runDenseObserved runs a dense Decay broadcast with an optional
// observer and fingerprints it.
func runDenseObserved(g *graph.Graph, seed uint64, workers int,
	o obs.RoundObserver, stride int64) radiotest.Fingerprint {
	pr := decay.NewDense(g, seed, 0)
	eng := radio.NewDense(g, radio.Config{CollisionDetection: true, Workers: workers}, pr)
	defer eng.Close()
	if o != nil {
		eng.SetObserver(o, stride)
	}
	rounds, completed := eng.RunUntil(1<<20, pr.Done)
	fp := radiotest.Fingerprint{
		Rounds:    rounds,
		Completed: completed,
		Stats:     eng.Stats(),
		State:     make([]int64, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		fp.State[v] = recvState(pr.Informed, pr.RecvRound)(graph.NodeID(v))
	}
	return fp
}

// TestDenseObserverNeutral runs an observed engine (stride 1 and a
// coarse stride, sequential and gate-engaged parallel) against an
// unobserved twin and requires byte-identical fingerprints.
func TestDenseObserverNeutral(t *testing.T) {
	g := graph.ClusterChain(12, 16)
	base := runDenseObserved(g, 42, 1, nil, 0)
	if !base.Completed {
		t.Fatal("baseline run did not complete")
	}
	for _, workers := range []int{1, 4} {
		for _, stride := range []int64{1, 7} {
			rec := &obsRecorder{}
			got := runDenseObserved(g, 42, workers, rec, stride)
			label := "observed workers=" + string(rune('0'+workers)) + " stride=" + string(rune('0'+stride))
			radiotest.Equal(t, label, got, base)
			if len(rec.snaps) == 0 {
				t.Fatalf("%s: observer never fired", label)
			}
			// At stride 1 the last snapshot is the last executed round
			// and must agree with the final counters exactly.
			if stride == 1 {
				last := rec.snaps[len(rec.snaps)-1]
				if last.Deliveries != got.Stats.Deliveries || last.BusyRounds != got.Stats.BusyRounds {
					t.Fatalf("%s: final snapshot %+v inconsistent with stats %+v", label, last, got.Stats)
				}
			}
		}
	}
}

// obsProto is a deterministic sparse protocol: transmit every k-th
// round, listen otherwise, count receptions.
type obsProto struct {
	id       radio.NodeID
	every    int64
	received int
}

func (p *obsProto) Act(r int64) radio.Action {
	if r%p.every == int64(p.id)%p.every {
		return radio.Transmit(radio.RawPacket{Value: r})
	}
	return radio.Listen
}

func (p *obsProto) Observe(int64, radio.Outcome) { p.received++ }

func runNetworkObserved(g *graph.Graph, o obs.RoundObserver, stride int64) (radio.Stats, int) {
	nw := radio.New(g, radio.Config{CollisionDetection: true})
	if o != nil {
		nw.SetObserver(o, stride)
	}
	total := 0
	protos := make([]*obsProto, g.N())
	for v := range protos {
		protos[v] = &obsProto{id: radio.NodeID(v), every: 3 + int64(v%4)}
		nw.SetProtocol(radio.NodeID(v), protos[v])
	}
	nw.Run(200)
	for _, p := range protos {
		total += p.received
	}
	return nw.Stats(), total
}

// TestNetworkObserverNeutral is the sparse-engine twin comparison,
// plus the stride gate: with stride s only rounds divisible by s are
// reported, in order.
func TestNetworkObserverNeutral(t *testing.T) {
	g := graph.Grid(5, 5)
	baseStats, baseRec := runNetworkObserved(g, nil, 0)
	rec := &obsRecorder{}
	gotStats, gotRec := runNetworkObserved(g, rec, 5)
	if gotStats != baseStats || gotRec != baseRec {
		t.Fatalf("observed run diverged:\nbase %+v rec=%d\ngot  %+v rec=%d",
			baseStats, baseRec, gotStats, gotRec)
	}
	if len(rec.snaps) != 40 {
		t.Fatalf("stride 5 over 200 rounds reported %d snapshots, want 40", len(rec.snaps))
	}
	for i, s := range rec.snaps {
		if s.Round != int64(i*5) {
			t.Fatalf("snapshot %d is round %d, want %d", i, s.Round, i*5)
		}
	}
	// Every executed round carried traffic on this workload, so the
	// frontier counters must account for all of them.
	if gotStats.BusyRounds+gotStats.SilentRounds != gotStats.Rounds {
		t.Fatalf("busy+silent = %d+%d != rounds %d",
			gotStats.BusyRounds, gotStats.SilentRounds, gotStats.Rounds)
	}
	if gotStats.MaxFrontier < 1 || gotStats.MaxFrontier > int64(g.N()) {
		t.Fatalf("implausible MaxFrontier %d", gotStats.MaxFrontier)
	}
}

// TestNetworkObserverSurvivesReset pins the Reset contract: unlike the
// channel, the observer stays attached across Reset.
func TestNetworkObserverSurvivesReset(t *testing.T) {
	g := graph.Path(4)
	nw := radio.New(g, radio.Config{})
	rec := &obsRecorder{}
	nw.SetObserver(rec, 1)
	nw.SetProtocol(0, &obsProto{id: 0, every: 2})
	nw.Run(4)
	nw.Reset()
	n1 := len(rec.snaps)
	if n1 == 0 {
		t.Fatal("observer never fired before Reset")
	}
	nw.SetProtocol(0, &obsProto{id: 0, every: 2})
	nw.Run(4)
	if len(rec.snaps) <= n1 {
		t.Fatal("observer detached by Reset")
	}
}

// TestObservedStepAllocsZero pins that an attached observer keeps the
// steady-state round loop allocation-free: snapshots are plain value
// structs handed to the interface by value.
func TestObservedStepAllocsZero(t *testing.T) {
	g := graph.Path(256)
	pr := decay.NewDense(g, 7, 0)
	eng := radio.NewDense(g, radio.Config{}, pr)
	defer eng.Close()
	var rounds int64
	eng.SetObserver(obs.ObserverFunc(func(s obs.RoundSnapshot) { rounds = s.Round }), 1)
	eng.Run(64) // warm up scratch growth
	avg := testing.AllocsPerRun(200, func() { eng.Step() })
	if avg != 0 {
		t.Fatalf("observed dense step allocates %.2f/op, want 0", avg)
	}
	if rounds == 0 {
		t.Fatal("observer did not fire")
	}
}
