package main

// The job manager: a bounded queue feeding a fixed worker pool. Each
// worker owns a private cache of reuse contexts (the PR-3 zero-rebuild
// layer), keyed by the spec fingerprint, so a stream of jobs that vary
// only in seed or channel re-runs on already-built graph + engine +
// protocol stacks. Job progress flows out through the engine's
// RoundObserver (and the adaptive layer's OnEpoch hook) as an event
// history with live subscribers — the SSE endpoint's source of truth.

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"radiocast/internal/adapt"
	"radiocast/internal/beep"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/geo"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/harness"
	"radiocast/internal/mmv"
	"radiocast/internal/obs"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rng"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// maxEventHistory caps a job's retained event list; older round events
// are dropped first (SSE replay starts from what is kept).
const maxEventHistory = 4096

// maxPoolContexts caps one worker's reuse-context cache. Contexts hold
// full protocol stacks, so an unbounded cache is a memory leak shaped
// like a feature; on overflow the cache is dropped wholesale and
// rebuilt by demand.
const maxPoolContexts = 8

// Event is one progress record, rendered verbatim as SSE data.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"` // state | round | epoch | done
	State string `json:"state,omitempty"`
	// Round progress (cumulative engine counters at that round).
	Round      int64 `json:"round,omitempty"`
	Deliveries int64 `json:"deliveries,omitempty"`
	Dropped    int64 `json:"dropped,omitempty"`
	Jammed     int64 `json:"jammed,omitempty"`
	Frontier   int64 `json:"frontier,omitempty"`
	// Epoch progress (adaptive jobs).
	Epoch       int   `json:"epoch,omitempty"`
	EpochRounds int64 `json:"epoch_rounds,omitempty"`
	Covered     int   `json:"covered,omitempty"`
	EpochDone   bool  `json:"epoch_done,omitempty"`
	// Result rides the terminal done/failed event.
	Result *JobResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// JobResult is the terminal outcome of a job.
type JobResult struct {
	Rounds        int64   `json:"rounds"`
	Completed     bool    `json:"completed"`
	Epochs        int     `json:"epochs,omitempty"`
	Covered       int     `json:"covered,omitempty"`
	Transmissions int64   `json:"transmissions"`
	Deliveries    int64   `json:"deliveries"`
	CollisionObs  int64   `json:"collision_obs"`
	Dropped       int64   `json:"dropped"`
	Jammed        int64   `json:"jammed"`
	BusyRounds    int64   `json:"busy_rounds"`
	SilentRounds  int64   `json:"silent_rounds"`
	MaxFrontier   int64   `json:"max_frontier"`
	Utilization   float64 `json:"utilization"`
	WallMicros    int64   `json:"wall_us"`
}

// resultFrom folds engine counters into the wire result.
func resultFrom(rounds int64, completed bool, st radio.Stats, epochs, covered int, wall time.Duration) *JobResult {
	return &JobResult{
		Rounds:        rounds,
		Completed:     completed,
		Epochs:        epochs,
		Covered:       covered,
		Transmissions: st.Transmissions,
		Deliveries:    st.Deliveries,
		CollisionObs:  st.CollisionObs,
		Dropped:       st.Dropped,
		Jammed:        st.Jammed,
		BusyRounds:    st.BusyRounds,
		SilentRounds:  st.SilentRounds,
		MaxFrontier:   st.MaxFrontier,
		Utilization:   st.Utilization(),
		WallMicros:    wall.Microseconds(),
	}
}

// Job is one submitted run and its progress history.
type Job struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	Created time.Time `json:"created"`

	mu       sync.Mutex
	state    string
	err      string
	result   *JobResult
	started  time.Time
	finished time.Time
	events   []Event
	seq      int64
	subs     map[int]chan Event
	nextSub  int
}

// JobStatus is the GET /v1/jobs/{id} response body.
type JobStatus struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Spec      JobSpec    `json:"spec"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	EventsLen int        `json:"events"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Created:   j.Created,
		Error:     j.err,
		Result:    j.result,
		EventsLen: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// publish appends ev to the history and fans it out to subscribers.
// Slow subscribers lose intermediate events (their channel is
// buffered); terminal delivery is guaranteed by closeSubs.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if len(j.events) >= maxEventHistory {
		// Drop the oldest ROUND event; state/epoch/done milestones stay.
		dropped := false
		for i, old := range j.events {
			if old.Type == "round" {
				j.events = append(j.events[:i], j.events[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			j.events = j.events[1:]
		}
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns the replay history plus a live channel; cancel
// detaches. The channel is closed when the job reaches a terminal
// state, so SSE writers terminate naturally.
func (j *Job) subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	if j.state == StateDone || j.state == StateFailed {
		return replay, nil, func() {}
	}
	ch = make(chan Event, 256)
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return replay, ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
		j.mu.Unlock()
	}
}

// closeSubs ends every live subscription (job reached terminal state).
func (j *Job) closeSubs() {
	j.mu.Lock()
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	j.mu.Unlock()
}

// setState transitions the job and publishes the milestone.
func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	switch state {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed:
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.publish(Event{Type: "state", State: state})
}

// Manager owns the queue, the workers, and the job index.
type Manager struct {
	log     *slog.Logger
	metrics *obs.Registry

	mu   sync.Mutex
	jobs map[string]*Job
	next int64

	queue  chan *Job
	wg     sync.WaitGroup
	closed atomic.Bool

	queued  *obs.Gauge
	running *obs.Gauge
	wall    *obs.Histogram
}

// NewManager starts workers goroutines draining a queueDepth-bounded
// queue.
func NewManager(workers, queueDepth int, lg *slog.Logger, reg *obs.Registry) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 64
	}
	m := &Manager{
		log:     lg,
		metrics: reg,
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, queueDepth),
		queued:  reg.Gauge("radiocastd_jobs_queued", "jobs waiting for a worker"),
		running: reg.Gauge("radiocastd_jobs_running", "jobs executing now"),
		wall:    reg.Histogram("radiocastd_job_wall_seconds", "job wall time", obs.DefTimeBuckets),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker(w)
	}
	return m
}

// Shutdown stops accepting jobs and waits for in-flight ones.
func (m *Manager) Shutdown() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.queue)
	}
	m.wg.Wait()
}

// Submit validates, registers, and enqueues a job. A full queue is an
// immediate error (the caller maps it to 503), not a blocked handler.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, &specError{err}
	}
	if m.closed.Load() {
		return nil, fmt.Errorf("shutting down")
	}
	m.mu.Lock()
	m.next++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", m.next),
		Spec:    spec,
		Created: time.Now(),
		state:   StateQueued,
		subs:    map[int]chan Event{},
	}
	m.jobs[job.ID] = job
	m.mu.Unlock()
	select {
	case m.queue <- job:
	default:
		m.mu.Lock()
		delete(m.jobs, job.ID)
		m.mu.Unlock()
		return nil, fmt.Errorf("job queue full (%d deep)", cap(m.queue))
	}
	m.metrics.Counter("radiocastd_jobs_submitted_total", "jobs accepted",
		obs.L("protocol", spec.Protocol)).Inc()
	m.queued.Inc()
	m.log.Info(obs.EventJobStart, "job", job.ID, "protocol", spec.Protocol,
		"graph", spec.Graph.Kind, "seed", spec.Seed)
	return job, nil
}

// specError marks validation failures (mapped to 400, not 500).
type specError struct{ error }

// Get looks a job up by id.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs lists all jobs (newest last).
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// pooledCtx is one cached reuse context: a built graph plus a run
// closure over the PR-3 Reset/Reseed layer.
type pooledCtx struct {
	g *graph.Graph
	// run executes one seeded job on the context, returning rounds,
	// completion, engine counters, epochs (adaptive jobs), and coverage.
	run func(job *Job, ch radio.Channel, o obs.RoundObserver, stride int64) (int64, bool, radio.Stats, int, int, error)
}

// worker drains the queue with a private context cache.
func (m *Manager) worker(id int) {
	defer m.wg.Done()
	pool := map[string]*pooledCtx{}
	hits := m.metrics.Counter("radiocastd_pool_hits_total", "jobs served by a cached reuse context")
	misses := m.metrics.Counter("radiocastd_pool_misses_total", "jobs that built a fresh context")
	for job := range m.queue {
		m.queued.Dec()
		m.running.Inc()
		job.setState(StateRunning)
		start := time.Now()

		fp := job.Spec.fingerprint()
		ctx, ok := pool[fp]
		var err error
		if ok {
			hits.Inc()
		} else {
			misses.Inc()
			ctx, err = m.buildCtx(&job.Spec)
			if err == nil {
				if len(pool) >= maxPoolContexts {
					pool = map[string]*pooledCtx{}
				}
				pool[fp] = ctx
			}
		}

		var res *JobResult
		if err == nil {
			res, err = m.execute(job, ctx)
		}
		wall := time.Since(start)
		m.wall.Observe(wall.Seconds())
		m.running.Dec()
		if err != nil {
			job.mu.Lock()
			job.err = err.Error()
			job.mu.Unlock()
			job.publish(Event{Type: "failed", Error: err.Error()})
			job.setState(StateFailed)
			m.metrics.Counter("radiocastd_jobs_completed_total", "jobs finished",
				obs.L("status", "failed")).Inc()
			m.log.Warn(obs.EventJobDone, "job", job.ID, "state", StateFailed, "err", err.Error())
		} else {
			res.WallMicros = wall.Microseconds()
			job.mu.Lock()
			job.result = res
			job.mu.Unlock()
			job.publish(Event{Type: "done", Result: res})
			job.setState(StateDone)
			m.metrics.Counter("radiocastd_jobs_completed_total", "jobs finished",
				obs.L("status", "done")).Inc()
			m.countEngine(job.Spec.Protocol, res)
			m.log.Info(obs.EventJobDone, "job", job.ID, "state", StateDone,
				"rounds", res.Rounds, "completed", res.Completed, "wall_us", res.WallMicros)
		}
		job.closeSubs()
	}
}

// countEngine folds a finished job's engine counters into the
// per-protocol totals.
func (m *Manager) countEngine(protocol string, res *JobResult) {
	p := obs.L("protocol", protocol)
	m.metrics.Counter("radiocastd_engine_rounds_total", "simulated rounds", p).Add(res.Rounds)
	m.metrics.Counter("radiocastd_engine_deliveries_total", "successful receptions", p).Add(res.Deliveries)
	m.metrics.Counter("radiocastd_engine_dropped_total", "channel-erased deliveries", p).Add(res.Dropped)
	m.metrics.Counter("radiocastd_engine_jammed_total", "channel-altered observations", p).Add(res.Jammed)
}

// execute runs one job on its context, wiring the round observer and
// recovering panics into job failures.
func (m *Manager) execute(job *Job, ctx *pooledCtx) (res *JobResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("panic: %v", rec)
		}
	}()
	ch, err := job.Spec.buildChannel(ctx.g.N())
	if err != nil {
		return nil, &specError{err}
	}
	observer := obs.ObserverFunc(func(s obs.RoundSnapshot) {
		job.publish(Event{
			Type:       "round",
			Round:      s.Round,
			Deliveries: s.Deliveries,
			Dropped:    s.Dropped,
			Jammed:     s.Jammed,
			Frontier:   s.MaxFrontier,
		})
	})
	start := time.Now()
	rounds, completed, st, epochs, covered, err := ctx.run(job, ch, observer, job.Spec.stride())
	if err != nil {
		return nil, err
	}
	return resultFrom(rounds, completed, st, epochs, covered, time.Since(start)), nil
}

// limitOr returns the job's round limit or the open-ended default used
// by the facade.
func limitOr(spec *JobSpec) int64 {
	if spec.RoundLimit > 0 {
		return spec.RoundLimit
	}
	return 1 << 24
}

// buildCtx constructs the reuse context for a spec — the expensive,
// once-per-fingerprint step.
func (m *Manager) buildCtx(spec *JobSpec) (*pooledCtx, error) {
	var g *graph.Graph
	var err error
	var lay *geo.Layout
	if spec.Mobility != nil {
		// Mobility runs on the raw disk graph (no connectivity stitching):
		// a re-layout rebuilds the disk from walked positions, and stitch
		// edges would have no geometric meaning after the first epoch.
		// Disconnection under churn is measured as coverage, not failure.
		lay = spec.Graph.geoLayout()
		g = geo.NewDisk(lay, spec.Graph.geoRadius()).Build()
	} else {
		g, err = spec.Graph.build()
	}
	if err != nil {
		return nil, &specError{err}
	}
	if int(spec.Source) >= g.N() {
		return nil, &specError{fmt.Errorf("source %d out of range [0,%d)", spec.Source, g.N())}
	}
	src := graph.NodeID(spec.Source)

	if denseProtocol(spec.Protocol) {
		// The dense engine is rebuilt per job (SoA state is cheap next to
		// the graph, which IS pooled). CR's schedule and the wave's
		// horizon hang off the source eccentricity; one BFS per context,
		// amortized with the graph. The GST broadcast's tree construction
		// is the expensive step, so the flat arrays and MMV schedule are
		// pooled too — exactly the build-once/broadcast-many split of the
		// paper's amortized regime.
		ecc := 0
		if spec.Protocol == "dense-cr" || spec.Protocol == "dense-wave" {
			ecc = graph.Eccentricity(g, src)
		}
		var flat *gst.Flat
		var sched mmv.Schedule
		if spec.Protocol == "dense-gst" {
			flat = gst.Flatten(gst.Construct(g, src))
			sched = mmv.NewSchedule(g.N())
		}
		return &pooledCtx{g: g, run: func(job *Job, ch radio.Channel, o obs.RoundObserver, stride int64) (int64, bool, radio.Stats, int, int, error) {
			cfg := radio.Config{Channel: ch, Workers: job.Spec.Workers}
			limit := limitOr(&job.Spec)
			var pr radio.DenseProtocol
			var done func() bool
			var covered func() int
			switch spec.Protocol {
			case "dense-cr":
				p := cr.NewDense(g, cr.NewParams(g.N(), ecc), job.Spec.Seed, src)
				pr, done, covered = p, p.Done, p.InformedCount
			case "dense-gst":
				p := mmv.NewDense(g, flat, sched, job.Spec.Seed, src, false)
				pr, done, covered = p, p.Done, p.InformedCount
			case "dense-wave":
				// The wave REQUIRES collision detection on dense layers, so
				// the daemon forces it on. The 4x-eccentricity horizon (plus
				// slack) leaves room for lossy channel stacks; the run is
				// over at the horizon by construction (mirrors harness E20).
				horizon := 4*int64(ecc) + 64
				if horizon < limit {
					limit = horizon
				}
				cfg.CollisionDetection = true
				w := beep.NewDenseWave(g, src, horizon)
				pr, done, covered = w, w.Done, w.TriggeredCount
			default: // dense-decay
				p := decay.NewDense(g, job.Spec.Seed, src)
				pr, done, covered = p, p.Done, p.InformedCount
			}
			eng := radio.NewDense(g, cfg, pr)
			defer eng.Close()
			eng.SetObserver(o, stride)
			rounds, ok := eng.RunUntil(limit, done)
			return rounds, ok, eng.Stats(), 0, covered(), nil
		}}, nil
	}

	if spec.Mobility != nil {
		// validate() pinned protocol == decay: the only sparse adaptive
		// stack that is topology-agnostic (no schedule compiled from the
		// construction graph), so Retopo between epochs is legal.
		mob := *spec.Mobility
		a := harness.NewAdaptiveDecayDynamic(g, nil, spec.Seed, src, mob.Period)
		radius := spec.Graph.geoRadius()
		initOff, initEdges := g.CSR()
		var wp *geo.Waypoint
		a.SetRelayout(func(epoch int) {
			wp.Advance(int(mob.Period))
			off, edges := geo.NewDisk(lay, radius).Build().CSR()
			a.Retopo(off, edges)
		})
		maxEpochs := spec.Adaptive.MaxEpochs
		return &pooledCtx{g: g, run: func(job *Job, ch radio.Channel, o obs.RoundObserver, stride int64) (int64, bool, radio.Stats, int, int, error) {
			// The walk mutates the pooled layout in place, so every job
			// rewinds it to the deterministic initial point set and Retopos
			// the runner back to the initial topology before walking again.
			fresh := spec.Graph.geoLayout()
			copy(lay.X, fresh.X)
			copy(lay.Y, fresh.Y)
			wp = geo.NewWaypoint(lay, mob.Speed, rng.Mix(job.Spec.Seed, 0x3ab7))
			a.Retopo(initOff, initEdges)
			a.Reseed(job.Spec.Seed)
			a.SetChannelFactory(harness.EpochChannel(ch))
			a.SetObserver(o, stride)
			defer a.SetObserver(nil, 0)
			out := adapt.Run(a, adapt.Policy{
				MaxEpochs:  maxEpochs,
				EpochLimit: mob.Period,
				MaxRounds:  job.Spec.RoundLimit,
				OnEpoch: func(epoch int, rounds int64, covered int, done bool) {
					job.publish(Event{Type: "epoch", Epoch: epoch,
						EpochRounds: rounds, Covered: covered, EpochDone: done})
				},
			})
			return out.Rounds, out.Completed, out.Stats, out.Epochs, out.Covered, nil
		}}, nil
	}

	if spec.Adaptive != nil {
		a, err := buildAdaptive(spec, g, src)
		if err != nil {
			return nil, err
		}
		maxEpochs := spec.Adaptive.MaxEpochs
		return &pooledCtx{g: g, run: func(job *Job, ch radio.Channel, o obs.RoundObserver, stride int64) (int64, bool, radio.Stats, int, int, error) {
			a.Reseed(job.Spec.Seed)
			a.SetChannelFactory(harness.EpochChannel(ch))
			a.SetObserver(o, stride)
			defer a.SetObserver(nil, 0)
			out := adapt.Run(a, adapt.Policy{
				MaxEpochs: maxEpochs,
				MaxRounds: job.Spec.RoundLimit,
				OnEpoch: func(epoch int, rounds int64, covered int, done bool) {
					job.publish(Event{Type: "epoch", Epoch: epoch,
						EpochRounds: rounds, Covered: covered, EpochDone: done})
				},
			})
			return out.Rounds, out.Completed, out.Stats, out.Epochs, out.Covered, nil
		}}, nil
	}

	run, setObs, coverage, err := buildPlain(spec, g, src)
	if err != nil {
		return nil, err
	}
	return &pooledCtx{g: g, run: func(job *Job, ch radio.Channel, o obs.RoundObserver, stride int64) (int64, bool, radio.Stats, int, int, error) {
		setObs(o, stride)
		defer setObs(nil, 0)
		rounds, ok, st := run(ch, job.Spec.Seed, limitOr(&job.Spec))
		return rounds, ok, st, 0, coverage(), nil
	}}, nil
}

// buildAdaptive constructs the adaptive reuse runner for a spec.
func buildAdaptive(spec *JobSpec, g *graph.Graph, src graph.NodeID) (*harness.AdaptiveRunner, error) {
	switch spec.Protocol {
	case "decay":
		return harness.NewAdaptiveDecay(g, nil, spec.Seed, src), nil
	case "cr":
		return harness.NewAdaptiveCR(g, graph.Eccentricity(g, src), nil, spec.Seed, src), nil
	case "gst":
		return harness.NewAdaptiveGSTSingle(g, false, nil, spec.Seed, src), nil
	case "cd":
		d := graph.Eccentricity(g, src)
		return harness.NewAdaptiveTheorem11(g, rings.DefaultConfig(g.N(), d, 0, 1), nil, spec.Seed, src), nil
	case "k-cd":
		d := graph.Eccentricity(g, src)
		return harness.NewAdaptiveTheorem13(g, rings.DefaultConfig(g.N(), d, spec.k(), 1), nil, spec.Seed, src), nil
	default:
		return nil, &specError{fmt.Errorf("adaptive retry is not supported by %q", spec.Protocol)}
	}
}

// buildPlain constructs the non-adaptive reuse context pieces: a run
// closure, the observer setter, and the coverage reader.
func buildPlain(spec *JobSpec, g *graph.Graph, src graph.NodeID) (
	func(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats),
	func(o obs.RoundObserver, stride int64),
	func() int, error) {
	switch spec.Protocol {
	case "decay":
		r := harness.NewDecayRun(g, src)
		return r.Run, r.SetObserver, r.Coverage, nil
	case "cr":
		r := harness.NewCRRun(g, graph.Eccentricity(g, src), src)
		return r.Run, r.SetObserver, r.Coverage, nil
	case "gst":
		r := harness.NewGSTSingleRun(g, false, src)
		return r.Run, r.SetObserver, r.Coverage, nil
	case "k-known":
		r := harness.NewGSTMultiRun(g, spec.k(), src)
		return r.Run, r.SetObserver, r.Coverage, nil
	case "cd":
		d := graph.Eccentricity(g, src)
		r := harness.NewTheorem11RunCfg(g, rings.DefaultConfig(g.N(), d, 0, 1), src)
		return func(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
			if limit == 1<<24 {
				limit = 0 // the compiled schedule budget applies
			}
			return r.RunFrom(nil, ch, seed, limit)
		}, r.SetObserver, r.Coverage, nil
	case "k-cd":
		d := graph.Eccentricity(g, src)
		r := harness.NewTheorem13RunCfg(g, rings.DefaultConfig(g.N(), d, spec.k(), 1), src)
		return func(ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
			if limit == 1<<24 {
				limit = 0
			}
			return r.RunFrom(nil, ch, seed, limit)
		}, r.SetObserver, r.Coverage, nil
	default:
		return nil, nil, nil, &specError{fmt.Errorf("unknown protocol %q", spec.Protocol)}
	}
}
